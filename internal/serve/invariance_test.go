package serve

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestBatchingInvariance is the coalescing-independence property test:
// the same per-stream request sequences are driven through servers with
// wildly different admission policies (single-row batches, greedy drain,
// large batches with long waits) under randomly jittered interleavings, and
// every stream's response sequence must be byte-identical across all of
// them. Inference is row-independent, so how requests happened to share a
// PredictBatch must never leak into results.
func TestBatchingInvariance(t *testing.T) {
	fixture(t)
	configs := []struct {
		maxBatch int
		maxWait  time.Duration
	}{
		{1, 0},
		{8, 200 * time.Microsecond},
		{64, 2 * time.Millisecond},
		{5, 0},
	}
	const (
		streams = 4
		perStr  = 300
	)
	// Stream k replays a distinct slice of the trace so the per-stream
	// sequences differ (a shared sequence would mask cross-stream mixups).
	var baseline [][]byte
	for ci, cfg := range configs {
		s := startServer(t, Config{
			Model:    fx.p.Model,
			MaxBatch: cfg.maxBatch,
			MaxWait:  cfg.maxWait,
		})
		got := make([][]byte, streams)
		errs := make([]error, streams)
		var wg sync.WaitGroup
		for k := 0; k < streams; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				got[k], errs[k] = replayRecorded(s, uint64(k), k, perStr, int64(ci*100+k))
			}(k)
		}
		wg.Wait()
		for k, err := range errs {
			if err != nil {
				t.Fatalf("config %d stream %d: %v", ci, k, err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("config %d: Close: %v", ci, err)
		}
		if ci == 0 {
			baseline = got
			continue
		}
		for k := range got {
			if string(got[k]) != string(baseline[k]) {
				t.Fatalf("config %d (maxBatch=%d maxWait=%v): stream %d responses differ from config 0",
					ci, cfg.maxBatch, cfg.maxWait, k)
			}
		}
	}
}

// replayRecorded replays perStr accesses starting at offset as one stream,
// with seeded random yields to vary how requests land in batches, and
// returns the concatenated encoded responses.
func replayRecorded(s *Server, streamID uint64, offset, perStr int, seed int64) ([]byte, error) {
	cl, err := Dial(s.Addr().String())
	if err != nil {
		return nil, err
	}
	defer func() { _ = cl.Close() }()
	rng := rand.New(rand.NewSource(seed))
	var out []byte
	for j := 0; j < perStr; j++ {
		a := fx.tr.Accesses[(offset+j)%len(fx.tr.Accesses)]
		r, err := cl.Predict(streamID, a.PC, a.Addr, false)
		if err != nil {
			return nil, fmt.Errorf("req %d: %w", j, err)
		}
		out = EncodeResponse(out, r)
		if rng.Intn(4) == 0 {
			runtime.Gosched()
		}
		if rng.Intn(64) == 0 {
			time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
		}
	}
	return out, nil
}

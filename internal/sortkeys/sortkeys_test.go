package sortkeys

import (
	"slices"
	"testing"
)

func TestSorted(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	got := Sorted(m)
	if !slices.Equal(got, []int{1, 2, 3}) {
		t.Fatalf("Sorted = %v", got)
	}
	if got := Sorted(map[string]int{}); len(got) != 0 {
		t.Fatalf("Sorted(empty) = %v", got)
	}
}

func TestSortedFunc(t *testing.T) {
	m := map[int]struct{}{1: {}, 2: {}, 3: {}}
	got := SortedFunc(m, func(a, b int) int { return b - a })
	if !slices.Equal(got, []int{3, 2, 1}) {
		t.Fatalf("SortedFunc = %v", got)
	}
}

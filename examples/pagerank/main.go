// PageRank end-to-end: generate the GAP pr workload, run the full cache
// simulator with no prefetcher, idealized ISB, and Voyager, and compare
// accuracy / coverage / IPC — a miniature of the paper's Figures 5, 6, 8
// on the workload its Figure 13 analyzes.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"

	"voyager/internal/prefetch"
	"voyager/internal/prefetch/isb"
	"voyager/internal/sim"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

func main() {
	tr, err := workloads.Generate("pr", workloads.Config{
		Seed:        42,
		Scale:       1,
		MaxAccesses: 30_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.ScaledConfig()

	// The prefetchers observe the LLC access stream; Voyager trains on it.
	llcStream, origIdx := sim.FilterLLC(tr, cfg)
	fmt.Printf("pr: %d loads, %d reach the LLC\n", tr.Len(), llcStream.Len())

	vcfg := voyager.ScaledConfig()
	vcfg.EpochAccesses = llcStream.Len() / 4
	vcfg.DropoutKeep = 1
	vcfg.Hidden = 64
	vcfg.PassesPerEpoch = 4
	fmt.Println("training voyager on the LLC stream...")
	p, err := voyager.Train(llcStream, vcfg)
	if err != nil {
		log.Fatal(err)
	}
	// Map the stream predictions back to raw trace positions for the
	// simulator.
	voyPreds := make([][]uint64, tr.Len())
	for j, preds := range p.Predictions() {
		voyPreds[origIdx[j]] = preds
	}

	runs := []struct {
		name string
		pf   prefetch.Prefetcher
	}{
		{"no prefetcher", prefetch.Nil{}},
		{"isb (idealized)", isb.NewIdeal(1)},
		{"voyager", &prefetch.Precomputed{Label: "voyager", Predictions: voyPreds}},
	}
	var base float64
	fmt.Printf("\n%-18s %8s %8s %8s %8s\n", "prefetcher", "IPC", "speedup", "acc", "cov")
	for _, r := range runs {
		res := sim.Simulate(tr, r.pf, cfg)
		if base == 0 {
			base = res.IPC
		}
		fmt.Printf("%-18s %8.3f %8.3f %8.3f %8.3f\n",
			r.name, res.IPC, res.IPC/base, res.Accuracy(), res.Coverage())
	}
}

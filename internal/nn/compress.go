package nn

import (
	"sort"

	"voyager/internal/tensor/quant"
)

// Compression utilities for §5.4's model-size study: magnitude pruning and
// linear quantization, the "standard pruning and quantization methods" the
// paper applies to shrink Voyager 110-200× below Delta-LSTM.

// PruneMagnitude zeroes the fraction frac of smallest-magnitude weights in
// every parameter and returns the number of weights zeroed.
func (s *ParamSet) PruneMagnitude(frac float32) int {
	if frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	zeroed := 0
	for _, p := range s.list {
		n := len(p.W.Data)
		if n == 0 {
			continue
		}
		mags := make([]float32, n)
		for i, v := range p.W.Data {
			if v < 0 {
				v = -v
			}
			mags[i] = v
		}
		sort.Slice(mags, func(i, j int) bool { return mags[i] < mags[j] })
		k := int(float32(n) * frac)
		if k <= 0 {
			continue
		}
		if k > n {
			k = n
		}
		threshold := mags[k-1]
		for i, v := range p.W.Data {
			a := v
			if a < 0 {
				a = -a
			}
			if a <= threshold && zeroed < s.Count() {
				if p.W.Data[i] != 0 {
					zeroed++
				}
				p.W.Data[i] = 0
			}
		}
	}
	return zeroed
}

// Quantize rounds every parameter to 2^bits linear levels spanning its
// [min, max] range (per-tensor affine quantization), simulating a
// bits-per-weight deployment. Zeros stay exactly zero so pruning survives
// quantization. The rounding itself lives in quant.AffineQuantize, shared
// with the inference-only quantized-weight formats.
func (s *ParamSet) Quantize(bits int) {
	for _, p := range s.list {
		quant.AffineQuantize(p.W.Data, bits)
	}
}

// NonZero counts the non-zero weights across the set (post-pruning size).
func (s *ParamSet) NonZero() int {
	n := 0
	for _, p := range s.list {
		for _, v := range p.W.Data {
			if v != 0 {
				n++
			}
		}
	}
	return n
}

// CompressedBytes estimates storage after pruning (only non-zero weights
// stored, sparse-format overhead ignored) at the given precision.
func (s *ParamSet) CompressedBytes(bitsPerWeight int) int {
	return s.NonZero() * bitsPerWeight / 8
}

#!/usr/bin/env bash
# Tier-1 verification plus the concurrency checks for the data-parallel
# training engine: vet, the full test suite (with coverage gates), the race
# detector over the packages that share state across goroutines, and
# bounded fuzz runs of the binary trace decoder and the metrics snapshot
# parser.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

# vetvoyager enforces the invariants go vet cannot see: deterministic map
# iteration in determinism-critical packages, tape-arena *Mat lifetimes,
# float32-only hot kernels, per-worker rand streams, and ReportAllocs on
# every benchmark. It prints per-analyzer finding counts and exits non-zero
# on any unsuppressed finding.
echo "== vetvoyager"
go run ./cmd/vetvoyager ./...

echo "== go test (with coverage profile)"
cover_out="$(mktemp)"
trap 'rm -f "$cover_out"' EXIT
go test -coverprofile="$cover_out" ./...

# Coverage gates. The metrics package backs the differential guarantees
# (metrics-on == metrics-off bit-identical), so it carries a hard floor;
# the repo-wide total must not regress below the recorded baseline
# (scripts/coverage_baseline.txt — raise it when coverage improves).
echo "== coverage gates"
total=$(go tool cover -func="$cover_out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
baseline=$(cat scripts/coverage_baseline.txt)
awk -v t="$total" -v b="$baseline" 'BEGIN {
  if (t + 0 < b + 0) { printf "coverage: repo-wide %.1f%% < baseline %.1f%%\n", t, b; exit 1 }
  printf "coverage: repo-wide %.1f%% (baseline %.1f%%)\n", t, b }'
mcov=$(go test -cover ./internal/metrics/ | awk 'match($0, /coverage: [0-9.]+%/) {
  s = substr($0, RSTART + 10, RLENGTH - 11); print s }')
awk -v m="$mcov" 'BEGIN {
  if (m + 0 < 90) { printf "coverage: internal/metrics %.1f%% < 90%% floor\n", m; exit 1 }
  printf "coverage: internal/metrics %.1f%% (floor 90%%)\n", m }'

echo "== allocation regression (tape arena steady state, metrics hot path)"
go test -run 'TestSteadyStateAllocBudget' ./internal/voyager/
go test -run 'TestArenaSteadyStateAllocationFree' ./internal/tensor/
go test -run 'TestHotPathAllocFree' ./internal/metrics/

echo "== go test -race (tensor, nn, metrics, voyager, trace)"
go test -race ./internal/tensor/ ./internal/nn/ ./internal/trace/ ./internal/metrics/
# The full voyager suite under -race takes ~10 min of end-to-end training;
# the concurrency surface is the parallel engine, so race-check the tests
# that exercise sharded TrainBatch/PredictBatch plus one e2e training run.
go test -race -run 'Parallel|Deterministic|Workers|LearnsCycleWith' ./internal/voyager/

echo "== fuzz trace.Read + metrics.ParseSnapshot (bounded)"
go test -run=NONE -fuzz=FuzzRead -fuzztime=10s ./internal/trace/
go test -run=NONE -fuzz=FuzzParseSnapshot -fuzztime=10s ./internal/metrics/

echo "verify: OK"

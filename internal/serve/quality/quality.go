// Package quality is prefetchd's online self-scoring layer: the daemon
// already receives every stream's ground-truth demand accesses (that is
// what a predict request *is*), so it can grade its own predictions without
// any offline evaluation pass. Each emitted candidate line is held in a
// small per-stream pending ring and matched against the stream's next
// demand accesses: a match within UsefulK accesses is *useful* (the
// prefetch would have arrived in time), a match within RetainK is *late*
// (right line, too far ahead of its use to bound buffering), and a
// prediction that ages out unmatched is a *miss*. This is the serving-time
// analogue of the accuracy/coverage the paper reports offline, and it is
// kept per tier so the distilled fast path and the full model are graded
// separately.
//
// Two rolling views sit next to every cumulative total, built on
// internal/metrics window instruments: the cumulative counters answer "how
// good has this daemon been since boot", the rolling windows answer "how
// good is it right now" — the pair is what makes workload phase changes
// visible (cumulative accuracy barely moves while the window craters; the
// e2e test pins exactly that). Window rotation is driven by scored-outcome
// count, not wall time, so a replayed trace rotates at the same points
// every run.
//
// The tracker also owns shadow-sampling bookkeeping: every Nth fast-tier
// request is re-run through the model tier off the latency path, and rolling
// fast-vs-model top-1 agreement is the staleness signal for the distilled
// table (agreement decays before user-visible accuracy does, because the
// model adapts its context window while the table is frozen).
//
// Everything here follows the repo's nil-object observability contract: a
// nil *Tracker hands out nil *Sessions, and every method on either is a
// no-op, so the serving hot path pays one pointer compare when quality
// telemetry is off — the PR-9 golden differential runs with it on and off
// and byte-compares the responses.
package quality

import (
	"sync"
	"sync/atomic"

	"voyager/internal/metrics"
)

// Tier codes mirror the serve package's response tiers (serve imports
// quality, so quality cannot import serve).
const (
	TierModel = 0
	TierFast  = 1
	numTiers  = 2
)

// Config configures a Tracker. The zero value of every field gets a
// serviceable default.
type Config struct {
	// UsefulK: a prediction matched within this many subsequent demand
	// accesses counts as useful (default 16 — the paper-style "would the
	// prefetch have arrived in time" horizon).
	UsefulK int
	// RetainK: matched after UsefulK but within RetainK counts as late;
	// unmatched after RetainK is a miss (default 4x UsefulK).
	RetainK int
	// WindowEvery rotates the rolling windows after this many scored
	// outcomes (default 1024). Outcome-driven rotation keeps replays
	// deterministic — no clock reads.
	WindowEvery int
	// Windows is the rolling ring size (default 8): the rolling view spans
	// the last Windows x WindowEvery outcomes.
	Windows int
	// PendingCap bounds each stream's in-flight prediction ring (default
	// 128). When it overflows, the oldest entry is retired as overflowed —
	// counted, never silently dropped.
	PendingCap int
	// ShadowEvery samples one in this many fast-tier requests through the
	// model tier for agreement tracking (0 disables shadow sampling).
	ShadowEvery int
	// Metrics is the registry the scoreboard instruments land on (nil means
	// the tracker still scores, but only the Report surface sees it).
	Metrics *metrics.Registry
}

func (c *Config) defaults() {
	if c.UsefulK <= 0 {
		c.UsefulK = 16
	}
	if c.RetainK < c.UsefulK {
		c.RetainK = 4 * c.UsefulK
	}
	if c.WindowEvery <= 0 {
		c.WindowEvery = 1024
	}
	if c.Windows <= 0 {
		c.Windows = 8
	}
	if c.PendingCap <= 0 {
		c.PendingCap = 128
	}
}

// tierStats is one tier's scoreboard: every field has a cumulative total
// and a rolling window view.
type tierStats struct {
	predictions *metrics.WindowCounter
	useful      *metrics.WindowCounter
	late        *metrics.WindowCounter
	miss        *metrics.WindowCounter
}

// Tracker is the daemon-wide quality scoreboard. All methods are safe for
// concurrent use from connection handlers and nil-safe throughout.
type Tracker struct {
	cfg Config

	tiers [numTiers]tierStats
	// hitDist records the access distance of every useful/late match — the
	// "how early do we predict" histogram.
	hitDist *metrics.WindowHistogram

	unresolved *metrics.Counter // predictions pending when their stream closed
	overflow   *metrics.Counter // predictions evicted by PendingCap

	shadowSamples *metrics.WindowCounter
	shadowAgree   *metrics.WindowCounter
	shadowDropped *metrics.Counter // shadow jobs dropped on a full queue

	outcomes   atomic.Uint64 // scored outcomes, drives window rotation
	shadowTick atomic.Uint64
}

// New builds a tracker. Instruments are registered eagerly so the /metrics
// surface shows the full scoreboard (zeros included) from boot.
func New(cfg Config) *Tracker {
	cfg.defaults()
	t := &Tracker{cfg: cfg}
	reg := cfg.Metrics
	w := cfg.Windows
	for i := range t.tiers {
		name := tierName(i)
		t.tiers[i] = tierStats{
			predictions: reg.WindowCounter("quality_predictions_"+name, w),
			useful:      reg.WindowCounter("quality_useful_"+name, w),
			late:        reg.WindowCounter("quality_late_"+name, w),
			miss:        reg.WindowCounter("quality_miss_"+name, w),
		}
	}
	t.hitDist = reg.WindowHistogram("quality_hit_distance", w)
	t.unresolved = reg.Counter("quality_unresolved_total")
	t.overflow = reg.Counter("quality_overflow_total")
	t.shadowSamples = reg.WindowCounter("quality_shadow_samples", w)
	t.shadowAgree = reg.WindowCounter("quality_shadow_agree", w)
	t.shadowDropped = reg.Counter("quality_shadow_dropped_total")
	return t
}

func tierName(i int) string {
	if i == TierModel {
		return "model"
	}
	return "fast"
}

// ShadowEvery returns the configured sampling period (0 when disabled or on
// a nil tracker).
func (t *Tracker) ShadowEvery() int {
	if t == nil {
		return 0
	}
	return t.cfg.ShadowEvery
}

// ShadowTick returns true when the caller's fast-tier request is the one in
// ShadowEvery that should be shadow-sampled through the model tier. The
// decision is a single atomic increment — cheap enough that the caller may
// take it on the latency path and act on it after recording.
func (t *Tracker) ShadowTick() bool {
	if t == nil || t.cfg.ShadowEvery <= 0 {
		return false
	}
	return t.shadowTick.Add(1)%uint64(t.cfg.ShadowEvery) == 0
}

// RecordShadow records one completed shadow comparison.
func (t *Tracker) RecordShadow(agree bool) {
	if t == nil {
		return
	}
	t.shadowSamples.Inc()
	if agree {
		t.shadowAgree.Inc()
	}
	t.outcome(1)
}

// RecordShadowDropped counts a shadow job discarded because the admission
// queue was full — shadow work never blocks a handler.
func (t *Tracker) RecordShadowDropped() {
	if t == nil {
		return
	}
	t.shadowDropped.Inc()
}

// outcome accrues n scored outcomes and rotates every window instrument
// exactly once per WindowEvery crossing (the atomic counter serializes the
// crossing even when handlers race).
func (t *Tracker) outcome(n uint64) {
	if n == 0 {
		return
	}
	every := uint64(t.cfg.WindowEvery)
	c := t.outcomes.Add(n)
	if crossings := c/every - (c-n)/every; crossings > 0 {
		for i := uint64(0); i < crossings; i++ {
			t.rotate()
		}
	}
}

func (t *Tracker) rotate() {
	for i := range t.tiers {
		t.tiers[i].predictions.Rotate()
		t.tiers[i].useful.Rotate()
		t.tiers[i].late.Rotate()
		t.tiers[i].miss.Rotate()
	}
	t.hitDist.Rotate()
	t.shadowSamples.Rotate()
	t.shadowAgree.Rotate()
}

// pendEntry is one in-flight prediction awaiting its verdict.
type pendEntry struct {
	line uint64 // predicted cache line
	pos  uint64 // stream position at emission
	tier uint8
}

// Session is one stream's scoring state: a bounded ring of pending
// predictions plus the stream's access position. The serve layer creates
// one per live session and calls Score for every predict request; all
// mutation happens under the session's own lock, off the serve session
// lock and after the request's latency has been recorded.
type Session struct {
	mu     sync.Mutex
	t      *Tracker
	pos    uint64
	ring   []pendEntry
	head   int // oldest live entry
	n      int // live entries
	closed bool
}

// NewSession returns a fresh scoring session (nil from a nil tracker).
func (t *Tracker) NewSession() *Session {
	if t == nil {
		return nil
	}
	return &Session{t: t, ring: make([]pendEntry, t.cfg.PendingCap)}
}

// Score processes one predict request: the demand access (accessLine) first
// settles pending predictions — matches become useful or late, overage
// becomes misses — then the request's own emitted predictions join the ring.
// predicted holds the candidate cache lines in rank order; tier is
// TierModel or TierFast. No-op on a nil session.
func (s *Session) Score(accessLine uint64, predicted []uint64, tier int) {
	if s == nil {
		return
	}
	t := s.t
	var outcomes uint64
	s.mu.Lock()
	if s.closed {
		// A handler raced the janitor: the session was evicted mid-request.
		// Its predictions can never settle — book them straight to
		// unresolved so conservation holds.
		for range predicted {
			t.tiers[tier].predictions.Inc()
			t.unresolved.Inc()
		}
		s.mu.Unlock()
		return
	}
	s.pos++
	pos := s.pos
	// Settle: walk live entries oldest-first. Matches are tombstoned in
	// place (compaction would reorder); expired entries at the head retire.
	retainK := uint64(t.cfg.RetainK)
	usefulK := uint64(t.cfg.UsefulK)
	for i := 0; i < s.n; i++ {
		e := &s.ring[(s.head+i)%len(s.ring)]
		if e.line == tombstone {
			continue
		}
		if e.line == accessLine {
			dist := pos - e.pos
			if dist <= usefulK {
				t.tiers[e.tier].useful.Inc()
			} else {
				t.tiers[e.tier].late.Inc()
			}
			t.hitDist.Observe(float64(dist))
			e.line = tombstone
			outcomes++
		}
	}
	// Expire from the head: entries older than RetainK (or tombstoned).
	for s.n > 0 {
		e := &s.ring[s.head]
		if e.line == tombstone {
			s.head = (s.head + 1) % len(s.ring)
			s.n--
			continue
		}
		if pos-e.pos <= retainK {
			break
		}
		t.tiers[e.tier].miss.Inc()
		outcomes++
		s.head = (s.head + 1) % len(s.ring)
		s.n--
	}
	// Admit this request's predictions.
	for _, line := range predicted {
		if line == tombstone {
			continue // the sentinel line can never be scored; skip it
		}
		if s.n == len(s.ring) {
			// Ring full: retire the oldest entry as overflowed (tombstoned
			// slots were already settled and just free their space).
			if s.ring[s.head].line != tombstone {
				t.overflow.Inc()
				outcomes++
			}
			s.head = (s.head + 1) % len(s.ring)
			s.n--
		}
		s.ring[(s.head+s.n)%len(s.ring)] = pendEntry{line: line, pos: pos, tier: uint8(tier)}
		s.n++
		t.tiers[tier].predictions.Inc()
	}
	s.mu.Unlock()
	t.outcome(outcomes)
}

// tombstone marks a settled ring slot; ^0 is not a reachable cache line
// (it would decode from an address beyond the 64-bit space).
const tombstone = ^uint64(0)

// Close settles the session: every still-pending prediction is retired as
// unresolved (the stream ended before its verdict), keeping the
// conservation identity exact — predictions == useful + late + miss +
// overflow + unresolved once every stream has closed. No-op on nil.
func (s *Session) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := 0; i < s.n; i++ {
		e := s.ring[(s.head+i)%len(s.ring)]
		if e.line != tombstone {
			s.t.unresolved.Inc()
		}
	}
	s.n = 0
	s.closed = true
	s.mu.Unlock()
}

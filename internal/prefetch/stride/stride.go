// Package stride implements classic stride prefetchers from the paper's
// related work (§2.1, §3.2):
//
//   - NextLine: the degenerate sequential prefetcher (offset +1).
//   - IP: the IP-stride prefetcher of Eq. 6 — per-PC stride detection with
//     a 2-bit confidence counter, the textbook design of Baer & Chen.
//
// They anchor the regular end of the comparison space: strong on streaming
// loops, useless on the irregular patterns Voyager targets.
package stride

import "voyager/internal/trace"

// NextLine prefetches the next `Degree` sequential lines.
type NextLine struct {
	Degree int
}

// NewNextLine returns a next-line prefetcher.
func NewNextLine(degree int) *NextLine {
	if degree < 1 {
		degree = 1
	}
	return &NextLine{Degree: degree}
}

// Name implements prefetch.Prefetcher.
func (p *NextLine) Name() string { return "next-line" }

// Access prefetches lines +1..+Degree.
func (p *NextLine) Access(_ int, a trace.Access) []uint64 {
	line := trace.Line(a.Addr)
	out := make([]uint64, 0, p.Degree)
	for k := 1; k <= p.Degree; k++ {
		out = append(out, (line+uint64(k))<<trace.LineBits)
	}
	return out
}

// ipEntry is one reference-prediction-table row.
type ipEntry struct {
	lastLine uint64
	stride   int64
	conf     int8 // 0..3; predict when ≥2
}

// IP is the IP-stride prefetcher: P(Stride_PC | Stride_t).
type IP struct {
	Degree int
	table  map[uint64]*ipEntry
}

// NewIP returns an IP-stride prefetcher.
func NewIP(degree int) *IP {
	if degree < 1 {
		degree = 1
	}
	return &IP{Degree: degree, table: make(map[uint64]*ipEntry)}
}

// Name implements prefetch.Prefetcher.
func (p *IP) Name() string { return "ip-stride" }

// Access trains the per-PC stride and prefetches when confident.
func (p *IP) Access(_ int, a trace.Access) []uint64 {
	line := trace.Line(a.Addr)
	e, ok := p.table[a.PC]
	if !ok {
		p.table[a.PC] = &ipEntry{lastLine: line}
		return nil
	}
	stride := int64(line) - int64(e.lastLine)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = stride
		}
	}
	e.lastLine = line
	if e.conf < 2 || e.stride == 0 {
		return nil
	}
	out := make([]uint64, 0, p.Degree)
	for k := 1; k <= p.Degree; k++ {
		target := int64(line) + e.stride*int64(k)
		if target < 0 {
			break
		}
		out = append(out, uint64(target)<<trace.LineBits)
	}
	return out
}

// Entries returns the reference-prediction-table size.
func (p *IP) Entries() int { return len(p.table) }

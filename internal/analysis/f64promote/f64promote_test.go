package f64promote_test

import (
	"testing"

	"voyager/internal/analysis/analysistest"
	"voyager/internal/analysis/f64promote"
)

func TestF64Promote(t *testing.T) {
	dir := "testdata/src/f64pkg"
	a := f64promote.New([]string{analysistest.PkgPath(dir)}, []string{"meanAll"})
	analysistest.Run(t, a, dir)
}

func TestF64PromoteScopedToHotPackages(t *testing.T) {
	dir := "testdata/src/f64pkg"
	a := f64promote.New([]string{"some/other/pkg"}, nil)
	if got := analysistest.Findings(t, a, dir); len(got) != 0 {
		t.Fatalf("expected no findings outside hot packages, got %v", got)
	}
}

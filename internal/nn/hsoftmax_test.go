package nn

import (
	"math"
	"math/rand"
	"testing"

	"voyager/internal/tensor"
)

func TestHSoftmaxGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, v := range []int{2, 10, 64, 100, 101} {
		h := NewHSoftmax("hs", 8, v, rng)
		covered := h.Size * (h.Clusters - 1)
		last := v - covered
		if last < 1 || last > h.Size {
			t.Fatalf("v=%d: clusters=%d size=%d last=%d", v, h.Clusters, h.Size, last)
		}
		// Every class maps to a valid (cluster, member).
		for c := 0; c < v; c++ {
			cl, m := h.clusterOf(c)
			if cl >= h.Clusters {
				t.Fatalf("class %d cluster %d out of range", c, cl)
			}
			members := h.MemberHeads[cl].W.W.Cols
			if m >= members {
				t.Fatalf("class %d member %d ≥ %d in cluster %d", c, m, members, cl)
			}
		}
	}
}

func TestHSoftmaxRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for v<2")
		}
	}()
	NewHSoftmax("hs", 4, 1, rng)
}

func TestHSoftmaxLearnsClassification(t *testing.T) {
	// Map 6 distinct one-hot-ish inputs to 6 classes over 25 total classes;
	// the hierarchical head must learn it like a flat softmax would.
	rng := rand.New(rand.NewSource(3))
	const hidden, v, n = 8, 25, 6
	h := NewHSoftmax("hs", hidden, v, rng)
	proj := NewLinear("proj", n, hidden, rng)
	var ps ParamSet
	ps.Add(proj.Params()...)
	ps.Add(h.Params()...)
	opt := NewAdam(0.05)

	classes := []int{0, 4, 7, 12, 18, 24}
	inputs := tensor.NewMat(n, n)
	for i := 0; i < n; i++ {
		inputs.Set(i, i, 1)
	}
	targets := make([]int, n)
	copy(targets, classes)

	for step := 0; step < 300; step++ {
		tp := tensor.NewTape()
		x := proj.Forward(tp, tp.Const(inputs))
		loss := h.Loss(tp, x, targets)
		tp.Backward(loss)
		opt.Step(ps.All())
	}
	tp := tensor.NewTape()
	x := proj.Forward(tp, tp.Const(inputs))
	preds := h.Predict(x.Val, 1, 3)
	for i, want := range classes {
		if len(preds[i]) != 1 || preds[i][0] != want {
			t.Fatalf("input %d predicted %v, want %d", i, preds[i], want)
		}
	}
}

func TestHSoftmaxLossGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const hidden, v, batch = 3, 9, 4
	h := NewHSoftmax("hs", hidden, v, rng)
	x := tensor.NewMat(batch, hidden)
	x.Uniform(rng, 1)
	targets := []int{0, 3, 8, 5}

	build := func() (*tensor.Tape, *tensor.Node, *tensor.Node) {
		tp := tensor.NewTape()
		xn := tp.Param(x)
		loss := h.Loss(tp, xn, targets)
		return tp, loss, xn
	}
	for _, p := range h.Params() {
		p.ZeroGrad()
	}
	tp, loss, xn := build()
	tp.Backward(loss)

	const eps, tol = 1e-2, 3e-2
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		_, lp, _ := build()
		x.Data[i] = orig - eps
		_, lm, _ := build()
		x.Data[i] = orig
		numeric := (float64(lp.Val.Data[0]) - float64(lm.Val.Data[0])) / (2 * eps)
		analytic := float64(xn.Grad.Data[i])
		if math.Abs(numeric-analytic) > tol*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("x[%d]: analytic %g numeric %g", i, analytic, numeric)
		}
	}
}

// The whole point: per-prediction cost must be far below a flat head.
func TestHSoftmaxCostAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const hidden, v = 64, 10_000
	h := NewHSoftmax("hs", hidden, v, rng)
	flat := hidden * v
	hier := h.MACsPerPrediction(hidden, 3)
	if hier*3 > flat {
		t.Fatalf("hierarchical %d MACs vs flat %d: want ≥3x advantage", hier, flat)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"voyager/internal/eval"
	"voyager/internal/prefetch"
	"voyager/internal/prefetch/oracle"
	"voyager/internal/sim"
)

var allNames = []string{"astar", "bfs", "cc", "mcf", "omnetpp", "pr", "soplex", "sphinx", "xalancbmk", "search", "ads"}

var simNames = []string{"astar", "bfs", "cc", "mcf", "omnetpp", "pr", "soplex", "sphinx", "xalancbmk"}

// MainRow holds one benchmark's simulator results for every prefetcher.
type MainRow struct {
	Benchmark     string
	BaseIPC       float64
	OracleSpeedup float64 // oracle next-load prefetcher vs no prefetcher
	Results       map[string]sim.Result
}

// MainResult is the degree-1 simulator sweep behind Figures 5, 6 and 8.
type MainResult struct {
	Rows []MainRow
}

// Main runs (or returns the cached) degree-1 simulator sweep over the
// simulatable benchmarks with every prefetcher of the comparison.
func (r *Run) Main() *MainResult {
	if r.main != nil {
		return r.main
	}
	res := &MainResult{}
	cfg := sim.ScaledConfig()
	for _, name := range r.Opts.benchList(simNames) {
		tr := r.Opts.traceFor(r.cache, name)
		r.Opts.logf("figure 5/6/8: simulating %s", name)
		row := MainRow{Benchmark: name, Results: map[string]sim.Result{}}

		st := r.streamFor(name)
		base := sim.Simulate(tr, prefetch.Nil{}, cfg)
		row.BaseIPC = base.IPC
		// The oracle predicts over the LLC stream (the next miss-stream
		// line, a few stream-steps ahead so fills arrive on time).
		orcPreds := st.mapToOriginal(tr.Len(), oracle.New(st.Trace, 1, 4).Predictions)
		orc := sim.Simulate(tr, &prefetch.Precomputed{Label: "oracle", Predictions: orcPreds}, cfg)
		if base.IPC > 0 {
			row.OracleSpeedup = orc.IPC / base.IPC
		}

		for _, pf := range tablePrefetchers(1) {
			row.Results[pf.Name()] = sim.Simulate(tr, pf, cfg)
		}
		dl := r.dlstmFor(name)
		row.Results["delta-lstm"] = sim.Simulate(tr, &prefetch.Precomputed{
			Label: "delta-lstm", Predictions: st.mapToOriginal(tr.Len(), truncate(dl.Predictions(), 1))}, cfg)
		// The Voyager run goes through an explicit Machine so the span tracer
		// and decision log (when enabled) see the cache hierarchy: each
		// stamped decision resolves to useful/late/evicted/resident here.
		vp := r.voyagerFor(name)
		vm := sim.NewMachine(cfg)
		vm.Trace(r.Opts.Trace, "sim/"+name)
		vm.Provenance(vp.Cfg.Provenance)
		row.Results["voyager"] = vm.Run(tr, &prefetch.Precomputed{
			Label: "voyager", Predictions: st.mapToOriginal(tr.Len(), truncate(vp.Predictions(), 1))})
		// The distilled fast path replays the compiled lookup table online
		// over the same stream; the figures show what tabularization costs.
		row.Results["distilled"] = sim.Simulate(tr, &prefetch.Precomputed{
			Label: "distilled", Predictions: st.mapToOriginal(tr.Len(), truncate(r.distilledFor(name), 1))}, cfg)

		res.Rows = append(res.Rows, row)
	}
	r.main = res
	return res
}

// Figure5 renders per-benchmark prefetch accuracy (paper Figure 5).
func (m *MainResult) Figure5() string {
	return m.metricTable("Figure 5: Accuracy", func(res sim.Result) float64 { return res.Accuracy() })
}

// Figure6 renders per-benchmark coverage (paper Figure 6).
func (m *MainResult) Figure6() string {
	return m.metricTable("Figure 6: Coverage", func(res sim.Result) float64 { return res.Coverage() })
}

// Figure8 renders IPC normalized to the no-prefetcher baseline (Figure 8).
func (m *MainResult) Figure8() string {
	var b strings.Builder
	b.WriteString("Figure 8: IPC (normalized to no prefetcher)\n")
	fmt.Fprintf(&b, "  %-10s %8s", "benchmark", "oracle")
	for _, p := range BaselineNames {
		fmt.Fprintf(&b, " %10s", p)
	}
	b.WriteString("\n")
	sums := make(map[string]float64)
	var oracleSum float64
	for _, row := range m.Rows {
		fmt.Fprintf(&b, "  %-10s %8.3f", row.Benchmark, row.OracleSpeedup)
		oracleSum += row.OracleSpeedup
		for _, p := range BaselineNames {
			v := row.Results[p].IPC / row.BaseIPC
			sums[p] += v
			fmt.Fprintf(&b, " %10.3f", v)
		}
		b.WriteString("\n")
	}
	n := float64(len(m.Rows))
	fmt.Fprintf(&b, "  %-10s %8.3f", "mean", oracleSum/n)
	for _, p := range BaselineNames {
		fmt.Fprintf(&b, " %10.3f", sums[p]/n)
	}
	b.WriteString("\n")
	return b.String()
}

func (m *MainResult) metricTable(title string, metric func(sim.Result) float64) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "  %-10s", "benchmark")
	for _, p := range BaselineNames {
		fmt.Fprintf(&b, " %10s", p)
	}
	b.WriteString("\n")
	sums := make(map[string]float64)
	for _, row := range m.Rows {
		fmt.Fprintf(&b, "  %-10s", row.Benchmark)
		for _, p := range BaselineNames {
			v := metric(row.Results[p])
			sums[p] += v
			fmt.Fprintf(&b, " %10.3f", v)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-10s", "mean")
	for _, p := range BaselineNames {
		fmt.Fprintf(&b, " %10.3f", sums[p]/float64(len(m.Rows)))
	}
	b.WriteString("\n")
	return b.String()
}

// Figure7Row is one benchmark's unified accuracy/coverage per prefetcher.
type Figure7Row struct {
	Benchmark string
	Values    map[string]float64
}

// Figure7Result is the unified accuracy/coverage comparison including the
// Google workloads (paper Figure 7).
type Figure7Result struct {
	Window int
	Rows   []Figure7Row
}

// Figure7 computes the unified accuracy/coverage metric for every
// prefetcher on every benchmark (including search and ads, which cannot be
// simulated for IPC).
func (r *Run) Figure7() *Figure7Result {
	res := &Figure7Result{Window: r.Opts.Window}
	for _, name := range r.Opts.benchList(allNames) {
		st := r.streamFor(name)
		tr := st.Trace
		skip := r.Opts.epochLen(tr.Len()) // no predictions in the first epoch
		r.Opts.logf("figure 7: %s", name)
		row := Figure7Row{Benchmark: name, Values: map[string]float64{}}
		for _, pf := range tablePrefetchers(1) {
			preds := eval.CollectPredictions(tr, pf)
			row.Values[pf.Name()] = eval.Unified(tr, preds, r.Opts.Window, skip)
		}
		dl := r.dlstmFor(name)
		row.Values["delta-lstm"] = eval.Unified(tr, truncate(dl.Predictions(), 1), r.Opts.Window, skip)
		vp := r.voyagerFor(name)
		row.Values["voyager"] = eval.Unified(tr, truncate(vp.Predictions(), 1), r.Opts.Window, skip)
		row.Values["distilled"] = eval.Unified(tr, truncate(r.distilledFor(name), 1), r.Opts.Window, skip)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders Figure 7.
func (f *Figure7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Unified accuracy/coverage (window %d)\n", f.Window)
	fmt.Fprintf(&b, "  %-10s", "benchmark")
	for _, p := range BaselineNames {
		fmt.Fprintf(&b, " %10s", p)
	}
	b.WriteString("\n")
	sums := make(map[string]float64)
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "  %-10s", row.Benchmark)
		for _, p := range BaselineNames {
			sums[p] += row.Values[p]
			fmt.Fprintf(&b, " %10.3f", row.Values[p])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-10s", "mean")
	for _, p := range BaselineNames {
		fmt.Fprintf(&b, " %10.3f", sums[p]/float64(len(f.Rows)))
	}
	b.WriteString("\n")
	return b.String()
}

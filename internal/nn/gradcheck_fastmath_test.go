package nn

import (
	"math"
	"math/rand"
	"testing"

	"voyager/internal/tensor"
)

// Finite-difference gradient check through an LSTM step + linear head at
// dimensions wide enough (≥ 8 inner terms) to exercise the 4-wide fused
// matmul passes, not just their scalar remainder loops — run in both exact
// and fast-math mode. Training under fast-math uses the reassociated
// kernels for forward AND backward, so the analytic gradient must stay
// consistent with the finite-difference quotient of the same kernels.
func TestGradCheckFusedKernels(t *testing.T) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"exact", false}, {"fastmath", true}} {
		t.Run(mode.name, func(t *testing.T) {
			tensor.SetFastMath(mode.fast)
			defer tensor.SetFastMath(false)
			rng := rand.New(rand.NewSource(21))
			const in, hidden, batch = 9, 8, 5
			cell := NewLSTM("lstm", in, hidden, rng)
			head := NewLinear("head", hidden, 3, rng)
			x1 := tensor.NewMat(batch, in)
			x2 := tensor.NewMat(batch, in)
			x1.Uniform(rng, 1)
			x2.Uniform(rng, 1)
			targets := []int{0, 2, 1, 0, 2}

			build := func() (*tensor.Tape, *tensor.Node) {
				tp := tensor.NewTape()
				s := cell.Run(tp, []*tensor.Node{tp.Const(x1), tp.Const(x2)})
				logits := head.Forward(tp, s.H)
				loss, _ := tp.SoftmaxCrossEntropy(logits, targets)
				return tp, loss
			}

			params := append(cell.Params(), head.Params()...)
			for _, p := range params {
				p.ZeroGrad()
			}
			tp, loss := build()
			tp.Backward(loss)

			const eps, tol = 1e-2, 3e-2
			for _, p := range params {
				stride := 1 + p.Size()/12
				for i := 0; i < p.Size(); i += stride {
					orig := p.W.Data[i]
					p.W.Data[i] = orig + eps
					_, lp := build()
					p.W.Data[i] = orig - eps
					_, lm := build()
					p.W.Data[i] = orig
					numeric := (float64(lp.Val.Data[0]) - float64(lm.Val.Data[0])) / (2 * eps)
					analytic := float64(p.Grad.Data[i])
					diff := math.Abs(numeric - analytic)
					scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
					if diff/scale > tol {
						t.Fatalf("%s elem %d: analytic %g numeric %g", p.Name, i, analytic, numeric)
					}
				}
			}
		})
	}
}

// Package atomicmix flags variables accessed both through sync/atomic
// functions and by plain load/store anywhere in the same package.
//
// The tracing publish protocol (single writer appends the event, then
// atomically publishes the count) and the metrics counters are only correct
// if *every* cross-goroutine access to the shared word goes through
// sync/atomic: one plain read of a field that is elsewhere written with
// atomic.StoreUint64 is a data race the race detector only catches when a
// test happens to interleave it. The migration to atomic.Uint64-typed
// fields removes the hazard by construction — the type has no plain load —
// but function-style atomics on ordinary fields keep appearing in new code,
// and there the compiler checks nothing.
//
// The analyzer is package-scoped and symbol-precise: it records every
// variable (struct field or package-level var) whose address is taken as
// the pointer argument of a sync/atomic call, then reports every other
// plain access to the same variable object. Composite-literal
// initialization is exempt (construction happens-before sharing), as are
// test files (tests observe counters after joins). A plain access that is
// provably single-threaded — e.g. re-reading a counter inside the only
// writer — carries //lint:ignore atomicmix <reason>.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"voyager/internal/analysis"
)

// New returns the atomicmix analyzer. It runs on every non-test package.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "atomicmix",
		Doc:  "flags variables accessed both via sync/atomic and by plain load/store",
		Run:  run,
	}
}

// atomicArgPositions: every sync/atomic function takes the shared word's
// address as its first argument.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(id)
	pkg, ok := obj.(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

// targetVar resolves &expr (the first argument of an atomic call) or a
// plain expr to the variable object it denotes: a struct field (the
// canonical *types.Var shared by every selection of that field) or a
// package-level/local var.
func targetVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return targetVar(pass, e.X)
	case *ast.Ident:
		v, _ := pass.ObjectOf(e).(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel := pass.Pkg.Info.Selections[e]; sel != nil {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		// Qualified identifier (pkg.Var) or field of a non-selection.
		v, _ := pass.ObjectOf(e.Sel).(*types.Var)
		return v
	case *ast.IndexExpr:
		// Atomic ops on slice/array elements: identify by the base
		// variable — mixing atomic and plain element access through the
		// same base is still a race.
		return targetVar(pass, e.X)
	case *ast.StarExpr:
		return targetVar(pass, e.X)
	}
	return nil
}

type access struct {
	pos  token.Pos
	expr ast.Expr
}

func run(pass *analysis.Pass) {
	if pass.Pkg.IsTest {
		pass.SkipPackage()
		return
	}
	atomicUses := map[*types.Var][]access{} // via sync/atomic
	plainUses := map[*types.Var][]access{}  // everything else

	// Nodes to skip when collecting plain accesses: the &x inside atomic
	// calls, and composite-literal field keys (construction).
	inAtomic := map[ast.Node]bool{}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			arg := call.Args[0]
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				if v := targetVar(pass, u.X); v != nil {
					atomicUses[v] = append(atomicUses[v], access{pos: u.X.Pos(), expr: u.X})
					inAtomic[u.X] = true
				}
			}
			return true
		})
	}
	if len(atomicUses) == 0 {
		return
	}

	for _, f := range pass.Pkg.Files {
		var walk func(n ast.Node, inConstruction bool) bool
		walk = func(n ast.Node, inConstruction bool) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				// S{field: v}: the keyed write happens before the value
				// can be shared; recurse with construction context so the
				// keys are exempt (the *values* are still scanned).
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						ast.Inspect(kv.Value, func(m ast.Node) bool { return walk(m, false) })
					} else {
						ast.Inspect(el, func(m ast.Node) bool { return walk(m, false) })
					}
				}
				return false
			case *ast.SelectorExpr:
				if inAtomic[n] {
					return false
				}
				if sel := pass.Pkg.Info.Selections[n]; sel != nil {
					if v, _ := sel.Obj().(*types.Var); v != nil {
						if _, hot := atomicUses[v]; hot {
							plainUses[v] = append(plainUses[v], access{pos: n.Pos(), expr: n})
						}
					}
					// Keep walking: the receiver chain may itself select
					// a mixed field.
					ast.Inspect(n.X, func(m ast.Node) bool { return walk(m, false) })
					return false
				}
			case *ast.Ident:
				if inAtomic[n] || pass.Pkg.Info.Defs[n] != nil {
					return false // defining occurrence, not an access
				}
				if v, _ := pass.ObjectOf(n).(*types.Var); v != nil {
					if _, hot := atomicUses[v]; hot && !v.IsField() {
						plainUses[v] = append(plainUses[v], access{pos: n.Pos(), expr: n})
					}
				}
			}
			return true
		}
		ast.Inspect(f, func(n ast.Node) bool { return walk(n, false) })
	}

	for v, plains := range plainUses {
		first := atomicUses[v][0]
		firstPos := pass.Fset.Position(first.pos)
		for _, p := range plains {
			pass.Reportf(p.pos,
				"%s is accessed via sync/atomic at %s:%d but read/written plainly here: mixed atomic and non-atomic access is a data race; use sync/atomic (or an atomic.%s-style typed field) for every access, or //lint:ignore atomicmix <why this access is single-threaded>",
				v.Name(), shortFile(firstPos.Filename), firstPos.Line, suggestType(v))
		}
	}
}

func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// suggestType names the typed-atomic replacement for v's underlying type.
func suggestType(v *types.Var) string {
	if b, ok := v.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Uint32:
			return "Uint32"
		case types.Uint64, types.Uintptr:
			return "Uint64"
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		}
	}
	return "Value"
}

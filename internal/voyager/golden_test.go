package voyager

import (
	"testing"
)

// Golden fixed-seed outputs captured from the pre-arena, pre-fusion
// implementation (commit bc334f1). The arena tape, the fused LSTM cell and
// the in-place gradient kernels are all required to preserve per-element
// float32 operation order, so end-to-end training must stay bit-identical:
// same epoch losses, same predictions, at every worker count.
var goldenLosses = map[int][]float32{
	1: {0.19748633, 0.18969719, 0.18703955, 0.18488663},
	4: {0.19796471, 0.19005823, 0.18713123, 0.1853421},
}

const goldenPredHash = uint64(0x841f3e64aba880a3)

func goldenRun(t *testing.T, workers int, unfused bool) ([]float32, uint64) {
	t.Helper()
	cycle := []uint64{0x10<<6 | 5, 0x22<<6 | 61, 0x15<<6 | 0, 0x9<<6 | 33,
		0x30<<6 | 7, 0x11<<6 | 12, 0x28<<6 | 50, 0x3<<6 | 18}
	tr := cyclicTrace(cycle, 500)
	cfg := FastConfig()
	cfg.EpochAccesses = 1000
	cfg.Workers = workers
	cfg.UnfusedLSTM = unfused
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("workers=%d unfused=%v: %v", workers, unfused, err)
	}
	var h uint64 = 1469598103934665603
	for _, preds := range p.Predictions() {
		for _, a := range preds {
			h ^= a
			h *= 1099511628211
		}
	}
	return p.EpochLosses(), h
}

// TestGoldenEquivalenceFixedSeed locks end-to-end training to the values the
// pre-optimization implementation produced: epoch losses and the FNV hash of
// every prediction must match bit-for-bit at 1 and 4 workers, on both the
// fused and the unfused LSTM path.
func TestGoldenEquivalenceFixedSeed(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, unfused := range []bool{false, true} {
			losses, h := goldenRun(t, workers, unfused)
			want := goldenLosses[workers]
			if len(losses) != len(want) {
				t.Fatalf("workers=%d unfused=%v: %d epochs, want %d (losses %v)",
					workers, unfused, len(losses), len(want), losses)
			}
			for i := range want {
				if losses[i] != want[i] {
					t.Fatalf("workers=%d unfused=%v: epoch %d loss %v, want %v (bit-identical)",
						workers, unfused, i, losses[i], want[i])
				}
			}
			if h != goldenPredHash {
				t.Fatalf("workers=%d unfused=%v: prediction hash %#x, want %#x",
					workers, unfused, h, goldenPredHash)
			}
		}
	}
}

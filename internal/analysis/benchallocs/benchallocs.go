// Package benchallocs flags Benchmark functions that never call
// b.ReportAllocs().
//
// The PR-2 allocation-regression harness compares allocs/op across
// benchmark runs; a benchmark that forgets ReportAllocs silently drops out
// of that safety net, so a later allocation regression on its path goes
// unnoticed. The check accepts a ReportAllocs call anywhere inside the
// benchmark body (including sub-benchmark closures passed to b.Run).
package benchallocs

import (
	"go/ast"

	"voyager/internal/analysis"
)

// New returns the analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "benchallocs",
		Doc:  "flags Benchmark* functions missing b.ReportAllocs()",
		Run: func(pass *analysis.Pass) {
			for _, f := range pass.Pkg.AllSyntax() {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil || fd.Recv != nil {
						continue
					}
					if !isBenchmark(fd) {
						continue
					}
					if !callsReportAllocs(fd.Body) {
						pass.Reportf(fd.Pos(), "%s does not call b.ReportAllocs(): allocs/op stays invisible to the allocation-regression harness", fd.Name.Name)
					}
				}
			}
		},
	}
}

// isBenchmark matches the testing package's definition: a top-level
// BenchmarkXxx function with a single *testing.B parameter.
func isBenchmark(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if len(name) < len("Benchmark") || name[:len("Benchmark")] != "Benchmark" {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) > 1 {
		return false
	}
	star, ok := params.List[0].Type.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "B" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "testing"
}

func callsReportAllocs(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "ReportAllocs" {
			found = true
			return false
		}
		return true
	})
	return found
}

// Command vetvoyager runs the project's static-analysis suite — the
// determinism, arena-lifetime, and float32 invariants the compiler cannot
// check — over the module and exits non-zero if any finding is not
// suppressed by a //lint:ignore directive.
//
// Usage:
//
//	go run ./cmd/vetvoyager ./...
//	go run ./cmd/vetvoyager internal/tensor internal/nn
//	go run ./cmd/vetvoyager -q ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"voyager/internal/analysis"
	"voyager/internal/analysis/suite"
)

func main() {
	quiet := flag.Bool("q", false, "print only findings, no per-analyzer summary")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vetvoyager [-q] [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the voyager static-analysis suite (default: ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvoyager:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvoyager:", err)
		os.Exit(2)
	}

	res := analysis.Run(pkgs, analyzers)
	for _, d := range res.Findings {
		fmt.Println(d)
	}
	if !*quiet {
		names := make([]string, 0, len(res.PerCheck))
		for name := range res.PerCheck {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "vetvoyager: %d packages\n", len(pkgs))
		for _, name := range names {
			line := fmt.Sprintf("  %-12s %d finding(s)", name, res.PerCheck[name])
			if n := res.Suppressed[name]; n > 0 {
				line += fmt.Sprintf(", %d suppressed", n)
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

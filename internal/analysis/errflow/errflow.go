// Package errflow flags error results from serialization and I/O calls —
// Save/Load/Write/Close/Flush/Encode/Fprintf and friends — that are
// silently discarded or assigned and then dead on at least one CFG path.
//
// The repo's durability story runs through exactly these calls: distill's
// checksummed Save/Load, the trace writers, the metrics NDJSON streamer,
// the tracing exporter, and the cmd/ binaries' report files. A Write or
// Close whose error vanishes turns "full disk" into "silently truncated
// table that fails its checksum three PRs later" — or worse, doesn't fail
// it, because the write that vanished was the checksum.
//
// Two finding kinds:
//
//   - Discards: a watched call used as a bare statement (or deferred as
//     one). An explicit `_ = f.Close()` is NOT flagged: assigning the
//     blank identifier is the audited way to say "this error is
//     intentionally dropped" (read-side closes after a successful read,
//     best-effort cleanup). The bare statement is the silent loss.
//   - Assigned-then-dead: `err := f()` where some path reaches the
//     function exit, or another assignment to err, without ever reading
//     err. This is the flow-sensitive case the PR-3 analyzers could not
//     see — an early return between assignment and check, a branch that
//     skips the check, a loop iteration that overwrites last round's
//     unchecked error.
//
// The analyzer runs over the configured serialization-critical packages;
// pattern entries ending in "/..." match by prefix (used for voyager/cmd).
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"voyager/internal/analysis"
	"voyager/internal/analysis/cfg"
)

// DefaultCalls is the production watch list: the serialization/IO call
// names whose error results guard durability.
var DefaultCalls = []string{
	"Close", "Save", "Load", "Write", "WriteString", "WriteTo", "WriteFile",
	"Flush", "Fprintf", "Fprintln", "Fprint", "Encode", "Sync", "Rename",
}

// New returns the errflow analyzer scoped to the given package patterns
// (exact import paths, or prefix patterns ending in "/...") watching the
// given callee base names.
func New(pkgs []string, calls []string) *analysis.Analyzer {
	watched := make(map[string]bool, len(calls))
	for _, c := range calls {
		watched[c] = true
	}
	var exact []string
	var prefixes []string
	for _, p := range pkgs {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			prefixes = append(prefixes, rest+"/")
		} else {
			exact = append(exact, p)
		}
	}
	return &analysis.Analyzer{
		Name: "errflow",
		Doc:  "flags discarded or assigned-then-dead errors from serialization/IO calls",
		Run: func(pass *analysis.Pass) {
			if pass.Pkg.IsTest {
				pass.SkipPackage()
				return
			}
			match := false
			for _, p := range exact {
				if pass.Pkg.Path == p {
					match = true
				}
			}
			for _, p := range prefixes {
				if strings.HasPrefix(pass.Pkg.Path, p) {
					match = true
				}
			}
			if !match {
				pass.SkipPackage()
				return
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch fn := n.(type) {
					case *ast.FuncDecl:
						if fn.Body != nil {
							checkFunc(pass, watched, fn, fn.Type)
						}
					case *ast.FuncLit:
						checkFunc(pass, watched, fn, fn.Type)
					}
					return true
				})
			}
		},
	}
}

// watchedCall reports whether call is a watched callee whose last result
// is an error. Writes to os.Stderr are exempt: a failed diagnostic write
// has nowhere left to report itself.
func watchedCall(pass *analysis.Pass, watched map[string]bool, call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	if !watched[name] {
		return false
	}
	if len(call.Args) > 0 && isStderr(pass, call.Args[0]) {
		return false
	}
	// bytes.Buffer and strings.Builder writes cannot fail (their error
	// results exist only to satisfy io interfaces), whether called as
	// methods or reached through fmt.Fprint*'s writer argument.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isBufferish(pass.TypeOf(sel.X)) {
		return false
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 && isBufferish(pass.TypeOf(call.Args[0])) {
		return false
	}
	return errResultIndex(pass, call) >= 0
}

// isBufferish reports whether t is bytes.Buffer or strings.Builder
// (possibly behind a pointer).
func isBufferish(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	s := t.String()
	return s == "bytes.Buffer" || s == "strings.Builder"
}

// isStderr matches the expression os.Stderr.
func isStderr(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stderr" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pkg.Imported().Path() == "os"
}

// errResultIndex returns the index of the trailing error result of call,
// or -1 if the call's type does not end in error.
func errResultIndex(pass *analysis.Pass, call *ast.CallExpr) int {
	t := pass.TypeOf(call)
	if t == nil {
		return -1
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return -1
		}
		if isErrorType(tup.At(tup.Len() - 1).Type()) {
			return tup.Len() - 1
		}
		return -1
	}
	if isErrorType(t) {
		return 0
	}
	return -1
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// callLabel renders the callee for diagnostics ("f.Close", "tab.Save").
func callLabel(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// unchecked is the dataflow fact: error vars holding an unread watched
// result, keyed by variable with the position (and label) of the
// assignment that produced the value.
type origin struct {
	pos   token.Pos
	label string
}
type fact map[*types.Var]origin

func (f fact) clone() fact {
	m := make(fact, len(f))
	for k, v := range f {
		m[k] = v
	}
	return m
}

func checkFunc(pass *analysis.Pass, watched map[string]bool, fn ast.Node, ftype *ast.FuncType) {
	// Vars referenced inside nested function literals (or with their
	// address taken) may be read on paths this CFG cannot see; exclude
	// them from tracking entirely.
	escaped := map[*types.Var]bool{}
	var body *ast.BlockStmt
	if d, ok := fn.(*ast.FuncDecl); ok {
		body = d.Body
	} else {
		body = fn.(*ast.FuncLit).Body
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == fn {
				return true
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, _ := pass.ObjectOf(id).(*types.Var); v != nil {
						escaped[v] = true
					}
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := n.X.(*ast.Ident); ok {
					if v, _ := pass.ObjectOf(id).(*types.Var); v != nil {
						escaped[v] = true
					}
				}
			}
		}
		return true
	})

	// Named result vars: a bare `return` reads them implicitly.
	var namedResults []*types.Var
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if v, _ := pass.ObjectOf(name).(*types.Var); v != nil {
					namedResults = append(namedResults, v)
				}
			}
		}
	}

	g := cfg.Build(fn)

	// Pass 1, flow-insensitive: bare-statement and deferred discards.
	for _, blk := range g.Blocks {
		if !g.Reachable(blk) {
			continue
		}
		for _, n := range blk.Nodes {
			var call *ast.CallExpr
			var deferred bool
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call, deferred = s.Call, true
			}
			if call == nil || !watchedCall(pass, watched, call) {
				continue
			}
			how := "discarded"
			if deferred {
				how = "deferred with its error discarded"
			}
			pass.Reportf(call.Pos(), "error from %s %s: check it, or make the drop explicit with `_ = %s(...)`",
				callLabel(call), how, callLabel(call))
		}
	}

	// Pass 2, flow-sensitive: assigned-then-dead on some path.
	type report struct {
		orig origin
		why  string
	}
	reported := map[token.Pos]report{}

	transfer := func(blk *cfg.Block, in fact) fact {
		out := in.clone()
		for _, n := range blk.Nodes {
			processNode(pass, watched, escaped, namedResults, fn.Pos(), fn.End(), n, out, func(o origin, why string) {
				if _, dup := reported[o.pos]; !dup {
					reported[o.pos] = report{orig: o, why: why}
				}
			})
		}
		return out
	}
	fw := cfg.Forward[fact]{
		Init: fact{},
		Join: func(a, b fact) fact {
			m := a.clone()
			for k, v := range b {
				if cur, ok := m[k]; !ok || v.pos < cur.pos {
					m[k] = v
				}
			}
			return m
		},
		Transfer: transfer,
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
	}
	in, _ := fw.Run(g)

	// Anything still unchecked at the exit died there.
	if exitFact, ok := in[g.Exit()]; ok {
		for _, o := range exitFact {
			if _, dup := reported[o.pos]; !dup {
				reported[o.pos] = report{orig: o, why: "never read before the function returns on at least one path"}
			}
		}
	}
	for _, r := range reported {
		pass.Reportf(r.orig.pos, "error from %s assigned here is %s: handle it on every path (or drop it explicitly with `_ =`)",
			r.orig.label, r.why)
	}
}

// processNode applies one statement's gen/kill effects to the fact map.
// report is called when an unchecked error is overwritten.
func processNode(pass *analysis.Pass, watched map[string]bool, escaped map[*types.Var]bool,
	namedResults []*types.Var, fnPos, fnEnd token.Pos, n ast.Node, out fact, report func(origin, string)) {

	// Reads anywhere in the statement kill trackings — except the
	// assignment LHS idents handled below.
	assignLHS := map[*ast.Ident]bool{}
	var genVar *types.Var
	var genOrigin origin

	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				assignLHS[id] = true
			}
		}
		if len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && watchedCall(pass, watched, call) {
				idx := errResultIndex(pass, call)
				if idx < len(as.Lhs) {
					if id, ok := as.Lhs[idx].(*ast.Ident); ok && id.Name != "_" {
						// Track only vars declared inside this function:
						// a captured outer var (e.g. a named result set
						// from a deferred closure) is read on paths this
						// CFG cannot see.
						if v, _ := pass.ObjectOf(id).(*types.Var); v != nil && !escaped[v] &&
							v.Pos() >= fnPos && v.Pos() <= fnEnd {
							genVar = v
							genOrigin = origin{pos: id.Pos(), label: callLabel(call)}
						}
					}
				}
			}
		}
	}

	// Kill on reads.
	cfg.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || assignLHS[id] {
			return true
		}
		if v, _ := pass.ObjectOf(id).(*types.Var); v != nil {
			delete(out, v)
		}
		return true
	})

	// A bare return reads every named result.
	if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 0 {
		for _, v := range namedResults {
			delete(out, v)
		}
	}

	// Overwrite of a still-unchecked tracked var: report at the original
	// assignment. This covers both watched-over-watched and ordinary
	// assignments clobbering a watched result.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				// The gen for this statement applies below, so a tracked
				// entry here always flowed in from before the statement —
				// including around a loop back edge from this very line.
				if v, _ := pass.ObjectOf(id).(*types.Var); v != nil {
					if o, tracked := out[v]; tracked {
						report(o, "overwritten before being read on at least one path")
						delete(out, v)
					}
				}
			}
		}
	}

	if genVar != nil {
		out[genVar] = genOrigin
	}
}

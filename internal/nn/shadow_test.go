package nn

import (
	"math/rand"
	"testing"

	"voyager/internal/tensor"
)

func TestShadowCloneSharesWeightsOwnsGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewParam("w", 3, 4)
	p.W.Glorot(rng)
	s := p.ShadowClone()
	if s.W != p.W {
		t.Fatalf("shadow must alias the master weight matrix")
	}
	if s.Grad == p.Grad {
		t.Fatalf("shadow must own its gradient buffer")
	}
	s.Grad.Fill(1)
	for _, v := range p.Grad.Data {
		if v != 0 {
			t.Fatalf("shadow gradient leaked into master")
		}
	}
}

func TestMergeGradDense(t *testing.T) {
	p := NewParam("w", 2, 2)
	s := p.ShadowClone()
	p.Grad.Fill(1)
	s.Grad.Fill(2)
	p.MergeGrad(s)
	for _, v := range p.Grad.Data {
		if v != 3 {
			t.Fatalf("merged grad %v want 3", v)
		}
	}
	for _, v := range s.Grad.Data {
		if v != 0 {
			t.Fatalf("shadow grad not cleared: %v", v)
		}
	}
}

func TestMergeGradSparseTouchedRows(t *testing.T) {
	p := NewSparseParam("emb", 5, 3)
	s := p.ShadowClone()
	if !s.Sparse() {
		t.Fatalf("shadow of sparse param must be sparse")
	}
	// Master touched row 1; shadow touched rows 1 and 4.
	for i := range p.Grad.Row(1) {
		p.Grad.Row(1)[i] = 1
	}
	p.Touch(1)
	for i := range s.Grad.Row(1) {
		s.Grad.Row(1)[i] = 2
	}
	s.Touch(1)
	for i := range s.Grad.Row(4) {
		s.Grad.Row(4)[i] = 5
	}
	s.Touch(4)

	p.MergeGrad(s)
	for _, v := range p.Grad.Row(1) {
		if v != 3 {
			t.Fatalf("row 1 merged grad %v want 3", v)
		}
	}
	for _, v := range p.Grad.Row(4) {
		if v != 5 {
			t.Fatalf("row 4 merged grad %v want 5", v)
		}
	}
	if len(s.touched) != 0 {
		t.Fatalf("shadow touched set not cleared")
	}
	if _, ok := p.touched[4]; !ok {
		t.Fatalf("master must mark merged rows touched")
	}
	// ZeroGrad on the master must clear both rows (it only walks touched).
	p.ZeroGrad()
	for r := 0; r < 5; r++ {
		for _, v := range p.Grad.Row(r) {
			if v != 0 {
				t.Fatalf("row %d not cleared after ZeroGrad", r)
			}
		}
	}
}

// A worker training through shadow layers must produce the same gradients as
// the master layers would, and merging must deliver them to the master.
func TestShadowLayersGradientEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	emb := NewEmbedding("emb", 6, 4, rng)
	lin := NewLinear("lin", 4, 3, rng)
	ids := []int{1, 3, 3, 5}
	pos := [][]int{{0}, {1}, {2}, {0}}

	run := func(e *Embedding, l *Linear) float32 {
		tp := tensor.NewTape()
		h := e.Lookup(tp, ids)
		logits := l.Forward(tp, h)
		loss, _ := tp.SigmoidBCEMulti(logits, pos)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}

	wantLoss := run(emb, lin)
	wantWG := lin.W.Grad.Clone()
	wantEG := emb.Table.Grad.Clone()
	lin.W.ZeroGrad()
	lin.B.ZeroGrad()
	emb.Table.ZeroGrad()

	se, sl := emb.ShadowClone(), lin.ShadowClone()
	gotLoss := run(se, sl)
	if gotLoss != wantLoss {
		t.Fatalf("shadow loss %v want %v", gotLoss, wantLoss)
	}
	// Master grads untouched until merge.
	for _, v := range lin.W.Grad.Data {
		if v != 0 {
			t.Fatalf("master grad written before merge")
		}
	}
	lin.W.MergeGrad(sl.W)
	lin.B.MergeGrad(sl.B)
	emb.Table.MergeGrad(se.Table)
	for i, v := range lin.W.Grad.Data {
		if v != wantWG.Data[i] {
			t.Fatalf("merged W grad [%d] = %v want %v", i, v, wantWG.Data[i])
		}
	}
	for i, v := range emb.Table.Grad.Data {
		if v != wantEG.Data[i] {
			t.Fatalf("merged embedding grad [%d] = %v want %v", i, v, wantEG.Data[i])
		}
	}
}

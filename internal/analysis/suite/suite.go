// Package suite assembles the project's analyzer set with its production
// configuration: which packages are determinism-critical, which are hot
// float32 kernels, and which functions are intentional wide accumulators.
// cmd/vetvoyager and TestAnalyzersCleanOnRepo both run exactly this suite,
// so the CLI and `go test ./...` can never disagree about what is clean.
package suite

import (
	"voyager/internal/analysis"
	"voyager/internal/analysis/arenaescape"
	"voyager/internal/analysis/atomicmix"
	"voyager/internal/analysis/benchallocs"
	"voyager/internal/analysis/errflow"
	"voyager/internal/analysis/f64promote"
	"voyager/internal/analysis/hotalloc"
	"voyager/internal/analysis/maporder"
	"voyager/internal/analysis/sharedrand"
	"voyager/internal/analysis/waitleak"
)

// CriticalPackages are the packages whose outputs must be bit-identical
// across runs and worker counts: the tensor kernels (including the
// inference-only quantized kernels, which are deterministic within a
// build even though they waive the cross-mode bit-identity contract),
// the neural layers, the training engine, the vocabulary/label builders
// that fix token ids for the lifetime of a model, the metrics registry
// whose snapshots are diffed byte-for-byte in the differential tests,
// and the span tracer whose logical-clock exports must reproduce
// byte-for-byte, and the distillation compiler whose tables must be
// byte-identical for one (model, trace, params) triple. The serving
// daemon joins the list because its responses are byte-compared against
// offline inference (the golden differential) — a nondeterministic map
// walk in its session or eviction paths would be a serving-order bug.
// The quality scorer joins for the same reason the metrics registry did:
// its rolling-window counters are asserted bit-for-bit across parallel
// and serial replays, so an ordered map walk anywhere in scoring or
// reporting would break the replay-determinism contract.
var CriticalPackages = []string{
	"voyager/internal/tensor",
	"voyager/internal/tensor/quant",
	"voyager/internal/nn",
	"voyager/internal/voyager",
	"voyager/internal/vocab",
	"voyager/internal/label",
	"voyager/internal/metrics",
	"voyager/internal/tracing",
	"voyager/internal/distill",
	"voyager/internal/serve",
	"voyager/internal/serve/quality",
}

// HotKernelPackages must stay in float32 end to end. The quantized
// kernels qualify: their only float64 appearances are bit-pattern
// helpers (math.Float32bits/frombits), never float64 arithmetic. The
// distill compiler aggregates teacher weights in float32 by the same
// contract (its float64 use is confined to the Agreement ratio, which
// never truncates back).
var HotKernelPackages = []string{
	"voyager/internal/tensor",
	"voyager/internal/tensor/quant",
	"voyager/internal/distill",
}

// WideAccumulators are tensor functions that intentionally accumulate in
// float64: scalar reductions whose single rounding at the end is part of
// the golden numerics (changing them would change every golden test), and
// the scalar transcendental helpers that have no float32 stdlib
// counterpart.
var WideAccumulators = []string{
	"sigmoid32",
	"tanh32",
	"softmaxRow",
	"SoftmaxCrossEntropy",
	"SigmoidBCEWeighted",
	"MeanAll",
	"SumAll",
}

// ErrFlowPackages are the serialization-critical packages: every Save /
// Load / Write / Close / Fprintf error in them guards durability — a
// dropped one turns a full disk into a silently truncated table or trace.
// The cmd/... prefix covers every binary's report and output files; the
// serving daemon is here because a dropped write/flush error on its wire
// path would silently hang a client waiting for a response frame.
var ErrFlowPackages = []string{
	"voyager/internal/distill",
	"voyager/internal/trace",
	"voyager/internal/tracing",
	"voyager/internal/metrics",
	"voyager/internal/serve",
	"voyager/internal/serve/quality",
	"voyager/cmd/...",
}

// Analyzers returns the production analyzer suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.New(CriticalPackages...),
		arenaescape.New("voyager/internal/tensor", "voyager/internal/tracing"),
		f64promote.New(HotKernelPackages, WideAccumulators),
		sharedrand.New(),
		benchallocs.New(),
		atomicmix.New(),
		errflow.New(ErrFlowPackages, errflow.DefaultCalls),
		hotalloc.New(),
		waitleak.New(),
	}
}

package serve

import (
	"sync"
	"testing"
	"time"

	"voyager/internal/metrics"
	"voyager/internal/prefetch/distilled"
	"voyager/internal/serve/quality"
	"voyager/internal/tracing"
)

// qualityTracker returns a tracker wired to a fresh registry, sized so the
// fixture trace rotates its windows several times.
func qualityTracker(reg *metrics.Registry, shadowEvery int) *quality.Tracker {
	return quality.New(quality.Config{
		UsefulK:     16,
		RetainK:     64,
		WindowEvery: 200,
		Windows:     2,
		ShadowEvery: shadowEvery,
		Metrics:     reg,
	})
}

// TestQualityPerturbsNothing is the acceptance gate that observability is
// pure: the PR-9 golden differential — every response bit-identical to the
// offline oracle — must hold with quality telemetry AND shadow sampling
// enabled. Four concurrent model-tier streams, scoring on, shadow ticking
// (model-tier requests never shadow, but the tracker is live throughout).
func TestQualityPerturbsNothing(t *testing.T) {
	fixture(t)
	reg := metrics.NewRegistry()
	s := startServer(t, Config{
		Model:    fx.m4,
		MaxBatch: 16,
		MaxWait:  200 * time.Microsecond,
		Metrics:  reg,
		Quality:  qualityTracker(reg, 4),
	})
	const streams = 4
	errs := make([]error, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = replayStream(s, uint64(id), false)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("stream %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The scoreboard actually scored this traffic...
	preds := reg.WindowCounter("quality_predictions_model", 2).Total()
	if preds == 0 {
		t.Fatal("quality tracker saw no predictions")
	}
	// ...and with every stream OpClosed, conservation is exact:
	// predictions == useful + late + miss + overflow + unresolved.
	var settled uint64
	for _, tier := range []string{"model", "fast"} {
		settled += reg.WindowCounter("quality_useful_"+tier, 2).Total()
		settled += reg.WindowCounter("quality_late_"+tier, 2).Total()
		settled += reg.WindowCounter("quality_miss_"+tier, 2).Total()
	}
	settled += reg.Counter("quality_overflow_total").Value()
	settled += reg.Counter("quality_unresolved_total").Value()
	allPreds := preds + reg.WindowCounter("quality_predictions_fast", 2).Total()
	if allPreds != settled {
		t.Fatalf("conservation broken: %d predictions, %d settled", allPreds, settled)
	}
}

// TestQualityFastTierDifferentialWithShadow: the fast-tier differential —
// responses identical to the offline distilled replayer — holds with
// shadow sampling aggressively on (1-in-2), and the shadow passes run on
// the batcher, never the fast-tier handler path: the model-tier request
// counter stays at zero while batches and shadow samples accumulate.
func TestQualityFastTierDifferentialWithShadow(t *testing.T) {
	fixture(t)
	reg := metrics.NewRegistry()
	s := startServer(t, Config{
		Model:   fx.p.Model,
		Table:   fx.tab,
		Metrics: reg,
		Quality: qualityTracker(reg, 2),
	})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()
	offFast := replayFastOracle(t)
	for pos, a := range fx.tr.Accesses {
		r, err := cl.Predict(7, a.PC, a.Addr, true)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if r.Tier != TierFast {
			t.Fatalf("pos %d: tier %d, want fast", pos, r.Tier)
		}
		want := offFast[pos]
		if len(r.Cands) != len(want) {
			t.Fatalf("pos %d: %d candidates, want %d", pos, len(r.Cands), len(want))
		}
		for i, addr := range want {
			if r.Cands[i].Addr != addr {
				t.Fatalf("pos %d cand %d: addr %#x, want %#x", pos, i, r.Cands[i].Addr, addr)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Structural off-path proof: zero requests took the model tier, yet the
	// batcher ran (shadow jobs) and agreement samples landed.
	if got := reg.Counter("serve_requests_model_total").Value(); got != 0 {
		t.Fatalf("model tier served %d requests — shadow leaked onto the request path", got)
	}
	if reg.Counter("serve_batches_total").Value() == 0 {
		t.Fatal("no batches ran — shadow jobs never reached the model")
	}
	samples := reg.WindowCounter("quality_shadow_samples", 2).Total()
	dropped := reg.Counter("quality_shadow_dropped_total").Value()
	if samples == 0 {
		t.Fatal("no shadow samples recorded")
	}
	// Every tick either sampled or was dropped-and-counted.
	wantTicks := uint64(len(fx.tr.Accesses) / 2)
	if samples+dropped != wantTicks {
		t.Fatalf("shadow samples %d + dropped %d != ticks %d", samples, dropped, wantTicks)
	}
	agree := reg.WindowCounter("quality_shadow_agree", 2).Total()
	if agree > samples {
		t.Fatalf("agreement %d exceeds samples %d", agree, samples)
	}
}

// TestQualityPhaseChangeE2E is the headline acceptance test: a live daemon
// replays a stream whose workload shifts mid-trace to addresses the model
// has never seen. The cumulative accuracy counter barely moves — it is
// dominated by the long good phase — while the rolling window craters.
// An operator watching only lifetime counters would miss the regression;
// the window makes it visible.
func TestQualityPhaseChangeE2E(t *testing.T) {
	fixture(t)
	reg := metrics.NewRegistry()
	tracker := qualityTracker(reg, 0)
	s := startServer(t, Config{
		Model:   fx.p.Model,
		Table:   fx.tab,
		Metrics: reg,
		Quality: tracker,
	})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()

	// Phase 1: the trace the model was trained on — predictions land.
	for pos, a := range fx.tr.Accesses {
		if _, err := cl.Predict(1, a.PC, a.Addr, true); err != nil {
			t.Fatalf("phase 1 pos %d: %v", pos, err)
		}
	}
	mid := tracker.Report()
	// Phase 2: same PCs, addresses shifted into a distant untrained region
	// — a workload phase change. Stale predictions can never match.
	const shift = uint64(1) << 40
	for pos, a := range fx.tr.Accesses[:600] {
		if _, err := cl.Predict(1, a.PC, a.Addr+shift+uint64(pos)*4096, true); err != nil {
			t.Fatalf("phase 2 pos %d: %v", pos, err)
		}
	}
	end := tracker.Report()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	midAcc := float64(mid.Fast.Accuracy)
	endAcc := float64(end.Fast.Accuracy)
	endWin := float64(end.Fast.WindowAccuracy)
	t.Logf("phase-1 acc=%.3f; after shift: cumulative=%.3f window=%.3f", midAcc, endAcc, endWin)
	if midAcc <= 0.05 {
		t.Fatalf("phase-1 accuracy %.3f too low for the masking effect to be meaningful", midAcc)
	}
	// The mask: cumulative must still read above half its phase-1 value...
	if endAcc < midAcc*0.5 {
		t.Fatalf("cumulative accuracy %.3f fell below half of %.3f — not masking", endAcc, midAcc)
	}
	// ...while the rolling window shows the crater.
	if endWin > midAcc*0.25 {
		t.Fatalf("window accuracy %.3f did not crater (phase-1 %.3f)", endWin, midAcc)
	}
}

// TestCrossProcessTracePairing: a traced client replay (async spans on its
// own "rpc" process) against a traced server (async marks on its "rpc"
// process), exported separately — each file standalone-valid — then merged:
// every client span must pair, and the server's marks must share the
// client spans' pid and ids in the merged timeline.
func TestCrossProcessTracePairing(t *testing.T) {
	fixture(t)
	srvTracer := tracing.New(tracing.Options{})
	s := startServer(t, Config{
		Model:    fx.p.Model,
		Table:    fx.tab,
		MaxBatch: 8,
		Tracer:   srvTracer,
	})
	cliTracer := tracing.New(tracing.Options{})
	rpcTk := cliTracer.Track("rpc", "stream-1")

	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()
	const reqs = 64
	const traceID = 0x1234
	for pos := 0; pos < reqs; pos++ {
		a := fx.tr.Accesses[pos]
		spanID := uint64(pos + 1)
		rpcTk.AsyncBegin("predict", spanID)
		if _, err := cl.PredictTraced(1, a.PC, a.Addr, pos%2 == 0, traceID, spanID); err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		rpcTk.AsyncEnd("predict", spanID)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	cliData, srvData := cliTracer.Export(), srvTracer.Export()
	for name, data := range map[string][]byte{"client": cliData, "server": srvData} {
		if _, err := tracing.ValidateBytes(data); err != nil {
			t.Fatalf("%s export not standalone-valid: %v", name, err)
		}
	}
	merged, err := tracing.Merge(cliData, srvData)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	st, err := tracing.ValidateBytes(merged)
	if err != nil {
		t.Fatalf("merged timeline invalid: %v", err)
	}
	if st.AsyncSpans != reqs {
		t.Fatalf("merged async spans = %d, want %d", st.AsyncSpans, reqs)
	}
	// The server's marks must live under the same pid as the client spans:
	// srv_recv/srv_reply per request, plus srv_batch for model-tier ones.
	tf, err := tracing.Parse(merged)
	if err != nil {
		t.Fatal(err)
	}
	spanPID := -1
	marks := map[string]int{}
	for _, ev := range tf.Events {
		switch ev.Ph {
		case "b":
			if spanPID == -1 {
				spanPID = ev.PID
			} else if ev.PID != spanPID {
				t.Fatalf("client spans under two pids: %d and %d", spanPID, ev.PID)
			}
		case "n":
			if ev.PID != spanPID && spanPID != -1 {
				t.Fatalf("server mark %q pid %d, client spans pid %d — merge did not unify",
					ev.Name, ev.PID, spanPID)
			}
			marks[ev.Name]++
		}
	}
	if marks["srv_recv"] != reqs || marks["srv_reply"] != reqs {
		t.Fatalf("server marks recv=%d reply=%d, want %d each", marks["srv_recv"], marks["srv_reply"], reqs)
	}
	if marks["srv_batch"] != reqs/2 {
		t.Fatalf("srv_batch marks = %d, want %d (model-tier requests)", marks["srv_batch"], reqs/2)
	}
}

// replayFastOracle precomputes the offline distilled replayer's answers for
// the fixture trace (fresh replayer per call; it is stateful).
func replayFastOracle(t *testing.T) [][]uint64 {
	t.Helper()
	off, err := distilled.New(fx.tab, fx.p.Model.Vocab(), fx.degree)
	if err != nil {
		t.Fatalf("distilled.New: %v", err)
	}
	out := make([][]uint64, len(fx.tr.Accesses))
	for pos, a := range fx.tr.Accesses {
		want := off.Access(pos, a)
		out[pos] = append([]uint64(nil), want...)
	}
	return out
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Binary trace format:
//
//	magic "VYGR" | version u8 | name (uvarint len + bytes)
//	instructions uvarint | count uvarint
//	per access: pcDelta zigzag-varint | addrDelta zigzag-varint | instDelta uvarint
//
// Deltas against the previous record keep traces compact (typical irregular
// traces compress 3-5× versus fixed 24-byte records).
const (
	binaryMagic   = "VYGR"
	binaryVersion = 1
)

var errBadTrace = errors.New("trace: malformed binary trace")

// Write encodes t to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := writeUvarint(t.Instructions); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(t.Accesses))); err != nil {
		return err
	}
	var prev Access
	for _, a := range t.Accesses {
		if err := writeVarint(int64(a.PC) - int64(prev.PC)); err != nil {
			return err
		}
		if err := writeVarint(int64(a.Addr) - int64(prev.Addr)); err != nil {
			return err
		}
		if err := writeUvarint(a.Inst - prev.Inst); err != nil {
			return err
		}
		prev = a
	}
	return bw.Flush()
}

// Read decodes a binary trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, errBadTrace
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, errBadTrace
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	instructions, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if count > 1<<32 {
		return nil, errBadTrace
	}
	t := &Trace{Name: string(name), Instructions: instructions}
	// The count header is attacker-controlled until the records actually
	// decode: clamp the preallocation so a truncated stream claiming 2^32
	// accesses can't allocate 100 GB up front, and let append grow past the
	// hint for genuinely large traces.
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	t.Accesses = make([]Access, 0, capHint)
	var prev Access
	for i := uint64(0); i < count; i++ {
		dpc, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		daddr, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		dinst, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		a := Access{
			PC:   uint64(int64(prev.PC) + dpc),
			Addr: uint64(int64(prev.Addr) + daddr),
			Inst: prev.Inst + dinst,
		}
		t.Accesses = append(t.Accesses, a)
		prev = a
	}
	return t, nil
}

// WriteText encodes t as a human-readable text trace: a header line then one
// "pc addr inst" hex/dec triple per line.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s instructions=%d accesses=%d\n",
		t.Name, t.Instructions, len(t.Accesses)); err != nil {
		return err
	}
	for _, a := range t.Accesses {
		if _, err := fmt.Fprintf(bw, "%x %x %d\n", a.PC, a.Addr, a.Inst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a text trace written by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first && strings.HasPrefix(line, "#") {
			first = false
			fields := strings.Fields(line)
			for _, f := range fields {
				if strings.HasPrefix(f, "instructions=") {
					fmt.Sscanf(f, "instructions=%d", &t.Instructions)
				}
			}
			if len(fields) >= 3 && fields[1] == "trace" {
				t.Name = fields[2]
			}
			continue
		}
		first = false
		var a Access
		if _, err := fmt.Sscanf(line, "%x %x %d", &a.PC, &a.Addr, &a.Inst); err != nil {
			return nil, fmt.Errorf("trace: parsing %q: %w", line, err)
		}
		t.Accesses = append(t.Accesses, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

package vocab

import (
	"math/rand"
	"testing"
	"testing/quick"

	"voyager/internal/trace"
)

// mkTrace builds a trace from line numbers (PC fixed).
func mkTrace(lines ...uint64) *trace.Trace {
	tr := &trace.Trace{Name: "t"}
	for i, l := range lines {
		tr.Append(100, l<<trace.LineBits, uint64(i+1))
	}
	return tr
}

func TestFrequentAddressesGetAbsoluteTokens(t *testing.T) {
	// Lines 10 and 20 appear twice (frequent); line 999 once (infrequent).
	tr := mkTrace(10, 20, 999, 10, 20)
	v := Build(tr, DefaultOptions())
	if !v.Frequent(10) || !v.Frequent(20) {
		t.Fatalf("repeated lines should be frequent")
	}
	if v.Frequent(999) {
		t.Fatalf("singleton line should be infrequent")
	}
	pTok, oTok := v.EncodeAccess(0, 10)
	if v.IsDeltaPage(pTok) || pTok == v.UnkPage() {
		t.Fatalf("frequent line got token %d", pTok)
	}
	if oTok != int(10&(trace.NumOffsets-1)) {
		t.Fatalf("offset token %d", oTok)
	}
}

func TestInfrequentAddressesDeltaEncode(t *testing.T) {
	// 999 follows 20: page delta and offset delta should encode it.
	tr := mkTrace(10, 20, 999, 10, 20)
	v := Build(tr, DefaultOptions())
	pTok, oTok := v.EncodeAccess(20, 999)
	if !v.IsDeltaPage(pTok) {
		t.Fatalf("infrequent line should delta-encode, got page token %d", pTok)
	}
	if oTok < NumAbsOffsets {
		t.Fatalf("delta page must pair with delta offset, got %d", oTok)
	}
	// Decode must reconstruct the line relative to the trigger.
	line, ok := v.Decode(20, pTok, oTok)
	if !ok || line != 999 {
		t.Fatalf("decode: %d ok=%v, want 999", line, ok)
	}
}

func TestDecodeAbsolute(t *testing.T) {
	tr := mkTrace(10, 20, 10, 20)
	v := Build(tr, DefaultOptions())
	pTok, oTok := v.EncodeAccess(10, 20)
	line, ok := v.Decode(10, pTok, oTok)
	if !ok || line != 20 {
		t.Fatalf("decode absolute: %d ok=%v", line, ok)
	}
}

func TestUnkForUnknownDelta(t *testing.T) {
	// With MaxDeltas 0 every infrequent access is UNK.
	tr := mkTrace(10, 20, 999, 10, 20)
	v := Build(tr, Options{MinAddrFreq: 2, MaxDeltas: 0})
	pTok, _ := v.EncodeAccess(20, 999)
	if pTok != v.UnkPage() {
		t.Fatalf("expected UNK, got %d", pTok)
	}
	if _, ok := v.Decode(20, v.UnkPage(), 0); ok {
		t.Fatalf("UNK must not decode")
	}
}

func TestMaxDeltasKeepsMostFrequent(t *testing.T) {
	// Two delta patterns: +1 page (common), +7 pages (rare).
	var lines []uint64
	cur := uint64(1000)
	for i := 0; i < 20; i++ {
		lines = append(lines, cur, cur+trace.NumOffsets) // delta +1 page each pair
		cur += 10 * trace.NumOffsets
	}
	lines = append(lines, cur+7*trace.NumOffsets) // one +7 page delta
	tr := mkTrace(lines...)
	v := Build(tr, Options{MinAddrFreq: 2, MaxDeltas: 1})
	if v.NumDeltas() != 1 {
		t.Fatalf("deltas = %d", v.NumDeltas())
	}
}

func TestPCVocab(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 10; i++ {
		tr.Append(1, uint64(i)<<trace.LineBits, uint64(i+1))
	}
	tr.Append(2, 0, 11)
	v := Build(tr, DefaultOptions())
	if v.PCTokens() != 3 { // UNK + 2 PCs
		t.Fatalf("pc tokens = %d", v.PCTokens())
	}
	if v.PCToken(1) == 0 || v.PCToken(2) == 0 {
		t.Fatalf("known PCs must not map to UNK")
	}
	if v.PCToken(999) != 0 {
		t.Fatalf("unknown PC must map to UNK")
	}
	// MaxPCs caps the vocabulary; PC 1 (most frequent) survives.
	v2 := Build(tr, Options{MinAddrFreq: 2, MaxDeltas: 4, MaxPCs: 1})
	if v2.PCTokens() != 2 {
		t.Fatalf("capped pc tokens = %d", v2.PCTokens())
	}
	if v2.PCToken(1) == 0 {
		t.Fatalf("most frequent PC should survive the cap")
	}
	if v2.PCToken(2) != 0 {
		t.Fatalf("rare PC should be UNK under cap")
	}
}

func TestTokenRanges(t *testing.T) {
	tr := mkTrace(10, 20, 999, 10, 20)
	v := Build(tr, DefaultOptions())
	if v.PageTokens() != v.NumPages()+v.NumDeltas()+1 {
		t.Fatalf("PageTokens inconsistent")
	}
	if v.UnkPage() != v.PageTokens()-1 {
		t.Fatalf("UNK must be the last token")
	}
	if OffsetTokens != 191 {
		t.Fatalf("offset tokens = %d, want 64+127", OffsetTokens)
	}
	if v.String() == "" {
		t.Fatalf("String empty")
	}
}

func TestDecodeRejectsOutOfRange(t *testing.T) {
	tr := mkTrace(10, 20, 10, 20)
	v := Build(tr, DefaultOptions())
	if _, ok := v.Decode(10, -1, 0); ok {
		t.Fatalf("negative page token decoded")
	}
	if _, ok := v.Decode(10, 0, OffsetTokens); ok {
		t.Fatalf("out-of-range offset token decoded")
	}
}

// Property: for any trace, encoding a frequent access then decoding returns
// the original line; delta-encoded accesses whose delta is in vocabulary
// also roundtrip.
func TestEncodeDecodeRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var lines []uint64
		// Mix of repeated lines (frequent) and singletons near predecessors.
		base := uint64(rng.Intn(1000) + 100)
		for i := 0; i < 100; i++ {
			if rng.Float64() < 0.7 {
				lines = append(lines, base+uint64(rng.Intn(8))*3)
			} else {
				last := base
				if len(lines) > 0 {
					last = lines[len(lines)-1]
				}
				lines = append(lines, last+uint64(1+rng.Intn(5))*trace.NumOffsets+uint64(rng.Intn(3)))
			}
		}
		tr := mkTrace(lines...)
		v := Build(tr, Options{MinAddrFreq: 2, MaxDeltas: 32})
		for i := 1; i < len(lines); i++ {
			prev, cur := lines[i-1], lines[i]
			pTok, oTok := v.EncodeAccess(prev, cur)
			if pTok == v.UnkPage() {
				continue // delta outside budget: legitimately unpredictable
			}
			got, ok := v.Decode(prev, pTok, oTok)
			if !ok || got != cur {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

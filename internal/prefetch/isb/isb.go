// Package isb implements the ISB prefetcher (Jain & Lin, MICRO 2013) in two
// flavors:
//
//   - Ideal: the idealized PC-localized temporal predictor the paper
//     compares against — P(Addr_PC | Addr_t), unbounded tables, no metadata
//     latency. Training pairs consecutive lines accessed by the same PC;
//     prediction walks the successor chain from the current line.
//   - Structural: the real ISB mechanism — PC-localized streams are
//     linearized into a structural address space (PS-AMC / SP-AMC maps with
//     stream allocation), and prefetching walks the structural space.
//
// The headline results use Ideal, as in the paper; Structural exists for
// completeness and to cross-check that linearization reproduces the
// idealized predictions on clean streams.
package isb

import "voyager/internal/trace"

// Ideal is the idealized PC-localized successor predictor.
type Ideal struct {
	Degree int

	succ   map[uint64]uint64 // line → next line by the same PC
	lastPC map[uint64]uint64 // pc → last line it accessed
}

// NewIdeal returns an idealized ISB with the given degree.
func NewIdeal(degree int) *Ideal {
	if degree < 1 {
		degree = 1
	}
	return &Ideal{
		Degree: degree,
		succ:   make(map[uint64]uint64),
		lastPC: make(map[uint64]uint64),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Ideal) Name() string { return "isb" }

// Access trains the PC-localized pair table and predicts successors.
func (p *Ideal) Access(_ int, a trace.Access) []uint64 {
	line := trace.Line(a.Addr)
	if prev, ok := p.lastPC[a.PC]; ok {
		p.succ[prev] = line
	}
	p.lastPC[a.PC] = line

	var out []uint64
	cur := line
	for k := 0; k < p.Degree; k++ {
		next, ok := p.succ[cur]
		if !ok {
			break
		}
		out = append(out, next<<trace.LineBits)
		cur = next
	}
	return out
}

// streamLen is the number of structural slots allocated per stream; real
// ISB uses 256-address structural pages.
const streamLen = 256

// Structural is the structural-address-space ISB.
type Structural struct {
	Degree int

	psAMC      map[uint64]uint64 // physical line → structural address
	spAMC      map[uint64]uint64 // structural address → physical line
	lastPC     map[uint64]uint64 // pc → last physical line (training unit)
	nextStream uint64
}

// NewStructural returns a structural ISB with the given degree.
func NewStructural(degree int) *Structural {
	if degree < 1 {
		degree = 1
	}
	return &Structural{
		Degree: degree,
		psAMC:  make(map[uint64]uint64),
		spAMC:  make(map[uint64]uint64),
		lastPC: make(map[uint64]uint64),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Structural) Name() string { return "isb-structural" }

// allocStream reserves a fresh structural stream and returns its base.
func (p *Structural) allocStream() uint64 {
	base := p.nextStream * streamLen
	p.nextStream++
	return base
}

// assign maps the physical line to the structural address, unmapping any
// previous occupant of that structural slot.
func (p *Structural) assign(line, saddr uint64) {
	if old, ok := p.spAMC[saddr]; ok {
		delete(p.psAMC, old)
	}
	p.psAMC[line] = saddr
	p.spAMC[saddr] = line
}

// Access implements the ISB training algorithm: when PC X accesses line B
// after line A, B's structural address is forced to follow A's. Streams
// diverge by reallocation when B already belongs elsewhere — except when B
// sits at the head of a stream, which keeps cyclic reference patterns
// (loops over a fixed working set, like GAP's per-iteration sweeps) from
// rotating their mappings forever without ever stabilizing.
func (p *Structural) Access(_ int, a trace.Access) []uint64 {
	line := trace.Line(a.Addr)
	if prev, ok := p.lastPC[a.PC]; ok && prev != line {
		sPrev, okPrev := p.psAMC[prev]
		if !okPrev {
			sPrev = p.allocStream()
			p.assign(prev, sPrev)
		}
		want := sPrev + 1
		if sPrev%streamLen == streamLen-1 {
			// Stream full: chain into a fresh stream.
			want = p.allocStream()
		}
		cur, mapped := p.psAMC[line]
		isStreamHead := mapped && cur%streamLen == 0
		if !mapped || (cur != want && !isStreamHead) {
			p.assign(line, want)
		}
	}
	p.lastPC[a.PC] = line

	// Predict: walk the structural space from this line's slot.
	saddr, ok := p.psAMC[line]
	if !ok {
		return nil
	}
	var out []uint64
	for k := 1; k <= p.Degree; k++ {
		s := saddr + uint64(k)
		if s/streamLen != saddr/streamLen {
			break // stay within the stream
		}
		phys, ok := p.spAMC[s]
		if !ok {
			break
		}
		out = append(out, phys<<trace.LineBits)
	}
	return out
}

// Entries returns the number of correlation-table entries (succ pairs plus
// per-PC training state) for the §5.4 storage comparison.
func (p *Ideal) Entries() int { return len(p.succ) + len(p.lastPC) }

// Entries returns the number of mapping entries (PS-AMC + SP-AMC + training
// units) for the §5.4 storage comparison.
func (p *Structural) Entries() int { return len(p.psAMC) + len(p.spAMC) + len(p.lastPC) }

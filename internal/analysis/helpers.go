package analysis

import "go/types"

// IsNamed reports whether t (after stripping pointers) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

package metrics

import (
	"bytes"
	"testing"
)

// FuzzParseSnapshot feeds arbitrary bytes to the snapshot parser. The parser
// must never panic, and any input it accepts must round-trip canonically:
// re-marshaling the parsed snapshot and parsing that again yields byte-
// identical NDJSON. Mirrors internal/trace's FuzzRead accept→round-trip
// oracle.
func FuzzParseSnapshot(f *testing.F) {
	// A real snapshot with all three instrument kinds, plus non-finite
	// gauge values which exercise the JSONFloat string encoding.
	reg := NewRegistry()
	reg.Counter("train_steps_total").Add(12)
	reg.Gauge("train_loss").Set(0.5)
	reg.Histogram("step_seconds").Observe(0.001)
	reg.Histogram("step_seconds").Observe(2.5)
	snap := reg.Snapshot()
	valid, err := snap.MarshalNDJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-document
	f.Add([]byte(`{"ts_unix_ns":1,"gauges":[{"name":"g","value":"NaN"},{"name":"h","value":"+Inf"}]}`))
	f.Add([]byte(`{"ts_unix_ns":1,"gauges":[{"name":"g","value":"-Inf"}]}`))
	f.Add([]byte(`{"ts_unix_ns":0}`))
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"ts_unix_ns":1,"counters":[{"name":"b","value":1},{"name":"a","value":2}]}`)) // unsorted
	f.Add([]byte(`{"ts_unix_ns":1,"histograms":[{"name":"h","count":2,"sum":1,"buckets":[{"b":70,"n":2}]}]}`))
	f.Add([]byte(`{"ts_unix_ns":1,"histograms":[{"name":"h","count":5,"sum":1,"buckets":[{"b":3,"n":2}]}]}`))
	f.Add([]byte("{\"ts_unix_ns\":1}\n{\"ts_unix_ns\":2}")) // trailing second document

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSnapshot(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		out, err := s.MarshalNDJSON()
		if err != nil {
			t.Fatalf("accepted snapshot fails to marshal: %v", err)
		}
		s2, err := ParseSnapshot(out)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, out)
		}
		out2, err := s2.MarshalNDJSON()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round-trip not canonical:\n%s\n%s", out, out2)
		}
	})
}

// Package f64promote flags float64 arithmetic whose result is truncated
// back to float32 on hot kernel paths.
//
// The tensor package's contract is that kernels evaluate in float32 with a
// fixed operation order, so results are bit-identical across machines and
// worker counts. A stray promotion to float64 (a math.* call, or untyped
// constants forcing float64 arithmetic) followed by a float32() truncation
// changes rounding — and therefore golden outputs — while usually also
// costing a scalar conversion per element. Intentional wide accumulators
// (loss sums, softmax normalizers, the sigmoid/tanh scalar helpers) are
// exempted by function name via the allowlist, or per line with
//
//	//lint:ignore f64promote <why the wide accumulation is intentional>
//
// The analyzer taints float64 locals fed by math.* calls, float64
// arithmetic, or float64 compound assignment, and reports float32(x)
// conversions whose operand is tainted or is itself float64 arithmetic.
package f64promote

import (
	"go/ast"
	"go/token"
	"go/types"

	"voyager/internal/analysis"
)

// New returns the analyzer scoped to the given package import paths, with
// the named functions exempt as intentional wide accumulators.
func New(pkgs []string, allowFuncs []string) *analysis.Analyzer {
	inPkgs := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		inPkgs[p] = true
	}
	allowed := make(map[string]bool, len(allowFuncs))
	for _, f := range allowFuncs {
		allowed[f] = true
	}
	return &analysis.Analyzer{
		Name: "f64promote",
		Doc:  "flags float64 arithmetic truncated to float32 on hot kernel paths",
		Run: func(pass *analysis.Pass) {
			if pass.Pkg.IsTest || !inPkgs[pass.Pkg.Path] {
				pass.SkipPackage()
				return
			}
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil || allowed[fd.Name.Name] {
						continue
					}
					checkFunc(pass, fd.Body)
				}
			}
		},
	}
}

func isFloat64(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func isArith(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return true
	}
	return false
}

func isArithAssign(op token.Token) bool {
	switch op {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// isMathCall reports whether e calls a math.* function returning float64.
func isMathCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok || pkg.Imported().Path() != "math" {
		return false
	}
	return isFloat64(pass, e)
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)

	// derived reports whether e carries a float64 value produced by
	// arithmetic or a math.* call (directly or via a tainted local).
	var derived func(e ast.Expr) bool
	derived = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tainted[pass.ObjectOf(x)]
		case *ast.UnaryExpr:
			return derived(x.X)
		case *ast.BinaryExpr:
			return isArith(x.Op) && isFloat64(pass, x)
		case *ast.CallExpr:
			return isMathCall(pass, x)
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		taint := func(id *ast.Ident) {
			if obj := pass.ObjectOf(id); obj != nil && !tainted[obj] {
				tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if isArithAssign(st.Tok) && len(st.Lhs) == 1 && isFloat64(pass, st.Lhs[0]) {
					// s += … on a float64 local is float64 arithmetic.
					if id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident); ok {
						taint(id)
					}
					return true
				}
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, rhs := range st.Rhs {
					if derived(rhs) {
						if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok {
							taint(id)
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range st.Values {
					if derived(v) && i < len(st.Names) {
						taint(st.Names[i])
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || b.Kind() != types.Float32 {
			return true
		}
		if derived(call.Args[0]) {
			pass.Reportf(call.Pos(), "float64 arithmetic truncated to float32: hot kernels must stay in float32 for bit-identical results; use float32 arithmetic, add the function to the accumulator allowlist, or suppress with //lint:ignore f64promote <reason>")
		}
		return true
	})
}

// Package oracle provides a clairvoyant next-load prefetcher. The paper
// uses it as the benchmark-selection criterion (§5.1: irregular benchmarks
// are those where "an oracle prefetcher that always correctly prefetches
// the next load produces at least a 10% IPC improvement").
package oracle

import (
	"voyager/internal/prefetch"
	"voyager/internal/trace"
)

// New builds an oracle that, on access i, prefetches the lines of the next
// `degree` future accesses starting `lookahead` accesses ahead. lookahead
// gives fills time to land (a lookahead of 1 is the literal "next load").
func New(tr *trace.Trace, degree, lookahead int) *prefetch.Precomputed {
	if degree < 1 {
		degree = 1
	}
	if lookahead < 1 {
		lookahead = 1
	}
	preds := make([][]uint64, tr.Len())
	for i := range tr.Accesses {
		var out []uint64
		seen := make(map[uint64]struct{}, degree)
		for j := i + lookahead; j < tr.Len() && len(out) < degree; j++ {
			line := trace.Line(tr.Accesses[j].Addr)
			if _, ok := seen[line]; ok {
				continue
			}
			seen[line] = struct{}{}
			out = append(out, line<<trace.LineBits)
		}
		preds[i] = out
	}
	return &prefetch.Precomputed{Label: "oracle", Predictions: preds}
}

// Package workloads generates the memory-access traces of the paper's 11
// benchmarks (Table 2): astar, bfs, cc, mcf, omnetpp, pr, soplex, sphinx,
// xalancbmk from SPEC06/GAP, plus Google-style search and ads.
//
// We cannot ship SPEC reference inputs or Google production traces, so each
// generator runs a faithful miniature of the benchmark's core algorithm
// (the part the paper's analysis attributes the access patterns to) against
// a simulated heap, recording every load. See DESIGN.md §2 for the
// substitution argument.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"voyager/internal/trace"
)

// Config controls trace generation.
type Config struct {
	// Seed drives all randomness; identical configs produce identical traces.
	Seed int64
	// Scale multiplies the default data-structure footprints (1 = default;
	// 2 doubles node counts/table sizes, etc.). Must be ≥ 1.
	Scale int
	// MaxAccesses truncates the trace after this many loads (0 = no limit).
	MaxAccesses int
}

// DefaultConfig returns the configuration used by the experiment harness:
// scale 1 footprints and 200k-access traces.
func DefaultConfig() Config {
	return Config{Seed: 42, Scale: 1, MaxAccesses: 200_000}
}

func (c Config) scale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// finish applies MaxAccesses truncation.
func (c Config) finish(t *trace.Trace) *trace.Trace {
	if c.MaxAccesses > 0 && len(t.Accesses) > c.MaxAccesses {
		t.Accesses = t.Accesses[:c.MaxAccesses]
		t.Instructions = t.Accesses[len(t.Accesses)-1].Inst
	}
	return t
}

// Generator produces a benchmark trace.
type Generator func(Config) *trace.Trace

// Spec describes one benchmark.
type Spec struct {
	Name string
	// Suite is "spec06", "gap", or "google".
	Suite string
	// Simulatable reports whether the paper runs this benchmark through
	// ChampSim (false for search/ads, which are accuracy/coverage only).
	Simulatable bool
	Gen         Generator
}

// All lists the benchmarks in the paper's Table 2 order.
var All = []Spec{
	{Name: "astar", Suite: "spec06", Simulatable: true, Gen: Astar},
	{Name: "bfs", Suite: "gap", Simulatable: true, Gen: BFS},
	{Name: "cc", Suite: "gap", Simulatable: true, Gen: CC},
	{Name: "mcf", Suite: "spec06", Simulatable: true, Gen: MCF},
	{Name: "omnetpp", Suite: "spec06", Simulatable: true, Gen: Omnetpp},
	{Name: "pr", Suite: "gap", Simulatable: true, Gen: PageRank},
	{Name: "soplex", Suite: "spec06", Simulatable: true, Gen: Soplex},
	{Name: "sphinx", Suite: "spec06", Simulatable: true, Gen: Sphinx},
	{Name: "xalancbmk", Suite: "spec06", Simulatable: true, Gen: Xalancbmk},
	{Name: "search", Suite: "google", Simulatable: false, Gen: Search},
	{Name: "ads", Suite: "google", Simulatable: false, Gen: Ads},
}

// Names returns all benchmark names in order.
func Names() []string {
	out := make([]string, len(All))
	for i, s := range All {
		out[i] = s.Name
	}
	return out
}

// SimulatableNames returns the benchmarks the simulator can produce IPC for.
func SimulatableNames() []string {
	var out []string
	for _, s := range All {
		if s.Simulatable {
			out = append(out, s.Name)
		}
	}
	return out
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, Names())
}

// Generate produces the named benchmark's trace.
func Generate(name string, cfg Config) (*trace.Trace, error) {
	s, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return s.Gen(cfg), nil
}

// zipf returns a Zipfian sampler over [0, n) with exponent s ≥ 1; used by
// the OLTP workloads for query/term popularity.
func zipf(rng *rand.Rand, s float64, n int) *rand.Zipf {
	if n < 1 {
		n = 1
	}
	return rand.NewZipf(rng, s, 1, uint64(n-1))
}

// permute returns a deterministic pseudo-random permutation of [0, n).
func permute(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	return p
}

// sortedKeys is a test/debug helper returning map keys in sorted order.
func sortedKeys(m map[uint64]int) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Package memsim provides a simulated virtual-address heap and a trace
// recorder. The workload generators in package workloads run real
// algorithms (graph traversals, simplex pricing, event simulation, ...)
// against data structures placed on this heap, and every load they perform
// is recorded as a (PC, address) pair — producing address streams with the
// same structure as the instrumented SPEC/GAP/Google traces the paper uses.
package memsim

import (
	"fmt"

	"voyager/internal/trace"
)

// Heap hands out virtual address ranges, mimicking a bump allocator over a
// process heap. Allocations are padded so distinct objects never share a
// cache line.
type Heap struct {
	next uint64
}

// NewHeap returns a heap whose first allocation starts at base.
func NewHeap(base uint64) *Heap {
	return &Heap{next: base}
}

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the base address.
func (h *Heap) Alloc(size, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("memsim: alignment %d not a power of two", align))
	}
	h.next = (h.next + align - 1) &^ (align - 1)
	base := h.next
	h.next += size
	return base
}

// Array describes a contiguous array of fixed-size elements on the heap.
type Array struct {
	Base     uint64
	ElemSize uint64
	Len      int
}

// NewArray allocates an n-element array with elemSize-byte elements,
// aligned to a cache line.
func (h *Heap) NewArray(n int, elemSize uint64) Array {
	return Array{
		Base:     h.Alloc(uint64(n)*elemSize, trace.LineSize),
		ElemSize: elemSize,
		Len:      n,
	}
}

// Addr returns the byte address of element i.
func (a Array) Addr(i int) uint64 {
	if i < 0 || i >= a.Len {
		panic(fmt.Sprintf("memsim: array index %d out of range [0,%d)", i, a.Len))
	}
	return a.Base + uint64(i)*a.ElemSize
}

// Recorder accumulates a trace while a workload runs. Every Load appends an
// access and advances the instruction counter; Work models non-memory
// instructions between loads so the simulator's IPC numbers are meaningful.
type Recorder struct {
	Trace *trace.Trace
	inst  uint64
}

// NewRecorder starts an empty trace with the given benchmark name.
func NewRecorder(name string) *Recorder {
	return &Recorder{Trace: &trace.Trace{Name: name}}
}

// Load records a load of addr by pc, costing one instruction.
func (r *Recorder) Load(pc, addr uint64) {
	r.inst++
	r.Trace.Append(pc, addr, r.inst)
	r.Trace.Instructions = r.inst
}

// Work advances the instruction counter by n non-memory instructions
// (arithmetic, branches, stores we do not model).
func (r *Recorder) Work(n int) {
	r.inst += uint64(n)
	r.Trace.Instructions = r.inst
}

// Instructions returns the dynamic instruction count so far.
func (r *Recorder) Instructions() uint64 { return r.inst }

// PCs generates distinct program counters for the static load sites of a
// workload. Sites allocated from the same Block share the upper PC bits, so
// the basic-block labeler (which groups PCs by pc>>BlockShift) sees them as
// one basic block — mirroring how compilers lay out code.
type PCs struct {
	base  uint64
	block uint64
}

// BlockShift is the number of low PC bits ignored when grouping PCs into
// basic blocks; 6 bits ≈ a 64-byte code region, a typical small block.
const BlockShift = 6

// NewPCs returns a PC allocator rooted at base (e.g. 0x400000).
func NewPCs(base uint64) *PCs {
	return &PCs{base: base}
}

// Block starts a new basic block and returns an allocator for load sites
// within it. A block holds at most 16 sites (4-byte instruction slots in a
// 64-byte region).
func (p *PCs) Block() *Block {
	b := &Block{base: p.base + p.block<<BlockShift}
	p.block++
	return b
}

// Block allocates load-site PCs within one basic block.
type Block struct {
	base uint64
	site uint64
}

// Site returns the next load-site PC in this block.
func (b *Block) Site() uint64 {
	if b.site >= 16 {
		panic("memsim: more than 16 load sites in one basic block")
	}
	pc := b.base + b.site*4
	b.site++
	return pc
}

// BlockOf returns the basic-block id of a PC under the BlockShift grouping.
func BlockOf(pc uint64) uint64 { return pc >> BlockShift }

// Package hotallocpkg exercises the hotalloc analyzer: allocation sites in
// //hot:path functions, one-level callee reporting, and panic-cold paths.
package hotallocpkg

import "fmt"

type buf struct {
	data []float64
	n    int
}

// --- direct allocation kinds ---

// observe is the histogram hot path.
//
//hot:path gated by TestHotPathAllocFree
func observe(b *buf, v float64) {
	tmp := make([]float64, 8) // want "make allocation on //hot:path observe"
	p := new(buf)             // want "new allocation on //hot:path observe"
	b.data = append(b.data, v) // want "append \\(may grow the backing array\\) on //hot:path observe"
	q := &buf{n: 1}           // want "heap composite literal \\(&T\\{...\\}\\) on //hot:path observe"
	w := []int{1, 2}          // want "slice/map literal allocation on //hot:path observe"
	f := func() { b.n++ }     // want "closure allocation on //hot:path observe"
	_ = tmp
	_ = p
	_ = q
	_ = w
	f()
}

// sink takes an interface, like fmt does.
func sink(v interface{}) {}

// record boxes a float into an interface parameter.
//
//hot:path
func record(v float64) {
	sink(v) // want "interface boxing of float64 on //hot:path record"
}

// recordPtr passes pointer-shaped values: no boxing allocation.
//
//hot:path
func recordPtr(b *buf) {
	sink(b)
}

// --- panic guards are cold ---

// guarded allocates only on the panic path, which never reaches the exit.
//
//hot:path
func guarded(b *buf, n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // cold: boxing here is fine
	}
	b.n = n
}

// --- one-level callee walk ---

// grow allocates; it is not annotated, so it is only reported where a hot
// function calls it.
func grow(b *buf) {
	b.data = append(b.data, 0)
}

// shrink is alloc-free.
func shrink(b *buf) {
	if b.n > 0 {
		b.n--
	}
}

//hot:path
func step(b *buf) {
	grow(b) // want "call to grow on //hot:path step allocates \\(append"
	shrink(b)
	b.n++
}

// hotCallee is itself annotated: flagged at its own line, not at callers.
//
//hot:path
func hotCallee(b *buf) {
	b.data = append(b.data, 1) // want "append \\(may grow the backing array\\) on //hot:path hotCallee"
}

//hot:path
func callsHotCallee(b *buf) {
	hotCallee(b) // callee is its own root; no call-site duplicate
}

// --- suppression ---

//hot:path
func lazyInit(b *buf) {
	if b.data == nil {
		//lint:ignore hotalloc one-time lazy init, amortized to zero
		b.data = make([]float64, 0, 64)
	}
	b.n++
}

// notAnnotated allocates freely: no directive, no findings.
func notAnnotated() []int {
	return make([]int, 4)
}

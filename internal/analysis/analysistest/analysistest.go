// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against // want "regexp" comments, mirroring the golden
// style of golang.org/x/tools' analysistest without the dependency.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"voyager/internal/analysis"
)

// expectation is one // want "..." pattern with its location.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the package rooted at dir (a path relative to the calling test's
// directory, e.g. "testdata/src/maporderpkg"), runs the analyzer with
// //lint:ignore suppression applied, and asserts that the unsuppressed
// diagnostics exactly match the // want comments.
//
// The testdata package is loaded with the synthetic import path "tdpkg/"
// plus the directory base name, so analyzers that filter by package path
// should be instantiated with PkgPath(dir) during tests.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(abs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(abs, PkgPath(dir))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	res := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})

	var wants []*expectation
	for _, sub := range []*analysis.Package{pkg, pkg.XTest} {
		if sub == nil {
			continue
		}
		for _, f := range sub.AllSyntax() {
			wants = append(wants, collectWants(t, sub, f)...)
		}
	}

	for _, d := range res.Findings {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// PkgPath returns the synthetic import path Run assigns to a testdata
// directory.
func PkgPath(dir string) string { return "tdpkg/" + filepath.Base(dir) }

// Findings loads the package at dir and returns the analyzer's
// unsuppressed diagnostics without checking want comments. Useful for
// asserting an analyzer stays silent under a different configuration.
func Findings(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(abs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(abs, PkgPath(dir))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a}).Findings
}

func collectWants(t *testing.T, pkg *analysis.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			for _, pat := range splitQuoted(t, pos.String(), rest) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// splitQuoted parses one or more Go-quoted strings: `"a" "b"`.
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: want comment must hold quoted patterns, got %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		t.Fatalf("%s: empty want comment", pos)
	}
	return out
}

func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

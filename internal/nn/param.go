// Package nn provides the neural-network building blocks used by the
// Voyager prefetcher and the Delta-LSTM baseline: embeddings with sparse
// gradient updates, an LSTM cell, linear layers, dropout, and the Adam
// optimizer with learning-rate decay. All layers operate on a
// tensor.Tape so gradients come from reverse-mode autodiff.
package nn

import (
	"fmt"
	"math/rand"

	"voyager/internal/tensor"
)

// Param is a trainable weight matrix with gradient storage.
//
// Dense params accumulate gradients over the whole matrix each step.
// Sparse params (embedding tables) additionally track which rows were
// touched so the optimizer can skip untouched rows.
type Param struct {
	Name string
	W    *tensor.Mat
	Grad *tensor.Mat

	sparse  bool
	touched map[int]struct{}
}

// NewParam returns a dense parameter of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		W:    tensor.NewMat(rows, cols),
		Grad: tensor.NewMat(rows, cols),
	}
}

// NewSparseParam returns a parameter whose gradient is sparse by rows
// (embedding tables).
func NewSparseParam(name string, rows, cols int) *Param {
	p := NewParam(name, rows, cols)
	p.sparse = true
	p.touched = make(map[int]struct{})
	return p
}

// Sparse reports whether the parameter uses row-sparse updates.
func (p *Param) Sparse() bool { return p.sparse }

// Touch marks row r as having received gradient this step.
func (p *Param) Touch(r int) {
	if p.sparse {
		p.touched[r] = struct{}{}
	}
}

// ZeroGrad clears accumulated gradients. Sparse params only clear touched
// rows (and the touched set), keeping the cost proportional to batch size
// rather than vocabulary size.
func (p *Param) ZeroGrad() {
	if p.sparse {
		//lint:ignore maporder zeroing disjoint rows and clearing the set; no effect depends on order
		for r := range p.touched {
			row := p.Grad.Row(r)
			for i := range row {
				row[i] = 0
			}
			delete(p.touched, r)
		}
		return
	}
	p.Grad.Zero()
}

// Size returns the number of scalar weights.
func (p *Param) Size() int { return p.W.Rows * p.W.Cols }

// ShadowClone returns a parameter that shares p's weight matrix but owns
// fresh gradient storage (and, for sparse params, a fresh touched set).
// Shadows are the per-worker gradient buffers for data-parallel training:
// every worker backpropagates into its own shadow, then the shadows are
// folded into the master with MergeGrad in fixed worker order.
func (p *Param) ShadowClone() *Param {
	s := &Param{
		Name:   p.Name,
		W:      p.W,
		Grad:   tensor.NewMat(p.W.Rows, p.W.Cols),
		sparse: p.sparse,
	}
	if p.sparse {
		s.touched = make(map[int]struct{})
	}
	return s
}

// MergeGrad accumulates o's gradient into p's and clears o for reuse.
// Callers reduce workers in ascending index order so the float32 summation
// order — and therefore training — is reproducible at a fixed worker count.
// Sparse params merge only o's touched rows, and mark them touched on p.
func (p *Param) MergeGrad(o *Param) {
	if p.sparse {
		//lint:ignore maporder each row is merged independently; summation happens within a row, not across the range
		for r := range o.touched {
			prow := p.Grad.Row(r)
			orow := o.Grad.Row(r)
			for i, v := range orow {
				prow[i] += v
				orow[i] = 0
			}
			p.touched[r] = struct{}{}
			delete(o.touched, r)
		}
		return
	}
	pd, od := p.Grad.Data, o.Grad.Data
	for i, v := range od {
		pd[i] += v
		od[i] = 0
	}
}

// Node wraps the parameter for use on a tape; gradients accumulate into
// p.Grad via the shared matrix.
func (p *Param) Node(tp *tensor.Tape) *tensor.Node {
	n := tp.Param(p.W)
	n.Grad = p.Grad
	return n
}

// ParamSet is an ordered collection of parameters (a model's weights).
type ParamSet struct {
	list []*Param
}

// Add registers params and returns the set for chaining.
func (s *ParamSet) Add(params ...*Param) *ParamSet {
	s.list = append(s.list, params...)
	return s
}

// All returns the registered parameters in registration order.
func (s *ParamSet) All() []*Param { return s.list }

// ZeroGrad clears every parameter's gradient.
func (s *ParamSet) ZeroGrad() {
	for _, p := range s.list {
		p.ZeroGrad()
	}
}

// Count returns the total number of scalar weights across the set.
func (s *ParamSet) Count() int {
	n := 0
	for _, p := range s.list {
		n += p.Size()
	}
	return n
}

// Bytes returns the storage footprint at the given precision (bits per
// weight), e.g. 32 for fp32 or 8 for the paper's quantized deployment.
func (s *ParamSet) Bytes(bitsPerWeight int) int {
	return s.Count() * bitsPerWeight / 8
}

// ByName returns the parameter with the given name, or nil.
func (s *ParamSet) ByName(name string) *Param {
	for _, p := range s.list {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// GradCheckFinite panics if any gradient is NaN/Inf; used in tests and as a
// training-time invariant.
func (s *ParamSet) GradCheckFinite() error {
	for _, p := range s.list {
		for i, v := range p.Grad.Data {
			if v != v || v > 1e30 || v < -1e30 {
				return fmt.Errorf("nn: non-finite gradient in %s at %d: %v", p.Name, i, v)
			}
		}
	}
	return nil
}

// InitGlorot initializes every parameter with Glorot-uniform noise, except
// parameters whose name ends in ".b" (biases), which stay zero.
func (s *ParamSet) InitGlorot(rng *rand.Rand) {
	for _, p := range s.list {
		if len(p.Name) >= 2 && p.Name[len(p.Name)-2:] == ".b" {
			continue
		}
		p.W.Glorot(rng)
	}
}

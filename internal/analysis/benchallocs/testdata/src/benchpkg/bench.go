// Package benchpkg exercises the benchallocs analyzer. The benchmarks
// live in a plain .go file (testdata is never built by the go tool), but
// the analyzer also scans real _test.go files.
package benchpkg

import "testing"

func BenchmarkMissing(b *testing.B) { // want "BenchmarkMissing does not call b.ReportAllocs"
	for i := 0; i < b.N; i++ {
		_ = make([]byte, 64)
	}
}

func BenchmarkPresent(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = make([]byte, 64)
	}
}

func BenchmarkSubBenchmarks(b *testing.B) {
	b.Run("sub", func(b *testing.B) {
		b.ReportAllocs() // counts: the call is inside the body
		for i := 0; i < b.N; i++ {
			_ = make([]byte, 64)
		}
	})
}

//lint:ignore benchallocs wall-time-only benchmark, allocs tracked elsewhere
func BenchmarkSuppressed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = make([]byte, 64)
	}
}

// benchmarkHelper is not a Benchmark entry point: not flagged.
func benchmarkHelper(b *testing.B, n int) {
	for i := 0; i < b.N; i++ {
		_ = make([]byte, n)
	}
}

// BenchmarkWrongSignature is not runnable by the testing package.
func BenchmarkWrongSignature(b *testing.B, extra int) {
	_ = extra
}

// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	go run ./cmd/experiments -run all
//	go run ./cmd/experiments -run table2,fig7 -accesses 24000 -hidden 64
//	go run ./cmd/experiments -run fig15 -benchmarks pr,soplex
//	go run ./cmd/experiments -bench -workers -1 -bench-out BENCH_pr1.json
//
// Artifact ids: table1 table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// fig12 fig15 fig17 delta distill. "fig10" and "fig11" run together, as do
// fig5/fig6/fig8 (one simulator sweep feeds all three). "distill" is the
// tabularization differential harness: table size vs top-1 agreement vs
// ns/prediction against the fp32 and int8 teachers.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"voyager/internal/experiments"
	"voyager/internal/label"
	"voyager/internal/metrics"
	"voyager/internal/tensor"
	"voyager/internal/tracing"
)

func main() {
	var (
		run        = flag.String("run", "all", "comma-separated artifact ids or 'all'")
		accesses   = flag.Int("accesses", 48_000, "raw trace length per benchmark")
		epochs     = flag.Int("epochs", 4, "online-protocol epochs per stream")
		hidden     = flag.Int("hidden", 64, "voyager/delta-lstm LSTM units")
		passes     = flag.Int("passes", 4, "training passes per epoch")
		window     = flag.Int("window", 10, "unified-metric window")
		seed       = flag.Int64("seed", 42, "randomness seed")
		benches    = flag.String("benchmarks", "", "comma-separated benchmark subset (default: per-figure lists)")
		workers    = flag.Int("workers", 0, "voyager data-parallel width (0/1 serial, -1 auto)")
		bench      = flag.Bool("bench", false, "run the performance bench suite instead of artifacts")
		benchCheck = flag.Bool("bench-check", false, "validate the newest BENCH_pr<N>.json (fail if matmul_256 or the predict paths regressed) and exit")
		benchOut   = flag.String("bench-out", "auto", "bench suite JSON output path (auto: BENCH_pr<latest+1>.json)")
		benchBase  = flag.String("bench-baseline", "auto", "prior bench JSON to diff against (auto: latest BENCH_pr<N>.json, \"\" disables)")
		quiet      = flag.Bool("q", false, "suppress progress output")
		fastMath   = flag.Bool("fastmath", false, "reassociated matmul kernels: faster, float32-rounding-level differences, NOT bit-reproducible across builds")

		metricsOut  = flag.String("metrics", "", "stream NDJSON metric snapshots to this file")
		metricsHTTP = flag.String("metrics-http", "", "serve /metrics, /trace and /debug/pprof on this address (e.g. localhost:6060)")
		manifest    = flag.String("manifest", "", "write a run-manifest JSON (config, seed, git ref, final metrics) to this file")

		traceOut   = flag.String("trace-out", "", "write Chrome trace-event JSON (execution spans; open in Perfetto) to this file")
		traceClock = flag.String("trace-clock", "wall", "span timestamps: wall | logical (logical exports are byte-identical across same-seed runs)")
		provOut    = flag.String("provenance", "", "write per-benchmark Voyager provenance tables (JSON) to this file")
	)
	flag.Parse()
	if *benchCheck {
		msg, err := experiments.CheckBenchReport(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(msg)
		return
	}
	if *traceClock != "wall" && *traceClock != "logical" {
		fmt.Fprintf(os.Stderr, "experiments: -trace-clock must be wall or logical, got %q\n", *traceClock)
		os.Exit(2)
	}

	if *workers < -1 {
		fmt.Fprintf(os.Stderr, "invalid -workers %d (0 or 1 serial, -1 auto, N>1 parallel)\n", *workers)
		os.Exit(2)
	}
	tensor.SetFastMath(*fastMath)
	// The delta chain baselines each bench report against the latest prior
	// one by number, so PR numbering gaps (a PR that didn't re-bench) don't
	// point a report at a nonexistent file.
	if *benchBase == "auto" || *benchOut == "auto" {
		latest, n := experiments.LatestBenchReportPath(".")
		if *benchBase == "auto" {
			*benchBase = latest
		}
		if *benchOut == "auto" {
			*benchOut = fmt.Sprintf("BENCH_pr%d.json", n+1)
		}
	}
	opts := experiments.DefaultOptions()
	opts.Accesses = *accesses
	opts.Epochs = *epochs
	opts.Hidden = *hidden
	opts.Passes = *passes
	opts.Window = *window
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Quiet = *quiet
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	var tracer *tracing.Tracer
	if *traceOut != "" {
		tracer = tracing.New(tracing.Options{
			Path:       *traceOut,
			Logical:    *traceClock == "logical",
			FlushEvery: 2 * time.Second,
		})
	}
	var provSet *tracing.ProvenanceSet
	if *provOut != "" {
		provSet = tracing.NewProvenanceSet()
	}
	opts.Trace = tracer
	opts.Provenance = provSet

	sink, err := metrics.Start(metrics.SinkOptions{
		Tool:         "experiments",
		Config:       opts,
		Seed:         *seed,
		StreamPath:   *metricsOut,
		HTTPAddr:     *metricsHTTP,
		ManifestPath: *manifest,
		Handlers:     map[string]http.Handler{"/trace": tracer.Handler()},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: metrics: %v\n", err)
		os.Exit(1)
	}
	opts.Metrics = sink.Registry()
	if addr := sink.HTTPAddr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics (trace at /trace, pprof at /debug/pprof/)\n", addr)
	}
	closeSink := func() {
		if provSet != nil {
			fmt.Println(provSet.Report(label.SchemeNames()))
			if err := provSet.WriteFile(*provOut, label.SchemeNames()); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: provenance: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("provenance written to %s\n", *provOut)
		}
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: tracing: %v\n", err)
			os.Exit(1)
		}
		if *traceOut != "" {
			fmt.Printf("trace written to %s (open in https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
		}
		if err := sink.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: metrics: %v\n", err)
			os.Exit(1)
		}
	}

	if *bench {
		report, err := opts.Bench(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if *benchBase != "" {
			if data, err := os.ReadFile(*benchBase); err == nil {
				if base, err := experiments.LoadBenchReport(data); err == nil {
					report.Compare(base, *benchBase)
				} else {
					fmt.Fprintf(os.Stderr, "bench: baseline %s unreadable: %v\n", *benchBase, err)
				}
			}
		}
		fmt.Println(report)
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
		closeSink()
		return
	}
	r := experiments.NewRun(opts)

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = []string{"table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8",
			"fig9", "fig10", "fig12", "fig15", "fig17", "delta", "distill"}
	}
	start := time.Now()
	for _, id := range ids {
		switch strings.TrimSpace(id) {
		case "table1":
			fmt.Println(experiments.Table1())
		case "table2":
			fmt.Println(r.Table2())
		case "table3":
			fmt.Println(experiments.Table3())
		case "fig5":
			fmt.Println(r.Main().Figure5())
		case "fig6":
			fmt.Println(r.Main().Figure6())
		case "fig8":
			fmt.Println(r.Main().Figure8())
		case "fig7":
			fmt.Println(r.Figure7())
		case "fig9":
			fmt.Println(r.Figure9())
		case "fig10", "fig11":
			fmt.Println(r.Figure1011())
		case "fig12":
			fmt.Println(r.Figure12())
		case "fig15":
			fmt.Println(r.Figure15())
		case "fig17":
			fmt.Println(r.Figure17())
		case "delta":
			fmt.Println(r.DeltaStudy())
		case "distill":
			fmt.Println(r.DistillStudy())
		default:
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", id)
			os.Exit(2)
		}
	}
	if !*quiet {
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
	}
	closeSink()
}

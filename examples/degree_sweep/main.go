// Degree sweep: the paper's Figure 9 shows Voyager's coverage at degree 1
// rivaling ISB at degree 8. This example runs the sweep on one benchmark:
// Voyager is trained once with degree-8 predictions, which are truncated
// for the lower degrees, while ISB and the ISB+BO hybrid are re-run at each
// degree.
//
//	go run ./examples/degree_sweep
package main

import (
	"fmt"
	"log"

	"voyager/internal/prefetch"
	"voyager/internal/prefetch/hybrid"
	"voyager/internal/prefetch/isb"
	"voyager/internal/sim"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

func main() {
	tr, err := workloads.Generate("soplex", workloads.Config{
		Seed:        42,
		Scale:       1,
		MaxAccesses: 30_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.ScaledConfig()
	stream, origIdx := sim.FilterLLC(tr, cfg)

	vcfg := voyager.ScaledConfig()
	vcfg.EpochAccesses = stream.Len() / 4
	vcfg.DropoutKeep = 1
	vcfg.Hidden = 64
	vcfg.PassesPerEpoch = 4
	vcfg.Degree = 8
	fmt.Println("training voyager (degree 8) on soplex's LLC stream...")
	p, err := voyager.Train(stream, vcfg)
	if err != nil {
		log.Fatal(err)
	}

	mapPreds := func(k int) [][]uint64 {
		out := make([][]uint64, tr.Len())
		for j, preds := range p.Predictions() {
			if len(preds) > k {
				preds = preds[:k]
			}
			out[origIdx[j]] = preds
		}
		return out
	}

	fmt.Printf("\n%-8s %10s %10s %10s\n", "degree", "voyager", "isb", "isb+bo")
	for _, d := range []int{1, 2, 4, 8} {
		voy := sim.Simulate(tr, &prefetch.Precomputed{Label: "voyager", Predictions: mapPreds(d)}, cfg)
		ib := sim.Simulate(tr, isb.NewIdeal(d), cfg)
		hy := sim.Simulate(tr, hybrid.New(d), cfg)
		fmt.Printf("%-8d %10.3f %10.3f %10.3f\n", d, voy.Coverage(), ib.Coverage(), hy.Coverage())
	}
	fmt.Println("\n(coverage of LLC misses; higher is better)")
}

// Package serve is the prefetch-as-a-service daemon core: a TCP server that
// answers prediction requests from many concurrent trace streams against a
// trained Voyager model, with an optional distilled table as the low-latency
// fast tier.
//
// Architecture. Each connection gets a handler goroutine that decodes
// length-prefixed request frames (proto.go) and advances the stream's
// session (session.go). Fast-tier requests are answered inline — a hash
// probe of the distilled table, no queuing. Model-tier requests are posted
// to an admission queue where a single batcher goroutine coalesces them into
// PredictBatch calls (batcher.go), bounded by MaxBatch rows and MaxWait of
// queue delay; the model's forward pass is row-independent at inference, so
// coalescing never changes any stream's answers (the batching-invariance
// and golden-differential tests pin this).
//
// Shutdown protocol (the waitleak contract): Close stops the listener, sets
// an immediate read deadline on every open connection so idle handlers
// unblock without severing in-flight responses, waits for all handlers to
// exit, then closes the admission queue — the batcher answers everything
// still queued before exiting — and finally stops the eviction janitor and
// joins both loops. Every goroutine the server starts is joined by Close;
// the 100x start/stop leak test holds the daemon to that.
package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"voyager/internal/distill"
	"voyager/internal/metrics"
	"voyager/internal/serve/quality"
	"voyager/internal/sortkeys"
	"voyager/internal/tracing"
	"voyager/internal/vocab"
	"voyager/internal/voyager"
)

// Config configures a Server. Model is required; everything else has
// serviceable defaults.
type Config struct {
	// Model is the trained Voyager model (its vocabulary decides token
	// encoding). PredictBatch is only ever entered from the batcher
	// goroutine, as its contract requires.
	Model *voyager.Model
	// Table is the optional distilled fast tier. Its vocabulary
	// fingerprint must match the model's vocabulary.
	Table *distill.Table

	// Degree is the number of prefetch candidates per request (default:
	// the model config's Degree).
	Degree int
	// MaxBatch bounds the rows coalesced into one PredictBatch call
	// (default 32).
	MaxBatch int
	// MaxWait bounds how long the batcher waits to fill a batch after its
	// first request arrives. Zero means greedy: take whatever is already
	// queued and run.
	MaxWait time.Duration
	// QueueDepth is the admission-queue capacity (default 4x MaxBatch).
	QueueDepth int
	// IdleTimeout evicts sessions unused for this long (0 disables the
	// janitor; nothing is ever evicted).
	IdleTimeout time.Duration

	// Metrics is the registry for SLO instruments (nil disables them).
	Metrics *metrics.Registry
	// Tracer records per-request lifecycle spans (nil disables tracing).
	Tracer *tracing.Tracer
	// Quality, when set, scores every emitted prediction against the
	// stream's subsequent demand accesses and, when the tracker's
	// ShadowEvery is set, shadow-samples fast-tier requests through the
	// model tier. All quality work runs after each request's latency has
	// been recorded — it is strictly off the measured prediction path, and
	// it never changes a response byte (the golden differential runs with
	// it on and off). nil disables everything.
	Quality *quality.Tracker

	// FastLatency/ModelLatency, when set, record exact per-request
	// prediction-path nanoseconds (session advance through candidates
	// ready) for each tier — the bench harness uses these because the
	// log2 SLO histograms cannot resolve a sub-microsecond p99.
	FastLatency  *LatencyRecorder
	ModelLatency *LatencyRecorder
}

// Server is one serving daemon instance. Create with New, start with Start
// or Serve, stop with Close.
type Server struct {
	cfg     Config
	voc     *vocab.Vocab
	seqLen  int
	degree  int
	histLen int // fast-tier history window (0 when no table)

	sessions *sessionTable
	queue    chan *pending
	obs      *serveObs

	lis     net.Listener
	closing atomic.Bool

	mu      sync.Mutex
	conns   map[uint64]net.Conn
	connSeq uint64
	started bool
	closed  bool

	handlers sync.WaitGroup // accept loop + connection handlers
	loops    sync.WaitGroup // batcher + janitor
	stop     chan struct{}  // closed by Close; stops the janitor
}

// New validates the configuration and builds a server (no goroutines start
// until Start/Serve).
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("serve: Config.Model is required")
	}
	mcfg := cfg.Model.Config()
	if cfg.Degree <= 0 {
		cfg.Degree = mcfg.Degree
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	voc := cfg.Model.Vocab()
	histLen := 0
	if cfg.Table != nil {
		if got, want := voc.Fingerprint(), cfg.Table.VocabFP; got != want {
			return nil, fmt.Errorf(
				"serve: distilled table compiled against a different vocabulary (fingerprint %#x, model's %#x)",
				want, got)
		}
		histLen = cfg.Table.HistLen
	}
	ringCap := mcfg.SeqLen
	if histLen > ringCap {
		ringCap = histLen
	}
	s := &Server{
		cfg:      cfg,
		voc:      voc,
		seqLen:   mcfg.SeqLen,
		degree:   cfg.Degree,
		histLen:  histLen,
		sessions: newSessionTable(ringCap, cfg.Metrics, cfg.Quality),
		queue:    make(chan *pending, cfg.QueueDepth),
		obs:      newServeObs(cfg.Metrics, cfg.Tracer),
		conns:    make(map[uint64]net.Conn),
		stop:     make(chan struct{}),
	}
	return s, nil
}

// Start listens on addr ("host:port"; port 0 picks a free one) and serves in
// the background until Close.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.Serve(lis)
	return nil
}

// Serve starts serving on an existing listener (owned by the server from
// here on) and returns immediately.
func (s *Server) Serve(lis net.Listener) {
	s.mu.Lock()
	s.lis = lis
	s.started = true
	s.mu.Unlock()
	s.loops.Add(1)
	go s.batchLoop()
	if s.cfg.IdleTimeout > 0 {
		s.loops.Add(1)
		go s.janitor()
	}
	s.handlers.Add(1)
	go s.acceptLoop(lis)
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Sessions returns the number of live stream sessions.
func (s *Server) Sessions() int { return s.sessions.len() }

// acceptLoop accepts connections until the listener is closed.
func (s *Server) acceptLoop(lis net.Listener) {
	defer s.handlers.Done()
	for {
		c, err := lis.Accept()
		if err != nil {
			return // Close closed the listener (or it genuinely failed)
		}
		id, ok := s.trackConn(c)
		if !ok {
			_ = c.Close() // lost the race with Close
			continue
		}
		s.handlers.Add(1)
		go s.handleConn(c, id)
	}
}

// trackConn registers a live connection; refuses when closing.
func (s *Server) trackConn(c net.Conn) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing.Load() {
		return 0, false
	}
	s.connSeq++
	id := s.connSeq
	s.conns[id] = c
	s.obs.conns.Set(float64(len(s.conns)))
	return id, true
}

// untrackConn removes a connection on handler exit.
func (s *Server) untrackConn(id uint64) {
	s.mu.Lock()
	delete(s.conns, id)
	s.obs.conns.Set(float64(len(s.conns)))
	s.mu.Unlock()
}

// janitor evicts idle sessions on a ticker until Close.
func (s *Server) janitor() {
	defer s.loops.Done()
	period := s.cfg.IdleTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.sessions.evictIdle(s.cfg.IdleTimeout)
			s.obs.janitorPasses.Inc()
			// Piggyback the tracing drop gauge on the janitor cadence so a
			// capped span arena shows up on /metrics while the daemon runs,
			// not just in the trace file's post-mortem otherData.
			s.obs.traceDropped.Set(float64(s.cfg.Tracer.DroppedEvents()))
		case <-s.stop:
			return
		}
	}
}

// Close shuts the server down gracefully: no new connections, in-flight
// requests answered, queue drained, every goroutine joined. Safe to call
// once per Serve; returns the listener close error, if any.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.closing.Store(true)
	lis := s.lis
	s.mu.Unlock()

	err := lis.Close() // unblocks Accept

	// Unblock handlers parked in a frame read. A past read deadline fails
	// the *read* immediately but leaves writes alone, so a handler that is
	// mid-request still sends its response before exiting its loop.
	s.mu.Lock()
	for _, id := range sortkeys.Sorted(s.conns) {
		_ = s.conns[id].SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	s.handlers.Wait()
	close(s.queue) // batcher drains buffered requests, then exits
	close(s.stop)  // janitor exits
	s.loops.Wait()
	// Final drop-gauge update now that every recording goroutine is joined.
	s.obs.traceDropped.Set(float64(s.cfg.Tracer.DroppedEvents()))
	return err
}

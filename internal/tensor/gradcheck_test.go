package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// checkGrad numerically verifies dLoss/dParam for every parameter matrix.
// build must construct a fresh graph from the current parameter values and
// return the scalar loss node along with the tape used.
func checkGrad(t *testing.T, name string, params []*Mat, build func() (*Tape, *Node, []*Node)) {
	t.Helper()
	tape, loss, paramNodes := build()
	tape.Backward(loss)
	const eps = 1e-2
	const tol = 2e-2
	for pi, p := range params {
		pn := paramNodes[pi]
		if pn.Grad == nil {
			t.Fatalf("%s: param %d received no gradient", name, pi)
		}
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			_, lp, _ := build()
			p.Data[i] = orig - eps
			_, lm, _ := build()
			p.Data[i] = orig
			numeric := (float64(lp.Val.Data[0]) - float64(lm.Val.Data[0])) / (2 * eps)
			analytic := float64(pn.Grad.Data[i])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > tol {
				t.Fatalf("%s: param %d elem %d: analytic %g numeric %g", name, pi, i, analytic, numeric)
			}
		}
	}
}

func TestGradMatMulAddBias(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randMat(rng, 3, 4)
	w := randMat(rng, 4, 5)
	b := randMat(rng, 1, 5)
	checkGrad(t, "matmul+bias", []*Mat{w, b}, func() (*Tape, *Node, []*Node) {
		tp := NewTape()
		xn := tp.Const(x)
		wn := tp.Param(w)
		bn := tp.Param(b)
		y := tp.AddBias(tp.MatMul(xn, wn), bn)
		loss := tp.MeanAll(tp.Tanh(y))
		return tp, loss, []*Node{wn, bn}
	})
}

func TestGradElementwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMat(rng, 2, 6)
	b := randMat(rng, 2, 6)
	checkGrad(t, "mul+sigmoid+scale", []*Mat{a, b}, func() (*Tape, *Node, []*Node) {
		tp := NewTape()
		an := tp.Param(a)
		bn := tp.Param(b)
		y := tp.Scale(tp.Mul(tp.Sigmoid(an), tp.Tanh(bn)), 1.7)
		loss := tp.MeanAll(y)
		return tp, loss, []*Node{an, bn}
	})
}

func TestGradAddReLUSum(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, 3, 3)
	b := randMat(rng, 3, 3)
	// Shift away from 0 so ReLU kinks don't break finite differences.
	for i := range a.Data {
		if v := a.Data[i] + b.Data[i]; v > -0.05 && v < 0.05 {
			a.Data[i] += 0.2
		}
	}
	checkGrad(t, "add+relu", []*Mat{a, b}, func() (*Tape, *Node, []*Node) {
		tp := NewTape()
		an := tp.Param(a)
		bn := tp.Param(b)
		loss := tp.MeanAll(tp.ReLU(tp.Add(an, bn)))
		return tp, loss, []*Node{an, bn}
	})
}

func TestGradConcatSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMat(rng, 2, 3)
	b := randMat(rng, 2, 4)
	checkGrad(t, "concat+slice", []*Mat{a, b}, func() (*Tape, *Node, []*Node) {
		tp := NewTape()
		an := tp.Param(a)
		bn := tp.Param(b)
		cat := tp.ConcatCols(an, bn)
		mid := tp.SliceCols(cat, 1, 6)
		loss := tp.MeanAll(tp.Tanh(mid))
		return tp, loss, []*Node{an, bn}
	})
}

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	logits := randMat(rng, 4, 5)
	targets := []int{0, 3, 2, 4}
	checkGrad(t, "softmax-ce", []*Mat{logits}, func() (*Tape, *Node, []*Node) {
		tp := NewTape()
		ln := tp.Param(logits)
		loss, _ := tp.SoftmaxCrossEntropy(ln, targets)
		return tp, loss, []*Node{ln}
	})
}

func TestGradSigmoidBCEMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	logits := randMat(rng, 3, 6)
	pos := [][]int{{0, 2}, {5}, {}}
	checkGrad(t, "sigmoid-bce", []*Mat{logits}, func() (*Tape, *Node, []*Node) {
		tp := NewTape()
		ln := tp.Param(logits)
		loss, _ := tp.SigmoidBCEMulti(ln, pos)
		return tp, loss, []*Node{ln}
	})
}

func TestGradMoEAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const b, d, n = 3, 4, 5
	q := randMat(rng, b, d)
	e := randMat(rng, b, n*d)
	checkGrad(t, "moe-attention", []*Mat{q, e}, func() (*Tape, *Node, []*Node) {
		tp := NewTape()
		qn := tp.Param(q)
		en := tp.Param(e)
		out, _ := tp.MoEAttention(qn, en, 0.5)
		loss := tp.MeanAll(tp.Tanh(out))
		return tp, loss, []*Node{qn, en}
	})
}

func TestGradDropoutMask(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randMat(rng, 2, 5)
	mask := NewMat(2, 5)
	for i := range mask.Data {
		if rng.Float32() < 0.8 {
			mask.Data[i] = 1 / 0.8
		}
	}
	checkGrad(t, "dropout", []*Mat{a}, func() (*Tape, *Node, []*Node) {
		tp := NewTape()
		an := tp.Param(a)
		loss := tp.MeanAll(tp.DropoutMask(tp.Sigmoid(an), mask))
		return tp, loss, []*Node{an}
	})
}

func TestGradDeepChain(t *testing.T) {
	// A longer composition approximating one LSTM-ish step, to catch
	// accumulation bugs across shared nodes.
	rng := rand.New(rand.NewSource(18))
	x := randMat(rng, 2, 3)
	w1 := randMat(rng, 3, 4)
	w2 := randMat(rng, 4, 4)
	checkGrad(t, "deep-chain", []*Mat{w1, w2}, func() (*Tape, *Node, []*Node) {
		tp := NewTape()
		xn := tp.Const(x)
		w1n := tp.Param(w1)
		w2n := tp.Param(w2)
		h := tp.Tanh(tp.MatMul(xn, w1n))
		// h used twice: gate path and value path.
		gate := tp.Sigmoid(tp.MatMul(h, w2n))
		val := tp.Tanh(tp.MatMul(h, w2n))
		loss := tp.MeanAll(tp.Mul(gate, val))
		return tp, loss, []*Node{w1n, w2n}
	})
}

func TestBackwardScalarPanics(t *testing.T) {
	tp := NewTape()
	n := tp.Param(NewMat(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for non-scalar Backward root")
		}
	}()
	tp.Backward(n)
}

func TestNoGradForConstants(t *testing.T) {
	tp := NewTape()
	a := tp.Const(FromSlice(1, 2, []float32{1, 2}))
	b := tp.Const(FromSlice(1, 2, []float32{3, 4}))
	out := tp.Mul(a, b)
	if out.RequiresGrad() {
		t.Fatalf("product of constants must not require grad")
	}
	if tp.Len() != 0 {
		t.Fatalf("constant-only ops should not be recorded; len=%d", tp.Len())
	}
}

func TestMoEAttentionWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	q := randMat(rng, 4, 3)
	e := randMat(rng, 4, 12)
	tp := NewTape()
	_, w := tp.MoEAttention(tp.Const(q), tp.Const(e), 1)
	for r := 0; r < w.Rows; r++ {
		var sum float64
		for _, v := range w.Row(r) {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("attention row %d sums to %v", r, sum)
		}
	}
}

// The paper's Figure 3 worked example: page embedding (0.5, -0.5), offset
// embedding chunks; the 3rd chunk (0.8, -0.4) should dominate.
func TestMoEAttentionFigure3Example(t *testing.T) {
	q := FromSlice(1, 2, []float32{0.5, -0.5})
	e := FromSlice(1, 8, []float32{
		0.1, 0.2, // chunk 0
		-0.3, 0.4, // chunk 1
		0.8, -0.4, // chunk 2 — most correlated with the page
		0.2, 0.3, // chunk 3
	})
	tp := NewTape()
	out, w := tp.MoEAttention(tp.Const(q), tp.Const(e), 1)
	best := 0
	for s := 1; s < 4; s++ {
		if w.At(0, s) > w.At(0, best) {
			best = s
		}
	}
	if best != 2 {
		t.Fatalf("expected chunk 2 to dominate, weights=%v", w.Row(0))
	}
	if out.Val.Cols != 2 {
		t.Fatalf("output width %d", out.Val.Cols)
	}
}

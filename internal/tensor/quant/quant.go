// Package quant provides inference-only quantized weight matrices and the
// matmul kernels that consume them: int8 with per-column symmetric scales
// (4× smaller weights, the format behind voyager's quantized-predict mode)
// and IEEE binary16 (2× smaller, higher fidelity). Quantization is weight-
// only: activations stay float32 and the kernels dequantize on the fly, so
// no calibration pass is needed and training is untouched.
//
// Unlike the exact kernels in internal/tensor, the quantized kernels carry
// no bit-reproducibility contract across shapes or refactors — quantization
// itself already perturbs every weight, so the differential tests bound the
// end-to-end error against the float32 kernels instead (see quant_test.go).
// Within one build the kernels are still deterministic: same inputs, same
// outputs.
package quant

import (
	"fmt"
	"math"

	"voyager/internal/tensor"
)

// Q8Mat is an int8 weight matrix with one symmetric scale per column:
// ŵ[i][j] = float32(Data[i*Cols+j]) · Scale[j]. Per-column scales fit a
// linear layer's weights (each output neuron's column has its own range)
// much tighter than one per-tensor scale, and they factor out of the dot
// product, so the kernel multiplies by Scale once per output element rather
// than once per term.
type Q8Mat struct {
	Rows, Cols int
	Data       []int8
	Scale      []float32
}

// QuantizeQ8 quantizes w into a fresh Q8Mat.
func QuantizeQ8(w *tensor.Mat) *Q8Mat {
	q := &Q8Mat{
		Rows:  w.Rows,
		Cols:  w.Cols,
		Data:  make([]int8, len(w.Data)),
		Scale: make([]float32, w.Cols),
	}
	q.RequantizeFrom(w)
	return q
}

// RequantizeFrom refreshes the quantized weights from w in place, allocating
// nothing — the lazy-requantization hook for weights that keep training
// between inference batches.
func (q *Q8Mat) RequantizeFrom(w *tensor.Mat) {
	if w.Rows != q.Rows || w.Cols != q.Cols {
		panic(fmt.Sprintf("quant: RequantizeFrom shape %dx%d != %dx%d", w.Rows, w.Cols, q.Rows, q.Cols))
	}
	n := q.Cols
	for j := 0; j < n; j++ {
		var mx float32
		for i := 0; i < q.Rows; i++ {
			v := w.Data[i*n+j]
			if v < 0 {
				v = -v
			}
			if v > mx {
				mx = v
			}
		}
		scale := mx / 127
		inv := 127 / mx
		// mx == 0 has nothing to encode; a subnormal mx overflows inv to
		// +Inf (and would push NaN/Inf through the int8 conversion below),
		// so such a column — numerically zero at int8 resolution — is
		// stored as zeros with a zero scale.
		if mx == 0 || math.IsInf(float64(inv), 0) {
			q.Scale[j] = 0
			for i := 0; i < q.Rows; i++ {
				q.Data[i*n+j] = 0
			}
			continue
		}
		q.Scale[j] = scale
		for i := 0; i < q.Rows; i++ {
			v := w.Data[i*n+j] * inv
			// Round half away from zero; v is already clamped to ±127 by
			// construction (|w| ≤ mx).
			if v >= 0 {
				q.Data[i*n+j] = int8(v + 0.5)
			} else {
				q.Data[i*n+j] = int8(v - 0.5)
			}
		}
	}
}

// Dequantize expands the quantized weights back to float32 (dst allocated
// when nil) — the reference the differential tests compare kernels against.
func (q *Q8Mat) Dequantize(dst *tensor.Mat) *tensor.Mat {
	if dst == nil {
		dst = tensor.NewMat(q.Rows, q.Cols)
	}
	n := q.Cols
	for i := 0; i < q.Rows; i++ {
		drow := dst.Row(i)
		qrow := q.Data[i*n : (i+1)*n]
		for j, qv := range qrow {
			drow[j] = float32(qv) * q.Scale[j]
		}
	}
	return dst
}

// Bytes returns the storage footprint of the quantized form.
func (q *Q8Mat) Bytes() int { return len(q.Data) + 4*len(q.Scale) }

// MatMulQ8 computes dst = x·ŵ (+ bias per column when bias is non-nil),
// where ŵ is q's dequantized weight matrix. x is batch×in, q is in×out,
// dst is batch×out and is overwritten. The per-column scale factors out of
// the dot product: the inner loops accumulate raw int8-converted products
// and one final pass applies scale and bias, so dequantization costs one
// int→float conversion per term and one multiply per output. Allocates
// nothing.
func MatMulQ8(dst, x *tensor.Mat, q *Q8Mat, bias []float32) {
	if x.Cols != q.Rows {
		panic(fmt.Sprintf("quant: MatMulQ8 inner dim mismatch %dx%d · %dx%d", x.Rows, x.Cols, q.Rows, q.Cols))
	}
	if dst.Rows != x.Rows || dst.Cols != q.Cols {
		panic("quant: MatMulQ8 dst shape mismatch")
	}
	if bias != nil && len(bias) != q.Cols {
		panic("quant: MatMulQ8 bias length mismatch")
	}
	n := q.Cols
	if n == 0 {
		return
	}
	kc := x.Cols
	qd := q.Data
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		drow := dst.Row(i)[:n]
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+4 <= kc; k += 4 {
			xv0, xv1, xv2, xv3 := xrow[k], xrow[k+1], xrow[k+2], xrow[k+3]
			q0 := qd[k*n:]
			q0 = q0[:n]
			q1 := qd[(k+1)*n:]
			q1 = q1[:n]
			q2 := qd[(k+2)*n:]
			q2 = q2[:n]
			q3 := qd[(k+3)*n:]
			q3 = q3[:n]
			for j := range drow {
				drow[j] += (xv0*float32(q0[j]) + xv1*float32(q1[j])) +
					(xv2*float32(q2[j]) + xv3*float32(q3[j]))
			}
		}
		for ; k < kc; k++ {
			xv := xrow[k]
			qrow := qd[k*n:]
			qrow = qrow[:n]
			for j := range drow {
				drow[j] += xv * float32(qrow[j])
			}
		}
		scale := q.Scale[:n]
		if bias != nil {
			b := bias[:n]
			for j := range drow {
				drow[j] = drow[j]*scale[j] + b[j]
			}
		} else {
			for j := range drow {
				drow[j] *= scale[j]
			}
		}
	}
}

// F16Mat is an IEEE binary16 weight matrix — 2× smaller than float32 with
// ~3 decimal digits of precision, the near-lossless tier of the quantized
// path.
type F16Mat struct {
	Rows, Cols int
	Data       []uint16
}

// QuantizeF16 converts w into a fresh F16Mat (round to nearest even).
func QuantizeF16(w *tensor.Mat) *F16Mat {
	q := &F16Mat{Rows: w.Rows, Cols: w.Cols, Data: make([]uint16, len(w.Data))}
	q.RequantizeFrom(w)
	return q
}

// RequantizeFrom refreshes the half-precision weights from w in place.
func (q *F16Mat) RequantizeFrom(w *tensor.Mat) {
	if w.Rows != q.Rows || w.Cols != q.Cols {
		panic(fmt.Sprintf("quant: RequantizeFrom shape %dx%d != %dx%d", w.Rows, w.Cols, q.Rows, q.Cols))
	}
	for i, v := range w.Data {
		q.Data[i] = F32ToF16(v)
	}
}

// Dequantize expands the half-precision weights back to float32 (dst
// allocated when nil).
func (q *F16Mat) Dequantize(dst *tensor.Mat) *tensor.Mat {
	if dst == nil {
		dst = tensor.NewMat(q.Rows, q.Cols)
	}
	for i, u := range q.Data {
		dst.Data[i] = F16ToF32(u)
	}
	return dst
}

// Bytes returns the storage footprint of the half-precision form.
func (q *F16Mat) Bytes() int { return 2 * len(q.Data) }

// f16Table maps every binary16 bit pattern to its float32 value. 256 KiB
// buys a branch-free one-load dequantization in the kernel inner loop —
// trained weights cluster in a narrow range, so the touched table lines stay
// cache-resident.
var f16Table [1 << 16]float32

func init() {
	for u := 0; u < 1<<16; u++ {
		f16Table[u] = F16ToF32(uint16(u))
	}
}

// MatMulF16 computes dst = x·ŵ (+ bias per column when bias is non-nil)
// against half-precision weights, dequantizing through the lookup table.
// Shapes as MatMulQ8. Allocates nothing.
func MatMulF16(dst, x *tensor.Mat, q *F16Mat, bias []float32) {
	if x.Cols != q.Rows {
		panic(fmt.Sprintf("quant: MatMulF16 inner dim mismatch %dx%d · %dx%d", x.Rows, x.Cols, q.Rows, q.Cols))
	}
	if dst.Rows != x.Rows || dst.Cols != q.Cols {
		panic("quant: MatMulF16 dst shape mismatch")
	}
	if bias != nil && len(bias) != q.Cols {
		panic("quant: MatMulF16 bias length mismatch")
	}
	n := q.Cols
	if n == 0 {
		return
	}
	kc := x.Cols
	qd := q.Data
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		drow := dst.Row(i)[:n]
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+4 <= kc; k += 4 {
			xv0, xv1, xv2, xv3 := xrow[k], xrow[k+1], xrow[k+2], xrow[k+3]
			q0 := qd[k*n:]
			q0 = q0[:n]
			q1 := qd[(k+1)*n:]
			q1 = q1[:n]
			q2 := qd[(k+2)*n:]
			q2 = q2[:n]
			q3 := qd[(k+3)*n:]
			q3 = q3[:n]
			for j := range drow {
				drow[j] += (xv0*f16Table[q0[j]] + xv1*f16Table[q1[j]]) +
					(xv2*f16Table[q2[j]] + xv3*f16Table[q3[j]])
			}
		}
		for ; k < kc; k++ {
			xv := xrow[k]
			qrow := qd[k*n:]
			qrow = qrow[:n]
			for j := range drow {
				drow[j] += xv * f16Table[qrow[j]]
			}
		}
		if bias != nil {
			b := bias[:n]
			for j := range drow {
				drow[j] += b[j]
			}
		}
	}
}

// F32ToF16 converts a float32 to IEEE binary16 with round-to-nearest-even,
// saturating overflow to ±Inf and preserving NaN.
func F32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	man := b & 0x7fffff
	switch {
	case exp >= 31: // overflow, Inf, NaN
		if b&0x7fffffff > 0x7f800000 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign
		}
		man |= 0x800000
		shift := uint32(14 - exp)
		v := man >> shift
		rem := man & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && v&1 == 1) {
			v++
		}
		return sign | uint16(v)
	}
	v := man >> 13
	if rem := man & 0x1fff; rem > 0x1000 || (rem == 0x1000 && v&1 == 1) {
		v++ // may carry into the exponent — the addition below handles it
	}
	r := uint32(exp)<<10 + v
	if r >= 0x7c00 {
		return sign | 0x7c00
	}
	return sign | uint16(r)
}

// F16ToF32 converts an IEEE binary16 bit pattern to float32 (exact).
func F16ToF32(u uint16) float32 {
	sign := uint32(u&0x8000) << 16
	exp := uint32(u >> 10 & 0x1f)
	man := uint32(u & 0x3ff)
	switch {
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign) // ±0
		}
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (man&0x3ff)<<13)
	case exp == 31:
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	}
	return math.Float32frombits(sign | (exp-15+127)<<23 | man<<13)
}

// AffineQuantize rounds data in place to 2^bits linear levels spanning its
// [min, max] range — the per-tensor affine simulation behind the §5.4
// model-size study (nn.ParamSet.Quantize delegates here). Exact zeros stay
// zero so magnitude pruning survives quantization. bits outside (0, 32) is
// a no-op.
func AffineQuantize(data []float32, bits int) {
	if bits <= 0 || bits >= 32 || len(data) == 0 {
		return
	}
	levels := float32(int32(1)<<bits - 1)
	mn, mx := data[0], data[0]
	for _, v := range data {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx == mn {
		return
	}
	scale := (mx - mn) / levels
	for i, v := range data {
		if v == 0 {
			continue
		}
		data[i] = float32(int32((v-mn)/scale+0.5))*scale + mn
	}
}

package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpPredict, Flags: FlagFast, Stream: 7, PC: 0xdeadbeef, Addr: 0x1234567890},
		{Op: OpClose, Stream: ^uint64(0)},
		{Op: OpPing},
	}
	for _, want := range reqs {
		frame := EncodeRequest(nil, want)
		if len(frame) != 4+RequestLen {
			t.Fatalf("frame %d bytes, want %d", len(frame), 4+RequestLen)
		}
		got, err := DecodeRequest(frame[4:])
		if err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	valid := EncodeRequest(nil, Request{Op: OpPredict})[4:]
	cases := map[string][]byte{
		"empty":        {},
		"truncated":    valid[:RequestLen-1],
		"oversized":    append(append([]byte{}, valid...), 0),
		"bad version":  mutate(valid, 0, 99),
		"bad opcode":   mutate(valid, 1, 42),
		"reserved set": mutate(valid, 3, 1),
	}
	for name, payload := range cases {
		if _, err := DecodeRequest(payload); err == nil {
			t.Errorf("%s: DecodeRequest accepted %x", name, payload)
		}
	}
}

func mutate(b []byte, i int, v byte) []byte {
	cp := append([]byte{}, b...)
	cp[i] = v
	return cp
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, Tier: TierModel, Cands: []Candidate{
			{PageTok: 3, OffTok: 61, ScoreBits: 0x3fe0000000000000, Addr: 0xabc0},
			{PageTok: -1, OffTok: -1, Addr: 0x40},
		}},
		{Status: StatusOK, Tier: TierFast},
		{Status: StatusError, Err: "serve: boom"},
	}
	var got Response
	for _, want := range resps {
		frame := EncodeResponse(nil, &want)
		if err := DecodeResponse(frame[4:], &got); err != nil {
			t.Fatalf("DecodeResponse: %v", err)
		}
		if got.Status != want.Status || got.Tier != want.Tier || got.Err != want.Err {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
		if len(got.Cands) != len(want.Cands) {
			t.Fatalf("cands %d, want %d", len(got.Cands), len(want.Cands))
		}
		for i := range got.Cands {
			if got.Cands[i] != want.Cands[i] {
				t.Fatalf("cand %d: %+v, want %+v", i, got.Cands[i], want.Cands[i])
			}
		}
	}
}

func TestDecodeResponseRejectsMalformed(t *testing.T) {
	var r Response
	if err := DecodeResponse([]byte{Version, StatusOK}, &r); err == nil {
		t.Error("short payload accepted")
	}
	if err := DecodeResponse([]byte{9, StatusOK, 0, 0}, &r); err == nil {
		t.Error("bad version accepted")
	}
	// Count says 2 candidates, body holds none.
	if err := DecodeResponse([]byte{Version, StatusOK, 0, 2}, &r); err == nil {
		t.Error("count/body mismatch accepted")
	}
}

func TestReadFrameBoundsLength(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	_, err := ReadFrame(bufio.NewReader(&buf), nil)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length: err = %v, want ErrFrameTooLarge", err)
	}

	// Truncated payload: header promises more bytes than the stream has.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	if _, err := ReadFrame(bufio.NewReader(&buf), nil); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestEncodeResponseTruncatesHugeError(t *testing.T) {
	r := Response{Status: StatusError, Err: strings.Repeat("x", MaxFrame*2)}
	frame := EncodeResponse(nil, &r)
	n := binary.BigEndian.Uint32(frame[:4])
	if n > MaxFrame {
		t.Fatalf("error frame %d bytes exceeds MaxFrame", n)
	}
	var got Response
	if err := DecodeResponse(frame[4:], &got); err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
}

package sharedrand_test

import (
	"testing"

	"voyager/internal/analysis/analysistest"
	"voyager/internal/analysis/sharedrand"
)

func TestSharedRand(t *testing.T) {
	analysistest.Run(t, sharedrand.New(), "testdata/src/sharedrandpkg")
}

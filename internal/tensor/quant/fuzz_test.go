package quant

import (
	"encoding/binary"
	"math"
	"testing"

	"voyager/internal/tensor"
)

// f32Column encodes a column of float32s as fuzz-seed bytes.
func f32Column(vals ...float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// FuzzQ8Quantize feeds arbitrary float32 matrices (including NaN, ±Inf and
// −0 columns) through the int8 quantizer. It must never panic; for finite
// inputs the documented per-element error bound |ŵ−w| ≤ scale/2 must hold
// and the stored codes must stay within the symmetric ±127 range; and
// requantizing the same weights twice must be bit-stable (the lazy
// requantization hook depends on that).
func FuzzQ8Quantize(f *testing.F) {
	f.Add(f32Column(1, -2, 3, -4, 0.5, 127, -127, 0.001), uint8(2))
	f.Add(f32Column(float32(math.NaN()), 1, float32(math.NaN()), -1), uint8(2))
	f.Add(f32Column(float32(math.Inf(1)), 2, float32(math.Inf(-1)), -2), uint8(2))
	negZero := math.Float32frombits(0x8000_0000)
	f.Add(f32Column(negZero, negZero, 0, negZero), uint8(4))
	f.Add(f32Column(1e38, -1e38, 1e-38, -1e-38, 65504, -65504), uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, colsRaw uint8) {
		cols := int(colsRaw%16) + 1
		n := len(data) / 4
		rows := n / cols
		if rows == 0 {
			return
		}
		w := tensor.NewMat(rows, cols)
		finite := true
		for i := range w.Data[:rows*cols] {
			v := math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
			w.Data[i] = v
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				finite = false
			}
		}
		q := QuantizeQ8(w)
		if q.Rows != rows || q.Cols != cols || len(q.Scale) != cols {
			t.Fatalf("shape: got %dx%d/%d scales", q.Rows, q.Cols, len(q.Scale))
		}
		q.Dequantize(nil) // must not panic whatever the codes are
		if finite {
			for i, v := range w.Data {
				j := i % cols
				if c := q.Data[i]; c < -127 || c > 127 {
					t.Fatalf("code %d at %d outside symmetric range", c, i)
				}
				// Reconstruct in float64: columns peaking within one code
				// step of MaxFloat32 overflow the float32 multiply, but the
				// stored code must still honor the scale/2 error bound.
				bound := float64(q.Scale[j]) / 2
				rec := float64(q.Data[i]) * float64(q.Scale[j])
				if d := math.Abs(rec - float64(v)); d > bound+1e-6 {
					t.Fatalf("elem %d: |%g - %g| = %g > scale/2 = %g", i, rec, v, d, bound)
				}
			}
		}
		again := QuantizeQ8(w)
		for i := range q.Data {
			if q.Data[i] != again.Data[i] {
				t.Fatalf("requantization not bit-stable at %d: %d vs %d", i, q.Data[i], again.Data[i])
			}
		}
		for j := range q.Scale {
			if math.Float32bits(q.Scale[j]) != math.Float32bits(again.Scale[j]) {
				t.Fatalf("scale %d not bit-stable", j)
			}
		}
	})
}

// FuzzF16RoundTrip checks both directions of the binary16 converters over
// arbitrary bit patterns: f16→f32→f16 must be the identity for every
// non-NaN half (signed zeros, subnormals and infinities included), NaNs
// must canonicalize to the quiet-NaN encoding, and f32→f16 must be
// idempotent under one decode/encode cycle (round-to-nearest-even has
// nothing left to round the second time).
func FuzzF16RoundTrip(f *testing.F) {
	f.Add(uint16(0x0000), uint32(0))              // +0
	f.Add(uint16(0x8000), math.Float32bits(-0.0)) // −0
	f.Add(uint16(0x7c00), math.Float32bits(float32(math.Inf(1))))
	f.Add(uint16(0xfc00), math.Float32bits(float32(math.Inf(-1))))
	f.Add(uint16(0x7e00), math.Float32bits(float32(math.NaN())))
	f.Add(uint16(0x7c01), uint32(0x7fc00001)) // signaling-ish NaN payloads
	f.Add(uint16(0x0001), math.Float32bits(5.9604645e-8)) // smallest subnormal
	f.Add(uint16(0x3c00), math.Float32bits(1))
	f.Add(uint16(0x7bff), math.Float32bits(65504)) // largest finite half
	f.Add(uint16(0x1234), math.Float32bits(65520)) // rounds up to +Inf
	f.Fuzz(func(t *testing.T, h uint16, fbits uint32) {
		// Direction 1: every half value round-trips exactly, except NaNs
		// which canonicalize.
		f32 := F16ToF32(h)
		back := F32ToF16(f32)
		if math.IsNaN(float64(f32)) {
			if back&0x7fff != 0x7e00 {
				t.Fatalf("NaN half %#04x canonicalized to %#04x, want sign|0x7e00", h, back)
			}
		} else if back != h {
			t.Fatalf("half %#04x → %g → %#04x (not identity)", h, f32, back)
		}

		// Direction 2: encoding an arbitrary float32 is idempotent after one
		// decode, and saturation/sign behavior is preserved.
		v := math.Float32frombits(fbits)
		enc := F32ToF16(v)
		dec := F16ToF32(enc)
		if math.IsNaN(float64(v)) {
			if enc&0x7fff != 0x7e00 {
				t.Fatalf("NaN %#08x encoded to %#04x, want canonical sign|0x7e00", fbits, enc)
			}
			return
		}
		if F32ToF16(dec) != enc {
			t.Fatalf("encode not idempotent: %g → %#04x → %g → %#04x", v, enc, dec, F32ToF16(dec))
		}
		if (enc&0x8000 != 0) != math.Signbit(float64(v)) {
			t.Fatalf("sign lost: %g → %#04x", v, enc)
		}
	})
}

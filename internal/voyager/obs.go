package voyager

import (
	"fmt"
	"math"

	"voyager/internal/metrics"
	"voyager/internal/nn"
)

// trainObs bundles the training loop's instruments. It is built once per
// model from Config.Metrics; with metrics disabled every field is a nil
// instrument and every call below is a no-op, so the hot path pays one
// pointer compare per site and no clock reads (inert timers).
//
// Instrumentation is strictly observational: nothing here consumes RNG
// draws, reorders float operations, or feeds back into training — the
// golden differential tests pin that a metrics-enabled run is bit-identical
// to a disabled one.
type trainObs struct {
	reg *metrics.Registry

	steps          *metrics.Counter // train_steps_total: optimizer steps
	samples        *metrics.Counter // train_samples_total: trigger rows trained
	tokens         *metrics.Counter // train_tokens_total: rows × SeqLen
	epochs         *metrics.Counter // train_epochs_total
	predictBatches *metrics.Counter // predict_batches_total

	loss         *metrics.Gauge // train_loss: last batch loss
	gradNorm     *metrics.Gauge // train_grad_norm: L2 over all merged grads
	tokensPerSec *metrics.Gauge // train_tokens_per_sec: last step throughput

	stepSec     *metrics.Histogram // train_step_seconds: label build + batch + opt
	forwardSec  *metrics.Histogram // train_forward_seconds: per shard
	backwardSec *metrics.Histogram // train_backward_seconds: per shard
	optSec      *metrics.Histogram // train_optimizer_seconds
	epochSec    *metrics.Histogram // train_epoch_seconds
}

func newTrainObs(reg *metrics.Registry) *trainObs {
	return &trainObs{
		reg:            reg,
		steps:          reg.Counter("train_steps_total"),
		samples:        reg.Counter("train_samples_total"),
		tokens:         reg.Counter("train_tokens_total"),
		epochs:         reg.Counter("train_epochs_total"),
		predictBatches: reg.Counter("predict_batches_total"),
		loss:           reg.Gauge("train_loss"),
		gradNorm:       reg.Gauge("train_grad_norm"),
		tokensPerSec:   reg.Gauge("train_tokens_per_sec"),
		stepSec:        reg.Histogram("train_step_seconds"),
		forwardSec:     reg.Histogram("train_forward_seconds"),
		backwardSec:    reg.Histogram("train_backward_seconds"),
		optSec:         reg.Histogram("train_optimizer_seconds"),
		epochSec:       reg.Histogram("train_epoch_seconds"),
	}
}

// shardHist returns worker w's shard-timing histogram
// (train_shard_seconds.wNN), nil when metrics are disabled. Looked up once
// per worker model, never in the hot path.
func (o *trainObs) shardHist(w int) *metrics.Histogram {
	return o.reg.Histogram(fmt.Sprintf("train_shard_seconds.w%02d", w))
}

// recordTrainStep updates the per-step counters and gauges after TrainBatch
// has finished its ordered gradient reduce. The grad-norm scan reads the
// merged gradients (a pure read) and only runs when metrics are enabled.
func (o *trainObs) recordTrainStep(params *nn.ParamSet, rows, seqLen int, loss float32) {
	o.steps.Inc()
	o.samples.Add(uint64(rows))
	o.tokens.Add(uint64(rows * seqLen))
	o.loss.Set(float64(loss))
	if o.gradNorm != nil {
		o.gradNorm.Set(gradL2Norm(params.All()))
	}
}

// gradL2Norm is the L2 norm over every parameter's gradient buffer,
// accumulated in float64. Sparse params' untouched rows are zero and
// contribute nothing.
func gradL2Norm(params []*nn.Param) float64 {
	var s float64
	for _, p := range params {
		for _, v := range p.Grad.Data {
			f := float64(v)
			s += f * f
		}
	}
	return math.Sqrt(s)
}

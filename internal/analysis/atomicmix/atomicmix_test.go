package atomicmix_test

import (
	"strings"
	"testing"

	"voyager/internal/analysis/analysistest"
	"voyager/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, atomicmix.New(), "testdata/src/atomicmixpkg")
}

// TestSeededTracingMutationFlagged pins the headline guarantee: the
// testdata's trackMutant — internal/tracing's publish protocol with the
// atomic.Uint64 count regressed to a plain field — is flagged on both the
// torn read in snapshot and the plain dropped++ in record.
func TestSeededTracingMutationFlagged(t *testing.T) {
	got := analysistest.Findings(t, atomicmix.New(), "testdata/src/atomicmixpkg")
	var count, dropped bool
	for _, d := range got {
		if strings.Contains(d.Message, "count is accessed via sync/atomic") {
			count = true
		}
		if strings.Contains(d.Message, "dropped is accessed via sync/atomic") {
			dropped = true
		}
	}
	if !count || !dropped {
		t.Fatalf("seeded tracing mutation not fully flagged (count=%v dropped=%v) in %v", count, dropped, got)
	}
}

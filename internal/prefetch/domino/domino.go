// Package domino implements an idealized Domino temporal prefetcher
// (Bakhshalipour et al., HPCA 2018). Domino improves on STMS by using the
// previous *two* addresses in the global stream as the lookup key:
// P(Addr_{t+1} | Addr_{t-1}, Addr_t), falling back to a single-address key
// when the pair has not been seen.
package domino

import "voyager/internal/trace"

type pairKey struct{ a, b uint64 }

// Prefetcher is an idealized Domino.
type Prefetcher struct {
	Degree int

	pairSucc   map[pairKey]uint64 // (prev2, prev1) → next
	singleSucc map[uint64]uint64  // prev1 → next (fallback)
	prev1      uint64
	prev2      uint64
	seen       int
}

// New returns a Domino prefetcher with the given degree.
func New(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &Prefetcher{
		Degree:     degree,
		pairSucc:   make(map[pairKey]uint64),
		singleSucc: make(map[uint64]uint64),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "domino" }

// Access trains both tables on the global stream and predicts by chaining
// two-address lookups.
func (p *Prefetcher) Access(_ int, a trace.Access) []uint64 {
	line := trace.Line(a.Addr)
	if p.seen >= 2 {
		p.pairSucc[pairKey{p.prev2, p.prev1}] = line
	}
	if p.seen >= 1 {
		p.singleSucc[p.prev1] = line
	}
	p.prev2, p.prev1 = p.prev1, line
	if p.seen < 2 {
		p.seen++
	}

	var out []uint64
	a2, a1 := p.prev2, p.prev1 // after update: (prev, current)
	for k := 0; k < p.Degree; k++ {
		next, ok := p.pairSucc[pairKey{a2, a1}]
		if !ok {
			next, ok = p.singleSucc[a1]
			if !ok {
				break
			}
		}
		out = append(out, next<<trace.LineBits)
		a2, a1 = a1, next
	}
	return out
}

// Entries returns the total correlation-table entries across the pair and
// fallback tables (§5.4 storage comparison).
func (p *Prefetcher) Entries() int { return len(p.pairSucc) + len(p.singleSucc) }

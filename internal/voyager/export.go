package voyager

import "voyager/internal/vocab"

// Read-only accessors used by the distillation compiler (internal/distill):
// teacher-forced batched inference at arbitrary trigger positions plus the
// pre-encoded per-access tokens, without re-deriving the vocabulary encoding
// or touching the online-protocol prediction table.

// NumAccesses returns the number of accesses in the bound trace.
func (p *Predictor) NumAccesses() int { return len(p.lines) }

// TokensAt returns the encoded (pc, page, offset) tokens of access i.
func (p *Predictor) TokensAt(i int) (pcTok, pageTok, offTok int) {
	t := p.tokens[i]
	return t.pc, t.page, t.off
}

// LineAt returns the cache-line number of access i.
func (p *Predictor) LineAt(i int) uint64 { return p.lines[i] }

// PCAt returns the raw program counter of access i.
func (p *Predictor) PCAt(i int) uint64 { return p.pcs[i] }

// PredictAt runs one inference batch over the given trigger positions and
// returns, per position, the model's top-degree (page, offset) candidates.
// Unlike predictRange it never writes the prediction table or provenance
// log: it is the read-only teacher query for distillation and agreement
// measurement. Rows are freshly allocated; positions is only read.
func (p *Predictor) PredictAt(positions []int, degree int) [][]Candidate {
	if len(positions) == 0 {
		return nil
	}
	return p.Model.PredictBatch(p.buildBatch(positions), degree)
}

// VocabOptions exposes the vocabulary options this config implies, so tools
// that load a distilled table can rebuild the exact training vocabulary from
// the same trace (construction is deterministic; the table's embedded
// fingerprint verifies the match).
func (c Config) VocabOptions() vocab.Options { return c.vocabOptions() }

// SetQuantizedPredict toggles the int8 quantized predict path on an
// already-constructed model (otherwise Config.QuantizedPredict is fixed at
// construction). The next PredictBatch requantizes the head shadows from
// the current fp32 weights, so toggling is safe at any point between
// batches; existing replicas are switched along with the master.
func (m *Model) SetQuantizedPredict(on bool) {
	m.cfg.QuantizedPredict = on
	m.qDirty = true
	for _, r := range m.replicas {
		r.cfg.QuantizedPredict = on
	}
}

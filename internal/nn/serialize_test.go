package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

func buildSet(rng *rand.Rand) *ParamSet {
	var s ParamSet
	a := NewParam("layer.w", 3, 4)
	a.W.Uniform(rng, 1)
	b := NewParam("layer.b", 1, 4)
	b.W.Uniform(rng, 1)
	e := NewSparseParam("emb", 10, 2)
	e.W.Uniform(rng, 1)
	s.Add(a, b, e)
	return &s
}

func TestWeightsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := buildSet(rng)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	dst := buildSet(rand.New(rand.NewSource(99))) // different init
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	for i, p := range src.All() {
		q := dst.All()[i]
		for j := range p.W.Data {
			if p.W.Data[j] != q.W.Data[j] {
				t.Fatalf("param %s elem %d mismatch", p.Name, j)
			}
		}
	}
}

func TestReadFromRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := buildSet(rng)
	if _, err := s.ReadFrom(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatalf("bad magic accepted")
	}

	// Unknown parameter name.
	var other ParamSet
	p := NewParam("mystery", 1, 1)
	other.Add(p)
	var buf bytes.Buffer
	other.WriteTo(&buf)
	if _, err := s.ReadFrom(&buf); err == nil {
		t.Fatalf("unknown parameter accepted")
	}

	// Shape mismatch.
	var shaped ParamSet
	shaped.Add(NewParam("layer.w", 2, 2))
	buf.Reset()
	shaped.WriteTo(&buf)
	if _, err := s.ReadFrom(&buf); err == nil {
		t.Fatalf("shape mismatch accepted")
	}

	// Truncated data.
	buf.Reset()
	s.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := s.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatalf("truncated file accepted")
	}
}

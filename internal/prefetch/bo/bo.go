// Package bo implements the Best-Offset prefetcher (Michaud, HPCA 2016),
// the spatial baseline of the paper. BO learns a single best line offset D
// by scoring candidate offsets against a recent-requests table: offset d
// scores when the line (X - d) was recently requested, meaning a d-offset
// prefetch issued back then would have been timely. After a learning round
// the best-scoring offset becomes the prefetch offset.
package bo

import "voyager/internal/trace"

// Standard BO offset list: offsets with no prime factor above 5 (Michaud's
// design), up to 63 lines.
var defaultOffsets = []int64{
	1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25,
	27, 30, 32, 36, 40, 45, 48, 50, 54, 60,
	-1, -2, -3, -4, -6, -8,
}

const (
	scoreMax   = 31  // learning stops early when an offset reaches this
	roundMax   = 100 // or after this many full passes over the offset list
	badScore   = 1   // best score below this disables prefetching
	rrTableLen = 256
)

// Prefetcher is a Best-Offset prefetcher.
type Prefetcher struct {
	Degree  int
	offsets []int64
	scores  []int
	testIdx int
	round   int

	rr [rrTableLen]uint64 // recent requests, direct-mapped by line hash

	best     int64
	bestOK   bool
	prevLine uint64
}

// New returns a BO prefetcher with the given degree.
func New(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	p := &Prefetcher{
		Degree:  degree,
		offsets: defaultOffsets,
		scores:  make([]int, len(defaultOffsets)),
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "bo" }

func rrIndex(line uint64) int { return int(line*2654435761) & (rrTableLen - 1) }

func (p *Prefetcher) rrInsert(line uint64) { p.rr[rrIndex(line)] = line }

func (p *Prefetcher) rrHit(line uint64) bool { return p.rr[rrIndex(line)] == line }

// Access runs one BO learning step and returns prefetches for the current
// best offset.
func (p *Prefetcher) Access(_ int, a trace.Access) []uint64 {
	line := trace.Line(a.Addr)

	// Learning: test the next candidate offset d against the RR table.
	d := p.offsets[p.testIdx]
	if testBase := int64(line) - d; testBase >= 0 && p.rrHit(uint64(testBase)) {
		p.scores[p.testIdx]++
	}
	p.testIdx++
	if p.testIdx == len(p.offsets) {
		p.testIdx = 0
		p.round++
	}

	// End of learning phase: adopt the best offset, reset scores.
	bestIdx, bestScore := 0, -1
	for i, s := range p.scores {
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestScore >= scoreMax || p.round >= roundMax {
		p.best = p.offsets[bestIdx]
		p.bestOK = bestScore >= badScore
		for i := range p.scores {
			p.scores[i] = 0
		}
		p.round = 0
	}

	// The RR table records the base address X of each access so that a
	// later access to X+d scores offset d.
	p.rrInsert(line)
	p.prevLine = line

	if !p.bestOK {
		return nil
	}
	out := make([]uint64, 0, p.Degree)
	for k := 1; k <= p.Degree; k++ {
		target := int64(line) + p.best*int64(k)
		if target < 0 {
			break
		}
		out = append(out, uint64(target)<<trace.LineBits)
	}
	return out
}

// BestOffset returns the currently adopted offset (0 until learned) and
// whether prefetching is enabled; exposed for tests and analysis.
func (p *Prefetcher) BestOffset() (int64, bool) { return p.best, p.bestOK }

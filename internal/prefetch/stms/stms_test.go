package stms

import (
	"testing"

	"voyager/internal/trace"
)

func acc(pc, line uint64) trace.Access {
	return trace.Access{PC: pc, Addr: line << trace.LineBits}
}

func TestLearnsGlobalSuccessors(t *testing.T) {
	p := New(1)
	seq := []uint64{10, 20, 30, 10} // train A→B→C, then revisit A
	var last []uint64
	for i, l := range seq {
		last = p.Access(i, acc(1, l))
	}
	if len(last) != 1 || trace.Line(last[0]) != 20 {
		t.Fatalf("on revisiting 10, want prediction 20, got %v", last)
	}
}

func TestDegreeChainsSuccessors(t *testing.T) {
	p := New(3)
	seq := []uint64{10, 20, 30, 40, 10}
	var last []uint64
	for i, l := range seq {
		last = p.Access(i, acc(1, l))
	}
	want := []uint64{20, 30, 40}
	if len(last) != 3 {
		t.Fatalf("got %d predictions", len(last))
	}
	for i, w := range want {
		if trace.Line(last[i]) != w {
			t.Fatalf("prediction %d = %d, want %d", i, trace.Line(last[i]), w)
		}
	}
}

func TestColdStartNoPrediction(t *testing.T) {
	p := New(1)
	if out := p.Access(0, acc(1, 5)); out != nil {
		t.Fatalf("cold access predicted %v", out)
	}
}

func TestSuccessorUpdatesToMostRecent(t *testing.T) {
	p := New(1)
	// 10→20, then 10→30: most recent successor wins.
	for i, l := range []uint64{10, 20, 10, 30} {
		p.Access(i, acc(1, l))
	}
	out := p.Access(4, acc(1, 10))
	if len(out) != 1 || trace.Line(out[0]) != 30 {
		t.Fatalf("want most-recent successor 30, got %v", out)
	}
}

func TestDegreeClamp(t *testing.T) {
	if New(0).Degree != 1 {
		t.Fatalf("degree not clamped")
	}
	if New(1).Name() != "stms" {
		t.Fatalf("name")
	}
}

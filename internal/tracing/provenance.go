package tracing

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Decision is the compact provenance record stamped on one Voyager
// prediction: where it was made, what it predicted, and which localization
// labels named the same line. It is the per-decision form of the paper's
// multi-label ablation axis (§4.4): aggregated over a run, the Schemes
// masks show which label each correct prefetch latched onto.
type Decision struct {
	Index   int    `json:"index"`    // trigger position in the access stream
	Rank    int    `json:"rank"`     // confidence rank among the candidates (0 = top)
	PC      uint64 `json:"pc"`       // trigger PC
	PageTok int    `json:"page_tok"` // predicted page-vocabulary token
	OffTok  int    `json:"off_tok"`  // predicted offset token
	Line    uint64 `json:"line"`     // predicted cache-line number
	// Schemes has bit s set when labeling scheme s produced this exact line
	// at this position. Zero means no configured label named it (the model
	// generalized — or hallucinated; the outcome column tells which).
	Schemes uint32 `json:"schemes"`
}

// Outcome is the final fate of a decision after simulation.
type Outcome uint8

// Decision outcomes in lifecycle order.
const (
	// OutcomeNone: the decision never reached the simulator (eval-only run,
	// or truncated below the simulated degree).
	OutcomeNone Outcome = iota
	// OutcomeDropped: the simulator declined to issue it (line already
	// cached or already being fetched).
	OutcomeDropped
	// OutcomeUseful: the prefetched line was demanded after its fill
	// arrived — a fully covered miss.
	OutcomeUseful
	// OutcomeLate: the demand arrived while the fill was still in flight;
	// partially covered, the wait is recorded as lateness.
	OutcomeLate
	// OutcomeEvicted: the line was evicted (or its fill expired) unused.
	OutcomeEvicted
	// OutcomeResident: still cached untouched when the run ended.
	OutcomeResident
)

// String names the outcome as used in trace span names and table headers.
func (o Outcome) String() string {
	switch o {
	case OutcomeNone:
		return "unsimulated"
	case OutcomeDropped:
		return "dropped"
	case OutcomeUseful:
		return "useful"
	case OutcomeLate:
		return "late"
	case OutcomeEvicted:
		return "evicted"
	case OutcomeResident:
		return "resident"
	}
	return "?"
}

type decKey struct {
	idx  int
	line uint64
}

// DecisionLog accumulates the decisions of one run and their outcomes.
// (index, line) is a unique key — the predictor deduplicates candidate
// lines per trigger — so the simulator can attach outcomes by looking up
// the (trigger index, prefetched line) pair. A nil *DecisionLog is the
// disabled state: Add returns -1 and every other method no-ops, so call
// sites never branch. Methods are not goroutine-safe; the predictor and
// the simulator both run their decision paths on one goroutine.
type DecisionLog struct {
	name      string
	decisions []Decision
	outcomes  []Outcome
	waits     []uint64 // lateness in cycles (Late outcomes)
	evalHit   []bool
	anyEval   bool
	byKey     map[decKey]int
}

// NewDecisionLog creates an empty log named for its run (benchmark or
// benchmark/prefetcher).
func NewDecisionLog(name string) *DecisionLog {
	return &DecisionLog{name: name, byKey: make(map[decKey]int)}
}

// Name returns the log's run name ("" on nil).
func (l *DecisionLog) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Len returns the number of recorded decisions (0 on nil).
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.decisions)
}

// Add records a decision and returns its id (-1 on a nil log). A duplicate
// (index, line) key keeps the earlier (higher-confidence) decision.
func (l *DecisionLog) Add(d Decision) int {
	if l == nil {
		return -1
	}
	k := decKey{d.Index, d.Line}
	if id, ok := l.byKey[k]; ok {
		return id
	}
	id := len(l.decisions)
	l.decisions = append(l.decisions, d)
	l.outcomes = append(l.outcomes, OutcomeNone)
	l.waits = append(l.waits, 0)
	l.evalHit = append(l.evalHit, false)
	l.byKey[k] = id
	return id
}

// Lookup finds the decision for (trigger index, prefetched line).
func (l *DecisionLog) Lookup(idx int, line uint64) (int, bool) {
	if l == nil {
		return -1, false
	}
	id, ok := l.byKey[decKey{idx, line}]
	return id, ok
}

// Ensure is Lookup that records a bare decision (Schemes=0) on a miss, so
// generic table-based prefetchers — which never stamp decisions — still get
// an outcome distribution in the table.
func (l *DecisionLog) Ensure(idx int, line uint64) int {
	if l == nil {
		return -1
	}
	if id, ok := l.byKey[decKey{idx, line}]; ok {
		return id
	}
	return l.Add(Decision{Index: idx, Line: line})
}

// Reindex rewrites every decision's Index through streamToRaw (the
// FilterLLC origin map), moving the log from filtered-stream positions to
// raw-trace positions so the simulator's trigger indices match. Out-of-range
// positions are left unchanged.
func (l *DecisionLog) Reindex(streamToRaw []int) {
	if l == nil {
		return
	}
	for i := range l.decisions {
		if p := l.decisions[i].Index; p >= 0 && p < len(streamToRaw) {
			l.decisions[i].Index = streamToRaw[p]
		}
	}
	l.byKey = make(map[decKey]int, len(l.decisions))
	for i, d := range l.decisions {
		k := decKey{d.Index, d.Line}
		if _, ok := l.byKey[k]; !ok {
			l.byKey[k] = i
		}
	}
}

// SetOutcome resolves a decision. wait is the lateness in cycles (meaningful
// for OutcomeLate, 0 otherwise). No-op for id < 0 or a nil log.
func (l *DecisionLog) SetOutcome(id int, o Outcome, wait uint64) {
	if l == nil || id < 0 || id >= len(l.outcomes) {
		return
	}
	l.outcomes[id] = o
	l.waits[id] = wait
}

// Outcome returns a decision's current outcome.
func (l *DecisionLog) Outcome(id int) Outcome {
	if l == nil || id < 0 || id >= len(l.outcomes) {
		return OutcomeNone
	}
	return l.outcomes[id]
}

// SetEvalHit marks a decision correct under the unified eval metric (its
// line was demanded within the eval window). Orthogonal to the simulator
// outcome: eval asks "was the prediction right", the outcome asks "did the
// prefetch help".
func (l *DecisionLog) SetEvalHit(id int) {
	if l == nil || id < 0 || id >= len(l.evalHit) {
		return
	}
	l.evalHit[id] = true
	l.anyEval = true
}

// Decisions exposes the raw records (read-only; nil on a nil log).
func (l *DecisionLog) Decisions() []Decision {
	if l == nil {
		return nil
	}
	return l.decisions
}

// Row is one labeling scheme's line in the provenance table.
type Row struct {
	Scheme      string `json:"scheme"`
	Decisions   int    `json:"decisions"`
	Issued      int    `json:"issued"`
	Useful      int    `json:"useful"`
	Late        int    `json:"late"`
	Evicted     int    `json:"evicted"`
	Resident    int    `json:"resident"`
	Dropped     int    `json:"dropped"`
	Unsimulated int    `json:"unsimulated"`
	EvalHits    int    `json:"eval_hits,omitempty"`
	// Accuracy is (useful+late)/issued — the simulator's accuracy metric
	// restricted to this scheme's decisions.
	Accuracy float64 `json:"accuracy"`
	// UsefulShare is this scheme's share of all useful prefetches — how the
	// run's coverage decomposes across labels.
	UsefulShare float64 `json:"useful_share"`
	// MeanLateCycles is the mean in-flight wait of this scheme's late
	// prefetches (0 when none were late).
	MeanLateCycles float64 `json:"mean_late_cycles"`

	lateWait uint64
}

// Table is the per-label-scheme rollup for one run: which scheme each
// prediction latched onto, and how those prefetches fared.
type Table struct {
	Name    string `json:"name"`
	Rows    []Row  `json:"rows"`
	Total   Row    `json:"total"`
	HasEval bool   `json:"has_eval,omitempty"`
}

// UnmatchedScheme is the table row for decisions no configured label named.
const UnmatchedScheme = "unmatched"

// BuildTable rolls the log up by scheme. schemeNames maps scheme index
// (bit position in Decision.Schemes) to its display name — pass
// label.SchemeNames(); names are injected so this package stays free of
// voyager imports. A decision matched by several schemes is attributed to
// the lowest-numbered one (scheme declaration order, global first), so
// every decision lands in exactly one row and the totals are conservative.
func (l *DecisionLog) BuildTable(schemeNames []string) *Table {
	t := &Table{Name: l.Name()}
	if l == nil {
		return t
	}
	t.HasEval = l.anyEval
	rows := make([]Row, len(schemeNames)+1) // + trailing unmatched row
	for i, n := range schemeNames {
		rows[i].Scheme = n
	}
	rows[len(schemeNames)].Scheme = UnmatchedScheme
	tally := func(r *Row, o Outcome, wait uint64, hit bool) {
		r.Decisions++
		switch o {
		case OutcomeNone:
			r.Unsimulated++
		case OutcomeDropped:
			r.Dropped++
		default:
			r.Issued++
			switch o {
			case OutcomeUseful:
				r.Useful++
			case OutcomeLate:
				r.Late++
				r.lateWait += wait
			case OutcomeEvicted:
				r.Evicted++
			case OutcomeResident:
				r.Resident++
			}
		}
		if hit {
			r.EvalHits++
		}
	}
	for i, d := range l.decisions {
		row := len(schemeNames)
		for s := 0; s < len(schemeNames); s++ {
			if d.Schemes&(1<<uint(s)) != 0 {
				row = s
				break
			}
		}
		tally(&rows[row], l.outcomes[i], l.waits[i], l.evalHit[i])
		tally(&t.Total, l.outcomes[i], l.waits[i], l.evalHit[i])
	}
	finish := func(r *Row, totalUseful int) {
		if r.Issued > 0 {
			r.Accuracy = float64(r.Useful+r.Late) / float64(r.Issued)
		}
		if totalUseful > 0 {
			r.UsefulShare = float64(r.Useful+r.Late) / float64(totalUseful)
		}
		if r.Late > 0 {
			r.MeanLateCycles = float64(r.lateWait) / float64(r.Late)
		}
	}
	totalUseful := t.Total.Useful + t.Total.Late
	for i := range rows {
		if rows[i].Decisions == 0 {
			continue
		}
		finish(&rows[i], totalUseful)
		t.Rows = append(t.Rows, rows[i])
	}
	finish(&t.Total, totalUseful)
	return t
}

// String renders the table for logs.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Provenance %s: %d decisions, %d issued, accuracy %.3f\n",
		t.Name, t.Total.Decisions, t.Total.Issued, t.Total.Accuracy)
	header := "  %-14s %9s %7s %7s %6s %8s %9s %8s %6s %6s %7s %9s"
	fmt.Fprintf(&b, header+"\n", "scheme", "decisions", "issued", "useful",
		"late", "evicted", "resident", "dropped", "unsim", "acc", "share", "meanlate")
	line := func(r Row) {
		fmt.Fprintf(&b, "  %-14s %9d %7d %7d %6d %8d %9d %8d %6d %6.3f %7.3f %9.1f",
			r.Scheme, r.Decisions, r.Issued, r.Useful, r.Late, r.Evicted,
			r.Resident, r.Dropped, r.Unsimulated, r.Accuracy, r.UsefulShare,
			r.MeanLateCycles)
		if t.HasEval {
			fmt.Fprintf(&b, "  eval=%d", r.EvalHits)
		}
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		line(r)
	}
	line(t.Total)
	return strings.TrimRight(b.String(), "\n")
}

// Report is the provenance output file: one table per run, in run order.
type Report struct {
	Tables []*Table `json:"tables"`
}

// JSON marshals the report with indentation.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// String renders every table.
func (r *Report) String() string {
	parts := make([]string, len(r.Tables))
	for i, t := range r.Tables {
		parts[i] = t.String()
	}
	return strings.Join(parts, "\n")
}

// ProvenanceSet collects the decision logs of a multi-run invocation
// (several benchmarks, several prefetchers) in creation order. A nil set
// hands out nil logs, keeping every downstream path inert.
type ProvenanceSet struct {
	logs []*DecisionLog
}

// NewProvenanceSet creates an empty set.
func NewProvenanceSet() *ProvenanceSet { return &ProvenanceSet{} }

// NewLog creates and registers a named log (nil on a nil set).
func (s *ProvenanceSet) NewLog(name string) *DecisionLog {
	if s == nil {
		return nil
	}
	l := NewDecisionLog(name)
	s.logs = append(s.logs, l)
	return l
}

// Logs returns the registered logs in creation order.
func (s *ProvenanceSet) Logs() []*DecisionLog {
	if s == nil {
		return nil
	}
	return s.logs
}

// Report builds the rollup for every registered log.
func (s *ProvenanceSet) Report(schemeNames []string) *Report {
	r := &Report{}
	if s == nil {
		return r
	}
	for _, l := range s.logs {
		r.Tables = append(r.Tables, l.BuildTable(schemeNames))
	}
	return r
}

// WriteFile writes the JSON report to path (no-op on a nil set).
func (s *ProvenanceSet) WriteFile(path string, schemeNames []string) error {
	if s == nil || path == "" {
		return nil
	}
	data, err := s.Report(schemeNames).JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under a temp dir and returns its
// root. files maps relative paths to contents; a go.mod is written unless
// the map already provides one.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	}
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// --- LoadPatterns ---

func TestLoadPatternsSubtree(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a/a.go":              "package a\n",
		"a/deep/deep.go":      "package deep\n",
		"b/b.go":              "package b\n",
		"a/testdata/skip.go":  "package skip\n",
		"a/_vendorish/v.go":   "package v\n",
		"a/.hidden/h.go":      "package h\n",
		"a/empty/placeholder": "",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPatterns([]string{"a/..."})
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"tmpmod/a", "tmpmod/a/deep"}
	if strings.Join(paths, " ") != strings.Join(want, " ") {
		t.Fatalf("a/... loaded %v, want %v", paths, want)
	}

	// Duplicate and overlapping patterns must not error or double-load.
	pkgs, err = l.LoadPatterns([]string{"a/...", "a/...", "a/deep"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("overlapping patterns loaded %d packages, want 2", len(pkgs))
	}
}

func TestLoadPatternsSubtreeEmpty(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a/a.go":             "package a\n",
		"docs/readme.txt":    "not go\n",
		"docs/sub/other.txt": "still not go\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadPatterns([]string{"docs/..."}); err == nil || !strings.Contains(err.Error(), "no packages under") {
		t.Fatalf("want 'no packages under' error, got %v", err)
	}
	if _, err := l.LoadPatterns([]string{"missing/..."}); err == nil {
		t.Fatal("want error for pattern rooted at a missing directory")
	}
}

// --- loader error paths ---

func TestLoadMissingPackage(t *testing.T) {
	root := writeModule(t, map[string]string{"a/a.go": "package a\n"})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadPatterns([]string{"nope"}); err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("want 'no Go files' error, got %v", err)
	}
}

func TestNewLoaderOutsideModule(t *testing.T) {
	dir := t.TempDir() // no go.mod anywhere up to the filesystem root
	if _, err := NewLoader(dir); err == nil || !strings.Contains(err.Error(), "no go.mod") {
		t.Fatalf("want 'no go.mod' error, got %v", err)
	}
}

func TestNewLoaderGoModWithoutModuleLine(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "go 1.22\n", // no module line
		"a/a.go": "package a\n",
	})
	if _, err := NewLoader(root); err == nil || !strings.Contains(err.Error(), "no module line") {
		t.Fatalf("want 'no module line' error, got %v", err)
	}
}

func TestLoadImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module cyc\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"cyc/b\"\n\nvar A = b.B\n",
		"b/b.go": "package b\n\nimport \"cyc/a\"\n\nvar B = a.A\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadPatterns([]string{"a"}); err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("want 'import cycle' error, got %v", err)
	}
}

func TestLoadTypeError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nvar x int = \"not an int\"\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadPatterns([]string{"bad"}); err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("want type-checking error, got %v", err)
	}
}

// --- suppression: multi-check directives and staleness ---

// markAnalyzer reports a finding at every use of an identifier named mark.
func markAnalyzer(name, mark string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer firing on " + mark,
		Run: func(pass *Pass) {
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && id.Name == mark && pass.Pkg.Info.Uses[id] != nil {
						pass.Reportf(id.Pos(), "use of %s", mark)
					}
					return true
				})
			}
		},
	}
}

const suppressSrc = `package m

var markAlpha, markBeta int

func use() int {
	//lint:ignore alpha,beta one directive, two checks
	s := markAlpha + markBeta
	s += markAlpha
	//lint:ignore alpha nothing named alpha fires below
	s += markBeta
	return s
}
`

func loadSuppressPkg(t *testing.T) []*Package {
	t.Helper()
	root := writeModule(t, map[string]string{"m/m.go": suppressSrc})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPatterns([]string{"m"})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func TestMultiCheckDirectiveSuppressesBoth(t *testing.T) {
	res := Run(loadSuppressPkg(t), []*Analyzer{markAnalyzer("alpha", "markAlpha"), markAnalyzer("beta", "markBeta")})
	if res.Suppressed["alpha"] != 1 || res.Suppressed["beta"] != 1 {
		t.Fatalf("want one alpha and one beta suppression from the shared directive, got %v", res.Suppressed)
	}
	var alpha, beta, stale int
	for _, d := range res.Findings {
		switch d.Check {
		case "alpha":
			alpha++
		case "beta":
			beta++
		case "staleignore":
			stale++
			if !strings.Contains(d.Message, "lint:ignore alpha") {
				t.Fatalf("stale finding should name the directive's checks: %v", d)
			}
		default:
			t.Fatalf("unexpected finding %v", d)
		}
	}
	// s += markAlpha is unsuppressed; s += markBeta sits under a directive
	// that only names alpha, so beta still fires and the directive is stale.
	if alpha != 1 || beta != 1 || stale != 1 {
		t.Fatalf("want alpha=1 beta=1 staleignore=1, got alpha=%d beta=%d stale=%d: %v",
			alpha, beta, stale, res.Findings)
	}
}

func TestStaleDirectiveNotJudgedOnPartialRun(t *testing.T) {
	// With only beta running, the alpha-only directive cannot be judged
	// stale (its check was not part of the run) and the alpha,beta
	// directive is used by the beta suppression.
	res := Run(loadSuppressPkg(t), []*Analyzer{markAnalyzer("beta", "markBeta")})
	for _, d := range res.Findings {
		if d.Check == "staleignore" {
			t.Fatalf("partial run must not report staleignore: %v", d)
		}
	}
	if res.Suppressed["beta"] != 1 {
		t.Fatalf("want the shared directive to suppress beta once, got %v", res.Suppressed)
	}
}

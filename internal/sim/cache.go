// Package sim implements the trace-driven performance model used to
// evaluate prefetchers: a three-level cache hierarchy, a banked DRAM model,
// and a ROB-limited out-of-order core, configured per the paper's Table 3.
// Prefetchers sit at the last-level cache, exactly as in the paper
// ("their inputs are LLC accesses, and the prefetched entries are also
// inserted in the LLC").
package sim

import "fmt"

// Cache is a set-associative cache with true-LRU replacement. Addresses are
// cache-line numbers (byte address >> 6).
type Cache struct {
	Name       string
	sets       int
	ways       int
	setMask    uint64
	lines      []cacheLine // sets × ways
	HitLatency int         // cycles

	Hits   uint64
	Misses uint64
}

type cacheLine struct {
	tag      uint64
	valid    bool
	prefetch bool   // filled by a prefetch and not yet demanded
	lru      uint64 // last-touch stamp
}

// NewCache builds a cache of sizeBytes with the given associativity and hit
// latency. sizeBytes must yield a power-of-two set count for 64-byte lines.
func NewCache(name string, sizeBytes, ways, hitLatency int) *Cache {
	lines := sizeBytes / 64
	sets := lines / ways
	if sets <= 0 || sets&(sets-1) != 0 || sets*ways != lines || lines*64 != sizeBytes {
		panic(fmt.Sprintf("sim: cache %s: invalid geometry size=%d ways=%d", name, sizeBytes, ways))
	}
	return &Cache{
		Name:       name,
		sets:       sets,
		ways:       ways,
		setMask:    uint64(sets - 1),
		lines:      make([]cacheLine, sets*ways),
		HitLatency: hitLatency,
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(line uint64) []cacheLine {
	s := int(line & c.setMask)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup probes for line; on a hit it refreshes LRU, records the hit, and
// reports whether the hit line was a not-yet-used prefetch (clearing the
// prefetch bit).
func (c *Cache) Lookup(line uint64, stamp uint64) (hit, wasPrefetch bool) {
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].lru = stamp
			wasPrefetch = set[i].prefetch
			set[i].prefetch = false
			c.Hits++
			return true, wasPrefetch
		}
	}
	c.Misses++
	return false, false
}

// Contains probes for line without updating LRU or counters.
func (c *Cache) Contains(line uint64) bool {
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return true
		}
	}
	return false
}

// Fill inserts line, evicting the LRU way if needed. isPrefetch marks the
// line as a prefetch fill. It returns the evicted line and whether the
// evicted line was an unused prefetch (for pollution accounting).
func (c *Cache) Fill(line uint64, stamp uint64, isPrefetch bool) (evicted uint64, evictedUnusedPrefetch, hadEviction bool) {
	set := c.set(line)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == line {
			// Already present (e.g. prefetch raced with demand): refresh.
			set[i].lru = stamp
			if !isPrefetch {
				set[i].prefetch = false
			}
			return 0, false, false
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		evicted, hadEviction = v.tag, true
		evictedUnusedPrefetch = v.prefetch
	}
	*v = cacheLine{tag: line, valid: true, prefetch: isPrefetch, lru: stamp}
	return evicted, evictedUnusedPrefetch, hadEviction
}

// Occupancy returns the number of valid lines (test helper).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// ResetStats clears hit/miss counters.
func (c *Cache) ResetStats() { c.Hits, c.Misses = 0, 0 }

// Package hotalloc flags allocation sites in functions annotated
// //hot:path — the methods guarded by the repo's AllocsPerRun budget tests
// (TestHotPathAllocFree, TestMatMulKernelsAllocFree).
//
// The budget tests catch a regression only after it ships and only for the
// exact call shapes they exercise; this analyzer points at the *line* that
// allocates, at vet time, for every path the tests may not cover. A root is
// declared by putting //hot:path in the function's doc comment. Detection
// is intraprocedural plus one level: the annotated body is scanned, and so
// is the body of every same-package function it calls directly, with callee
// allocations reported at the call site (so the suppression, when the
// allocation is intentional, sits on the caller's line).
//
// Reported site kinds:
//
//   - make / new / append (append may grow its backing array)
//   - &T{...} and slice/map composite literals
//   - function literals (closures capture by reference and escape)
//   - interface boxing: a non-pointer-shaped concrete value (basic, struct,
//     array, slice, string) passed where the callee takes an interface —
//     e.g. fmt arguments. Pointer-shaped values (pointers, channels, maps,
//     funcs) fit in the interface word and do not allocate.
//
// Blocks that cannot reach the function exit — panic guards, log.Fatal
// tails — are skipped: a shape-mismatch panic's fmt.Sprintf boxing is not
// on the hot path, by construction. Intentional allocations (a nil-dst
// convenience branch, a one-time lazy init) carry
// //lint:ignore hotalloc <reason>.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"voyager/internal/analysis"
	"voyager/internal/analysis/cfg"
)

// New returns the hotalloc analyzer. It runs on every non-test package and
// activates only where a //hot:path annotation appears.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "hotalloc",
		Doc:  "flags allocation sites in //hot:path-annotated functions and their direct callees",
		Run:  run,
	}
}

// isHot reports whether the function's doc comment carries //hot:path.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "hot:path" || strings.HasPrefix(text, "hot:path ") {
			return true
		}
	}
	return false
}

// site is one allocation found in a body scan.
type site struct {
	pos  token.Pos
	kind string
}

func run(pass *analysis.Pass) {
	if pass.Pkg.IsTest {
		pass.SkipPackage()
		return
	}
	decls := map[*types.Func]*ast.FuncDecl{} // same-package funcs, for the one-level walk
	var hot []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func); fn != nil {
				decls[fn] = fd
			}
			if isHot(fd) {
				hot = append(hot, fd)
			}
		}
	}
	if len(hot) == 0 {
		return
	}

	// Memoized direct-allocation scan per function, so shared callees are
	// walked once no matter how many hot roots call them.
	scanned := map[*ast.FuncDecl][]site{}
	scan := func(fd *ast.FuncDecl) []site {
		if s, ok := scanned[fd]; ok {
			return s
		}
		s := directAllocs(pass, fd)
		scanned[fd] = s
		return s
	}

	for _, fd := range hot {
		name := fd.Name.Name
		if fd.Recv != nil {
			name = recvName(fd) + "." + name
		}
		for _, s := range scan(fd) {
			pass.Reportf(s.pos, "%s on //hot:path %s: hot-path methods are allocation-free by contract (AllocsPerRun-gated); hoist it, reuse a buffer, or //lint:ignore hotalloc <why this allocation is intended>",
				s.kind, name)
		}
		// One level down: direct same-package callees, reported at the
		// call site so suppressions live on the caller's line.
		for _, edge := range directCallees(pass, fd, decls) {
			callee := edge.decl
			if isHot(callee) {
				continue // checked as its own root, at its own lines
			}
			if allocs := scan(callee); len(allocs) > 0 {
				first := pass.Fset.Position(allocs[0].pos)
				pass.Reportf(edge.pos, "call to %s on //hot:path %s allocates (%s at %s:%d); hoist it, reuse a buffer, or //lint:ignore hotalloc <why this allocation is intended>",
					edge.name, name, allocs[0].kind, shortFile(first.Filename), first.Line)
			}
		}
	}
}

func recvName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// callEdge is one direct call from a hot function to a same-package callee.
type callEdge struct {
	pos  token.Pos
	name string
	decl *ast.FuncDecl
}

// directCallees returns the same-package functions fd calls from
// exit-reaching blocks, one edge per call site.
func directCallees(pass *analysis.Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) []callEdge {
	var edges []callEdge
	forEachHotNode(fd, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return
		}
		fn, _ := pass.ObjectOf(id).(*types.Func)
		if fn == nil {
			return
		}
		if callee, ok := decls[fn]; ok {
			edges = append(edges, callEdge{pos: call.Pos(), name: fn.Name(), decl: callee})
		}
	})
	return edges
}

// directAllocs scans fd's exit-reaching blocks for allocation sites.
func directAllocs(pass *analysis.Pass, fd *ast.FuncDecl) []site {
	var sites []site
	seen := map[token.Pos]bool{}
	add := func(pos token.Pos, kind string) {
		if !seen[pos] {
			seen[pos] = true
			sites = append(sites, site{pos: pos, kind: kind})
		}
	}
	forEachHotNode(fd, func(n ast.Node) {
		classify(pass, n, add)
	})
	return sites
}

// forEachHotNode visits every AST node in fd's reachable, exit-reaching
// blocks. Nested function literals are visited as single nodes (their
// bodies run on their own goroutine's schedule, not this path) — the
// literal itself still surfaces, because building it allocates.
func forEachHotNode(fd *ast.FuncDecl, f func(ast.Node)) {
	g := cfg.Build(fd)
	for _, blk := range g.Blocks {
		if !g.Reachable(blk) || !g.ReachesExit(blk) {
			continue
		}
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if m == nil {
					return false
				}
				if _, isLit := m.(*ast.FuncLit); isLit {
					f(m) // the closure value itself is an allocation
					return false
				}
				f(m)
				return true
			})
		}
	}
}

// classify reports n's allocation kind, if any, via add.
func classify(pass *analysis.Pass, n ast.Node, add func(token.Pos, string)) {
	switch n := n.(type) {
	case *ast.FuncLit:
		add(n.Pos(), "closure allocation")
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				add(n.Pos(), "heap composite literal (&T{...})")
			}
		}
	case *ast.CompositeLit:
		if t := pass.TypeOf(n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				add(n.Pos(), "slice/map literal allocation")
			}
		}
	case *ast.CallExpr:
		if id, ok := n.Fun.(*ast.Ident); ok {
			if b, _ := pass.ObjectOf(id).(*types.Builtin); b != nil {
				switch b.Name() {
				case "make":
					add(n.Pos(), "make allocation")
				case "new":
					add(n.Pos(), "new allocation")
				case "append":
					add(n.Pos(), "append (may grow the backing array)")
				}
				return
			}
		}
		boxedArgs(pass, n, add)
	}
}

// boxedArgs flags call arguments boxed into interface parameters.
func boxedArgs(pass *analysis.Pass, call *ast.CallExpr, add func(token.Pos, string)) {
	sig, _ := pass.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || isPointerShaped(at) {
			continue
		}
		add(arg.Pos(), "interface boxing of "+at.String())
	}
}

// isPointerShaped reports whether values of t fit in the interface data
// word without allocation.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

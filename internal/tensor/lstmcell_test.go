package tensor

import (
	"math/rand"
	"testing"
)

// unfusedCell replays the node-per-op formulation LSTMCell replaced (the
// oracle for the differential test below).
func unfusedCell(tp *Tape, gates, cPrev *Node, hd int) (h, c *Node) {
	i := tp.Sigmoid(tp.SliceCols(gates, 0, hd))
	f := tp.Sigmoid(tp.SliceCols(gates, hd, 2*hd))
	g := tp.Tanh(tp.SliceCols(gates, 2*hd, 3*hd))
	o := tp.Sigmoid(tp.SliceCols(gates, 3*hd, 4*hd))
	c = tp.Add(tp.Mul(f, cPrev), tp.Mul(i, g))
	h = tp.Mul(o, tp.Tanh(c))
	return h, c
}

// TestGradLSTMCell numerically verifies the fused cell's backward, including
// the dual-output path: the loss reads both h and c (as a later timestep
// would), so h's fused closure must fold the externally accumulated c.Grad in.
func TestGradLSTMCell(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const batch, hd = 3, 4
	x := randMat(rng, batch, 5)
	w := randMat(rng, 5, 4*hd)
	b := randMat(rng, 1, 4*hd)
	cp := randMat(rng, batch, hd)
	checkGrad(t, "lstm-cell", []*Mat{w, b, cp}, func() (*Tape, *Node, []*Node) {
		tp := NewTape()
		wn := tp.Param(w)
		bn := tp.Param(b)
		cpn := tp.Param(cp)
		gates := tp.AddBias(tp.MatMul(tp.Const(x), wn), bn)
		h, c := tp.LSTMCell(gates, cpn)
		loss := tp.MeanAll(tp.Add(h, tp.Tanh(c)))
		return tp, loss, []*Node{wn, bn, cpn}
	})
}

// TestLSTMCellMatchesUnfused drives the fused op and the node-per-op oracle
// on identical inputs and demands bit-identical forward values and input
// gradients — the house rule the whole PR is built on.
func TestLSTMCellMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const batch, hd = 5, 7
	gatesVal := randMat(rng, batch, 4*hd)
	cpVal := randMat(rng, batch, hd)
	seed := randMat(rng, batch, hd)  // upstream dL/dh
	cSeed := randMat(rng, batch, hd) // upstream dL/dc (next timestep)

	run := func(fused bool) (h, c, gGrad, cpGrad *Mat) {
		tp := NewTape()
		gates := tp.Param(gatesVal)
		cPrev := tp.Param(cpVal)
		var hn, cn *Node
		if fused {
			hn, cn = tp.LSTMCell(gates, cPrev)
		} else {
			hn, cn = unfusedCell(tp, gates, cPrev, hd)
		}
		// Seed both outputs as a surrounding graph would.
		copy(hn.EnsureGrad().Data, seed.Data)
		cn.EnsureGrad().AddInPlace(cSeed)
		tp.BackwardFromSeed()
		return hn.Val, cn.Val, gates.Grad, cPrev.Grad
	}

	fh, fc, fg, fcp := run(true)
	uh, uc, ug, ucp := run(false)
	cmp := func(name string, a, b *Mat) {
		t.Helper()
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%s[%d]: fused %v vs unfused %v (must be bit-identical)",
					name, i, a.Data[i], b.Data[i])
			}
		}
	}
	cmp("h", fh, uh)
	cmp("c", fc, uc)
	cmp("dGates", fg, ug)
	cmp("dCPrev", fcp, ucp)
}

// The fused cell must reject mismatched shapes.
func TestLSTMCellShapePanics(t *testing.T) {
	tp := NewTape()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for gate/state shape mismatch")
		}
	}()
	tp.LSTMCell(tp.Const(NewMat(2, 12)), tp.Const(NewMat(2, 4)))
}

package voyager

import (
	"testing"

	"voyager/internal/label"
	"voyager/internal/trace"
)

// cyclicTrace walks a fixed irregular cycle of lines repeatedly — perfectly
// learnable temporal correlation.
func cyclicTrace(cycle []uint64, laps int) *trace.Trace {
	tr := &trace.Trace{Name: "cycle"}
	inst := uint64(0)
	for l := 0; l < laps; l++ {
		for _, line := range cycle {
			inst += 5
			tr.Append(0x400000, line<<trace.LineBits, inst)
		}
	}
	tr.Instructions = inst
	return tr
}

func TestConfigValidate(t *testing.T) {
	good := []Config{PaperConfig(), ScaledConfig(), FastConfig()}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %d invalid: %v", i, err)
		}
	}
	bad := FastConfig()
	bad.SeqLen = 0
	if bad.Validate() == nil {
		t.Fatalf("SeqLen 0 accepted")
	}
	bad = FastConfig()
	bad.Schemes = nil
	if bad.Validate() == nil {
		t.Fatalf("empty schemes accepted")
	}
	bad = FastConfig()
	bad.DropoutKeep = 0
	if bad.Validate() == nil {
		t.Fatalf("dropout 0 accepted")
	}
}

func TestPaperConfigMatchesTable1(t *testing.T) {
	c := PaperConfig()
	if c.SeqLen != 16 || c.PCEmbed != 64 || c.PageEmbed != 256 ||
		c.Experts != 100 || c.Hidden != 256 || c.BatchSize != 256 {
		t.Fatalf("Table 1 mismatch: %+v", c)
	}
	if c.OffsetEmbed() != 25600 {
		t.Fatalf("offset embedding %d, want 25600", c.OffsetEmbed())
	}
	if c.LearningRate != 0.001 || c.DecayRatio != 2 || c.DropoutKeep != 0.8 {
		t.Fatalf("optimizer hyperparameters mismatch")
	}
}

func TestInputDim(t *testing.T) {
	c := FastConfig()
	want := c.PCEmbed + 2*c.PageEmbed
	if c.InputDim() != want {
		t.Fatalf("InputDim %d want %d", c.InputDim(), want)
	}
	c.PCUse = PCNone
	if c.InputDim() != 2*c.PageEmbed {
		t.Fatalf("PCNone InputDim %d", c.InputDim())
	}
}

// Voyager must learn a deterministic irregular cycle: from epoch 2 onward
// its degree-1 prediction should almost always be the next line.
func TestLearnsDeterministicCycle(t *testing.T) {
	cycle := []uint64{
		0x10<<6 | 5, 0x22<<6 | 61, 0x15<<6 | 0, 0x9<<6 | 33,
		0x30<<6 | 7, 0x11<<6 | 12, 0x28<<6 | 50, 0x3<<6 | 18,
	}
	tr := cyclicTrace(cycle, 500) // 4000 accesses
	cfg := FastConfig()
	cfg.EpochAccesses = 1000
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	correct, total := 0, 0
	for i := 2 * cfg.EpochAccesses; i+1 < tr.Len(); i++ {
		preds := p.Predictions()[i]
		if len(preds) == 0 {
			total++
			continue
		}
		total++
		if trace.Line(preds[0]) == trace.Line(tr.Accesses[i+1].Addr) {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("cycle accuracy %.2f, want ≥0.9 (losses: %v)", acc, p.EpochLosses())
	}
}

func TestFirstEpochHasNoPredictions(t *testing.T) {
	cycle := []uint64{100, 200, 300, 400}
	tr := cyclicTrace(cycle, 300)
	cfg := FastConfig()
	cfg.EpochAccesses = 400
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for i := 0; i < cfg.EpochAccesses; i++ {
		if p.Predictions()[i] != nil {
			t.Fatalf("epoch-0 access %d has predictions", i)
		}
	}
	// Later epochs do predict.
	found := false
	for i := cfg.EpochAccesses; i < tr.Len(); i++ {
		if len(p.Predictions()[i]) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no predictions after the first epoch")
	}
}

func TestDegreeReturnsUpToKDistinct(t *testing.T) {
	cycle := []uint64{100, 200, 300, 400, 500, 600}
	tr := cyclicTrace(cycle, 400)
	cfg := FastConfig()
	cfg.EpochAccesses = 600
	cfg.Degree = 4
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	maxLen := 0
	for _, preds := range p.Predictions() {
		if len(preds) > 4 {
			t.Fatalf("degree overflow: %d", len(preds))
		}
		if len(preds) > maxLen {
			maxLen = len(preds)
		}
		seen := map[uint64]bool{}
		for _, a := range preds {
			if seen[a] {
				t.Fatalf("duplicate prediction %x", a)
			}
			seen[a] = true
		}
	}
	if maxLen < 2 {
		t.Fatalf("degree-4 never produced >1 candidate")
	}
}

func TestSingleLabelConfigs(t *testing.T) {
	cycle := []uint64{10, 20, 30, 40}
	tr := cyclicTrace(cycle, 250)
	for _, scheme := range []label.Scheme{label.Global, label.PC} {
		cfg := FastConfig()
		cfg.EpochAccesses = 500
		cfg.Schemes = []label.Scheme{scheme}
		if _, err := Train(tr, cfg); err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
	}
}

func TestPCNoneVariantTrains(t *testing.T) {
	cycle := []uint64{10, 20, 30, 40}
	tr := cyclicTrace(cycle, 250)
	cfg := FastConfig()
	cfg.EpochAccesses = 500
	cfg.PCUse = PCNone
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if p.TrainedSamples() == 0 {
		t.Fatalf("no samples trained")
	}
}

// With deltas enabled, Voyager must cover a compulsory-miss stream: a long
// fresh-region sweep with a constant page stride that a pure address
// correlator cannot predict (every address is new).
func TestDeltaVocabularyCoversCompulsoryStream(t *testing.T) {
	tr := &trace.Trace{Name: "fresh"}
	inst := uint64(0)
	line := uint64(1 << 20)
	for i := 0; i < 4000; i++ {
		inst += 5
		tr.Append(0x400100, line<<trace.LineBits, inst)
		line += trace.NumOffsets // +1 page each access, offset 0
	}
	tr.Instructions = inst

	cfg := FastConfig()
	cfg.EpochAccesses = 1000
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	correct, total := 0, 0
	for i := 2000; i+1 < tr.Len(); i++ {
		total++
		preds := p.Predictions()[i]
		if len(preds) > 0 && trace.Line(preds[0]) == trace.Line(tr.Accesses[i+1].Addr) {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Fatalf("delta coverage of compulsory stream %.2f, want ≥0.8", acc)
	}

	// Ablation: without deltas the same stream is unpredictable.
	cfg2 := cfg
	cfg2.UseDeltas = false
	p2, err := Train(tr, cfg2)
	if err != nil {
		t.Fatalf("Train w/o delta: %v", err)
	}
	correct2 := 0
	for i := 2000; i+1 < tr.Len(); i++ {
		preds := p2.Predictions()[i]
		if len(preds) > 0 && trace.Line(preds[0]) == trace.Line(tr.Accesses[i+1].Addr) {
			correct2++
		}
	}
	if correct2 >= correct/4 {
		t.Fatalf("w/o delta should collapse on compulsory stream: with=%d without=%d", correct, correct2)
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(&trace.Trace{}, FastConfig()); err == nil {
		t.Fatalf("empty trace accepted")
	}
	bad := FastConfig()
	bad.BatchSize = 0
	tr := cyclicTrace([]uint64{1, 2}, 10)
	if _, err := Train(tr, bad); err == nil {
		t.Fatalf("invalid config accepted")
	}
}

func TestAsPrefetcher(t *testing.T) {
	tr := cyclicTrace([]uint64{10, 20, 30, 40}, 200)
	cfg := FastConfig()
	cfg.EpochAccesses = 400
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	pf := p.AsPrefetcher()
	if pf.Name() != "voyager" {
		t.Fatalf("name %q", pf.Name())
	}
	if got := pf.Access(500, tr.Accesses[500]); len(got) != len(p.Predictions()[500]) {
		t.Fatalf("prefetcher adapter mismatch")
	}
}

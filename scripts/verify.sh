#!/usr/bin/env bash
# Tier-1 verification plus the concurrency checks for the data-parallel
# training engine: vet, the full test suite, the race detector over the
# packages that share state across goroutines, and a bounded fuzz run of
# the binary trace decoder.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

# vetvoyager enforces the invariants go vet cannot see: deterministic map
# iteration in determinism-critical packages, tape-arena *Mat lifetimes,
# float32-only hot kernels, per-worker rand streams, and ReportAllocs on
# every benchmark. It prints per-analyzer finding counts and exits non-zero
# on any unsuppressed finding.
echo "== vetvoyager"
go run ./cmd/vetvoyager ./...

echo "== go test"
go test ./...

echo "== allocation regression (tape arena steady state)"
go test -run 'TestSteadyStateAllocBudget' ./internal/voyager/
go test -run 'TestArenaSteadyStateAllocationFree' ./internal/tensor/

echo "== go test -race (tensor, nn, voyager, trace)"
go test -race ./internal/tensor/ ./internal/nn/ ./internal/trace/
# The full voyager suite under -race takes ~10 min of end-to-end training;
# the concurrency surface is the parallel engine, so race-check the tests
# that exercise sharded TrainBatch/PredictBatch plus one e2e training run.
go test -race -run 'Parallel|Deterministic|Workers|LearnsCycleWith' ./internal/voyager/

echo "== fuzz trace.Read (bounded)"
go test -run=NONE -fuzz=FuzzRead -fuzztime=10s ./internal/trace/

echo "verify: OK"

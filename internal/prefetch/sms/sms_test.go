package sms

import (
	"testing"

	"voyager/internal/trace"
)

func acc(pc, page, offset uint64) trace.Access {
	return trace.Access{PC: pc, Addr: trace.Join(page, offset)}
}

// touchRegion simulates one generation: trigger at `trig`, then the given
// offsets.
func touchRegion(p *Prefetcher, i *int, pc, page, trig uint64, offsets []uint64) {
	p.Access(*i, acc(pc, page, trig))
	*i++
	for _, o := range offsets {
		p.Access(*i, acc(pc, page, o))
		*i++
	}
}

func TestReplaysLearnedFootprint(t *testing.T) {
	p := New(8)
	i := 0
	fp := []uint64{3, 7, 12}
	// Train on many regions with the same trigger (pc=9, offset 1) and
	// footprint; capacity eviction commits them to the PHT.
	for page := uint64(100); page < 100+MaxActive+8; page++ {
		touchRegion(p, &i, 9, page, 1, fp)
	}
	// A brand-new region with the same trigger must replay the footprint.
	out := p.Access(i, acc(9, 5000, 1))
	if len(out) != len(fp) {
		t.Fatalf("replayed %d lines, want %d: %v", len(out), len(fp), out)
	}
	want := map[uint64]bool{}
	for _, o := range fp {
		want[trace.Line(trace.Join(5000, o))] = true
	}
	for _, a := range out {
		if !want[trace.Line(a)] {
			t.Fatalf("unexpected prefetch line %d", trace.Line(a))
		}
	}
}

func TestNoPredictionForUnknownTrigger(t *testing.T) {
	p := New(4)
	if out := p.Access(0, acc(1, 10, 0)); out != nil {
		t.Fatalf("unknown trigger predicted %v", out)
	}
	if p.Name() != "sms" {
		t.Fatalf("name")
	}
}

func TestDegreeCapsFootprint(t *testing.T) {
	p := New(2)
	i := 0
	fp := []uint64{2, 3, 4, 5, 6}
	for page := uint64(0); page < MaxActive+4; page++ {
		touchRegion(p, &i, 7, page, 0, fp)
	}
	out := p.Access(i, acc(7, 9999, 0))
	if len(out) != 2 {
		t.Fatalf("degree-2 emitted %d", len(out))
	}
}

func TestEntriesGrow(t *testing.T) {
	p := New(1)
	i := 0
	for page := uint64(0); page < MaxActive+2; page++ {
		touchRegion(p, &i, uint64(page%4), page, page%8, []uint64{10})
	}
	if p.Entries() == 0 {
		t.Fatalf("PHT empty after capacity evictions")
	}
}

package isb

import (
	"testing"

	"voyager/internal/trace"
)

func acc(pc, line uint64) trace.Access {
	return trace.Access{PC: pc, Addr: line << trace.LineBits}
}

// Two interleaved PC streams: the global successor of A1 is B1 (wrong for
// PC-localization) but ISB must learn A1→A2 within PC 1.
func TestPCLocalization(t *testing.T) {
	p := NewIdeal(1)
	// PC1 touches 100,101,102; PC2 touches 200,201,202; interleaved.
	seq := []struct{ pc, line uint64 }{
		{1, 100}, {2, 200}, {1, 101}, {2, 201}, {1, 102}, {2, 202},
	}
	for i, s := range seq {
		p.Access(i, acc(s.pc, s.line))
	}
	out := p.Access(6, acc(1, 100))
	if len(out) != 1 || trace.Line(out[0]) != 101 {
		t.Fatalf("want PC-localized successor 101, got %v", out)
	}
	out = p.Access(7, acc(2, 200))
	if len(out) != 1 || trace.Line(out[0]) != 201 {
		t.Fatalf("want PC-localized successor 201, got %v", out)
	}
}

func TestIdealDegreeChain(t *testing.T) {
	p := NewIdeal(2)
	for i, l := range []uint64{10, 20, 30} {
		p.Access(i, acc(7, l))
	}
	out := p.Access(3, acc(7, 10))
	if len(out) != 2 || trace.Line(out[0]) != 20 || trace.Line(out[1]) != 30 {
		t.Fatalf("degree-2 chain wrong: %v", out)
	}
}

func TestStructuralMatchesIdealOnCleanStream(t *testing.T) {
	// A cyclic working-set sweep (like cc's per-iteration edge walk). From
	// the second lap on, every structural prediction that exists must agree
	// with the idealized predictor, and only the cycle-closing access (the
	// back-edge into the stream head) may lack a prediction.
	ideal := NewIdeal(1)
	structural := NewStructural(1)
	seq := []uint64{5, 9, 13, 2, 5, 9, 13, 2, 5, 9, 13, 2}
	var iOut, sOut [][]uint64
	for i, l := range seq {
		iOut = append(iOut, ideal.Access(i, acc(3, l)))
		sOut = append(sOut, structural.Access(i, acc(3, l)))
	}
	missing := 0
	for i := 5; i < len(seq); i++ {
		if len(sOut[i]) == 0 {
			missing++
			continue
		}
		if len(iOut[i]) == 0 || iOut[i][0] != sOut[i][0] {
			t.Fatalf("access %d: ideal %v structural %v", i, iOut[i], sOut[i])
		}
	}
	if missing > 2 {
		t.Fatalf("structural ISB missing %d predictions on a stable cycle", missing)
	}
}

func TestStructuralStreamsStayLocalized(t *testing.T) {
	p := NewStructural(1)
	// Interleave two PCs; structural addresses must keep the streams apart.
	seq := []struct{ pc, line uint64 }{
		{1, 100}, {2, 200}, {1, 101}, {2, 201}, {1, 102}, {2, 202},
		{1, 100}, {2, 200},
	}
	var out []uint64
	for i, s := range seq {
		out = p.Access(i, acc(s.pc, s.line))
		if i == 6 { // revisit 100 by PC1
			if len(out) != 1 || trace.Line(out[0]) != 101 {
				t.Fatalf("structural PC1 prediction: %v", out)
			}
		}
	}
	if len(out) != 1 || trace.Line(out[0]) != 201 {
		t.Fatalf("structural PC2 prediction: %v", out)
	}
}

func TestStructuralDivergenceRemaps(t *testing.T) {
	p := NewStructural(1)
	// PC 1 first sees 10→20, then the stream changes to 10→30 repeatedly;
	// predictions must follow the new successor.
	warm := []uint64{10, 20, 10, 30, 10, 30}
	for i, l := range warm {
		p.Access(i, acc(1, l))
	}
	out := p.Access(len(warm), acc(1, 10))
	if len(out) != 1 || trace.Line(out[0]) != 30 {
		t.Fatalf("after divergence want 30, got %v", out)
	}
}

func TestNames(t *testing.T) {
	if NewIdeal(1).Name() != "isb" || NewStructural(1).Name() != "isb-structural" {
		t.Fatalf("names wrong")
	}
}

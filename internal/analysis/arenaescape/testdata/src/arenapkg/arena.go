// Package arenapkg exercises the arenaescape analyzer against the real
// tensor arena.
package arenapkg

import "voyager/internal/tensor"

// Holder is a struct that outlives a training step.
type Holder struct {
	M    *tensor.Mat
	Tape *tensor.Tape
}

var global *tensor.Mat

func storeInField(h *Holder, tp *tensor.Tape) {
	m := tp.NewMat(2, 2)
	h.M = m // want "arena \\*tensor.Mat stored into struct field M"
}

func storeDirect(h *Holder, tp *tensor.Tape) {
	h.M = tp.NewMat(2, 2) // want "stored into struct field M"
}

func storeGlobal(tp *tensor.Tape) {
	global = tp.NewMat(1, 1) // want "stored into package-level variable global"
}

func storeViaAlias(tp *tensor.Tape) {
	a := tp.NewMat(4, 4)
	b := a
	global = b // want "stored into package-level variable global"
}

func literalField(tp *tensor.Tape) {
	h := &Holder{
		M: tp.NewMat(2, 2), // want "stored into struct literal field M"
	}
	_ = h
}

// ReturnArena leaks an arena matrix through the exported API.
func ReturnArena(tp *tensor.Tape) *tensor.Mat {
	m := tp.NewMat(3, 3)
	return m // want "arena \\*tensor.Mat returned from exported ReturnArena"
}

// ReturnClone is the correct way to hand a result to a caller.
func ReturnClone(tp *tensor.Tape) *tensor.Mat {
	m := tp.NewMat(3, 3)
	return m.Clone() // a heap copy owns its storage; not flagged
}

// returnFromUnexported is tape-internal plumbing: the value stays inside
// the step, so unexported returns are allowed.
func returnFromUnexported(tp *tensor.Tape) *tensor.Mat {
	return tp.NewMat(2, 2)
}

// ClosureReturnIsLocal returns from a func literal, not from the exported
// function; the closure dies with the step.
func ClosureReturnIsLocal(tp *tensor.Tape) {
	f := func() *tensor.Mat { return tp.NewMat(1, 1) }
	_ = f()
}

// HeapMatInField stores a non-arena matrix: tensor.NewMat allocates from
// the heap and is not recycled by Reset.
func HeapMatInField(h *Holder) {
	h.M = tensor.NewMat(2, 2)
}

// SuppressedStore documents an intentional, Reset-scoped cache.
func SuppressedStore(h *Holder, tp *tensor.Tape) {
	//lint:ignore arenaescape holder is reset alongside the tape every step
	h.M = tp.NewMat(2, 2)
}

func localUse(tp *tensor.Tape) float32 {
	m := tp.NewMat(8, 8)
	m.Fill(1)
	return m.At(0, 0)
}

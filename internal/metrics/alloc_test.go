package metrics

import "testing"

// TestHotPathAllocFree pins the zero-allocation contract of every call that
// sits inside a training or simulation inner loop. Instrument lookup happens
// once at setup; the per-iteration record path must not touch the heap, or
// enabling -metrics would perturb the very timings it measures.
func TestHotPathAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("steps_total")
	g := reg.Gauge("loss")
	h := reg.Histogram("step_seconds")

	wc := reg.WindowCounter("useful_total", 4)
	wh := reg.WindowHistogram("hit_distance", 4)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(3) }},
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Set", func() { g.Set(0.125) }},
		{"Histogram.Observe", func() { h.Observe(0.25) }},
		{"Timer", func() { tm := StartTimer(h); tm.Stop() }},
		{"NilTimer", func() { tm := StartTimer(nil); tm.Stop() }},
		{"NilCounter.Add", func() { (*Counter)(nil).Add(1) }},
		{"NilGauge.Set", func() { (*Gauge)(nil).Set(1) }},
		{"NilHistogram.Observe", func() { (*Histogram)(nil).Observe(1) }},
		{"WindowCounter.Add", func() { wc.Add(2) }},
		{"WindowCounter.Inc", func() { wc.Inc() }},
		{"WindowHistogram.Observe", func() { wh.Observe(0.5) }},
		{"NilWindowCounter.Add", func() { (*WindowCounter)(nil).Add(1) }},
		{"NilWindowHistogram.Observe", func() { (*WindowHistogram)(nil).Observe(1) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// Compression study (§5.4): train Voyager, then apply the paper's
// compression pipeline — prune 80% of the weights by magnitude, quantize
// the rest to 8 bits — and measure what happens to model size and
// prediction quality. The paper reports 110-200× total compression versus
// Delta-LSTM with <1% accuracy loss.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"

	"voyager/internal/eval"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

func main() {
	tr, err := workloads.Generate("soplex", workloads.Config{
		Seed:        42,
		Scale:       1,
		MaxAccesses: 16_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := voyager.ScaledConfig()
	cfg.EpochAccesses = 4_000
	cfg.DropoutKeep = 1
	fmt.Println("training voyager on soplex...")
	p, err := voyager.Train(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	params := p.Model.Params()
	before := eval.Unified(tr, p.Predictions(), eval.DefaultWindow, cfg.EpochAccesses)
	fmt.Printf("baseline: %d weights, %d KB fp32, unified acc/cov %.1f%%\n",
		params.Count(), params.Bytes(32)/1024, 100*before)

	zeroed := params.PruneMagnitude(0.8)
	params.Quantize(8)
	p.RepredictAll()
	after := eval.Unified(tr, p.Predictions(), eval.DefaultWindow, cfg.EpochAccesses)
	fmt.Printf("pruned %d weights (80%%), quantized to 8 bits\n", zeroed)
	fmt.Printf("compressed: %d non-zero weights, %d KB, unified acc/cov %.1f%%\n",
		params.NonZero(), params.CompressedBytes(8)/1024, 100*after)
	fmt.Printf("compression: %.1fx smaller, accuracy change %+.1f points\n",
		float64(params.Bytes(32))/float64(params.CompressedBytes(8)),
		100*(after-before))
}

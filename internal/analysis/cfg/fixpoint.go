package cfg

// Forward is a forward dataflow analysis over a Graph: facts of type F flow
// from the entry along edges, merged at join points with Join, transformed
// through each block with Transfer, until nothing changes.
//
// The contract is the usual fact-lattice one:
//
//   - Init is the fact holding at function entry.
//   - Join(a, b) is the least upper bound of two incoming edge facts. It
//     must be commutative and associative (the engine merges predecessors
//     in block-index order, so a lawful Join also makes results
//     deterministic), and must not mutate its arguments.
//   - Transfer(b, in) computes the fact at the end of block b from the
//     fact at its start. It must not mutate in.
//   - Equal(a, b) decides convergence. For the engine to terminate, every
//     Join chain must stabilize: use finite fact domains (sets over
//     program variables, bounded counters widened to ⊤).
//
// At a join point the engine adopts the first available predecessor fact
// and Joins the rest, so Init never leaks into interior blocks — Init
// seeds the entry only, and analyses whose Init is not the lattice bottom
// behave as expected.
type Forward[F any] struct {
	Init     F
	Join     func(a, b F) F
	Transfer func(b *Block, in F) F
	Equal    func(a, b F) bool
}

// Run iterates to fixpoint and returns the facts at block entry (in) and
// block exit (out), keyed by block. Blocks unreachable from the entry are
// absent from both maps — analyzers should not report from them.
func (fw Forward[F]) Run(g *Graph) (in, out map[*Block]F) {
	in = make(map[*Block]F, len(g.Blocks))
	out = make(map[*Block]F, len(g.Blocks))

	preds := make(map[*Block][]*Block)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	// FIFO worklist with an enqueued marker; seeded with every reachable
	// block in index order so the iteration — and with it any analyzer
	// that reports from mid-flight facts — is deterministic.
	var queue []*Block
	enqueued := make(map[*Block]bool)
	push := func(b *Block) {
		if !enqueued[b] && g.Reachable(b) {
			enqueued[b] = true
			queue = append(queue, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		enqueued[b] = false

		var fact F
		if b == g.Entry() {
			fact = fw.Init
		} else {
			have := false
			for _, p := range preds[b] {
				pf, ok := out[p]
				if !ok {
					continue // predecessor not processed yet
				}
				if !have {
					fact, have = pf, true
				} else {
					fact = fw.Join(fact, pf)
				}
			}
			if !have {
				// No predecessor has produced a fact yet; revisit once
				// one does (it will re-enqueue this block).
				continue
			}
		}

		if oldIn, ok := in[b]; ok && fw.Equal(oldIn, fact) {
			continue
		}
		in[b] = fact
		o := fw.Transfer(b, fact)
		if oldOut, ok := out[b]; ok && fw.Equal(oldOut, o) {
			continue
		}
		out[b] = o
		for _, s := range b.Succs {
			push(s)
		}
	}
	return in, out
}

package serve

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"voyager/internal/distill"
	"voyager/internal/trace"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

// The shared serving fixture: one small model trained once per test binary
// on a real generated workload, its distilled table, and the offline oracle
// answers (PredictAt over every position). Training dominates the package's
// test time, so every test reuses this.
//
// Serving-side callers must not run two batchers (or a batcher and an
// offline PredictAt) against the same *Model concurrently — inference reuses
// the model's tape arena. The fixture therefore precomputes the oracle
// before any server starts, and tests run servers against fx.p.Model one at
// a time (a replica-4 clone exists for the concurrent cases).
var fx struct {
	once sync.Once
	err  error

	tr     *trace.Trace
	p      *voyager.Predictor
	degree int
	want   [][]voyager.Candidate // oracle: PredictAt per position
	tab    *distill.Table
	m4     *voyager.Model // same weights, Workers=4
}

const fxAccesses = 1200

func fixture(t testing.TB) {
	t.Helper()
	fx.once.Do(func() {
		tr, err := workloads.Generate("cc", workloads.Config{Seed: 7, Scale: 1, MaxAccesses: fxAccesses})
		if err != nil {
			fx.err = err
			return
		}
		cfg := voyager.FastConfig()
		cfg.Seed = 11
		cfg.Workers = 1
		cfg.Degree = 2
		cfg.DropoutKeep = 1
		cfg.EpochAccesses = len(tr.Accesses) // one epoch over the whole trace
		cfg.PassesPerEpoch = 1
		p, err := voyager.Train(tr, cfg)
		if err != nil {
			fx.err = err
			return
		}
		fx.tr, fx.p, fx.degree = tr, p, cfg.Degree

		positions := make([]int, p.NumAccesses())
		for i := range positions {
			positions[i] = i
		}
		fx.want = p.PredictAt(positions, fx.degree)

		fx.tab = distill.Compile(p, 0, p.NumAccesses(), distill.DefaultParams())

		// A second model with the same weights but 4 inference replicas, via
		// a save/load round trip (the serialized format is config-agnostic
		// about Workers).
		var buf bytes.Buffer
		if err := p.SaveWeights(&buf); err != nil {
			fx.err = err
			return
		}
		cfg4 := cfg
		cfg4.Workers = 4
		m4 := voyager.NewModel(cfg4, p.Model.Vocab())
		if err := m4.LoadWeights(&buf); err != nil {
			fx.err = err
			return
		}
		fx.m4 = m4
	})
	if fx.err != nil {
		t.Fatalf("fixture: %v", fx.err)
	}
}

// wantResponse builds the expected wire candidates for trigger position pos
// from the oracle.
func wantResponse(pos int) []Candidate {
	line := fx.p.LineAt(pos)
	var out []Candidate
	for _, c := range fx.want[pos] {
		addr := uint64(0)
		if ln, ok := fx.p.Model.Vocab().Decode(line, c.PageTok, c.OffTok); ok {
			addr = ln << trace.LineBits
		}
		out = append(out, Candidate{
			PageTok:   int32(c.PageTok),
			OffTok:    int32(c.OffTok),
			ScoreBits: math.Float64bits(c.Score),
			Addr:      addr,
		})
	}
	return out
}

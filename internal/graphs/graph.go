// Package graphs provides compressed-sparse-row graphs and the generators
// used by the GAP-style workloads (bfs, cc, pr). The GAP benchmark suite
// evaluates on synthetic Kronecker/uniform graphs; we implement both so the
// workload traces exhibit the same irregular neighbor-list access patterns.
package graphs

import (
	"math/rand"
	"sort"
)

// CSR is a directed graph in compressed-sparse-row form: the out-neighbors
// of node u are Neighbors[Offsets[u]:Offsets[u+1]].
type CSR struct {
	N         int
	Offsets   []int32
	Neighbors []int32
}

// NumEdges returns the number of directed edges.
func (g *CSR) NumEdges() int { return len(g.Neighbors) }

// OutDegree returns the out-degree of node u.
func (g *CSR) OutDegree(u int) int { return int(g.Offsets[u+1] - g.Offsets[u]) }

// Neigh returns the out-neighbor slice of node u (shared storage).
func (g *CSR) Neigh(u int) []int32 {
	return g.Neighbors[g.Offsets[u]:g.Offsets[u+1]]
}

// FromEdges builds a CSR graph with n nodes from an edge list. Duplicate
// edges are kept (as GAP does); neighbor lists are sorted for locality.
func FromEdges(n int, edges [][2]int32) *CSR {
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e[0]]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	neighbors := make([]int32, len(edges))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		neighbors[cursor[e[0]]] = e[1]
		cursor[e[0]]++
	}
	g := &CSR{N: n, Offsets: offsets, Neighbors: neighbors}
	for u := 0; u < n; u++ {
		nb := g.Neigh(u)
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// Transpose returns the reverse graph (in-neighbors become out-neighbors).
func (g *CSR) Transpose() *CSR {
	edges := make([][2]int32, 0, g.NumEdges())
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neigh(u) {
			edges = append(edges, [2]int32{v, int32(u)})
		}
	}
	return FromEdges(g.N, edges)
}

// Uniform generates a uniform-random directed graph with n nodes and
// approximately n*degree edges, symmetrized (each edge added both ways) the
// way GAP builds undirected inputs.
func Uniform(n, degree int, rng *rand.Rand) *CSR {
	edges := make([][2]int32, 0, 2*n*degree)
	for i := 0; i < n*degree; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, [2]int32{u, v}, [2]int32{v, u})
	}
	return FromEdges(n, edges)
}

// Kronecker generates an RMAT/Kronecker graph with 2^scale nodes and
// approximately edgeFactor·2^scale edges using the standard GAP parameters
// (a=0.57, b=0.19, c=0.19), symmetrized. Kronecker graphs have the skewed
// degree distribution that makes GAP's pr/bfs/cc traces hard to prefetch.
func Kronecker(scale, edgeFactor int, rng *rand.Rand) *CSR {
	n := 1 << scale
	m := n * edgeFactor
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([][2]int32, 0, 2*m)
	for i := 0; i < m; i++ {
		var u, v int
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a: // top-left: neither bit set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, [2]int32{int32(u), int32(v)}, [2]int32{int32(v), int32(u)})
	}
	return FromEdges(n, edges)
}

// Grid generates a 4-connected w×h grid graph (used by the astar workload's
// map representation).
func Grid(w, h int) *CSR {
	id := func(x, y int) int32 { return int32(y*w + x) }
	edges := make([][2]int32, 0, 4*w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, [2]int32{id(x, y), id(x+1, y)}, [2]int32{id(x+1, y), id(x, y)})
			}
			if y+1 < h {
				edges = append(edges, [2]int32{id(x, y), id(x, y+1)}, [2]int32{id(x, y+1), id(x, y)})
			}
		}
	}
	return FromEdges(w*h, edges)
}

package deltalstm

import (
	"testing"

	"voyager/internal/trace"
)

// strideTrace alternates between two strides depending on a short history
// pattern — learnable for an LSTM, not for a single-stride prefetcher.
func strideTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "strides"}
	line := uint64(1 << 20)
	inst := uint64(0)
	// Delta pattern: +1 +1 +3 repeated: the next delta depends on history.
	deltas := []int64{1, 1, 3}
	for i := 0; i < n; i++ {
		inst += 5
		tr.Append(0x400000, line<<trace.LineBits, inst)
		line = uint64(int64(line) + deltas[i%len(deltas)])
	}
	tr.Instructions = inst
	return tr
}

func TestLearnsDeltaPattern(t *testing.T) {
	tr := strideTrace(4000)
	cfg := FastConfig()
	cfg.EpochAccesses = 1000
	m, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	correct, total := 0, 0
	for i := 2000; i+1 < tr.Len(); i++ {
		total++
		preds := m.Predictions()[i]
		if len(preds) > 0 && trace.Line(preds[0]) == trace.Line(tr.Accesses[i+1].Addr) {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("delta pattern accuracy %.2f, want ≥0.9", acc)
	}
}

// Address correlation without delta structure: a shuffled cycle where every
// delta is unique. Delta-LSTM must fail here (the paper's motivation for
// Voyager) even though a temporal prefetcher would get 100%.
func TestCannotLearnAddressCorrelation(t *testing.T) {
	cycle := []uint64{7, 9000, 23, 4411, 950, 88111, 3, 60000}
	tr := &trace.Trace{Name: "cycle"}
	inst := uint64(0)
	for l := 0; l < 500; l++ {
		for _, line := range cycle {
			inst += 5
			tr.Append(0x400000, line<<trace.LineBits, inst)
		}
	}
	cfg := FastConfig()
	cfg.EpochAccesses = 1000
	m, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	correct, total := 0, 0
	for i := 2000; i+1 < tr.Len(); i++ {
		total++
		preds := m.Predictions()[i]
		if len(preds) > 0 && trace.Line(preds[0]) == trace.Line(tr.Accesses[i+1].Addr) {
			correct++
		}
	}
	// The deltas of a fixed cycle DO repeat each lap, so the LSTM can in
	// fact learn this one — the inability the paper describes concerns
	// vocabulary explosion on real irregular traces (deltas rarely repeat).
	// Here we only sanity-check the model runs and its vocabulary grew to
	// cover each distinct delta.
	if m.DeltaVocabSize() < len(cycle) {
		t.Fatalf("delta vocab %d too small", m.DeltaVocabSize())
	}
	_ = correct
	_ = total
}

func TestVocabCapKeepsMostFrequent(t *testing.T) {
	tr := strideTrace(2000)
	// Add some rare big jumps.
	line := uint64(1 << 30)
	for i := 0; i < 10; i++ {
		line += uint64(1000 + i)
		tr.Append(0x400004, line<<trace.LineBits, tr.Instructions+uint64(i+1)*3)
	}
	cfg := FastConfig()
	cfg.MaxDeltaVocab = 3
	m, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.DeltaVocabSize() != 4 { // UNK + 3
		t.Fatalf("vocab size %d, want 4", m.DeltaVocabSize())
	}
}

func TestFirstEpochNoPredictions(t *testing.T) {
	tr := strideTrace(3000)
	cfg := FastConfig()
	cfg.EpochAccesses = 1500
	m, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for i := 0; i < 1500; i++ {
		if m.Predictions()[i] != nil {
			t.Fatalf("epoch-0 prediction at %d", i)
		}
	}
}

func TestDegreeK(t *testing.T) {
	tr := strideTrace(3000)
	cfg := FastConfig()
	cfg.Degree = 4
	cfg.EpochAccesses = 1000
	m, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	found := false
	for _, p := range m.Predictions() {
		if len(p) > 4 {
			t.Fatalf("degree overflow %d", len(p))
		}
		if len(p) >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("degree-4 never produced multiple candidates")
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(&trace.Trace{}, FastConfig()); err == nil {
		t.Fatalf("empty trace accepted")
	}
	tr := strideTrace(100)
	bad := FastConfig()
	bad.SeqLen = 0
	if _, err := Train(tr, bad); err == nil {
		t.Fatalf("bad config accepted")
	}
}

func TestAsPrefetcherAndParams(t *testing.T) {
	tr := strideTrace(2500)
	cfg := FastConfig()
	m, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.AsPrefetcher().Name() != "delta-lstm" {
		t.Fatalf("name")
	}
	if m.Params().Count() == 0 {
		t.Fatalf("no params")
	}
}

// Package eval implements the paper's evaluation metrics outside the
// simulator: the unified accuracy/coverage metric of §5.1 (following
// Srivastava et al.), the access-pattern breakdown of Figures 10–11, and
// the model-cost accounting of §5.4 / Figure 17.
package eval

import (
	"fmt"

	"voyager/internal/prefetch"
	"voyager/internal/trace"
)

// DefaultWindow is the future window within which a degree-1 prediction
// must be demanded to count as correct for the unified metric. The paper
// counts a prediction correct "when it correctly predicts the next load
// address"; with multi-label localization the learned label is the next
// load of *some* localized stream, so we check the prediction against the
// next Window global loads (we use the co-occurrence window of §4.4).
const DefaultWindow = 10

// Unified computes the unified accuracy/coverage metric over accesses
// [skip, n): the fraction of accesses whose top prediction matches one of
// the next `window` accessed lines. Unpredicted accesses count against the
// metric (that is what unifies accuracy with coverage).
func Unified(tr *trace.Trace, preds [][]uint64, window, skip int) float64 {
	n := tr.Len()
	if skip >= n {
		return 0
	}
	correct := 0
	for i := skip; i < n; i++ {
		if i >= len(preds) || len(preds[i]) == 0 {
			continue
		}
		want := trace.Line(preds[i][0])
		hi := i + 1 + window
		if hi > n {
			hi = n
		}
		for j := i + 1; j < hi; j++ {
			if trace.Line(tr.Accesses[j].Addr) == want {
				correct++
				break
			}
		}
	}
	return float64(correct) / float64(n-skip)
}

// CollectPredictions runs an (online-training) prefetcher over the trace
// and records its per-access predictions; used to evaluate table-based
// baselines with the unified metric.
func CollectPredictions(tr *trace.Trace, pf prefetch.Prefetcher) [][]uint64 {
	out := make([][]uint64, tr.Len())
	for i, a := range tr.Accesses {
		out[i] = pf.Access(i, a)
	}
	return out
}

// PatternKind classifies why an access was (not) covered, per the paper's
// Figures 10-11 categories.
type PatternKind int

// Figure 10/11 categories.
const (
	Covered PatternKind = iota
	UncoveredSpatial
	UncoveredCoOccur
	UncoveredOther
	UncoveredCompulsory
	NumPatternKinds
)

// String names the category.
func (k PatternKind) String() string {
	switch k {
	case Covered:
		return "covered"
	case UncoveredSpatial:
		return "uncovered-spatial"
	case UncoveredCoOccur:
		return "uncovered-cooccur"
	case UncoveredOther:
		return "uncovered-other"
	case UncoveredCompulsory:
		return "uncovered-compulsory"
	}
	return "?"
}

// BreakdownResult holds the per-category fractions (summing to 1).
type BreakdownResult struct {
	Benchmark  string
	Prefetcher string
	Frac       [NumPatternKinds]float64
}

// String formats one Figure 10/11 bar.
func (b BreakdownResult) String() string {
	return fmt.Sprintf("%-10s %-14s covered=%.3f spatial=%.3f cooccur=%.3f other=%.3f compulsory=%.3f",
		b.Benchmark, b.Prefetcher,
		b.Frac[Covered], b.Frac[UncoveredSpatial], b.Frac[UncoveredCoOccur],
		b.Frac[UncoveredOther], b.Frac[UncoveredCompulsory])
}

// Breakdown classifies every access in [skip, n) the way Figures 10–11 do:
// an access is covered when the previous access's prediction list includes
// its line (within the unified window); otherwise it is classified as a
// compulsory miss (first-ever touch of the line), a spatial pattern
// (within ±256 lines of the previous access), a top-10 co-occurrence
// pattern (the line is among the 10 most frequent successors of the
// trigger line so far), or other.
func Breakdown(tr *trace.Trace, preds [][]uint64, window, skip int) BreakdownResult {
	n := tr.Len()
	res := BreakdownResult{Benchmark: tr.Name}
	if skip >= n {
		return res
	}
	seen := make(map[uint64]bool, n)
	// successor counts for co-occurrence classification
	succCount := make(map[uint64]map[uint64]int)

	// Precompute covered targets: target line → covered if predicted by
	// any of the previous `window` accesses.
	counts := [NumPatternKinds]int{}
	total := 0
	for i := 0; i < n; i++ {
		line := trace.Line(tr.Accesses[i].Addr)
		if i >= skip && i > 0 {
			total++
			prevLine := trace.Line(tr.Accesses[i-1].Addr)
			kind := classify(i, line, prevLine, tr, preds, window, seen, succCount)
			counts[kind]++
		}
		// Update history state.
		if i > 0 {
			prevLine := trace.Line(tr.Accesses[i-1].Addr)
			m := succCount[prevLine]
			if m == nil {
				m = make(map[uint64]int)
				succCount[prevLine] = m
			}
			m[line]++
		}
		seen[line] = true
	}
	if total == 0 {
		return res
	}
	for k := 0; k < int(NumPatternKinds); k++ {
		res.Frac[k] = float64(counts[k]) / float64(total)
	}
	return res
}

func classify(i int, line, prevLine uint64, tr *trace.Trace, preds [][]uint64,
	window int, seen map[uint64]bool, succCount map[uint64]map[uint64]int) PatternKind {
	// Covered: some prediction in the previous `window` accesses named it.
	lo := i - window
	if lo < 0 {
		lo = 0
	}
	for j := lo; j < i; j++ {
		if j >= len(preds) {
			break
		}
		for _, p := range preds[j] {
			if trace.Line(p) == line {
				return Covered
			}
		}
	}
	if !seen[line] {
		return UncoveredCompulsory
	}
	d := int64(line) - int64(prevLine)
	if d >= -256 && d <= 256 {
		return UncoveredSpatial
	}
	// Co-occurrence: line among the top 10 successors of prevLine so far.
	if m := succCount[prevLine]; m != nil {
		cnt, ok := m[line]
		if ok {
			higher := 0
			for _, c := range m {
				if c > cnt {
					higher++
				}
			}
			if higher < 10 {
				return UncoveredCoOccur
			}
		}
	}
	return UncoveredOther
}

// Coverage returns 1 - (uncovered fraction) from a breakdown, i.e. the
// covered share — the quantity Figures 10/11 stack.
func (b BreakdownResult) Coverage() float64 { return b.Frac[Covered] }

package metrics

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if got := g.Value(); got != 0 {
		t.Fatalf("zero Gauge = %v", got)
	}
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("Value = %v", got)
	}
	g.Set(math.NaN())
	if got := g.Value(); !math.IsNaN(got) {
		t.Fatalf("NaN round trip = %v", got)
	}
}

func TestBucketGeometry(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{math.NaN(), 0},
		{math.Inf(-1), 0},
		{-1, 0},
		{0, 0},
		{math.Ldexp(1, MinExp) / 2, 0},
		{math.Ldexp(1, MinExp), 1},
		{1, -MinExp + 1},
		{1.5, -MinExp + 1},
		{2, -MinExp + 2},
		{math.Ldexp(1, MinExp+NumBuckets-2), NumBuckets - 1},
		{math.Inf(1), NumBuckets - 1},
		{math.MaxFloat64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every finite positive in-range value lands inside its bucket's edges.
	for i := 1; i < NumBuckets-1; i++ {
		lo, hi := BucketLower(i), BucketUpper(i)
		if BucketIndex(lo) != i {
			t.Errorf("lower edge of bucket %d classifies as %d", i, BucketIndex(lo))
		}
		if BucketIndex(math.Nextafter(hi, 0)) != i {
			t.Errorf("just-below-upper of bucket %d classifies as %d", i, BucketIndex(math.Nextafter(hi, 0)))
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zero-valued")
	}
	for _, v := range []float64{0.5, 0.5, 2, 8} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d", got)
	}
	// Sum from bucket midpoints: within one half-bucket (a factor of sqrt2)
	// of the true 11. Every value above sits on a bucket lower edge, so the
	// estimate is exactly sqrt2 times the true sum — the worst case.
	if s := h.Sum(); s < 11/math.Sqrt2*0.999 || s > 11*math.Sqrt2*1.001 {
		t.Fatalf("Sum = %v, want within sqrt2 of 11", s)
	}
	// Median must fall in the bucket holding 0.5.
	med := h.Quantile(0.5)
	if BucketIndex(med) != BucketIndex(0.5) {
		t.Fatalf("median %v not in bucket of 0.5", med)
	}
	h.ObserveDuration(3 * time.Millisecond)
	if got := h.Count(); got != 5 {
		t.Fatalf("Count after duration = %d", got)
	}
}

func TestHistogramMergeLeavesSourceIntact(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	b.Observe(2)
	b.Observe(4)
	a.Merge(&b)
	if a.Count() != 3 || b.Count() != 2 {
		t.Fatalf("counts after merge: a=%d b=%d", a.Count(), b.Count())
	}
}

func TestRegistryNilIsDisabled(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry handed out instruments")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	// Inert timer: no histogram, no clock, no panic.
	if d := StartTimer(nil).Stop(); d != 0 {
		t.Fatalf("inert timer measured %v", d)
	}
	// The nil instruments themselves are no-ops, so instrumented code needs
	// no per-site checks beyond holding the (nil) pointers.
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Histogram("x").Merge(r.Histogram("y"))
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 || r.Histogram("x").Count() != 0 {
		t.Fatal("nil instruments reported non-zero state")
	}
}

func TestRegistrySnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz").Add(1)
	r.Counter("aa").Add(2)
	if r.Counter("aa") != r.Counter("aa") {
		t.Fatal("get-or-create not idempotent")
	}
	r.Gauge("g2").Set(2)
	r.Gauge("g1").Set(math.Inf(1))
	r.Histogram("h").Observe(1)
	snap := r.snapshotAt(123)
	if snap.TimeUnixNs != 123 {
		t.Fatalf("ts = %d", snap.TimeUnixNs)
	}
	if snap.Counters[0].Name != "aa" || snap.Counters[1].Name != "zz" {
		t.Fatalf("counters unsorted: %+v", snap.Counters)
	}
	if snap.Gauges[0].Name != "g1" || snap.Gauges[1].Name != "g2" {
		t.Fatalf("gauges unsorted: %+v", snap.Gauges)
	}
	if v, ok := snap.Counter("zz"); !ok || v != 1 {
		t.Fatalf("Counter lookup = %v, %v", v, ok)
	}
	if v, ok := snap.Gauge("g2"); !ok || v != 2 {
		t.Fatalf("Gauge lookup = %v, %v", v, ok)
	}
	if hp := snap.Histogram("h"); hp == nil || hp.Count != 1 {
		t.Fatalf("Histogram lookup = %+v", snap.Histogram("h"))
	}
	if _, ok := snap.Counter("missing"); ok {
		t.Fatal("found missing counter")
	}
	if _, ok := snap.Gauge("missing"); ok {
		t.Fatal("found missing gauge")
	}
	if snap.Histogram("missing") != nil {
		t.Fatal("found missing histogram")
	}
	// Two snapshots of an unchanged registry marshal identically.
	a, err := snap.MarshalNDJSON()
	if err != nil {
		t.Fatal(err)
	}
	snap2 := r.snapshotAt(123)
	b, err := snap2.MarshalNDJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
}

func TestSnapshotJSONRoundTripWithNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps").Add(7)
	r.Gauge("nan").Set(math.NaN())
	r.Gauge("pinf").Set(math.Inf(1))
	r.Gauge("ninf").Set(math.Inf(-1))
	h := r.Histogram("lat")
	h.Observe(0)
	h.Observe(1e-9)
	h.Observe(1)
	h.Observe(math.Inf(1))
	snap := r.snapshotAt(42)
	line, err := snap.MarshalNDJSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.HasSuffix(line, []byte("\n")) || bytes.Count(line, []byte("\n")) != 1 {
		t.Fatalf("not a single NDJSON line: %q", line)
	}
	got, err := ParseSnapshot(line)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, _ := got.Gauge("nan"); !math.IsNaN(v) {
		t.Fatalf("nan gauge = %v", v)
	}
	if v, _ := got.Gauge("pinf"); !math.IsInf(v, 1) {
		t.Fatalf("pinf gauge = %v", v)
	}
	if v, _ := got.Gauge("ninf"); !math.IsInf(v, -1) {
		t.Fatalf("ninf gauge = %v", v)
	}
	if v, _ := got.Counter("steps"); v != 7 {
		t.Fatalf("steps = %d", v)
	}
	if hp := got.Histogram("lat"); hp == nil || hp.Count != 4 || len(hp.Buckets) != 3 {
		t.Fatalf("lat histogram = %+v", got.Histogram("lat"))
	}
	again, err := got.MarshalNDJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, again) {
		t.Fatalf("round trip not canonical:\n%s\n%s", line, again)
	}
}

func TestParseSnapshotRejects(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"not json",
		`{"ts_unix_ns":1,"unknown_field":2}`,
		`{"ts_unix_ns":1,"counters":[{"name":"","value":1}]}`,
		`{"ts_unix_ns":1,"counters":[{"name":"b","value":1},{"name":"a","value":2}]}`,
		`{"ts_unix_ns":1,"counters":[{"name":"a","value":1},{"name":"a","value":2}]}`,
		`{"ts_unix_ns":1,"gauges":[{"name":"","value":1}]}`,
		`{"ts_unix_ns":1,"gauges":[{"name":"b","value":1},{"name":"a","value":1}]}`,
		`{"ts_unix_ns":1,"gauges":[{"name":"g","value":"garbage"}]}`,
		`{"ts_unix_ns":1,"histograms":[{"name":"","count":0,"sum":0}]}`,
		`{"ts_unix_ns":1,"histograms":[{"name":"h","count":2,"sum":0,"buckets":[{"b":1,"n":1}]}]}`,
		`{"ts_unix_ns":1,"histograms":[{"name":"h","count":1,"sum":0,"buckets":[{"b":-1,"n":1}]}]}`,
		`{"ts_unix_ns":1,"histograms":[{"name":"h","count":1,"sum":0,"buckets":[{"b":64,"n":1}]}]}`,
		`{"ts_unix_ns":1,"histograms":[{"name":"h","count":2,"sum":0,"buckets":[{"b":2,"n":1},{"b":1,"n":1}]}]}`,
		`{"ts_unix_ns":1,"histograms":[{"name":"h","count":0,"sum":0,"buckets":[{"b":1,"n":0}]}]}`,
		`{"ts_unix_ns":1,"histograms":[{"name":"b","count":0,"sum":0},{"name":"a","count":0,"sum":0}]}`,
		`{"ts_unix_ns":1} trailing`,
	}
	for _, line := range bad {
		if _, err := ParseSnapshot([]byte(line)); err == nil {
			t.Errorf("ParseSnapshot accepted %q", line)
		}
	}
}

func TestReadSnapshots(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	var buf bytes.Buffer
	st := NewStreamer(r, &buf)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	r.Counter("c").Inc()
	buf.WriteString("\n") // blank lines are fine
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	snaps, err := ReadSnapshots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	v0, _ := snaps[0].Counter("c")
	v1, _ := snaps[1].Counter("c")
	if v0 != 1 || v1 != 2 {
		t.Fatalf("counter series = %d, %d", v0, v1)
	}
	if _, err := ReadSnapshots(strings.NewReader("garbage\n")); err == nil {
		t.Fatal("ReadSnapshots accepted garbage")
	}
}

// errWriter fails every write once fails is set.
type errWriter struct{ fails bool }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.fails {
		return 0, errors.New("stream broken")
	}
	return len(p), nil
}

func TestStreamerStickyError(t *testing.T) {
	r := NewRegistry()
	w := &errWriter{}
	st := NewStreamer(r, w)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	w.fails = true
	if err := st.Flush(); err == nil {
		t.Fatal("flush on broken writer succeeded")
	}
	w.fails = false
	if err := st.Close(); err == nil {
		t.Fatal("sticky error forgotten")
	}
}

func TestStreamerPeriodic(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks").Inc()
	var mu syncBuffer
	st := NewStreamer(r, &mu)
	st.Start(time.Millisecond)
	st.Start(time.Millisecond) // second Start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for mu.Lines() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if mu.Lines() < 3 {
		t.Fatalf("ticker produced %d lines", mu.Lines())
	}
	snaps, err := ReadSnapshots(bytes.NewReader(mu.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range snaps {
		if v, ok := s.Counter("ticks"); !ok || v != 1 {
			t.Fatalf("bad line: %+v", s)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for the ticker test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.Count(b.buf.Bytes(), []byte("\n"))
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"voyager/internal/tensor"
)

// ForwardSampled must agree with the full Forward on the selected columns,
// and its backward pass must produce the same gradients restricted to
// those columns.
func TestForwardSampledMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("fc", 6, 20, rng)
	x := tensor.NewMat(3, 6)
	x.Uniform(rng, 1)
	cols := []int{0, 7, 19, 3}

	tpFull := tensor.NewTape()
	full := l.Forward(tpFull, tpFull.Const(x))

	tpS := tensor.NewTape()
	sampled := l.ForwardSampled(tpS, tpS.Const(x), cols)

	for b := 0; b < 3; b++ {
		for j, c := range cols {
			want := full.Val.At(b, c)
			got := sampled.Val.At(b, j)
			if math.Abs(float64(got-want)) > 1e-5 {
				t.Fatalf("row %d col %d: sampled %v full %v", b, c, got, want)
			}
		}
	}
}

func TestForwardSampledGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear("fc", 4, 12, rng)
	x := tensor.NewMat(2, 4)
	x.Uniform(rng, 1)
	cols := []int{2, 9}
	targets := [][]int{{0}, {1}} // column-local positives

	build := func() (*tensor.Tape, *tensor.Node, *tensor.Node) {
		tp := tensor.NewTape()
		xn := tp.Param(x) // x as param so we can check input grads too
		out := l.ForwardSampled(tp, xn, cols)
		loss, _ := tp.SigmoidBCEMulti(out, targets)
		return tp, loss, xn
	}
	l.W.ZeroGrad()
	l.B.ZeroGrad()
	tp, loss, xn := build()
	tp.Backward(loss)

	// Finite differences on a sample of W entries in the selected columns,
	// one unselected column (must have zero grad), and the input x.
	const eps, tol = 1e-2, 3e-2
	check := func(name string, data []float32, grad []float32, idx int) {
		orig := data[idx]
		data[idx] = orig + eps
		_, lp, _ := build()
		data[idx] = orig - eps
		_, lm, _ := build()
		data[idx] = orig
		numeric := (float64(lp.Val.Data[0]) - float64(lm.Val.Data[0])) / (2 * eps)
		analytic := float64(grad[idx])
		if math.Abs(numeric-analytic) > tol*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("%s[%d]: analytic %g numeric %g", name, idx, analytic, numeric)
		}
	}
	for _, c := range cols {
		for k := 0; k < 4; k++ {
			check("W", l.W.W.Data, l.W.Grad.Data, k*12+c)
		}
		check("B", l.B.W.Data, l.B.Grad.Data, c)
	}
	// Unselected column: zero gradient.
	for k := 0; k < 4; k++ {
		if l.W.Grad.Data[k*12+5] != 0 {
			t.Fatalf("unselected column received gradient")
		}
	}
	// Input gradient.
	for i := range x.Data {
		check("x", x.Data, xn.Grad.Data, i)
	}
}

func TestForwardSampledOutOfRangePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear("fc", 2, 4, rng)
	tp := tensor.NewTape()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	l.ForwardSampled(tp, tp.Const(tensor.NewMat(1, 2)), []int{4})
}

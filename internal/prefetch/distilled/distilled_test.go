package distilled

import (
	"testing"

	"voyager/internal/distill"
	"voyager/internal/metrics"
	"voyager/internal/sim"
	"voyager/internal/trace"
	"voyager/internal/tracing"
	"voyager/internal/vocab"
	"voyager/internal/voyager"
)

func cyclicTrace(laps int) *trace.Trace {
	cycle := []uint64{
		0x10<<6 | 5, 0x22<<6 | 61, 0x15<<6 | 0, 0x9<<6 | 33,
		0x30<<6 | 7, 0x11<<6 | 12, 0x28<<6 | 50, 0x3<<6 | 18,
	}
	tr := &trace.Trace{Name: "cycle"}
	inst := uint64(0)
	for l := 0; l < laps; l++ {
		for i, line := range cycle {
			inst += 5
			tr.Append(0x400000+uint64(i%3)*8, line<<trace.LineBits, inst)
		}
	}
	tr.Instructions = inst
	return tr
}

// distilledOver trains a FastConfig teacher on tr, compiles the default
// fallback chain from it, and binds the online replayer.
func distilledOver(t *testing.T, tr *trace.Trace, degree int) (*Prefetcher, *voyager.Predictor) {
	t.Helper()
	cfg := voyager.FastConfig()
	cfg.EpochAccesses = 1000
	p, err := voyager.Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	prm := distill.Params{HistLen: 3, TopK: 4, Log2Buckets: 10, MarkovLog2: 8, MaxProbe: 16}
	tab := distill.Compile(p, 0, p.NumAccesses(), prm)
	pf, err := New(tab, p.Model.Vocab(), degree)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return pf, p
}

// The distilled replay of a learned deterministic cycle must predict the
// next line almost everywhere once the context window is warm.
func TestReplayPredictsCycle(t *testing.T) {
	tr := cyclicTrace(500)
	pf, _ := distilledOver(t, tr, 1)
	if pf.Name() != "distilled" {
		t.Fatalf("Name = %q", pf.Name())
	}
	correct, total := 0, 0
	for i := 0; i+1 < tr.Len(); i++ {
		preds := pf.Access(i, tr.Accesses[i])
		if i < 16 { // warmup: ring not yet representative
			continue
		}
		total++
		if len(preds) > 0 && trace.Line(preds[0]) == trace.Line(tr.Accesses[i+1].Addr) {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("distilled cycle accuracy %.3f, want ≥0.9", acc)
	}
	tiers := pf.TierCounts()
	if tiers[distill.TierKey] == 0 {
		t.Fatalf("no full-context hits on the calibration trace: %v", tiers)
	}
}

// The online key stream must match the compiler's offline KeyAt exactly —
// the contract that makes calibration hits land in TierKey at replay.
func TestOnlineKeysMatchCompiler(t *testing.T) {
	tr := cyclicTrace(200)
	pf, p := distilledOver(t, tr, 1)
	for i := 0; i < 64; i++ {
		pf.Access(i, tr.Accesses[i])
		pcTok := p.Model.Vocab().PCToken(tr.Accesses[i].PC)
		if got, want := distill.ContextKey(pcTok, pf.hist), distill.KeyAt(p, i, 3); got != want {
			t.Fatalf("access %d: online key %#x != offline key %#x", i, got, want)
		}
	}
}

func TestVocabFingerprintMismatch(t *testing.T) {
	tr := cyclicTrace(200)
	pf, p := distilledOver(t, tr, 1)
	_ = pf
	other := cyclicTrace(200)
	for i := range other.Accesses {
		other.Accesses[i].Addr += 1 << 20 // different pages → different vocab
	}
	voc := vocab.Build(other, vocab.DefaultOptions())
	tab := distill.Compile(p, 0, 100, distill.DefaultParams())
	if _, err := New(tab, voc, 1); err == nil {
		t.Fatalf("mismatched vocabulary accepted")
	}
}

func TestDegreeAndDedup(t *testing.T) {
	tr := cyclicTrace(300)
	pf, _ := distilledOver(t, tr, 2)
	for i, a := range tr.Accesses {
		out := pf.Access(i, a)
		if len(out) > 2 {
			t.Fatalf("access %d: %d predictions exceed degree 2", i, len(out))
		}
		for j := 1; j < len(out); j++ {
			if out[j] == out[0] {
				t.Fatalf("access %d: duplicate prediction %#x", i, out[j])
			}
		}
		for _, addr := range out {
			if addr&(1<<trace.LineBits-1) != 0 {
				t.Fatalf("access %d: prediction %#x not line-aligned", i, addr)
			}
		}
	}
}

func TestResetRestartsWarmup(t *testing.T) {
	tr := cyclicTrace(100)
	pf, _ := distilledOver(t, tr, 1)
	first := pf.Access(0, tr.Accesses[0])
	for i := 1; i < 50; i++ {
		pf.Access(i, tr.Accesses[i])
	}
	pf.Reset()
	again := pf.Access(0, tr.Accesses[0])
	if len(first) != len(again) {
		t.Fatalf("replay after Reset diverges at access 0: %v vs %v", first, again)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("replay after Reset diverges: %v vs %v", first, again)
		}
	}
}

// The ISSUE-7 acceptance gate: a distilled predictor drives an
// instrumented, provenance-logged simulation and the accounting layers
// reconcile — every decision in exactly one outcome bucket, issued totals
// equal across the decision table, the Result, and the metrics counters,
// and attaching the observers changes no Result bit.
func TestProvenanceConservation(t *testing.T) {
	tr := cyclicTrace(750) // 6000 accesses
	pf, _ := distilledOver(t, tr, 2)
	cfg := sim.ScaledConfig()

	plain := sim.NewMachine(cfg).Run(tr, pf)

	pf.Reset()
	reg := metrics.NewRegistry()
	tracer := tracing.New(tracing.Options{Logical: true})
	log := tracing.NewDecisionLog("cycle/distilled")
	m := sim.NewMachine(cfg)
	m.Instrument(reg)
	m.Trace(tracer, "sim/distilled")
	m.Provenance(log)
	res := m.Run(tr, pf)

	if res != plain {
		t.Fatalf("observers perturbed the distilled run:\n  with:    %+v\n  without: %+v", res, plain)
	}
	if log.Len() == 0 || res.PrefetchesIssued == 0 {
		t.Fatalf("degenerate run: %d decisions, %d issued", log.Len(), res.PrefetchesIssued)
	}

	tab := log.BuildTable(nil)
	total := tab.Total
	if total.Decisions != log.Len() {
		t.Fatalf("table decisions %d != log length %d", total.Decisions, log.Len())
	}
	if got := total.Useful + total.Late + total.Evicted + total.Resident +
		total.Dropped + total.Unsimulated; got != total.Decisions {
		t.Fatalf("outcome buckets sum to %d, want %d", got, total.Decisions)
	}
	snap := reg.Snapshot()
	issued, _ := snap.Counter("sim_prefetches_issued_total")
	useful, _ := snap.Counter("sim_prefetches_useful_total")
	if uint64(total.Issued) != res.PrefetchesIssued || uint64(total.Issued) != issued {
		t.Errorf("issued: provenance %d, Result %d, counter %d", total.Issued, res.PrefetchesIssued, issued)
	}
	if got := uint64(total.Useful + total.Late); got != res.PrefetchesUseful || got != useful {
		t.Errorf("useful+late: provenance %d, Result %d, counter %d", got, res.PrefetchesUseful, useful)
	}
	if _, err := tracing.ValidateBytes(tracer.Export()); err != nil {
		t.Fatalf("distilled simulator timeline invalid: %v", err)
	}
}

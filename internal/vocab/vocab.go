// Package vocab builds the hierarchical vocabularies Voyager predicts
// over: page tokens, offset tokens, and PC tokens.
//
// Following §4.3 of the paper, the vocabulary mixes addresses and deltas:
// a profiling pass counts per-line frequencies, and addresses that occur
// fewer than MinAddrFreq times are represented as (page-delta,
// offset-delta) tokens relative to the preceding access. Delta page
// entries are distinct tokens "after" the absolute pages (the paper marks
// them with a 'd' prefix); the offset vocabulary is extended with the 127
// possible offset deltas (−63…+63). Only the MaxDeltas most frequent page
// deltas get tokens — the paper finds 10 deltas cover 99% of mcf's
// compulsory misses.
package vocab

import (
	"fmt"
	"sort"

	"voyager/internal/sortkeys"
	"voyager/internal/trace"
)

// Token id conventions for the offset head: absolute offsets occupy
// [0, 64); delta offsets occupy [64, 64+127) encoding −63…+63.
const (
	NumAbsOffsets   = trace.NumOffsets           // 64
	NumDeltaOffsets = 2*(trace.NumOffsets-1) + 1 // 127
	OffsetTokens    = NumAbsOffsets + NumDeltaOffsets
)

// Options configures vocabulary construction.
type Options struct {
	// MinAddrFreq is the minimum per-line occurrence count for an address
	// to get its own (page) representation; below it the address is
	// delta-encoded. The paper uses 2. 0 disables delta substitution.
	MinAddrFreq int
	// MaxDeltas caps the number of page-delta tokens (most frequent
	// first). The paper's analysis uses 10 for mcf; we default to 64.
	MaxDeltas int
	// MaxPCs caps the PC vocabulary (most frequent first); rare PCs share
	// the UNK token. 0 means unlimited.
	MaxPCs int
}

// DefaultOptions mirrors the paper: MinAddrFreq 2, a small delta budget.
func DefaultOptions() Options {
	return Options{MinAddrFreq: 2, MaxDeltas: 64, MaxPCs: 0}
}

// Vocab maps between raw (pc, address) pairs and model token ids.
type Vocab struct {
	opts Options

	pageID  map[uint64]int // absolute page → token
	pages   []uint64       // token → page
	deltaID map[int64]int  // page delta → token (offset by len(pages))
	deltas  []int64        // delta token index → page delta

	pcID map[uint64]int // pc → token (0 is UNK)
	pcs  []uint64

	freqLine map[uint64]bool // lines frequent enough for absolute encoding
}

// Build profiles the trace and constructs the vocabulary.
func Build(tr *trace.Trace, opts Options) *Vocab {
	v := &Vocab{
		opts:     opts,
		pageID:   make(map[uint64]int),
		deltaID:  make(map[int64]int),
		pcID:     make(map[uint64]int),
		freqLine: make(map[uint64]bool),
	}

	lineFreq := trace.LineFrequencies(tr)
	for _, line := range sortkeys.Sorted(lineFreq) {
		if opts.MinAddrFreq <= 0 || lineFreq[line] >= opts.MinAddrFreq {
			v.freqLine[line] = true
		}
	}

	// Absolute pages: pages owning at least one frequent line, in first-
	// appearance order for determinism.
	for _, a := range tr.Accesses {
		line := trace.Line(a.Addr)
		if !v.freqLine[line] {
			continue
		}
		page := trace.Page(a.Addr)
		if _, ok := v.pageID[page]; !ok {
			v.pageID[page] = len(v.pages)
			v.pages = append(v.pages, page)
		}
	}

	// Delta tokens: page deltas of infrequent accesses relative to the
	// preceding access, most frequent first.
	if opts.MinAddrFreq > 0 && opts.MaxDeltas > 0 {
		deltaFreq := make(map[int64]int)
		for i := 1; i < tr.Len(); i++ {
			cur := tr.Accesses[i]
			if v.freqLine[trace.Line(cur.Addr)] {
				continue
			}
			prev := tr.Accesses[i-1]
			dPage := int64(trace.Page(cur.Addr)) - int64(trace.Page(prev.Addr))
			dOff := int64(trace.Offset(cur.Addr)) - int64(trace.Offset(prev.Addr))
			if dOff < -(trace.NumOffsets-1) || dOff > trace.NumOffsets-1 {
				continue // cannot happen: offsets are mod 64, kept for clarity
			}
			deltaFreq[dPage]++
		}
		type dc struct {
			d int64
			n int
		}
		all := make([]dc, 0, len(deltaFreq))
		for _, d := range sortkeys.Sorted(deltaFreq) {
			all = append(all, dc{d, deltaFreq[d]})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].d < all[j].d
		})
		if len(all) > opts.MaxDeltas {
			all = all[:opts.MaxDeltas]
		}
		for _, e := range all {
			v.deltaID[e.d] = len(v.deltas)
			v.deltas = append(v.deltas, e.d)
		}
	}

	// PC vocabulary: most frequent first, slot 0 reserved for UNK.
	pcFreq := make(map[uint64]int)
	for _, a := range tr.Accesses {
		pcFreq[a.PC]++
	}
	type pcCount struct {
		pc uint64
		n  int
	}
	pcsAll := make([]pcCount, 0, len(pcFreq))
	for _, pc := range sortkeys.Sorted(pcFreq) {
		pcsAll = append(pcsAll, pcCount{pc, pcFreq[pc]})
	}
	sort.Slice(pcsAll, func(i, j int) bool {
		if pcsAll[i].n != pcsAll[j].n {
			return pcsAll[i].n > pcsAll[j].n
		}
		return pcsAll[i].pc < pcsAll[j].pc
	})
	if opts.MaxPCs > 0 && len(pcsAll) > opts.MaxPCs {
		pcsAll = pcsAll[:opts.MaxPCs]
	}
	v.pcs = make([]uint64, 0, len(pcsAll))
	for _, e := range pcsAll {
		v.pcID[e.pc] = len(v.pcs) + 1 // 0 is UNK
		v.pcs = append(v.pcs, e.pc)
	}
	return v
}

// PageTokens returns the size of the page vocabulary: absolute pages,
// delta tokens, and one trailing UNK token.
func (v *Vocab) PageTokens() int { return len(v.pages) + len(v.deltas) + 1 }

// NumPages returns the count of absolute page tokens.
func (v *Vocab) NumPages() int { return len(v.pages) }

// NumDeltas returns the count of page-delta tokens.
func (v *Vocab) NumDeltas() int { return len(v.deltas) }

// UnkPage returns the UNK page token id.
func (v *Vocab) UnkPage() int { return len(v.pages) + len(v.deltas) }

// PCTokens returns the size of the PC vocabulary including UNK (id 0).
func (v *Vocab) PCTokens() int { return len(v.pcs) + 1 }

// PCToken returns the token for a PC (0 = UNK).
func (v *Vocab) PCToken(pc uint64) int { return v.pcID[pc] }

// IsDeltaPage reports whether a page token is a delta token.
func (v *Vocab) IsDeltaPage(tok int) bool {
	return tok >= len(v.pages) && tok < len(v.pages)+len(v.deltas)
}

// Frequent reports whether the line is encoded with absolute tokens.
func (v *Vocab) Frequent(line uint64) bool { return v.freqLine[line] }

// EncodeAccess encodes one access (line number) given the line of the
// preceding access in the stream. Frequent lines use absolute page/offset
// tokens; infrequent ones use delta tokens when the page delta is in the
// vocabulary, or UNK otherwise.
func (v *Vocab) EncodeAccess(prevLine, line uint64) (pageTok, offTok int) {
	if v.freqLine[line] {
		page := line >> trace.OffsetBits
		off := int(line & (trace.NumOffsets - 1))
		if id, ok := v.pageID[page]; ok {
			return id, off
		}
		return v.UnkPage(), off
	}
	dPage := int64(line>>trace.OffsetBits) - int64(prevLine>>trace.OffsetBits)
	dOff := int64(line&(trace.NumOffsets-1)) - int64(prevLine&(trace.NumOffsets-1))
	if id, ok := v.deltaID[dPage]; ok {
		return len(v.pages) + id, NumAbsOffsets + int(dOff) + (trace.NumOffsets - 1)
	}
	return v.UnkPage(), int(line & (trace.NumOffsets - 1))
}

// Decode maps a (page token, offset token) prediction back to a line
// number, resolving delta tokens against the trigger line. ok is false for
// UNK pages, out-of-range ids, or mismatched absolute/delta pairings.
func (v *Vocab) Decode(triggerLine uint64, pageTok, offTok int) (line uint64, ok bool) {
	switch {
	case pageTok < 0 || pageTok >= v.PageTokens() || offTok < 0 || offTok >= OffsetTokens:
		return 0, false
	case pageTok == v.UnkPage():
		return 0, false
	case pageTok < len(v.pages):
		if offTok >= NumAbsOffsets {
			// Absolute page with a delta offset: resolve the offset delta
			// against the trigger's offset.
			dOff := int64(offTok-NumAbsOffsets) - (trace.NumOffsets - 1)
			off := int64(triggerLine&(trace.NumOffsets-1)) + dOff
			if off < 0 || off >= trace.NumOffsets {
				return 0, false
			}
			return v.pages[pageTok]<<trace.OffsetBits | uint64(off), true
		}
		return v.pages[pageTok]<<trace.OffsetBits | uint64(offTok), true
	default: // delta page token
		d := v.deltas[pageTok-len(v.pages)]
		page := int64(triggerLine>>trace.OffsetBits) + d
		if page < 0 {
			return 0, false
		}
		var off int64
		if offTok >= NumAbsOffsets {
			dOff := int64(offTok-NumAbsOffsets) - (trace.NumOffsets - 1)
			off = int64(triggerLine&(trace.NumOffsets-1)) + dOff
		} else {
			off = int64(offTok)
		}
		if off < 0 || off >= trace.NumOffsets {
			return 0, false
		}
		return uint64(page)<<trace.OffsetBits | uint64(off), true
	}
}

// Fingerprint hashes the complete token-id assignment: the frequent-line
// set, the page/delta/PC id orders, and the segment lengths. Two
// vocabularies encode and decode identically iff their fingerprints match.
// Distilled tables (internal/distill) embed the fingerprint of the
// vocabulary they were compiled against, so a table is never replayed
// through a vocabulary that assigns different token ids.
func (v *Vocab) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	mix(uint64(len(v.pages)))
	for _, p := range v.pages {
		mix(p)
	}
	mix(uint64(len(v.deltas)))
	for _, d := range v.deltas {
		mix(uint64(d))
	}
	mix(uint64(len(v.pcs)))
	for _, pc := range v.pcs {
		mix(pc)
	}
	mix(uint64(len(v.freqLine)))
	for _, line := range sortkeys.Sorted(v.freqLine) {
		mix(line)
	}
	return h
}

// String summarizes the vocabulary.
func (v *Vocab) String() string {
	return fmt.Sprintf("vocab{pages=%d deltas=%d pcs=%d offsetTokens=%d}",
		len(v.pages), len(v.deltas), len(v.pcs), OffsetTokens)
}

// Package voyager implements the paper's hierarchical neural prefetcher:
// PC/page/offset embeddings, a page-aware offset embedding built from
// dot-product attention over a mixture of offset experts (§4.2), a delta
// vocabulary for compulsory misses (§4.3), multi-label training over five
// localization schemes (§4.4), and the online epoch-based train/predict
// protocol of §5.1.
package voyager

import (
	"fmt"

	"voyager/internal/label"
	"voyager/internal/metrics"
	"voyager/internal/tracing"
	"voyager/internal/vocab"
)

// PCFeature selects how program counters enter the model (Figure 12's
// feature study).
type PCFeature int

const (
	// PCHistory embeds the PC of every access in the input sequence (the
	// paper's default).
	PCHistory PCFeature = iota
	// PCNone removes PCs from the features entirely (the paper finds
	// control flow is not a useful *feature*, only a useful *label*).
	PCNone
)

// Config holds every hyperparameter. Table 1 values come from
// PaperConfig; experiments use ScaledConfig (same architecture, smaller
// dimensions — pure-Go fp32 training is orders slower than the paper's
// TPU/GPU TensorFlow setup; see EXPERIMENTS.md).
type Config struct {
	Seed int64

	// Architecture (Table 1).
	SeqLen      int // history length
	PCEmbed     int // embedding size for PC
	PageEmbed   int // embedding size for page
	Experts     int // # experts; offset embedding size = Experts × PageEmbed
	Hidden      int // LSTM units (per LSTM; 1 layer each)
	DropoutKeep float32
	AttnScale   float32 // the scaling factor f in Eq. 9

	// Optimization (Table 1).
	LearningRate float32
	DecayRatio   float32 // learning rate divided by this each epoch
	BatchSize    int

	// Online protocol (§5.1): train on epoch i, predict epoch i+1.
	// EpochAccesses is the epoch length in trace accesses (the paper uses
	// 50M instructions; our traces are access-granular).
	EpochAccesses int
	// PassesPerEpoch replays each training epoch this many times. The
	// paper's 50M-instruction epochs give tens of thousands of optimizer
	// steps per epoch; our scaled traces are thousands of accesses, so
	// replaying the (still strictly past) epoch restores a comparable
	// optimization budget. 0 means 1.
	PassesPerEpoch int

	// Vocabulary (§4.3).
	UseDeltas   bool // include delta tokens (false = "Voyager w/o delta")
	MinAddrFreq int  // addresses seen fewer times are delta-encoded
	MaxDeltas   int  // page-delta token budget

	// Labeling (§4.4). Schemes lists the localization schemes whose labels
	// train the model; the default is all five (multi-label). Single-
	// scheme configs reproduce Figure 12/15 ablations.
	Schemes []label.Scheme

	// Features (Figure 12).
	PCUse PCFeature

	// NegSamples enables sampled-loss training for the page head: each
	// batch trains on its positive pages plus this many random negative
	// pages instead of the full vocabulary. 0 trains on the full
	// vocabulary. Inference always uses the full head.
	NegSamples int

	// PageAwareOffsets enables the paper's central mechanism: the
	// attention-based page-aware offset embedding (§4.2). Disabling it
	// reverts to a page-agnostic shared offset embedding (the naive
	// decomposition), which suffers the offset-aliasing problem the paper
	// describes. Default true; the ablation exists to demonstrate the
	// aliasing failure mode.
	PageAwareOffsets bool

	// HeadSkip feeds the trigger access's embeddings directly into the
	// prediction heads alongside the LSTM states. The paper's full-size
	// model (256-unit LSTMs, tens of millions of training samples) routes
	// all memorization through the recurrent state; at our scaled sizes
	// that path converges too slowly, so the skip connection restores a
	// fast learned-successor-table path. PaperConfig disables it.
	HeadSkip bool

	// Degree is the number of (page, offset) candidates prefetched per
	// trigger (§5.2 "Higher Degree Prefetching").
	Degree int

	// UnfusedLSTM routes both LSTMs through the node-per-op Step formulation
	// instead of the fused tensor.LSTMCell kernel. The two paths are
	// bit-identical; this is a test/debug hook for the differential suite,
	// not a tuning knob.
	UnfusedLSTM bool

	// Metrics is the optional observability registry. nil (the default)
	// disables instrumentation entirely. Enabling it never changes training:
	// instruments only observe values the run computes anyway — counters,
	// timings and post-reduce gradient reads — so runs are bit-identical
	// either way (pinned by the golden differential tests). Excluded from
	// JSON so run manifests embedding a Config stay plain data.
	Metrics *metrics.Registry `json:"-"`

	// Trace is the optional execution-span tracer. nil (the default)
	// disables span recording; like Metrics, enabling it never changes
	// training — spans only bracket work the run performs anyway, and the
	// trace differential test pins bit-identity against a traceless run.
	// Excluded from JSON like Metrics.
	Trace *tracing.Tracer `json:"-"`

	// Provenance is the optional prefetch-decision log: when set, every
	// prediction predictRange emits is stamped with a Decision (trigger
	// PC, predicted tokens/line, which labeling schemes named that line,
	// confidence rank) for downstream outcome attribution. Purely
	// observational like Metrics and Trace.
	Provenance *tracing.DecisionLog `json:"-"`

	// QuantizedPredict routes PredictBatch's head matmuls through int8
	// weight-quantized shadows of the page/offset heads (per-column
	// symmetric scales, fp32 activations; see nn.QuantizedLinear). The
	// shadows requantize lazily — TrainBatch marks them stale and the next
	// PredictBatch refreshes them once before sharding — so steady-state
	// inference pays only the int8 kernels. Training is untouched and
	// prediction scores shift by quantization noise (bounded by the
	// differential tests in quant_test.go), so leave this off for the
	// golden/determinism paths.
	QuantizedPredict bool

	// Workers is the data-parallel width of TrainBatch/PredictBatch: each
	// minibatch is cut into Workers contiguous shards that run forward and
	// backward concurrently, each on its own gradient buffer and RNG stream
	// (worker 0 continues the model's Seed stream; worker k>0 draws from
	// Seed+k). Gradients are reduced into the shared parameters in fixed
	// worker order, so training is reproducible at a given worker count,
	// and 0 or 1 keeps the serial path, which is bit-identical to the
	// pre-parallel implementation. WorkersAuto sizes to the machine.
	Workers int
}

// WorkersAuto as Config.Workers sizes the data-parallel width to the shared
// tensor worker pool (GOMAXPROCS).
const WorkersAuto = -1

// PaperConfig returns Table 1 exactly: sequence length 16, PC embedding 64,
// page embedding 256, offset embedding 25600 (100 experts), 1-layer
// 256-unit LSTMs, dropout keep 0.8, batch 256, Adam at 0.001 with decay
// ratio 2.
func PaperConfig() Config {
	return Config{
		Seed:             1,
		SeqLen:           16,
		PCEmbed:          64,
		PageEmbed:        256,
		Experts:          100,
		Hidden:           256,
		DropoutKeep:      0.8,
		AttnScale:        1,
		LearningRate:     0.001,
		DecayRatio:       2,
		BatchSize:        256,
		EpochAccesses:    50_000_000 / 5, // ≈50M instructions at ~5 inst/access
		UseDeltas:        true,
		MinAddrFreq:      2,
		MaxDeltas:        64,
		Schemes:          label.AllSchemes(),
		PCUse:            PCHistory,
		PageAwareOffsets: true,
		Degree:           1,
	}
}

// ScaledConfig preserves the paper's architectural ratios at CPU-friendly
// sizes: the offset embedding is still Experts × PageEmbed, the sequence
// is still 16 long, and all training hyperparameters match Table 1.
func ScaledConfig() Config {
	c := PaperConfig()
	c.SeqLen = 6
	c.PCEmbed = 8
	c.PageEmbed = 16
	c.Experts = 4
	c.Hidden = 32
	c.BatchSize = 128
	c.EpochAccesses = 8_000
	c.LearningRate = 0.01
	c.DecayRatio = 1.4
	c.PassesPerEpoch = 2
	c.NegSamples = 128
	c.HeadSkip = true
	return c
}

// FastConfig is a tiny configuration for unit tests.
func FastConfig() Config {
	c := ScaledConfig()
	c.SeqLen = 4
	c.PCEmbed = 8
	c.PageEmbed = 16
	c.Experts = 4
	c.Hidden = 24
	c.BatchSize = 32
	c.EpochAccesses = 2_000
	c.LearningRate = 0.01
	c.PassesPerEpoch = 6
	c.HeadSkip = true
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SeqLen < 1:
		return fmt.Errorf("voyager: SeqLen %d < 1", c.SeqLen)
	case c.PageEmbed < 1 || c.Experts < 1:
		return fmt.Errorf("voyager: PageEmbed %d / Experts %d invalid", c.PageEmbed, c.Experts)
	case c.Hidden < 1:
		return fmt.Errorf("voyager: Hidden %d < 1", c.Hidden)
	case c.BatchSize < 1:
		return fmt.Errorf("voyager: BatchSize %d < 1", c.BatchSize)
	case c.EpochAccesses < c.SeqLen+1:
		return fmt.Errorf("voyager: EpochAccesses %d too small for SeqLen %d", c.EpochAccesses, c.SeqLen)
	case len(c.Schemes) == 0:
		return fmt.Errorf("voyager: no labeling schemes")
	case c.DropoutKeep <= 0 || c.DropoutKeep > 1:
		return fmt.Errorf("voyager: DropoutKeep %v out of (0,1]", c.DropoutKeep)
	case c.Degree < 1:
		return fmt.Errorf("voyager: Degree %d < 1", c.Degree)
	case c.Workers < WorkersAuto:
		return fmt.Errorf("voyager: Workers %d invalid (use %d for auto)", c.Workers, WorkersAuto)
	}
	return nil
}

// OffsetEmbed returns the total offset embedding width (Experts × PageEmbed).
func (c Config) OffsetEmbed() int { return c.Experts * c.PageEmbed }

// vocabOptions translates the config into vocabulary options.
func (c Config) vocabOptions() vocab.Options {
	o := vocab.Options{MinAddrFreq: c.MinAddrFreq, MaxDeltas: c.MaxDeltas}
	if !c.UseDeltas {
		o.MaxDeltas = 0
	}
	return o
}

// InputDim returns the per-timestep feature width after embedding.
func (c Config) InputDim() int {
	d := 2 * c.PageEmbed // page embedding + page-aware offset embedding
	if c.PCUse == PCHistory {
		d += c.PCEmbed
	}
	return d
}

package workloads

import (
	"testing"

	"voyager/internal/trace"
)

func smallCfg() Config {
	return Config{Seed: 7, Scale: 1, MaxAccesses: 20_000}
}

func TestAllGeneratorsProduceTraces(t *testing.T) {
	for _, spec := range All {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr := spec.Gen(smallCfg())
			if tr.Name != spec.Name {
				t.Fatalf("trace name %q != benchmark %q", tr.Name, spec.Name)
			}
			if tr.Len() == 0 {
				t.Fatalf("empty trace")
			}
			if tr.Len() > 20_000 {
				t.Fatalf("MaxAccesses not honored: %d", tr.Len())
			}
			if tr.Instructions < uint64(tr.Len()) {
				t.Fatalf("instructions %d < accesses %d", tr.Instructions, tr.Len())
			}
			// Instruction indices must be strictly increasing.
			var prev uint64
			for i, a := range tr.Accesses {
				if a.Inst <= prev && i > 0 {
					t.Fatalf("non-monotonic inst at %d: %d after %d", i, a.Inst, prev)
				}
				prev = a.Inst
			}
			s := trace.ComputeStats(tr)
			if s.PCs < 2 || s.Pages < 2 || s.Addresses < 10 {
				t.Fatalf("implausible stats: %+v", s)
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, spec := range All {
		a := spec.Gen(smallCfg())
		b := spec.Gen(smallCfg())
		if a.Len() != b.Len() {
			t.Fatalf("%s: nondeterministic length %d vs %d", spec.Name, a.Len(), b.Len())
		}
		for i := range a.Accesses {
			if a.Accesses[i] != b.Accesses[i] {
				t.Fatalf("%s: nondeterministic access %d", spec.Name, i)
			}
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	cfg2 := smallCfg()
	cfg2.Seed = 8
	a := PageRank(smallCfg())
	b := PageRank(cfg2)
	same := a.Len() == b.Len()
	if same {
		for i := range a.Accesses {
			if a.Accesses[i] != b.Accesses[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical traces")
	}
}

// Table 2 shape: the Google workloads must have far more PCs than the
// SPEC/GAP ones, and ads more than search.
func TestGooglePCCounts(t *testing.T) {
	cfg := Config{Seed: 3, Scale: 1, MaxAccesses: 60_000}
	search := trace.ComputeStats(Search(cfg))
	ads := trace.ComputeStats(Ads(cfg))
	pr := trace.ComputeStats(PageRank(cfg))
	if search.PCs <= 4*pr.PCs {
		t.Fatalf("search PCs (%d) should dwarf pr PCs (%d)", search.PCs, pr.PCs)
	}
	if ads.PCs <= search.PCs {
		t.Fatalf("ads PCs (%d) should exceed search PCs (%d)", ads.PCs, search.PCs)
	}
}

// mcf must have the largest footprint relative to its peers (Table 2: 4.6M
// addresses vs hundreds of K) and fresh regions (compulsory misses).
func TestMCFFootprint(t *testing.T) {
	cfg := Config{Seed: 3, Scale: 1, MaxAccesses: 120_000}
	mcf := trace.ComputeStats(MCF(cfg))
	bfs := trace.ComputeStats(BFS(cfg))
	if mcf.Addresses <= 2*bfs.Addresses {
		t.Fatalf("mcf addresses (%d) should dwarf bfs (%d)", mcf.Addresses, bfs.Addresses)
	}
}

// The soplex generator must emit the Figure 16 pattern: vec loads issued by
// two distinct PCs, each always preceded by the same upd PC.
func TestSoplexBranchSharedPattern(t *testing.T) {
	tr := Soplex(Config{Seed: 5, Scale: 1, MaxAccesses: 50_000})
	// Find the upd PC and the two vec PCs: upd is the PC that immediately
	// precedes two different successors accessing the same address.
	followers := make(map[uint64]map[uint64]bool) // pc -> set of next pcs
	for i := 0; i+1 < tr.Len(); i++ {
		cur, next := tr.Accesses[i], tr.Accesses[i+1]
		if followers[cur.PC] == nil {
			followers[cur.PC] = make(map[uint64]bool)
		}
		followers[cur.PC][next.PC] = true
	}
	// There must exist a PC with ≥2 successors whose successors' loads hit
	// the same line as each other at matching positions (the vec PCs).
	found := false
	for _, succ := range followers {
		if len(succ) >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no branch-shared pattern found in soplex trace")
	}
}

func TestByNameAndGenerate(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatalf("expected error for unknown benchmark")
	}
	tr, err := Generate("bfs", smallCfg())
	if err != nil || tr.Name != "bfs" {
		t.Fatalf("Generate bfs: %v", err)
	}
	if len(Names()) != 11 {
		t.Fatalf("expected 11 benchmarks, got %d", len(Names()))
	}
	if len(SimulatableNames()) != 9 {
		t.Fatalf("expected 9 simulatable benchmarks, got %d", len(SimulatableNames()))
	}
}

// Temporal repeatability: cc sweeps edges in the same order each iteration,
// so the trace must contain long repeated subsequences. We measure this as
// next-line predictability of a last-successor oracle on the second half.
func TestCCTemporalCorrelation(t *testing.T) {
	tr := CC(Config{Seed: 4, Scale: 1, MaxAccesses: 60_000})
	succ := make(map[uint64]uint64)
	correct, total := 0, 0
	for i := 0; i+1 < tr.Len(); i++ {
		cur := trace.Line(tr.Accesses[i].Addr)
		next := trace.Line(tr.Accesses[i+1].Addr)
		if i > tr.Len()/2 {
			if p, ok := succ[cur]; ok {
				total++
				if p == next {
					correct++
				}
			}
		}
		succ[cur] = next
	}
	if total == 0 {
		t.Fatalf("no predictions")
	}
	rate := float64(correct) / float64(total)
	if rate < 0.4 {
		t.Fatalf("cc global-stream predictability %.2f, want >= 0.4 (temporal structure missing)", rate)
	}
}

func BenchmarkGeneratePageRank(b *testing.B) {
	cfg := Config{Seed: 1, Scale: 1, MaxAccesses: 50_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PageRank(cfg)
	}
}

package metrics

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"voyager/internal/sortkeys"
)

// Server is the optional live-inspection endpoint of a run: an expvar-style
// JSON dump of the registry at /metrics, an NDJSON single-snapshot line at
// /metrics.ndjson, and the standard net/http/pprof handlers under
// /debug/pprof/ (mounted on the server's own mux, not the global
// DefaultServeMux, so tests and multiple runs never collide).
type Server struct {
	srv *http.Server
	lis net.Listener
}

// StartServer listens on addr (e.g. "localhost:6060"; ":0" picks a free
// port) and serves the registry in the background until Close.
func StartServer(reg *Registry, addr string) (*Server, error) {
	return StartServerWith(reg, addr, nil)
}

// StartServerWith is StartServer plus extra path → handler mounts on the
// same mux. This is how sibling observability layers (the execution-span
// tracer's /trace snapshot) share the run's one HTTP endpoint without this
// package importing them: the caller passes the handler in. Extra paths
// must not collide with the built-in /metrics and /debug/pprof routes.
func StartServerWith(reg *Registry, addr string, extra map[string]http.Handler) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		snap := reg.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&snap) // best-effort response: the client may be gone
	})
	mux.HandleFunc("/metrics.ndjson", func(w http.ResponseWriter, _ *http.Request) {
		snap := reg.Snapshot()
		line, err := snap.MarshalNDJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write(line) // best-effort response: the client may be gone
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, path := range sortkeys.Sorted(extra) {
		mux.Handle(path, extra[path])
	}

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: &http.Server{Handler: mux}, lis: lis}
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close shuts the server down gracefully, falling back to a hard close
// after a short drain window, and waits for the serve goroutine and all
// connection goroutines to exit (the goroutine-leak test pins this).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		_ = s.srv.Close() // best-effort hard close after failed drain
	}
	return err
}

package voyager

import (
	"fmt"

	"voyager/internal/nn"
	"voyager/internal/trace"
)

// BenchHarness holds a model bound to a trace plus one representative
// prepared minibatch, so benchmarks (bench_test.go, cmd/experiments -bench)
// can time TrainBatch / PredictBatch steps without the online protocol's
// epoch machinery around them.
type BenchHarness struct {
	p   *Predictor
	opt *nn.Adam

	seqs             []batchToken
	pagePos, offPos  [][]int
	pageW, offW      [][]float32
	predictPositions []int
}

// NewBenchHarness prepares a full BatchSize minibatch of learnable triggers
// from the trace.
func NewBenchHarness(tr *trace.Trace, cfg Config) (*BenchHarness, error) {
	p, err := newPredictor(tr, cfg)
	if err != nil {
		return nil, err
	}
	var positions []int
	for t := cfg.SeqLen; t < tr.Len() && len(positions) < cfg.BatchSize; t++ {
		if pagePos, _, _, _ := p.labelTokens(t); len(pagePos) > 0 {
			positions = append(positions, t)
		}
	}
	if len(positions) == 0 {
		return nil, fmt.Errorf("voyager: trace has no learnable positions")
	}
	h := &BenchHarness{
		p:                p,
		opt:              nn.NewAdam(cfg.LearningRate),
		seqs:             cloneBatch(p.buildBatch(positions)),
		pagePos:          make([][]int, len(positions)),
		offPos:           make([][]int, len(positions)),
		pageW:            make([][]float32, len(positions)),
		offW:             make([][]float32, len(positions)),
		predictPositions: positions,
	}
	for b, pos := range positions {
		h.pagePos[b], h.offPos[b], h.pageW[b], h.offW[b] = p.labelTokens(pos)
	}
	return h, nil
}

// cloneBatch deep-copies a batch: buildBatch returns the predictor's
// reusable scratch, and the harness must keep its minibatch stable across
// arbitrarily many steps.
func cloneBatch(seqs []batchToken) []batchToken {
	out := make([]batchToken, len(seqs))
	for i, s := range seqs {
		out[i] = batchToken{
			pc:   append([]int(nil), s.pc...),
			page: append([]int(nil), s.page...),
			off:  append([]int(nil), s.off...),
		}
	}
	return out
}

// BatchRows returns the number of rows in the prepared minibatch.
func (h *BenchHarness) BatchRows() int { return len(h.predictPositions) }

// TrainStep runs one full optimizer step (forward, backward, Adam) on the
// prepared minibatch and returns the batch loss.
func (h *BenchHarness) TrainStep() float32 {
	loss := h.p.Model.TrainBatch(h.seqs, h.pagePos, h.offPos, h.pageW, h.offW)
	h.opt.Step(h.p.Model.Params().All())
	return loss
}

// PredictStep runs one inference pass over the prepared minibatch at the
// configured degree and returns the candidate count of the first row.
func (h *BenchHarness) PredictStep() int {
	out := h.p.Model.PredictBatch(h.seqs, h.p.Cfg.Degree)
	return len(out[0])
}

// PredictCandidates runs one inference pass and returns the full candidate
// lists — the accuracy-differential harness in internal/experiments compares
// fp32 and quantized predictions row by row.
func (h *BenchHarness) PredictCandidates() [][]Candidate {
	return h.p.Model.PredictBatch(h.seqs, h.p.Cfg.Degree)
}

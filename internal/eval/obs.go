package eval

import (
	"strings"

	"voyager/internal/metrics"
)

// RecordUnified exports one unified accuracy/coverage measurement as a
// gauge named eval_unified.<benchmark>.<prefetcher> (empty parts are
// dropped). No-op with a nil registry.
func RecordUnified(reg *metrics.Registry, benchmark, prefetcher string, v float64) {
	reg.Gauge(metricKey("eval_unified", benchmark, prefetcher)).Set(v)
}

// Record exports the breakdown as gauges: eval_coverage.<bench>.<pf> plus
// one eval_frac.<bench>.<pf>.<kind> gauge per pattern category. No-op with
// a nil registry.
func (b BreakdownResult) Record(reg *metrics.Registry) {
	reg.Gauge(metricKey("eval_coverage", b.Benchmark, b.Prefetcher)).Set(b.Coverage())
	for k := PatternKind(0); k < NumPatternKinds; k++ {
		reg.Gauge(metricKey("eval_frac", b.Benchmark, b.Prefetcher, k.String())).Set(b.Frac[k])
	}
}

// metricKey joins non-empty name parts with dots.
func metricKey(parts ...string) string {
	kept := parts[:0:0]
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, ".")
}

// Package f64pkg exercises the f64promote analyzer.
package f64pkg

import "math"

func truncateMathCall(x float32) float32 {
	return float32(math.Exp(float64(x))) // want "float64 arithmetic truncated to float32"
}

func truncateArith(a, b float64) float32 {
	return float32(a*b + 1) // want "float64 arithmetic truncated to float32"
}

func taintedLocal(xs []float32) float32 {
	var s float64
	for _, v := range xs {
		s += float64(v) // compound assignment taints the accumulator
	}
	return float32(s) // want "float64 arithmetic truncated to float32"
}

func taintedViaMath(x float64) float32 {
	e := math.Sqrt(x)
	y := e
	return float32(y) // want "float64 arithmetic truncated to float32"
}

// meanAll is an intentional accumulator, allowlisted by name in the test.
func meanAll(xs []float32) float32 {
	var s float64
	for _, v := range xs {
		s += float64(v)
	}
	return float32(s) / float32(len(xs))
}

func suppressed(x float32) float32 {
	//lint:ignore f64promote init-time precision does not affect kernels
	return float32(math.Sqrt(float64(x)))
}

func pureWidening(x float32) float64 {
	return float64(x) // widening without arithmetic is fine
}

func float32Arith(a, b float32) float32 {
	return a*b + 1 // stays in float32; not flagged
}

func plainConversion(x float64) float32 {
	return float32(x) // no arithmetic was performed in float64
}

// Package metrics is the run-observability layer: dependency-free,
// deterministic instruments (Counter, Gauge, log2-bucket Histogram, Timer)
// collected in a Registry whose snapshots export as stable-sorted JSON.
//
// Determinism is a design constraint, not an afterthought. The training
// engine must stay bit-reproducible with metrics enabled, so instruments
// only ever *observe* values the run computes anyway — they never consume
// RNG draws, reorder float operations, or feed back into the model.
// Counters are integers (addition commutes, so concurrent workers cannot
// perturb totals), and Histograms store only integer bucket counts: every
// derived statistic (Sum, Mean, Quantile) is a pure function of the counts,
// which makes Merge exact, associative and order-independent — merging
// per-worker histograms in worker-index order is bit-identical to recording
// the same values single-threaded (see the property tests).
//
// Hot-path methods (Counter.Add, Gauge.Set, Histogram.Observe, Timer.Stop)
// are allocation-free and guarded by an AllocsPerRun budget test. A nil
// *Registry hands out nil instruments, and every instrument method is a
// no-op on a nil receiver, so instrumentation disables end to end at the
// cost of one pointer compare per site — call sites never nil-check.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. Safe for concurrent
// use; because integer addition commutes, totals are deterministic no matter
// how worker goroutines interleave.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n (no-op on a nil counter).
//
//hot:path
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on a nil counter).
//
//hot:path
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64 metric (loss, accuracy, tokens/sec).
// Safe for concurrent use; deterministic when set from one goroutine, which
// is how the training loop uses it (gauges are set after the ordered
// gradient reduce, never from inside worker shards).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil gauge).
//
//hot:path
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 before any Set or for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: NumBuckets fixed log2 buckets. Bucket 0 catches
// everything below 2^MinExp (including zero, negatives and NaN); bucket i in
// [1, NumBuckets-2] covers [2^(MinExp+i-1), 2^(MinExp+i)); the last bucket
// catches everything from 2^(MinExp+NumBuckets-2) up (including +Inf). The
// range 2^-20 .. 2^42 spans sub-microsecond phase timings in seconds up to
// trillions of cycles without configuration.
const (
	NumBuckets = 64
	MinExp     = -20
)

// Histogram is a fixed-geometry log2 histogram. It deliberately stores no
// raw-value accumulator: per-bucket integer counts are its entire state, so
// merging histograms is exact and order-independent, and a parallel run's
// merged histogram is bit-identical to a serial recording of the same
// values. Safe for concurrent use (one uncontended mutex per Observe; the
// engine still gives each worker its own histogram so snapshots attribute
// time per worker).
type Histogram struct {
	mu     sync.Mutex
	counts [NumBuckets]uint64
	total  uint64
}

// BucketIndex returns the bucket v falls into.
func BucketIndex(v float64) int {
	if !(v >= math.Ldexp(1, MinExp)) {
		return 0 // below range, zero, negative or NaN
	}
	i := math.Ilogb(v) - MinExp + 1 // Ilogb(+Inf) clamps below
	if i > NumBuckets-1 {
		i = NumBuckets - 1
	}
	return i
}

// BucketUpper returns the exclusive upper edge of bucket i (+Inf for the
// overflow bucket).
func BucketUpper(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, MinExp+i)
}

// BucketLower returns the inclusive lower edge of bucket i (-Inf for the
// underflow bucket).
func BucketLower(i int) float64 {
	if i <= 0 {
		return math.Inf(-1)
	}
	return math.Ldexp(1, MinExp+i-1)
}

// bucketMid is the representative value of bucket i used by Sum and
// Quantile: the geometric mean of the bucket edges for interior buckets, the
// upper edge for the underflow bucket (values there are at most 2^MinExp)
// and the lower edge for the overflow bucket.
func bucketMid(i int) float64 {
	switch {
	case i <= 0:
		return 0 // underflow holds zeros/negatives; count them as 0
	case i >= NumBuckets-1:
		return math.Ldexp(1, MinExp+NumBuckets-2)
	default:
		return math.Ldexp(math.Sqrt2, MinExp+i-1) // sqrt(lower*upper)
	}
}

// Observe records one value (no-op on a nil histogram).
//
//hot:path
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := BucketIndex(v)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of recorded values (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Counts returns a copy of the per-bucket counts (zero for a nil histogram).
func (h *Histogram) Counts() [NumBuckets]uint64 {
	if h == nil {
		return [NumBuckets]uint64{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counts
}

// Sum estimates the total of the recorded values from bucket
// representatives. Exact to within one log2 bucket (≤ ~6% relative error for
// interior values) and — unlike a float accumulator — a deterministic pure
// function of the counts, identical however the observations interleaved.
func (h *Histogram) Sum() float64 {
	counts := h.Counts()
	var s float64
	for i, n := range counts {
		if n != 0 {
			s += float64(n) * bucketMid(i)
		}
	}
	return s
}

// Mean is Sum over Count (0 when empty).
func (h *Histogram) Mean() float64 {
	counts := h.Counts()
	var s float64
	var n uint64
	for i, c := range counts {
		if c != 0 {
			s += float64(c) * bucketMid(i)
			n += c
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) as the representative value
// of the bucket holding the rank-⌈q·n⌉ observation. The estimate is always
// bounded by that bucket's edges: BucketLower(b) ≤ Quantile(q) ≤
// BucketUpper(b) where b is the bucket containing the true quantile (the
// property tests pin this). Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.Counts()
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range counts {
		cum += n
		if cum >= rank {
			if i == 0 {
				return BucketUpper(0) // underflow: bounded above by its edge
			}
			return bucketMid(i)
		}
	}
	return bucketMid(NumBuckets - 1)
}

// Merge folds o's counts into h and leaves o unchanged. Because the state is
// integer counts only, Merge is exact, associative and commutative; the
// training engine still merges per-worker histograms in ascending worker
// index for symmetry with its ordered gradient reduce.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	counts := o.Counts() // snapshot under o's lock; never hold two locks
	h.mu.Lock()
	for i, n := range counts {
		h.counts[i] += n
		h.total += n
	}
	h.mu.Unlock()
}

// Timer measures one phase into a Histogram of seconds. It is a value type:
// starting and stopping a timer allocates nothing, and a Timer started from
// a nil histogram is a no-op (the disabled-metrics fast path).
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing into h (h may be nil: the timer is then inert and
// does not even read the clock).
//
//hot:path
func StartTimer(h *Histogram) Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time and returns it (0 for an inert timer).
//
//hot:path
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}

// Package maporderpkg exercises the maporder analyzer.
package maporderpkg

import "sort"

// Counts is a named map type: ranging it is just as nondeterministic.
type Counts map[string]int

func rangeOverMaps(freq map[uint64]int, c Counts) int {
	total := 0
	for k, v := range freq { // want "range over map map\\[uint64\\]int"
		total += int(k) + v
	}
	for _, v := range c { // want "range over map Counts"
		total += v
	}
	return total
}

func sortedIteration(freq map[uint64]int) []uint64 {
	keys := make([]uint64, 0, len(freq))
	//lint:ignore maporder collecting keys for sorting is order-insensitive
	for k := range freq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys { // ranging the sorted slice is fine
		_ = freq[k]
	}
	return keys
}

func rangeOverSlice(xs []int) int {
	s := 0
	for _, v := range xs { // slices keep their order; not flagged
		s += v
	}
	return s
}

func suppressedTrailing(m map[int]int) {
	for k := range m { //lint:ignore maporder deleting every key is order-insensitive
		delete(m, k)
	}
}

package metrics

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSinkDisabled pins the all-off contract: no outputs requested means a
// nil sink whose registry is nil, so instrumented code takes its disabled
// path, and whose lifecycle methods are inert.
func TestSinkDisabled(t *testing.T) {
	s, err := Start(SinkOptions{Tool: "test"})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if s != nil {
		t.Fatalf("Start with no outputs = %v, want nil sink", s)
	}
	if reg := s.Registry(); reg != nil {
		t.Errorf("nil sink Registry() = %v, want nil", reg)
	}
	if addr := s.HTTPAddr(); addr != "" {
		t.Errorf("nil sink HTTPAddr() = %q, want empty", addr)
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil sink Close() = %v", err)
	}
}

// TestSinkFullLifecycle opens all three outputs, records through the sink's
// registry, and checks each artifact after Close: the NDJSON stream parses
// and ends with a snapshot holding the final counter value, the manifest
// records tool/seed/config and embeds the same final snapshot, and the
// HTTP endpoint serves while open.
func TestSinkFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	streamPath := filepath.Join(dir, "run.ndjson")
	manPath := filepath.Join(dir, "run.json")

	type cfg struct {
		Hidden int `json:"hidden"`
	}
	s, err := Start(SinkOptions{
		Tool:         "sinktest",
		Config:       cfg{Hidden: 64},
		Seed:         7,
		StreamPath:   streamPath,
		HTTPAddr:     "127.0.0.1:0",
		ManifestPath: manPath,
		FlushEvery:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	reg := s.Registry()
	if reg == nil {
		t.Fatal("enabled sink returned nil registry")
	}
	reg.Counter("sink_test_total").Add(42)

	addr := s.HTTPAddr()
	if addr == "" {
		t.Fatal("HTTPAddr empty with server requested")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	stream, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	snaps, err := ReadSnapshots(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("stream does not parse: %v", err)
	}
	if len(snaps) == 0 {
		t.Fatal("stream has no snapshots")
	}
	last := snaps[len(snaps)-1]
	if v, ok := last.Counter("sink_test_total"); !ok || v != 42 {
		t.Errorf("final stream snapshot sink_test_total = %d (%v), want 42", v, ok)
	}

	manData, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	m, err := ReadManifest(manData)
	if err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if m.Tool != "sinktest" || m.Seed != 7 {
		t.Errorf("manifest identity = %q/%d, want sinktest/7", m.Tool, m.Seed)
	}
	if m.GoVersion == "" || m.GOMAXPROCS < 1 || m.NumCPU < 1 || m.GitRef == "" {
		t.Errorf("manifest environment incomplete: %+v", m)
	}
	if m.StartTime == "" || m.EndTime == "" {
		t.Errorf("manifest times incomplete: start=%q end=%q", m.StartTime, m.EndTime)
	}
	if m.Final == nil {
		t.Fatal("manifest missing final snapshot")
	}
	if err := m.Final.Validate(); err != nil {
		t.Errorf("manifest final snapshot invalid: %v", err)
	}
	if v, ok := m.Final.Counter("sink_test_total"); !ok || v != 42 {
		t.Errorf("manifest final sink_test_total = %d (%v), want 42", v, ok)
	}
	if !strings.Contains(string(manData), `"hidden": 64`) {
		t.Errorf("manifest config not embedded:\n%s", manData)
	}
}

// TestSinkStreamOnly exercises the stream-only configuration and the
// stream+server error path (bad listen address must release the already
// opened stream file).
func TestSinkStreamOnly(t *testing.T) {
	dir := t.TempDir()
	streamPath := filepath.Join(dir, "only.ndjson")
	s, err := Start(SinkOptions{Tool: "t", StreamPath: streamPath})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if s.HTTPAddr() != "" {
		t.Errorf("HTTPAddr = %q with no server", s.HTTPAddr())
	}
	s.Registry().Gauge("g").Set(1.5)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(streamPath)
	if err != nil || len(data) == 0 {
		t.Fatalf("stream file empty or unreadable: %v", err)
	}

	if _, err := Start(SinkOptions{
		Tool:       "t",
		StreamPath: filepath.Join(dir, "errcase.ndjson"),
		HTTPAddr:   "256.256.256.256:0",
	}); err == nil {
		t.Fatal("Start with unlistenable address succeeded")
	}
}

// TestSinkStartErrors pins the failure modes: an unwritable stream path and
// an unlistenable HTTP address both fail Start.
func TestSinkStartErrors(t *testing.T) {
	if _, err := Start(SinkOptions{StreamPath: filepath.Join(t.TempDir(), "no", "such", "dir", "x.ndjson")}); err == nil {
		t.Error("Start with unwritable stream path succeeded")
	}
	if _, err := Start(SinkOptions{HTTPAddr: "256.256.256.256:0"}); err == nil {
		t.Error("Start with unlistenable address succeeded")
	}
}

// TestManifestGitRef covers the resolver on synthetic .git layouts:
// detached HEAD, a symbolic ref with a loose ref file, a packed-only ref,
// and no repository at all.
func TestManifestGitRef(t *testing.T) {
	hash := "0123456789abcdef0123456789abcdef01234567"

	detached := t.TempDir()
	mustWrite(t, filepath.Join(detached, ".git", "HEAD"), hash+"\n")
	if got := GitRef(detached); got != hash {
		t.Errorf("detached GitRef = %q, want %q", got, hash)
	}

	loose := t.TempDir()
	mustWrite(t, filepath.Join(loose, ".git", "HEAD"), "ref: refs/heads/main\n")
	mustWrite(t, filepath.Join(loose, ".git", "refs", "heads", "main"), hash+"\n")
	// Resolution must also work from a subdirectory of the tree.
	sub := filepath.Join(loose, "internal", "deep")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if got := GitRef(sub); got != hash {
		t.Errorf("loose-ref GitRef = %q, want %q", got, hash)
	}

	packed := t.TempDir()
	mustWrite(t, filepath.Join(packed, ".git", "HEAD"), "ref: refs/heads/main\n")
	mustWrite(t, filepath.Join(packed, ".git", "packed-refs"),
		"# pack-refs with: peeled fully-peeled sorted\n"+hash+" refs/heads/main\n")
	if got := GitRef(packed); got != hash {
		t.Errorf("packed-ref GitRef = %q, want %q", got, hash)
	}

	// A symbolic ref that resolves nowhere still names the branch.
	dangling := t.TempDir()
	mustWrite(t, filepath.Join(dangling, ".git", "HEAD"), "ref: refs/heads/ghost\n")
	if got := GitRef(dangling); got != "refs/heads/ghost" {
		t.Errorf("dangling-ref GitRef = %q, want refs/heads/ghost", got)
	}

	if got := GitRef(filepath.Join(t.TempDir())); got != "unknown" {
		t.Errorf("no-repo GitRef = %q, want unknown", got)
	}
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

package nn

import (
	"fmt"
	"math/rand"

	"voyager/internal/tensor"
)

// Embedding maps integer ids to learned dense vectors. Gradients are
// row-sparse: only rows looked up in a batch are updated.
type Embedding struct {
	Table *Param
	Dim   int
}

// NewEmbedding creates a vocab×dim embedding table initialized with
// Glorot-uniform noise.
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	p := NewSparseParam(name, vocab, dim)
	p.W.Glorot(rng)
	return &Embedding{Table: p, Dim: dim}
}

// Vocab returns the number of rows in the table.
func (e *Embedding) Vocab() int { return e.Table.W.Rows }

// ShadowClone returns an embedding sharing this one's weights but writing
// gradients into its own buffer (see Param.ShadowClone).
func (e *Embedding) ShadowClone() *Embedding {
	return &Embedding{Table: e.Table.ShadowClone(), Dim: e.Dim}
}

// Lookup gathers rows ids from the table as a len(ids)×dim node. The
// backward pass scatter-adds output gradients into the touched rows. The
// caller must keep ids unchanged until Backward completes (the hot path
// reuses its id buffers only across batches, never within one).
func (e *Embedding) Lookup(tp *tensor.Tape, ids []int) *tensor.Node {
	out := tp.NewMat(len(ids), e.Dim)
	for r, id := range ids {
		if id < 0 || id >= e.Table.W.Rows {
			panic(fmt.Sprintf("nn: embedding %s lookup id %d out of range [0,%d)", e.Table.Name, id, e.Table.W.Rows))
		}
		copy(out.Row(r), e.Table.W.Row(id))
	}
	return tp.Custom(out, true, func(n *tensor.Node) {
		for r, id := range ids {
			grow := e.Table.Grad.Row(id)
			for i, v := range n.Grad.Row(r) {
				grow[i] += v
			}
			e.Table.Touch(id)
		}
	})
}

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W *Param
	B *Param
}

// NewLinear creates an in×out linear layer (Glorot weights, zero bias).
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	w := NewParam(name+".w", in, out)
	w.W.Glorot(rng)
	b := NewParam(name+".b", 1, out)
	return &Linear{W: w, B: b}
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ShadowClone returns a linear layer sharing this one's weights but writing
// gradients into its own buffers (see Param.ShadowClone).
func (l *Linear) ShadowClone() *Linear {
	return &Linear{W: l.W.ShadowClone(), B: l.B.ShadowClone()}
}

// Forward applies the layer to x (batch×in), producing batch×out.
func (l *Linear) Forward(tp *tensor.Tape, x *tensor.Node) *tensor.Node {
	return tp.AddBias(tp.MatMul(x, l.W.Node(tp)), l.B.Node(tp))
}

// ForwardSampled computes logits only for the selected output columns —
// the sampled-softmax/BCE trick that makes training tractable when the
// output vocabulary is large (only the label columns plus a handful of
// random negatives need gradients). Returns a batch×len(cols) node.
func (l *Linear) ForwardSampled(tp *tensor.Tape, x *tensor.Node, cols []int) *tensor.Node {
	in := l.W.W.Rows
	outFull := l.W.W.Cols
	batch := x.Val.Rows
	for _, c := range cols {
		if c < 0 || c >= outFull {
			panic(fmt.Sprintf("nn: ForwardSampled column %d out of range [0,%d)", c, outFull))
		}
	}
	out := tp.NewMat(batch, len(cols))
	w := l.W.W
	bias := l.B.W.Row(0)
	// Gather the sampled columns into a transposed len(cols)×in scratch so
	// the dot products below read memory sequentially; the seed kernel's
	// outFull-strided walk thrashes cache on large vocabulary heads. The
	// per-element summation order is unchanged, so results are bit-identical.
	// cols must stay unchanged until Backward completes.
	wcols := tp.NewMat(len(cols), in)
	for j, c := range cols {
		wrow := wcols.Row(j)
		for k := 0; k < in; k++ {
			wrow[k] = w.Data[k*outFull+c]
		}
	}
	for b := 0; b < batch; b++ {
		xrow := x.Val.Row(b)
		orow := out.Row(b)
		for j := range cols {
			s := bias[cols[j]]
			wrow := wcols.Row(j)
			for k, xv := range xrow {
				s += xv * wrow[k]
			}
			orow[j] = s
		}
	}
	return tp.Custom(out, true, func(n *tensor.Node) {
		xg := x.EnsureGrad()
		wg := l.W.Grad
		bg := l.B.Grad.Row(0)
		// Accumulate weight gradients in the transposed scratch, then
		// scatter-add once per (column, k) — same order over the batch as
		// the strided kernel, so the sums are bit-identical when the
		// gradient region starts zeroed (it does: Adam clears per step).
		wgcols := tp.NewMat(len(cols), in)
		for b := 0; b < batch; b++ {
			xrow := x.Val.Row(b)
			xgrow := xg.Row(b)
			grow := n.Grad.Row(b)
			for j, c := range cols {
				g := grow[j]
				if g == 0 {
					continue
				}
				bg[c] += g
				wrow := wcols.Row(j)
				wgrow := wgcols.Row(j)
				for k, xv := range xrow {
					xgrow[k] += g * wrow[k]
					wgrow[k] += g * xv
				}
			}
		}
		for j, c := range cols {
			wgrow := wgcols.Row(j)
			for k, v := range wgrow {
				if v != 0 {
					wg.Data[k*outFull+c] += v
				}
			}
		}
	})
}

// LSTM is a single-layer LSTM cell (Hochreiter & Schmidhuber). Gate layout
// in the 4H-wide projections is [input, forget, cell, output].
type LSTM struct {
	In, Hidden int
	Wx         *Param // In×4H
	Wh         *Param // Hidden×4H
	B          *Param // 1×4H

	// Unfused routes Step through the node-per-op formulation instead of
	// the fused tensor.LSTMCell kernel. The two paths are bit-identical;
	// this is a test hook for the differential suite, not a tuning knob.
	Unfused bool
}

// NewLSTM creates an LSTM cell with Glorot weights and forget-gate bias 1
// (standard practice to ease gradient flow early in training).
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		Wx:     NewParam(name+".wx", in, 4*hidden),
		Wh:     NewParam(name+".wh", hidden, 4*hidden),
		B:      NewParam(name+".b", 1, 4*hidden),
	}
	l.Wx.W.Glorot(rng)
	l.Wh.W.Glorot(rng)
	for c := hidden; c < 2*hidden; c++ {
		l.B.W.Set(0, c, 1)
	}
	return l
}

// Params returns the cell's trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// ShadowClone returns an LSTM cell sharing this one's weights but writing
// gradients into its own buffers (see Param.ShadowClone).
func (l *LSTM) ShadowClone() *LSTM {
	return &LSTM{
		In:      l.In,
		Hidden:  l.Hidden,
		Wx:      l.Wx.ShadowClone(),
		Wh:      l.Wh.ShadowClone(),
		B:       l.B.ShadowClone(),
		Unfused: l.Unfused,
	}
}

// State holds the recurrent hidden and cell activations for one batch.
type State struct {
	H *tensor.Node
	C *tensor.Node
}

// ZeroState returns an all-zero initial state for the given batch size,
// backed by the tape's arena.
func (l *LSTM) ZeroState(tp *tensor.Tape, batch int) State {
	return State{
		H: tp.Const(tp.NewMat(batch, l.Hidden)),
		C: tp.Const(tp.NewMat(batch, l.Hidden)),
	}
}

// Step advances the cell one timestep with input x (batch×In) and the
// previous state, returning the new state. The gate projection is three tape
// nodes; the activations, cell update and hidden output are one fused
// tensor.LSTMCell node (bit-identical to StepUnfused's node chain).
func (l *LSTM) Step(tp *tensor.Tape, x *tensor.Node, s State) State {
	if l.Unfused {
		return l.StepUnfused(tp, x, s)
	}
	gates := tp.AddBias(
		tp.Add(tp.MatMul(x, l.Wx.Node(tp)), tp.MatMul(s.H, l.Wh.Node(tp))),
		l.B.Node(tp),
	)
	h, c := tp.LSTMCell(gates, s.C)
	return State{H: h, C: c}
}

// StepUnfused is the pre-fusion formulation of Step — 4 SliceCols copies, 4
// activation nodes and 3 element-wise nodes per call. It is kept as the
// differential-test oracle for the fused kernel.
func (l *LSTM) StepUnfused(tp *tensor.Tape, x *tensor.Node, s State) State {
	gates := tp.AddBias(
		tp.Add(tp.MatMul(x, l.Wx.Node(tp)), tp.MatMul(s.H, l.Wh.Node(tp))),
		l.B.Node(tp),
	)
	h := l.Hidden
	i := tp.Sigmoid(tp.SliceCols(gates, 0, h))
	f := tp.Sigmoid(tp.SliceCols(gates, h, 2*h))
	g := tp.Tanh(tp.SliceCols(gates, 2*h, 3*h))
	o := tp.Sigmoid(tp.SliceCols(gates, 3*h, 4*h))
	c := tp.Add(tp.Mul(f, s.C), tp.Mul(i, g))
	hOut := tp.Mul(o, tp.Tanh(c))
	return State{H: hOut, C: c}
}

// Run unrolls the cell over a sequence of inputs, returning the final state.
func (l *LSTM) Run(tp *tensor.Tape, xs []*tensor.Node) State {
	if len(xs) == 0 {
		panic("nn: LSTM.Run with empty sequence")
	}
	s := l.ZeroState(tp, xs[0].Val.Rows)
	for _, x := range xs {
		s = l.Step(tp, x, s)
	}
	return s
}

// Dropout applies inverted dropout with the given keep probability when
// train is true; at inference it is the identity. Randomness comes from the
// caller's rng so runs are reproducible.
func Dropout(tp *tensor.Tape, x *tensor.Node, keep float32, rng *rand.Rand, train bool) *tensor.Node {
	if !train || keep >= 1 {
		return x
	}
	if keep <= 0 {
		panic("nn: Dropout keep probability must be positive")
	}
	// The mask comes from the tape arena, so each worker reuses one buffer
	// per shape across steps instead of allocating a fresh Mat per call.
	mask := tp.NewMat(x.Val.Rows, x.Val.Cols)
	inv := 1 / keep
	for i := range mask.Data {
		if rng.Float32() < keep {
			mask.Data[i] = inv
		}
	}
	return tp.DropoutMask(x, mask)
}

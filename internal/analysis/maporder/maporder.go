// Package maporder flags `for … range` over map values in
// determinism-critical packages.
//
// Go randomizes map iteration order, so any map range on a path that feeds
// float32 summation, vocabulary construction, or label selection makes two
// identical runs diverge — the exact failure mode Voyager's reproducibility
// guarantees (bit-identical training at a fixed worker count) cannot
// tolerate. The fix is to iterate a sorted key slice (see
// internal/sortkeys); provably order-insensitive loops (e.g. zeroing
// disjoint rows) may instead carry
//
//	//lint:ignore maporder <why the loop is order-insensitive>
package maporder

import (
	"go/ast"
	"go/types"

	"voyager/internal/analysis"
)

// New returns the analyzer restricted to the given package import paths.
func New(critical ...string) *analysis.Analyzer {
	crit := make(map[string]bool, len(critical))
	for _, c := range critical {
		crit[c] = true
	}
	return &analysis.Analyzer{
		Name: "maporder",
		Doc:  "flags range-over-map in determinism-critical packages",
		Run: func(pass *analysis.Pass) {
			// Production invariant: test files (and external test
			// packages) assert determinism rather than provide it.
			if pass.Pkg.IsTest || !crit[pass.Pkg.Path] {
				pass.SkipPackage()
				return
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					t := pass.TypeOf(rs.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(rs.For, "range over map %s: iteration order is nondeterministic in a determinism-critical package; iterate sorted keys (internal/sortkeys) or add //lint:ignore maporder <reason> if provably order-insensitive", types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
					}
					return true
				})
			}
		},
	}
}

package errflow_test

import (
	"testing"

	"voyager/internal/analysis/analysistest"
	"voyager/internal/analysis/errflow"
)

func TestErrFlow(t *testing.T) {
	dir := "testdata/src/errflowpkg"
	analysistest.Run(t, errflow.New([]string{analysistest.PkgPath(dir)}, errflow.DefaultCalls), dir)
}

func TestErrFlowSkipsUnscopedPackages(t *testing.T) {
	dir := "testdata/src/errflowpkg"
	a := errflow.New([]string{"some/other/pkg", "some/tree/..."}, errflow.DefaultCalls)
	if got := analysistest.Findings(t, a, dir); len(got) != 0 {
		t.Fatalf("expected no findings outside scoped packages, got %v", got)
	}
}

func TestErrFlowPrefixPattern(t *testing.T) {
	dir := "testdata/src/errflowpkg"
	// tdpkg/... must match the testdata package via the prefix rule used
	// for voyager/cmd/... in production.
	a := errflow.New([]string{"tdpkg/..."}, errflow.DefaultCalls)
	if got := analysistest.Findings(t, a, dir); len(got) == 0 {
		t.Fatal("prefix pattern tdpkg/... matched nothing")
	}
}

package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// workerStreams is the quick-generated shape of a data-parallel run: up to
// eight workers, each with its own observation stream. Values arrive as raw
// float64 bit patterns so the generator covers NaN, infinities, subnormals
// and negatives, not just quick's tame finite floats.
type workerStreams struct {
	Bits [][]uint64
}

func (ws workerStreams) values() [][]float64 {
	out := make([][]float64, 0, 8)
	for i, w := range ws.Bits {
		if i == 8 {
			break
		}
		vals := make([]float64, 0, 64)
		for j, b := range w {
			if j == 64 {
				break
			}
			vals = append(vals, math.Float64frombits(b))
		}
		out = append(out, vals)
	}
	return out
}

// TestHistogramMergeEqualsSingleThreaded: merging per-worker histograms in
// ascending worker index is bit-identical to one histogram recording the
// same streams single-threaded in that order. This is the determinism
// contract the parallel training engine relies on — per-worker timing
// histograms can be folded into one view without perturbing anything.
func TestHistogramMergeEqualsSingleThreaded(t *testing.T) {
	f := func(ws workerStreams) bool {
		streams := ws.values()
		merged := &Histogram{}
		serial := &Histogram{}
		for _, stream := range streams {
			w := &Histogram{}
			for _, v := range stream {
				w.Observe(v)
				serial.Observe(v)
			}
			merged.Merge(w)
		}
		if merged.Counts() != serial.Counts() || merged.Count() != serial.Count() {
			return false
		}
		// Derived statistics are pure functions of the counts, so they must
		// agree bit-for-bit too.
		return merged.Sum() == serial.Sum() &&
			merged.Mean() == serial.Mean() &&
			merged.Quantile(0.5) == serial.Quantile(0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramMergeAssociativeAndCommutative: (a⊕b)⊕c = a⊕(b⊕c) and
// a⊕b = b⊕a, exactly — integer bucket counts make the merge a true monoid,
// so any reduce tree over worker histograms yields the same result.
func TestHistogramMergeAssociativeAndCommutative(t *testing.T) {
	record := func(vals []float64) *Histogram {
		h := &Histogram{}
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	f := func(ws workerStreams) bool {
		streams := ws.values()
		for len(streams) < 3 {
			streams = append(streams, nil)
		}
		a, b, c := streams[0], streams[1], streams[2]

		left := record(a) // (a ⊕ b) ⊕ c
		left.Merge(record(b))
		left.Merge(record(c))

		bc := record(b) // a ⊕ (b ⊕ c)
		bc.Merge(record(c))
		right := record(a)
		right.Merge(bc)

		ba := record(b) // b ⊕ a
		ba.Merge(record(a))
		ab := record(a)
		ab.Merge(record(b))

		return left.Counts() == right.Counts() && ab.Counts() == ba.Counts()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramQuantileBoundedByBucketEdges: for every q, the estimate lies
// within the edges of the bucket that contains the true q-quantile of the
// recorded values.
func TestHistogramQuantileBoundedByBucketEdges(t *testing.T) {
	f := func(ws workerStreams, qBits uint16) bool {
		var vals []float64
		for _, stream := range ws.values() {
			vals = append(vals, stream...)
		}
		if len(vals) == 0 {
			return true
		}
		h := &Histogram{}
		for _, v := range vals {
			h.Observe(v)
		}
		q := float64(qBits) / math.MaxUint16
		// True quantile: the rank-⌈q·n⌉ element under the histogram's own
		// ordering (bucket index, which totally orders NaN/negatives into
		// bucket 0 and +Inf into the top bucket).
		sort.Slice(vals, func(i, j int) bool {
			bi, bj := BucketIndex(vals[i]), BucketIndex(vals[j])
			return bi < bj
		})
		rank := int(math.Ceil(q * float64(len(vals))))
		if rank == 0 {
			rank = 1
		}
		trueQ := vals[rank-1]
		b := BucketIndex(trueQ)
		est := h.Quantile(q)
		return BucketLower(b) <= est && est <= BucketUpper(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramCountConservation: every observation lands in exactly one
// bucket — total count equals observations, for arbitrary bit patterns.
func TestHistogramCountConservation(t *testing.T) {
	f := func(bits []uint64) bool {
		h := &Histogram{}
		for _, b := range bits {
			h.Observe(math.Float64frombits(b))
		}
		counts := h.Counts()
		var sum uint64
		for _, n := range counts {
			sum += n
		}
		return sum == uint64(len(bits)) && h.Count() == uint64(len(bits))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

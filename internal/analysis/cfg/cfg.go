// Package cfg builds intraprocedural control-flow graphs over go/ast and
// runs forward dataflow analyses over them to fixpoint.
//
// The PR-3 analyzers are AST/type walkers: they can say "this expression is
// a map range" but not "this error is dead on the early-return path" or
// "this WaitGroup balance differs between the two arms of that if". The
// invariants added since — single-writer-plus-atomic-publish in tracing,
// checksummed save/load in distill, zero-alloc kernel dispatch in tensor —
// are all *flow* properties, so this package adds the missing layer while
// keeping the framework dependency-free (go/ast + go/types only, no
// golang.org/x/tools).
//
// The model is deliberately small:
//
//   - A Graph is a list of basic Blocks; Blocks[0] is the entry and
//     Blocks[1] the synthetic exit. Statements are appended whole to their
//     block (analyzers walk them with cfg.Inspect, which does not descend
//     into nested func literals — those are separate functions).
//   - Branch/loop/switch/select/goto/labeled statements produce edges;
//     return edges to exit; panic/os.Exit/log.Fatal terminate a block with
//     no successors, so error-handling tails are provably exit-unreachable
//     (ReachesExit) and analyzers can treat them as cold.
//   - defer is recorded both in its block (position, order) and in
//     Graph.Defers, because deferred calls execute at every function exit
//     regardless of the path that reached it.
//
// Forward[F] is the generic fixpoint engine: an analyzer supplies a join
// (the lattice's least upper bound), a per-block transfer function, and an
// equality test; Run iterates a worklist in deterministic block order until
// the facts stabilize. See errflow (error liveness), hotalloc (allocation
// reachability) and waitleak (WaitGroup balance) for the three lattice
// shapes in production.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line statement sequence.
type Block struct {
	// Index is the block's position in Graph.Blocks; analyzers iterate in
	// Index order so diagnostics are deterministic.
	Index int
	// Nodes holds the block's statements (and loop/switch condition
	// expressions) in execution order. Walk them with cfg.Inspect.
	Nodes []ast.Node
	// Succs are the control-flow successors. A block ending in return has
	// the exit block as its only successor; a block ending in panic or
	// os.Exit has none.
	Succs []*Block

	// reachesExit and reachable are computed once at Build time.
	reachesExit bool
	reachable   bool
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every basic block; Blocks[0] is the entry, Blocks[1]
	// the synthetic exit (always present, possibly unreachable for
	// functions that cannot return, e.g. `for {}`).
	Blocks []*Block
	// Defers holds the function's defer statements in source order. They
	// run at every exit, so path-sensitive analyzers apply them when a
	// path reaches the exit block.
	Defers []*ast.DeferStmt
}

// Entry returns the function entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// Exit returns the synthetic exit block reached by every return and by
// falling off the end of the body.
func (g *Graph) Exit() *Block { return g.Blocks[1] }

// Reachable reports whether b is reachable from the entry (dead code after
// an unconditional return/panic is not).
func (g *Graph) Reachable(b *Block) bool { return b.reachable }

// ReachesExit reports whether some path from b reaches the function exit.
// Blocks whose every path ends in panic/os.Exit/log.Fatal do not; analyzers
// use this to treat terminating error tails as cold paths.
func (g *Graph) ReachesExit(b *Block) bool { return b.reachesExit }

// Inspect walks n in depth-first order like ast.Inspect but does not
// descend into *ast.FuncLit bodies: a nested function literal is a separate
// function with its own CFG, and its statements must not be attributed to
// the enclosing block.
func Inspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		return f(m)
	})
}

// Build constructs the CFG for a function body. fn must be an
// *ast.FuncDecl or *ast.FuncLit; a nil body (declaration without a Go
// implementation) yields a two-block graph with an entry→exit edge.
func Build(fn ast.Node) *Graph {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	default:
		panic("cfg: Build wants *ast.FuncDecl or *ast.FuncLit")
	}
	b := &builder{g: &Graph{}, labels: map[string]*labelBlocks{}}
	entry := b.newBlock()
	exit := b.newBlock()
	b.exit = exit
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		b.edge(b.cur, exit)
	}
	g := b.g
	g.computeReach()
	return g
}

// labelBlocks tracks the targets a label can be branched to.
type labelBlocks struct {
	// goto/entry target: the labeled statement's own block.
	target *Block
	// break/continue targets when the labeled statement is a loop, switch
	// or select; nil otherwise.
	brk, cont *Block
}

type builder struct {
	g    *Graph
	cur  *Block // current block; nil while statements are unreachable
	exit *Block

	labels map[string]*labelBlocks
	// innermost-first stacks of break/continue targets.
	breaks    []*Block
	continues []*Block
	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels, so `break L` / `continue L` resolve.
	pendingLabel *labelBlocks
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block (dropping it when unreachable).
func (b *builder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// startBlock makes blk current, linking from the previous block when the
// previous statement can fall through.
func (b *builder) startBlock(blk *Block) {
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		if condBlk != nil {
			b.edge(condBlk, thenBlk)
		}
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			elseBlk := b.newBlock()
			if condBlk != nil {
				b.edge(condBlk, elseBlk)
			}
			b.cur = elseBlk
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else if condBlk != nil {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, after)
		}
		b.edge(head, body)
		b.pushLoop(after, post, s)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.popLoop()
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.add(s.X)
		b.startBlock(head)
		// The per-iteration key/value assignment belongs to the body.
		b.edge(head, body)
		b.edge(head, after)
		b.pushLoop(after, head, s)
		b.cur = body
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, s, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, s, nil)

	case *ast.SelectStmt:
		b.caseClauses(s.Body.List, s, nil)

	case *ast.LabeledStmt:
		// A forward goto may have created the label's block already;
		// adopt it so the earlier edge lands here.
		lb := b.labels[s.Label.Name]
		if lb == nil {
			lb = &labelBlocks{target: b.newBlock()}
			b.labels[s.Label.Name] = lb
		}
		b.startBlock(lb.target)
		b.pendingLabel = lb
		b.stmt(s.Stmt)
		b.pendingLabel = nil

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s.Label, true); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, false); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			if s.Label != nil {
				lb := b.labels[s.Label.Name]
				if lb == nil {
					// Forward goto: create the label's block now; the
					// LabeledStmt case will adopt it.
					lb = &labelBlocks{target: b.newBlock()}
					b.labels[s.Label.Name] = lb
				}
				if b.cur != nil {
					b.edge(b.cur, lb.target)
				}
			}
		case token.FALLTHROUGH:
			// Handled by caseClauses via fallsThrough; keep the edge to
			// the next clause there.
			return
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.edge(b.cur, b.exit)
		}
		b.cur = nil

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.cur = nil
		}

	default:
		// Assignments, declarations, go statements, sends, inc/dec,
		// empty statements: straight-line code.
		b.add(s)
	}
}

// caseClauses builds the shared shape of switch/type-switch/select: the
// current block fans out to one block per clause (plus the after block when
// no default clause exists), and every clause falls through to after unless
// it terminates. fallthrough in an expression switch chains into the next
// clause's body.
func (b *builder) caseClauses(clauses []ast.Stmt, stmt ast.Stmt, _ *Block) {
	head := b.cur
	after := b.newBlock()
	b.pushSwitch(after, stmt)

	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
		if head != nil {
			b.edge(head, bodies[i])
		}
	}
	for i, c := range clauses {
		var list []ast.Stmt
		var isDefault bool
		switch c := c.(type) {
		case *ast.CaseClause:
			isDefault = c.List == nil
			b.cur = bodies[i]
			for _, e := range c.List {
				b.add(e)
			}
			list = c.Body
		case *ast.CommClause:
			isDefault = c.Comm == nil
			b.cur = bodies[i]
			if c.Comm != nil {
				b.stmt(c.Comm)
			}
			list = c.Body
		}
		if isDefault {
			hasDefault = true
		}
		fellThrough := false
		for _, s := range list {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(bodies) && b.cur != nil {
					b.edge(b.cur, bodies[i+1])
					fellThrough = true
				}
				b.cur = nil
				continue
			}
			b.stmt(s)
		}
		if b.cur != nil && !fellThrough {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault && head != nil {
		// A select with no default blocks rather than skipping, but some
		// clause always runs eventually; for switches the no-match path
		// skips every clause. Either way after is reachable from head.
		b.edge(head, after)
	}
	b.popSwitch()
	b.cur = after
}

func (b *builder) pushLoop(brk, cont *Block, _ ast.Stmt) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel.cont = cont
		b.pendingLabel = nil
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushSwitch(brk *Block, _ ast.Stmt) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, nil) // continue skips switches
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel = nil
	}
}

func (b *builder) popSwitch() { b.popLoop() }

// branchTarget resolves break (isBreak) or continue to its target block.
func (b *builder) branchTarget(label *ast.Ident, isBreak bool) *Block {
	if label != nil {
		lb := b.labels[label.Name]
		if lb == nil {
			return nil
		}
		if isBreak {
			return lb.brk
		}
		return lb.cont
	}
	stack := b.continues
	if isBreak {
		stack = b.breaks
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != nil {
			return stack[i]
		}
	}
	return nil
}

// isTerminatingCall reports whether a call never returns: panic, os.Exit,
// log.Fatal*, runtime.Goexit, and testing's t.Fatal/t.Fatalf/t.Skip by
// method name. The match is syntactic (a shadowed `os` would fool it);
// that is acceptable for a best-effort cold-path classifier — a miss only
// makes an analyzer conservative, never wrong about reachable code.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		sel := fun.Sel.Name
		if pkg, ok := fun.X.(*ast.Ident); ok {
			switch pkg.Name + "." + sel {
			case "os.Exit", "runtime.Goexit",
				"log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
		switch sel {
		case "Fatal", "Fatalf", "FailNow", "SkipNow", "Skipf", "Skip":
			// testing.TB-style terminators; matching by name keeps the
			// builder type-free and misfires are harmless (see above).
			return true
		}
	}
	return false
}

// computeReach fills in Reachable (forward from entry) and ReachesExit
// (backward from exit) for every block.
func (g *Graph) computeReach() {
	// Forward reachability.
	var stack []*Block
	g.Entry().reachable = true
	stack = append(stack, g.Entry())
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !s.reachable {
				s.reachable = true
				stack = append(stack, s)
			}
		}
	}
	// Backward reachability needs predecessor lists; build them locally.
	preds := make(map[*Block][]*Block)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	g.Exit().reachesExit = true
	stack = append(stack[:0], g.Exit())
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[b] {
			if !p.reachesExit {
				p.reachesExit = true
				stack = append(stack, p)
			}
		}
	}
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveMatMul(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

func matsClose(t *testing.T, name string, got, want *Mat, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		d := math.Abs(float64(got.Data[i] - want.Data[i]))
		if d > tol {
			t.Fatalf("%s: element %d: got %v want %v (|Δ|=%g)", name, i, got.Data[i], want.Data[i], d)
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {64, 48, 80}, {130, 70, 90}}
	for _, s := range shapes {
		a := randMat(rng, s[0], s[1])
		b := randMat(rng, s[1], s[2])
		got := MatMul(nil, a, b)
		want := naiveMatMul(a, b)
		matsClose(t, "MatMul", got, want, 1e-3)
	}
}

func TestMatMulATransB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 33, 17) // aᵀ is 17x33
	b := randMat(rng, 33, 21)
	got := MatMulATransB(nil, a, b)
	at := NewMat(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := naiveMatMul(at, b)
	matsClose(t, "MatMulATransB", got, want, 1e-3)
}

func TestMatMulABTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 19, 23)
	b := randMat(rng, 31, 23) // bᵀ is 23x31
	got := MatMulABTrans(nil, a, b)
	bt := NewMat(b.Cols, b.Rows)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := naiveMatMul(a, bt)
	matsClose(t, "MatMulABTrans", got, want, 1e-3)
}

func TestMatMulLargeParallelPath(t *testing.T) {
	// Large enough to take the parallelRows path.
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 100, 90)
	b := randMat(rng, 90, 110)
	matsClose(t, "parallel MatMul", MatMul(nil, a, b), naiveMatMul(a, b), 1e-3)
}

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At/Set roundtrip failed")
	}
	if got := m.Row(1)[2]; got != 5 {
		t.Fatalf("Row slice view: got %v", got)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatalf("Clone aliases original")
	}
	m.Fill(2)
	m.ScaleInPlace(3)
	if m.At(0, 0) != 6 {
		t.Fatalf("Fill+Scale: got %v", m.At(0, 0))
	}
	o := NewMat(2, 3)
	o.Fill(1)
	m.AddInPlace(o)
	if m.At(1, 1) != 7 {
		t.Fatalf("AddInPlace: got %v", m.At(1, 1))
	}
	m.AxpyInPlace(2, o)
	if m.At(1, 1) != 9 {
		t.Fatalf("AxpyInPlace: got %v", m.At(1, 1))
	}
	if m.MaxAbs() != 9 {
		t.Fatalf("MaxAbs: got %v", m.MaxAbs())
	}
}

func TestFromSliceAndString(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Fatalf("FromSlice layout wrong")
	}
	if s := m.String(); s == "" {
		t.Fatalf("String empty")
	}
	big := NewMat(20, 20)
	if s := big.String(); s != "Mat(20x20)" {
		t.Fatalf("large String: %q", s)
	}
}

func TestShapePanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(nil, NewMat(2, 3), NewMat(4, 2)) },
		func() { NewMat(2, 2).AddInPlace(NewMat(3, 3)) },
		func() { FromSlice(2, 2, []float32{1}) },
		func() { NewMat(-1, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestGlorotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMat(30, 50)
	m.Glorot(rng)
	limit := float32(math.Sqrt(6.0 / 80.0))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Glorot value %v outside ±%v", v, limit)
		}
	}
	// Not all zero.
	if m.MaxAbs() == 0 {
		t.Fatalf("Glorot produced all zeros")
	}
}

// Property: (A·B)·C == A·(B·C) within float tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMat(r, 1+r.Intn(8), 1+r.Intn(8))
		b := randMat(r, a.Cols, 1+r.Intn(8))
		c := randMat(r, b.Cols, 1+r.Intn(8))
		left := MatMul(nil, MatMul(nil, a, b), c)
		right := MatMul(nil, a, MatMul(nil, b, c))
		for i := range left.Data {
			if math.Abs(float64(left.Data[i]-right.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax rows sum to 1 and are non-negative.
func TestSoftmaxRowsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randMat(r, 1+r.Intn(6), 1+r.Intn(20))
		// Include extreme values to exercise stability.
		if len(m.Data) > 2 {
			m.Data[0] = 100
			m.Data[1] = -100
		}
		sm := SoftmaxRows(m)
		for row := 0; row < sm.Rows; row++ {
			var sum float64
			for _, v := range sm.Row(row) {
				if v < 0 || math.IsNaN(float64(v)) {
					return false
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randMat(rng, 128, 128)
	y := randMat(rng, 128, 128)
	dst := NewMat(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

func BenchmarkMatMulATransB128(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randMat(rng, 128, 128)
	y := randMat(rng, 128, 128)
	dst := NewMat(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulATransB(dst, x, y)
	}
}

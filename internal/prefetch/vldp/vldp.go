// Package vldp implements a Variable Length Delta Prefetcher (Shevgoor et
// al., MICRO 2015), the paper's Eq. 7 delta-history predictor: per page,
// the last few line deltas form a variable-length history key; delta
// prediction tables of increasing history length are probed longest-first,
// so stable multi-delta patterns beat single-delta noise.
package vldp

import "voyager/internal/trace"

// MaxHistory is the longest delta history used as a key (the original
// design uses up to 4 deltas across its DPTs).
const MaxHistory = 3

type pageState struct {
	lastLine uint64
	history  [MaxHistory]int64 // most recent first
	primed   int
}

// Prefetcher is a VLDP-style delta predictor.
type Prefetcher struct {
	Degree int

	pages map[uint64]*pageState
	// dpt[k] maps a history of length k+1 (packed) to the next delta.
	dpt [MaxHistory]map[[MaxHistory]int64]int64
}

// New returns a VLDP prefetcher with the given degree.
func New(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	p := &Prefetcher{Degree: degree, pages: make(map[uint64]*pageState)}
	for k := range p.dpt {
		p.dpt[k] = make(map[[MaxHistory]int64]int64)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "vldp" }

// key builds a table key from the first n history deltas.
func key(h [MaxHistory]int64, n int) [MaxHistory]int64 {
	var k [MaxHistory]int64
	copy(k[:n], h[:n])
	return k
}

// Access trains the delta-prediction tables for the access's page and
// predicts by probing longest history first.
func (p *Prefetcher) Access(_ int, a trace.Access) []uint64 {
	line := trace.Line(a.Addr)
	page := trace.Page(a.Addr)
	st, ok := p.pages[page]
	if !ok {
		st = &pageState{lastLine: line}
		p.pages[page] = st
		return nil
	}
	delta := int64(line) - int64(st.lastLine)
	st.lastLine = line
	if delta != 0 {
		// Train every history length with the observed next delta.
		for n := 1; n <= st.primed && n <= MaxHistory; n++ {
			p.dpt[n-1][key(st.history, n)] = delta
		}
		// Shift the new delta into the history.
		copy(st.history[1:], st.history[:MaxHistory-1])
		st.history[0] = delta
		if st.primed < MaxHistory {
			st.primed++
		}
	}

	// Predict a chain of future deltas, longest-history match first.
	out := make([]uint64, 0, p.Degree)
	h := st.history
	primed := st.primed
	cur := int64(line)
	for k := 0; k < p.Degree; k++ {
		var next int64
		found := false
		for n := min(primed, MaxHistory); n >= 1; n-- {
			if d, ok := p.dpt[n-1][key(h, n)]; ok {
				next = d
				found = true
				break
			}
		}
		if !found {
			break
		}
		cur += next
		if cur < 0 {
			break
		}
		out = append(out, uint64(cur)<<trace.LineBits)
		copy(h[1:], h[:MaxHistory-1])
		h[0] = next
		if primed < MaxHistory {
			primed++
		}
	}
	return out
}

// Entries returns the total delta-prediction-table entries.
func (p *Prefetcher) Entries() int {
	n := len(p.pages)
	for k := range p.dpt {
		n += len(p.dpt[k])
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// The admission queue and batcher: model-tier requests are posted to a
// buffered channel; one batcher goroutine coalesces them into PredictBatch
// calls.
//
// Batching policy: the batcher blocks for the first request, then fills the
// batch from the queue until it holds MaxBatch rows or MaxWait has elapsed
// since the first row was taken (MaxWait 0 = greedy: take whatever is
// already buffered and run immediately). Under saturation the timer never
// fires — the queue refills faster than inference drains it and batches run
// full; under light load a lone request pays at most MaxWait of added
// latency. Because inference is row-independent, the policy affects only
// latency, never results (the batching-invariance test drives the same
// streams through disparate MaxBatch/MaxWait settings and byte-compares).
package serve

import (
	"time"

	"voyager/internal/trace"
	"voyager/internal/voyager"
)

// pending is one queued model-tier request: a snapshot of the stream's
// token window plus the trigger line needed to decode candidates. The
// handler blocks on reply (buffered, capacity 1, so the batcher never
// blocks answering).
//
// A shadow pending is a fast-tier request re-run through the model for
// drift detection: it has no reply channel (nobody is waiting), carries the
// fast tier's top-1 address, and the batcher records agreement instead of
// answering. A traced pending carries the client's span id so the batcher
// can mark the batch on the request's cross-process timeline.
type pending struct {
	row   []tok3 // seqLen triples, oldest first
	line  uint64 // trigger cache line
	enq   time.Time
	reply chan []voyager.Candidate

	traced bool
	spanID uint64

	shadow  bool
	fastTop uint64 // fast tier's top-1 prefetch address (0 = none)
}

// batchLoop is the single goroutine that talks to the model. It exits when
// Close closes the queue, after answering everything still buffered.
func (s *Server) batchLoop() {
	defer s.loops.Done()
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	tb := voyager.NewTokenBatch(s.seqLen)
	pcs := make([]int32, s.seqLen)
	pages := make([]int32, s.seqLen)
	offs := make([]int32, s.seqLen)
	var timer *time.Timer
	for {
		p, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], p)
		if s.cfg.MaxWait > 0 {
			if timer == nil {
				timer = time.NewTimer(s.cfg.MaxWait)
			} else {
				timer.Reset(s.cfg.MaxWait)
			}
		collect:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case q, ok := <-s.queue:
					if !ok {
						break collect // drained; run what we have, exit next
					}
					batch = append(batch, q)
				case <-timer.C:
					break collect
				}
			}
			if !timer.Stop() {
				select { // drain a fired timer so Reset starts clean
				case <-timer.C:
				default:
				}
			}
		} else {
		greedy:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case q, ok := <-s.queue:
					if !ok {
						break greedy
					}
					batch = append(batch, q)
				default:
					break greedy
				}
			}
		}
		s.runBatch(batch, tb, pcs, pages, offs)
	}
}

// runBatch runs one coalesced PredictBatch call and answers each request.
func (s *Server) runBatch(batch []*pending, tb *voyager.TokenBatch, pcs, pages, offs []int32) {
	now := time.Now()
	for _, p := range batch {
		s.obs.queueWait.Observe(now.Sub(p.enq).Seconds())
	}
	s.obs.batches.Inc()
	s.obs.batchRows.Add(uint64(len(batch)))
	s.obs.batchFill.Observe(float64(len(batch)))

	sp := s.obs.batchTk.Begin("predict_batch")
	tb.Reset()
	for _, p := range batch {
		if p.traced {
			s.obs.rpcBatchTk.AsyncInstant("srv_batch", p.spanID)
		}
		for i, t := range p.row {
			pcs[i], pages[i], offs[i] = t.pc, t.page, t.off
		}
		tb.Add(pcs, pages, offs)
	}
	cands := s.cfg.Model.PredictTokenBatch(tb, s.degree)
	sp.End()

	for i, p := range batch {
		if p.shadow {
			// Drift check: does the model's top-1 agree with what the fast
			// tier already answered? No reply — nobody is waiting.
			var modelTop uint64
			if cs := cands[i]; len(cs) > 0 {
				if ln, ok := s.voc.Decode(p.line, cs[0].PageTok, cs[0].OffTok); ok {
					modelTop = ln << trace.LineBits
				}
			}
			s.cfg.Quality.RecordShadow(modelTop == p.fastTop)
			continue
		}
		p.reply <- cands[i] // buffered; never blocks
	}
}

package voyager

import (
	"bytes"
	"testing"

	"voyager/internal/vocab"
)

// A trained model's weights must survive a save/load roundtrip into a
// freshly constructed model: identical predictions on identical inputs.
func TestWeightsRoundtripPreservesPredictions(t *testing.T) {
	cycle := []uint64{100, 203, 310, 417}
	tr := cyclicTrace(cycle, 200)
	cfg := FastConfig()
	cfg.EpochAccesses = 400
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	var buf bytes.Buffer
	if err := p.SaveWeights(&buf); err != nil {
		t.Fatalf("SaveWeights: %v", err)
	}

	// Rebuild the model from scratch (deterministic vocabulary) and load.
	voc := vocab.Build(tr, cfg.vocabOptions())
	fresh := NewModel(cfg, voc)
	if err := fresh.LoadWeights(&buf); err != nil {
		t.Fatalf("LoadWeights: %v", err)
	}

	seqs := p.buildBatch([]int{500, 501, 502})
	want := p.Model.PredictBatch(seqs, 2)
	got := fresh.PredictBatch(seqs, 2)
	for b := range want {
		if len(want[b]) != len(got[b]) {
			t.Fatalf("row %d candidate counts differ", b)
		}
		for k := range want[b] {
			if want[b][k].PageTok != got[b][k].PageTok || want[b][k].OffTok != got[b][k].OffTok {
				t.Fatalf("row %d candidate %d differs: %+v vs %+v", b, k, want[b][k], got[b][k])
			}
		}
	}
}

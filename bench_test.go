// Package bench provides one testing.B benchmark per paper artifact
// (DESIGN.md §3): each benchmark regenerates its table/figure at a reduced
// scale and reports wall time, so `go test -bench=. -benchmem` exercises
// the entire reproduction pipeline. Full-scale artifacts come from
// `go run ./cmd/experiments -run all`.
package bench

import (
	"testing"

	"voyager/internal/experiments"
	"voyager/internal/prefetch/isb"
	"voyager/internal/prefetch/stms"
	"voyager/internal/sim"
	"voyager/internal/trace"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

// benchOpts returns a small but non-trivial harness scale: big enough that
// the shapes (who wins) are visible, small enough to run in seconds.
func benchOpts(benches ...string) experiments.Options {
	o := experiments.TestOptions()
	o.Accesses = 12_000
	o.Benchmarks = benches
	return o
}

func BenchmarkTable2Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("astar", "bfs", "cc", "pr"))
		if got := r.Table2(); len(got.Rows) != 4 {
			b.Fatalf("rows = %d", len(got.Rows))
		}
	}
}

func BenchmarkFigure5Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("cc"))
		if s := r.Main().Figure5(); s == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure6Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("soplex"))
		if s := r.Main().Figure6(); s == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure7Unified(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("search"))
		if f := r.Figure7(); len(f.Rows) != 1 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkFigure8IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("mcf"))
		if s := r.Main().Figure8(); s == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure9Degree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("cc"))
		if f := r.Figure9(); len(f.Degrees) != 4 {
			b.Fatal("degrees")
		}
	}
}

func BenchmarkFigure1011Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("mcf"))
		if f := r.Figure1011(); len(f.ISB) != 1 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkFigure12Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("cc"))
		if f := r.Figure12(); len(f.Rows) != 1 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkFigure15Labels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("cc"))
		if f := r.Figure15(); len(f.Rows) != 1 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkFigure17Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts())
		if f := r.Figure17(); f.VoyagerFP32 == 0 {
			b.Fatal("sizes")
		}
	}
}

func BenchmarkDeltaStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts())
		if d := r.DeltaStudy(); d.With.Benchmark == "" {
			b.Fatal("empty")
		}
	}
}

// --- Component micro-benchmarks -------------------------------------------

func ccTrace(b *testing.B, n int) *trace.Trace {
	b.Helper()
	tr, err := workloads.Generate("cc", workloads.Config{Seed: 1, Scale: 1, MaxAccesses: n})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ccTrace(b, 20_000)
	}
}

func BenchmarkSimulatorNoPrefetch(b *testing.B) {
	tr := ccTrace(b, 20_000)
	cfg := sim.ScaledConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Simulate(tr, isb.NewIdeal(1), cfg)
	}
}

func BenchmarkTablePrefetcherAccess(b *testing.B) {
	tr := ccTrace(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := stms.New(1)
		for j, a := range tr.Accesses {
			p.Access(j, a)
		}
	}
}

func BenchmarkVoyagerTrainSmall(b *testing.B) {
	tr := ccTrace(b, 6_000)
	cfg := voyager.FastConfig()
	cfg.EpochAccesses = 1_500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := voyager.Train(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

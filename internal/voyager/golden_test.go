package voyager

import (
	"bytes"
	"hash/fnv"
	"testing"

	"voyager/internal/metrics"
	"voyager/internal/tracing"
)

// Golden fixed-seed outputs captured from the pre-arena, pre-fusion
// implementation (commit bc334f1). The arena tape, the fused LSTM cell and
// the in-place gradient kernels are all required to preserve per-element
// float32 operation order, so end-to-end training must stay bit-identical:
// same epoch losses, same predictions, at every worker count.
var goldenLosses = map[int][]float32{
	1: {0.19748633, 0.18969719, 0.18703955, 0.18488663},
	4: {0.19796471, 0.19005823, 0.18713123, 0.1853421},
}

const goldenPredHash = uint64(0x841f3e64aba880a3)

// goldenRun trains the fixed-seed cyclic trace and returns the epoch
// losses, an FNV hash of every prediction, and an FNV hash of the trained
// weights. reg optionally attaches the observability registry, tracer the
// span tracer, and prov the provenance log — none of which may change any
// of the three outputs.
func goldenRun(t *testing.T, workers int, unfused bool, reg *metrics.Registry,
	tracer *tracing.Tracer, prov *tracing.DecisionLog) ([]float32, uint64, uint64) {
	t.Helper()
	cycle := []uint64{0x10<<6 | 5, 0x22<<6 | 61, 0x15<<6 | 0, 0x9<<6 | 33,
		0x30<<6 | 7, 0x11<<6 | 12, 0x28<<6 | 50, 0x3<<6 | 18}
	tr := cyclicTrace(cycle, 500)
	cfg := FastConfig()
	cfg.EpochAccesses = 1000
	cfg.Workers = workers
	cfg.UnfusedLSTM = unfused
	cfg.Metrics = reg
	cfg.Trace = tracer
	cfg.Provenance = prov
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("workers=%d unfused=%v: %v", workers, unfused, err)
	}
	var h uint64 = 1469598103934665603
	for _, preds := range p.Predictions() {
		for _, a := range preds {
			h ^= a
			h *= 1099511628211
		}
	}
	hw := fnv.New64a()
	if err := p.SaveWeights(hw); err != nil {
		t.Fatalf("workers=%d: SaveWeights: %v", workers, err)
	}
	return p.EpochLosses(), h, hw.Sum64()
}

// TestGoldenEquivalenceFixedSeed locks end-to-end training to the values the
// pre-optimization implementation produced: epoch losses and the FNV hash of
// every prediction must match bit-for-bit at 1 and 4 workers, on both the
// fused and the unfused LSTM path.
func TestGoldenEquivalenceFixedSeed(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, unfused := range []bool{false, true} {
			losses, h, _ := goldenRun(t, workers, unfused, nil, nil, nil)
			want := goldenLosses[workers]
			if len(losses) != len(want) {
				t.Fatalf("workers=%d unfused=%v: %d epochs, want %d (losses %v)",
					workers, unfused, len(losses), len(want), losses)
			}
			for i := range want {
				if losses[i] != want[i] {
					t.Fatalf("workers=%d unfused=%v: epoch %d loss %v, want %v (bit-identical)",
						workers, unfused, i, losses[i], want[i])
				}
			}
			if h != goldenPredHash {
				t.Fatalf("workers=%d unfused=%v: prediction hash %#x, want %#x",
					workers, unfused, h, goldenPredHash)
			}
		}
	}
}

// TestGoldenMetricsDifferential is the observability layer's differential
// guarantee, in two parts. First, at each worker count a metrics-enabled run
// must be bit-identical to the metrics-disabled run: same epoch losses, same
// prediction hash, same trained weights — instruments observe, they never
// perturb. Second, the protocol-level counters (steps, samples, tokens,
// epochs, predict batches) must be identical across worker counts: sharding
// a batch changes RNG streams and float summation order (hence the separate
// goldenLosses per width) but never how much work the protocol does.
func TestGoldenMetricsDifferential(t *testing.T) {
	counterNames := []string{
		"train_steps_total", "train_samples_total", "train_tokens_total",
		"train_epochs_total", "predict_batches_total",
	}
	totals := map[int]map[string]uint64{}
	for _, workers := range []int{1, 4} {
		offLosses, offPred, offWeights := goldenRun(t, workers, false, nil, nil, nil)
		reg := metrics.NewRegistry()
		onLosses, onPred, onWeights := goldenRun(t, workers, false, reg, nil, nil)

		if len(onLosses) != len(offLosses) {
			t.Fatalf("workers=%d: %d epochs with metrics, %d without", workers, len(onLosses), len(offLosses))
		}
		for i := range offLosses {
			if onLosses[i] != offLosses[i] {
				t.Fatalf("workers=%d: epoch %d loss %v with metrics, %v without (must be bit-identical)",
					workers, i, onLosses[i], offLosses[i])
			}
		}
		if onPred != offPred {
			t.Fatalf("workers=%d: prediction hash %#x with metrics, %#x without", workers, onPred, offPred)
		}
		if onWeights != offWeights {
			t.Fatalf("workers=%d: weight hash %#x with metrics, %#x without", workers, onWeights, offWeights)
		}

		snap := reg.Snapshot()
		if err := snap.Validate(); err != nil {
			t.Fatalf("workers=%d: snapshot invalid: %v", workers, err)
		}
		totals[workers] = map[string]uint64{}
		for _, name := range counterNames {
			v, ok := snap.Counter(name)
			if !ok || v == 0 {
				t.Fatalf("workers=%d: counter %s missing or zero", workers, name)
			}
			totals[workers][name] = v
		}
		// Every optimizer step times at least one shard, and shard timings
		// from all workers account for at least one observation per step.
		var shardObs uint64
		for _, h := range snap.Histograms {
			if len(h.Name) > len("train_shard_seconds.") && h.Name[:len("train_shard_seconds.")] == "train_shard_seconds." {
				shardObs += h.Count
			}
		}
		if steps := totals[workers]["train_steps_total"]; shardObs < steps {
			t.Fatalf("workers=%d: %d shard observations for %d steps", workers, shardObs, steps)
		}
	}
	for _, name := range counterNames {
		if totals[1][name] != totals[4][name] {
			t.Fatalf("counter %s: %d at workers=1, %d at workers=4 (protocol totals must not depend on sharding)",
				name, totals[1][name], totals[4][name])
		}
	}
}

// TestGoldenTraceDifferential extends the differential guarantee to the
// execution-span tracer and the provenance log: at each worker count a run
// with both attached must be bit-identical to the bare run, the logical-mode
// export must be byte-identical across two identical runs (span tracing's
// reproducibility claim, at the library level), the timeline must validate,
// and every recorded decision must carry a stream-valid trigger index.
func TestGoldenTraceDifferential(t *testing.T) {
	for _, workers := range []int{1, 4} {
		offLosses, offPred, offWeights := goldenRun(t, workers, false, nil, nil, nil)

		traced := func() ([]byte, *tracing.DecisionLog, []float32, uint64, uint64) {
			tracer := tracing.New(tracing.Options{Logical: true})
			prov := tracing.NewDecisionLog("golden")
			losses, pred, weights := goldenRun(t, workers, false, nil, tracer, prov)
			return tracer.Export(), prov, losses, pred, weights
		}
		export1, prov, onLosses, onPred, onWeights := traced()
		export2, _, _, _, _ := traced()

		for i := range offLosses {
			if onLosses[i] != offLosses[i] {
				t.Fatalf("workers=%d: epoch %d loss %v with tracing, %v without (must be bit-identical)",
					workers, i, onLosses[i], offLosses[i])
			}
		}
		if onPred != offPred || onWeights != offWeights {
			t.Fatalf("workers=%d: hashes with tracing (%#x, %#x) differ from bare run (%#x, %#x)",
				workers, onPred, onWeights, offPred, offWeights)
		}

		if !bytes.Equal(export1, export2) {
			t.Fatalf("workers=%d: logical exports of identical runs differ", workers)
		}
		st, err := tracing.ValidateBytes(export1)
		if err != nil {
			t.Fatalf("workers=%d: training timeline invalid: %v", workers, err)
		}
		if st.Spans == 0 {
			t.Fatalf("workers=%d: no spans recorded", workers)
		}
		// One wall-clock process ("train") with main + one row per worker.
		if st.Processes != 1 || st.Threads != workers+1 {
			t.Fatalf("workers=%d: %d processes / %d threads, want 1 / %d",
				workers, st.Processes, st.Threads, workers+1)
		}

		if prov.Len() == 0 {
			t.Fatalf("workers=%d: no decisions recorded", workers)
		}
		for _, d := range prov.Decisions() {
			if d.Index < 1000 || d.Index >= 4000 {
				t.Fatalf("workers=%d: decision index %d outside the predicted range [1000, 4000)",
					workers, d.Index)
			}
		}
		// The cyclic trace is perfectly predictable: the stamped scheme masks
		// must show at least some decisions matched by a labeling scheme.
		matched := 0
		for _, d := range prov.Decisions() {
			if d.Schemes != 0 {
				matched++
			}
		}
		if matched == 0 {
			t.Fatalf("workers=%d: no decision matched any labeling scheme on a cyclic trace", workers)
		}
	}
}

package tensor

import (
	"math/rand"
	"testing"
)

// Reset must recycle matrix buffers: the same backing array comes back for a
// same-size request, possibly reshaped, and NewMat returns it zeroed.
func TestArenaRecyclesBuffers(t *testing.T) {
	tp := NewTape()
	a := tp.NewMat(3, 4)
	for i := range a.Data {
		a.Data[i] = float32(i + 1)
	}
	tp.Reset()
	b := tp.NewMat(2, 6) // same element count, different shape
	if &b.Data[0] != &a.Data[0] {
		t.Fatalf("expected recycled backing array")
	}
	if b.Rows != 2 || b.Cols != 6 {
		t.Fatalf("reshape failed: %dx%d", b.Rows, b.Cols)
	}
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("recycled matrix not zeroed at %d: %v", i, v)
		}
	}
}

// Buffers of different sizes live on separate freelists.
func TestArenaSizeKeyedFreelist(t *testing.T) {
	tp := NewTape()
	small := tp.NewMat(2, 2)
	big := tp.NewMat(8, 8)
	tp.Reset()
	if got := tp.NewMat(8, 8); &got.Data[0] != &big.Data[0] {
		t.Fatalf("64-element request did not reuse the 64-element buffer")
	}
	if got := tp.NewMat(2, 2); &got.Data[0] != &small.Data[0] {
		t.Fatalf("4-element request did not reuse the 4-element buffer")
	}
}

// A full forward+backward step must stop allocating matrices once the arena
// is warm: the only steady-state allocations left are the backward closures
// (one small heap object per recorded op), so the budget is a handful of
// allocations instead of the hundreds of kilobytes of fresh Mats the
// pre-arena tape burned per step.
func TestArenaSteadyStateAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randMat(rng, 8, 16)
	w := randMat(rng, 16, 16)
	grad := NewMat(16, 16)
	tp := NewTape()
	step := func() {
		tp.Reset()
		grad.Zero()
		wn := tp.Param(w)
		wn.Grad = grad
		y := tp.Tanh(tp.MatMul(tp.Const(x), wn))
		h, _ := tp.LSTMCell(tp.ConcatCols(y, y, y, y), tp.Const(tp.NewMat(8, 16)))
		tp.Backward(tp.MeanAll(h))
	}
	step() // warm the arena
	// 5 recorded ops (MatMul, Tanh, ConcatCols, LSTMCell, MeanAll) → 5
	// closures plus ConcatCols' parents copy; allow a little slack.
	if allocs := testing.AllocsPerRun(10, step); allocs > 8 {
		t.Fatalf("steady-state tape step allocates %v times, want ≤8 (closures only)", allocs)
	}
}

// Node pointers handed out before more nodes are allocated must stay valid:
// the node arena grows in chunks, never by reallocating existing storage.
func TestArenaNodePointerStability(t *testing.T) {
	tp := NewTape()
	first := tp.Const(NewMat(1, 1))
	first.Val.Data[0] = 42
	for i := 0; i < 10*nodeBlockSize; i++ {
		tp.Const(NewMat(1, 1))
	}
	if first.Val.Data[0] != 42 {
		t.Fatalf("early node corrupted by arena growth")
	}
}

// Leaves are not recorded; recorded count resets with the tape.
func TestArenaResetClearsRecording(t *testing.T) {
	tp := NewTape()
	a := tp.Param(NewMat(2, 2))
	tp.Tanh(a)
	if tp.Len() != 1 {
		t.Fatalf("len=%d, want 1", tp.Len())
	}
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatalf("len after Reset=%d, want 0", tp.Len())
	}
}

package nn

import (
	"math/rand"
	"testing"

	"voyager/internal/tensor"
)

// TestLSTMStepFusedMatchesUnfused unrolls a multi-step sequence through the
// fused Step and the StepUnfused oracle on identical weights and inputs, and
// demands bit-identical hidden states and parameter gradients. This is the
// layer-level differential guarantee the voyager golden test relies on.
func TestLSTMStepFusedMatchesUnfused(t *testing.T) {
	const in, hidden, batch, steps = 6, 5, 4, 3

	run := func(unfused bool) ([]float32, [][]float32) {
		rng := rand.New(rand.NewSource(33))
		l := NewLSTM("diff", in, hidden, rng)
		l.Unfused = unfused
		xs := make([]*tensor.Mat, steps)
		for s := range xs {
			xs[s] = tensor.NewMat(batch, in)
			xs[s].Uniform(rng, 1)
		}
		tp := tensor.NewTape()
		state := l.ZeroState(tp, batch)
		for _, x := range xs {
			state = l.Step(tp, tp.Const(x), state)
		}
		loss := tp.MeanAll(tp.Tanh(state.H))
		tp.Backward(loss)
		grads := make([][]float32, 0, 3)
		for _, p := range l.Params() {
			grads = append(grads, append([]float32(nil), p.Grad.Data...))
		}
		return append([]float32(nil), state.H.Val.Data...), grads
	}

	fH, fG := run(false)
	uH, uG := run(true)
	for i := range fH {
		if fH[i] != uH[i] {
			t.Fatalf("h[%d]: fused %v vs unfused %v (must be bit-identical)", i, fH[i], uH[i])
		}
	}
	for p := range fG {
		for i := range fG[p] {
			if fG[p][i] != uG[p][i] {
				t.Fatalf("param %d grad[%d]: fused %v vs unfused %v (must be bit-identical)",
					p, i, fG[p][i], uG[p][i])
			}
		}
	}
}

// ShadowClone must propagate the Unfused test hook so data-parallel replicas
// stay on the same code path as the primary.
func TestShadowClonePropagatesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	l := NewLSTM("clone", 3, 2, rng)
	l.Unfused = true
	if !l.ShadowClone().Unfused {
		t.Fatalf("ShadowClone dropped Unfused")
	}
}

package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestPruneMagnitude(t *testing.T) {
	p := NewParam("w", 1, 10)
	for i := range p.W.Data {
		p.W.Data[i] = float32(i + 1) // magnitudes 1..10
	}
	var s ParamSet
	s.Add(p)
	zeroed := s.PruneMagnitude(0.5)
	if zeroed != 5 {
		t.Fatalf("zeroed %d, want 5", zeroed)
	}
	// The five smallest must be gone, the five largest intact.
	for i := 0; i < 5; i++ {
		if p.W.Data[i] != 0 {
			t.Fatalf("small weight %d survived", i)
		}
	}
	for i := 5; i < 10; i++ {
		if p.W.Data[i] == 0 {
			t.Fatalf("large weight %d pruned", i)
		}
	}
	if s.NonZero() != 5 {
		t.Fatalf("NonZero = %d", s.NonZero())
	}
	if s.CompressedBytes(8) != 5 {
		t.Fatalf("CompressedBytes(8) = %d", s.CompressedBytes(8))
	}
}

func TestPruneEdgeCases(t *testing.T) {
	p := NewParam("w", 1, 4)
	p.W.Fill(1)
	var s ParamSet
	s.Add(p)
	if s.PruneMagnitude(0) != 0 {
		t.Fatalf("frac 0 pruned something")
	}
	s.PruneMagnitude(2) // clamped to 1
	if s.NonZero() != 0 {
		t.Fatalf("frac>1 should prune everything")
	}
}

func TestQuantizePreservesZerosAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewParam("w", 4, 8)
	p.W.Uniform(rng, 1)
	p.W.Data[3] = 0 // a pruned weight
	var s ParamSet
	s.Add(p)
	before := p.W.Clone()
	s.Quantize(8)
	if p.W.Data[3] != 0 {
		t.Fatalf("quantization destroyed a pruned zero")
	}
	var maxErr float64
	mn, mx := before.Data[0], before.Data[0]
	for _, v := range before.Data {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	step := float64(mx-mn) / 255
	for i := range p.W.Data {
		if before.Data[i] == 0 {
			continue
		}
		e := math.Abs(float64(p.W.Data[i] - before.Data[i]))
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > step {
		t.Fatalf("quantization error %v exceeds one step %v", maxErr, step)
	}
}

func TestQuantizeNoOpCases(t *testing.T) {
	p := NewParam("w", 1, 3)
	p.W.Fill(2.5) // constant tensor: mx == mn
	var s ParamSet
	s.Add(p)
	s.Quantize(8)
	if p.W.Data[0] != 2.5 {
		t.Fatalf("constant tensor changed")
	}
	s.Quantize(0)  // invalid bits: no-op
	s.Quantize(64) // invalid bits: no-op
	if p.W.Data[0] != 2.5 {
		t.Fatalf("invalid-bits quantization changed data")
	}
}

// Compression must not destroy a trained model's behaviour: quantizing a
// converged toy regressor to 8 bits keeps predictions close.
func TestCompressionPreservesFunction(t *testing.T) {
	p := NewParam("w", 1, 4)
	target := []float32{1, -2, 3, 0.5}
	opt := NewAdam(0.05)
	for step := 0; step < 400; step++ {
		for i := range p.W.Data {
			p.Grad.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	var s ParamSet
	s.Add(p)
	s.Quantize(8)
	for i, want := range target {
		if math.Abs(float64(p.W.Data[i]-want)) > 0.1 {
			t.Fatalf("post-quantization w[%d]=%v, want ~%v", i, p.W.Data[i], want)
		}
	}
}

package oracle

import (
	"testing"

	"voyager/internal/trace"
)

func mkTrace(lines ...uint64) *trace.Trace {
	tr := &trace.Trace{Name: "t"}
	for i, l := range lines {
		tr.Append(1, l<<trace.LineBits, uint64(i+1))
	}
	return tr
}

func TestOraclePredictsNextLoads(t *testing.T) {
	tr := mkTrace(1, 2, 3, 4, 5)
	p := New(tr, 2, 1)
	out := p.Access(0, tr.Accesses[0])
	if len(out) != 2 || trace.Line(out[0]) != 2 || trace.Line(out[1]) != 3 {
		t.Fatalf("oracle degree-2: %v", out)
	}
	// Near the end: fewer predictions.
	out = p.Access(4, tr.Accesses[4])
	if len(out) != 0 {
		t.Fatalf("past-end prediction: %v", out)
	}
}

func TestOracleLookahead(t *testing.T) {
	tr := mkTrace(1, 2, 3, 4, 5)
	p := New(tr, 1, 3)
	out := p.Access(0, tr.Accesses[0])
	if len(out) != 1 || trace.Line(out[0]) != 4 {
		t.Fatalf("lookahead-3: %v", out)
	}
}

func TestOracleDedupsRepeats(t *testing.T) {
	tr := mkTrace(1, 2, 2, 2, 3)
	p := New(tr, 2, 1)
	out := p.Access(0, tr.Accesses[0])
	if len(out) != 2 || trace.Line(out[0]) != 2 || trace.Line(out[1]) != 3 {
		t.Fatalf("dedup: %v", out)
	}
}

func TestOracleOutOfRange(t *testing.T) {
	tr := mkTrace(1, 2)
	p := New(tr, 1, 1)
	if out := p.Access(99, tr.Accesses[0]); out != nil {
		t.Fatalf("out-of-range access predicted %v", out)
	}
	if p.Name() != "oracle" {
		t.Fatalf("name")
	}
}

// Command tracecheck validates Chrome trace-event JSON files produced by
// internal/tracing (the -trace-out flag of voyager/simrun/experiments):
// metadata-named processes and threads, strict begin/end span nesting, and
// async begin/end pairing by (pid, cat, id). Exit 0 means the file loads
// cleanly in Perfetto; verify.sh runs it on a real traced run.
//
// With -merge, the inputs are unified into one timeline (processes merged
// by name, so a replay client's RPC spans and the daemon's RPC marks pair
// up) and written to the given path after validation.
//
// Usage:
//
//	go run ./cmd/tracecheck run.trace.json [more.json ...]
//	go run ./cmd/tracecheck -merge combined.json client.json server.json
package main

import (
	"flag"
	"fmt"
	"os"

	"voyager/internal/tracing"
)

func main() {
	mergeOut := flag.String("merge", "", "merge the input traces into one timeline written to this `path`")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-merge out.json] <trace.json> [...]")
		os.Exit(2)
	}
	fail := false
	inputs := make([][]byte, 0, flag.NArg())
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			fail = true
			continue
		}
		inputs = append(inputs, data)
		st, err := tracing.ValidateBytes(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			fail = true
			continue
		}
		fmt.Printf("%s: ok — %d events (%d spans, %d async, %d instants) across %d processes / %d threads\n",
			path, st.Events, st.Spans, st.AsyncSpans, st.Instants, st.Processes, st.Threads)
	}
	if fail {
		os.Exit(1)
	}
	if *mergeOut != "" {
		merged, err := tracing.Merge(inputs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck: merge:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*mergeOut, merged, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		st, err := tracing.ValidateBytes(merged)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: merged %s: %v\n", *mergeOut, err)
			os.Exit(1)
		}
		fmt.Printf("%s: merged %d inputs — %d events (%d spans, %d async, %d instants) across %d processes / %d threads\n",
			*mergeOut, len(inputs), st.Events, st.Spans, st.AsyncSpans, st.Instants, st.Processes, st.Threads)
	}
}

// Package stms implements an idealized STMS prefetcher (Wenisch et al.,
// HPCA 2009): temporal streaming over the *global* access stream. STMS
// learns P(Addr_{t+1} | Addr_t) — pairwise correlation of consecutive
// lines — with unbounded, zero-latency metadata per the paper's §5.1
// idealized-baseline methodology.
package stms

import "voyager/internal/trace"

// Prefetcher is an idealized STMS.
type Prefetcher struct {
	// Degree is the number of lines prefetched per trigger (successor
	// chain length).
	Degree int

	succ     map[uint64]uint64 // line → most recent global successor
	prevLine uint64
	primed   bool
}

// New returns an STMS prefetcher with the given degree (≥1).
func New(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &Prefetcher{Degree: degree, succ: make(map[uint64]uint64)}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "stms" }

// Access trains on the global stream and predicts by walking the successor
// chain from the current line.
func (p *Prefetcher) Access(_ int, a trace.Access) []uint64 {
	line := trace.Line(a.Addr)
	if p.primed {
		p.succ[p.prevLine] = line
	}
	p.prevLine = line
	p.primed = true

	var out []uint64
	cur := line
	for k := 0; k < p.Degree; k++ {
		next, ok := p.succ[cur]
		if !ok {
			break
		}
		out = append(out, next<<trace.LineBits)
		cur = next
	}
	return out
}

// Entries returns the number of correlation-table entries (for the §5.4
// storage comparison; idealized STMS keeps one successor per line).
func (p *Prefetcher) Entries() int { return len(p.succ) }

package eval

import (
	"math"
	"testing"

	"voyager/internal/prefetch"
	"voyager/internal/trace"
)

func mkTrace(lines ...uint64) *trace.Trace {
	tr := &trace.Trace{Name: "t"}
	for i, l := range lines {
		tr.Append(1, l<<trace.LineBits, uint64(i+1))
	}
	return tr
}

func preds(m map[int]uint64, n int) [][]uint64 {
	out := make([][]uint64, n)
	for i, l := range m {
		out[i] = []uint64{l << trace.LineBits}
	}
	return out
}

func TestUnifiedStrictWindow(t *testing.T) {
	tr := mkTrace(1, 2, 3, 4)
	// Predict correctly at 0 and 2, wrong at 1, nothing at 3.
	p := preds(map[int]uint64{0: 2, 1: 99, 2: 4}, 4)
	got := Unified(tr, p, 1, 0)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("unified = %v, want 0.5", got)
	}
}

func TestUnifiedWindowCreditsNearFuture(t *testing.T) {
	tr := mkTrace(1, 2, 3, 4, 5)
	// At access 0 predict line 4 (three steps ahead).
	p := preds(map[int]uint64{0: 4}, 5)
	if got := Unified(tr, p, 1, 0); got != 0 {
		t.Fatalf("window 1 should not credit: %v", got)
	}
	if got := Unified(tr, p, 5, 0); got != 0.2 {
		t.Fatalf("window 5 should credit 1/5: %v", got)
	}
}

func TestUnifiedSkip(t *testing.T) {
	tr := mkTrace(1, 2, 3, 4)
	p := preds(map[int]uint64{2: 4}, 4)
	if got := Unified(tr, p, 1, 2); got != 0.5 {
		t.Fatalf("skip=2: %v, want 0.5 (1 of 2)", got)
	}
	if got := Unified(tr, p, 1, 10); got != 0 {
		t.Fatalf("skip beyond end: %v", got)
	}
}

func TestCollectPredictions(t *testing.T) {
	tr := mkTrace(7, 8, 9)
	pf := prefetch.Func{Label: "echo", Fn: func(i int, a trace.Access) []uint64 {
		return []uint64{a.Addr}
	}}
	got := CollectPredictions(tr, pf)
	if len(got) != 3 || trace.Line(got[1][0]) != 8 {
		t.Fatalf("collect: %v", got)
	}
}

func TestBreakdownCategories(t *testing.T) {
	// Construct a trace exercising each category:
	//   1,2 warmup; then: 3 (spatial of 2), 5000 (other after reuse),
	//   5000 again → covered via prediction, 9999 (compulsory).
	tr := mkTrace(1, 2, 3, 5000, 2, 3, 5000, 9999)
	p := make([][]uint64, tr.Len())
	// Predict access 6 (5000) from access 5 (3).
	p[5] = []uint64{5000 << trace.LineBits}
	res := Breakdown(tr, p, 1, 1)
	if res.Frac[Covered] == 0 {
		t.Fatalf("expected covered fraction, got %+v", res)
	}
	if res.Frac[UncoveredCompulsory] == 0 {
		t.Fatalf("expected compulsory fraction (line 9999), got %+v", res)
	}
	if res.Frac[UncoveredSpatial] == 0 {
		t.Fatalf("expected spatial fraction, got %+v", res)
	}
	var sum float64
	for _, f := range res.Frac {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if res.Coverage() != res.Frac[Covered] {
		t.Fatalf("Coverage accessor mismatch")
	}
}

func TestBreakdownCoOccurrence(t *testing.T) {
	// Line 100 is repeatedly followed by far-away line 9000 (non-spatial):
	// after a few repetitions the pair is a top-10 co-occurrence.
	var lines []uint64
	for i := 0; i < 6; i++ {
		lines = append(lines, 100, 9000)
	}
	tr := mkTrace(lines...)
	res := Breakdown(tr, make([][]uint64, tr.Len()), 1, 2)
	if res.Frac[UncoveredCoOccur] == 0 {
		t.Fatalf("expected co-occurrence bucket: %+v", res)
	}
}

func TestPatternKindStrings(t *testing.T) {
	names := []string{"covered", "uncovered-spatial", "uncovered-cooccur",
		"uncovered-other", "uncovered-compulsory"}
	for k, want := range names {
		if PatternKind(k).String() != want {
			t.Fatalf("kind %d = %q", k, PatternKind(k).String())
		}
	}
	if PatternKind(99).String() != "?" {
		t.Fatalf("unknown kind")
	}
	r := BreakdownResult{Benchmark: "x", Prefetcher: "y"}
	if r.String() == "" {
		t.Fatalf("empty string")
	}
}

func TestBreakdownEmptyAndShort(t *testing.T) {
	tr := mkTrace(1)
	res := Breakdown(tr, nil, 1, 5)
	var sum float64
	for _, f := range res.Frac {
		sum += f
	}
	if sum != 0 {
		t.Fatalf("short trace should produce zero fractions")
	}
}

package analysis

import "testing"

func TestLoaderSmoke(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		t.Logf("%s (%d files, %d test files, xtest=%v)", p.Path, len(p.Files), len(p.TestFiles), p.XTest != nil)
	}
}

package tracing

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// Export renders the current snapshot as Chrome trace-event JSON. The file
// is hand-built, one event per line, in deterministic order: metadata rows
// first (process names in pid order, thread names in tid order), then each
// track's events in track-creation order. Timestamps are microseconds as
// Perfetto expects — wall nanoseconds as "micros.nnn", explicit simulated
// cycles verbatim, and in logical mode the wall tracks emit their per-track
// event index instead, which is what makes same-seed exports byte-identical.
func (t *Tracer) Export() []byte {
	var tracks []*Track
	var procs []string
	logical := false
	if t != nil {
		t.mu.Lock()
		tracks = append(tracks, t.tracks...)
		procs = append(procs, t.procs...)
		logical = t.opts.Logical
		t.mu.Unlock()
	}

	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for i, p := range procs {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			i+1, quote(p)))
	}
	var dropped uint64
	for _, tk := range tracks {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			tk.pid, tk.tid, quote(tk.thread)))
	}
	for _, tk := range tracks {
		evs, drop := tk.snapshot()
		dropped += drop
		for i, ev := range evs {
			ts := formatTS(tk, logical, i, ev.TS)
			switch ev.Ph {
			case PhaseBegin, PhaseEnd, PhaseInstant:
				emit(fmt.Sprintf(`{"name":%s,"ph":"%c","pid":%d,"tid":%d,"ts":%s}`,
					quote(ev.Name), ev.Ph, tk.pid, tk.tid, ts))
			case PhaseAsyncBegin, PhaseAsyncInstant, PhaseAsyncEnd:
				// Async events pair by (pid, cat, id); the category is the
				// track's process name so ids only need per-process uniqueness.
				emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"%c","pid":%d,"tid":%d,"ts":%s,"id":"0x%x"}`,
					quote(ev.Name), quote(tk.process), ev.Ph, tk.pid, tk.tid, ts, ev.ID))
			}
		}
	}
	b.WriteString("\n]")
	if dropped > 0 {
		fmt.Fprintf(&b, ",\"otherData\":{\"droppedEvents\":\"%d\"}", dropped)
	}
	b.WriteString("}\n")
	return b.Bytes()
}

// formatTS renders one timestamp. Explicit tracks carry simulated cycles and
// emit them verbatim; wall tracks emit microseconds with nanosecond fraction,
// or — in logical mode — the event's index within its track.
func formatTS(tk *Track, logical bool, idx int, ns int64) string {
	if tk.explicit {
		return fmt.Sprintf("%d", ns)
	}
	if logical {
		return fmt.Sprintf("%d", idx)
	}
	return fmt.Sprintf("%d.%03d", ns/1e3, ns%1e3)
}

// quote JSON-encodes a string (names come from code, but stay safe anyway).
func quote(s string) string {
	q, _ := json.Marshal(s)
	return string(q)
}

// Handler serves the current trace snapshot as Chrome trace JSON — the
// /trace endpoint on the metrics HTTP server. Usable on a nil tracer
// (responds 404: tracing disabled).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled (run with -trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(t.Export()) // best-effort response: the client may be gone
	})
}

// ParsedEvent is one trace event as read back from exported JSON.
type ParsedEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	TS   json.Number     `json:"ts,omitempty"`
	ID   string          `json:"id,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

// TraceFile is the parsed form of an exported trace.
type TraceFile struct {
	Events    []ParsedEvent     `json:"traceEvents"`
	OtherData map[string]string `json:"otherData,omitempty"`
}

// Stats summarizes a validated trace.
type Stats struct {
	Events     int // total events including metadata
	Spans      int // matched B/E duration pairs
	AsyncSpans int // matched b/e async pairs
	Instants   int // i + n point events
	Processes  int // named processes
	Threads    int // named threads
}

// Parse decodes exported Chrome trace JSON.
func Parse(data []byte) (*TraceFile, error) {
	var tf TraceFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("tracing: parse: %w", err)
	}
	return &tf, nil
}

// Validate checks the structural invariants the exporter promises: every
// (pid,tid) and pid is named by a metadata row, duration begin/end events
// nest properly per thread, and every async span pairs exactly one begin
// with one end under its (pid,cat,id) key with no reuse of an open id.
func Validate(tf *TraceFile) (Stats, error) {
	var st Stats
	st.Events = len(tf.Events)
	procNamed := map[int]bool{}
	threadNamed := map[[2]int]bool{}
	stacks := map[[2]int][]string{}
	type asyncKey struct {
		pid int
		cat string
		id  string
	}
	openAsync := map[asyncKey]string{}
	for i, ev := range tf.Events {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procNamed[ev.PID] = true
				st.Processes++
			case "thread_name":
				threadNamed[[2]int{ev.PID, ev.TID}] = true
				st.Threads++
			default:
				return st, fmt.Errorf("event %d: unknown metadata %q", i, ev.Name)
			}
			continue
		case "B", "E", "i", "b", "n", "e":
		default:
			return st, fmt.Errorf("event %d: unknown phase %q", i, ev.Ph)
		}
		if !procNamed[ev.PID] {
			return st, fmt.Errorf("event %d (%s): pid %d has no process_name", i, ev.Name, ev.PID)
		}
		if !threadNamed[[2]int{ev.PID, ev.TID}] {
			return st, fmt.Errorf("event %d (%s): pid %d tid %d has no thread_name", i, ev.Name, ev.PID, ev.TID)
		}
		key := [2]int{ev.PID, ev.TID}
		switch ev.Ph {
		case "B":
			stacks[key] = append(stacks[key], ev.Name)
		case "E":
			stk := stacks[key]
			if len(stk) == 0 {
				return st, fmt.Errorf("event %d: E %q with no open span on pid %d tid %d", i, ev.Name, ev.PID, ev.TID)
			}
			if top := stk[len(stk)-1]; top != ev.Name {
				return st, fmt.Errorf("event %d: E %q does not nest (open span %q)", i, ev.Name, top)
			}
			stacks[key] = stk[:len(stk)-1]
			st.Spans++
		case "i", "n":
			st.Instants++
		case "b":
			k := asyncKey{ev.PID, ev.Cat, ev.ID}
			if ev.ID == "" {
				return st, fmt.Errorf("event %d: async begin %q without id", i, ev.Name)
			}
			if open, ok := openAsync[k]; ok {
				return st, fmt.Errorf("event %d: async begin %q reuses open id %s (span %q)", i, ev.Name, ev.ID, open)
			}
			openAsync[k] = ev.Name
		case "e":
			k := asyncKey{ev.PID, ev.Cat, ev.ID}
			if _, ok := openAsync[k]; !ok {
				return st, fmt.Errorf("event %d: async end %q with no open id %s", i, ev.Name, ev.ID)
			}
			delete(openAsync, k)
			st.AsyncSpans++
		}
	}
	var unclosed []string
	for key, stk := range stacks { //lint:ignore maporder findings are sorted before reporting
		if len(stk) > 0 {
			unclosed = append(unclosed, fmt.Sprintf("pid %d tid %d: %d unclosed span(s), first %q", key[0], key[1], len(stk), stk[0]))
		}
	}
	if len(unclosed) > 0 {
		sort.Strings(unclosed)
		return st, fmt.Errorf("%s", unclosed[0])
	}
	if len(openAsync) > 0 {
		keys := make([]string, 0, len(openAsync))
		for k, name := range openAsync { //lint:ignore maporder findings are sorted before reporting
			keys = append(keys, fmt.Sprintf("pid %d cat %q id %s (%q)", k.pid, k.cat, k.id, name))
		}
		sort.Strings(keys)
		return st, fmt.Errorf("%d unclosed async span(s), first: %s", len(keys), keys[0])
	}
	return st, nil
}

// ValidateBytes parses and validates in one step — the round-trip check used
// by Close, verify.sh, and the tests.
func ValidateBytes(data []byte) (Stats, error) {
	tf, err := Parse(data)
	if err != nil {
		return Stats{}, err
	}
	return Validate(tf)
}

package experiments

import (
	"fmt"
	"math"
	"strings"

	"voyager/internal/eval"
	"voyager/internal/prefetch/domino"
	"voyager/internal/prefetch/isb"
	"voyager/internal/prefetch/stms"
	"voyager/internal/voyager"
)

// CostBenchmark is the benchmark used for the §5.4 / Figure 17 model-cost
// study (the paper highlights mcf and search as the hard cases; pr has the
// richest temporal structure at our scale, so compression effects on
// accuracy are visible).
const CostBenchmark = "pr"

// Figure17Result is the overhead study of §5.4 and Figure 17.
type Figure17Result struct {
	Window int

	// Per-prediction multiply-accumulate counts (compute cost).
	VoyagerMACs   int
	DeltaLSTMMACs int

	// Storage in bytes.
	VoyagerFP32     int
	DeltaLSTMFP32   int
	VoyagerPruned8b int // after 80% pruning + 8-bit quantization
	STMSBytes       int
	ISBBytes        int
	DominoBytes     int

	// Accuracy before/after compression (unified acc/cov on CostBenchmark).
	AccBefore float64
	AccAfter  float64

	// Figure 17 storage-efficiency scores: 1/(1+log10(storage in KB)).
	VoyagerEff   float64
	DeltaLSTMEff float64
	ISBEff       float64
}

func storageEff(bytes int) float64 {
	kb := float64(bytes) / 1024
	if kb < 1 {
		kb = 1
	}
	return 1 / (1 + math.Log10(kb))
}

// voyagerMACs estimates multiply-accumulates for one degree-1 prediction.
func voyagerMACs(cfg voyager.Config, pageVocab int) int {
	in := cfg.InputDim()
	h := cfg.Hidden
	lstm := cfg.SeqLen * 2 * (in*4*h + h*4*h)
	attn := cfg.SeqLen * 2 * cfg.Experts * cfg.PageEmbed
	headIn := h
	if cfg.HeadSkip {
		headIn += in
	}
	heads := headIn * (pageVocab + 191)
	return lstm + attn + heads
}

// Figure17 measures model sizes, compute costs, and the effect of the
// paper's pruning + quantization pipeline.
func (r *Run) Figure17() *Figure17Result {
	name := CostBenchmark
	tr := r.streamFor(name).Trace
	skip := r.Opts.epochLen(tr.Len())
	res := &Figure17Result{Window: r.Opts.Window}

	vp := r.voyagerFor(name)
	dl := r.dlstmFor(name)

	res.VoyagerFP32 = vp.Model.Params().Bytes(32)
	res.DeltaLSTMFP32 = dl.Params().Bytes(32)
	res.VoyagerMACs = voyagerMACs(vp.Cfg, vp.Model.Vocab().PageTokens())
	dlc := dl.Cfg
	res.DeltaLSTMMACs = dlc.SeqLen*((dlc.DeltaEmbed+dlc.PCEmbed)*4*dlc.Hidden+dlc.Hidden*4*dlc.Hidden) +
		dlc.Hidden*dl.DeltaVocabSize()

	// Table-prefetcher metadata after observing the trace: 16 bytes per
	// correlation entry (tag + pointer), the common idealized accounting.
	st := stms.New(1)
	ib := isb.NewIdeal(1)
	dm := domino.New(1)
	for i, a := range tr.Accesses {
		st.Access(i, a)
		ib.Access(i, a)
		dm.Access(i, a)
	}
	res.STMSBytes = st.Entries() * 16
	res.ISBBytes = ib.Entries() * 16
	res.DominoBytes = dm.Entries() * 16

	// Compression study (§5.4): prune 80%, quantize to 8 bits, re-predict.
	res.AccBefore = eval.Unified(tr, truncate(vp.Predictions(), 1), r.Opts.Window, skip)
	r.Opts.logf("figure 17: compressing voyager (%s)", name)
	vp.Model.Params().PruneMagnitude(0.8)
	vp.Model.Params().Quantize(8)
	vp.RepredictAll()
	res.AccAfter = eval.Unified(tr, truncate(vp.Predictions(), 1), r.Opts.Window, skip)
	res.VoyagerPruned8b = vp.Model.Params().CompressedBytes(8)

	// The main model is now compressed; evict it so later figures retrain.
	r.cache.mu.Lock()
	delete(r.cache.voyager, name)
	r.cache.mu.Unlock()

	res.VoyagerEff = storageEff(res.VoyagerPruned8b)
	res.DeltaLSTMEff = storageEff(res.DeltaLSTMFP32)
	res.ISBEff = storageEff(res.ISBBytes)
	return res
}

// String renders the §5.4 numbers and the Figure 17 triangle axes.
func (f *Figure17Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 17 / Section 5.4: Model compression and overhead\n")
	fmt.Fprintf(&b, "  compute (MACs/prediction): voyager=%d delta-lstm=%d ratio=%.1fx\n",
		f.VoyagerMACs, f.DeltaLSTMMACs, float64(f.DeltaLSTMMACs)/float64(f.VoyagerMACs))
	fmt.Fprintf(&b, "  storage fp32: voyager=%dB delta-lstm=%dB ratio=%.1fx\n",
		f.VoyagerFP32, f.DeltaLSTMFP32, float64(f.DeltaLSTMFP32)/float64(f.VoyagerFP32))
	fmt.Fprintf(&b, "  voyager pruned(80%%)+int8: %dB (%.1fx smaller than delta-lstm fp32)\n",
		f.VoyagerPruned8b, float64(f.DeltaLSTMFP32)/float64(f.VoyagerPruned8b))
	fmt.Fprintf(&b, "  table metadata: stms=%dB domino=%dB isb=%dB\n",
		f.STMSBytes, f.DominoBytes, f.ISBBytes)
	fmt.Fprintf(&b, "  accuracy before/after compression (%s): %.3f -> %.3f\n",
		CostBenchmark, f.AccBefore, f.AccAfter)
	fmt.Fprintf(&b, "  storage efficiency (1/(1+log10(KB))): voyager=%.3f delta-lstm=%.3f isb=%.3f\n",
		f.VoyagerEff, f.DeltaLSTMEff, f.ISBEff)
	return b.String()
}

// DeltaStudyResult reproduces §5.3.1's mcf observation: adding a small
// delta vocabulary erases the compulsory-miss bucket.
type DeltaStudyResult struct {
	With    eval.BreakdownResult
	Without eval.BreakdownResult
}

// DeltaStudy trains Voyager on mcf with and without delta tokens and
// compares the uncovered-compulsory share and total coverage.
func (r *Run) DeltaStudy() *DeltaStudyResult {
	tr := r.streamFor("mcf").Trace
	skip := r.Opts.epochLen(tr.Len())
	res := &DeltaStudyResult{}

	r.Opts.logf("delta study: mcf with deltas")
	vp := r.voyagerFor("mcf")
	res.With = eval.Breakdown(tr, truncate(vp.Predictions(), 1), r.Opts.Window, skip)
	res.With.Prefetcher = "voyager"

	r.Opts.logf("delta study: mcf without deltas")
	cfg := r.Opts.voyagerConfig(tr.Len())
	cfg.UseDeltas = false
	p, err := voyager.Train(tr, cfg)
	if err != nil {
		panic(err)
	}
	res.Without = eval.Breakdown(tr, p.Predictions(), r.Opts.Window, skip)
	res.Without.Prefetcher = "voyager-w/o-delta"
	return res
}

// String renders the delta study.
func (d *DeltaStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Section 5.3.1: mcf compulsory misses with/without the delta vocabulary\n")
	fmt.Fprintf(&b, "  %s\n  %s\n", d.Without, d.With)
	fmt.Fprintf(&b, "  compulsory uncovered: %.1f%% -> %.1f%%; coverage: %.1f%% -> %.1f%%\n",
		100*d.Without.Frac[eval.UncoveredCompulsory], 100*d.With.Frac[eval.UncoveredCompulsory],
		100*d.Without.Coverage(), 100*d.With.Coverage())
	return b.String()
}

// Package distill compiles a trained Voyager model into a static lookup
// table — the tabularization pass that turns a full-LSTM forward per
// prediction into an O(1) hash probe ("Attention, Distillation, and
// Tabularization", arXiv 2401.06362; compact probability tables as in
// Pangloss, arXiv 1906.00877).
//
// The compiler runs the teacher model over a calibration range of the
// trace in teacher-forcing mode, hashes each trigger's context — the PC
// token plus the HistLen most recent (page, offset) token pairs — into a
// 64-bit key, and accumulates the teacher's top-k candidate distribution
// per key. The result is an immutable pair of open-addressing subtables
// backed by flat uint64 arrays (mmap-friendly: no pointers, fixed-width
// slots): a full-context table, and a Markov-style fallback table keyed by
// the trigger (page, offset) pair alone for contexts never seen during
// calibration. Candidate probabilities are stored as IEEE binary16 via the
// internal/tensor/quant machinery, packed next to the token pair in a
// single slot word.
package distill

import (
	"fmt"
	"sort"

	"voyager/internal/sortkeys"
	"voyager/internal/tensor/quant"
	"voyager/internal/voyager"
)

// FNV-1a constants; keys are built by xor-multiply folding whole 64-bit
// words rather than bytes (the domain is small integers, the avalanche of
// the 64-bit prime is enough, and the fold is branch-free in the hot path).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func mix(h, v uint64) uint64 {
	h ^= v
	return h * fnvPrime64
}

// TokPair is one (page, offset) token pair of the context history.
type TokPair struct {
	Page, Off int32
}

// ContextKey hashes a full trigger context: the trigger's PC token plus the
// history of (page, offset) token pairs, oldest first. Tokens are offset by
// one so token id 0 still perturbs the hash. The zero hash value is
// reserved as the empty-bucket marker.
func ContextKey(pcTok int, hist []TokPair) uint64 {
	h := mix(fnvOffset64, uint64(pcTok)+1)
	for _, p := range hist {
		h = mix(h, uint64(uint32(p.Page))+1)
		h = mix(h, uint64(uint32(p.Off))+1)
	}
	if h == 0 {
		h = 1
	}
	return h
}

// PairKey hashes a single (page, offset) token pair — the key domain of the
// Markov fallback table.
func PairKey(pageTok, offTok int) uint64 {
	h := mix(mix(fnvOffset64, uint64(pageTok)+1), uint64(offTok)+1)
	if h == 0 {
		h = 1
	}
	return h
}

// Params sizes the distilled table. The zero value is not usable; call
// withDefaults (Compile does) or start from DefaultParams.
type Params struct {
	// HistLen is the number of trailing (page, offset) token pairs folded
	// into the context key, including the trigger itself.
	HistLen int `json:"hist_len"`
	// TopK is the number of candidate slots stored per key.
	TopK int `json:"top_k"`
	// Log2Buckets sizes the full-context subtable at 1<<Log2Buckets buckets.
	Log2Buckets int `json:"log2_buckets"`
	// MarkovLog2 sizes the fallback subtable at 1<<MarkovLog2 buckets.
	MarkovLog2 int `json:"markov_log2"`
	// MaxProbe bounds the linear-probe window of both subtables.
	MaxProbe int `json:"max_probe"`
}

// DefaultParams is the configuration used by the CLI flags and the bench
// harness headline entry: a ~1.5 MB table at the bench trace scale.
func DefaultParams() Params {
	return Params{HistLen: 3, TopK: 4, Log2Buckets: 14, MarkovLog2: 12, MaxProbe: 16}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.HistLen <= 0 {
		p.HistLen = d.HistLen
	}
	if p.TopK <= 0 {
		p.TopK = d.TopK
	}
	if p.Log2Buckets <= 0 {
		p.Log2Buckets = d.Log2Buckets
	}
	if p.MarkovLog2 <= 0 {
		p.MarkovLog2 = d.MarkovLog2
	}
	if p.MaxProbe <= 0 {
		p.MaxProbe = d.MaxProbe
	}
	return p
}

// packSlot packs one candidate into a slot word:
// page token (32 bits) | offset token (16 bits) | binary16 probability.
// The probability half is forced nonzero so a populated slot can never
// equal the all-zero empty marker (a true 0-probability candidate would
// never be stored anyway).
func packSlot(page, off int32, prob float32) uint64 {
	pf := quant.F32ToF16(prob)
	if pf == 0 {
		pf = 1 // smallest subnormal: "present, vanishing probability"
	}
	return uint64(uint32(page))<<32 | uint64(uint16(off))<<16 | uint64(pf)
}

// DecodeSlot unpacks a slot word into its (page, offset) tokens and the
// binary16-rounded probability. Slot value 0 means "empty" and must be
// filtered by the caller before decoding.
func DecodeSlot(s uint64) (pageTok, offTok int, prob float32) {
	return int(uint32(s >> 32)), int(uint16(s >> 16)), quant.F16ToF32(uint16(s))
}

// subtable is one open-addressing hash table with bounded linear probing:
// keys[i] holds the full 64-bit key (0 = empty), slots[i*topK : (i+1)*topK]
// its packed candidates. Inserts always take the first empty bucket in the
// probe window and evictions overwrite in place, so probe chains never
// contain holes and lookups may stop at the first empty bucket.
type subtable struct {
	log2     int
	topK     int
	maxProbe int
	keys     []uint64
	slots    []uint64
}

func newSubtable(log2, topK, maxProbe int) *subtable {
	n := 1 << log2
	return &subtable{
		log2:     log2,
		topK:     topK,
		maxProbe: maxProbe,
		keys:     make([]uint64, n),
		slots:    make([]uint64, n*topK),
	}
}

func (s *subtable) mask() uint64 { return uint64(len(s.keys) - 1) }

// lookup returns the slot words for key, or nil when absent. The returned
// slice aliases the table and may contain trailing empty (zero) slots.
func (s *subtable) lookup(key uint64) []uint64 {
	i := key & s.mask()
	for p := 0; p < s.maxProbe; p++ {
		switch s.keys[i] {
		case key:
			return s.slots[int(i)*s.topK : (int(i)+1)*s.topK]
		case 0:
			return nil
		}
		i = (i + 1) & s.mask()
	}
	return nil
}

// insert places key's packed slots, using prio (a per-bucket weight array
// live only during the build) to keep the heavier key when the probe window
// is saturated. Keys are unique per build, so the key-match probe case
// cannot occur.
func (s *subtable) insert(key uint64, weight float32, packed []uint64, prio []float32) {
	i := key & s.mask()
	minAt, minW := -1, float32(0)
	for p := 0; p < s.maxProbe; p++ {
		if s.keys[i] == 0 {
			s.place(i, key, weight, packed, prio)
			return
		}
		if minAt < 0 || prio[i] < minW {
			minAt, minW = int(i), prio[i]
		}
		i = (i + 1) & s.mask()
	}
	if weight > minW {
		s.place(uint64(minAt), key, weight, packed, prio)
	}
}

func (s *subtable) place(i, key uint64, weight float32, packed []uint64, prio []float32) {
	s.keys[i] = key
	prio[i] = weight
	dst := s.slots[int(i)*s.topK : (int(i)+1)*s.topK]
	for k := range dst {
		dst[k] = 0
	}
	copy(dst, packed)
}

func (s *subtable) count() int {
	n := 0
	for _, k := range s.keys {
		if k != 0 {
			n++
		}
	}
	return n
}

// Tier identifies which level of the fallback chain answered a lookup.
type Tier int

const (
	// TierKey: the full-context key hit the main table.
	TierKey Tier = iota
	// TierMarkov: the context missed but the trigger (page, offset) pair
	// hit the Markov fallback table.
	TierMarkov
	// TierMiss: both tables missed (callers typically fall back to
	// next-line).
	TierMiss
	// NumTiers sizes per-tier counters.
	NumTiers
)

// String names the tier for stats output.
func (t Tier) String() string {
	switch t {
	case TierKey:
		return "context"
	case TierMarkov:
		return "markov"
	default:
		return "miss"
	}
}

// Table is the immutable distilled predictor: a full-context subtable plus
// a Markov fallback subtable, both flat uint64 arrays.
type Table struct {
	Params
	// VocabFP is the fingerprint of the vocabulary the table was compiled
	// against (vocab.Fingerprint); replay against any other vocabulary is
	// rejected at load/bind time.
	VocabFP uint64

	main   *subtable
	markov *subtable
}

// Lookup resolves a context key through the fallback chain: full-context
// table first, then the Markov table under the trigger-pair key. The
// returned slots alias the table (read-only; trailing zero slots are
// empty), nil on a full miss.
func (t *Table) Lookup(ctxKey, trigKey uint64) ([]uint64, Tier) {
	if s := t.main.lookup(ctxKey); s != nil {
		return s, TierKey
	}
	if s := t.markov.lookup(trigKey); s != nil {
		return s, TierMarkov
	}
	return nil, TierMiss
}

// Bytes returns the in-memory (= on-disk payload) size of the table arrays.
func (t *Table) Bytes() int {
	return 8 * (len(t.main.keys) + len(t.main.slots) + len(t.markov.keys) + len(t.markov.slots))
}

// Stats summarizes table occupancy.
type Stats struct {
	Keys          int `json:"keys"`
	Buckets       int `json:"buckets"`
	MarkovKeys    int `json:"markov_keys"`
	MarkovBuckets int `json:"markov_buckets"`
	Bytes         int `json:"bytes"`
}

// Stats counts populated buckets in both subtables.
func (t *Table) Stats() Stats {
	return Stats{
		Keys:          t.main.count(),
		Buckets:       len(t.main.keys),
		MarkovKeys:    t.markov.count(),
		MarkovBuckets: len(t.markov.keys),
		Bytes:         t.Bytes(),
	}
}

// String renders the table summary.
func (t *Table) String() string {
	s := t.Stats()
	return fmt.Sprintf(
		"distilled{hist=%d topk=%d ctx=%d/%d markov=%d/%d bytes=%d}",
		t.HistLen, t.TopK, s.Keys, s.Buckets, s.MarkovKeys, s.MarkovBuckets, s.Bytes)
}

// KeyAt computes the full-context key the online predictor would observe at
// trigger position t of the bound trace (history clamped at the start,
// matching both buildBatch and the online ring-buffer warmup).
func KeyAt(p *voyager.Predictor, t, histLen int) uint64 {
	return keyAt(p, t, histLen, make([]TokPair, 0, histLen))
}

func keyAt(p *voyager.Predictor, t, histLen int, buf []TokPair) uint64 {
	buf = buf[:0]
	for j := t - histLen + 1; j <= t; j++ {
		idx := j
		if idx < 0 {
			idx = 0
		}
		_, pg, off := p.TokensAt(idx)
		buf = append(buf, TokPair{Page: int32(pg), Off: int32(off)})
	}
	pc, _, _ := p.TokensAt(t)
	return ContextKey(pc, buf)
}

// candAgg accumulates one candidate's teacher weight under a key.
type candAgg struct {
	page, off int32
	w         float32
}

// keyAgg is the per-key teacher distribution collected during calibration.
type keyAgg struct {
	total float32
	cands []candAgg
}

func (a *keyAgg) add(page, off int32, w float32) {
	a.total += w
	for i := range a.cands {
		if a.cands[i].page == page && a.cands[i].off == off {
			a.cands[i].w += w
			return
		}
	}
	a.cands = append(a.cands, candAgg{page: page, off: off, w: w})
}

func aggFor(m map[uint64]*keyAgg, key uint64) *keyAgg {
	a := m[key]
	if a == nil {
		a = &keyAgg{}
		m[key] = a
	}
	return a
}

// compileBatch is the teacher inference batch width during calibration.
const compileBatch = 256

// Compile distills the teacher over calibration triggers [lo, hi): it runs
// batched teacher-forced inference, accumulates each trigger's top-TopK
// candidate scores under the trigger's context key (and, in parallel, under
// the trigger-pair Markov key), then freezes both aggregations into the
// static table. The build is deterministic: aggregation maps are drained in
// sorted-key order and candidate ties break on (page, offset).
func Compile(p *voyager.Predictor, lo, hi int, prm Params) *Table {
	prm = prm.withDefaults()
	if lo < 0 {
		lo = 0
	}
	if n := p.NumAccesses(); hi > n {
		hi = n
	}
	agg := make(map[uint64]*keyAgg)
	markov := make(map[uint64]*keyAgg)
	buf := make([]TokPair, 0, prm.HistLen)
	positions := make([]int, 0, compileBatch)
	flush := func() {
		if len(positions) == 0 {
			return
		}
		cands := p.PredictAt(positions, prm.TopK)
		for b, t := range positions {
			key := keyAt(p, t, prm.HistLen, buf)
			_, pg, off := p.TokensAt(t)
			trig := PairKey(pg, off)
			for _, c := range cands[b] {
				w := float32(c.Score)
				if w <= 0 {
					continue
				}
				aggFor(agg, key).add(int32(c.PageTok), int32(c.OffTok), w)
				aggFor(markov, trig).add(int32(c.PageTok), int32(c.OffTok), w)
			}
		}
		positions = positions[:0]
	}
	for t := lo; t < hi; t++ {
		positions = append(positions, t)
		if len(positions) == compileBatch {
			flush()
		}
	}
	flush()

	tab := &Table{Params: prm, VocabFP: p.Model.Vocab().Fingerprint()}
	tab.main = buildSubtable(agg, prm.Log2Buckets, prm.TopK, prm.MaxProbe)
	tab.markov = buildSubtable(markov, prm.MarkovLog2, prm.TopK, prm.MaxProbe)
	return tab
}

// buildSubtable freezes one aggregation map into an open-addressing
// subtable, inserting keys in sorted order so the build (including any
// probe-window evictions) is bit-reproducible.
func buildSubtable(agg map[uint64]*keyAgg, log2, topK, maxProbe int) *subtable {
	s := newSubtable(log2, topK, maxProbe)
	prio := make([]float32, len(s.keys))
	packed := make([]uint64, 0, topK)
	for _, key := range sortkeys.Sorted(agg) {
		a := agg[key]
		sort.Slice(a.cands, func(i, j int) bool {
			ci, cj := a.cands[i], a.cands[j]
			if ci.w != cj.w {
				return ci.w > cj.w
			}
			if ci.page != cj.page {
				return ci.page < cj.page
			}
			return ci.off < cj.off
		})
		packed = packed[:0]
		for _, c := range a.cands {
			if len(packed) == topK {
				break
			}
			packed = append(packed, packSlot(c.page, c.off, c.w/a.total))
		}
		s.insert(key, a.total, packed, prio)
	}
	return s
}

// Agreement measures top-1 (page, offset) token agreement between the
// table's fallback chain and the live teacher over the given trigger
// positions: the fraction of triggers where the table's first slot names
// the same token pair as the teacher's top candidate. Triggers where the
// teacher itself has no candidate are skipped; a table miss on a scored
// trigger counts as disagreement.
func Agreement(p *voyager.Predictor, t *Table, positions []int) float64 {
	if len(positions) == 0 {
		return 0
	}
	buf := make([]TokPair, 0, t.HistLen)
	agree, scored := 0, 0
	for lo := 0; lo < len(positions); lo += compileBatch {
		hi := lo + compileBatch
		if hi > len(positions) {
			hi = len(positions)
		}
		batch := positions[lo:hi]
		teacher := p.PredictAt(batch, 1)
		for b, pos := range batch {
			if len(teacher[b]) == 0 {
				continue
			}
			scored++
			key := keyAt(p, pos, t.HistLen, buf)
			_, pg, off := p.TokensAt(pos)
			slots, _ := t.Lookup(key, PairKey(pg, off))
			if len(slots) == 0 || slots[0] == 0 {
				continue
			}
			sp, so, _ := DecodeSlot(slots[0])
			if sp == teacher[b][0].PageTok && so == teacher[b][0].OffTok {
				agree++
			}
		}
	}
	if scored == 0 {
		return 0
	}
	return float64(agree) / float64(scored)
}

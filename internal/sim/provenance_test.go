package sim

import (
	"testing"

	"voyager/internal/metrics"
	"voyager/internal/prefetch"
	"voyager/internal/trace"
	"voyager/internal/tracing"
	"voyager/internal/workloads"
)

// TestProvenanceConservation runs an instrumented, traced, provenance-logged
// simulation and checks that the three accounting layers agree:
//
//   - the decision table's issued total equals the Result's PrefetchesIssued
//     and the sim_prefetches_issued_total counter;
//   - useful+late equals PrefetchesUseful / sim_prefetches_useful_total
//     (the simulator counts late-covered prefetches as useful);
//   - every decision lands in exactly one outcome bucket;
//   - attaching the tracer and the log changes no Result bit;
//   - the exported timeline round-trips through the validator.
//
// Provenance evicted may exceed Result.PrefetchEvicted: the log resolves
// prefetched lines evicted by *demand* fills too, which the sim counter
// intentionally excludes (see Machine.fillAll).
func TestProvenanceConservation(t *testing.T) {
	tr, err := workloads.Generate("pr", workloads.Config{Seed: 3, Scale: 1, MaxAccesses: 6000})
	if err != nil {
		t.Fatal(err)
	}
	// A lookahead-4 oracle over the demand stream: far enough ahead to issue
	// real prefetches, close enough to produce a mix of useful, late,
	// dropped and evicted outcomes.
	preds := make([][]uint64, tr.Len())
	for i := 0; i+4 < tr.Len(); i++ {
		preds[i] = []uint64{trace.Line(tr.Accesses[i+4].Addr)}
	}
	pf := func() *prefetch.Precomputed {
		return &prefetch.Precomputed{Label: "oracle4", Predictions: preds}
	}
	cfg := ScaledConfig()

	plain := NewMachine(cfg).Run(tr, pf())

	reg := metrics.NewRegistry()
	tracer := tracing.New(tracing.Options{Logical: true})
	log := tracing.NewDecisionLog("pr/oracle4")
	m := NewMachine(cfg)
	m.Instrument(reg)
	m.Trace(tracer, "sim/oracle4")
	m.Provenance(log)
	res := m.Run(tr, pf())

	if res != plain {
		t.Fatalf("tracing perturbed the simulation:\n  with:    %+v\n  without: %+v", res, plain)
	}
	if log.Len() == 0 || res.PrefetchesIssued == 0 {
		t.Fatalf("degenerate run: %d decisions, %d issued", log.Len(), res.PrefetchesIssued)
	}

	tab := log.BuildTable(nil) // no schemes stamped: everything lands in "unmatched"
	if len(tab.Rows) != 1 || tab.Rows[0].Scheme != tracing.UnmatchedScheme {
		t.Fatalf("rows = %+v, want a single unmatched row", tab.Rows)
	}
	total := tab.Total
	if total.Decisions != log.Len() {
		t.Fatalf("table decisions %d != log length %d", total.Decisions, log.Len())
	}
	if got := total.Useful + total.Late + total.Evicted + total.Resident +
		total.Dropped + total.Unsimulated; got != total.Decisions {
		t.Fatalf("outcome buckets sum to %d, want %d (every decision in exactly one)", got, total.Decisions)
	}

	snap := reg.Snapshot()
	issued, _ := snap.Counter("sim_prefetches_issued_total")
	useful, _ := snap.Counter("sim_prefetches_useful_total")
	if uint64(total.Issued) != res.PrefetchesIssued || uint64(total.Issued) != issued {
		t.Errorf("issued: provenance %d, Result %d, counter %d", total.Issued, res.PrefetchesIssued, issued)
	}
	if got := uint64(total.Useful + total.Late); got != res.PrefetchesUseful || got != useful {
		t.Errorf("useful+late: provenance %d, Result %d, counter %d", got, res.PrefetchesUseful, useful)
	}
	if uint64(total.Evicted) < res.PrefetchEvicted {
		t.Errorf("provenance evicted %d < sim PrefetchEvicted %d (must cover at least the sim's)",
			total.Evicted, res.PrefetchEvicted)
	}
	if total.Unsimulated != 0 {
		t.Errorf("%d unsimulated decisions in a sim-only log (Ensure records only simulated ones)", total.Unsimulated)
	}
	if total.Late > 0 && total.MeanLateCycles <= 0 {
		t.Errorf("late prefetches recorded without wait cycles")
	}

	if _, err := tracing.ValidateBytes(tracer.Export()); err != nil {
		t.Fatalf("simulator timeline invalid: %v", err)
	}
}

// TestProvenanceDeterministic pins the decision log and the logical-clock
// simulator timeline as byte-reproducible across identical runs.
func TestProvenanceDeterministic(t *testing.T) {
	tr, err := workloads.Generate("cc", workloads.Config{Seed: 9, Scale: 1, MaxAccesses: 4000})
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]byte, string) {
		preds := make([][]uint64, tr.Len())
		for i := 0; i+3 < tr.Len(); i++ {
			preds[i] = []uint64{trace.Line(tr.Accesses[i+3].Addr)}
		}
		tracer := tracing.New(tracing.Options{Logical: true})
		log := tracing.NewDecisionLog("cc/oracle3")
		m := NewMachine(ScaledConfig())
		m.Trace(tracer, "sim/oracle3")
		m.Provenance(log)
		m.Run(tr, &prefetch.Precomputed{Label: "oracle3", Predictions: preds})
		return tracer.Export(), log.BuildTable(nil).String()
	}
	e1, t1 := run()
	e2, t2 := run()
	if string(e1) != string(e2) {
		t.Fatalf("simulator timeline not reproducible")
	}
	if t1 != t2 {
		t.Fatalf("provenance table not reproducible:\n%s\n---\n%s", t1, t2)
	}
}

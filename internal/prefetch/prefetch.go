// Package prefetch defines the interface shared by all data prefetchers
// (the baselines under internal/prefetch/... and the Voyager model's
// adapter) and small helpers for composing them.
package prefetch

import "voyager/internal/trace"

// Prefetcher observes the LLC access stream and proposes lines to prefetch.
//
// Access is called once per demand access, in trace order. i is the index
// of the access within the trace (precomputed predictors such as Voyager
// and the oracle use it; table-based prefetchers ignore it). The return
// value is the list of line-aligned byte addresses to prefetch, at most the
// prefetcher's degree; nil means no prefetch.
//
// Implementations train online inside Access, matching the paper's
// idealized methodology: no storage constraints, zero metadata latency.
type Prefetcher interface {
	Name() string
	Access(i int, a trace.Access) []uint64
}

// Func adapts a function to the Prefetcher interface.
type Func struct {
	Label string
	Fn    func(i int, a trace.Access) []uint64
}

// Name returns the label.
func (f Func) Name() string { return f.Label }

// Access invokes the wrapped function.
func (f Func) Access(i int, a trace.Access) []uint64 { return f.Fn(i, a) }

// Nil is a no-op prefetcher (the no-prefetching baseline).
type Nil struct{}

// Name returns "none".
func (Nil) Name() string { return "none" }

// Access never prefetches.
func (Nil) Access(int, trace.Access) []uint64 { return nil }

// Precomputed replays a per-access prediction table: predictions[i] holds
// the lines to prefetch when access i is observed. Used to drive the
// simulator with models (Voyager, Delta-LSTM) whose training protocol runs
// over the trace ahead of simulation.
type Precomputed struct {
	Label       string
	Predictions [][]uint64
}

// Name returns the label.
func (p *Precomputed) Name() string { return p.Label }

// Access returns the precomputed prediction for access i.
func (p *Precomputed) Access(i int, _ trace.Access) []uint64 {
	if i < 0 || i >= len(p.Predictions) {
		return nil
	}
	return p.Predictions[i]
}

package metrics

import (
	"net/http"
	"os"
	"time"
)

// SinkOptions configures Start: which of the three outputs (NDJSON stream,
// HTTP endpoint, manifest file) a run wants. Empty strings disable an
// output; all three empty means metrics are off entirely and Start returns
// a nil *Sink, whose methods are all no-ops — commands wire their -metrics
// flags straight through without caring whether anything is enabled.
type SinkOptions struct {
	Tool         string // binary name recorded in the manifest
	Config       any    // resolved run configuration for the manifest
	Seed         int64
	StreamPath   string        // NDJSON snapshot stream file
	HTTPAddr     string        // metrics+pprof listen address
	ManifestPath string        // run-manifest JSON file
	FlushEvery   time.Duration // stream period (default 1s)

	// Handlers are extra path → handler mounts for the HTTP server (the
	// tracing layer's /trace snapshot rides here). Ignored when HTTPAddr
	// is empty, and never enables the sink on its own.
	Handlers map[string]http.Handler
}

// Sink owns a run's observability outputs: one registry plus the optional
// stream file, HTTP server and manifest. Close flushes and releases
// everything in the right order.
type Sink struct {
	reg      *Registry
	manifest *Manifest
	stream   *Streamer
	file     *os.File
	server   *Server
	manPath  string
}

// Start opens the requested outputs. On any error it releases whatever it
// had already opened and returns the error.
func Start(o SinkOptions) (*Sink, error) {
	if o.StreamPath == "" && o.HTTPAddr == "" && o.ManifestPath == "" {
		return nil, nil
	}
	s := &Sink{reg: NewRegistry(), manPath: o.ManifestPath}
	if o.ManifestPath != "" {
		s.manifest = NewManifest(o.Tool, o.Config, o.Seed)
	}
	if o.StreamPath != "" {
		f, err := os.Create(o.StreamPath)
		if err != nil {
			return nil, err
		}
		s.file = f
		s.stream = NewStreamer(s.reg, f)
		every := o.FlushEvery
		if every <= 0 {
			every = time.Second
		}
		s.stream.Start(every)
	}
	if o.HTTPAddr != "" {
		srv, err := StartServerWith(s.reg, o.HTTPAddr, o.Handlers)
		if err != nil {
			if s.stream != nil {
				_ = s.stream.Close() // aborting anyway: the server error wins
				_ = s.file.Close()
			}
			return nil, err
		}
		s.server = srv
	}
	return s, nil
}

// Registry returns the sink's registry, nil for a nil sink — exactly the
// value instrumented code expects in its "metrics disabled" state.
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// HTTPAddr returns the bound metrics address ("" when no server).
func (s *Sink) HTTPAddr() string {
	if s == nil || s.server == nil {
		return ""
	}
	return s.server.Addr()
}

// Close finalizes the manifest, writes the last stream line, closes the
// file and shuts the server down. Safe on a nil sink. Returns the first
// error.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	if s.manifest != nil {
		s.manifest.Finalize(s.reg)
		keep(s.manifest.WriteFile(s.manPath))
	}
	if s.stream != nil {
		keep(s.stream.Close())
		keep(s.file.Close())
	}
	if s.server != nil {
		keep(s.server.Close())
	}
	return firstErr
}

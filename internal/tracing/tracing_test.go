package tracing

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// record a small but representative timeline: nested spans on a wall track,
// instants, and an async prefetch lifecycle on an explicit-clock track.
func recordFixture(tr *Tracer) {
	main := tr.Track("train", "main")
	w0 := tr.Track("train", "worker 0")
	llc := tr.ExplicitTrack("sim", "LLC")

	ep := main.Begin("epoch")
	fw := w0.Begin("forward")
	w0.Instant("checkpoint")
	fw.End()
	bw := w0.Begin("backward")
	bw.End()
	ep.End()

	llc.InstantAt("miss", 100)
	llc.AsyncBeginAt("prefetch", 1, 120)
	llc.AsyncInstantAt("fill", 1, 320)
	llc.AsyncEndAt("useful", 1, 400)
}

func TestExportRoundTrip(t *testing.T) {
	tr := New(Options{})
	recordFixture(tr)
	data := tr.Export()
	st, err := ValidateBytes(data)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if st.Processes != 2 || st.Threads != 3 {
		t.Fatalf("got %d processes / %d threads, want 2/3", st.Processes, st.Threads)
	}
	if st.Spans != 3 {
		t.Fatalf("got %d duration spans, want 3", st.Spans)
	}
	if st.AsyncSpans != 1 {
		t.Fatalf("got %d async spans, want 1", st.AsyncSpans)
	}
	if st.Instants != 3 { // "checkpoint", "miss", async "fill"
		t.Fatalf("got %d instants, want 3", st.Instants)
	}
	// Explicit-clock timestamps are emitted verbatim, even without logical
	// mode: the simulator's cycle counts are already deterministic.
	if !bytes.Contains(data, []byte(`"ts":120,"id":"0x1"`)) {
		t.Fatalf("explicit-clock async begin not verbatim in export:\n%s", data)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestLogicalExportByteIdentical(t *testing.T) {
	export := func() []byte {
		tr := New(Options{Logical: true})
		recordFixture(tr)
		// Wall clocks advance between the two runs; logical mode must hide it.
		time.Sleep(2 * time.Millisecond)
		return tr.Export()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("logical exports differ:\n%s\n---\n%s", a, b)
	}
	if _, err := ValidateBytes(a); err != nil {
		t.Fatalf("logical export invalid: %v", err)
	}
}

func TestTrackDedupAndOrder(t *testing.T) {
	tr := New(Options{})
	a := tr.Track("train", "main")
	b := tr.Track("sim", "LLC")
	if got := tr.Track("train", "main"); got != a {
		t.Fatalf("same (process, thread) returned a different track")
	}
	if a.pid != 1 || b.pid != 2 {
		t.Fatalf("pids %d, %d — want creation order 1, 2", a.pid, b.pid)
	}
	if a.tid != 1 || b.tid != 2 {
		t.Fatalf("tids %d, %d — want creation order 1, 2", a.tid, b.tid)
	}
	if c := tr.Track("train", "worker 0"); c.pid != 1 || c.tid != 3 {
		t.Fatalf("second train thread got pid %d tid %d, want 1/3", c.pid, c.tid)
	}
}

func TestNilTracerAllocFree(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("train", "main")
	if tk != nil {
		t.Fatalf("nil tracer returned non-nil track")
	}
	var log *DecisionLog
	allocs := testing.AllocsPerRun(100, func() {
		sp := tk.Begin("x")
		tk.Instant("i")
		tk.InstantAt("i", 1)
		tk.AsyncBeginAt("a", 1, 0)
		tk.AsyncInstantAt("a", 1, 1)
		tk.AsyncEndAt("a", 1, 2)
		sp.End()
		if tk.Len() != 0 {
			t.Fatalf("nil track recorded events")
		}
		if id := log.Add(Decision{}); id != -1 {
			t.Fatalf("nil log Add returned %d", id)
		}
		log.Ensure(0, 0)
		log.SetOutcome(0, OutcomeUseful, 0)
		log.SetEvalHit(0)
		if log.Outcome(0) != OutcomeNone {
			t.Fatalf("nil log has an outcome")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing hot path allocates: %v allocs/op", allocs)
	}
}

// TestRecordingAllocBudget pins the enabled hot path: recording into an
// already-allocated chunk must not allocate (chunk faults are amortized,
// one per 4096 events).
func TestRecordingAllocBudget(t *testing.T) {
	tr := New(Options{})
	tk := tr.Track("train", "main")
	tk.Instant("warm") // fault in the first chunk
	allocs := testing.AllocsPerRun(100, func() {
		sp := tk.Begin("step")
		tk.InstantAt("i", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("steady-state recording allocates: %v allocs/op", allocs)
	}
}

func TestFlusherWritesAndNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	path := filepath.Join(t.TempDir(), "flush.json")
	tr := New(Options{Path: path, FlushEvery: time.Millisecond})
	recordFixture(tr)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher never wrote %s", path)
		}
		time.Sleep(time.Millisecond)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read final export: %v", err)
	}
	if _, err := ValidateBytes(data); err != nil {
		t.Fatalf("final export invalid: %v", err)
	}
	for i := 0; runtime.NumGoroutine() > before; i++ {
		if i > 100 {
			t.Fatalf("goroutines: %d before, %d after Close — flusher leaked", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseRejectsMalformedRecording(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	tr := New(Options{Path: path})
	tk := tr.Track("train", "main")
	tk.Begin("never closed")
	err := tr.Close()
	if err == nil || !strings.Contains(err.Error(), "unclosed") {
		t.Fatalf("Close on an unclosed span: err=%v, want unclosed-span validation failure", err)
	}
}

func TestDroppedEventsReported(t *testing.T) {
	tr := New(Options{})
	tk := tr.Track("train", "main")
	tk.Instant("kept")
	tk.dropped.Add(3) // white-box: simulate arena exhaustion
	tf, err := Parse(tr.Export())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := tf.OtherData["droppedEvents"]; got != "3" {
		t.Fatalf("droppedEvents = %q, want \"3\"", got)
	}
	if _, err := Validate(tf); err != nil {
		t.Fatalf("export with drops invalid: %v", err)
	}
}

func TestArenaCapacityDrops(t *testing.T) {
	tr := New(Options{})
	tk := tr.Track("train", "main")
	total := uint64(chunkEvents*maxChunks) + 5
	for i := uint64(0); i < total; i++ {
		tk.record(PhaseInstant, "x", 0, int64(i))
	}
	if tk.Len() != chunkEvents*maxChunks {
		t.Fatalf("Len = %d, want cap %d", tk.Len(), chunkEvents*maxChunks)
	}
	if got := tk.dropped.Load(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
}

func TestHandler(t *testing.T) {
	var off *Tracer
	rec := httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 404 {
		t.Fatalf("nil tracer handler: status %d, want 404", rec.Code)
	}

	tr := New(Options{})
	recordFixture(tr)
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("live handler: status %d", rec.Code)
	}
	if _, err := ValidateBytes(rec.Body.Bytes()); err != nil {
		t.Fatalf("handler snapshot invalid: %v", err)
	}
}

// mkEvents builds a minimal valid header (one process, one thread) followed
// by the given events on pid 1 / tid 1.
func mkEvents(evs ...ParsedEvent) *TraceFile {
	tf := &TraceFile{Events: []ParsedEvent{
		{Name: "process_name", Ph: "M", PID: 1, TID: 0},
		{Name: "thread_name", Ph: "M", PID: 1, TID: 1},
	}}
	tf.Events = append(tf.Events, evs...)
	return tf
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		tf   *TraceFile
		want string
	}{
		{"unknown phase", mkEvents(ParsedEvent{Name: "x", Ph: "X", PID: 1, TID: 1}), "unknown phase"},
		{"unknown metadata", mkEvents(ParsedEvent{Name: "weird", Ph: "M", PID: 1, TID: 1}), "unknown metadata"},
		{"unnamed pid", mkEvents(ParsedEvent{Name: "x", Ph: "i", PID: 9, TID: 1}), "no process_name"},
		{"unnamed tid", mkEvents(ParsedEvent{Name: "x", Ph: "i", PID: 1, TID: 9}), "no thread_name"},
		{"end without begin", mkEvents(ParsedEvent{Name: "x", Ph: "E", PID: 1, TID: 1}), "no open span"},
		{"bad nesting", mkEvents(
			ParsedEvent{Name: "outer", Ph: "B", PID: 1, TID: 1},
			ParsedEvent{Name: "inner", Ph: "E", PID: 1, TID: 1}), "does not nest"},
		{"unclosed span", mkEvents(ParsedEvent{Name: "x", Ph: "B", PID: 1, TID: 1}), "unclosed span"},
		{"async begin without id", mkEvents(ParsedEvent{Name: "x", Ph: "b", Cat: "c", PID: 1, TID: 1}), "without id"},
		{"async id reuse", mkEvents(
			ParsedEvent{Name: "x", Ph: "b", Cat: "c", ID: "0x1", PID: 1, TID: 1},
			ParsedEvent{Name: "y", Ph: "b", Cat: "c", ID: "0x1", PID: 1, TID: 1}), "reuses open id"},
		{"async end without begin", mkEvents(ParsedEvent{Name: "x", Ph: "e", Cat: "c", ID: "0x1", PID: 1, TID: 1}), "no open id"},
		{"unclosed async", mkEvents(ParsedEvent{Name: "x", Ph: "b", Cat: "c", ID: "0x1", PID: 1, TID: 1}), "unclosed async"},
	}
	for _, c := range cases {
		if _, err := Validate(c.tf); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err=%v, want substring %q", c.name, err, c.want)
		}
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Errorf("Parse accepted malformed JSON")
	}
	// Distinct categories keep separate async id spaces.
	ok := mkEvents(
		ParsedEvent{Name: "x", Ph: "b", Cat: "c1", ID: "0x1", PID: 1, TID: 1},
		ParsedEvent{Name: "x", Ph: "b", Cat: "c2", ID: "0x1", PID: 1, TID: 1},
		ParsedEvent{Name: "x", Ph: "e", Cat: "c1", ID: "0x1", PID: 1, TID: 1},
		ParsedEvent{Name: "x", Ph: "e", Cat: "c2", ID: "0x1", PID: 1, TID: 1})
	if _, err := Validate(ok); err != nil {
		t.Errorf("per-category id spaces rejected: %v", err)
	}
}

// TestConcurrentFlushSnapshot races a writer against Export (the flusher's
// read path) — run under -race in verify.sh, this pins the single-writer
// arena's publish protocol.
func TestConcurrentFlushSnapshot(t *testing.T) {
	tr := New(Options{})
	tk := tr.Track("train", "main")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20_000; i++ {
			sp := tk.Begin("step")
			sp.End()
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := ValidateBytes(tr.Export()); err != nil {
			// A snapshot may cut between B and E; only nesting errors from
			// a *complete* pair are real. An unclosed tail span is expected.
			if !strings.Contains(err.Error(), "unclosed") {
				t.Fatalf("mid-run snapshot: %v", err)
			}
		}
	}
	<-done
	if _, err := ValidateBytes(tr.Export()); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
}

// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	go run ./cmd/experiments -run all
//	go run ./cmd/experiments -run table2,fig7 -accesses 24000 -hidden 64
//	go run ./cmd/experiments -run fig15 -benchmarks pr,soplex
//	go run ./cmd/experiments -bench -workers -1 -bench-out BENCH_pr1.json
//
// Artifact ids: table1 table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// fig12 fig15 fig17 delta. "fig10" and "fig11" run together, as do
// fig5/fig6/fig8 (one simulator sweep feeds all three).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"voyager/internal/experiments"
	"voyager/internal/metrics"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated artifact ids or 'all'")
		accesses  = flag.Int("accesses", 48_000, "raw trace length per benchmark")
		epochs    = flag.Int("epochs", 4, "online-protocol epochs per stream")
		hidden    = flag.Int("hidden", 64, "voyager/delta-lstm LSTM units")
		passes    = flag.Int("passes", 4, "training passes per epoch")
		window    = flag.Int("window", 10, "unified-metric window")
		seed      = flag.Int64("seed", 42, "randomness seed")
		benches   = flag.String("benchmarks", "", "comma-separated benchmark subset (default: per-figure lists)")
		workers   = flag.Int("workers", 0, "voyager data-parallel width (0/1 serial, -1 auto)")
		bench     = flag.Bool("bench", false, "run the performance bench suite instead of artifacts")
		benchOut  = flag.String("bench-out", "BENCH_pr2.json", "bench suite JSON output path")
		benchBase = flag.String("bench-baseline", "BENCH_pr1.json", "prior bench JSON to diff against (\"\" disables)")
		quiet     = flag.Bool("q", false, "suppress progress output")

		metricsOut  = flag.String("metrics", "", "stream NDJSON metric snapshots to this file")
		metricsHTTP = flag.String("metrics-http", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
		manifest    = flag.String("manifest", "", "write a run-manifest JSON (config, seed, git ref, final metrics) to this file")
	)
	flag.Parse()

	if *workers < -1 {
		fmt.Fprintf(os.Stderr, "invalid -workers %d (0 or 1 serial, -1 auto, N>1 parallel)\n", *workers)
		os.Exit(2)
	}
	opts := experiments.DefaultOptions()
	opts.Accesses = *accesses
	opts.Epochs = *epochs
	opts.Hidden = *hidden
	opts.Passes = *passes
	opts.Window = *window
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Quiet = *quiet
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	sink, err := metrics.Start(metrics.SinkOptions{
		Tool:         "experiments",
		Config:       opts,
		Seed:         *seed,
		StreamPath:   *metricsOut,
		HTTPAddr:     *metricsHTTP,
		ManifestPath: *manifest,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: metrics: %v\n", err)
		os.Exit(1)
	}
	opts.Metrics = sink.Registry()
	if addr := sink.HTTPAddr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics (pprof at /debug/pprof/)\n", addr)
	}
	closeSink := func() {
		if err := sink.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: metrics: %v\n", err)
			os.Exit(1)
		}
	}

	if *bench {
		report, err := opts.Bench(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if *benchBase != "" {
			if data, err := os.ReadFile(*benchBase); err == nil {
				if base, err := experiments.LoadBenchReport(data); err == nil {
					report.Compare(base, *benchBase)
				} else {
					fmt.Fprintf(os.Stderr, "bench: baseline %s unreadable: %v\n", *benchBase, err)
				}
			}
		}
		fmt.Println(report)
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
		closeSink()
		return
	}
	r := experiments.NewRun(opts)

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = []string{"table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8",
			"fig9", "fig10", "fig12", "fig15", "fig17", "delta"}
	}
	start := time.Now()
	for _, id := range ids {
		switch strings.TrimSpace(id) {
		case "table1":
			fmt.Println(experiments.Table1())
		case "table2":
			fmt.Println(r.Table2())
		case "table3":
			fmt.Println(experiments.Table3())
		case "fig5":
			fmt.Println(r.Main().Figure5())
		case "fig6":
			fmt.Println(r.Main().Figure6())
		case "fig8":
			fmt.Println(r.Main().Figure8())
		case "fig7":
			fmt.Println(r.Figure7())
		case "fig9":
			fmt.Println(r.Figure9())
		case "fig10", "fig11":
			fmt.Println(r.Figure1011())
		case "fig12":
			fmt.Println(r.Figure12())
		case "fig15":
			fmt.Println(r.Figure15())
		case "fig17":
			fmt.Println(r.Figure17())
		case "delta":
			fmt.Println(r.DeltaStudy())
		default:
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", id)
			os.Exit(2)
		}
	}
	if !*quiet {
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
	}
	closeSink()
}

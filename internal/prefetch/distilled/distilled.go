// Package distilled replays a tabularized Voyager (internal/distill)
// online: each access updates a tiny ring of (page, offset) context tokens,
// hashes it, and probes the distilled table — no neural forward pass, so a
// prediction costs a few hash folds and at most 2·MaxProbe array reads
// (hundreds of nanoseconds instead of a full LSTM inference).
package distilled

import (
	"fmt"

	"voyager/internal/distill"
	"voyager/internal/trace"
	"voyager/internal/vocab"
)

// Prefetcher binds a distilled table to a vocabulary and replays it over an
// access stream behind the standard prefetch.Prefetcher interface.
type Prefetcher struct {
	tab    *distill.Table
	voc    *vocab.Vocab
	degree int

	// hist is the rolling context window, oldest first; until HistLen
	// accesses have been seen it is back-filled with the first pair, the
	// same clamping the compiler applies at the trace start.
	hist     []distill.TokPair
	seen     int
	prevLine uint64

	tiers [distill.NumTiers]int
	out   []uint64 // returned-slice scratch; callers get fresh copies
}

// New binds a table to the vocabulary of the trace it will replay. The
// vocabulary must be the one the table was compiled against (checked via
// the embedded fingerprint — token ids are meaningless across
// vocabularies).
func New(tab *distill.Table, voc *vocab.Vocab, degree int) (*Prefetcher, error) {
	if got, want := voc.Fingerprint(), tab.VocabFP; got != want {
		return nil, fmt.Errorf(
			"distilled: table compiled against a different vocabulary (fingerprint %#x, trace's %#x): recompile the table or replay the original trace",
			want, got)
	}
	if degree < 1 {
		degree = 1
	}
	return &Prefetcher{
		tab:    tab,
		voc:    voc,
		degree: degree,
		hist:   make([]distill.TokPair, tab.HistLen),
		out:    make([]uint64, 0, degree),
	}, nil
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "distilled" }

// Reset clears the context window (tier counters persist) so the
// prefetcher can replay another pass over the same trace.
func (p *Prefetcher) Reset() {
	p.seen = 0
}

// TierCounts returns how many accesses were answered by each fallback
// tier (indexed by distill.Tier) since construction.
func (p *Prefetcher) TierCounts() [distill.NumTiers]int { return p.tiers }

// Access implements prefetch.Prefetcher: encode the access, roll the
// context window, probe the fallback chain, and decode up to degree
// distinct lines. On a full table miss it degrades to next-line.
func (p *Prefetcher) Access(_ int, a trace.Access) []uint64 {
	line := trace.Line(a.Addr)
	if p.seen == 0 {
		p.prevLine = line
	}
	pTok, oTok := p.voc.EncodeAccess(p.prevLine, line)
	p.prevLine = line
	pair := distill.TokPair{Page: int32(pTok), Off: int32(oTok)}
	if p.seen == 0 {
		for i := range p.hist {
			p.hist[i] = pair
		}
	} else {
		copy(p.hist, p.hist[1:])
		p.hist[len(p.hist)-1] = pair
	}
	p.seen++

	key := distill.ContextKey(p.voc.PCToken(a.PC), p.hist)
	slots, tier := p.tab.Lookup(key, distill.PairKey(pTok, oTok))
	p.tiers[tier]++

	p.out = p.out[:0]
	for _, s := range slots {
		if s == 0 {
			break
		}
		pg, off, _ := distill.DecodeSlot(s)
		cand, ok := p.voc.Decode(line, pg, off)
		if !ok || cand == line {
			continue
		}
		if dup(p.out, cand<<trace.LineBits) {
			continue
		}
		p.out = append(p.out, cand<<trace.LineBits)
		if len(p.out) == p.degree {
			break
		}
	}
	if len(p.out) == 0 && tier == distill.TierMiss {
		p.out = append(p.out, (line+1)<<trace.LineBits)
	}
	if len(p.out) == 0 {
		return nil
	}
	// The simulator and eval pipeline retain returned slices; hand out a
	// fresh copy and keep the scratch for the next access.
	res := make([]uint64, len(p.out))
	copy(res, p.out)
	return res
}

func dup(xs []uint64, x uint64) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

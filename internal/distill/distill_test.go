package distill

import (
	"bytes"
	"testing"

	"voyager/internal/trace"
	"voyager/internal/voyager"
)

// cyclicTrace drives a deterministic irregular cycle through several PCs —
// enough structure for a FastConfig teacher to learn and for the distilled
// table to reproduce.
func cyclicTrace(laps int) *trace.Trace {
	cycle := []uint64{
		0x10<<6 | 5, 0x22<<6 | 61, 0x15<<6 | 0, 0x9<<6 | 33,
		0x30<<6 | 7, 0x11<<6 | 12, 0x28<<6 | 50, 0x3<<6 | 18,
	}
	tr := &trace.Trace{Name: "cycle"}
	inst := uint64(0)
	for l := 0; l < laps; l++ {
		for i, line := range cycle {
			inst += 5
			tr.Append(0x400000+uint64(i%3)*8, line<<trace.LineBits, inst)
		}
	}
	tr.Instructions = inst
	return tr
}

func trainedPredictor(t *testing.T) *voyager.Predictor {
	t.Helper()
	tr := cyclicTrace(500) // 4000 accesses
	cfg := voyager.FastConfig()
	cfg.EpochAccesses = 1000
	p, err := voyager.Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return p
}

func testParams() Params {
	return Params{HistLen: 3, TopK: 4, Log2Buckets: 10, MarkovLog2: 8, MaxProbe: 16}
}

func TestPackSlotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		page, off int32
		prob      float32
	}{{0, 0, 0.5}, {123, 64, 0.25}, {1 << 20, 190, 1}, {7, 3, 1e-9}} {
		s := packSlot(tc.page, tc.off, tc.prob)
		if s == 0 {
			t.Fatalf("packSlot(%+v) produced the empty marker", tc)
		}
		pg, off, prob := DecodeSlot(s)
		if pg != int(tc.page) || off != int(tc.off) {
			t.Fatalf("DecodeSlot: got (%d,%d), want (%d,%d)", pg, off, tc.page, tc.off)
		}
		if tc.prob >= 1e-4 && (prob < tc.prob*0.99 || prob > tc.prob*1.01) {
			t.Fatalf("prob %g round-tripped to %g", tc.prob, prob)
		}
	}
}

func TestKeysNeverZero(t *testing.T) {
	if ContextKey(0, nil) == 0 || PairKey(0, 0) == 0 {
		t.Fatalf("zero-valued key would collide with the empty-bucket marker")
	}
	if ContextKey(1, nil) == ContextKey(2, nil) {
		t.Fatalf("PC token does not perturb the context key")
	}
	h := []TokPair{{1, 2}, {3, 4}}
	if ContextKey(1, h) == ContextKey(1, []TokPair{{3, 4}, {1, 2}}) {
		t.Fatalf("history order does not perturb the context key")
	}
}

// KeyAt must clamp history at the trace start exactly like the online
// replayer, which back-fills its ring with the first pair.
func TestKeyAtClampsAtStart(t *testing.T) {
	p := trainedPredictor(t)
	pc, pg, off := p.TokensAt(0)
	pair := TokPair{Page: int32(pg), Off: int32(off)}
	want := ContextKey(pc, []TokPair{pair, pair, pair})
	if got := KeyAt(p, 0, 3); got != want {
		t.Fatalf("KeyAt(0) = %#x, want clamped %#x", got, want)
	}
}

func TestCompileLookupTiers(t *testing.T) {
	p := trainedPredictor(t)
	tab := Compile(p, 0, p.NumAccesses(), testParams())

	st := tab.Stats()
	if st.Keys == 0 || st.MarkovKeys == 0 {
		t.Fatalf("empty table after compiling a full trace: %+v", st)
	}
	if st.Bytes != tab.Bytes() || st.Bytes == 0 {
		t.Fatalf("bytes accounting: %+v vs %d", st, tab.Bytes())
	}

	// A calibration trigger must hit the full-context tier.
	pos := p.NumAccesses() / 2
	_, pg, off := p.TokensAt(pos)
	slots, tier := tab.Lookup(KeyAt(p, pos, tab.HistLen), PairKey(pg, off))
	if tier != TierKey || len(slots) == 0 || slots[0] == 0 {
		t.Fatalf("calibration trigger: tier %v, slots %v", tier, slots)
	}

	// An unseen context with a seen trigger pair falls back to Markov.
	_, tier = tab.Lookup(ContextKey(12345, []TokPair{{9999, 1}}), PairKey(pg, off))
	if tier != TierMarkov {
		t.Fatalf("unseen context, seen trigger: tier %v, want TierMarkov", tier)
	}

	// Garbage on both levels misses.
	if _, tier = tab.Lookup(ContextKey(12345, []TokPair{{9999, 1}}), PairKey(31337, 99)); tier != TierMiss {
		t.Fatalf("garbage lookup: tier %v, want TierMiss", tier)
	}
}

// The teacher learned a deterministic cycle, so the table distilled from
// the first half must agree with the live model almost everywhere on the
// held-out second half.
func TestHeldOutAgreement(t *testing.T) {
	p := trainedPredictor(t)
	n := p.NumAccesses()
	tab := Compile(p, 0, n/2, testParams())
	held := make([]int, 0, n-n/2)
	for i := n / 2; i < n; i++ {
		held = append(held, i)
	}
	if a := Agreement(p, tab, held); a < 0.9 {
		t.Fatalf("held-out top-1 agreement %.3f, want ≥0.9", a)
	}
	if a := Agreement(p, tab, nil); a != 0 {
		t.Fatalf("Agreement over no positions = %v, want 0", a)
	}
}

// Tiny tables must stay functional under probe-window pressure: the
// deterministic weight-priority eviction keeps the heaviest keys.
func TestCompileTinyTable(t *testing.T) {
	p := trainedPredictor(t)
	prm := Params{HistLen: 2, TopK: 2, Log2Buckets: 3, MarkovLog2: 3, MaxProbe: 4}
	tab := Compile(p, 0, p.NumAccesses(), prm)
	st := tab.Stats()
	if st.Keys == 0 || st.Keys > 8 || st.MarkovKeys == 0 {
		t.Fatalf("tiny table occupancy: %+v", st)
	}
}

// Same model + params ⇒ the same table, byte for byte (deterministic maps,
// sorted insertion, deterministic eviction).
func TestCompileDeterministic(t *testing.T) {
	p := trainedPredictor(t)
	var b1, b2 bytes.Buffer
	if _, err := Compile(p, 0, p.NumAccesses(), testParams()).WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(p, 0, p.NumAccesses(), testParams()).WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("two compiles of the same model differ (%d vs %d bytes)", b1.Len(), b2.Len())
	}
}

func TestParamsWithDefaults(t *testing.T) {
	d := Params{}.withDefaults()
	if d != DefaultParams() {
		t.Fatalf("zero params defaulted to %+v", d)
	}
	keep := Params{HistLen: 1, TopK: 2, Log2Buckets: 5, MarkovLog2: 4, MaxProbe: 3}
	if got := keep.withDefaults(); got != keep {
		t.Fatalf("explicit params overwritten: %+v", got)
	}
}

func TestTierString(t *testing.T) {
	if TierKey.String() != "context" || TierMarkov.String() != "markov" || TierMiss.String() != "miss" {
		t.Fatalf("tier names: %v %v %v", TierKey, TierMarkov, TierMiss)
	}
}

package tensor

import (
	"fmt"

	"voyager/internal/tracing"
)

// Node is a value in the autodiff graph: a matrix plus (lazily allocated)
// gradient storage and a backward closure. Nodes are arena-allocated by
// their Tape: a node (and any matrix it references that came from
// Tape.NewMat) is only valid until the tape's next Reset.
type Node struct {
	Val  *Mat
	Grad *Mat

	requiresGrad bool
	tape         *Tape
	back         func(n *Node)
}

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// ensureGrad allocates the gradient matrix on first use. Gradients for
// tape-owned nodes come from the tape's arena so they are recycled on Reset;
// parameter nodes have their Grad assigned externally and are never
// arena-managed.
func (n *Node) ensureGrad() *Mat {
	if n.Grad == nil {
		if n.tape != nil {
			n.Grad = n.tape.NewMat(n.Val.Rows, n.Val.Cols)
		} else {
			n.Grad = NewMat(n.Val.Rows, n.Val.Cols)
		}
	}
	return n.Grad
}

// EnsureGrad exposes gradient allocation for external custom ops (package
// nn builds fused ops via Tape.Custom and must write input gradients).
func (n *Node) EnsureGrad() *Mat { return n.ensureGrad() }

// nodeBlockSize is the node-arena chunk size. Chunks are never reallocated,
// so node pointers stay valid for the lifetime of the tape; Reset just
// rewinds the cursor and reuses the same chunks.
const nodeBlockSize = 256

// Tape records differentiable operations in execution order so Backward can
// replay them in reverse. A Tape is not safe for concurrent use; keep one
// long-lived tape per worker and Reset it between steps.
//
// The tape doubles as a memory arena: NewMat hands out matrices from a
// freelist keyed by element count, and Reset recycles every node, value and
// gradient matrix allocated since the previous Reset. After warmup a
// steady-state forward+backward pass performs no matrix allocations.
type Tape struct {
	nodes []*Node

	// Track is the optional execution-span row for this tape's worker: when
	// set, backward passes record a "tape_backward" span on it. nil (the
	// default) keeps the tape silent — a nil track's methods are no-ops.
	Track *tracing.Track

	// Node arena: fixed-size chunks with a cursor, rewound on Reset.
	blocks  [][]Node
	nodeCur int

	// Matrix arena: free holds recycled matrices by element count; used
	// tracks every matrix handed out since the last Reset.
	free map[int][]*Mat
	used []*Mat
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded operations and recycles every arena matrix
// handed out since the previous Reset, retaining capacity. Nodes and
// matrices obtained from this tape must not be used after Reset.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.nodeCur = 0
	if len(t.used) > 0 && t.free == nil {
		t.free = make(map[int][]*Mat)
	}
	for _, m := range t.used {
		t.free[len(m.Data)] = append(t.free[len(m.Data)], m)
	}
	t.used = t.used[:0]
}

// Len returns the number of recorded nodes.
func (t *Tape) Len() int { return len(t.nodes) }

// NewMat returns a zeroed rows×cols matrix owned by the tape's arena: it is
// recycled (and its contents invalidated) by the next Reset. Freelist
// entries are keyed by element count, so a recycled buffer may be reshaped.
func (t *Tape) NewMat(rows, cols int) *Mat { return t.getMat(rows, cols, true) }

// getMat is NewMat with an optional zeroing pass; ops that overwrite every
// element skip it. Fresh allocations are already zeroed by the runtime.
func (t *Tape) getMat(rows, cols int, zero bool) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	if list := t.free[rows*cols]; len(list) > 0 {
		m := list[len(list)-1]
		t.free[rows*cols] = list[:len(list)-1]
		m.Rows, m.Cols = rows, cols
		if zero {
			m.Zero()
		}
		t.used = append(t.used, m)
		return m
	}
	m := NewMat(rows, cols)
	t.used = append(t.used, m)
	return m
}

// allocNode hands out the next node from the arena, zeroed and bound to t.
func (t *Tape) allocNode() *Node {
	bi, off := t.nodeCur/nodeBlockSize, t.nodeCur%nodeBlockSize
	if bi == len(t.blocks) {
		t.blocks = append(t.blocks, make([]Node, nodeBlockSize))
	}
	t.nodeCur++
	n := &t.blocks[bi][off]
	*n = Node{tape: t}
	return n
}

// Leaf wraps an existing matrix as a graph input. If requiresGrad is true
// (parameters), gradients accumulate into node.Grad; otherwise the node is a
// constant (data inputs). Leaves carry no backward closure and are not
// recorded, so Len() counts only backprop-relevant operations.
func (t *Tape) Leaf(m *Mat, requiresGrad bool) *Node {
	n := t.allocNode()
	n.Val = m
	n.requiresGrad = requiresGrad
	return n
}

// Param is shorthand for Leaf(m, true).
func (t *Tape) Param(m *Mat) *Node { return t.Leaf(m, true) }

// Const is shorthand for Leaf(m, false).
func (t *Tape) Const(m *Mat) *Node { return t.Leaf(m, false) }

// newNode records an operation output whose gradient is needed if any parent
// requires gradients.
func (t *Tape) newNode(val *Mat, back func(n *Node), parents ...*Node) *Node {
	req := false
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			req = true
			break
		}
	}
	n := t.allocNode()
	n.Val = val
	n.requiresGrad = req
	if req && back != nil {
		n.back = back
		t.nodes = append(t.nodes, n)
	}
	return n
}

// Backward seeds the gradient of root with 1s (it is typically a 1×1 loss)
// and propagates gradients to every recorded node in reverse order.
func (t *Tape) Backward(root *Node) {
	if root.Val.Rows*root.Val.Cols != 1 {
		panic(fmt.Sprintf("tensor: Backward root must be scalar, got %s", root.Val.shape()))
	}
	root.ensureGrad().Fill(1)
	t.backwardFrom()
}

// BackwardFromSeed propagates gradients assuming root.Grad has already been
// seeded by the caller (used by fused loss ops that set gradients directly).
func (t *Tape) BackwardFromSeed() {
	sp := t.Track.Begin("tape_backward")
	t.backwardFrom()
	sp.End()
}

func (t *Tape) backwardFrom() {
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad == nil {
			continue // no gradient flowed into this node
		}
		n.back(n)
	}
}

// Custom records an externally computed operation on the tape. If
// requiresGrad is true, back runs during Backward with out.Grad populated;
// the closure is responsible for propagating gradients to its inputs
// (e.g. scatter-adds into an embedding table). Used by package nn for ops
// that do not fit the Mat-in/Mat-out mold.
func (t *Tape) Custom(val *Mat, requiresGrad bool, back func(out *Node)) *Node {
	n := t.allocNode()
	n.Val = val
	n.requiresGrad = requiresGrad
	if requiresGrad && back != nil {
		n.back = back
		t.nodes = append(t.nodes, n)
	}
	return n
}

// ---------------------------------------------------------------------------
// Differentiable operations.
// ---------------------------------------------------------------------------

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	out := t.getMat(a.Val.Rows, b.Val.Cols, false)
	MatMul(out, a.Val, b.Val)
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			MatMulABTransAcc(a.ensureGrad(), n.Grad, b.Val)
		}
		if b.requiresGrad {
			MatMulATransBAcc(b.ensureGrad(), a.Val, n.Grad)
		}
	}, a, b)
}

// Add returns a+b element-wise; shapes must match.
func (t *Tape) Add(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %s vs %s", a.Val.shape(), b.Val.shape()))
	}
	out := t.getMat(a.Val.Rows, a.Val.Cols, false)
	copy(out.Data, a.Val.Data)
	out.AddInPlace(b.Val)
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(n.Grad)
		}
		if b.requiresGrad {
			b.ensureGrad().AddInPlace(n.Grad)
		}
	}, a, b)
}

// AddBias returns a + bias broadcast across rows; bias must be 1×cols.
func (t *Tape) AddBias(a, bias *Node) *Node {
	if bias.Val.Rows != 1 || bias.Val.Cols != a.Val.Cols {
		panic(fmt.Sprintf("tensor: AddBias bias %s incompatible with %s", bias.Val.shape(), a.Val.shape()))
	}
	out := t.getMat(a.Val.Rows, a.Val.Cols, false)
	copy(out.Data, a.Val.Data)
	brow := bias.Val.Row(0)
	for r := 0; r < out.Rows; r++ {
		row := out.Row(r)
		for c, v := range brow {
			row[c] += v
		}
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(n.Grad)
		}
		if bias.requiresGrad {
			g := bias.ensureGrad().Row(0)
			for r := 0; r < n.Grad.Rows; r++ {
				row := n.Grad.Row(r)
				for c, v := range row {
					g[c] += v
				}
			}
		}
	}, a, bias)
}

// Mul returns a⊙b (element-wise product); shapes must match.
func (t *Tape) Mul(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %s vs %s", a.Val.shape(), b.Val.shape()))
	}
	out := t.getMat(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		out.Data[i] = v * b.Val.Data[i]
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, gv := range n.Grad.Data {
				g.Data[i] += gv * b.Val.Data[i]
			}
		}
		if b.requiresGrad {
			g := b.ensureGrad()
			for i, gv := range n.Grad.Data {
				g.Data[i] += gv * a.Val.Data[i]
			}
		}
	}, a, b)
}

// Scale returns s*a.
func (t *Tape) Scale(a *Node, s float32) *Node {
	out := t.getMat(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		out.Data[i] = v * s
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			a.ensureGrad().AxpyInPlace(s, n.Grad)
		}
	}, a)
}

// Sigmoid returns 1/(1+e^-a) element-wise.
func (t *Tape) Sigmoid(a *Node) *Node {
	out := t.getMat(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		out.Data[i] = sigmoid32(v)
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, gv := range n.Grad.Data {
				y := n.Val.Data[i]
				g.Data[i] += gv * y * (1 - y)
			}
		}
	}, a)
}

// Tanh returns tanh(a) element-wise.
func (t *Tape) Tanh(a *Node) *Node {
	out := t.getMat(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		out.Data[i] = tanh32(v)
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, gv := range n.Grad.Data {
				y := n.Val.Data[i]
				g.Data[i] += gv * (1 - y*y)
			}
		}
	}, a)
}

// ReLU returns max(0, a) element-wise.
func (t *Tape) ReLU(a *Node) *Node {
	out := t.getMat(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, gv := range n.Grad.Data {
				if a.Val.Data[i] > 0 {
					g.Data[i] += gv
				}
			}
		}
	}, a)
}

// ConcatCols concatenates nodes column-wise; all inputs must share a row
// count. The result has the summed column count.
func (t *Tape) ConcatCols(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := nodes[0].Val.Rows
	total := 0
	for _, nd := range nodes {
		if nd.Val.Rows != rows {
			panic("tensor: ConcatCols row mismatch")
		}
		total += nd.Val.Cols
	}
	out := t.getMat(rows, total, false)
	off := 0
	for _, nd := range nodes {
		c := nd.Val.Cols
		for r := 0; r < rows; r++ {
			copy(out.Row(r)[off:off+c], nd.Val.Row(r))
		}
		off += c
	}
	parents := append([]*Node(nil), nodes...)
	return t.newNode(out, func(n *Node) {
		off := 0
		for _, nd := range parents {
			c := nd.Val.Cols
			if nd.requiresGrad {
				g := nd.ensureGrad()
				for r := 0; r < rows; r++ {
					grow := g.Row(r)
					nrow := n.Grad.Row(r)[off : off+c]
					for i, v := range nrow {
						grow[i] += v
					}
				}
			}
			off += c
		}
	}, parents...)
}

// SliceCols returns columns [lo, hi) of a as a new node.
func (t *Tape) SliceCols(a *Node, lo, hi int) *Node {
	if lo < 0 || hi > a.Val.Cols || lo >= hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %s", lo, hi, a.Val.shape()))
	}
	out := t.getMat(a.Val.Rows, hi-lo, false)
	for r := 0; r < a.Val.Rows; r++ {
		copy(out.Row(r), a.Val.Row(r)[lo:hi])
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for r := 0; r < a.Val.Rows; r++ {
				grow := g.Row(r)[lo:hi]
				for i, v := range n.Grad.Row(r) {
					grow[i] += v
				}
			}
		}
	}, a)
}

// LSTMCell is the fused LSTM cell update: given the pre-activation gate
// matrix (batch×4H, gate layout [input, forget, cell, output]) and the
// previous cell state cPrev (batch×H), it computes
//
//	i = σ(g₀)  f = σ(g₁)  g = tanh(g₂)  o = σ(g₃)
//	c = f⊙cPrev + i⊙g
//	h = o⊙tanh(c)
//
// in a single pass over the rows, and runs the entire backward in one fused
// closure. It replaces the 4 SliceCols copies, 4 activation nodes and 3
// element-wise nodes the unfused formulation records per step; every
// per-element float32 operation is evaluated in the same order as that node
// chain, so forward values and gradients are bit-identical to it.
//
// The returned c node carries no backward closure of its own: the next
// timestep accumulates dL/dc into c.Grad, and h's fused backward — which
// runs before anything recorded earlier — folds it in. Both h and c have
// their gradient buffers pre-allocated when gradients are required, so the
// fused backward never sees a nil input.
func (t *Tape) LSTMCell(gates, cPrev *Node) (h, c *Node) {
	hd := cPrev.Val.Cols
	batch := cPrev.Val.Rows
	if gates.Val.Rows != batch || gates.Val.Cols != 4*hd {
		panic(fmt.Sprintf("tensor: LSTMCell gates %s incompatible with state %s",
			gates.Val.shape(), cPrev.Val.shape()))
	}
	// acts stores the activated gates in the same [i, f, g, o] layout; tc
	// stores tanh(c). Both are needed by the fused backward.
	acts := t.getMat(batch, 4*hd, false)
	cVal := t.getMat(batch, hd, false)
	tc := t.getMat(batch, hd, false)
	hVal := t.getMat(batch, hd, false)
	for r := 0; r < batch; r++ {
		grow := gates.Val.Row(r)
		arow := acts.Row(r)
		cprow := cPrev.Val.Row(r)
		crow := cVal.Row(r)
		tcrow := tc.Row(r)
		hrow := hVal.Row(r)
		for j := 0; j < hd; j++ {
			iv := sigmoid32(grow[j])
			fv := sigmoid32(grow[hd+j])
			gv := tanh32(grow[2*hd+j])
			ov := sigmoid32(grow[3*hd+j])
			arow[j], arow[hd+j], arow[2*hd+j], arow[3*hd+j] = iv, fv, gv, ov
			cv := fv*cprow[j] + iv*gv
			tcv := tanh32(cv)
			crow[j] = cv
			tcrow[j] = tcv
			hrow[j] = ov * tcv
		}
	}
	c = t.allocNode()
	c.Val = cVal
	c.requiresGrad = gates.requiresGrad || cPrev.requiresGrad
	h = t.newNode(hVal, func(n *Node) {
		dh := n.Grad
		dc := c.Grad
		var gg, cpg *Mat
		if gates.requiresGrad {
			gg = gates.ensureGrad()
		}
		if cPrev.requiresGrad {
			cpg = cPrev.ensureGrad()
		}
		for r := 0; r < batch; r++ {
			arow := acts.Row(r)
			tcrow := tc.Row(r)
			cprow := cPrev.Val.Row(r)
			dhrow := dh.Row(r)
			dcrow := dc.Row(r)
			var ggrow, cpgrow []float32
			if gg != nil {
				ggrow = gg.Row(r)
			}
			if cpg != nil {
				cpgrow = cpg.Row(r)
			}
			for j := 0; j < hd; j++ {
				iv, fv, gv, ov := arow[j], arow[hd+j], arow[2*hd+j], arow[3*hd+j]
				tcv := tcrow[j]
				hG := dhrow[j]
				// Same per-element products, in the same order, as the
				// unfused node chain's backward (Mul → Tanh → Add → Mul×2 →
				// Sigmoid/Tanh → SliceCols).
				oG := hG * tcv
				tcG := hG * ov
				cG := dcrow[j] + tcG*(1-tcv*tcv)
				if cpgrow != nil {
					cpgrow[j] += cG * fv
				}
				if ggrow != nil {
					iG := cG * gv
					gG := cG * iv
					fG := cG * cprow[j]
					ggrow[j] += iG * iv * (1 - iv)
					ggrow[hd+j] += fG * fv * (1 - fv)
					ggrow[2*hd+j] += gG * (1 - gv*gv)
					ggrow[3*hd+j] += oG * ov * (1 - ov)
				}
			}
		}
	}, gates, cPrev)
	if h.requiresGrad {
		// Pre-allocate both output gradients (zeroed, like the lazily
		// ensured buffers of the unfused chain) so the fused backward can
		// read dc unconditionally even when the last timestep's c is unused.
		h.ensureGrad()
		c.ensureGrad()
	}
	return h, c
}

// DropoutMask applies a precomputed inverted-dropout mask (entries are 0 or
// 1/keep). The mask is supplied by the caller so randomness stays outside
// the tape and tests remain deterministic.
func (t *Tape) DropoutMask(a *Node, mask *Mat) *Node {
	if !a.Val.SameShape(mask) {
		panic("tensor: DropoutMask shape mismatch")
	}
	out := t.getMat(a.Val.Rows, a.Val.Cols, false)
	for i, v := range a.Val.Data {
		out.Data[i] = v * mask.Data[i]
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, gv := range n.Grad.Data {
				g.Data[i] += gv * mask.Data[i]
			}
		}
	}, a)
}

// MeanAll returns the scalar mean of all elements (1×1 node).
func (t *Tape) MeanAll(a *Node) *Node {
	out := t.getMat(1, 1, false)
	var s float64
	for _, v := range a.Val.Data {
		s += float64(v)
	}
	cnt := float32(len(a.Val.Data))
	out.Data[0] = float32(s) / cnt
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			gv := n.Grad.Data[0] / cnt
			for i := range g.Data {
				g.Data[i] += gv
			}
		}
	}, a)
}

// SumAll returns the scalar sum of all elements (1×1 node).
func (t *Tape) SumAll(a *Node) *Node {
	out := t.getMat(1, 1, false)
	var s float64
	for _, v := range a.Val.Data {
		s += float64(v)
	}
	out.Data[0] = float32(s)
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			gv := n.Grad.Data[0]
			for i := range g.Data {
				g.Data[i] += gv
			}
		}
	}, a)
}

package tensor

import (
	"runtime"
	"sync"
)

// The package keeps one persistent worker pool shared by every kernel (and,
// through RunTasks, by higher-level shard orchestration). Spawning a fresh
// goroutine per matmul call — the seed implementation's strategy — costs a
// scheduler round-trip on every hot-path kernel; the pool pays that cost
// once at startup and then dispatches chunks over a channel.
//
// Pool tasks must be leaves: a task may not block on other pool tasks.
// Kernels satisfy this by construction (a chunk is pure computation), which
// is what makes the shared pool deadlock-free even when many goroutines
// submit concurrently.

// chunkTask is one contiguous [lo, hi) slice of a parallel loop.
type chunkTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan chunkTask
	poolSize  int
)

func startPool() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	poolSize = n
	poolTasks = make(chan chunkTask, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range poolTasks {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// PoolWorkers returns the size of the shared worker pool (GOMAXPROCS at
// first use). Callers sizing their own data-parallel shards should match it.
func PoolWorkers() int {
	poolOnce.Do(startPool)
	return poolSize
}

// Parallel splits [0, n) into contiguous chunks and runs fn on each using
// the shared worker pool, blocking until all chunks complete. The calling
// goroutine executes the first chunk itself, so a single-chunk split never
// touches the pool. fn must not submit further pool work.
func Parallel(n int, fn func(lo, hi int)) {
	poolOnce.Do(startPool)
	chunks := poolSize
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		poolTasks <- chunkTask{fn: fn, lo: lo, hi: hi, wg: &wg}
	}
	fn(0, chunk)
	wg.Wait()
}

// RunTasks runs k independent tasks on the shared pool, blocking until all
// complete; task i receives its index. Unlike Parallel's chunk tasks, these
// tasks MAY themselves call Parallel: RunTasks executes them on fresh
// goroutines rather than pool workers, so pool workers never block waiting
// for other pool work. Used for coarse-grained shard fan-out (one task per
// minibatch shard).
func RunTasks(k int, task func(i int)) {
	if k <= 1 {
		if k == 1 {
			task(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(k - 1)
	for i := 1; i < k; i++ {
		go func(i int) {
			defer wg.Done()
			task(i)
		}(i)
	}
	task(0)
	wg.Wait()
}

// parallelRows dispatches row-range kernels onto the shared pool. Kept as a
// thin wrapper so kernel call sites read the same as in the serial path.
func parallelRows(n int, fn func(lo, hi int)) { Parallel(n, fn) }

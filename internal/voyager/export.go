package voyager

import "voyager/internal/vocab"

// Read-only accessors used by the distillation compiler (internal/distill):
// teacher-forced batched inference at arbitrary trigger positions plus the
// pre-encoded per-access tokens, without re-deriving the vocabulary encoding
// or touching the online-protocol prediction table.

// NumAccesses returns the number of accesses in the bound trace.
func (p *Predictor) NumAccesses() int { return len(p.lines) }

// TokensAt returns the encoded (pc, page, offset) tokens of access i.
func (p *Predictor) TokensAt(i int) (pcTok, pageTok, offTok int) {
	t := p.tokens[i]
	return t.pc, t.page, t.off
}

// LineAt returns the cache-line number of access i.
func (p *Predictor) LineAt(i int) uint64 { return p.lines[i] }

// PCAt returns the raw program counter of access i.
func (p *Predictor) PCAt(i int) uint64 { return p.pcs[i] }

// PredictAt runs one inference batch over the given trigger positions and
// returns, per position, the model's top-degree (page, offset) candidates.
// Unlike predictRange it never writes the prediction table or provenance
// log: it is the read-only teacher query for distillation and agreement
// measurement. Rows are freshly allocated; positions is only read.
func (p *Predictor) PredictAt(positions []int, degree int) [][]Candidate {
	if len(positions) == 0 {
		return nil
	}
	return p.Model.PredictBatch(p.buildBatch(positions), degree)
}

// VocabOptions exposes the vocabulary options this config implies, so tools
// that load a distilled table can rebuild the exact training vocabulary from
// the same trace (construction is deterministic; the table's embedded
// fingerprint verifies the match).
func (c Config) VocabOptions() vocab.Options { return c.vocabOptions() }

// Config returns the configuration the model was built with (for servers
// that need SeqLen/Degree without re-plumbing the construction config).
func (m *Model) Config() Config { return m.cfg }

// TokenBatch assembles token sequences for PredictTokenBatch without a bound
// trace — the serving-side equivalent of Predictor.buildBatch, fed from
// per-stream session rings instead of a pre-encoded trace. Row storage is
// reused across Reset cycles, so a long-running server's steady state
// allocates nothing here. Not safe for concurrent use; the serving batcher
// owns exactly one.
type TokenBatch struct {
	seqLen int
	seqs   []batchToken
	rows   int
}

// NewTokenBatch returns an assembler for sequences of the given length
// (the model's Config().SeqLen).
func NewTokenBatch(seqLen int) *TokenBatch {
	b := &TokenBatch{seqLen: seqLen, seqs: make([]batchToken, seqLen)}
	return b
}

// Reset clears the batch for reuse, keeping row storage.
func (b *TokenBatch) Reset() { b.rows = 0 }

// Rows returns the number of rows added since the last Reset.
func (b *TokenBatch) Rows() int { return b.rows }

// Add appends one row: the (pc, page, offset) token ids of the stream's
// seqLen most recent accesses, oldest first. All three slices must have
// length seqLen.
func (b *TokenBatch) Add(pc, page, off []int32) {
	if len(pc) != b.seqLen || len(page) != b.seqLen || len(off) != b.seqLen {
		panic("voyager: TokenBatch.Add row length != seqLen")
	}
	r := b.rows
	for s := 0; s < b.seqLen; s++ {
		tok := &b.seqs[s]
		if r < len(tok.pc) {
			tok.pc[r] = int(pc[s])
			tok.page[r] = int(page[s])
			tok.off[r] = int(off[s])
		} else {
			tok.pc = append(tok.pc, int(pc[s]))
			tok.page = append(tok.page, int(page[s]))
			tok.off = append(tok.off, int(off[s]))
		}
	}
	b.rows = r + 1
}

// PredictTokenBatch runs one inference batch over externally-assembled token
// rows and returns, per row, the model's top-degree candidates. The forward
// pass is row-independent at inference (no dropout, per-row top-k, fixed
// summation order), so each row's candidates are bit-identical to the same
// tokens run through PredictAt in any other batch composition — the property
// the serving-path golden differential pins. Must be called from a single
// goroutine at a time (the serving batcher), like every PredictBatch entry.
func (m *Model) PredictTokenBatch(b *TokenBatch, degree int) [][]Candidate {
	if b.rows == 0 {
		return nil
	}
	seqs := make([]batchToken, b.seqLen)
	for s := range seqs {
		seqs[s].pc = b.seqs[s].pc[:b.rows]
		seqs[s].page = b.seqs[s].page[:b.rows]
		seqs[s].off = b.seqs[s].off[:b.rows]
	}
	return m.PredictBatch(seqs, degree)
}

// SetQuantizedPredict toggles the int8 quantized predict path on an
// already-constructed model (otherwise Config.QuantizedPredict is fixed at
// construction). The next PredictBatch requantizes the head shadows from
// the current fp32 weights, so toggling is safe at any point between
// batches; existing replicas are switched along with the master.
func (m *Model) SetQuantizedPredict(on bool) {
	m.cfg.QuantizedPredict = on
	m.qDirty = true
	for _, r := range m.replicas {
		r.cfg.QuantizedPredict = on
	}
}

package tensor

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// naive reference kernels: the textbook triple loops the blocked kernels
// must match bit-for-bit (the blocked kernels only re-tile the iteration
// space; they never reassociate a dst element's summation order).

func refMatMulPool(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func refATransBPool(a, b *Mat) *Mat {
	out := NewMat(a.Cols, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				out.Data[k*b.Cols+j] += av * b.At(i, j)
			}
		}
	}
	return out
}

func refABTransPool(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Data[i*b.Rows+j] += s
		}
	}
	return out
}

func randMatSparse(rng *rand.Rand, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
		if rng.Intn(8) == 0 {
			m.Data[i] = 0 // exercise the zero-skip paths
		}
	}
	return m
}

func mustEqualBits(t *testing.T, name string, got, want *Mat) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bit-exact)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// Shapes straddle the kernelKTile and parallelThreshold boundaries so the
// blocked, remainder, and pooled paths are all exercised.
func TestBlockedKernelsBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ r, k, c int }{
		{1, 1, 1},
		{3, 5, 7},
		{8, kernelKTile, 16},
		{7, kernelKTile + 3, 33},
		{5, 2*kernelKTile + 1, 9},
		{64, 96, 80}, // above parallelThreshold: pooled dispatch
		{65, 130, 67},
	}
	for _, s := range shapes {
		a := randMatSparse(rng, s.r, s.k)
		b := randMatSparse(rng, s.k, s.c)
		mustEqualBits(t, "MatMul", MatMul(nil, a, b), refMatMulPool(a, b))

		at := randMatSparse(rng, s.k, s.r) // aᵀ·b: a is k×r, b is k×c, dst r×c
		bt := randMatSparse(rng, s.k, s.c)
		mustEqualBits(t, "MatMulATransB", MatMulATransB(nil, at, bt), refATransBPool(at, bt))

		ab := randMatSparse(rng, s.r, s.k) // a·bᵀ: a is r×k, b is c×k, dst r×c
		bb := randMatSparse(rng, s.c, s.k)
		mustEqualBits(t, "MatMulABTrans", MatMulABTrans(nil, ab, bb), refABTransPool(ab, bb))
	}
}

func TestParallelCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 1000} {
		hits := make([]int32, n)
		Parallel(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestRunTasksRunsEachIndexOnce(t *testing.T) {
	for _, k := range []int{0, 1, 2, 8} {
		hits := make([]int32, k)
		RunTasks(k, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("k=%d: task %d ran %d times", k, i, h)
			}
		}
	}
}

// Tasks started by RunTasks may themselves use the pool via Parallel; the
// combination must not deadlock (pool workers only ever run leaf chunks).
func TestNestedRunTasksParallelNoDeadlock(t *testing.T) {
	var total int64
	RunTasks(8, func(i int) {
		Parallel(1000, func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
	})
	if total != 8000 {
		t.Fatalf("total %d want 8000", total)
	}
}

package label

import (
	"math/rand"
	"testing"

	"voyager/internal/trace"
)

// TestComputeIsDeterministic regression-tests the maporder fix in the
// co-occurrence scheme: the mode computation ranges over a per-window count
// map, and label selection must not depend on map iteration order. Two
// Computes over the same trace must agree on every label of every scheme.
func TestComputeIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := &trace.Trace{Name: "det"}
	// Small line universe forces dense co-occurrence windows with ties.
	for i := 0; i < 3000; i++ {
		line := uint64(rng.Intn(32))
		tr.Append(uint64(rng.Intn(8)), line<<trace.LineBits, uint64(i+1))
	}

	a := Compute(tr)
	b := Compute(tr)
	if len(a) != len(b) {
		t.Fatalf("label counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for s := Scheme(0); s < NumSchemes; s++ {
			av, aok := a[i].Get(s)
			bv, bok := b[i].Get(s)
			if av != bv || aok != bok {
				t.Fatalf("position %d scheme %v: (%d,%v) vs (%d,%v)", i, s, av, aok, bv, bok)
			}
		}
	}
}

package analysis

import "strings"

// directive is one parsed //lint:ignore comment.
type directive struct {
	file   string
	line   int    // line the comment sits on
	checks string // comma-separated check names
}

// directives indexes a package's //lint:ignore comments.
type directives struct {
	entries   []directive
	malformed []Diagnostic
}

// ignoreDirectives scans every file's comments for
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// A directive suppresses matching findings on its own line (trailing
// comment) and on the line immediately below it (comment-above style).
// A directive without a reason is itself reported as a finding.
func (p *Package) ignoreDirectives() *directives {
	d := &directives{}
	for _, f := range p.AllSyntax() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					d.malformed = append(d.malformed, Diagnostic{
						Pos:     pos,
						Check:   "lintdirective",
						Message: "malformed //lint:ignore: want \"//lint:ignore <check> <reason>\"",
					})
					continue
				}
				d.entries = append(d.entries, directive{
					file:   pos.Filename,
					line:   pos.Line,
					checks: fields[0],
				})
			}
		}
	}
	return d
}

// suppresses reports whether a directive covers the diagnostic.
func (d *directives) suppresses(diag Diagnostic) bool {
	for _, e := range d.entries {
		if e.file != diag.Pos.Filename {
			continue
		}
		if diag.Pos.Line != e.line && diag.Pos.Line != e.line+1 {
			continue
		}
		for _, c := range strings.Split(e.checks, ",") {
			if c == diag.Check || c == "all" {
				return true
			}
		}
	}
	return false
}

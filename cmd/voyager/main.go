// Command voyager trains the Voyager model on a benchmark (or trace file)
// with the paper's online protocol and reports unified accuracy/coverage,
// per-epoch losses, and the model's size.
//
// Usage:
//
//	go run ./cmd/voyager -bench soplex
//	go run ./cmd/voyager -bench pr -hidden 64 -passes 4 -degree 4
//	go run ./cmd/voyager -trace pr.vygr -schemes pc -no-deltas
//	go run ./cmd/voyager -bench cc -distill cc.vydt -distilled-predict
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"voyager/internal/distill"
	"voyager/internal/eval"
	"voyager/internal/label"
	"voyager/internal/metrics"
	"voyager/internal/prefetch/distilled"
	"voyager/internal/sim"
	"voyager/internal/tensor"
	"voyager/internal/trace"
	"voyager/internal/tracing"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

func parseSchemes(s string) ([]label.Scheme, error) {
	if s == "" || s == "all" {
		return label.AllSchemes(), nil
	}
	var out []label.Scheme
	for _, name := range strings.Split(s, ",") {
		found := false
		for _, sc := range label.AllSchemes() {
			if sc.String() == name {
				out = append(out, sc)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown labeling scheme %q", name)
		}
	}
	return out, nil
}

// heldOutHalf samples up to 2048 evenly-strided trigger positions from the
// second (non-calibration) half of the trace.
func heldOutHalf(n int) []int {
	lo := n / 2
	stride := (n - lo) / 2048
	if stride < 1 {
		stride = 1
	}
	var out []int
	for i := lo; i < n; i += stride {
		out = append(out, i)
	}
	return out
}

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark name (generates a trace)")
		traceFile = flag.String("trace", "", "binary trace file")
		n         = flag.Int("n", 24_000, "max accesses when generating")
		seed      = flag.Int64("seed", 42, "randomness seed")
		hidden    = flag.Int("hidden", 64, "LSTM units")
		passes    = flag.Int("passes", 4, "training passes per epoch")
		epoch     = flag.Int("epoch", 6_000, "epoch length in accesses")
		degree    = flag.Int("degree", 1, "prefetch degree")
		schemes   = flag.String("schemes", "all", "labeling schemes (comma list: global,pc,basic-block,spatial,co-occurrence)")
		noDeltas  = flag.Bool("no-deltas", false, "disable the delta vocabulary (Voyager w/o delta)")
		noPC      = flag.Bool("no-pc", false, "drop the PC-history feature")
		window    = flag.Int("window", eval.DefaultWindow, "unified-metric window")
		saveFile  = flag.String("save", "", "write trained weights to this file")
		distOut   = flag.String("distill", "", "compile the trained model into a distilled lookup table (calibrated on the first half) and save it to this file")
		distPred  = flag.Bool("distilled-predict", false, "also replay the distilled table online: unified metric, fallback-tier shares, and a simulator run")
		fastMath  = flag.Bool("fastmath", false, "reassociated matmul kernels: faster, float32-rounding-level differences, NOT bit-reproducible across builds")
		quantPred = flag.Bool("quant-predict", false, "int8 weight-quantized output heads for prediction (training stays fp32)")

		metricsOut  = flag.String("metrics", "", "stream NDJSON metric snapshots to this file")
		metricsHTTP = flag.String("metrics-http", "", "serve /metrics, /trace and /debug/pprof on this address (e.g. localhost:6060)")
		manifest    = flag.String("manifest", "", "write a run-manifest JSON (config, seed, git ref, final metrics) to this file")

		// -trace is the *input* memory-access trace (internal/trace);
		// -trace-out is the *output* execution-span timeline (internal/tracing).
		traceOut   = flag.String("trace-out", "", "write Chrome trace-event JSON (execution spans; open in Perfetto) to this file")
		traceClock = flag.String("trace-clock", "wall", "span timestamps: wall | logical (logical exports are byte-identical across same-seed runs)")
		provOut    = flag.String("provenance", "", "write the per-label-scheme prefetch provenance table (JSON) to this file")
	)
	flag.Parse()
	if *traceClock != "wall" && *traceClock != "logical" {
		fmt.Fprintf(os.Stderr, "voyager: -trace-clock must be wall or logical, got %q\n", *traceClock)
		os.Exit(2)
	}
	tensor.SetFastMath(*fastMath)

	var tr *trace.Trace
	var err error
	switch {
	case *traceFile != "":
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "voyager:", ferr)
			os.Exit(1)
		}
		tr, err = trace.Read(f)
		_ = f.Close() // read-side close: the trace is already in memory
	case *bench != "":
		tr, err = workloads.Generate(*bench, workloads.Config{Seed: *seed, Scale: 1, MaxAccesses: *n})
	default:
		err = fmt.Errorf("one of -bench or -trace is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager:", err)
		os.Exit(2)
	}

	cfg := voyager.ScaledConfig()
	cfg.Seed = *seed
	cfg.Hidden = *hidden
	cfg.PassesPerEpoch = *passes
	cfg.EpochAccesses = *epoch
	cfg.Degree = *degree
	cfg.UseDeltas = !*noDeltas
	cfg.DropoutKeep = 1
	cfg.QuantizedPredict = *quantPred
	if *noPC {
		cfg.PCUse = voyager.PCNone
	}
	cfg.Schemes, err = parseSchemes(*schemes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager:", err)
		os.Exit(2)
	}

	var tracer *tracing.Tracer
	if *traceOut != "" {
		tracer = tracing.New(tracing.Options{
			Path:       *traceOut,
			Logical:    *traceClock == "logical",
			FlushEvery: 2 * time.Second,
		})
	}
	var provSet *tracing.ProvenanceSet
	var prov *tracing.DecisionLog
	if *provOut != "" {
		provSet = tracing.NewProvenanceSet()
		prov = provSet.NewLog(tr.Name + "/voyager")
	}

	sink, err := metrics.Start(metrics.SinkOptions{
		Tool:         "voyager",
		Config:       cfg,
		Seed:         *seed,
		StreamPath:   *metricsOut,
		HTTPAddr:     *metricsHTTP,
		ManifestPath: *manifest,
		Handlers:     map[string]http.Handler{"/trace": tracer.Handler()},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager: metrics:", err)
		os.Exit(1)
	}
	cfg.Metrics = sink.Registry()
	cfg.Trace = tracer
	cfg.Provenance = prov
	if addr := sink.HTTPAddr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics (trace at /trace, pprof at /debug/pprof/)\n", addr)
	}

	fmt.Println(trace.ComputeStats(tr))
	start := time.Now()
	p, err := voyager.Train(tr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	evalSp := tracer.Track("eval", "main").Begin("unified")
	u := eval.Unified(tr, p.Predictions(), *window, cfg.EpochAccesses)
	evalSp.End()
	eval.RecordUnified(sink.Registry(), tr.Name, "voyager", u)
	eval.MarkProvenance(tr, *window, cfg.EpochAccesses, prov)
	fmt.Printf("trained %d samples in %v (%d params, %d bytes fp32)\n",
		p.TrainedSamples(), elapsed.Round(time.Millisecond),
		p.Model.Params().Count(), p.Model.Params().Bytes(32))
	fmt.Printf("epoch losses: ")
	for _, l := range p.EpochLosses() {
		fmt.Printf("%.4f ", l)
	}
	fmt.Println()
	fmt.Printf("unified accuracy/coverage (window %d): %.3f\n", *window, u)
	fmt.Printf("vocabulary: %s\n", p.Model.Vocab())

	// With tracing or provenance requested, also run the cache simulator so
	// every decision resolves to its simulated fate (useful/late/evicted/
	// resident) and the timeline gains the cache-level rows. Training ran on
	// the raw trace, so prediction indices already match the simulator's
	// trigger indices.
	if tracer != nil || prov != nil {
		machine := sim.NewMachine(sim.ScaledConfig())
		machine.Instrument(sink.Registry())
		machine.Trace(tracer, "sim/voyager")
		machine.Provenance(prov)
		res := machine.Run(tr, p.AsPrefetcher())
		fmt.Println(res)
	}

	// Distillation: compile the teacher's top-k distributions into the O(1)
	// lookup table (calibrated on the first half of the trace so the
	// agreement number below is held-out, not memorized).
	if *distOut != "" || *distPred {
		sp := tracer.Track("distill", "main").Begin("compile")
		tab := distill.Compile(p, 0, p.NumAccesses()/2, distill.DefaultParams())
		sp.End()
		fmt.Printf("distilled: %s\n", tab)
		fmt.Printf("distilled held-out top-1 agreement vs teacher: %.3f\n",
			distill.Agreement(p, tab, heldOutHalf(p.NumAccesses())))
		if *distOut != "" {
			if err := tab.Save(*distOut); err != nil {
				fmt.Fprintln(os.Stderr, "voyager: distill:", err)
				os.Exit(1)
			}
			fmt.Printf("distilled table written to %s (%d bytes)\n", *distOut, tab.Bytes())
		}
		if *distPred {
			pf, err := distilled.New(tab, p.Model.Vocab(), cfg.Degree)
			if err != nil {
				fmt.Fprintln(os.Stderr, "voyager: distill:", err)
				os.Exit(1)
			}
			preds := eval.CollectPredictions(tr, pf)
			du := eval.Unified(tr, preds, *window, cfg.EpochAccesses)
			eval.RecordUnified(sink.Registry(), tr.Name, "distilled", du)
			fmt.Printf("distilled unified accuracy/coverage (window %d): %.3f\n", *window, du)
			tiers := pf.TierCounts()
			total := 0
			for _, c := range tiers {
				total += c
			}
			if total > 0 {
				fmt.Printf("distilled fallback tiers:")
				for t, c := range tiers {
					fmt.Printf(" %s %.1f%%", distill.Tier(t), 100*float64(c)/float64(total))
				}
				fmt.Println()
			}
			pf.Reset()
			var dprov *tracing.DecisionLog
			if provSet != nil {
				dprov = provSet.NewLog(tr.Name + "/distilled")
			}
			machine := sim.NewMachine(sim.ScaledConfig())
			machine.Instrument(sink.Registry())
			machine.Trace(tracer, "sim/distilled")
			machine.Provenance(dprov)
			res := machine.Run(tr, pf)
			fmt.Println(res)
		}
	}
	if prov != nil {
		fmt.Println(prov.BuildTable(label.SchemeNames()))
		if err := provSet.WriteFile(*provOut, label.SchemeNames()); err != nil {
			fmt.Fprintln(os.Stderr, "voyager: provenance:", err)
			os.Exit(1)
		}
		fmt.Printf("provenance written to %s\n", *provOut)
	}

	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		if err := p.SaveWeights(f); err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		fmt.Printf("weights saved to %s\n", *saveFile)
	}

	if err := tracer.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "voyager: tracing:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		fmt.Printf("trace written to %s (open in https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "voyager: metrics:", err)
		os.Exit(1)
	}
}

package tensor

import "fmt"

// Node is a value in the autodiff graph: a matrix plus (lazily allocated)
// gradient storage and a backward closure.
type Node struct {
	Val  *Mat
	Grad *Mat

	requiresGrad bool
	back         func()
}

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// ensureGrad allocates the gradient matrix on first use.
func (n *Node) ensureGrad() *Mat {
	if n.Grad == nil {
		n.Grad = NewMat(n.Val.Rows, n.Val.Cols)
	}
	return n.Grad
}

// EnsureGrad exposes gradient allocation for external custom ops (package
// nn builds fused ops via Tape.Custom and must write input gradients).
func (n *Node) EnsureGrad() *Mat { return n.ensureGrad() }

// Tape records differentiable operations in execution order so Backward can
// replay them in reverse. A Tape is not safe for concurrent use; build one
// per training step (or Reset between steps).
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded operations, retaining capacity.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// Len returns the number of recorded nodes.
func (t *Tape) Len() int { return len(t.nodes) }

// Leaf wraps an existing matrix as a graph input. If requiresGrad is true
// (parameters), gradients accumulate into node.Grad; otherwise the node is a
// constant (data inputs).
func (t *Tape) Leaf(m *Mat, requiresGrad bool) *Node {
	n := &Node{Val: m, requiresGrad: requiresGrad}
	// Leaves carry no backward closure and need not be recorded, but
	// recording them keeps Len() meaningful for tests.
	return n
}

// Param is shorthand for Leaf(m, true).
func (t *Tape) Param(m *Mat) *Node { return t.Leaf(m, true) }

// Const is shorthand for Leaf(m, false).
func (t *Tape) Const(m *Mat) *Node { return t.Leaf(m, false) }

// newNode records an operation output whose gradient is needed if any parent
// requires gradients.
func (t *Tape) newNode(val *Mat, back func(n *Node), parents ...*Node) *Node {
	req := false
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			req = true
			break
		}
	}
	n := &Node{Val: val, requiresGrad: req}
	if req && back != nil {
		n.back = func() { back(n) }
		t.nodes = append(t.nodes, n)
	}
	return n
}

// Backward seeds the gradient of root with 1s (it is typically a 1×1 loss)
// and propagates gradients to every recorded node in reverse order.
func (t *Tape) Backward(root *Node) {
	if root.Val.Rows*root.Val.Cols != 1 {
		panic(fmt.Sprintf("tensor: Backward root must be scalar, got %s", root.Val.shape()))
	}
	root.ensureGrad().Fill(1)
	t.backwardFrom()
}

// BackwardFromSeed propagates gradients assuming root.Grad has already been
// seeded by the caller (used by fused loss ops that set gradients directly).
func (t *Tape) BackwardFromSeed() { t.backwardFrom() }

func (t *Tape) backwardFrom() {
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad == nil {
			continue // no gradient flowed into this node
		}
		if n.back != nil {
			n.back()
		}
	}
}

// Custom records an externally computed operation on the tape. If
// requiresGrad is true, back runs during Backward with out.Grad populated;
// the closure is responsible for propagating gradients to its inputs
// (e.g. scatter-adds into an embedding table). Used by package nn for ops
// that do not fit the Mat-in/Mat-out mold.
func (t *Tape) Custom(val *Mat, requiresGrad bool, back func(out *Node)) *Node {
	n := &Node{Val: val, requiresGrad: requiresGrad}
	if requiresGrad && back != nil {
		n.back = func() { back(n) }
		t.nodes = append(t.nodes, n)
	}
	return n
}

// ---------------------------------------------------------------------------
// Differentiable operations.
// ---------------------------------------------------------------------------

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	out := MatMul(nil, a.Val, b.Val)
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			MatMulABTransAcc(a.ensureGrad(), n.Grad, b.Val)
		}
		if b.requiresGrad {
			MatMulATransBAcc(b.ensureGrad(), a.Val, n.Grad)
		}
	}, a, b)
}

// Add returns a+b element-wise; shapes must match.
func (t *Tape) Add(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %s vs %s", a.Val.shape(), b.Val.shape()))
	}
	out := a.Val.Clone()
	out.AddInPlace(b.Val)
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(n.Grad)
		}
		if b.requiresGrad {
			b.ensureGrad().AddInPlace(n.Grad)
		}
	}, a, b)
}

// AddBias returns a + bias broadcast across rows; bias must be 1×cols.
func (t *Tape) AddBias(a, bias *Node) *Node {
	if bias.Val.Rows != 1 || bias.Val.Cols != a.Val.Cols {
		panic(fmt.Sprintf("tensor: AddBias bias %s incompatible with %s", bias.Val.shape(), a.Val.shape()))
	}
	out := a.Val.Clone()
	brow := bias.Val.Row(0)
	for r := 0; r < out.Rows; r++ {
		row := out.Row(r)
		for c, v := range brow {
			row[c] += v
		}
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(n.Grad)
		}
		if bias.requiresGrad {
			g := bias.ensureGrad().Row(0)
			for r := 0; r < n.Grad.Rows; r++ {
				row := n.Grad.Row(r)
				for c, v := range row {
					g[c] += v
				}
			}
		}
	}, a, bias)
}

// Mul returns a⊙b (element-wise product); shapes must match.
func (t *Tape) Mul(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %s vs %s", a.Val.shape(), b.Val.shape()))
	}
	out := NewMat(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		out.Data[i] = v * b.Val.Data[i]
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, gv := range n.Grad.Data {
				g.Data[i] += gv * b.Val.Data[i]
			}
		}
		if b.requiresGrad {
			g := b.ensureGrad()
			for i, gv := range n.Grad.Data {
				g.Data[i] += gv * a.Val.Data[i]
			}
		}
	}, a, b)
}

// Scale returns s*a.
func (t *Tape) Scale(a *Node, s float32) *Node {
	out := a.Val.Clone()
	out.ScaleInPlace(s)
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			a.ensureGrad().AxpyInPlace(s, n.Grad)
		}
	}, a)
}

// Sigmoid returns 1/(1+e^-a) element-wise.
func (t *Tape) Sigmoid(a *Node) *Node {
	out := NewMat(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		out.Data[i] = sigmoid32(v)
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, gv := range n.Grad.Data {
				y := n.Val.Data[i]
				g.Data[i] += gv * y * (1 - y)
			}
		}
	}, a)
}

// Tanh returns tanh(a) element-wise.
func (t *Tape) Tanh(a *Node) *Node {
	out := NewMat(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		out.Data[i] = tanh32(v)
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, gv := range n.Grad.Data {
				y := n.Val.Data[i]
				g.Data[i] += gv * (1 - y*y)
			}
		}
	}, a)
}

// ReLU returns max(0, a) element-wise.
func (t *Tape) ReLU(a *Node) *Node {
	out := NewMat(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, gv := range n.Grad.Data {
				if a.Val.Data[i] > 0 {
					g.Data[i] += gv
				}
			}
		}
	}, a)
}

// ConcatCols concatenates nodes column-wise; all inputs must share a row
// count. The result has the summed column count.
func (t *Tape) ConcatCols(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := nodes[0].Val.Rows
	total := 0
	for _, nd := range nodes {
		if nd.Val.Rows != rows {
			panic("tensor: ConcatCols row mismatch")
		}
		total += nd.Val.Cols
	}
	out := NewMat(rows, total)
	off := 0
	for _, nd := range nodes {
		c := nd.Val.Cols
		for r := 0; r < rows; r++ {
			copy(out.Row(r)[off:off+c], nd.Val.Row(r))
		}
		off += c
	}
	parents := append([]*Node(nil), nodes...)
	return t.newNode(out, func(n *Node) {
		off := 0
		for _, nd := range parents {
			c := nd.Val.Cols
			if nd.requiresGrad {
				g := nd.ensureGrad()
				for r := 0; r < rows; r++ {
					grow := g.Row(r)
					nrow := n.Grad.Row(r)[off : off+c]
					for i, v := range nrow {
						grow[i] += v
					}
				}
			}
			off += c
		}
	}, parents...)
}

// SliceCols returns columns [lo, hi) of a as a new node.
func (t *Tape) SliceCols(a *Node, lo, hi int) *Node {
	if lo < 0 || hi > a.Val.Cols || lo >= hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %s", lo, hi, a.Val.shape()))
	}
	out := NewMat(a.Val.Rows, hi-lo)
	for r := 0; r < a.Val.Rows; r++ {
		copy(out.Row(r), a.Val.Row(r)[lo:hi])
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for r := 0; r < a.Val.Rows; r++ {
				grow := g.Row(r)[lo:hi]
				for i, v := range n.Grad.Row(r) {
					grow[i] += v
				}
			}
		}
	}, a)
}

// DropoutMask applies a precomputed inverted-dropout mask (entries are 0 or
// 1/keep). The mask is supplied by the caller so randomness stays outside
// the tape and tests remain deterministic.
func (t *Tape) DropoutMask(a *Node, mask *Mat) *Node {
	if !a.Val.SameShape(mask) {
		panic("tensor: DropoutMask shape mismatch")
	}
	out := NewMat(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		out.Data[i] = v * mask.Data[i]
	}
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, gv := range n.Grad.Data {
				g.Data[i] += gv * mask.Data[i]
			}
		}
	}, a)
}

// MeanAll returns the scalar mean of all elements (1×1 node).
func (t *Tape) MeanAll(a *Node) *Node {
	out := NewMat(1, 1)
	var s float64
	for _, v := range a.Val.Data {
		s += float64(v)
	}
	cnt := float32(len(a.Val.Data))
	out.Data[0] = float32(s) / cnt
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			gv := n.Grad.Data[0] / cnt
			for i := range g.Data {
				g.Data[i] += gv
			}
		}
	}, a)
}

// SumAll returns the scalar sum of all elements (1×1 node).
func (t *Tape) SumAll(a *Node) *Node {
	out := NewMat(1, 1)
	var s float64
	for _, v := range a.Val.Data {
		s += float64(v)
	}
	out.Data[0] = float32(s)
	return t.newNode(out, func(n *Node) {
		if a.requiresGrad {
			g := a.ensureGrad()
			gv := n.Grad.Data[0]
			for i := range g.Data {
				g.Data[i] += gv
			}
		}
	}, a)
}

// MatMulABTransAcc computes dst += a·bᵀ (gradient helper).
func MatMulABTransAcc(dst, a, b *Mat) {
	tmp := MatMulABTrans(nil, a, b)
	dst.AddInPlace(tmp)
}

// MatMulATransBAcc computes dst += aᵀ·b (gradient helper).
func MatMulATransBAcc(dst, a, b *Mat) {
	tmp := MatMulATransB(nil, a, b)
	dst.AddInPlace(tmp)
}

// Package sharedrand flags *math/rand.Rand values that can be shared
// across goroutines.
//
// rand.Rand is not safe for concurrent use, and even under a lock a shared
// stream makes the interleaving of draws — and therefore dropout masks and
// negative samples — depend on goroutine scheduling, destroying
// reproducibility. The training engine's rule is one stream per worker,
// seeded Seed+workerID. The analyzer reports:
//
//   - *rand.Rand variables (including struct fields like m.rng) referenced
//     inside a function literal launched by a `go` statement or handed to
//     the tensor worker pool via RunTasks;
//   - package-level *rand.Rand variables, which are de-facto shared state.
//
// Code that provably selects a per-worker stream inside the closure can
// carry //lint:ignore sharedrand <reason>.
package sharedrand

import (
	"go/ast"
	"go/types"

	"voyager/internal/analysis"
)

// launcher identifies a function that runs closures on other goroutines.
type launcher struct{ pkg, name string }

var launchers = []launcher{
	{"voyager/internal/tensor", "RunTasks"},
}

// New returns the analyzer. Extra launchers may be given as
// "import/path.FuncName" strings (used by tests).
func New(extraLaunchers ...string) *analysis.Analyzer {
	ls := launchers
	for _, e := range extraLaunchers {
		for i := len(e) - 1; i >= 0; i-- {
			if e[i] == '.' {
				ls = append(ls, launcher{e[:i], e[i+1:]})
				break
			}
		}
	}
	return &analysis.Analyzer{
		Name: "sharedrand",
		Doc:  "flags *rand.Rand streams shared across goroutines",
		Run: func(pass *analysis.Pass) {
			if pass.Pkg.IsTest {
				pass.SkipPackage()
				return
			}
			for _, f := range pass.Pkg.Files {
				checkFile(pass, f, ls)
			}
		},
	}
}

func isRandPtr(t types.Type) bool {
	return t != nil && analysis.IsNamed(t, "math/rand", "Rand")
}

func checkFile(pass *analysis.Pass, f *ast.File, ls []launcher) {
	// Package-level *rand.Rand variables are shared by construction.
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if obj := pass.ObjectOf(name); obj != nil {
					if _, isVar := obj.(*types.Var); isVar && isRandPtr(obj.Type()) {
						pass.Reportf(name.Pos(), "package-level *rand.Rand %s is shared by every caller: use one stream per worker (Seed+workerID) instead", name.Name)
					}
				}
			}
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			checkLaunchArgs(pass, st.Call, "go statement")
		case *ast.CallExpr:
			if l, ok := launchTarget(pass, st, ls); ok {
				checkLaunchArgs(pass, st, l.name)
			}
		}
		return true
	})
}

// launchTarget reports whether call invokes a registered worker-pool
// launcher.
func launchTarget(pass *analysis.Pass, call *ast.CallExpr, ls []launcher) (launcher, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = pass.ObjectOf(fun.Sel)
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return launcher{}, false
	}
	for _, l := range ls {
		if fn.Name() == l.name && fn.Pkg().Path() == l.pkg {
			return l, true
		}
	}
	return launcher{}, false
}

// checkLaunchArgs inspects the call's function literals (the launched
// closure and any closure arguments) for *rand.Rand references declared
// outside the literal.
func checkLaunchArgs(pass *analysis.Pass, call *ast.CallExpr, how string) {
	lits := []ast.Expr{call.Fun}
	lits = append(lits, call.Args...)
	for _, e := range lits {
		fl, ok := ast.Unparen(e).(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.ObjectOf(id).(*types.Var)
			if !ok || !isRandPtr(v.Type()) {
				return true
			}
			// Declarations inside the literal are goroutine-local.
			if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
				return true
			}
			what := "variable"
			if v.IsField() {
				what = "field"
			}
			pass.Reportf(id.Pos(), "*rand.Rand %s %s captured by closure launched via %s: rand.Rand is not goroutine-safe and shared draws break reproducibility; use one stream per worker", what, id.Name, how)
			return true
		})
	}
}

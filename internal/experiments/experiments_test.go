package experiments

import (
	"strings"
	"testing"
)

// The experiment harness is exercised end-to-end at TestOptions scale with
// a two-benchmark subset; the full-scale run is driven by cmd/experiments
// and bench_test.go.

func smallRun(benches ...string) *Run {
	o := TestOptions()
	o.Benchmarks = benches
	return NewRun(o)
}

func TestTable1String(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Sequence length", "25600", "Adam", "Dropout"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2(t *testing.T) {
	r := smallRun("bfs", "soplex")
	res := r.Table2()
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	s := res.String()
	if !strings.Contains(s, "bfs") || !strings.Contains(s, "soplex") {
		t.Fatalf("Table2 output missing benchmarks:\n%s", s)
	}
}

func TestTable3(t *testing.T) {
	s := Table3()
	for _, want := range []string{"512 KB", "2 MB", "tRP=tRCD=tCAS=20"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table3 missing %q:\n%s", want, s)
		}
	}
}

func TestMainAndDerivedFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("trains neural models")
	}
	r := smallRun("bfs", "soplex")
	m := r.Main()
	if len(m.Rows) != 2 {
		t.Fatalf("main rows = %d", len(m.Rows))
	}
	for _, row := range m.Rows {
		if row.BaseIPC <= 0 {
			t.Fatalf("%s: base IPC %v", row.Benchmark, row.BaseIPC)
		}
		if row.OracleSpeedup <= 1.0 {
			t.Fatalf("%s: oracle speedup %v should exceed 1 (irregular benchmark criterion)",
				row.Benchmark, row.OracleSpeedup)
		}
		for _, p := range BaselineNames {
			res, ok := row.Results[p]
			if !ok {
				t.Fatalf("%s missing prefetcher %s", row.Benchmark, p)
			}
			if res.IPC <= 0 {
				t.Fatalf("%s/%s: IPC %v", row.Benchmark, p, res.IPC)
			}
			if a := res.Accuracy(); a < 0 || a > 1 {
				t.Fatalf("%s/%s: accuracy %v", row.Benchmark, p, a)
			}
			if c := res.Coverage(); c < 0 || c > 1 {
				t.Fatalf("%s/%s: coverage %v", row.Benchmark, p, c)
			}
		}
	}
	for _, s := range []string{m.Figure5(), m.Figure6(), m.Figure8()} {
		if !strings.Contains(s, "bfs") || !strings.Contains(s, "mean") {
			t.Fatalf("figure output malformed:\n%s", s)
		}
	}
	// Main() is cached.
	if r.Main() != m {
		t.Fatalf("Main not cached")
	}
}

func TestFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("trains neural models")
	}
	r := smallRun("cc", "search")
	f := r.Figure7()
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	for _, row := range f.Rows {
		for _, p := range BaselineNames {
			v, ok := row.Values[p]
			if !ok || v < 0 || v > 1 {
				t.Fatalf("%s/%s unified %v ok=%v", row.Benchmark, p, v, ok)
			}
		}

	}
	if !strings.Contains(f.String(), "Figure 7") {
		t.Fatalf("missing title")
	}
}

func TestFigure9DegreeMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains neural models")
	}
	r := smallRun("cc")
	f := r.Figure9()
	for _, p := range []string{"voyager", "isb", "isb+bo"} {
		series := f.Coverage[p]
		if len(series) != 4 {
			t.Fatalf("%s series length %d", p, len(series))
		}
		// Coverage must not collapse as degree grows (allow small noise).
		if series[3] < series[0]-0.05 {
			t.Fatalf("%s coverage degraded with degree: %v", p, series)
		}
	}
	if !strings.Contains(f.String(), "degree") {
		t.Fatalf("missing header")
	}
}

func TestFigure1011(t *testing.T) {
	if testing.Short() {
		t.Skip("trains neural models")
	}
	r := smallRun("mcf")
	f := r.Figure1011()
	if len(f.ISB) != 1 || len(f.Voyager) != 1 {
		t.Fatalf("unexpected row counts")
	}
	for _, rows := range [][]int{} {
		_ = rows
	}
	sum := 0.0
	for _, v := range f.ISB[0].Frac {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("ISB breakdown fractions sum to %v", sum)
	}
	// mcf has fresh regions: the w/o-delta model must leave compulsory
	// misses uncovered.
	if f.Voyager[0].Frac[4] == 0 {
		t.Fatalf("expected compulsory bucket on mcf w/o delta")
	}
	if !strings.Contains(f.String(), "Figure 10") {
		t.Fatalf("missing title")
	}
}

func TestFigure12And15(t *testing.T) {
	if testing.Short() {
		t.Skip("trains many neural models")
	}
	r := smallRun("cc")
	f12 := r.Figure12()
	if len(f12.Rows) != 1 {
		t.Fatalf("f12 rows")
	}
	if !strings.Contains(f12.String(), "voy-global") {
		t.Fatalf("f12 output")
	}
	f15 := r.Figure15()
	if len(f15.Rows) != 1 || len(f15.Rows[0].Values) != 6 {
		t.Fatalf("f15 shape: %+v", f15.Rows)
	}
	if !strings.Contains(f15.String(), "multi-label") {
		t.Fatalf("f15 output")
	}
}

func TestFigure17AndDeltaStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("trains neural models")
	}
	r := smallRun() // uses CostBenchmark (pr) and mcf internally
	f := r.Figure17()
	if f.VoyagerFP32 <= 0 || f.DeltaLSTMFP32 <= 0 {
		t.Fatalf("sizes: %+v", f)
	}
	if f.VoyagerPruned8b >= f.VoyagerFP32 {
		t.Fatalf("compression did not shrink: %d -> %d", f.VoyagerFP32, f.VoyagerPruned8b)
	}
	if f.VoyagerMACs <= 0 || f.DeltaLSTMMACs <= 0 {
		t.Fatalf("MACs: %+v", f)
	}
	if !strings.Contains(f.String(), "storage efficiency") {
		t.Fatalf("f17 output")
	}
	d := r.DeltaStudy()
	if !strings.Contains(d.String(), "compulsory") {
		t.Fatalf("delta study output")
	}
	// The delta vocabulary must reduce mcf's uncovered-compulsory share.
	if d.With.Frac[4] > d.Without.Frac[4] {
		t.Fatalf("deltas increased compulsory share: %v -> %v", d.Without.Frac[4], d.With.Frac[4])
	}
}

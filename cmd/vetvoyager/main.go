// Command vetvoyager runs the project's static-analysis suite — the
// determinism, arena-lifetime, concurrency, error-flow, and float32
// invariants the compiler cannot check — over the module and exits non-zero
// if any finding is not suppressed by a //lint:ignore directive.
//
// Usage:
//
//	go run ./cmd/vetvoyager ./...
//	go run ./cmd/vetvoyager internal/tensor internal/nn
//	go run ./cmd/vetvoyager -q ./...
//	go run ./cmd/vetvoyager -md ./... >> "$GITHUB_STEP_SUMMARY"
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"voyager/internal/analysis"
	"voyager/internal/analysis/suite"
)

func main() {
	quiet := flag.Bool("q", false, "print only findings, no per-analyzer summary")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	md := flag.Bool("md", false, "print the scoreboard as a Markdown table on stdout (for CI step summaries)")
	flag.Usage = func() {
		_, _ = fmt.Fprintf(flag.CommandLine.Output(), "usage: vetvoyager [-q] [-list] [-md] [packages]\n\n")
		_, _ = fmt.Fprintf(flag.CommandLine.Output(), "Runs the voyager static-analysis suite (default: ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvoyager:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvoyager:", err)
		os.Exit(2)
	}

	res := analysis.Run(pkgs, analyzers)
	if *md {
		if err := printMarkdown(os.Stdout, pkgs, analyzers, res); err != nil {
			fmt.Fprintln(os.Stderr, "vetvoyager:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Findings {
			fmt.Println(d)
		}
	}
	if !*quiet && !*md {
		names := sortedChecks(res)
		fmt.Fprintf(os.Stderr, "vetvoyager: %d packages\n", len(pkgs))
		for _, name := range names {
			line := fmt.Sprintf("  %-12s %d finding(s)", name, res.PerCheck[name])
			if n := res.Suppressed[name]; n > 0 {
				line += fmt.Sprintf(", %d suppressed", n)
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

func sortedChecks(res *analysis.Result) []string {
	names := make([]string, 0, len(res.PerCheck))
	for name := range res.PerCheck {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// printMarkdown renders the scoreboard (and any findings) as GitHub-flavored
// Markdown, the format $GITHUB_STEP_SUMMARY expects. The table is built in a
// buffer and written once so a failed write is a single reportable error.
func printMarkdown(w io.Writer, pkgs []*analysis.Package, analyzers []*analysis.Analyzer, res *analysis.Result) error {
	docs := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		docs[a.Name] = a.Doc
	}
	verdict := "✅ clean"
	if len(res.Findings) > 0 {
		verdict = fmt.Sprintf("❌ %d finding(s)", len(res.Findings))
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "### vetvoyager — %s (%d packages)\n\n", verdict, len(pkgs))
	fmt.Fprintln(&b, "| analyzer | findings | suppressed | checks |")
	fmt.Fprintln(&b, "|---|---:|---:|---|")
	for _, name := range sortedChecks(res) {
		fmt.Fprintf(&b, "| %s | %d | %d | %s |\n", name, res.PerCheck[name], res.Suppressed[name], docs[name])
	}
	if len(res.Findings) > 0 {
		fmt.Fprintln(&b)
		fmt.Fprintln(&b, "```")
		for _, d := range res.Findings {
			fmt.Fprintln(&b, d)
		}
		fmt.Fprintln(&b, "```")
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Per-stream session state. A session is the serving-side replacement for
// the trainer's pre-encoded trace: a ring of (pc, page, offset) token
// triples plus the previous cache line, advanced one access at a time.
//
// Encoding matches Predictor/newPredictor and the distilled replayer
// exactly, which is what makes the serving path bit-comparable to the
// offline ones: the first access of a stream encodes against its own line
// (prevLine starts at the stream's first line), and until the ring has
// filled it is back-filled with the first triple — the same clamp
// buildBatch applies at a trace start (history index < 0 reads access 0)
// and distilled.Prefetcher applies to its history window.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"voyager/internal/distill"
	"voyager/internal/metrics"
	"voyager/internal/serve/quality"
	"voyager/internal/sortkeys"
	"voyager/internal/trace"
	"voyager/internal/vocab"
)

// tok3 is one encoded access: the (pc, page, offset) token triple.
type tok3 struct {
	pc, page, off int32
}

// session holds one stream's context. All mutable state is guarded by mu
// except lastUsed and gone, which the janitor reads/writes without taking
// the session lock.
type session struct {
	mu sync.Mutex

	// ring holds the last cap(ring) encoded accesses; head is the index of
	// the most recent one (the trigger). seen counts total accesses.
	ring []tok3
	head int
	seen uint64

	prevLine uint64
	// line is the trigger's cache line (valid once seen > 0), needed to
	// decode candidate tokens into addresses.
	line uint64

	// lastUsed is nanoseconds on a monotonic-ish clock (time.Now().
	// UnixNano()), written on every advance and read by the janitor.
	lastUsed atomic.Int64
	// gone is set when the table drops the session (idle eviction or
	// OpClose); a handler holding a cached pointer re-fetches on next use.
	gone atomic.Bool

	// qs is the stream's quality-scoring state (nil when quality telemetry
	// is off). Set once at creation, closed when the table drops the
	// session so pending predictions settle as unresolved.
	qs *quality.Session
}

// advance encodes one access into the ring under the session lock and
// returns the trigger's PC token and cache line.
func (st *session) advance(voc *vocab.Vocab, pc, addr uint64) (pcTok int32, line uint64) {
	line = trace.Line(addr)
	if st.seen == 0 {
		st.prevLine = line
	}
	pTok, oTok := voc.EncodeAccess(st.prevLine, line)
	st.prevLine = line
	st.line = line
	tr := tok3{pc: int32(voc.PCToken(pc)), page: int32(pTok), off: int32(oTok)}
	if st.seen == 0 {
		for i := range st.ring {
			st.ring[i] = tr
		}
		st.head = 0
	} else {
		st.head++
		if st.head == len(st.ring) {
			st.head = 0
		}
		st.ring[st.head] = tr
	}
	st.seen++
	return tr.pc, line
}

// copyWindow writes the last n triples (oldest first, trigger last) into
// dst[:n]. Must hold mu. n must be ≤ cap(ring).
func (st *session) copyWindow(dst []tok3, n int) {
	for i := 0; i < n; i++ {
		j := st.head - (n - 1 - i)
		if j < 0 {
			j += len(st.ring)
		}
		dst[i] = st.ring[j]
	}
}

// copyPairs writes the last n (page, offset) pairs (oldest first, trigger
// last) into dst[:n] — the fast tier's history window, same layout the
// distillation compiler hashed. Must hold mu. n must be ≤ cap(ring).
func (st *session) copyPairs(dst []distill.TokPair, n int) {
	for i := 0; i < n; i++ {
		j := st.head - (n - 1 - i)
		if j < 0 {
			j += len(st.ring)
		}
		dst[i] = distill.TokPair{Page: st.ring[j].page, Off: st.ring[j].off}
	}
}

// sessionTable maps stream ids to sessions. get/remove are O(1) map
// operations; evictIdle iterates in sorted-key order (deterministic scans,
// per the maporder analyzer).
type sessionTable struct {
	mu      sync.Mutex
	m       map[uint64]*session
	ringCap int
	quality *quality.Tracker

	active  *metrics.Gauge
	evicted *metrics.Counter
}

func newSessionTable(ringCap int, reg *metrics.Registry, q *quality.Tracker) *sessionTable {
	return &sessionTable{
		m:       make(map[uint64]*session),
		ringCap: ringCap,
		quality: q,
		active:  reg.Gauge("serve_sessions_active"),
		evicted: reg.Counter("serve_sessions_evicted_total"),
	}
}

// get returns the stream's session, creating it on first use.
func (t *sessionTable) get(id uint64) *session {
	t.mu.Lock()
	st := t.m[id]
	if st == nil {
		st = &session{ring: make([]tok3, t.ringCap), qs: t.quality.NewSession()}
		st.lastUsed.Store(time.Now().UnixNano())
		t.m[id] = st
		t.active.Set(float64(len(t.m)))
	}
	t.mu.Unlock()
	return st
}

// remove drops the stream's session (OpClose).
func (t *sessionTable) remove(id uint64) {
	t.mu.Lock()
	if st := t.m[id]; st != nil {
		st.gone.Store(true)
		st.qs.Close()
		delete(t.m, id)
		t.active.Set(float64(len(t.m)))
	}
	t.mu.Unlock()
}

// len returns the number of live sessions.
func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// evictIdle drops sessions idle for longer than d and returns how many.
func (t *sessionTable) evictIdle(d time.Duration) int {
	cutoff := time.Now().Add(-d).UnixNano()
	n := 0
	t.mu.Lock()
	for _, id := range sortkeys.Sorted(t.m) {
		st := t.m[id]
		if st.lastUsed.Load() < cutoff {
			st.gone.Store(true)
			st.qs.Close()
			delete(t.m, id)
			n++
		}
	}
	if n > 0 {
		t.active.Set(float64(len(t.m)))
		t.evicted.Add(uint64(n))
	}
	t.mu.Unlock()
	return n
}

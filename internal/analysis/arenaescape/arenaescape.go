// Package arenaescape flags tape-arena *tensor.Mat values that can outlive
// Tape.Reset.
//
// Matrices handed out by (*tensor.Tape).NewMat are recycled — and their
// contents invalidated — by the tape's next Reset. Storing one in a struct
// field or a package-level variable, or returning one from an exported
// function, lets it escape the reset boundary: the caller ends up aliasing
// a buffer that a later step will overwrite, which corrupts training
// silently. The analyzer tracks, per function, which locals hold arena
// matrices (direct assignment from an arena call, propagated through
// simple reassignment) and reports the three escape shapes.
//
// The tensor package itself — the arena implementation, whose Node structs
// share the arena's lifetime — is excluded via the skip list.
package arenaescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"voyager/internal/analysis"
)

const (
	tensorPkg = "voyager/internal/tensor"
	tapeType  = "Tape"
)

// New returns the analyzer. Packages in skip are not analyzed (the arena
// implementation itself legitimately stores its matrices in tape-owned
// structures).
func New(skip ...string) *analysis.Analyzer {
	skipped := make(map[string]bool, len(skip))
	for _, s := range skip {
		skipped[s] = true
	}
	return &analysis.Analyzer{
		Name: "arenaescape",
		Doc:  "flags tape-arena *tensor.Mat values that can outlive Tape.Reset",
		Run: func(pass *analysis.Pass) {
			if pass.Pkg.IsTest || skipped[pass.Pkg.Path] {
				pass.SkipPackage()
				return
			}
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					checkFunc(pass, fd)
				}
			}
		},
	}
}

// isArenaCall reports whether e calls (*tensor.Tape).NewMat.
func isArenaCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Name() != "NewMat" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return analysis.IsNamed(sig.Recv().Type(), tensorPkg, tapeType)
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	tainted := make(map[types.Object]bool)
	derived := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if id, ok := e.(*ast.Ident); ok {
			return tainted[pass.ObjectOf(id)]
		}
		return isArenaCall(pass, e)
	}

	// Taint pass to fixpoint: locals assigned from arena calls or from
	// already-tainted locals. Bounded by the taint set growing monotonically.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
					return true
				}
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, rhs := range st.Rhs {
					if !derived(rhs) {
						continue
					}
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						if obj := pass.ObjectOf(id); obj != nil && !tainted[obj] {
							tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range st.Values {
					if derived(v) && i < len(st.Names) {
						if obj := pass.ObjectOf(st.Names[i]); obj != nil && !tainted[obj] {
							tainted[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	pkgScope := pass.Pkg.Types.Scope()
	reportStores := func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if !derived(rhs) {
					continue
				}
				lhs := ast.Unparen(st.Lhs[i])
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					if v, ok := pass.ObjectOf(sel.Sel).(*types.Var); ok && v.IsField() {
						if owner := pass.TypeOf(sel.X); owner != nil && !analysis.IsNamed(owner, tensorPkg, "Node") {
							pass.Reportf(st.Pos(), "arena *tensor.Mat stored into struct field %s: arena matrices are recycled by Tape.Reset and must not outlive it", sel.Sel.Name)
						}
						continue
					}
				}
				if root := rootIdent(lhs); root != nil {
					if obj := pass.ObjectOf(root); obj != nil && obj.Parent() == pkgScope {
						pass.Reportf(st.Pos(), "arena *tensor.Mat stored into package-level variable %s: arena matrices are recycled by Tape.Reset and must not outlive it", root.Name)
					}
				}
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(st)
			if t == nil {
				return true
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if _, ok := t.Underlying().(*types.Struct); !ok || analysis.IsNamed(t, tensorPkg, "Node") {
				return true
			}
			for _, elt := range st.Elts {
				v := elt
				name := ""
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
					if id, ok := kv.Key.(*ast.Ident); ok {
						name = id.Name
					}
				}
				if derived(v) {
					pass.Reportf(v.Pos(), "arena *tensor.Mat stored into struct literal field %s: arena matrices are recycled by Tape.Reset and must not outlive it", name)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, reportStores)

	// Returns of arena matrices from the exported API: callers cannot know
	// the value dies at the next Reset. Returns inside function literals
	// belong to the closure, not to the declared function.
	if fd.Name.IsExported() {
		walkOutsideFuncLits(fd.Body, func(n ast.Node) {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return
			}
			for _, res := range ret.Results {
				if derived(res) {
					pass.Reportf(ret.Pos(), "arena *tensor.Mat returned from exported %s: arena matrices are recycled by Tape.Reset and must not outlive it", fd.Name.Name)
				}
			}
		})
	}
}

// rootIdent unwraps selectors, index and star expressions to the base
// identifier of an assignable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// walkOutsideFuncLits visits nodes of body, skipping function literals.
func walkOutsideFuncLits(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

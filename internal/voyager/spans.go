package voyager

import (
	"fmt"

	"voyager/internal/tracing"
)

// trainSpans bundles the training loop's execution-span tracks, mirroring
// trainObs for the tracing layer: built once per model from Config.Trace,
// and with tracing disabled every track is nil so each span site costs one
// pointer compare and nothing else (pinned by the tracing differential and
// zero-alloc tests).
//
// Track layout: one "train" process with a "main" thread (epoch frames,
// batch build, reduce, optimizer) plus one thread per data-parallel worker
// (forward/backward/tape spans). Worker tracks are created on the main
// goroutine — NewModel for worker 0, ensureReplicas for the rest — so
// creation order, and with it pid/tid assignment, is deterministic; each
// track is then written only by its own worker goroutine, which is the
// single-writer contract the lock-free event arenas rely on.
type trainSpans struct {
	tracer *tracing.Tracer
	main   *tracing.Track
}

func newTrainSpans(tr *tracing.Tracer) *trainSpans {
	s := &trainSpans{tracer: tr}
	if tr != nil {
		s.main = tr.Track("train", "main")
	}
	return s
}

// workerTrack returns worker w's span row (nil when tracing is off).
// Called once per worker model, never in the hot path.
func (s *trainSpans) workerTrack(w int) *tracing.Track {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.Track("train", fmt.Sprintf("worker %d", w))
}

// schemeMask reports which configured labeling schemes named `line` at
// trace position pos — the Decision.Schemes attribution bitmask.
func (p *Predictor) schemeMask(pos int, line uint64) uint32 {
	var m uint32
	for _, s := range p.Cfg.Schemes {
		if l, ok := p.labels[pos].Get(s); ok && l == line {
			m |= 1 << uint(s)
		}
	}
	return m
}

// Client is the reference wire-protocol client: one TCP connection, one
// request in flight at a time (the replay tool and the tests run one client
// per stream). Request/response buffers are reused, so a replay loop
// allocates only what the caller keeps.
package serve

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Client talks the serve wire protocol over one connection. Not safe for
// concurrent use; run one Client per goroutine.
type Client struct {
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	out  []byte
	in   []byte
	resp Response
}

// Dial connects to a prefetchd server.
func Dial(addr string) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return NewClient(c), nil
}

// NewClient wraps an existing connection (ownership transfers).
func NewClient(c net.Conn) *Client {
	return &Client{c: c, br: bufio.NewReaderSize(c, 4096), bw: bufio.NewWriterSize(c, 4096)}
}

// roundTrip sends one request and decodes the response into c.resp. The
// returned Response aliases client scratch: it is valid until the next call.
func (c *Client) roundTrip(req Request) (*Response, error) {
	c.out = EncodeRequest(c.out[:0], req)
	if err := WriteFrame(c.bw, c.out); err != nil {
		return nil, err
	}
	p, err := ReadFrame(c.br, c.in)
	if err != nil {
		return nil, err
	}
	c.in = p
	if err := DecodeResponse(p, &c.resp); err != nil {
		return nil, err
	}
	return &c.resp, nil
}

// Predict advances stream's session with the access (pc, addr) and returns
// the server's candidates. fast selects the distilled tier. A status-error
// response is returned as a Go error. The Response aliases client scratch.
func (c *Client) Predict(stream, pc, addr uint64, fast bool) (*Response, error) {
	var flags byte
	if fast {
		flags = FlagFast
	}
	r, err := c.roundTrip(Request{Op: OpPredict, Flags: flags, Stream: stream, PC: pc, Addr: addr})
	if err != nil {
		return nil, err
	}
	if r.Status != StatusOK {
		return nil, fmt.Errorf("serve: server error: %s", r.Err)
	}
	return r, nil
}

// PredictTraced is Predict with a trace context attached: the request goes
// out as a v2 frame carrying (traceID, spanID), and the server stamps its
// receive/batch/reply marks with spanID. The caller typically wraps the
// call in an async span with the same id on its own "rpc"-named track, so
// tracing.Merge folds the client span and the server marks into one
// timeline. spanID must be unique per in-flight request within the
// client's trace.
func (c *Client) PredictTraced(stream, pc, addr uint64, fast bool, traceID, spanID uint64) (*Response, error) {
	var flags byte
	if fast {
		flags = FlagFast
	}
	r, err := c.roundTrip(Request{Op: OpPredict, Flags: flags, Stream: stream, PC: pc, Addr: addr,
		HasCtx: true, TraceID: traceID, SpanID: spanID})
	if err != nil {
		return nil, err
	}
	if r.Status != StatusOK {
		return nil, fmt.Errorf("serve: server error: %s", r.Err)
	}
	return r, nil
}

// CloseStream discards the server-side session for stream.
func (c *Client) CloseStream(stream uint64) error {
	r, err := c.roundTrip(Request{Op: OpClose, Stream: stream})
	if err != nil {
		return err
	}
	if r.Status != StatusOK {
		return fmt.Errorf("serve: server error: %s", r.Err)
	}
	return nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	r, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if r.Status != StatusOK {
		return fmt.Errorf("serve: server error: %s", r.Err)
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

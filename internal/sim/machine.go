package sim

import (
	"fmt"

	"voyager/internal/prefetch"
	"voyager/internal/trace"
	"voyager/internal/tracing"
)

// Config mirrors the paper's Table 3 plus the core parameters from §5.1
// (4-wide out-of-order, 8-stage pipeline, 128-entry ROB).
type Config struct {
	L1Size, L1Ways, L1Latency    int
	L2Size, L2Ways, L2Latency    int
	LLCSize, LLCWays, LLCLatency int
	Width                        int // retire width, instructions/cycle
	ROB                          int // reorder-buffer entries
	// MLP caps memory-level parallelism: a load may not issue until the
	// load MLP positions earlier has completed, modeling the
	// address-generation dependences of irregular code (pointer chasing,
	// indexed gathers). Without it every load is independent and the ROB
	// hides all memory latency, which no irregular benchmark does.
	MLP int
}

// DefaultConfig returns the Table 3 configuration.
func DefaultConfig() Config {
	return Config{
		L1Size: 64 << 10, L1Ways: 4, L1Latency: 3,
		L2Size: 512 << 10, L2Ways: 8, L2Latency: 11,
		LLCSize: 2 << 20, LLCWays: 16, LLCLatency: 20,
		Width: 4,
		ROB:   128,
		MLP:   4,
	}
}

// String prints the configuration as Table 3 rows.
func (c Config) String() string {
	return fmt.Sprintf(
		"L1 D-Cache   %d KB, %d-way, %d-cycle latency\n"+
			"L2 Cache     %d KB, %d-way, %d-cycle latency\n"+
			"LLC per core %d MB, %d-way, %d-cycle latency\n"+
			"Core         %d-wide, %d-entry ROB",
		c.L1Size>>10, c.L1Ways, c.L1Latency,
		c.L2Size>>10, c.L2Ways, c.L2Latency,
		c.LLCSize>>20, c.LLCWays, c.LLCLatency,
		c.Width, c.ROB)
}

// Result reports one simulation run.
type Result struct {
	Benchmark  string
	Prefetcher string

	Instructions uint64
	Cycles       uint64
	IPC          float64

	LLCDemandAccesses uint64
	LLCDemandMisses   uint64 // demand misses that went to DRAM (uncovered)
	LLCLateCovered    uint64 // demand misses that merged with an in-flight prefetch

	PrefetchesIssued uint64 // prefetches sent to DRAM
	PrefetchesUseful uint64 // prefetched lines later hit by demand (incl. late)
	PrefetchEvicted  uint64 // prefetched lines evicted unused

	DRAMRequests uint64
}

// Accuracy is useful prefetches over issued prefetches (§5.1 Metrics).
func (r Result) Accuracy() float64 {
	if r.PrefetchesIssued == 0 {
		return 0
	}
	return float64(r.PrefetchesUseful) / float64(r.PrefetchesIssued)
}

// Coverage is the fraction of would-be LLC misses eliminated (or merged
// late) by prefetching.
func (r Result) Coverage() float64 {
	den := r.PrefetchesUseful + r.LLCDemandMisses
	if den == 0 {
		return 0
	}
	return float64(r.PrefetchesUseful) / float64(den)
}

// Machine is a single-core system: three cache levels, DRAM, a core model,
// and an optional prefetcher at the LLC.
type Machine struct {
	cfg  Config
	l1   *Cache
	l2   *Cache
	llc  *Cache
	dram *DRAM

	// inFlight maps a line to the cycle its fill arrives (MSHR-like).
	inFlight map[uint64]uint64
	// inFlightPrefetch marks in-flight fills initiated by a prefetch.
	inFlightPrefetch map[uint64]bool

	// obs is the observability bundle (never nil; inert until Instrument).
	obs *simObs

	// st is the span-tracing + provenance state (nil until Trace or
	// Provenance attaches it; every hook no-ops on nil). curIdx is the raw
	// trace index of the access whose prefetches are currently being
	// issued, for decision attribution.
	st     *simTrace
	curIdx int
}

// NewMachine builds a machine from the configuration.
func NewMachine(cfg Config) *Machine {
	return &Machine{
		cfg:              cfg,
		l1:               NewCache("L1D", cfg.L1Size, cfg.L1Ways, cfg.L1Latency),
		l2:               NewCache("L2", cfg.L2Size, cfg.L2Ways, cfg.L2Latency),
		llc:              NewCache("LLC", cfg.LLCSize, cfg.LLCWays, cfg.LLCLatency),
		dram:             NewDRAM(),
		inFlight:         make(map[uint64]uint64),
		inFlightPrefetch: make(map[uint64]bool),
		obs:              newSimObs(nil),
	}
}

// Run simulates the trace with the given prefetcher (use prefetch.Nil{} for
// the no-prefetching baseline) and returns the metrics.
//
// Timing model: quarter-cycle resolution. Instructions issue at most
// Width/cycle and retire in order; an instruction may not issue until the
// instruction ROB entries earlier has retired, so independent load misses
// inside the ROB window overlap (MLP), which is how prefetch timeliness
// turns into IPC.
func (m *Machine) Run(tr *trace.Trace, pf prefetch.Prefetcher) Result {
	res := Result{Benchmark: tr.Name, Prefetcher: pf.Name()}
	const q = 4 // quarter-cycles per cycle
	issueStep := uint64(q) / uint64(m.cfg.Width)
	if issueStep == 0 {
		issueStep = 1
	}

	rob := make([]uint64, m.cfg.ROB) // retire qcycle of the ROB's last entries
	robIdx := 0
	mlp := m.cfg.MLP
	if mlp < 1 {
		mlp = m.cfg.ROB
	}
	loadRing := make([]uint64, mlp) // completion qcycles of the last MLP loads
	loadIdx := 0
	var lastIssueQ, lastRetireQ uint64
	var inst uint64 // dynamic instruction counter
	stamp := uint64(0)

	// advance models one instruction with the given execution latency (in
	// cycles, 0 for simple ALU ops that retire immediately after issue).
	// isLoad applies the MLP dependence cap and records completion.
	advance := func(latencyCycles uint64, isLoad bool) {
		issueQ := lastIssueQ + issueStep
		if oldest := rob[robIdx]; issueQ < oldest {
			issueQ = oldest // ROB full: wait for the oldest entry to retire
		}
		if isLoad {
			if dep := loadRing[loadIdx]; issueQ < dep {
				issueQ = dep // dependent on an older outstanding load
			}
		}
		doneQ := issueQ + latencyCycles*q + q
		if isLoad {
			loadRing[loadIdx] = doneQ
			loadIdx = (loadIdx + 1) % mlp
		}
		retireQ := doneQ
		if retireQ < lastRetireQ {
			retireQ = lastRetireQ // in-order retirement
		}
		rob[robIdx] = retireQ
		robIdx = (robIdx + 1) % m.cfg.ROB
		lastIssueQ = issueQ
		lastRetireQ = retireQ
		inst++
	}

	var prevInst uint64
	for i, a := range tr.Accesses {
		// Non-memory instructions since the previous access.
		gap := a.Inst - prevInst
		if gap > 0 {
			gap--
		}
		for g := uint64(0); g < gap; g++ {
			advance(0, false)
		}
		prevInst = a.Inst

		stamp++
		line := trace.Line(a.Addr)
		nowCycle := lastIssueQ / q

		// Demand path through the hierarchy.
		latency, reachedLLC := m.demandAccess(line, nowCycle, stamp, &res)
		advance(latency, true)

		// The prefetcher sits at the LLC (§5.1: "their inputs are LLC
		// accesses"): it observes only accesses that miss L1 and L2, with
		// no metadata cost (idealized). Prefetches fill the LLC only, so
		// the L1/L2 filter — and hence this trigger stream — is identical
		// for every prefetcher.
		if reachedLLC {
			m.curIdx = i
			for _, pAddr := range pf.Access(i, a) {
				m.prefetchLine(trace.Line(pAddr), nowCycle, stamp, &res)
			}
		}
	}
	// Account for trailing instructions after the last access.
	if tr.Instructions > prevInst {
		for g := uint64(0); g < tr.Instructions-prevInst; g++ {
			advance(0, false)
		}
	}

	res.Instructions = inst
	res.Cycles = (lastRetireQ + q - 1) / q
	if res.Cycles > 0 {
		res.IPC = float64(res.Instructions) / float64(res.Cycles)
	}
	res.DRAMRequests = m.dram.Requests
	m.obs.flushDRAM(m.dram, res.IPC)
	m.finishRun(res.Cycles)
	return res
}

// demandAccess walks the hierarchy for a demand load and returns its
// latency in cycles plus whether the access missed L1 and L2 (reaching the
// LLC, where the prefetcher observes it).
func (m *Machine) demandAccess(line uint64, cycle uint64, stamp uint64, res *Result) (uint64, bool) {
	if hit, _ := m.l1.Lookup(line, stamp); hit {
		m.obs.l1Hits.Inc()
		return uint64(m.cfg.L1Latency), false
	}
	m.obs.l1Misses.Inc()
	m.st.instantL1("miss", cycle)
	lat := uint64(m.cfg.L1Latency)
	if hit, _ := m.l2.Lookup(line, stamp); hit {
		m.obs.l2Hits.Inc()
		m.l1.Fill(line, stamp, false)
		return lat + uint64(m.cfg.L2Latency), false
	}
	m.obs.l2Misses.Inc()
	m.st.instantL2("miss", cycle)
	lat += uint64(m.cfg.L2Latency)
	res.LLCDemandAccesses++
	if hit, wasPrefetch := m.llc.Lookup(line, stamp); hit {
		m.obs.llcHits.Inc()
		// If the line's fill is still in flight (a late prefetch or an
		// earlier demand miss to the same line), the data hasn't actually
		// arrived: charge the remaining wait.
		var wait uint64
		if ready, ok := m.inFlight[line]; ok {
			if ready > cycle {
				wait = ready - cycle
				if wasPrefetch {
					res.LLCLateCovered++
				}
			}
			delete(m.inFlight, line)
			delete(m.inFlightPrefetch, line)
		}
		if wasPrefetch {
			res.PrefetchesUseful++
			m.obs.prefUseful.Inc()
			o := tracing.OutcomeUseful
			if wait > 0 {
				o = tracing.OutcomeLate
			}
			m.st.resolve(line, o, wait, cycle)
		}
		m.l2.Fill(line, stamp, false)
		m.l1.Fill(line, stamp, false)
		return lat + uint64(m.cfg.LLCLatency) + wait, true
	}
	m.obs.llcMisses.Inc()
	m.st.instantLLC("miss", cycle)
	lat += uint64(m.cfg.LLCLatency)

	// Miss: merge with an in-flight fill if one exists (the line was
	// evicted while its fill was pending). A stale entry (ready in the
	// past) means the fill landed and was since evicted: plain miss.
	if ready, ok := m.inFlight[line]; ok {
		delete(m.inFlight, line)
		wasPrefetch := m.inFlightPrefetch[line]
		delete(m.inFlightPrefetch, line)
		if ready > cycle {
			if wasPrefetch {
				res.PrefetchesUseful++
				m.obs.prefUseful.Inc()
				res.LLCLateCovered++
				m.st.resolve(line, tracing.OutcomeLate, ready-cycle, cycle)
			} else {
				res.LLCDemandMisses++
			}
			m.fillAll(line, stamp, cycle, false)
			return lat + (ready - cycle), true
		}
		if wasPrefetch {
			m.st.resolve(line, tracing.OutcomeEvicted, 0, cycle)
		}
	}

	res.LLCDemandMisses++
	// The demanded line may still carry an open prefetch whose fill landed
	// and expired before this demand arrived: that prefetch is a loss.
	m.st.resolve(line, tracing.OutcomeEvicted, 0, cycle)
	ready := m.dram.Access(line, cycle)
	m.obs.dramLatency.Observe(float64(ready - cycle))
	m.st.noteDemandMiss(cycle, ready)
	m.inFlight[line] = ready
	m.fillAll(line, stamp, cycle, false)
	return lat + (ready - cycle), true
}

// prefetchLine issues a prefetch into the LLC.
func (m *Machine) prefetchLine(line uint64, cycle uint64, stamp uint64, res *Result) {
	if m.llc.Contains(line) {
		m.st.noteDrop(m.curIdx, line)
		return // already cached: dropped, not issued
	}
	if ready, ok := m.inFlight[line]; ok {
		if ready > cycle {
			m.st.noteDrop(m.curIdx, line)
			return // already being fetched
		}
		// Stale entry: the old fill landed and was evicted since.
		delete(m.inFlight, line)
		delete(m.inFlightPrefetch, line)
	}
	res.PrefetchesIssued++
	m.obs.prefIssued.Inc()
	ready := m.dram.Access(line, cycle)
	m.obs.dramLatency.Observe(float64(ready - cycle))
	m.st.notePrefetchIssue(m.curIdx, line, cycle, ready)
	m.inFlight[line] = ready
	m.inFlightPrefetch[line] = true
	// The fill lands in the LLC when ready; we insert immediately with the
	// prefetch bit and rely on inFlight for timing until `ready`.
	if evicted, evictedUnused, had := m.llc.Fill(line, stamp, true); had && evictedUnused {
		res.PrefetchEvicted++
		m.noteEvict(evicted, cycle)
	}
	// Clean up the in-flight entry lazily: a later demand merge removes it;
	// otherwise expire it now if it is already in the past.
	if ready <= cycle {
		delete(m.inFlight, line)
		delete(m.inFlightPrefetch, line)
	}
}

// fillAll inserts line into every level (demand fill path). A demand fill
// can evict an untouched prefetched line from the LLC, which the tracing
// layer attributes to that prefetch's decision (the simulator's
// PrefetchEvicted counter intentionally only counts evictions by other
// prefetches, so the provenance table may report more evictions than it).
func (m *Machine) fillAll(line uint64, stamp uint64, cycle uint64, isPrefetch bool) {
	if evicted, evictedUnused, had := m.llc.Fill(line, stamp, isPrefetch); had && evictedUnused {
		m.noteEvict(evicted, cycle)
	}
	m.l2.Fill(line, stamp, false)
	m.l1.Fill(line, stamp, false)
}

// Caches exposes the hierarchy for tests and tools.
func (m *Machine) Caches() (l1, l2, llc *Cache) { return m.l1, m.l2, m.llc }

// DRAMModel exposes the memory model for tests and tools.
func (m *Machine) DRAMModel() *DRAM { return m.dram }

// Simulate is a convenience wrapper: build a machine, run the trace.
func Simulate(tr *trace.Trace, pf prefetch.Prefetcher, cfg Config) Result {
	return NewMachine(cfg).Run(tr, pf)
}

// ScaledConfig returns a cache hierarchy shrunk to match the scaled
// workload traces. The paper's workloads have footprints 10-100× the 2 MB
// LLC; our traces are ~1000× shorter with proportionally smaller
// footprints, so the hierarchy scales down with them (same associativities
// and latencies, same L1:L2:LLC capacity ratios as Table 3). Table 3 /
// DefaultConfig remains the configuration of record for full-size traces.
func ScaledConfig() Config {
	c := DefaultConfig()
	c.L1Size = 1 << 10
	c.L2Size = 8 << 10
	c.LLCSize = 32 << 10
	return c
}

// FilterLLC replays only the L1/L2 portion of the hierarchy over the trace
// and returns the LLC access stream — the sub-trace of accesses that miss
// both private levels — plus the index of each filtered access in the
// original trace. Because prefetches fill only the LLC, this stream is
// identical no matter which prefetcher later runs, so it is the right
// training input for trace-trained predictors (Voyager, Delta-LSTM) and the
// right stream for the unified accuracy/coverage metric.
func FilterLLC(tr *trace.Trace, cfg Config) (*trace.Trace, []int) {
	l1 := NewCache("L1D", cfg.L1Size, cfg.L1Ways, cfg.L1Latency)
	l2 := NewCache("L2", cfg.L2Size, cfg.L2Ways, cfg.L2Latency)
	out := &trace.Trace{Name: tr.Name, Instructions: tr.Instructions}
	var idx []int
	for i, a := range tr.Accesses {
		stamp := uint64(i + 1)
		line := trace.Line(a.Addr)
		if hit, _ := l1.Lookup(line, stamp); hit {
			continue
		}
		if hit, _ := l2.Lookup(line, stamp); hit {
			l1.Fill(line, stamp, false)
			continue
		}
		l2.Fill(line, stamp, false)
		l1.Fill(line, stamp, false)
		out.Accesses = append(out.Accesses, a)
		idx = append(idx, i)
	}
	return out, idx
}

// String formats the result as a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: ipc=%.3f acc=%.3f cov=%.3f issued=%d useful=%d misses=%d late=%d dram=%d",
		r.Benchmark, r.Prefetcher, r.IPC, r.Accuracy(), r.Coverage(),
		r.PrefetchesIssued, r.PrefetchesUseful, r.LLCDemandMisses, r.LLCLateCovered, r.DRAMRequests)
}

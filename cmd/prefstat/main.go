// Command prefstat analyzes the predictability structure of a trace: per-PC
// access counts, global/PC-localized last-successor predictability, stride
// coverage, and the compulsory-miss share — the quantities that determine
// which prefetcher family can cover a workload.
//
//	go run ./cmd/prefstat -bench soplex
//	go run ./cmd/prefstat -trace t.vygr -llc
//	go run ./cmd/prefstat -bench cc -distill cc.vydt
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"voyager/internal/distill"
	"voyager/internal/prefetch/distilled"
	"voyager/internal/sim"
	"voyager/internal/trace"
	"voyager/internal/vocab"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark name")
		traceFile = flag.String("trace", "", "binary trace file")
		n         = flag.Int("n", 30_000, "max accesses when generating")
		seed      = flag.Int64("seed", 42, "randomness seed")
		llc       = flag.Bool("llc", false, "analyze the LLC-filtered stream instead of the raw trace")
		topPCs    = flag.Int("top", 8, "show the N most frequent PCs")
		distPath  = flag.String("distill", "", "distilled lookup table (.vydt): report its stats and replayed next-line accuracy on this trace")
	)
	flag.Parse()

	var tr *trace.Trace
	var err error
	switch {
	case *traceFile != "":
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "prefstat:", ferr)
			os.Exit(1)
		}
		tr, err = trace.Read(f)
		_ = f.Close() // read-side close: the trace is already in memory
	case *bench != "":
		tr, err = workloads.Generate(*bench, workloads.Config{Seed: *seed, Scale: 1, MaxAccesses: *n})
	default:
		err = fmt.Errorf("one of -bench or -trace is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "prefstat:", err)
		os.Exit(2)
	}
	if *llc {
		filtered, _ := sim.FilterLLC(tr, sim.ScaledConfig())
		fmt.Printf("LLC stream: %d of %d accesses (%.1f%%)\n",
			filtered.Len(), tr.Len(), 100*float64(filtered.Len())/float64(tr.Len()))
		tr = filtered
	}

	fmt.Println(trace.ComputeStats(tr))

	// Predictability measures over the second half (first half trains).
	half := tr.Len() / 2
	type counters struct{ correct, total int }
	var global, pcLocal, stride, repeat counters
	globalSucc := make(map[uint64]uint64)
	pcSucc := make(map[uint64]uint64)
	lastByPC := make(map[uint64]uint64)
	strideByPC := make(map[uint64]int64)
	seen := make(map[uint64]bool)
	compulsory := 0

	var prevLine uint64
	for i, a := range tr.Accesses {
		line := trace.Line(a.Addr)
		if i >= half {
			if !seen[line] {
				compulsory++
			}
			if p, ok := globalSucc[prevLine]; ok && i > 0 {
				global.total++
				if p == line {
					global.correct++
				}
			}
			if last, ok := lastByPC[a.PC]; ok {
				if p, ok := pcSucc[last]; ok {
					pcLocal.total++
					if p == line {
						pcLocal.correct++
					}
				}
				if s, ok := strideByPC[a.PC]; ok {
					stride.total++
					if int64(last)+s == int64(line) {
						stride.correct++
					}
				}
			}
			repeat.total++
			if line == prevLine {
				repeat.correct++
			}
		}
		if i > 0 {
			globalSucc[prevLine] = line
		}
		if last, ok := lastByPC[a.PC]; ok {
			pcSucc[last] = line
			strideByPC[a.PC] = int64(line) - int64(last)
		}
		lastByPC[a.PC] = line
		seen[line] = true
		prevLine = line
	}

	pct := func(c counters) float64 {
		if c.total == 0 {
			return 0
		}
		return 100 * float64(c.correct) / float64(c.total)
	}
	fmt.Printf("last-successor predictability (2nd half):\n")
	fmt.Printf("  global stream        %6.1f%%   (STMS-like)\n", pct(global))
	fmt.Printf("  PC-localized         %6.1f%%   (ISB-like)\n", pct(pcLocal))
	fmt.Printf("  per-PC constant stride %4.1f%%   (IP-stride-like)\n", pct(stride))
	fmt.Printf("  same-line repeat     %6.1f%%\n", pct(repeat))
	fmt.Printf("  compulsory share     %6.1f%%   (first-touch lines)\n",
		100*float64(compulsory)/float64(tr.Len()-half))

	// Top PCs with their localized predictability.
	count := make(map[uint64]int)
	for _, a := range tr.Accesses {
		count[a.PC]++
	}
	pcs := trace.TopPCs(tr, *topPCs)
	sort.Slice(pcs, func(i, j int) bool { return count[pcs[i]] > count[pcs[j]] })
	fmt.Printf("top %d PCs by access count:\n", len(pcs))
	for _, pc := range pcs {
		fmt.Printf("  pc %#-8x %7d accesses (%.1f%%)\n",
			pc, count[pc], 100*float64(count[pc])/float64(tr.Len()))
	}

	// With a distilled table supplied, replay it over the same trace and
	// report its achieved successor accuracy next to the structural
	// predictability measures above, plus which fallback tier served each
	// lookup. The vocabulary is rebuilt from this trace with the default
	// training options; the table's fingerprint rejects a mismatched pair.
	if *distPath != "" {
		tab, err := distill.LoadFile(*distPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prefstat:", err)
			os.Exit(1)
		}
		fmt.Printf("distilled table: %s\n", tab)
		voc := vocab.Build(tr, voyager.ScaledConfig().VocabOptions())
		pf, err := distilled.New(tab, voc, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prefstat:", err)
			os.Exit(1)
		}
		var distHit counters
		for i, a := range tr.Accesses {
			preds := pf.Access(i, a)
			if i < half || i+1 >= tr.Len() {
				continue
			}
			distHit.total++
			if len(preds) > 0 && trace.Line(preds[0]) == trace.Line(tr.Accesses[i+1].Addr) {
				distHit.correct++
			}
		}
		fmt.Printf("  distilled next-line   %6.1f%%   (table replay, 2nd half)\n", pct(distHit))
		tiers := pf.TierCounts()
		total := 0
		for _, c := range tiers {
			total += c
		}
		if total > 0 {
			fmt.Printf("  lookup tiers         ")
			for t, c := range tiers {
				fmt.Printf(" %s %.1f%%", distill.Tier(t), 100*float64(c)/float64(total))
			}
			fmt.Println()
		}
	}
}

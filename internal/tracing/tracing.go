// Package tracing is the execution-timeline layer: a dependency-free,
// deterministic span tracer in the style of internal/metrics, exporting
// Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
//
// Naming note: internal/trace holds *memory-access traces* (the PC/address
// streams the prefetchers consume); this package records *execution spans*
// (where wall-clock and simulated cycles go inside a run). The two share
// nothing but the word.
//
// Determinism is a design constraint, exactly as in metrics. A nil *Tracer
// hands out nil tracks whose spans are no-ops, so instrumented hot paths
// carry one pointer compare and zero allocations when tracing is off (the
// alloc gate test pins this). Spans are recorded into per-track arenas —
// chunked, pointer-stable event buffers written by exactly one goroutine at
// a time and published through an atomic count, so the hot path takes no
// locks and the flusher can snapshot mid-run without races. Tracks are
// created in deterministic program order (main first, then worker 0..N-1,
// then simulator rows) and the exporter merges them in that order, so event
// IDs and file layout are reproducible run-to-run. Two clock domains exist:
// wall-clock tracks stamp events with nanoseconds since the tracer started
// (reproducible in structure, not in value), and explicit-clock tracks are
// stamped by the caller with simulated cycles (reproducible outright). The
// logical export mode replaces wall timestamps with per-track sequence
// numbers, which makes the exported file byte-identical across runs at the
// same seed and worker count — the differential tests and verify.sh compare
// such exports with cmp.
package tracing

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Event phases, a subset of the Chrome trace-event format: duration
// begin/end on one track, thread-scoped instants, and async begin/instant/
// end linked across time by (pid, cat, id).
const (
	PhaseBegin        = 'B'
	PhaseEnd          = 'E'
	PhaseInstant      = 'i'
	PhaseAsyncBegin   = 'b'
	PhaseAsyncInstant = 'n'
	PhaseAsyncEnd     = 'e'
	PhaseMetadata     = 'M'
)

// Event is one recorded trace event. TS is nanoseconds since the tracer
// started on wall-clock tracks and a caller-supplied simulated timestamp
// (cycles) on explicit-clock tracks. ID links async events; it is unused
// (zero) for sync events.
type Event struct {
	Ph   byte
	Name string
	TS   int64
	ID   uint64
}

// Arena geometry: chunked so event storage is pointer-stable (the flusher
// reads published events while the writer appends) and bounded so a runaway
// loop cannot exhaust memory — beyond the cap events are counted as dropped
// and the export says so.
const (
	chunkEvents = 4096
	maxChunks   = 1024
)

// Track is one timeline row: a (process, thread) pair holding an append-only
// event arena. Each track is written by one goroutine at a time; the count
// is published atomically after the event is in place, so concurrent readers
// (the flusher, the HTTP handler) observe a consistent prefix. All recording
// methods are no-ops on a nil track — the disabled-tracing fast path.
type Track struct {
	tracer   *Tracer
	pid, tid int
	process  string
	thread   string
	explicit bool // caller-stamped simulated clock (cycles), not wall time

	count   atomic.Uint64
	chunks  [maxChunks]atomic.Pointer[[chunkEvents]Event]
	dropped atomic.Uint64
}

// record appends one event (single writer per track).
func (tk *Track) record(ph byte, name string, id uint64, ts int64) {
	n := tk.count.Load()
	ci := int(n / chunkEvents)
	if ci >= maxChunks {
		tk.dropped.Add(1)
		return
	}
	chunk := tk.chunks[ci].Load()
	if chunk == nil {
		chunk = new([chunkEvents]Event)
		tk.chunks[ci].Store(chunk)
	}
	chunk[n%chunkEvents] = Event{Ph: ph, Name: name, TS: ts, ID: id}
	tk.count.Store(n + 1)
}

// snapshot returns the published event prefix (safe concurrently with the
// writer) plus the dropped-event count.
func (tk *Track) snapshot() ([]Event, uint64) {
	n := tk.count.Load()
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i += chunkEvents {
		chunk := tk.chunks[i/chunkEvents].Load()
		hi := n - i
		if hi > chunkEvents {
			hi = chunkEvents
		}
		out = append(out, chunk[:hi]...)
	}
	return out, tk.dropped.Load()
}

// Len returns the number of recorded events (0 on a nil track).
func (tk *Track) Len() uint64 {
	if tk == nil {
		return 0
	}
	return tk.count.Load()
}

// now returns the wall timestamp for this track's tracer.
func (tk *Track) now() int64 { return int64(time.Since(tk.tracer.start)) }

// Begin opens a duration span on a wall-clock track. The returned Span is a
// value (no allocation); End closes it. Spans on one track must nest —
// that is what the round-trip validator checks.
func (tk *Track) Begin(name string) Span {
	if tk == nil {
		return Span{}
	}
	tk.record(PhaseBegin, name, 0, tk.now())
	return Span{tk: tk, name: name}
}

// Instant records a point event at the current wall clock.
func (tk *Track) Instant(name string) {
	if tk == nil {
		return
	}
	tk.record(PhaseInstant, name, 0, tk.now())
}

// InstantAt records a point event at an explicit simulated timestamp.
func (tk *Track) InstantAt(name string, ts int64) {
	if tk == nil {
		return
	}
	tk.record(PhaseInstant, name, 0, ts)
}

// AsyncBegin opens an async span (Chrome "b") at the current wall clock.
// id must be unique within this track's process for the span's lifetime.
// The wall-clock async family is what cross-process RPC tracing uses: the
// client opens/closes the span around its request, the server drops
// AsyncInstant marks under the same (process, id) key, and tracing.Merge
// unifies the two processes by name so the marks land inside the span.
func (tk *Track) AsyncBegin(name string, id uint64) {
	if tk == nil {
		return
	}
	tk.record(PhaseAsyncBegin, name, id, tk.now())
}

// AsyncInstant records an instant inside an async span (Chrome "n") at the
// current wall clock.
func (tk *Track) AsyncInstant(name string, id uint64) {
	if tk == nil {
		return
	}
	tk.record(PhaseAsyncInstant, name, id, tk.now())
}

// AsyncEnd closes an async span (Chrome "e") at the current wall clock.
func (tk *Track) AsyncEnd(name string, id uint64) {
	if tk == nil {
		return
	}
	tk.record(PhaseAsyncEnd, name, id, tk.now())
}

// AsyncBeginAt opens an async span (Chrome "b") with an explicit timestamp.
// id must be unique within this track's process for the span's lifetime.
func (tk *Track) AsyncBeginAt(name string, id uint64, ts int64) {
	if tk == nil {
		return
	}
	tk.record(PhaseAsyncBegin, name, id, ts)
}

// AsyncInstantAt records an instant inside an async span (Chrome "n").
func (tk *Track) AsyncInstantAt(name string, id uint64, ts int64) {
	if tk == nil {
		return
	}
	tk.record(PhaseAsyncInstant, name, id, ts)
}

// AsyncEndAt closes an async span (Chrome "e"). The end event's name may
// differ from the begin's — the simulator uses it to record the outcome
// (hit, late_hit, evicted, resident).
func (tk *Track) AsyncEndAt(name string, id uint64, ts int64) {
	if tk == nil {
		return
	}
	tk.record(PhaseAsyncEnd, name, id, ts)
}

// Span is an open duration span. It is a value type like metrics.Timer:
// starting and ending a span allocates nothing, and the zero Span (from a
// nil track) is inert.
type Span struct {
	tk   *Track
	name string
}

// End closes the span (no-op for an inert span).
func (s Span) End() {
	if s.tk == nil {
		return
	}
	s.tk.record(PhaseEnd, s.name, 0, s.tk.now())
}

// Options configures a tracer.
type Options struct {
	// Path is the Chrome trace JSON output file, written by the background
	// flusher (if enabled) and finally — validated — by Close. Empty means
	// the trace is only available via Export/Handler.
	Path string
	// Logical replaces wall-clock timestamps with per-track sequence
	// numbers at export time, making the output byte-identical across runs
	// at the same seed and worker count. Explicit-clock (simulated-cycle)
	// tracks keep their timestamps, which are already deterministic.
	Logical bool
	// FlushEvery enables a background goroutine that rewrites Path with a
	// snapshot at this period, so a crashed run still leaves a timeline.
	// Zero disables the flusher.
	FlushEvery time.Duration
}

// Tracer owns the track registry and the export lifecycle. A nil *Tracer is
// the disabled state: Track returns nil, and nil tracks no-op everywhere.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	opts   Options
	procs  []string // process names in pid order (pid = index+1)
	tracks []*Track

	done chan struct{}
	wg   sync.WaitGroup
	err  error // sticky flusher write error, reported by Close
}

// New creates a tracer and, when Path and FlushEvery are both set, starts
// the background flusher.
func New(o Options) *Tracer {
	t := &Tracer{start: time.Now(), opts: o}
	if o.Path != "" && o.FlushEvery > 0 {
		t.done = make(chan struct{})
		t.wg.Add(1)
		go t.flushLoop(o.FlushEvery, t.done)
	}
	return t
}

// Track returns the wall-clock track for (process, thread), creating it on
// first use. Returns nil on a nil tracer. Creation order fixes pid/tid
// assignment and export order, so callers create tracks deterministically
// (setup code, never data-dependent paths).
func (t *Tracer) Track(process, thread string) *Track {
	return t.track(process, thread, false)
}

// ExplicitTrack is Track for a caller-stamped clock domain (simulated
// cycles): its events keep their timestamps even in logical export mode.
func (t *Tracer) ExplicitTrack(process, thread string) *Track {
	return t.track(process, thread, true)
}

func (t *Tracer) track(process, thread string, explicit bool) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tk := range t.tracks {
		if tk.process == process && tk.thread == thread {
			return tk
		}
	}
	pid := 0
	for i, p := range t.procs {
		if p == process {
			pid = i + 1
		}
	}
	if pid == 0 {
		t.procs = append(t.procs, process)
		pid = len(t.procs)
	}
	tk := &Track{tracer: t, pid: pid, tid: len(t.tracks) + 1,
		process: process, thread: thread, explicit: explicit}
	t.tracks = append(t.tracks, tk)
	return tk
}

// DroppedEvents returns the total number of events dropped across all
// tracks because their arenas hit the chunk cap (0 on a nil tracer). The
// export already reports this in otherData; exposing it as a method lets
// the serving daemon surface it as a live /metrics gauge instead of a
// post-mortem note in the trace file.
func (t *Tracer) DroppedEvents() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	tracks := append([]*Track(nil), t.tracks...)
	t.mu.Unlock()
	var n uint64
	for _, tk := range tracks {
		n += tk.dropped.Load()
	}
	return n
}

// flushLoop periodically rewrites the output file with a snapshot. done is
// passed in (not read from the struct) because Close nils the field under
// the mutex while this goroutine is still selecting on the channel.
func (t *Tracer) flushLoop(every time.Duration, done <-chan struct{}) {
	defer t.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := t.writeFile(); err != nil {
				t.mu.Lock()
				if t.err == nil {
					t.err = err
				}
				t.mu.Unlock()
			}
		case <-done:
			return
		}
	}
}

// writeFile writes a snapshot export to opts.Path via a same-directory
// temp file and rename, so a reader never sees a half-written trace.
func (t *Tracer) writeFile() error {
	data := t.Export()
	dir := filepath.Dir(t.opts.Path)
	tmp, err := os.CreateTemp(dir, ".trace-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()       // aborting anyway: the write error wins
		os.Remove(tmp.Name()) //nolint:errcheck
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		return err
	}
	return os.Rename(tmp.Name(), t.opts.Path)
}

// Close stops the flusher (if any), writes the final validated export to
// Path, and returns the first error seen (sticky flusher errors included).
// Safe on a nil tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	done := t.done
	t.done = nil
	t.mu.Unlock()
	if done != nil {
		close(done)
		t.wg.Wait()
	}
	if t.opts.Path != "" {
		if err := t.writeFile(); err != nil {
			return err
		}
		// The file a run leaves behind must load in Perfetto; re-parse it
		// through the round-trip validator so a malformed export fails the
		// run, not the later analysis.
		data, err := os.ReadFile(t.opts.Path)
		if err != nil {
			return err
		}
		if _, err := ValidateBytes(data); err != nil {
			return fmt.Errorf("tracing: exported %s fails validation: %w", t.opts.Path, err)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

package voyager

import (
	"math"
	"math/rand"

	"voyager/internal/metrics"
	"voyager/internal/nn"
	"voyager/internal/tensor"
	"voyager/internal/tracing"
	"voyager/internal/vocab"
)

// Model is the Voyager network (Figure 2): three embedding tables, the
// page-aware offset attention layer, two single-layer LSTMs (page and
// offset), and two linear prediction heads.
type Model struct {
	cfg Config
	voc *vocab.Vocab

	pcEmb   *nn.Embedding // PCTokens × PCEmbed
	pageEmb *nn.Embedding // PageTokens × PageEmbed
	offEmb  *nn.Embedding // OffsetTokens × (Experts·PageEmbed)

	pageLSTM *nn.LSTM
	offLSTM  *nn.LSTM
	pageHead *nn.Linear
	offHead  *nn.Linear

	// qPageHead/qOffHead are the int8 shadows of the heads used when
	// cfg.QuantizedPredict is set. The master owns them and requantizes
	// lazily (qDirty, set by TrainBatch); replicas receive the master's
	// pointers before each sharded predict and only read them.
	qPageHead *nn.QuantizedLinear
	qOffHead  *nn.QuantizedLinear
	qDirty    bool

	params nn.ParamSet

	// rng is worker 0's random stream. It is seeded with cfg.Seed and first
	// consumed by parameter initialization, then by worker 0's dropout masks
	// and negative sampling — exactly the seed implementation's single
	// stream, which keeps serial training bit-identical.
	rng *rand.Rand

	// replicas are the data-parallel workers 1..Workers-1: lightweight
	// shadow models sharing this model's weights but owning their gradient
	// buffers and RNG streams (seeded cfg.Seed+workerID). Built lazily on
	// the first sharded batch.
	replicas []*Model

	// tape is this worker's long-lived autodiff tape and memory arena:
	// trainShard/predictShard Reset it instead of building a fresh tape, so
	// steady-state steps recycle every node, value and gradient matrix.
	// Replicas each own theirs, which keeps the arena race-free without
	// locking.
	tape *tensor.Tape

	// obs is the shared training-observability bundle (never nil; inert when
	// metrics are disabled). shardSec is this worker's own shard-timing
	// histogram, looked up once so the hot path never formats a name.
	obs      *trainObs
	shardSec *metrics.Histogram

	// spans is the shared span-track bundle (never nil; inert when tracing
	// is disabled) and tk this worker's own timeline row, looked up once
	// like shardSec.
	spans *trainSpans
	tk    *tracing.Track

	// Scratch buffers reused across batches by samplePageCols and topK;
	// per-worker like the tape.
	colOf      map[int]int
	colsBuf    []int
	remapBuf   [][]int
	remapRows  [][]int
	pageScored []scored
	offScored  []scored
}

// NewModel builds a Voyager model for the given vocabulary.
func NewModel(cfg Config, voc *vocab.Vocab) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg, voc: voc, rng: rng, tape: tensor.NewTape()}
	m.obs = newTrainObs(cfg.Metrics)
	m.shardSec = m.obs.shardHist(0)
	m.spans = newTrainSpans(cfg.Trace)
	m.tk = m.spans.workerTrack(0)
	m.tape.Track = m.tk
	m.pcEmb = nn.NewEmbedding("emb.pc", voc.PCTokens(), cfg.PCEmbed, rng)
	m.pageEmb = nn.NewEmbedding("emb.page", voc.PageTokens(), cfg.PageEmbed, rng)
	m.offEmb = nn.NewEmbedding("emb.offset", vocab.OffsetTokens, cfg.OffsetEmbed(), rng)
	m.pageLSTM = nn.NewLSTM("lstm.page", cfg.InputDim(), cfg.Hidden, rng)
	m.offLSTM = nn.NewLSTM("lstm.offset", cfg.InputDim(), cfg.Hidden, rng)
	m.pageLSTM.Unfused = cfg.UnfusedLSTM
	m.offLSTM.Unfused = cfg.UnfusedLSTM
	headIn := cfg.Hidden
	if cfg.HeadSkip {
		headIn += cfg.InputDim()
	}
	m.pageHead = nn.NewLinear("head.page", headIn, voc.PageTokens(), rng)
	m.offHead = nn.NewLinear("head.offset", headIn, vocab.OffsetTokens, rng)

	m.params.Add(m.pcEmb.Table, m.pageEmb.Table, m.offEmb.Table)
	m.params.Add(m.pageLSTM.Params()...)
	m.params.Add(m.offLSTM.Params()...)
	m.params.Add(m.pageHead.Params()...)
	m.params.Add(m.offHead.Params()...)
	return m
}

// Params exposes the trainable parameters (for optimizers, compression and
// cost accounting).
func (m *Model) Params() *nn.ParamSet { return &m.params }

// workerCount resolves the configured data-parallel width for a batch of
// the given number of rows. Shards are never smaller than one row.
func (m *Model) workerCount(batch int) int {
	w := m.cfg.Workers
	if w == WorkersAuto {
		w = tensor.PoolWorkers()
	}
	if w < 1 {
		w = 1
	}
	if w > batch {
		w = batch
	}
	return w
}

// newReplica builds the shadow model for worker id (1-based): it shares the
// master's weights and vocabulary, owns its gradient buffers, and draws
// dropout masks and negative samples from an independent stream seeded
// Seed+id so shards never contend on — or reorder draws from — a shared RNG.
func (m *Model) newReplica(id int) *Model {
	r := &Model{
		cfg:      m.cfg,
		voc:      m.voc,
		rng:      rand.New(rand.NewSource(m.cfg.Seed + int64(id))),
		tape:     tensor.NewTape(),
		obs:      m.obs,
		shardSec: m.obs.shardHist(id),
		spans:    m.spans,
	}
	r.tk = m.spans.workerTrack(id)
	r.tape.Track = r.tk
	r.pcEmb = m.pcEmb.ShadowClone()
	r.pageEmb = m.pageEmb.ShadowClone()
	r.offEmb = m.offEmb.ShadowClone()
	r.pageLSTM = m.pageLSTM.ShadowClone()
	r.offLSTM = m.offLSTM.ShadowClone()
	r.pageHead = m.pageHead.ShadowClone()
	r.offHead = m.offHead.ShadowClone()
	// Same registration order as NewModel so replica params align with the
	// master set index-for-index during the ordered gradient reduce.
	r.params.Add(r.pcEmb.Table, r.pageEmb.Table, r.offEmb.Table)
	r.params.Add(r.pageLSTM.Params()...)
	r.params.Add(r.offLSTM.Params()...)
	r.params.Add(r.pageHead.Params()...)
	r.params.Add(r.offHead.Params()...)
	return r
}

// ensureReplicas lazily grows the replica list to serve n workers (the
// master itself is worker 0). Called before shard goroutines start, so the
// list is never mutated concurrently.
func (m *Model) ensureReplicas(n int) {
	for len(m.replicas) < n-1 {
		m.replicas = append(m.replicas, m.newReplica(len(m.replicas)+1))
	}
}

// worker returns the model that runs shard w: the master for worker 0,
// a replica otherwise.
func (m *Model) worker(w int) *Model {
	if w == 0 {
		return m
	}
	return m.replicas[w-1]
}

// shardBounds cuts batch rows into parts contiguous near-equal shards,
// returning parts+1 boundaries.
func shardBounds(batch, parts int) []int {
	b := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		b[i] = i * batch / parts
	}
	return b
}

// sliceSeqs restricts every timestep's token columns to batch rows [lo, hi).
func sliceSeqs(seqs []batchToken, lo, hi int) []batchToken {
	out := make([]batchToken, len(seqs))
	for i, s := range seqs {
		out[i] = batchToken{pc: s.pc[lo:hi], page: s.page[lo:hi], off: s.off[lo:hi]}
	}
	return out
}

// Vocab returns the model's vocabulary.
func (m *Model) Vocab() *vocab.Vocab { return m.voc }

// batchToken holds one timestep's token ids for a whole batch.
type batchToken struct {
	pc, page, off []int
}

// hidden runs the network up to the two LSTM hidden states (post-dropout).
func (m *Model) hidden(tp *tensor.Tape, seqs []batchToken, train bool) (ph, oh *tensor.Node) {
	pageState := m.pageLSTM.ZeroState(tp, len(seqs[0].page))
	offState := m.offLSTM.ZeroState(tp, len(seqs[0].page))
	var lastX *tensor.Node
	for _, tok := range seqs {
		pageE := m.pageEmb.Lookup(tp, tok.page)
		offE := m.offEmb.Lookup(tp, tok.off)
		var offAware *tensor.Node
		if m.cfg.PageAwareOffsets {
			// Page-aware offset embedding (Eq. 9-10): the page embedding
			// queries the offset's expert chunks.
			offAware, _ = tp.MoEAttention(pageE, offE, m.cfg.AttnScale)
		} else {
			// Ablation: the naive decomposition — a page-agnostic shared
			// offset embedding (the first expert chunk), which aliases
			// identical offsets across pages (§4.2.1).
			offAware = tp.SliceCols(offE, 0, m.cfg.PageEmbed)
		}
		var x *tensor.Node
		if m.cfg.PCUse == PCHistory {
			pcE := m.pcEmb.Lookup(tp, tok.pc)
			x = tp.ConcatCols(pcE, pageE, offAware)
		} else {
			x = tp.ConcatCols(pageE, offAware)
		}
		lastX = x
		x = nn.Dropout(tp, x, m.cfg.DropoutKeep, m.rng, train)
		pageState = m.pageLSTM.Step(tp, x, pageState)
		offState = m.offLSTM.Step(tp, x, offState)
	}
	ph = pageState.H
	oh = offState.H
	if m.cfg.HeadSkip {
		// Skip connection: the trigger access's embeddings feed the heads
		// directly alongside the LSTM state. This gives the heads a
		// learned successor-table path (trigger token → prediction) that
		// converges orders of magnitude faster than routing all
		// memorization through a small recurrent state — compensating for
		// the scaled-down LSTM sizes (see Config.HeadSkip).
		ph = tp.ConcatCols(ph, lastX)
		oh = tp.ConcatCols(oh, lastX)
	}
	ph = nn.Dropout(tp, ph, m.cfg.DropoutKeep, m.rng, train)
	oh = nn.Dropout(tp, oh, m.cfg.DropoutKeep, m.rng, train)
	return ph, oh
}

// TrainBatch runs one training step: forward, multi-label BCE loss on both
// heads (§4.4) with per-scheme soft targets, backward. Gradients are left
// in the params for the caller's optimizer step. Returns the summed loss.
//
// When the page vocabulary exceeds the negative-sampling threshold, the
// page head trains on the batch's positive columns plus NegSamples random
// negatives rather than the full vocabulary — the standard sampled-loss
// trick for large output spaces (the paper's §5.5 points at hierarchical
// softmax for the same cost problem).
//
// With cfg.Workers > 1 the batch is cut into contiguous row shards that run
// forward/backward concurrently, one per worker, each on its own tape,
// gradient buffers and RNG stream; shard gradients are then reduced into
// the shared params in ascending worker order (see Config.Workers).
func (m *Model) TrainBatch(seqs []batchToken, pagePos, offPos [][]int, pageW, offW [][]float32) float32 {
	batch := len(pagePos)
	m.qDirty = true // weights are about to move; requantize at next predict
	n := m.workerCount(batch)
	if n <= 1 {
		loss := m.trainShard(seqs, pagePos, offPos, pageW, offW, 1)
		m.obs.recordTrainStep(&m.params, batch, len(seqs), loss)
		return loss
	}
	m.ensureReplicas(n)
	bounds := shardBounds(batch, n)
	losses := make([]float32, n)
	tensor.RunTasks(n, func(w int) {
		lo, hi := bounds[w], bounds[w+1]
		// Each shard's loss is a mean over its own rows; the backward seed
		// frac makes shard gradients add up to the full-batch gradient, and
		// the frac-weighted losses add up to the full-batch mean loss.
		frac := float32(hi-lo) / float32(batch)
		losses[w] = frac * m.worker(w).trainShard(
			sliceSeqs(seqs, lo, hi),
			pagePos[lo:hi], offPos[lo:hi], pageW[lo:hi], offW[lo:hi], frac)
	})
	// Ordered reduce: worker 0 backpropagated straight into the shared
	// params; fold the replicas in ascending worker index so the float32
	// summation order — and training — is reproducible at this worker count.
	reduceSp := m.spans.main.Begin("reduce")
	defer reduceSp.End()
	master := m.params.All()
	for w := 1; w < n; w++ {
		rep := m.replicas[w-1].params.All()
		for i, p := range master {
			p.MergeGrad(rep[i])
		}
	}
	var total float32
	for _, l := range losses {
		total += l
	}
	m.obs.recordTrainStep(&m.params, batch, len(seqs), total)
	return total
}

// trainShard runs forward and backward over one shard of a batch on this
// worker's tape, RNG stream and gradient buffers. seedWeight scales the
// backward seed (1 for the serial full-batch path, the shard's row fraction
// when data-parallel) and the unweighted shard loss is returned.
func (m *Model) trainShard(seqs []batchToken, pagePos, offPos [][]int, pageW, offW [][]float32, seedWeight float32) float32 {
	shardT := metrics.StartTimer(m.shardSec)
	fwdT := metrics.StartTimer(m.obs.forwardSec)
	fwdSp := m.tk.Begin("forward")
	tp := m.tape
	tp.Reset()
	ph, oh := m.hidden(tp, seqs, true)

	var pageLoss *tensor.Node
	vocabSize := m.voc.PageTokens()
	if m.cfg.NegSamples > 0 && vocabSize > 2*m.cfg.NegSamples {
		cols, remapped := m.samplePageCols(pagePos)
		logits := m.pageHead.ForwardSampled(tp, ph, cols)
		pageLoss, _ = tp.SigmoidBCEWeighted(logits, remapped, pageW)
	} else {
		logits := m.pageHead.Forward(tp, ph)
		pageLoss, _ = tp.SigmoidBCEWeighted(logits, pagePos, pageW)
	}
	offLogits := m.offHead.Forward(tp, oh)
	offLoss, _ := tp.SigmoidBCEWeighted(offLogits, offPos, offW)
	total := tp.Add(pageLoss, offLoss)
	fwdT.Stop()
	fwdSp.End()
	bwdT := metrics.StartTimer(m.obs.backwardSec)
	bwdSp := m.tk.Begin("backward")
	total.EnsureGrad().Fill(seedWeight)
	tp.BackwardFromSeed()
	bwdSp.End()
	bwdT.Stop()
	shardT.Stop()
	return total.Val.Data[0]
}

// samplePageCols builds the sampled column set (all batch positives plus
// NegSamples random negatives) and remaps the positive token ids into
// column-local indices. The returned slices are per-worker scratch reused
// across batches; they stay valid until this worker's next call.
func (m *Model) samplePageCols(pagePos [][]int) (cols []int, remapped [][]int) {
	if m.colOf == nil {
		m.colOf = make(map[int]int)
	}
	colOf := m.colOf
	clear(colOf)
	cols = m.colsBuf[:0]
	for _, row := range pagePos {
		for _, tok := range row {
			if _, ok := colOf[tok]; !ok {
				colOf[tok] = len(cols)
				cols = append(cols, tok)
			}
		}
	}
	vocabSize := m.voc.PageTokens()
	for i := 0; i < m.cfg.NegSamples; i++ {
		tok := m.rng.Intn(vocabSize)
		if _, ok := colOf[tok]; ok {
			continue
		}
		colOf[tok] = len(cols)
		cols = append(cols, tok)
	}
	m.colsBuf = cols
	for len(m.remapRows) < len(pagePos) {
		m.remapRows = append(m.remapRows, nil)
	}
	remapped = m.remapBuf[:0]
	for r, row := range pagePos {
		rr := m.remapRows[r][:0]
		for _, tok := range row {
			rr = append(rr, colOf[tok])
		}
		m.remapRows[r] = rr
		remapped = append(remapped, rr)
	}
	m.remapBuf = remapped
	return cols, remapped
}

// Candidate is one (page, offset) prediction with its joint score.
type Candidate struct {
	PageTok int
	OffTok  int
	Score   float64
}

// PredictBatch runs inference and returns, per batch row, the top-degree
// (page, offset) candidates ranked by the product of head probabilities
// (§4.1: "the page and offset pair with the highest probability").
func (m *Model) PredictBatch(seqs []batchToken, degree int) [][]Candidate {
	batch := len(seqs[0].page)
	n := m.workerCount(batch)
	if m.cfg.QuantizedPredict {
		// Requantize once, on the calling goroutine, before any shard runs.
		m.ensureQuantHeads()
	}
	if n <= 1 {
		return m.predictShard(seqs, degree)
	}
	m.ensureReplicas(n)
	if m.cfg.QuantizedPredict {
		for _, r := range m.replicas {
			r.qPageHead, r.qOffHead = m.qPageHead, m.qOffHead
		}
	}
	bounds := shardBounds(batch, n)
	out := make([][]Candidate, batch)
	// Inference shards are embarrassingly parallel: forward passes only read
	// the shared weights (fp32 or quantized shadows), and each worker writes
	// a disjoint slice of out.
	tensor.RunTasks(n, func(w int) {
		lo, hi := bounds[w], bounds[w+1]
		copy(out[lo:hi], m.worker(w).predictShard(sliceSeqs(seqs, lo, hi), degree))
	})
	return out
}

// ensureQuantHeads builds or refreshes the int8 head shadows so they match
// the current fp32 weights. Called from the PredictBatch entry goroutine
// only, never from shards, so requantization is race-free.
func (m *Model) ensureQuantHeads() {
	if m.qPageHead == nil {
		m.qPageHead = nn.QuantizeLinear(m.pageHead)
		m.qOffHead = nn.QuantizeLinear(m.offHead)
		m.qDirty = false
		return
	}
	if m.qDirty {
		m.qPageHead.Requantize(m.pageHead)
		m.qOffHead.Requantize(m.offHead)
		m.qDirty = false
	}
}

// predictShard runs inference for one shard of a batch.
func (m *Model) predictShard(seqs []batchToken, degree int) [][]Candidate {
	sp := m.tk.Begin("predict_shard")
	defer sp.End()
	tp := m.tape
	tp.Reset()
	ph, oh := m.hidden(tp, seqs, false)
	var pageLogits, offLogits *tensor.Node
	if m.cfg.QuantizedPredict {
		pageLogits = m.qPageHead.Forward(tp, ph)
		offLogits = m.qOffHead.Forward(tp, oh)
	} else {
		pageLogits = m.pageHead.Forward(tp, ph)
		offLogits = m.offHead.Forward(tp, oh)
	}
	batch := pageLogits.Val.Rows
	out := make([][]Candidate, batch)
	for b := 0; b < batch; b++ {
		m.pageScored = topKInto(m.pageScored[:0], pageLogits.Val.Row(b), degree)
		m.offScored = topKInto(m.offScored[:0], offLogits.Val.Row(b), degree)
		pages, offs := m.pageScored, m.offScored
		cands := make([]Candidate, 0, len(pages)*len(offs))
		for _, p := range pages {
			for _, o := range offs {
				cands = append(cands, Candidate{
					PageTok: p.idx,
					OffTok:  o.idx,
					Score:   p.prob * o.prob,
				})
			}
		}
		sortCandidates(cands)
		if len(cands) > degree {
			cands = cands[:degree]
		}
		out[b] = cands
	}
	return out
}

type scored struct {
	idx  int
	prob float64
}

// topKInto returns the k highest-logit entries with sigmoid probabilities,
// appending into dst (pass dst[:0] to reuse its backing array).
func topKInto(dst []scored, logits []float32, k int) []scored {
	if k > len(logits) {
		k = len(logits)
	}
	best := dst
	for i, v := range logits {
		p := float64(v) // rank by logit; convert to prob lazily below
		if len(best) < k {
			best = append(best, scored{i, p})
			if len(best) == k {
				sortScored(best)
			}
			continue
		}
		if p > best[k-1].prob {
			best[k-1] = scored{i, p}
			sortScored(best)
		}
	}
	if len(best) < k {
		sortScored(best)
	}
	for i := range best {
		best[i].prob = sigmoid64(best[i].prob)
	}
	return best
}

func sortScored(s []scored) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].prob > s[j-1].prob; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortCandidates(c []Candidate) {
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j].Score > c[j-1].Score; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
}

func sigmoid64(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

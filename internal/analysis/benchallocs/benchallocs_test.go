package benchallocs_test

import (
	"testing"

	"voyager/internal/analysis/analysistest"
	"voyager/internal/analysis/benchallocs"
)

func TestBenchAllocs(t *testing.T) {
	analysistest.Run(t, benchallocs.New(), "testdata/src/benchpkg")
}

module voyager

go 1.22

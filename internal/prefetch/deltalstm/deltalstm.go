// Package deltalstm implements the paper's neural baseline: the delta-LSTM
// of Hashemi et al., "Learning Memory Access Patterns" (2018). The model
// embeds (PC, line-delta) pairs, runs an LSTM over the history, and
// classifies the next global line delta with a softmax — so it can learn
// strided and delta-correlated patterns but, unlike Voyager, cannot learn
// address correlations (§2.2). Its vocabulary is the set of observed
// deltas, which on irregular workloads explodes (the paper reports
// millions of deltas versus Voyager's tens of deltas), which is why
// Voyager is 20-56× smaller before compression.
package deltalstm

import (
	"fmt"
	"math/rand"
	"sort"

	"voyager/internal/nn"
	"voyager/internal/prefetch"
	"voyager/internal/tensor"
	"voyager/internal/trace"
)

// Config holds the Delta-LSTM hyperparameters (Hashemi et al. use a
// 2×128 LSTM over 50k deltas; the scaled default mirrors Voyager's scaled
// dimensions for a fair comparison).
type Config struct {
	Seed           int64
	SeqLen         int
	DeltaEmbed     int
	PCEmbed        int
	Hidden         int
	MaxDeltaVocab  int // most frequent deltas kept (Hashemi: 50000)
	LearningRate   float32
	BatchSize      int
	EpochAccesses  int
	PassesPerEpoch int
	Degree         int
}

// ScaledConfig mirrors voyager.ScaledConfig dimensions.
func ScaledConfig() Config {
	return Config{
		Seed:           1,
		SeqLen:         8,
		DeltaEmbed:     32,
		PCEmbed:        16,
		Hidden:         48,
		MaxDeltaVocab:  50_000,
		LearningRate:   0.005,
		BatchSize:      64,
		EpochAccesses:  15_000,
		PassesPerEpoch: 3,
		Degree:         1,
	}
}

// FastConfig is a tiny configuration for unit tests.
func FastConfig() Config {
	c := ScaledConfig()
	c.SeqLen = 4
	c.DeltaEmbed = 16
	c.PCEmbed = 8
	c.Hidden = 24
	c.BatchSize = 32
	c.EpochAccesses = 2_000
	c.LearningRate = 0.01
	c.PassesPerEpoch = 6
	return c
}

// Model is a trained Delta-LSTM bound to one trace.
type Model struct {
	Cfg Config

	deltaID map[int64]int
	deltas  []int64 // token → delta (token 0 is UNK/out-of-vocab)
	pcID    map[uint64]int

	emb    *nn.Embedding
	pcEmb  *nn.Embedding
	cell   *nn.LSTM
	head   *nn.Linear
	params nn.ParamSet
	rng    *rand.Rand
	tape   *tensor.Tape // long-lived arena tape, Reset per batch

	lines  []uint64
	tokens []int // delta token per access
	pcTok  []int
	preds  [][]uint64
}

// Train runs the online protocol (train on epoch i, predict epoch i+1) and
// returns the bound model.
func Train(tr *trace.Trace, cfg Config) (*Model, error) {
	if tr.Len() < 2 {
		return nil, fmt.Errorf("deltalstm: trace too short")
	}
	if cfg.SeqLen < 1 || cfg.BatchSize < 1 || cfg.EpochAccesses < cfg.SeqLen+1 {
		return nil, fmt.Errorf("deltalstm: invalid config %+v", cfg)
	}
	m := &Model{
		Cfg:     cfg,
		deltaID: make(map[int64]int),
		pcID:    make(map[uint64]int),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		tape:    tensor.NewTape(),
	}

	// Profile deltas; keep the most frequent MaxDeltaVocab.
	n := tr.Len()
	m.lines = make([]uint64, n)
	for i, a := range tr.Accesses {
		m.lines[i] = trace.Line(a.Addr)
	}
	freq := make(map[int64]int)
	for i := 1; i < n; i++ {
		freq[int64(m.lines[i])-int64(m.lines[i-1])]++
	}
	type dc struct {
		d int64
		n int
	}
	all := make([]dc, 0, len(freq))
	for d, c := range freq {
		all = append(all, dc{d, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].d < all[j].d
	})
	if cfg.MaxDeltaVocab > 0 && len(all) > cfg.MaxDeltaVocab {
		all = all[:cfg.MaxDeltaVocab]
	}
	m.deltas = make([]int64, 1, len(all)+1) // token 0 = UNK
	for _, e := range all {
		m.deltaID[e.d] = len(m.deltas)
		m.deltas = append(m.deltas, e.d)
	}

	// PC vocabulary (token 0 = UNK, then first-appearance order).
	m.pcTok = make([]int, n)
	for i, a := range tr.Accesses {
		id, ok := m.pcID[a.PC]
		if !ok {
			id = len(m.pcID) + 1
			m.pcID[a.PC] = id
		}
		m.pcTok[i] = id
	}

	// Tokenize deltas (delta leading into access i; token[0] = UNK).
	m.tokens = make([]int, n)
	for i := 1; i < n; i++ {
		m.tokens[i] = m.deltaID[int64(m.lines[i])-int64(m.lines[i-1])]
	}

	m.emb = nn.NewEmbedding("dlstm.emb.delta", len(m.deltas), cfg.DeltaEmbed, m.rng)
	m.pcEmb = nn.NewEmbedding("dlstm.emb.pc", len(m.pcID)+1, cfg.PCEmbed, m.rng)
	m.cell = nn.NewLSTM("dlstm.lstm", cfg.DeltaEmbed+cfg.PCEmbed, cfg.Hidden, m.rng)
	m.head = nn.NewLinear("dlstm.head", cfg.Hidden, len(m.deltas), m.rng)
	m.params.Add(m.emb.Table, m.pcEmb.Table)
	m.params.Add(m.cell.Params()...)
	m.params.Add(m.head.Params()...)

	m.preds = make([][]uint64, n)
	opt := nn.NewAdam(cfg.LearningRate)
	for start := 0; start < n; start += cfg.EpochAccesses {
		end := start + cfg.EpochAccesses
		if end > n {
			end = n
		}
		if start > 0 {
			m.predictRange(start, end)
		}
		passes := cfg.PassesPerEpoch
		if passes < 1 {
			passes = 1
		}
		for pass := 0; pass < passes; pass++ {
			m.trainRange(start, end, opt)
		}
		opt.Decay()
	}
	return m, nil
}

// forward runs the LSTM over sequences ending at the given positions and
// returns the delta logits.
func (m *Model) forward(tp *tensor.Tape, positions []int) *tensor.Node {
	T := m.Cfg.SeqLen
	state := m.cell.ZeroState(tp, len(positions))
	ids := make([]int, len(positions))
	pcs := make([]int, len(positions))
	for s := 0; s < T; s++ {
		for b, pos := range positions {
			idx := pos - T + 1 + s
			if idx < 0 {
				idx = 0
			}
			ids[b] = m.tokens[idx]
			pcs[b] = m.pcTok[idx]
		}
		x := tp.ConcatCols(m.emb.Lookup(tp, ids), m.pcEmb.Lookup(tp, pcs))
		state = m.cell.Step(tp, x, state)
	}
	return m.head.Forward(tp, state.H)
}

func (m *Model) trainRange(start, end int, opt *nn.Adam) {
	var positions []int
	var targets []int
	flush := func() {
		if len(positions) == 0 {
			return
		}
		tp := m.tape
		tp.Reset()
		logits := m.forward(tp, positions)
		loss, _ := tp.SoftmaxCrossEntropy(logits, targets)
		tp.Backward(loss)
		opt.Step(m.params.All())
		positions = positions[:0]
		targets = targets[:0]
	}
	for t := start; t+1 < end; t++ {
		tok := m.tokens[t+1] // the delta leading to the next access
		if tok == 0 {
			continue // out-of-vocabulary target
		}
		positions = append(positions, t)
		targets = append(targets, tok)
		if len(positions) == m.Cfg.BatchSize {
			flush()
		}
	}
	flush()
}

func (m *Model) predictRange(start, end int) {
	for t := start; t < end; t += m.Cfg.BatchSize {
		hi := t + m.Cfg.BatchSize
		if hi > end {
			hi = end
		}
		positions := make([]int, 0, hi-t)
		for i := t; i < hi; i++ {
			positions = append(positions, i)
		}
		tp := m.tape
		tp.Reset()
		logits := m.forward(tp, positions)
		for b, pos := range positions {
			m.preds[pos] = m.decodeTopK(m.lines[pos], logits.Val.Row(b))
		}
	}
}

// decodeTopK converts the top-degree deltas into prefetch addresses.
func (m *Model) decodeTopK(line uint64, logits []float32) []uint64 {
	k := m.Cfg.Degree
	if k < 1 {
		k = 1
	}
	type sc struct {
		tok int
		v   float32
	}
	best := make([]sc, 0, k+1)
	for tok := 1; tok < len(logits); tok++ { // skip UNK
		v := logits[tok]
		if len(best) < k {
			best = append(best, sc{tok, v})
			continue
		}
		worst := 0
		for i := 1; i < len(best); i++ {
			if best[i].v < best[worst].v {
				worst = i
			}
		}
		if v > best[worst].v {
			best[worst] = sc{tok, v}
		}
	}
	sort.Slice(best, func(i, j int) bool { return best[i].v > best[j].v })
	out := make([]uint64, 0, len(best))
	for _, b := range best {
		target := int64(line) + m.deltas[b.tok]
		if target < 0 {
			continue
		}
		out = append(out, uint64(target)<<trace.LineBits)
	}
	return out
}

// Predictions returns per-access prefetch predictions.
func (m *Model) Predictions() [][]uint64 { return m.preds }

// Params exposes the trainable parameters for size accounting (§5.4).
func (m *Model) Params() *nn.ParamSet { return &m.params }

// DeltaVocabSize returns the delta vocabulary size including UNK.
func (m *Model) DeltaVocabSize() int { return len(m.deltas) }

// AsPrefetcher adapts the model for the simulator.
func (m *Model) AsPrefetcher() *prefetch.Precomputed {
	return &prefetch.Precomputed{Label: "delta-lstm", Predictions: m.preds}
}

package bo

import (
	"testing"

	"voyager/internal/trace"
)

func acc(line uint64) trace.Access {
	return trace.Access{PC: 1, Addr: line << trace.LineBits}
}

func TestLearnsConstantStride(t *testing.T) {
	p := New(1)
	// Stride-2 stream: offsets other than 2 (and multiples) score poorly.
	line := uint64(1000)
	var out []uint64
	for i := 0; i < 20000; i++ {
		out = p.Access(i, acc(line))
		line += 2
	}
	best, ok := p.BestOffset()
	if !ok {
		t.Fatalf("BO did not enable prefetching")
	}
	if best%2 != 0 || best <= 0 {
		t.Fatalf("learned offset %d, want a positive multiple of 2", best)
	}
	if len(out) != 1 {
		t.Fatalf("no prefetch emitted")
	}
	if got := int64(trace.Line(out[0])) - int64(line-2); got != best {
		t.Fatalf("prefetch offset %d != best %d", got, best)
	}
}

func TestNoPrefetchOnRandomStream(t *testing.T) {
	p := New(1)
	// A stream with no reuse at any tested offset: scores stay ~0, so BO
	// should disable itself (bestOK false) or prefetch rarely.
	line := uint64(0)
	enabled := 0
	for i := 0; i < 30000; i++ {
		line += 1009 // prime stride larger than any tested offset
		p.Access(i, acc(line))
		if _, ok := p.BestOffset(); ok {
			enabled++
		}
	}
	if enabled > 15000 {
		t.Fatalf("BO stayed enabled on unpredictable stream (%d/30000)", enabled)
	}
}

func TestDegreeMultiplies(t *testing.T) {
	p := New(3)
	line := uint64(500)
	var out []uint64
	for i := 0; i < 20000; i++ {
		out = p.Access(i, acc(line))
		line++
	}
	if len(out) != 3 {
		t.Fatalf("degree-3 BO emitted %d prefetches", len(out))
	}
	best, _ := p.BestOffset()
	for k, addr := range out {
		want := int64(line-1) + best*int64(k+1)
		if int64(trace.Line(addr)) != want {
			t.Fatalf("prefetch %d at %d, want %d", k, trace.Line(addr), want)
		}
	}
}

func TestName(t *testing.T) {
	if New(1).Name() != "bo" {
		t.Fatalf("name")
	}
}

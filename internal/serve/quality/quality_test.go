package quality

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"

	"voyager/internal/metrics"
)

// TestScoreClassification pins the verdict boundaries: a match within
// UsefulK accesses is useful, within RetainK late, and aging past RetainK
// without a match is a miss.
func TestScoreClassification(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{UsefulK: 2, RetainK: 4, Metrics: reg})
	s := tr.NewSession()

	// Access 1 emits predictions for lines 10 (hits at distance 1: useful),
	// 20 (hits at distance 3: late), 30 (never hit: miss at distance 5).
	s.Score(1, []uint64{10, 20, 30}, TierFast)
	s.Score(10, nil, TierFast) // distance 1 → useful
	s.Score(99, nil, TierFast)
	s.Score(20, nil, TierFast) // distance 3 → late
	s.Score(98, nil, TierFast)
	s.Score(97, nil, TierFast) // line 30 is now 5 accesses old → miss

	wc := func(name string) uint64 { return reg.WindowCounter(name, 8).Total() }
	if got := wc("quality_useful_fast"); got != 1 {
		t.Fatalf("useful = %d, want 1", got)
	}
	if got := wc("quality_late_fast"); got != 1 {
		t.Fatalf("late = %d, want 1", got)
	}
	if got := wc("quality_miss_fast"); got != 1 {
		t.Fatalf("miss = %d, want 1", got)
	}
	if got := wc("quality_predictions_fast"); got != 3 {
		t.Fatalf("predictions = %d, want 3", got)
	}
	// Tier separation: nothing landed on the model tier.
	if wc("quality_predictions_model") != 0 {
		t.Fatal("model tier counted fast-tier predictions")
	}
	// Hit distances 1 and 3 in the rolling histogram.
	if got := reg.WindowHistogram("quality_hit_distance", 8).Window().Count(); got != 2 {
		t.Fatalf("hit-distance count = %d, want 2", got)
	}
}

// TestScoreConservation: for arbitrary access/prediction sequences,
// predictions == useful + late + miss + overflow + unresolved once the
// session closes — no prediction is ever double-counted or lost, including
// through ring overflow and tombstone reuse.
func TestScoreConservation(t *testing.T) {
	f := func(seed []byte) bool {
		reg := metrics.NewRegistry()
		tr := New(Config{UsefulK: 3, RetainK: 6, PendingCap: 8, WindowEvery: 16, Windows: 2, Metrics: reg})
		s := tr.NewSession()
		// Drive accesses and predictions from the fuzz bytes over a tiny
		// line space so matches actually happen.
		for i, b := range seed {
			access := uint64(b % 16)
			var preds []uint64
			for j := 0; j < int(b%4); j++ {
				preds = append(preds, uint64((int(b)+i*7+j)%16))
			}
			s.Score(access, preds, int(b)%numTiers)
		}
		s.Close()
		var preds, settled uint64
		for _, tier := range []string{"model", "fast"} {
			preds += reg.WindowCounter("quality_predictions_"+tier, 2).Total()
			settled += reg.WindowCounter("quality_useful_"+tier, 2).Total()
			settled += reg.WindowCounter("quality_late_"+tier, 2).Total()
			settled += reg.WindowCounter("quality_miss_"+tier, 2).Total()
		}
		settled += reg.Counter("quality_overflow_total").Value()
		settled += reg.Counter("quality_unresolved_total").Value()
		return preds == settled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseChangeVisibleInWindow is the unit-level version of the e2e
// acceptance property: after a long accurate phase, a workload shift makes
// the rolling accuracy crater while cumulative accuracy barely moves.
func TestPhaseChangeVisibleInWindow(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{UsefulK: 4, RetainK: 8, WindowEvery: 50, Windows: 2, Metrics: reg})
	s := tr.NewSession()

	// Phase 1: 1000 perfectly predicted accesses (predict the next line).
	for i := uint64(0); i < 1000; i++ {
		s.Score(i, []uint64{i + 1}, TierFast)
	}
	mid := tr.Report()
	// Phase 2: the stream jumps to a disjoint region and the (stale)
	// predictions never match again.
	for i := uint64(0); i < 300; i++ {
		s.Score(1_000_000+i*100, []uint64{i + 1}, TierFast)
	}
	end := tr.Report()

	if acc := float64(mid.Fast.Accuracy); acc < 0.99 {
		t.Fatalf("phase-1 accuracy = %.3f, want ~1", acc)
	}
	if acc := float64(end.Fast.Accuracy); acc < 0.70 {
		t.Fatalf("cumulative accuracy = %.3f — should still be masked high", acc)
	}
	if acc := float64(end.Fast.WindowAccuracy); acc > 0.10 {
		t.Fatalf("window accuracy = %.3f — should have cratered", acc)
	}
}

// TestRotationDeterminism: same scoring sequence → same rolling counters,
// because rotation is outcome-driven, not clock-driven.
func TestRotationDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		reg := metrics.NewRegistry()
		tr := New(Config{UsefulK: 2, RetainK: 4, WindowEvery: 7, Windows: 3, Metrics: reg})
		s := tr.NewSession()
		for i := uint64(0); i < 200; i++ {
			s.Score(i, []uint64{i + 1 + i%3}, TierModel)
		}
		w := reg.WindowCounter("quality_useful_model", 3)
		return w.Total(), w.WindowTotal()
	}
	t1, w1 := run()
	t2, w2 := run()
	if t1 != t2 || w1 != w2 {
		t.Fatalf("replay diverged: totals %d/%d windows %d/%d", t1, t2, w1, w2)
	}
	if w1 == t1 {
		t.Fatal("window never rotated — rolling view equals cumulative")
	}
}

// TestShadowSampling: ShadowTick fires exactly 1-in-N, agreement feeds the
// rolling counters, and a zero period disables sampling entirely.
func TestShadowSampling(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{ShadowEvery: 4, Metrics: reg})
	fired := 0
	for i := 0; i < 40; i++ {
		if tr.ShadowTick() {
			fired++
		}
	}
	if fired != 10 {
		t.Fatalf("ShadowTick fired %d/40, want 10", fired)
	}
	tr.RecordShadow(true)
	tr.RecordShadow(false)
	tr.RecordShadow(true)
	tr.RecordShadowDropped()
	r := tr.Report()
	if r.Shadow.Samples != 3 || r.Shadow.Agree != 2 || r.Shadow.Dropped != 1 {
		t.Fatalf("shadow report = %+v", r.Shadow)
	}
	if got := float64(r.Shadow.Agreement); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("agreement = %v, want 2/3", got)
	}

	off := New(Config{})
	if off.ShadowTick() {
		t.Fatal("ShadowTick fired with sampling disabled")
	}
	var nilT *Tracker
	if nilT.ShadowTick() || nilT.ShadowEvery() != 0 {
		t.Fatal("nil tracker shadow not inert")
	}
}

// TestNilSafety: the nil tracker and nil session are inert end to end —
// the serve hot path calls these without nil checks.
func TestNilSafety(t *testing.T) {
	var tr *Tracker
	s := tr.NewSession()
	if s != nil {
		t.Fatal("nil tracker handed out a session")
	}
	s.Score(1, []uint64{2}, TierFast)
	s.Close()
	tr.RecordShadow(true)
	tr.RecordShadowDropped()
	if r := tr.Report(); r.Global.Predictions != 0 {
		t.Fatal("nil tracker reported traffic")
	}
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/quality", nil))
	if rec.Code != 404 {
		t.Fatalf("nil handler status = %d, want 404", rec.Code)
	}
}

// TestHandlerAndString: the /quality endpoint serves well-formed JSON with
// NaN ratios quoted, and the scoreboard renders.
func TestHandlerAndString(t *testing.T) {
	tr := New(Config{Metrics: metrics.NewRegistry()})
	s := tr.NewSession()
	s.Score(1, []uint64{2}, TierFast)
	s.Score(2, nil, TierFast)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/quality", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var r Report
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		// NaN fields arrive as quoted strings; decode into a loose map to
		// confirm the payload is at least valid JSON before failing.
		var m map[string]any
		if err2 := json.Unmarshal(rec.Body.Bytes(), &m); err2 != nil {
			t.Fatalf("endpoint JSON invalid: %v", err2)
		}
	}
	out := tr.Report().String()
	for _, want := range []string{"model", "fast", "global", "shadow", "useful=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scoreboard missing %q:\n%s", want, out)
		}
	}
}

// TestReportJSONRoundTripsNaN: a boot-state report (all ratios NaN) must
// still marshal to valid JSON for the endpoint.
func TestReportJSONRoundTripsNaN(t *testing.T) {
	tr := New(Config{Metrics: metrics.NewRegistry()})
	data, err := json.Marshal(tr.Report())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(data), `"accuracy":"NaN"`) {
		t.Fatalf("NaN accuracy not quoted:\n%s", data)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

package voyager

import (
	"testing"
)

// Steady-state allocation budgets for the hot path. Before the tape arena a
// FastConfig TrainBatch burned thousands of allocations per step (fresh Mats
// for every op's value and gradient); with the arena the remainder is the
// per-op backward closures plus a few result slices, measured at ~95
// (train) and ~113 (predict) at one worker once the matmul dispatch went
// closure-free (the former parallelRows closure cost one allocation per
// kernel call). The budgets below leave ~50% headroom — they exist to catch
// a regression that reintroduces per-step matrix or per-kernel dispatch
// allocation (which would blow the budget by an order of magnitude), not to
// pin exact closure counts.
func TestSteadyStateAllocBudget(t *testing.T) {
	cycle := []uint64{0x10<<6 | 5, 0x22<<6 | 61, 0x15<<6 | 0, 0x9<<6 | 33}
	tr := cyclicTrace(cycle, 300)
	for _, tc := range []struct {
		workers        int
		train, predict float64
	}{
		{workers: 1, train: 150, predict: 170},
		{workers: 4, train: 550, predict: 520},
	} {
		cfg := FastConfig()
		cfg.Workers = tc.workers
		h, err := NewBenchHarness(tr, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", tc.workers, err)
		}
		// Warm the arenas: first steps grow freelists and scratch buffers.
		for i := 0; i < 3; i++ {
			h.TrainStep()
			h.PredictStep()
		}
		if got := testing.AllocsPerRun(10, func() { h.TrainStep() }); got > tc.train {
			t.Errorf("workers=%d: TrainStep allocates %v/op, budget %v", tc.workers, got, tc.train)
		}
		if got := testing.AllocsPerRun(10, func() { h.PredictStep() }); got > tc.predict {
			t.Errorf("workers=%d: PredictStep allocates %v/op, budget %v", tc.workers, got, tc.predict)
		}
	}
}

package trace_test

import (
	"fmt"

	"voyager/internal/trace"
)

// Addresses decompose hierarchically exactly the way the paper's model
// consumes them: a page number and a 6-bit line offset.
func ExamplePage() {
	addr := uint64(0x2A7C0) // byte address
	fmt.Println("line:", trace.Line(addr))
	fmt.Println("page:", trace.Page(addr))
	fmt.Println("offset:", trace.Offset(addr))
	fmt.Printf("rejoined: %#x\n", trace.Join(trace.Page(addr), trace.Offset(addr)))
	// Output:
	// line: 2719
	// page: 42
	// offset: 31
	// rejoined: 0x2a7c0
}

func ExampleComputeStats() {
	tr := &trace.Trace{Name: "toy"}
	tr.Append(0x400000, 0x1000, 1)
	tr.Append(0x400004, 0x1040, 3)
	tr.Append(0x400000, 0x2000, 5)
	fmt.Println(trace.ComputeStats(tr))
	// Output:
	// toy        pcs=2      addrs=3        pages=2      accesses=3
}

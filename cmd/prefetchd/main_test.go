package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"voyager/internal/distill"
	"voyager/internal/serve"
	"voyager/internal/trace"
	"voyager/internal/tracing"
	"voyager/internal/voyager"
)

// testConfig is the tiny-but-real model configuration the binary's
// helpers are exercised with: small enough to train in seconds, shaped
// exactly like the flag-built config in main (DropoutKeep forced to 1
// so prediction is deterministic, serving's correctness precondition).
func testConfig(n int) voyager.Config {
	cfg := voyager.ScaledConfig()
	cfg.Seed = 7
	cfg.Hidden = 8
	cfg.Degree = 1
	cfg.DropoutKeep = 1
	cfg.PassesPerEpoch = 1
	cfg.EpochAccesses = n
	cfg.Workers = 1
	return cfg
}

func TestLoadTrace(t *testing.T) {
	tr, err := loadTrace("", "cc", 7, 600)
	if err != nil {
		t.Fatalf("bench mode: %v", err)
	}
	if len(tr.Accesses) == 0 {
		t.Fatal("bench mode produced an empty trace")
	}

	// File mode must round-trip what bench mode generated.
	path := filepath.Join(t.TempDir(), "t.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatalf("trace.Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	tr2, err := loadTrace(path, "", 7, 600)
	if err != nil {
		t.Fatalf("file mode: %v", err)
	}
	if len(tr2.Accesses) != len(tr.Accesses) {
		t.Fatalf("file mode read %d accesses, want %d", len(tr2.Accesses), len(tr.Accesses))
	}

	if _, err := loadTrace("", "", 7, 600); err == nil {
		t.Fatal("neither -bench nor -trace must be an error")
	}
	if _, err := loadTrace(filepath.Join(t.TempDir(), "missing.bin"), "", 7, 600); err == nil {
		t.Fatal("missing trace file must be an error")
	}
}

// TestBuildModelAndReplay drives the binary's whole serving lifecycle
// in-process: train + save weights (the `voyager -save` side), reload
// them through buildModel, serve the model with a distilled fast tier,
// and replay both tiers through runReplay — the README worked example
// minus the TCP flags.
func TestBuildModelAndReplay(t *testing.T) {
	tr, err := loadTrace("", "cc", 7, 600)
	if err != nil {
		t.Fatalf("loadTrace: %v", err)
	}
	cfg := testConfig(len(tr.Accesses))

	// Train-in-process path (no weights file).
	trained, err := buildModel(tr, cfg, "")
	if err != nil {
		t.Fatalf("buildModel (train): %v", err)
	}

	// Weights path: save from a training run, reload into a fresh model.
	p, err := voyager.Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	wpath := filepath.Join(t.TempDir(), "m.w")
	wf, err := os.Create(wpath)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := p.SaveWeights(wf); err != nil {
		t.Fatalf("SaveWeights: %v", err)
	}
	if err := wf.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	loaded, err := buildModel(tr, cfg, wpath)
	if err != nil {
		t.Fatalf("buildModel (weights): %v", err)
	}
	if _, err := buildModel(tr, cfg, filepath.Join(t.TempDir(), "missing.w")); err == nil {
		t.Fatal("missing weights file must be an error")
	}
	_ = trained

	// Serve the reloaded model plus a table compiled from the teacher,
	// then replay both tiers through the client-mode entry point.
	tab := distill.Compile(p, 0, p.NumAccesses(), distill.DefaultParams())
	srv, err := serve.New(serve.Config{
		Model:    loaded,
		Table:    tab,
		Degree:   cfg.Degree,
		MaxBatch: 8,
		MaxWait:  100 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()
	addr := srv.Addr().String()

	tpath := filepath.Join(t.TempDir(), "client.json")
	if err := runReplay(replayOptions{addr: addr, streams: 2, perStream: 40, fast: true,
		quality: true, traceOut: tpath}, tr); err != nil {
		t.Fatalf("runReplay (fast, quality, traced): %v", err)
	}
	data, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatalf("client trace not written: %v", err)
	}
	st, err := tracing.ValidateBytes(data)
	if err != nil {
		t.Fatalf("client trace invalid: %v", err)
	}
	if st.AsyncSpans != 2*40 {
		t.Fatalf("client trace has %d rpc spans, want %d", st.AsyncSpans, 2*40)
	}
	if err := runReplay(replayOptions{addr: addr, streams: 2, perStream: 10}, tr); err != nil {
		t.Fatalf("runReplay (model): %v", err)
	}
	if err := runReplay(replayOptions{addr: "127.0.0.1:1", streams: 1, perStream: 1, fast: true}, tr); err == nil {
		t.Fatal("replay against a dead address must be an error")
	}
}

package nn

import (
	"math"

	"voyager/internal/tensor"
	"voyager/internal/tracing"
)

// Adam implements the Adam optimizer (Kingma & Ba) with optional row-sparse
// updates for embedding tables and multiplicative learning-rate decay
// (the paper trains Voyager with Adam, lr 0.001, decay ratio 2).
type Adam struct {
	LR      float32
	Beta1   float32
	Beta2   float32
	Eps     float32
	Clip    float32 // max gradient magnitude per element; 0 disables clipping
	DecayBy float32 // learning-rate decay ratio applied by Decay(); 0 means 2

	// Track is the optional execution-span row for the optimizer: when set,
	// Step records an "adam_step" span on it (nil stays silent).
	Track *tracing.Track

	states map[*Param]*adamState
}

type adamState struct {
	m, v *tensor.Mat
	t    int   // dense step count
	rowT []int // per-row step counts for sparse params
}

// NewAdam returns an Adam optimizer with the paper's defaults: lr as given,
// β1=0.9, β2=0.999, ε=1e-8, gradient clipping at 5, decay ratio 2.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR:      lr,
		Beta1:   0.9,
		Beta2:   0.999,
		Eps:     1e-8,
		Clip:    5,
		DecayBy: 2,
		states:  make(map[*Param]*adamState),
	}
}

func (a *Adam) state(p *Param) *adamState {
	st, ok := a.states[p]
	if !ok {
		st = &adamState{
			m: tensor.NewMat(p.W.Rows, p.W.Cols),
			v: tensor.NewMat(p.W.Rows, p.W.Cols),
		}
		if p.sparse {
			st.rowT = make([]int, p.W.Rows)
		}
		a.states[p] = st
	}
	return st
}

// Step applies one Adam update to every parameter and clears gradients.
func (a *Adam) Step(params []*Param) {
	sp := a.Track.Begin("adam_step")
	defer sp.End()
	for _, p := range params {
		st := a.state(p)
		if p.sparse {
			a.stepSparse(p, st)
		} else {
			a.stepDense(p, st)
		}
		p.ZeroGrad()
	}
}

func (a *Adam) stepDense(p *Param, st *adamState) {
	st.t++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(st.t)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(st.t)))
	a.updateSlice(p.W.Data, p.Grad.Data, st.m.Data, st.v.Data, bc1, bc2)
}

func (a *Adam) stepSparse(p *Param, st *adamState) {
	//lint:ignore maporder per-row Adam state is independent; updates commute across rows
	for r := range p.touched {
		st.rowT[r]++
		t := st.rowT[r]
		bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(t)))
		bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(t)))
		a.updateSlice(p.W.Row(r), p.Grad.Row(r), st.m.Row(r), st.v.Row(r), bc1, bc2)
	}
}

func (a *Adam) updateSlice(w, g, m, v []float32, bc1, bc2 float32) {
	lr := a.LR
	for i := range w {
		gi := g[i]
		if a.Clip > 0 {
			if gi > a.Clip {
				gi = a.Clip
			} else if gi < -a.Clip {
				gi = -a.Clip
			}
		}
		m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
		v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
		mh := m[i] / bc1
		vh := v[i] / bc2
		w[i] -= lr * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
	}
}

// Decay divides the learning rate by the configured decay ratio; the paper
// applies this between training epochs.
func (a *Adam) Decay() {
	d := a.DecayBy
	if d == 0 {
		d = 2
	}
	a.LR /= d
}

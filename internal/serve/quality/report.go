package quality

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// TierReport is one tier's scoreboard slice: cumulative totals since boot
// next to the rolling-window view. Accuracy is useful/predictions over
// *settled* predictions (useful+late+miss), so in-flight entries don't
// read as failures.
type TierReport struct {
	Predictions uint64 `json:"predictions"`
	Useful      uint64 `json:"useful"`
	Late        uint64 `json:"late"`
	Miss        uint64 `json:"miss"`
	Accuracy    JSONed `json:"accuracy"`

	WindowPredictions uint64 `json:"window_predictions"`
	WindowUseful      uint64 `json:"window_useful"`
	WindowLate        uint64 `json:"window_late"`
	WindowMiss        uint64 `json:"window_miss"`
	WindowAccuracy    JSONed `json:"window_accuracy"`
}

// ShadowReport summarizes fast-vs-model top-1 agreement from shadow
// sampling.
type ShadowReport struct {
	Samples         uint64 `json:"samples"`
	Agree           uint64 `json:"agree"`
	Agreement       JSONed `json:"agreement"`
	WindowSamples   uint64 `json:"window_samples"`
	WindowAgree     uint64 `json:"window_agree"`
	WindowAgreement JSONed `json:"window_agreement"`
	Dropped         uint64 `json:"dropped"`
}

// Report is the full /quality payload.
type Report struct {
	Model  TierReport   `json:"model"`
	Fast   TierReport   `json:"fast"`
	Global TierReport   `json:"global"`
	Shadow ShadowReport `json:"shadow"`

	Unresolved uint64 `json:"unresolved"`
	Overflow   uint64 `json:"overflow"`

	// HitDistanceP50/P99: access-distance quantiles of useful+late matches
	// over the rolling window (log2-bucket representatives).
	HitDistanceP50 JSONed `json:"hit_distance_p50"`
	HitDistanceP99 JSONed `json:"hit_distance_p99"`
}

// JSONed is a float64 that marshals NaN as the quoted string "NaN" (ratio
// fields are NaN when their denominator is zero — no traffic yet).
type JSONed float64

// MarshalJSON implements json.Marshaler.
func (f JSONed) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if v != v {
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

func ratio(num, den uint64) JSONed {
	if den == 0 {
		return JSONed(nanFloat())
	}
	return JSONed(float64(num) / float64(den))
}

func nanFloat() float64 {
	z := 0.0
	return z / z
}

func (t *Tracker) tierReport(ts tierStats) TierReport {
	r := TierReport{
		Predictions:       ts.predictions.Total(),
		Useful:            ts.useful.Total(),
		Late:              ts.late.Total(),
		Miss:              ts.miss.Total(),
		WindowPredictions: ts.predictions.WindowTotal(),
		WindowUseful:      ts.useful.WindowTotal(),
		WindowLate:        ts.late.WindowTotal(),
		WindowMiss:        ts.miss.WindowTotal(),
	}
	r.Accuracy = ratio(r.Useful, r.Useful+r.Late+r.Miss)
	r.WindowAccuracy = ratio(r.WindowUseful, r.WindowUseful+r.WindowLate+r.WindowMiss)
	return r
}

func addTier(a, b TierReport) TierReport {
	s := TierReport{
		Predictions:       a.Predictions + b.Predictions,
		Useful:            a.Useful + b.Useful,
		Late:              a.Late + b.Late,
		Miss:              a.Miss + b.Miss,
		WindowPredictions: a.WindowPredictions + b.WindowPredictions,
		WindowUseful:      a.WindowUseful + b.WindowUseful,
		WindowLate:        a.WindowLate + b.WindowLate,
		WindowMiss:        a.WindowMiss + b.WindowMiss,
	}
	s.Accuracy = ratio(s.Useful, s.Useful+s.Late+s.Miss)
	s.WindowAccuracy = ratio(s.WindowUseful, s.WindowUseful+s.WindowLate+s.WindowMiss)
	return s
}

// Report assembles the current scoreboard (zero Report on a nil tracker).
// Ratios across window counters read each counter atomically; under live
// traffic the numerator and denominator may straddle an increment — the
// usual telemetry-read caveat, exact once quiesced.
func (t *Tracker) Report() Report {
	if t == nil {
		return Report{}
	}
	r := Report{
		Model:      t.tierReport(t.tiers[TierModel]),
		Fast:       t.tierReport(t.tiers[TierFast]),
		Unresolved: t.unresolved.Value(),
		Overflow:   t.overflow.Value(),
	}
	r.Global = addTier(r.Model, r.Fast)
	r.Shadow = ShadowReport{
		Samples:       t.shadowSamples.Total(),
		Agree:         t.shadowAgree.Total(),
		WindowSamples: t.shadowSamples.WindowTotal(),
		WindowAgree:   t.shadowAgree.WindowTotal(),
		Dropped:       t.shadowDropped.Value(),
	}
	r.Shadow.Agreement = ratio(r.Shadow.Agree, r.Shadow.Samples)
	r.Shadow.WindowAgreement = ratio(r.Shadow.WindowAgree, r.Shadow.WindowSamples)
	win := t.hitDist.Window()
	r.HitDistanceP50 = JSONed(win.Quantile(0.5))
	r.HitDistanceP99 = JSONed(win.Quantile(0.99))
	return r
}

// Handler serves the scoreboard as JSON — the /quality endpoint on the
// metrics HTTP server. Usable on a nil tracker (responds 404).
func (t *Tracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "quality telemetry disabled (run with -quality)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Report()) // best-effort response: the client may be gone
	})
}

// String renders the scoreboard as the -quality replay console output.
func (r Report) String() string {
	line := func(name string, t TierReport) string {
		return fmt.Sprintf("  %-6s preds=%d useful=%d late=%d miss=%d acc=%.3f | window: preds=%d acc=%.3f",
			name, t.Predictions, t.Useful, t.Late, t.Miss, float64(t.Accuracy),
			t.WindowPredictions, float64(t.WindowAccuracy))
	}
	s := "quality scoreboard:\n" +
		line("model", r.Model) + "\n" +
		line("fast", r.Fast) + "\n" +
		line("global", r.Global) + "\n"
	s += fmt.Sprintf("  shadow samples=%d agree=%d agreement=%.3f (window %.3f) dropped=%d\n",
		r.Shadow.Samples, r.Shadow.Agree, float64(r.Shadow.Agreement),
		float64(r.Shadow.WindowAgreement), r.Shadow.Dropped)
	s += fmt.Sprintf("  unresolved=%d overflow=%d hit_distance p50=%.1f p99=%.1f",
		r.Unresolved, r.Overflow, float64(r.HitDistanceP50), float64(r.HitDistanceP99))
	return s
}

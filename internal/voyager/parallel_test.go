package voyager

import (
	"math"
	"testing"

	"voyager/internal/trace"
)

// Training must be reproducible at a fixed seed and worker count: the
// ordered gradient reduce, deterministic sharding and per-worker RNG
// streams leave no scheduling dependence in the result.
func TestTrainDeterministicAtFixedWorkerCount(t *testing.T) {
	cycle := []uint64{0x10<<6 | 5, 0x22<<6 | 61, 0x15<<6 | 0, 0x9<<6 | 33}
	tr := cyclicTrace(cycle, 300)
	for _, workers := range []int{1, 4} {
		cfg := FastConfig()
		cfg.EpochAccesses = 400
		cfg.Workers = workers
		first, err := Train(tr, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		second, err := Train(tr, cfg)
		if err != nil {
			t.Fatalf("workers=%d rerun: %v", workers, err)
		}
		a, b := first.EpochLosses(), second.EpochLosses()
		if len(a) != len(b) || len(a) == 0 {
			t.Fatalf("workers=%d: epoch count %d vs %d", workers, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: epoch %d loss %v vs %v (must be identical)",
					workers, i, a[i], b[i])
			}
		}
	}
}

// With randomness disabled (no dropout, full-vocabulary page head) the
// sharded path computes the same mathematical gradient as the serial path;
// only float32 reassociation across shard boundaries may differ.
func TestParallelGradientsMatchSerial(t *testing.T) {
	cycle := []uint64{100, 200, 300, 400, 500, 600, 700, 800}
	tr := cyclicTrace(cycle, 100)
	base := FastConfig()
	base.EpochAccesses = 400
	base.DropoutKeep = 1
	base.NegSamples = 0

	harness := func(workers int) *BenchHarness {
		cfg := base
		cfg.Workers = workers
		h, err := NewBenchHarness(tr, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return h
	}
	hs := harness(1)
	hp := harness(3)

	lossS := hs.p.Model.TrainBatch(hs.seqs, hs.pagePos, hs.offPos, hs.pageW, hs.offW)
	lossP := hp.p.Model.TrainBatch(hp.seqs, hp.pagePos, hp.offPos, hp.pageW, hp.offW)
	if math.Abs(float64(lossS-lossP)) > 1e-4*(1+math.Abs(float64(lossS))) {
		t.Fatalf("loss serial %v vs parallel %v", lossS, lossP)
	}

	sp := hs.p.Model.Params().All()
	pp := hp.p.Model.Params().All()
	for i := range sp {
		sg, pg := sp[i].Grad.Data, pp[i].Grad.Data
		var maxAbs, maxDiff float64
		for j := range sg {
			d := math.Abs(float64(sg[j] - pg[j]))
			if d > maxDiff {
				maxDiff = d
			}
			if a := math.Abs(float64(sg[j])); a > maxAbs {
				maxAbs = a
			}
		}
		if maxDiff > 1e-4*(1+maxAbs) {
			t.Fatalf("param %s: grad diff %v (max |g| %v)", sp[i].Name, maxDiff, maxAbs)
		}
	}
}

// Inference has no randomness and every op is row-local, so sharded
// PredictBatch must return bit-identical candidates to the serial path.
func TestPredictBatchParallelMatchesSerial(t *testing.T) {
	cycle := []uint64{10, 20, 30, 40, 50, 60}
	tr := cyclicTrace(cycle, 150)
	base := FastConfig()
	base.EpochAccesses = 400
	base.Degree = 4

	run := func(workers int) [][]Candidate {
		cfg := base
		cfg.Workers = workers
		// No training first: weights are identical across harnesses (same
		// seed), so sharded inference must reproduce serial bit-for-bit.
		h, err := NewBenchHarness(tr, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return h.p.Model.PredictBatch(h.seqs, cfg.Degree)
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("row count %d vs %d", len(serial), len(parallel))
	}
	for r := range serial {
		if len(serial[r]) != len(parallel[r]) {
			t.Fatalf("row %d: %d vs %d candidates", r, len(serial[r]), len(parallel[r]))
		}
		for k := range serial[r] {
			if serial[r][k] != parallel[r][k] {
				t.Fatalf("row %d cand %d: %+v vs %+v", r, k, serial[r][k], parallel[r][k])
			}
		}
	}
}

// WorkersAuto and explicit widths must validate; nonsense must not.
func TestWorkersValidation(t *testing.T) {
	cfg := FastConfig()
	cfg.Workers = WorkersAuto
	if err := cfg.Validate(); err != nil {
		t.Fatalf("WorkersAuto rejected: %v", err)
	}
	cfg.Workers = 8
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Workers=8 rejected: %v", err)
	}
	cfg.Workers = -2
	if cfg.Validate() == nil {
		t.Fatalf("Workers=-2 accepted")
	}
}

// The parallel path must also learn: end-to-end online training at 4
// workers on a deterministic cycle should reach the same ≥0.9 accuracy bar
// as the serial test in voyager_test.go.
func TestLearnsCycleWithParallelWorkers(t *testing.T) {
	cycle := []uint64{
		0x10<<6 | 5, 0x22<<6 | 61, 0x15<<6 | 0, 0x9<<6 | 33,
		0x30<<6 | 7, 0x11<<6 | 12, 0x28<<6 | 50, 0x3<<6 | 18,
	}
	tr := cyclicTrace(cycle, 500)
	cfg := FastConfig()
	cfg.EpochAccesses = 1000
	cfg.Workers = 4
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	correct, total := 0, 0
	for i := 2 * cfg.EpochAccesses; i+1 < tr.Len(); i++ {
		preds := p.Predictions()[i]
		total++
		if len(preds) > 0 && trace.Line(preds[0]) == trace.Line(tr.Accesses[i+1].Addr) {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("parallel cycle accuracy %.2f, want ≥0.9 (losses: %v)", acc, p.EpochLosses())
	}
}

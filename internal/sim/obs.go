package sim

import "voyager/internal/metrics"

// simObs bundles the simulator's instruments. A machine starts with an
// inert bundle (nil instruments, every call a no-op); Instrument swaps in a
// live one. The simulator is single-threaded and deterministic, and the
// instruments only count events the run produces anyway, so results are
// identical with metrics on or off.
type simObs struct {
	l1Hits, l1Misses   *metrics.Counter // sim_l1_{hits,misses}_total
	l2Hits, l2Misses   *metrics.Counter // sim_l2_{hits,misses}_total
	llcHits, llcMisses *metrics.Counter // sim_llc_{hits,misses}_total

	prefIssued *metrics.Counter // sim_prefetches_issued_total
	prefUseful *metrics.Counter // sim_prefetches_useful_total

	dramRequests  *metrics.Counter   // sim_dram_requests_total
	dramRowHits   *metrics.Counter   // sim_dram_row_hits_total
	dramRowMisses *metrics.Counter   // sim_dram_row_misses_total
	dramLatency   *metrics.Histogram // sim_dram_latency_cycles

	ipc *metrics.Gauge // sim_ipc: last completed run

	// Last flushed DRAM totals, so repeated Runs on one machine export
	// monotone counter deltas.
	flushedReqs, flushedRowHits, flushedRowMisses uint64
}

func newSimObs(reg *metrics.Registry) *simObs {
	return &simObs{
		l1Hits:        reg.Counter("sim_l1_hits_total"),
		l1Misses:      reg.Counter("sim_l1_misses_total"),
		l2Hits:        reg.Counter("sim_l2_hits_total"),
		l2Misses:      reg.Counter("sim_l2_misses_total"),
		llcHits:       reg.Counter("sim_llc_hits_total"),
		llcMisses:     reg.Counter("sim_llc_misses_total"),
		prefIssued:    reg.Counter("sim_prefetches_issued_total"),
		prefUseful:    reg.Counter("sim_prefetches_useful_total"),
		dramRequests:  reg.Counter("sim_dram_requests_total"),
		dramRowHits:   reg.Counter("sim_dram_row_hits_total"),
		dramRowMisses: reg.Counter("sim_dram_row_misses_total"),
		dramLatency:   reg.Histogram("sim_dram_latency_cycles"),
		ipc:           reg.Gauge("sim_ipc"),
	}
}

// Instrument attaches the machine to a metrics registry. Call before Run;
// a nil registry restores the inert bundle.
func (m *Machine) Instrument(reg *metrics.Registry) {
	m.obs = newSimObs(reg)
}

// flushDRAM exports the DRAM model's cumulative totals as counter deltas
// and records the run's IPC; called at the end of each Run.
func (o *simObs) flushDRAM(d *DRAM, ipc float64) {
	o.dramRequests.Add(d.Requests - o.flushedReqs)
	o.dramRowHits.Add(d.RowHits - o.flushedRowHits)
	o.dramRowMisses.Add(d.RowMisses - o.flushedRowMisses)
	o.flushedReqs, o.flushedRowHits, o.flushedRowMisses = d.Requests, d.RowHits, d.RowMisses
	o.ipc.Set(ipc)
}

// Package waitleakpkg exercises the waitleak analyzer: WaitGroup path
// imbalance, unstoppable constructor goroutines, and unstopped tickers.
package waitleakpkg

import (
	"sync"
	"time"
)

func work(i int) {}

// --- waitgroup balance: firing ---

func missedDoneOnBranch(skip bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	if !skip {
		go func() { defer wg.Done(); work(0) }()
	}
	wg.Wait() // want "different Add/Done balances depending on path"
}

func addWithoutDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Wait() // want "1 Add\\(s\\) unmatched by Done on this path"
}

func doubleDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); defer wg.Done(); work(0) }()
	wg.Wait() // want "more Done than Add before this Wait"
}

// --- waitgroup balance: clean ---

func balancedLoop(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); work(i) }(i)
	}
	wg.Wait()
}

func balancedConditional(fast bool) {
	var wg sync.WaitGroup
	if fast {
		wg.Add(1)
		go func() { defer wg.Done(); work(0) }()
	}
	wg.Wait()
}

type task struct {
	wg *sync.WaitGroup
}

var taskQueue = make(chan task, 8)

func escapesViaStruct() {
	var wg sync.WaitGroup
	wg.Add(1)
	taskQueue <- task{wg: &wg} // other code balances it: untracked
	wg.Wait()
}

func nonConstAdd(items []int) {
	var wg sync.WaitGroup
	wg.Add(len(items)) // data-dependent: untracked
	for _, i := range items {
		go func(i int) { defer wg.Done(); work(i) }(i)
	}
	wg.Wait()
}

func capturedByPlainClosure() func() {
	var wg sync.WaitGroup
	wg.Add(1)
	return func() { wg.Wait() } // schedule unknown: untracked
}

func suppressedImbalance() {
	var wg sync.WaitGroup
	wg.Add(1)
	//lint:ignore waitleak the Done arrives via a registered callback
	wg.Wait()
}

// --- constructor goroutines ---

type poller struct{ n int }

func NewPoller() *poller {
	p := &poller{}
	go func() { // want "goroutine launched in constructor NewPoller loops forever without receiving"
		for {
			p.n++
		}
	}()
	return p
}

type flusher struct {
	done chan struct{}
}

func NewFlusher(interval time.Duration) *flusher {
	f := &flusher{done: make(chan struct{})}
	go func(done chan struct{}) {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				work(0)
			case <-done:
				return
			}
		}
	}(f.done)
	return f
}

type warmed struct{ ready bool }

// NewWarmed's goroutine terminates on its own: bounded work needs no
// shutdown signal.
func NewWarmed() *warmed {
	w := &warmed{}
	go func() {
		work(0)
		w.ready = true
	}()
	return w
}

// pollLoop is not a constructor; long-lived loops in explicitly-started
// helpers are the caller's lifecycle problem.
func pollLoop(p *poller) {
	go func() {
		for {
			p.n++
		}
	}()
}

// --- tickers ---

func tickerNeverStopped(n int) {
	t := time.NewTicker(time.Second) // want "time.Ticker created here is never stopped"
	for i := 0; i < n; i++ {
		<-t.C
		work(i)
	}
}

func tickerStoppedOnOnePath(quick bool) {
	t := time.NewTicker(time.Second) // want "time.Ticker created here is never stopped"
	if quick {
		t.Stop()
		return
	}
	<-t.C
	work(0)
}

func tickerDeferStop() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

func tickerLinearStop() {
	t := time.NewTicker(time.Second)
	<-t.C
	t.Stop()
}

func tickerEscapes() *time.Ticker {
	t := time.NewTicker(time.Second)
	return t // caller owns it now
}

func tickerSuppressed() {
	//lint:ignore waitleak process-lifetime ticker, stopped at exit by the OS
	t := time.NewTicker(time.Second)
	<-t.C
}

package workloads

import (
	"voyager/internal/graphs"
	"voyager/internal/memsim"
	"voyager/internal/trace"
)

// The GAP workloads (Beamer et al.) run graph kernels over Kronecker
// graphs. The paper uses 2^17-node inputs; we default to 2^11·Scale nodes
// so traces stay CPU-friendly while keeping the skewed degree distribution
// that produces the irregular neighbor-indexed loads the paper analyzes
// (Figures 13–14).

const (
	gapScaleBase  = 7
	gapEdgeFactor = 8
)

func gapGraph(cfg Config) *graphs.CSR {
	rng := cfg.rng()
	scale := gapScaleBase
	for s := cfg.scale(); s > 1; s /= 2 {
		scale++
	}
	return graphs.Kronecker(scale, gapEdgeFactor, rng)
}

// BFS generates the GAP breadth-first-search trace: repeated BFS traversals
// from multiple sources over a Kronecker graph. Loads cover the CSR offsets
// array (streaming), neighbor lists (streaming within a node), and the
// parent array indexed by neighbor id (irregular, data-dependent).
func BFS(cfg Config) *trace.Trace {
	g := gapGraph(cfg)
	rng := cfg.rng()
	rec := memsim.NewRecorder("bfs")
	heap := memsim.NewHeap(0x10_0000)
	offsets := heap.NewArray(g.N+1, 4)
	neigh := heap.NewArray(g.NumEdges(), 32)
	parent := heap.NewArray(g.N, 64)

	pcs := memsim.NewPCs(0x400000)
	outer := pcs.Block()
	pcOffsets := outer.Site()
	inner := pcs.Block()
	pcNeigh := inner.Site()
	pcParent := inner.Site()

	// GAP runs 64 BFS trials; we run a handful from reused sources so the
	// frontier-dependent access sequences repeat (temporal correlation).
	sources := make([]int, 3)
	for i := range sources {
		sources[i] = rng.Intn(g.N)
	}
	par := make([]int32, g.N)
	queue := make([]int32, 0, g.N)
	for trial := 0; trial < 8; trial++ {
		src := sources[trial%len(sources)]
		for i := range par {
			par[i] = -1
		}
		rec.Work(8)
		par[src] = int32(src)
		queue = append(queue[:0], int32(src))
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			rec.Load(pcOffsets, offsets.Addr(u))
			rec.Work(2)
			edgeBase := int(g.Offsets[u])
			for ei, v := range g.Neigh(u) {
				rec.Load(pcNeigh, neigh.Addr(edgeBase+ei))
				rec.Load(pcParent, parent.Addr(int(v)))
				rec.Work(3)
				if par[v] == -1 {
					par[v] = int32(u)
					queue = append(queue, v)
				}
			}
		}
		if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
			break
		}
	}
	return cfg.finish(rec.Trace)
}

// CC generates the GAP connected-components trace (Shiloach–Vishkin): each
// iteration sweeps every edge, loading comp[u] and comp[v]; the edge order
// is identical across iterations, so successive sweeps produce strongly
// temporally correlated streams — the pattern temporal prefetchers feed on.
func CC(cfg Config) *trace.Trace {
	g := gapGraph(cfg)
	rec := memsim.NewRecorder("cc")
	heap := memsim.NewHeap(0x10_0000)
	neigh := heap.NewArray(g.NumEdges(), 32)
	comp := heap.NewArray(g.N, 64)

	pcs := memsim.NewPCs(0x410000)
	sweep := pcs.Block()
	pcNeigh := sweep.Site()
	pcCompU := sweep.Site()
	pcCompV := sweep.Site()

	c := make([]int32, g.N)
	for i := range c {
		c[i] = int32(i)
	}
	for iter := 0; iter < 12; iter++ {
		changed := false
		e := 0
		for u := 0; u < g.N; u++ {
			for _, v := range g.Neigh(u) {
				rec.Load(pcNeigh, neigh.Addr(e))
				rec.Load(pcCompU, comp.Addr(u))
				rec.Load(pcCompV, comp.Addr(int(v)))
				rec.Work(2)
				if c[v] < c[u] {
					c[u] = c[v]
					changed = true
				}
				e++
			}
		}
		// Pointer-jumping compress pass: comp[comp[i]] chains.
		for i := 0; i < g.N; i++ {
			rec.Load(pcCompU, comp.Addr(i))
			rec.Load(pcCompV, comp.Addr(int(c[i])))
			rec.Work(1)
			c[i] = c[c[i]]
		}
		if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
			break
		}
		if !changed {
			break
		}
	}
	return cfg.finish(rec.Trace)
}

// PageRank generates the GAP pr trace using the pull direction the paper's
// Figure 13 shows: line 44's easy streaming load of outgoing_contrib and
// line 48's hard parent-dependent load of outgoing_contrib[v] for every
// in-neighbor v of every node u. The next v depends on (u, position), so
// single-address tables mispredict nodes with many parents while
// history-based models can learn the full sequence.
func PageRank(cfg Config) *trace.Trace {
	g := gapGraph(cfg).Transpose() // pull: iterate in-neighbors
	rec := memsim.NewRecorder("pr")
	heap := memsim.NewHeap(0x10_0000)
	contrib := heap.NewArray(g.N, 64) // outgoing_contrib (rank record)
	scores := heap.NewArray(g.N, 64)  // scores
	outDeg := heap.NewArray(g.N, 16)  // g.out_degree
	neighArr := heap.NewArray(g.NumEdges(), 32)

	pcs := memsim.NewPCs(0x420000)
	init := pcs.Block()
	pcScores := init.Site() // line 44: scores[n]
	pcOutDeg := init.Site() // line 44: g.out_degree(n)
	gather := pcs.Block()
	pcNeigh := gather.Site()   // line 47: neighbor list walk
	pcContrib := gather.Site() // line 48: outgoing_contrib[v]

	for iter := 0; iter < 10; iter++ {
		// Line 43-44: streaming pass.
		for n := 0; n < g.N; n++ {
			rec.Load(pcScores, scores.Addr(n))
			rec.Load(pcOutDeg, outDeg.Addr(n))
			rec.Work(2)
		}
		// Line 45-48: gather pass with parent-dependent loads.
		e := 0
		for u := 0; u < g.N; u++ {
			for _, v := range g.Neigh(u) {
				rec.Load(pcNeigh, neighArr.Addr(e))
				rec.Load(pcContrib, contrib.Addr(int(v)))
				rec.Work(3)
				e++
			}
		}
		if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
			break
		}
	}
	return cfg.finish(rec.Trace)
}

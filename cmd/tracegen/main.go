// Command tracegen generates and inspects benchmark memory-access traces.
//
// Usage:
//
//	go run ./cmd/tracegen -bench pr -n 100000 -o pr.vygr
//	go run ./cmd/tracegen -bench all -stats
//	go run ./cmd/tracegen -bench mcf -n 5000 -text -o mcf.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"voyager/internal/trace"
	"voyager/internal/workloads"
)

func main() {
	var (
		bench = flag.String("bench", "all", "benchmark name or 'all'")
		n     = flag.Int("n", 50_000, "max accesses")
		seed  = flag.Int64("seed", 42, "randomness seed")
		scale = flag.Int("scale", 1, "footprint scale factor")
		out   = flag.String("o", "", "output file (default: stats only)")
		text  = flag.Bool("text", false, "write the text format instead of binary")
		top   = flag.Int("top", 0, "also print the top-N most frequent PCs")
	)
	flag.Parse()

	cfg := workloads.Config{Seed: *seed, Scale: *scale, MaxAccesses: *n}
	names := []string{*bench}
	if *bench == "all" {
		names = workloads.Names()
		if *out != "" {
			fmt.Fprintln(os.Stderr, "tracegen: -o requires a single benchmark")
			os.Exit(2)
		}
	}
	for _, name := range names {
		tr, err := workloads.Generate(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Println(trace.ComputeStats(tr))
		if *top > 0 {
			for _, pc := range trace.TopPCs(tr, *top) {
				fmt.Printf("  pc %#x\n", pc)
			}
		}
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			write := trace.Write
			if *text {
				write = trace.WriteText
			}
			if err := write(f, tr); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
	}
}

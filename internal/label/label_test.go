package label

import (
	"testing"

	"voyager/internal/trace"
)

// buildTrace constructs accesses with explicit PCs and line numbers.
func buildTrace(recs ...[2]uint64) *trace.Trace {
	tr := &trace.Trace{Name: "t"}
	for i, r := range recs {
		tr.Append(r[0], r[1]<<trace.LineBits, uint64(i+1))
	}
	return tr
}

func TestGlobalLabels(t *testing.T) {
	tr := buildTrace([2]uint64{1, 10}, [2]uint64{1, 20}, [2]uint64{1, 30})
	ls := Compute(tr)
	if l, ok := ls[0].Get(Global); !ok || l != 20 {
		t.Fatalf("global[0] = %d,%v", l, ok)
	}
	if _, ok := ls[2].Get(Global); ok {
		t.Fatalf("last access must have no global label")
	}
}

func TestPCLabels(t *testing.T) {
	// PC 1: lines 10, 30; PC 2: lines 20, 40.
	tr := buildTrace([2]uint64{1, 10}, [2]uint64{2, 20}, [2]uint64{1, 30}, [2]uint64{2, 40})
	ls := Compute(tr)
	if l, ok := ls[0].Get(PC); !ok || l != 30 {
		t.Fatalf("pc[0] = %d,%v want 30", l, ok)
	}
	if l, ok := ls[1].Get(PC); !ok || l != 40 {
		t.Fatalf("pc[1] = %d,%v want 40", l, ok)
	}
	if _, ok := ls[2].Get(PC); ok {
		t.Fatalf("pc[2] must be absent (no later access by PC 1)")
	}
}

func TestBasicBlockLabels(t *testing.T) {
	// PCs 0x100 and 0x104 share a block (>>6); PC 0x400 does not.
	tr := buildTrace(
		[2]uint64{0x100, 10},
		[2]uint64{0x400, 20},
		[2]uint64{0x104, 30},
	)
	ls := Compute(tr)
	if l, ok := ls[0].Get(BasicBlock); !ok || l != 30 {
		t.Fatalf("block[0] = %d,%v want 30 (same block as 0x104)", l, ok)
	}
}

func TestSpatialLabels(t *testing.T) {
	// From line 1000: next access at 5000 is out of range; 1100 is within
	// 256 lines.
	tr := buildTrace([2]uint64{1, 1000}, [2]uint64{1, 5000}, [2]uint64{1, 1100})
	ls := Compute(tr)
	if l, ok := ls[0].Get(Spatial); !ok || l != 1100 {
		t.Fatalf("spatial[0] = %d,%v want 1100", l, ok)
	}
	// From 5000: 1100 is out of range → no spatial label.
	if _, ok := ls[1].Get(Spatial); ok {
		t.Fatalf("spatial[1] should be absent")
	}
}

func TestCoOccurrenceLabels(t *testing.T) {
	// In the window after index 0, line 77 appears 3 times, others once.
	tr := buildTrace(
		[2]uint64{1, 10},
		[2]uint64{1, 20}, [2]uint64{1, 77}, [2]uint64{1, 30},
		[2]uint64{1, 77}, [2]uint64{1, 40}, [2]uint64{1, 77},
	)
	ls := Compute(tr)
	if l, ok := ls[0].Get(CoOccurrence); !ok || l != 77 {
		t.Fatalf("cooc[0] = %d,%v want 77", l, ok)
	}
}

func TestCoOccurrenceTieBreaksEarliest(t *testing.T) {
	tr := buildTrace([2]uint64{1, 10}, [2]uint64{1, 20}, [2]uint64{1, 30})
	ls := Compute(tr)
	if l, ok := ls[0].Get(CoOccurrence); !ok || l != 20 {
		t.Fatalf("cooc tie = %d,%v want earliest (20)", l, ok)
	}
}

func TestDistinct(t *testing.T) {
	var l Labels
	l.Set(Global, 100)
	l.Set(PC, 100) // duplicate of global
	l.Set(Spatial, 200)
	got := l.Distinct(AllSchemes())
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Fatalf("Distinct = %v", got)
	}
	// Restricted scheme set.
	got = l.Distinct([]Scheme{Spatial})
	if len(got) != 1 || got[0] != 200 {
		t.Fatalf("restricted Distinct = %v", got)
	}
}

func TestSchemeStrings(t *testing.T) {
	names := map[Scheme]string{
		Global: "global", PC: "pc", BasicBlock: "basic-block",
		Spatial: "spatial", CoOccurrence: "co-occurrence",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%v != %s", s, want)
		}
	}
	if Scheme(99).String() != "unknown" {
		t.Fatalf("unknown scheme name")
	}
	if len(AllSchemes()) != int(NumSchemes) {
		t.Fatalf("AllSchemes size")
	}
}

// The soplex phenomenon (paper Figure 16): vec is accessed by two PCs after
// upd, so PC labels are unreliable but co-occurrence finds it.
func TestCoOccurrenceBeatsPCOnBranchSharedLoads(t *testing.T) {
	// Stream: upd(PC9) → vecA(PC10) OR vecB(PC11), alternating branch,
	// always loading the same vec line after the same upd line.
	var recs [][2]uint64
	for i := 0; i < 20; i++ {
		updLine := uint64(1000 + i%4)
		vecLine := uint64(5000 + i%4*300) // out of spatial range of upd
		recs = append(recs, [2]uint64{9, updLine})
		if i%2 == 0 {
			recs = append(recs, [2]uint64{0x10 << 6, vecLine}) // distinct blocks
		} else {
			recs = append(recs, [2]uint64{0x20 << 6, vecLine})
		}
	}
	tr := buildTrace(recs...)
	ls := Compute(tr)
	// At each upd access, co-occurrence label must be the vec line.
	for i := 0; i+1 < tr.Len()-CoWindow; i += 2 {
		want := trace.Line(tr.Accesses[i+1].Addr)
		if l, ok := ls[i].Get(CoOccurrence); !ok || l != want {
			// Co-occurrence picks the mode; with repeated pairs the vec
			// line dominates the window only when it repeats — accept
			// either vec or upd lines, but vec must appear sometimes.
			continue
		}
		return // found at least one upd→vec co-occurrence label
	}
	t.Fatalf("co-occurrence never labeled vec after upd")
}

func BenchmarkComputeLabels(b *testing.B) {
	var recs [][2]uint64
	for i := 0; i < 20000; i++ {
		recs = append(recs, [2]uint64{uint64(i % 37), uint64((i * 7919) % 5000)})
	}
	tr := buildTrace(recs...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(tr)
	}
}

// Package sharedrandpkg exercises the sharedrand analyzer.
package sharedrandpkg

import (
	"math/rand"

	"voyager/internal/tensor"
)

var globalRNG = rand.New(rand.NewSource(1)) // want "package-level \\*rand.Rand globalRNG"

type model struct {
	rng *rand.Rand
}

func goCapture(rng *rand.Rand, out []float64) {
	done := make(chan struct{})
	go func() {
		out[0] = rng.Float64() // want "\\*rand.Rand variable rng captured by closure launched via go statement"
		close(done)
	}()
	<-done
}

func goFieldCapture(m *model, out []float64) {
	done := make(chan struct{})
	go func() {
		out[0] = m.rng.Float64() // want "\\*rand.Rand field rng captured by closure launched via go statement"
		close(done)
	}()
	<-done
}

func poolCapture(rng *rand.Rand, out []float64) {
	tensor.RunTasks(len(out), func(w int) {
		out[w] = rng.Float64() // want "\\*rand.Rand variable rng captured by closure launched via RunTasks"
	})
}

func perWorkerStreams(seed int64, out []float64) {
	tensor.RunTasks(len(out), func(w int) {
		rng := rand.New(rand.NewSource(seed + int64(w))) // local stream: fine
		out[w] = rng.Float64()
	})
}

func suppressedCapture(rng *rand.Rand, out []float64) {
	tensor.RunTasks(1, func(w int) {
		//lint:ignore sharedrand width-1 launch: only one goroutine ever draws
		out[0] = rng.Float64()
	})
}

func serialUse(rng *rand.Rand, out []float64) {
	for i := range out {
		out[i] = rng.Float64() // single goroutine: fine
	}
}

package trace

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// encodeTrace is a fuzz-seed helper: Write t into a byte slice.
func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// FuzzRead feeds arbitrary byte streams to the binary decoder. Read must
// never panic or over-allocate; any stream it accepts must survive a
// re-encode/re-decode round trip unchanged.
func FuzzRead(f *testing.F) {
	t := &testing.T{}
	f.Add(encodeTrace(t, &Trace{Name: "empty"}))
	small := &Trace{Name: "small", Instructions: 40}
	small.Append(0x400000, 0x7fff0040, 10)
	small.Append(0x400004, 0x7fff0080, 20)
	small.Append(0x3ff000, 0x10000000, 40)
	f.Add(encodeTrace(t, small))
	// Deltas that exercise negative varints and 64-bit wraparound.
	wrap := &Trace{Name: "wrap"}
	wrap.Append(^uint64(0), ^uint64(0)-64, 1)
	wrap.Append(1, 64, 2)
	f.Add(encodeTrace(t, wrap))
	// Corrupt seeds: truncated header, huge count, bad magic.
	f.Add(encodeTrace(t, small)[:7])
	f.Add([]byte("VYGR\x01\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Add([]byte("NOPE\x01\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and OOM are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded trace failed: %v", err)
		}
		if tr2.Name != tr.Name || tr2.Instructions != tr.Instructions ||
			len(tr2.Accesses) != len(tr.Accesses) {
			t.Fatalf("round trip mismatch: %+v vs %+v", tr, tr2)
		}
		for i := range tr.Accesses {
			if tr.Accesses[i] != tr2.Accesses[i] {
				t.Fatalf("access %d: %+v vs %+v", i, tr.Accesses[i], tr2.Accesses[i])
			}
		}
	})
}

// A truncated stream whose header claims a huge access count must fail fast
// on the first missing record instead of preallocating the claimed size:
// 2^31 Access records would be 48 GiB up front, while the clamp caps the
// hint at 2^20 records (24 MiB).
func TestReadTruncatedHugeCountFailsFast(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.WriteByte(binaryVersion)
	buf.WriteByte(0) // name length 0
	buf.WriteByte(0) // instructions 0
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 1<<31) // claims 2^31 accesses, then EOF
	buf.Write(tmp[:n])

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	tr, err := Read(bytes.NewReader(buf.Bytes()))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatalf("Read accepted truncated trace: %d accesses", len(tr.Accesses))
	}
	const accessSize = 24 // three uint64 fields
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > (1<<21)*accessSize {
		t.Fatalf("Read allocated %d bytes on a truncated 2^31-count header", alloc)
	}
}

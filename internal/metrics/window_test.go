package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

// windowedRun is the quick-generated shape of a rolling-window workload:
// worker observation streams plus a rotation schedule (rotate after every
// RotateEvery values, ring of Windows slots). Both are clamped to small
// positive values inside the test.
type windowedRun struct {
	Streams workerStreams
	Rotate  uint8
	Windows uint8
}

func (wr windowedRun) shape() (rotateEvery, windows int) {
	rotateEvery = int(wr.Rotate%16) + 1
	windows = int(wr.Windows%6) + 1
	return
}

// TestWindowCounterParallelEqualsSerial: concurrent Adds into a
// WindowCounter between rotations produce bit-identical cumulative and
// per-slot totals to serial recording of the same values — integer addition
// commutes, same as the base Counter contract.
func TestWindowCounterParallelEqualsSerial(t *testing.T) {
	f := func(wr windowedRun) bool {
		_, windows := wr.shape()
		streams := wr.Streams.values()

		serial := NewWindowCounter(windows)
		parallel := NewWindowCounter(windows)
		// Rotate both a few times so the active slot isn't just index 0.
		for i := 0; i < windows/2; i++ {
			serial.Rotate()
			parallel.Rotate()
		}
		var wg sync.WaitGroup
		for _, stream := range streams {
			stream := stream
			for _, v := range stream {
				serial.Add(uint64(math.Float64bits(v)) % 1000)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, v := range stream {
					parallel.Add(uint64(math.Float64bits(v)) % 1000)
				}
			}()
		}
		wg.Wait()
		if serial.Total() != parallel.Total() {
			return false
		}
		sc, pc := serial.WindowCounts(), parallel.WindowCounts()
		for i := range sc {
			if sc[i] != pc[i] {
				return false
			}
		}
		return serial.WindowTotal() == parallel.WindowTotal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowHistogramParallelEqualsSerial: same contract for the histogram
// ring — concurrent Observes between rotations merge to bit-identical
// bucket counts, window view included.
func TestWindowHistogramParallelEqualsSerial(t *testing.T) {
	f := func(wr windowedRun) bool {
		_, windows := wr.shape()
		streams := wr.Streams.values()

		serial := NewWindowHistogram(windows)
		parallel := NewWindowHistogram(windows)
		serial.Rotate()
		parallel.Rotate()
		var wg sync.WaitGroup
		for _, stream := range streams {
			stream := stream
			for _, v := range stream {
				serial.Observe(v)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, v := range stream {
					parallel.Observe(v)
				}
			}()
		}
		wg.Wait()
		return serial.Cumulative().Counts() == parallel.Cumulative().Counts() &&
			serial.Window().Counts() == parallel.Window().Counts()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowRotationDeterminism: the per-slot distribution after any
// sequence of Add/Rotate is a pure function of that sequence — replaying
// the same interleaving of values and rotations into a fresh instrument
// reproduces identical slot contents and window views.
func TestWindowRotationDeterminism(t *testing.T) {
	f := func(wr windowedRun) bool {
		rotateEvery, windows := wr.shape()
		var vals []uint64
		for _, stream := range wr.Streams.values() {
			for _, v := range stream {
				vals = append(vals, uint64(math.Float64bits(v))%100)
			}
		}
		run := func() *WindowCounter {
			w := NewWindowCounter(windows)
			for i, v := range vals {
				w.Add(v)
				if (i+1)%rotateEvery == 0 {
					w.Rotate()
				}
			}
			return w
		}
		a, b := run(), run()
		ac, bc := a.WindowCounts(), b.WindowCounts()
		for i := range ac {
			if ac[i] != bc[i] {
				return false
			}
		}
		return a.Total() == b.Total() && a.WindowTotal() == b.WindowTotal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowCountConservation: across any rotation schedule, the cumulative
// total always equals the sum of everything ever added, and the rolling
// total equals exactly the adds since the (windows)-th most recent rotation
// — rotation drops the oldest slot and nothing else.
func TestWindowCountConservation(t *testing.T) {
	f := func(wr windowedRun) bool {
		rotateEvery, windows := wr.shape()
		var vals []uint64
		for _, stream := range wr.Streams.values() {
			for _, v := range stream {
				vals = append(vals, uint64(math.Float64bits(v))%100)
			}
		}
		w := NewWindowCounter(windows)
		h := NewWindowHistogram(windows)
		var cum uint64
		// perSegment[k] = sum of adds between rotation k and k+1; the live
		// window is the last `windows` segments (the active one included).
		perSegment := []uint64{0}
		segCount := []uint64{0}
		for i, v := range vals {
			w.Add(v)
			h.Observe(float64(v))
			cum += v
			perSegment[len(perSegment)-1] += v
			segCount[len(segCount)-1]++
			if (i+1)%rotateEvery == 0 {
				w.Rotate()
				h.Rotate()
				perSegment = append(perSegment, 0)
				segCount = append(segCount, 0)
			}
		}
		if w.Total() != cum {
			return false
		}
		var wantWin, wantWinN uint64
		lo := len(perSegment) - windows
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < len(perSegment); k++ {
			wantWin += perSegment[k]
			wantWinN += segCount[k]
		}
		return w.WindowTotal() == wantWin &&
			h.Window().Count() == wantWinN &&
			h.Cumulative().Count() == uint64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowNilSafety: nil window instruments are inert end to end, like
// every other instrument in the package.
func TestWindowNilSafety(t *testing.T) {
	var wc *WindowCounter
	wc.Add(1)
	wc.Inc()
	wc.Rotate()
	if wc.Total() != 0 || wc.WindowTotal() != 0 || wc.Windows() != 0 || wc.WindowCounts() != nil {
		t.Fatal("nil WindowCounter not inert")
	}
	var wh *WindowHistogram
	wh.Observe(1)
	wh.Rotate()
	if wh.Cumulative() != nil || wh.Windows() != 0 {
		t.Fatal("nil WindowHistogram not inert")
	}
	if wh.Window().Count() != 0 {
		t.Fatal("nil WindowHistogram window not empty")
	}
	var nilReg *Registry
	if nilReg.WindowCounter("x", 4) != nil || nilReg.WindowHistogram("x", 4) != nil {
		t.Fatal("nil registry handed out non-nil window instruments")
	}
}

// TestWindowSnapshotPoints: window instruments export "<name>" and
// "<name>_window" points, the snapshot stays Validate-clean (strictly
// sorted unique names), and the rolling point reflects rotation while the
// cumulative one keeps counting.
func TestWindowSnapshotPoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_plain") // sorts after the window-derived names
	wc := reg.WindowCounter("quality_useful_total", 2)
	wh := reg.WindowHistogram("quality_hit_distance", 2)
	wc.Add(5)
	wh.Observe(1)
	wc.Rotate()
	wc.Rotate() // the Add(5) segment has left the 2-slot ring
	wc.Add(3)

	snap := reg.snapshotAt(42)
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot with window points not valid: %v", err)
	}
	get := func(name string) uint64 {
		for _, p := range snap.Counters {
			if p.Name == name {
				return p.Value
			}
		}
		t.Fatalf("counter point %q missing", name)
		return 0
	}
	if got := get("quality_useful_total"); got != 8 {
		t.Fatalf("cumulative point = %d, want 8", got)
	}
	if got := get("quality_useful_total_window"); got != 3 {
		t.Fatalf("window point = %d, want 3 (pre-rotation adds retired)", got)
	}
	var histNames []string
	for _, p := range snap.Histograms {
		histNames = append(histNames, p.Name)
	}
	want := []string{"quality_hit_distance", "quality_hit_distance_window"}
	if len(histNames) != 2 || histNames[0] != want[0] || histNames[1] != want[1] {
		t.Fatalf("histogram points = %v, want %v", histNames, want)
	}
	// Same instrument on repeat lookup; ring size fixed at first creation.
	if reg.WindowCounter("quality_useful_total", 99) != wc {
		t.Fatal("WindowCounter lookup did not return the existing instrument")
	}
	if wc.Windows() != 2 || wh.Windows() != 2 {
		t.Fatal("ring size not fixed at creation")
	}
}

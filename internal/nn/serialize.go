package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Weight-file format:
//
//	magic "VNN1" | count u32
//	per param: name (u16 len + bytes) | rows u32 | cols u32 | data f32...
//
// Weights are matched by name on load, so a model rebuilt with the same
// configuration and vocabulary can be restored exactly (the profile-driven
// deployment path of §5.5: train offline, ship the weights).

const weightsMagic = "VNN1"

// WriteTo serializes every parameter's weights (not optimizer state).
func (s *ParamSet) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(data interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		return nil
	}
	if _, err := bw.WriteString(weightsMagic); err != nil {
		return n, err
	}
	if err := write(uint32(len(s.list))); err != nil {
		return n, err
	}
	for _, p := range s.list {
		if len(p.Name) > 1<<16-1 {
			return n, fmt.Errorf("nn: parameter name too long: %q", p.Name)
		}
		if err := write(uint16(len(p.Name))); err != nil {
			return n, err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return n, err
		}
		if err := write(uint32(p.W.Rows)); err != nil {
			return n, err
		}
		if err := write(uint32(p.W.Cols)); err != nil {
			return n, err
		}
		for _, v := range p.W.Data {
			if err := write(math.Float32bits(v)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadFrom restores weights into the set's parameters, matching by name.
// Every parameter in the file must exist in the set with the same shape;
// parameters absent from the file are left untouched.
func (s *ParamSet) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != weightsMagic {
		return 0, fmt.Errorf("nn: bad weights magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return 0, err
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return 0, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return 0, err
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return 0, err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return 0, err
		}
		p := s.ByName(string(name))
		if p == nil {
			return 0, fmt.Errorf("nn: unknown parameter %q in weights file", name)
		}
		if p.W.Rows != int(rows) || p.W.Cols != int(cols) {
			return 0, fmt.Errorf("nn: parameter %q shape %dx%d != file %dx%d",
				name, p.W.Rows, p.W.Cols, rows, cols)
		}
		for j := range p.W.Data {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return 0, fmt.Errorf("nn: parameter %q data: %w", name, err)
			}
			p.W.Data[j] = math.Float32frombits(bits)
		}
	}
	return 0, nil
}

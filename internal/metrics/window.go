// Rolling-window instruments: a fixed ring of the package's deterministic
// counters/log2 histograms, so a serving daemon can answer "how good are we
// *right now*" next to the lifetime totals that mask drift.
//
// The design keeps every determinism property of the base instruments.
// Rotation is caller-driven — the instrument never reads a clock or an RNG;
// the owner decides the window boundary (the quality tracker rotates every
// N scored outcomes, a test rotates wherever it likes), so a replayed run
// rotates at exactly the same points and the window contents are a pure
// function of the recorded sequence. Slots hold only integer state, so the
// rolling view (the exact sum/merge of the last W slots) is associative and
// order-independent: parallel recording between two rotations is bit-
// identical to serial recording of the same values, exactly like Counter
// and Histogram themselves (the window property tests pin this).
//
// Concurrent recording *during* a rotation is safe (everything is atomic or
// under the slot's own lock) but the straddling observation lands in either
// the outgoing or the incoming window — attribution jitter of one event at
// the boundary, never a lost or double count: cumulative totals are exact
// under any interleaving.
package metrics

import "sync/atomic"

// WindowCounter is a Counter plus a fixed ring of per-window slots. Add
// feeds both the cumulative total and the active slot; Rotate retires the
// oldest slot and opens a fresh one. The rolling value is the exact integer
// sum of the ring — the last Windows() rotations' worth of counts.
type WindowCounter struct {
	cum   Counter
	cur   atomic.Uint64 // index of the active slot
	slots []Counter
}

// NewWindowCounter returns a counter with a ring of windows slots
// (minimum 1).
func NewWindowCounter(windows int) *WindowCounter {
	if windows < 1 {
		windows = 1
	}
	return &WindowCounter{slots: make([]Counter, windows)}
}

// Add increments both the cumulative total and the active window (no-op on
// a nil counter).
//
//hot:path
func (w *WindowCounter) Add(n uint64) {
	if w == nil {
		return
	}
	w.cum.v.Add(n)
	w.slots[w.cur.Load()].v.Add(n)
}

// Inc increments by one (no-op on a nil counter).
//
//hot:path
func (w *WindowCounter) Inc() { w.Add(1) }

// Rotate retires the oldest slot and makes it the new active window. The
// zeroing happens before the index is published, so a concurrent Add lands
// in the outgoing window or the (already empty) incoming one — never in a
// half-retired slot. No-op on a nil counter.
func (w *WindowCounter) Rotate() {
	if w == nil {
		return
	}
	next := (w.cur.Load() + 1) % uint64(len(w.slots))
	w.slots[next].v.Store(0)
	w.cur.Store(next)
}

// Total returns the cumulative count since creation (0 on nil).
func (w *WindowCounter) Total() uint64 {
	if w == nil {
		return 0
	}
	return w.cum.Value()
}

// WindowTotal returns the exact sum over the ring — the rolling view (0 on
// nil). Call it from a quiesced or single-writer context for an exact
// boundary; under concurrent recording it is a consistent-enough telemetry
// read (each slot is read atomically).
func (w *WindowCounter) WindowTotal() uint64 {
	if w == nil {
		return 0
	}
	var s uint64
	for i := range w.slots {
		s += w.slots[i].Value()
	}
	return s
}

// Windows returns the ring size (0 on nil).
func (w *WindowCounter) Windows() int {
	if w == nil {
		return 0
	}
	return len(w.slots)
}

// WindowCounts returns the per-slot totals oldest first, active window
// last — the test surface for rotation determinism and conservation.
func (w *WindowCounter) WindowCounts() []uint64 {
	if w == nil {
		return nil
	}
	n := len(w.slots)
	cur := int(w.cur.Load())
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = w.slots[(cur+1+i)%n].Value()
	}
	return out
}

// WindowHistogram is a Histogram plus a fixed ring of per-window log2
// histograms. Observe feeds the cumulative histogram and the active slot;
// Window() merges the ring — exact, because slots store only integer bucket
// counts (the same property that makes Histogram.Merge exact).
type WindowHistogram struct {
	cum   Histogram
	cur   atomic.Uint64
	slots []Histogram
}

// NewWindowHistogram returns a histogram with a ring of windows slots
// (minimum 1).
func NewWindowHistogram(windows int) *WindowHistogram {
	if windows < 1 {
		windows = 1
	}
	return &WindowHistogram{slots: make([]Histogram, windows)}
}

// Observe records v into the cumulative histogram and the active window
// (no-op on a nil histogram).
//
//hot:path
func (w *WindowHistogram) Observe(v float64) {
	if w == nil {
		return
	}
	w.cum.Observe(v)
	w.slots[w.cur.Load()].Observe(v)
}

// Rotate retires the oldest slot and makes it the new active window (no-op
// on nil). Same boundary semantics as WindowCounter.Rotate.
func (w *WindowHistogram) Rotate() {
	if w == nil {
		return
	}
	next := (w.cur.Load() + 1) % uint64(len(w.slots))
	w.slots[next].reset()
	w.cur.Store(next)
}

// Cumulative returns the lifetime histogram (nil on a nil receiver). The
// returned histogram is live — callers read, never write.
func (w *WindowHistogram) Cumulative() *Histogram {
	if w == nil {
		return nil
	}
	return &w.cum
}

// Window returns a fresh histogram holding the exact merge of the ring —
// the rolling view over the last Windows() rotations. Merging integer
// bucket counts is exact and order-independent, so the result is
// bit-identical however the recorded values interleaved.
func (w *WindowHistogram) Window() *Histogram {
	h := &Histogram{}
	if w == nil {
		return h
	}
	for i := range w.slots {
		h.Merge(&w.slots[i])
	}
	return h
}

// Windows returns the ring size (0 on nil).
func (w *WindowHistogram) Windows() int {
	if w == nil {
		return 0
	}
	return len(w.slots)
}

// reset zeroes a histogram in place (rotation retires a slot by reuse, not
// reallocation — the recording path must stay allocation-free).
func (h *Histogram) reset() {
	h.mu.Lock()
	h.counts = [NumBuckets]uint64{}
	h.total = 0
	h.mu.Unlock()
}

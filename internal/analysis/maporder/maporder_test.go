package maporder_test

import (
	"testing"

	"voyager/internal/analysis/analysistest"
	"voyager/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	dir := "testdata/src/maporderpkg"
	analysistest.Run(t, maporder.New(analysistest.PkgPath(dir)), dir)
}

func TestMapOrderSkipsNonCriticalPackages(t *testing.T) {
	// Same testdata, but the analyzer is scoped to a different package:
	// nothing may be reported, so every want comment must fail… instead we
	// check the result directly via a throwaway run.
	dir := "testdata/src/maporderpkg"
	a := maporder.New("some/other/pkg")
	got := analysistest.Findings(t, a, dir)
	if len(got) != 0 {
		t.Fatalf("expected no findings outside critical packages, got %v", got)
	}
}

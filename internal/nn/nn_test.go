package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"voyager/internal/tensor"
)

func TestEmbeddingLookupValuesAndGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewEmbedding("emb", 5, 3, rng)
	tp := tensor.NewTape()
	ids := []int{0, 4, 0}
	out := e.Lookup(tp, ids)
	for r, id := range ids {
		for c := 0; c < 3; c++ {
			if out.Val.At(r, c) != e.Table.W.At(id, c) {
				t.Fatalf("lookup row %d mismatch", r)
			}
		}
	}
	loss := tp.SumAll(out)
	tp.Backward(loss)
	// Row 0 appears twice → gradient 2 per element, row 4 once, others zero.
	for c := 0; c < 3; c++ {
		if g := e.Table.Grad.At(0, c); g != 2 {
			t.Fatalf("row 0 grad = %v, want 2", g)
		}
		if g := e.Table.Grad.At(4, c); g != 1 {
			t.Fatalf("row 4 grad = %v, want 1", g)
		}
		if g := e.Table.Grad.At(2, c); g != 0 {
			t.Fatalf("row 2 grad = %v, want 0", g)
		}
	}
	// Sparse ZeroGrad clears only touched rows and the touched set.
	e.Table.ZeroGrad()
	if e.Table.Grad.MaxAbs() != 0 {
		t.Fatalf("ZeroGrad left residue")
	}
	if len(e.Table.touched) != 0 {
		t.Fatalf("touched set not cleared")
	}
}

func TestEmbeddingLookupOutOfRangePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding("emb", 3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	e.Lookup(tensor.NewTape(), []int{3})
}

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear("fc", 4, 7, rng)
	tp := tensor.NewTape()
	x := tp.Const(tensor.NewMat(5, 4))
	y := l.Forward(tp, x)
	if y.Val.Rows != 5 || y.Val.Cols != 7 {
		t.Fatalf("shape %dx%d", y.Val.Rows, y.Val.Cols)
	}
}

// Finite-difference gradient check through a full LSTM step + linear head.
func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const in, hidden, batch = 3, 4, 2
	cell := NewLSTM("lstm", in, hidden, rng)
	head := NewLinear("head", hidden, 2, rng)
	x1 := tensor.NewMat(batch, in)
	x2 := tensor.NewMat(batch, in)
	x1.Uniform(rng, 1)
	x2.Uniform(rng, 1)
	targets := []int{0, 1}

	build := func() (*tensor.Tape, *tensor.Node) {
		tp := tensor.NewTape()
		s := cell.Run(tp, []*tensor.Node{tp.Const(x1), tp.Const(x2)})
		logits := head.Forward(tp, s.H)
		loss, _ := tp.SoftmaxCrossEntropy(logits, targets)
		return tp, loss
	}

	params := append(cell.Params(), head.Params()...)
	for _, p := range params {
		p.ZeroGrad()
	}
	tp, loss := build()
	tp.Backward(loss)

	const eps, tol = 1e-2, 3e-2
	for _, p := range params {
		// Check a sample of elements to keep the test fast.
		stride := 1 + p.Size()/16
		for i := 0; i < p.Size(); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			_, lp := build()
			p.W.Data[i] = orig - eps
			_, lm := build()
			p.W.Data[i] = orig
			numeric := (float64(lp.Val.Data[0]) - float64(lm.Val.Data[0])) / (2 * eps)
			analytic := float64(p.Grad.Data[i])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > tol {
				t.Fatalf("%s elem %d: analytic %g numeric %g", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestLSTMForgetBiasInit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cell := NewLSTM("lstm", 2, 3, rng)
	for c := 0; c < 12; c++ {
		want := float32(0)
		if c >= 3 && c < 6 {
			want = 1
		}
		if cell.B.W.At(0, c) != want {
			t.Fatalf("bias col %d = %v, want %v", c, cell.B.W.At(0, c), want)
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tp := tensor.NewTape()
	x := tensor.NewMat(10, 10)
	x.Fill(1)
	xn := tp.Const(x)
	// Eval mode: identity.
	if out := Dropout(tp, xn, 0.5, rng, false); out != xn {
		t.Fatalf("eval dropout should be identity")
	}
	// Train mode: elements are 0 or 1/keep.
	out := Dropout(tp, xn, 0.8, rng, true)
	zeros, scaled := 0, 0
	for _, v := range out.Val.Data {
		switch {
		case v == 0:
			zeros++
		case math.Abs(float64(v)-1/0.8) < 1e-5:
			scaled++
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatalf("dropout did not mix zeros (%d) and kept (%d)", zeros, scaled)
	}
}

// Property: dropout preserves the expected mean (inverted scaling).
func TestDropoutExpectationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keep := 0.5 + rng.Float32()*0.49
		tp := tensor.NewTape()
		x := tensor.NewMat(40, 40)
		x.Fill(1)
		out := Dropout(tp, tp.Const(x), keep, rng, true)
		var mean float64
		for _, v := range out.Val.Data {
			mean += float64(v)
		}
		mean /= float64(len(out.Val.Data))
		return math.Abs(mean-1) < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w - target||² — Adam should get close quickly.
	p := NewParam("w", 1, 4)
	target := []float32{1, -2, 3, 0.5}
	opt := NewAdam(0.05)
	for step := 0; step < 500; step++ {
		for i := range p.W.Data {
			p.Grad.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i, want := range target {
		if math.Abs(float64(p.W.Data[i]-want)) > 0.05 {
			t.Fatalf("w[%d]=%v, want %v", i, p.W.Data[i], want)
		}
	}
}

func TestAdamSparseOnlyUpdatesTouchedRows(t *testing.T) {
	p := NewSparseParam("emb", 4, 2)
	p.W.Fill(1)
	opt := NewAdam(0.1)
	// Gradient only on row 2.
	p.Grad.Row(2)[0] = 1
	p.Grad.Row(2)[1] = 1
	p.Touch(2)
	opt.Step([]*Param{p})
	for r := 0; r < 4; r++ {
		changed := p.W.At(r, 0) != 1
		if r == 2 && !changed {
			t.Fatalf("touched row not updated")
		}
		if r != 2 && changed {
			t.Fatalf("untouched row %d updated", r)
		}
	}
}

func TestAdamDecay(t *testing.T) {
	opt := NewAdam(0.4)
	opt.Decay()
	if math.Abs(float64(opt.LR)-0.2) > 1e-7 {
		t.Fatalf("LR after decay = %v", opt.LR)
	}
}

// Property: Adam updates stay finite for arbitrary finite gradients.
func TestAdamFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewParam("w", 2, 3)
		p.W.Uniform(rng, 10)
		opt := NewAdam(0.01)
		for s := 0; s < 10; s++ {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = (rng.Float32()*2 - 1) * 1e6
			}
			opt.Step([]*Param{p})
		}
		for _, v := range p.W.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParamSetBasics(t *testing.T) {
	var s ParamSet
	a := NewParam("a.w", 2, 3)
	b := NewParam("a.b", 1, 3)
	s.Add(a, b)
	if s.Count() != 9 {
		t.Fatalf("Count=%d", s.Count())
	}
	if s.Bytes(32) != 36 {
		t.Fatalf("Bytes(32)=%d", s.Bytes(32))
	}
	if s.Bytes(8) != 9 {
		t.Fatalf("Bytes(8)=%d", s.Bytes(8))
	}
	if s.ByName("a.w") != a || s.ByName("nope") != nil {
		t.Fatalf("ByName lookup broken")
	}
	rng := rand.New(rand.NewSource(7))
	s.InitGlorot(rng)
	if a.W.MaxAbs() == 0 {
		t.Fatalf("weights not initialized")
	}
	if b.W.MaxAbs() != 0 {
		t.Fatalf("bias should remain zero after InitGlorot")
	}
	a.Grad.Fill(float32(math.NaN()))
	if err := s.GradCheckFinite(); err == nil {
		t.Fatalf("expected non-finite gradient error")
	}
}

// Integration: an LSTM + linear head learns to classify a short pattern:
// label = first token of the sequence. This exercises embeddings, LSTM,
// losses and Adam end-to-end.
func TestLSTMLearnsToyTask(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const vocab, dim, hidden, seqLen, batch = 6, 8, 16, 4, 8
	emb := NewEmbedding("emb", vocab, dim, rng)
	cell := NewLSTM("lstm", dim, hidden, rng)
	head := NewLinear("head", hidden, vocab, rng)
	var ps ParamSet
	ps.Add(emb.Table)
	ps.Add(cell.Params()...)
	ps.Add(head.Params()...)
	opt := NewAdam(0.01)

	sample := func() ([][]int, []int) {
		seqs := make([][]int, batch)
		targets := make([]int, batch)
		for b := 0; b < batch; b++ {
			seq := make([]int, seqLen)
			for i := range seq {
				seq[i] = rng.Intn(vocab)
			}
			seqs[b] = seq
			targets[b] = seq[0]
		}
		return seqs, targets
	}

	run := func(seqs [][]int, targets []int, train bool) (float32, int) {
		tp := tensor.NewTape()
		s := cell.ZeroState(tp, batch)
		for t := 0; t < seqLen; t++ {
			ids := make([]int, batch)
			for b := range seqs {
				ids[b] = seqs[b][t]
			}
			s = cell.Step(tp, emb.Lookup(tp, ids), s)
		}
		logits := head.Forward(tp, s.H)
		loss, probs := tp.SoftmaxCrossEntropy(logits, targets)
		correct := 0
		for b := 0; b < batch; b++ {
			best := 0
			for c := 1; c < vocab; c++ {
				if probs.At(b, c) > probs.At(b, best) {
					best = c
				}
			}
			if best == targets[b] {
				correct++
			}
		}
		if train {
			tp.Backward(loss)
			opt.Step(ps.All())
		}
		return loss.Val.Data[0], correct
	}

	for step := 0; step < 400; step++ {
		seqs, targets := sample()
		run(seqs, targets, true)
	}
	total, correct := 0, 0
	for i := 0; i < 20; i++ {
		seqs, targets := sample()
		_, c := run(seqs, targets, false)
		correct += c
		total += batch
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("LSTM failed to learn toy task: accuracy %.2f", acc)
	}
}

func BenchmarkLSTMStep(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	cell := NewLSTM("lstm", 64, 64, rng)
	x := tensor.NewMat(32, 64)
	x.Uniform(rng, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := tensor.NewTape()
		s := cell.ZeroState(tp, 32)
		cell.Step(tp, tp.Const(x), s)
	}
}

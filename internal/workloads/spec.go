package workloads

import (
	"container/heap"

	"voyager/internal/graphs"
	"voyager/internal/memsim"
	"voyager/internal/trace"
)

// ---------------------------------------------------------------------------
// astar — SPEC06 473.astar: A* pathfinding over a grid map with obstacles.
// The open list is a binary heap (semi-regular array accesses) while g-score
// and terrain loads are indexed by data-dependent node ids.
// ---------------------------------------------------------------------------

type astarItem struct {
	node int32
	prio int32
}

type astarHeap []astarItem

func (h astarHeap) Len() int            { return len(h) }
func (h astarHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h astarHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *astarHeap) Push(x interface{}) { *h = append(*h, x.(astarItem)) }
func (h *astarHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Astar generates the astar trace: repeated A* queries on a grid map.
func Astar(cfg Config) *trace.Trace {
	rng := cfg.rng()
	side := 48 * cfg.scale()
	g := graphs.Grid(side, side)
	rec := memsim.NewRecorder("astar")
	hp := memsim.NewHeap(0x20_0000)
	terrain := hp.NewArray(g.N, 32)
	gscore := hp.NewArray(g.N, 32)
	openArr := hp.NewArray(g.N, 16)

	pcs := memsim.NewPCs(0x430000)
	pop := pcs.Block()
	pcHeapPop := pop.Site()
	expand := pcs.Block()
	pcTerrain := expand.Site()
	pcGScore := expand.Site()
	push := pcs.Block()
	pcHeapPush := push.Site()

	blocked := make([]bool, g.N)
	for i := range blocked {
		blocked[i] = rng.Float64() < 0.25
	}
	dist := make([]int32, g.N)

	// Queries cycle through a fixed set of (src, dst) pairs, the way a
	// game replans the same routes repeatedly; the search for a given pair
	// is deterministic, so its access sequence recurs exactly.
	type pair struct{ src, dst int }
	pairs := make([]pair, 6)
	for i := range pairs {
		s, d := rng.Intn(g.N), rng.Intn(g.N)
		for blocked[s] {
			s = rng.Intn(g.N)
		}
		pairs[i] = pair{s, d}
	}
	queries := 120
	for q := 0; q < queries; q++ {
		src, dst := pairs[q%len(pairs)].src, pairs[q%len(pairs)].dst
		for i := range dist {
			dist[i] = 1 << 30
		}
		rec.Work(16)
		open := astarHeap{{node: int32(src), prio: 0}}
		dist[src] = 0
		expandedBudget := 600
		for len(open) > 0 && expandedBudget > 0 {
			it := heap.Pop(&open).(astarItem)
			rec.Load(pcHeapPop, openArr.Addr(len(open)%openArr.Len))
			rec.Work(2)
			u := int(it.node)
			if u == dst {
				break
			}
			expandedBudget--
			for _, v := range g.Neigh(u) {
				rec.Load(pcTerrain, terrain.Addr(int(v)))
				if blocked[v] {
					continue
				}
				rec.Load(pcGScore, gscore.Addr(int(v)))
				rec.Work(3)
				nd := dist[u] + 1
				if nd < dist[v] {
					dist[v] = nd
					// Manhattan-distance heuristic toward dst.
					hx := int32(abs(int(v)%side-dst%side) + abs(int(v)/side-dst/side))
					heap.Push(&open, astarItem{node: v, prio: nd + hx})
					rec.Load(pcHeapPush, openArr.Addr(len(open)%openArr.Len))
				}
			}
		}
		if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
			break
		}
	}
	return cfg.finish(rec.Trace)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ---------------------------------------------------------------------------
// mcf — SPEC06 429.mcf: network-simplex pricing over a large arc array.
// Two behaviours matter to the paper: (1) pointer-ish loads of arc and node
// records in a near-fixed order every pricing sweep (temporal), and (2) a
// very large, growing footprint that produces compulsory misses that only
// delta prefetching covers (§4.3: "10 deltas cover 99% of the compulsory
// misses in mcf").
// ---------------------------------------------------------------------------

// MCF generates the mcf trace.
func MCF(cfg Config) *trace.Trace {
	rng := cfg.rng()
	nArcs := 1_500 * cfg.scale()
	nNodes := 300 * cfg.scale()
	rec := memsim.NewRecorder("mcf")
	hp := memsim.NewHeap(0x100_0000)
	arcs := hp.NewArray(nArcs, 64) // arc records are cache-line sized in mcf
	nodes := hp.NewArray(nNodes, 64)

	pcs := memsim.NewPCs(0x440000)
	price := pcs.Block()
	pcArc := price.Site()
	pcTail := price.Site()
	pcHead := price.Site()
	sweepB := pcs.Block()
	pcSweep := sweepB.Site()

	tail := make([]int32, nArcs)
	head := make([]int32, nArcs)
	for i := range tail {
		tail[i] = int32(rng.Intn(nNodes))
		head[i] = int32(rng.Intn(nNodes))
	}
	order := permute(rng, nArcs)

	for iter := 0; iter < 8; iter++ {
		// Pricing sweep: arcs in a fixed permuted order; node records
		// indexed by arc endpoints (irregular but repeating).
		for _, a := range order {
			rec.Load(pcArc, arcs.Addr(a))
			rec.Load(pcTail, nodes.Addr(int(tail[a])))
			rec.Load(pcHead, nodes.Addr(int(head[a])))
			rec.Work(4)
			if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
				return cfg.finish(rec.Trace)
			}
		}
		// Basis rebuild: a fresh region is swept linearly — compulsory
		// misses with a constant line stride (delta-predictable).
		fresh := hp.NewArray(600*cfg.scale(), 64)
		for i := 0; i < fresh.Len; i++ {
			rec.Load(pcSweep, fresh.Addr(i))
			rec.Work(1)
			if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
				return cfg.finish(rec.Trace)
			}
		}
	}
	return cfg.finish(rec.Trace)
}

// ---------------------------------------------------------------------------
// omnetpp — SPEC06 471.omnetpp: discrete-event network simulation. The
// future-event set is a binary heap; event and module records are loaded as
// events are scheduled and fire. Event objects come from a recycled pool,
// so their addresses recur (temporal), while heap sift paths are
// semi-regular.
// ---------------------------------------------------------------------------

// Omnetpp generates the omnetpp trace.
func Omnetpp(cfg Config) *trace.Trace {
	rng := cfg.rng()
	nModules := 400 * cfg.scale()
	poolSize := 1_024 * cfg.scale()
	rec := memsim.NewRecorder("omnetpp")
	hp := memsim.NewHeap(0x40_0000)
	modules := hp.NewArray(nModules, 128)
	events := hp.NewArray(poolSize, 64)
	heapArr := hp.NewArray(poolSize, 16)

	pcs := memsim.NewPCs(0x450000)
	sched := pcs.Block()
	pcHeapUp := sched.Site()
	pcEventNew := sched.Site()
	fire := pcs.Block()
	pcHeapDown := fire.Site()
	pcEvent := fire.Site()
	pcModule := fire.Site()
	pcPeer := fire.Site()

	type ev struct {
		time float64
		slot int32
		mod  int32
	}
	var fes []ev // binary heap by time
	free := make([]int32, poolSize)
	for i := range free {
		free[i] = int32(i)
	}
	alloc := func() int32 {
		s := free[len(free)-1]
		free = free[:len(free)-1]
		return s
	}
	release := func(s int32) { free = append(free, s) }

	// Fixed module topology: each module forwards to a few peers.
	peers := make([][]int32, nModules)
	for m := range peers {
		k := 2 + rng.Intn(3)
		peers[m] = make([]int32, k)
		for i := range peers[m] {
			peers[m][i] = int32(rng.Intn(nModules))
		}
	}

	push := func(e ev) {
		fes = append(fes, e)
		i := len(fes) - 1
		for i > 0 {
			p := (i - 1) / 2
			rec.Load(pcHeapUp, heapArr.Addr(p))
			if fes[p].time <= fes[i].time {
				break
			}
			fes[p], fes[i] = fes[i], fes[p]
			i = p
		}
	}
	pop := func() ev {
		top := fes[0]
		last := len(fes) - 1
		fes[0] = fes[last]
		fes = fes[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			if l >= len(fes) {
				break
			}
			c := l
			if r < len(fes) && fes[r].time < fes[l].time {
				c = r
			}
			rec.Load(pcHeapDown, heapArr.Addr(c))
			if fes[i].time <= fes[c].time {
				break
			}
			fes[i], fes[c] = fes[c], fes[i]
			i = c
		}
		return top
	}

	now := 0.0
	for i := 0; i < 64; i++ {
		s := alloc()
		rec.Load(pcEventNew, events.Addr(int(s)))
		push(ev{time: rng.ExpFloat64(), slot: s, mod: int32(rng.Intn(nModules))})
	}
	for steps := 0; len(fes) > 0; steps++ {
		e := pop()
		now = e.time
		rec.Load(pcEvent, events.Addr(int(e.slot)))
		rec.Load(pcModule, modules.Addr(int(e.mod)))
		rec.Work(6)
		// Fire: forward to peers with fresh events.
		for _, p := range peers[e.mod] {
			rec.Load(pcPeer, modules.Addr(int(p)))
			if len(free) > 0 && len(fes) < poolSize-8 && rng.Float64() < 0.55 {
				s := alloc()
				rec.Load(pcEventNew, events.Addr(int(s)))
				push(ev{time: now + rng.ExpFloat64(), slot: s, mod: p})
			}
		}
		release(e.slot)
		if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
			break
		}
		if steps > 3_000_000 {
			break
		}
	}
	return cfg.finish(rec.Trace)
}

// ---------------------------------------------------------------------------
// soplex — SPEC06 450.soplex: simplex LP solver. The trace reproduces the
// paper's Figure 16 phenomenon: a pricing pass streams a sparse column
// (colptr/rowidx/values), computes a data-dependent `leave` index, and then
// executes
//
//	x = upd[leave];                    // pcUpd
//	if (x < eps) val = (ub[leave] - vec[leave]) / x;  // pcUb, pcVecA
//	else         val = (lb[leave] - vec[leave]) / x;  // pcLb, pcVecB
//
// vec[leave] is accessed by one of two PCs depending on the branch, so
// PC-localized tables see a noisy stream while co-occurrence labeling
// (vec follows upd) makes it predictable.
// ---------------------------------------------------------------------------

// Soplex generates the soplex trace.
func Soplex(cfg Config) *trace.Trace {
	rng := cfg.rng()
	nCols := 250 * cfg.scale()
	nnzPerCol := 8
	nRows := 2_000 * cfg.scale()
	rec := memsim.NewRecorder("soplex")
	hp := memsim.NewHeap(0x80_0000)
	colptr := hp.NewArray(nCols+1, 16)
	rowidx := hp.NewArray(nCols*nnzPerCol, 16)
	values := hp.NewArray(nCols*nnzPerCol, 16)
	upd := hp.NewArray(nRows, 8)
	ub := hp.NewArray(nRows, 8)
	lb := hp.NewArray(nRows, 8)
	vec := hp.NewArray(nRows, 8)

	pcs := memsim.NewPCs(0x460000)
	stream := pcs.Block()
	pcColptr := stream.Site()
	pcRowidx := stream.Site()
	pcValues := stream.Site()
	ratio := pcs.Block()
	pcUpd := ratio.Site()
	pcUb := ratio.Site()
	pcVecA := ratio.Site() // line 125
	pcLb := ratio.Site()
	pcVecB := ratio.Site() // line 127

	// Column entries: random rows, fixed at generation time so sweeps repeat.
	rows := make([]int32, nCols*nnzPerCol)
	for i := range rows {
		rows[i] = int32(rng.Intn(nRows))
	}
	// The sequence of leaving rows cycles through a basis-sized set.
	basis := make([]int32, 256)
	for i := range basis {
		basis[i] = int32(rng.Intn(nRows))
	}
	// Branch direction per basis row is a fixed property of the data
	// (sign of upd), so it repeats across sweeps.
	branchUp := make([]bool, len(basis))
	for i := range branchUp {
		branchUp[i] = rng.Float64() < 0.5
	}

	leaveIdx := 0
	for iter := 0; iter < 30; iter++ {
		for c := 0; c < nCols; c++ {
			rec.Load(pcColptr, colptr.Addr(c))
			for k := 0; k < nnzPerCol; k++ {
				e := c*nnzPerCol + k
				rec.Load(pcRowidx, rowidx.Addr(e))
				rec.Load(pcValues, values.Addr(e))
				rec.Work(1)
			}
			// Ratio test on the current leaving row (Figure 16).
			leave := int(basis[leaveIdx%len(basis)])
			up := branchUp[leaveIdx%len(basis)]
			leaveIdx++
			rec.Work(4)
			rec.Load(pcUpd, upd.Addr(leave))
			if up {
				rec.Load(pcUb, ub.Addr(leave))
				rec.Load(pcVecA, vec.Addr(leave))
			} else {
				rec.Load(pcLb, lb.Addr(leave))
				rec.Load(pcVecB, vec.Addr(leave))
			}
			if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
				return cfg.finish(rec.Trace)
			}
		}
	}
	return cfg.finish(rec.Trace)
}

// ---------------------------------------------------------------------------
// sphinx — SPEC06 482.sphinx3: speech recognition. Viterbi decoding over an
// HMM: per audio frame, the active-state list is walked, loading state
// records, senone (acoustic score) entries, and transition targets. The
// active set drifts slowly between frames, producing long temporally
// correlated stretches punctured by new states.
// ---------------------------------------------------------------------------

// Sphinx generates the sphinx trace.
func Sphinx(cfg Config) *trace.Trace {
	rng := cfg.rng()
	nStates := 2_000 * cfg.scale()
	nSenones := 800 * cfg.scale()
	rec := memsim.NewRecorder("sphinx")
	hp := memsim.NewHeap(0x60_0000)
	states := hp.NewArray(nStates, 64)
	senones := hp.NewArray(nSenones, 32)
	trans := hp.NewArray(nStates*3, 16)

	pcs := memsim.NewPCs(0x470000)
	frame := pcs.Block()
	pcState := frame.Site()
	pcSenone := frame.Site()
	pcTrans := frame.Site()
	pcNext := frame.Site()

	senoneOf := make([]int32, nStates)
	transTo := make([][3]int32, nStates)
	for s := range senoneOf {
		senoneOf[s] = int32(rng.Intn(nSenones))
		for k := 0; k < 3; k++ {
			transTo[s][k] = int32(rng.Intn(nStates))
		}
	}

	active := make([]int32, 0, 512)
	inActive := make(map[int32]bool)
	for len(active) < 128 {
		s := int32(rng.Intn(nStates))
		if !inActive[s] {
			inActive[s] = true
			active = append(active, s)
		}
	}
	for f := 0; ; f++ {
		next := active[:0:0]
		nextIn := make(map[int32]bool)
		for _, s := range active {
			rec.Load(pcState, states.Addr(int(s)))
			rec.Load(pcSenone, senones.Addr(int(senoneOf[s])))
			rec.Work(5)
			for k := 0; k < 3; k++ {
				rec.Load(pcTrans, trans.Addr(int(s)*3+k))
				t := transTo[s][k]
				rec.Load(pcNext, states.Addr(int(t)))
				// Beam: keep the best transitions; mostly self-sustaining set.
				if !nextIn[t] && (k == 0 || rng.Float64() < 0.3) {
					nextIn[t] = true
					next = append(next, t)
				}
			}
		}
		if len(next) > 192 {
			next = next[:192]
		}
		for len(next) < 64 {
			s := int32(rng.Intn(nStates))
			if !nextIn[s] {
				nextIn[s] = true
				next = append(next, s)
			}
		}
		active = next
		if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
			break
		}
		if f > 1_000_000 {
			break
		}
	}
	return cfg.finish(rec.Trace)
}

// ---------------------------------------------------------------------------
// xalancbmk — SPEC06 483.xalancbmk: XSLT processing. The hot loops traverse
// a DOM tree via firstChild/nextSibling links and probe a string-dictionary
// hash table per element. Template application revisits the same subtrees,
// so the pointer chases recur exactly (temporal), while hash probes are
// scattered.
// ---------------------------------------------------------------------------

// Xalancbmk generates the xalancbmk trace.
func Xalancbmk(cfg Config) *trace.Trace {
	rng := cfg.rng()
	nNodes := 1_200 * cfg.scale()
	dictSize := 1_024 * cfg.scale()
	rec := memsim.NewRecorder("xalancbmk")
	hp := memsim.NewHeap(0x90_0000)
	nodes := hp.NewArray(nNodes, 64)
	dict := hp.NewArray(dictSize, 32)

	pcs := memsim.NewPCs(0x480000)
	walk := pcs.Block()
	pcNode := walk.Site()
	pcChild := walk.Site()
	pcSibling := walk.Site()
	lookup := pcs.Block()
	pcDict := lookup.Site()

	// Build a random tree in document order with light shuffling so links
	// are mostly-but-not-quite sequential in memory.
	firstChild := make([]int32, nNodes)
	nextSibling := make([]int32, nNodes)
	nameHash := make([]int32, nNodes)
	for i := range firstChild {
		firstChild[i] = -1
		nextSibling[i] = -1
		nameHash[i] = int32(rng.Intn(dictSize))
	}
	lastChild := make([]int32, nNodes)
	for i := range lastChild {
		lastChild[i] = -1
	}
	for i := 1; i < nNodes; i++ {
		// Parent is a recent node (document order) most of the time.
		lo := i - 64
		if lo < 0 {
			lo = 0
		}
		p := lo + rng.Intn(i-lo)
		if lastChild[p] == -1 {
			firstChild[p] = int32(i)
		} else {
			nextSibling[lastChild[p]] = int32(i)
		}
		lastChild[p] = int32(i)
	}

	var visit func(n int32)
	visit = func(n int32) {
		if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
			return
		}
		rec.Load(pcNode, nodes.Addr(int(n)))
		rec.Load(pcDict, dict.Addr(int(nameHash[n])))
		rec.Work(4)
		c := firstChild[n]
		for c != -1 {
			rec.Load(pcChild, nodes.Addr(int(c)))
			visit(c)
			rec.Load(pcSibling, nodes.Addr(int(c)))
			c = nextSibling[c]
		}
	}
	for pass := 0; pass < 12; pass++ {
		visit(0)
		if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
			break
		}
	}
	return cfg.finish(rec.Trace)
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each runner returns a structured result with a String
// method that prints the same rows/series the paper reports; cmd/experiments
// exposes them by id (table1..table3, fig5..fig17) and bench_test.go wraps
// them in testing.B benchmarks.
//
// Scale: the paper simulates 250M-instruction SimPoints and trains Voyager
// with Table 1's full sizes. This harness runs the same protocol end-to-end
// at a CPU-friendly scale (Options.Accesses-long traces, voyager scaled
// dimensions); EXPERIMENTS.md records paper-vs-measured for every artifact.
package experiments

import (
	"fmt"
	"sync"

	"voyager/internal/eval"
	"voyager/internal/metrics"
	"voyager/internal/prefetch"
	"voyager/internal/prefetch/bo"
	"voyager/internal/prefetch/deltalstm"
	"voyager/internal/prefetch/domino"
	"voyager/internal/prefetch/isb"
	"voyager/internal/prefetch/stms"
	"voyager/internal/sim"
	"voyager/internal/trace"
	"voyager/internal/tracing"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

// Options scales the experiment harness.
type Options struct {
	Seed     int64
	Accesses int // raw trace length per benchmark
	Epochs   int // number of online-protocol epochs the stream is cut into
	Window   int // unified-metric window
	// Voyager model size for the main comparison. Ablation figures use a
	// proportionally smaller model to stay affordable.
	Hidden int
	Passes int
	// Workers is the data-parallel width for Voyager training/inference
	// (voyager.Config.Workers): 0 or 1 keeps the serial path,
	// voyager.WorkersAuto sizes to the machine. Results are reproducible at
	// a fixed width; different widths shard RNG streams differently and so
	// train slightly different models.
	Workers int
	// Benchmarks restricts which benchmarks run (nil = paper's full list;
	// ablation figures default to AblationBenchmarks when nil).
	Benchmarks []string
	// Metrics, when non-nil, threads the observability registry through
	// every Voyager training run (voyager.Config.Metrics). Results are
	// identical with or without it. Excluded from JSON, like Logf, so an
	// Options value can embed directly in a run manifest.
	Metrics *metrics.Registry `json:"-"`
	// Trace, when non-nil, threads the execution-span tracer through every
	// Voyager training run and the Main() simulator sweep. Like Metrics,
	// results are identical with or without it.
	Trace *tracing.Tracer `json:"-"`
	// Provenance, when non-nil, collects a per-benchmark decision log for
	// every Voyager training run: each prediction is stamped with its label
	// provenance, scored against the unified eval metric, and resolved to a
	// simulator outcome by the Main() sweep.
	Provenance *tracing.ProvenanceSet `json:"-"`
	// Quiet suppresses progress lines.
	Quiet bool
	Logf  func(format string, args ...interface{}) `json:"-"`
}

// DefaultOptions is the scale used for EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Seed:     42,
		Accesses: 48_000,
		Epochs:   4,
		Window:   eval.DefaultWindow,
		Hidden:   64,
		Passes:   4,
	}
}

// TestOptions is a tiny scale for the repository's own test suite.
func TestOptions() Options {
	return Options{
		Seed:     7,
		Accesses: 12_000,
		Epochs:   4,
		Window:   eval.DefaultWindow,
		Hidden:   32,
		Passes:   2,
		Quiet:    true,
	}
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Quiet {
		return
	}
	if o.Logf != nil {
		o.Logf(format, args...)
		return
	}
	fmt.Printf(format+"\n", args...)
}

// AblationBenchmarks is the default subset for the multi-training ablation
// figures (12, 15): one representative per pattern class, chosen among the
// benchmarks with compact LLC streams since each costs 3-5 extra Voyager
// trainings (override with Options.Benchmarks / -benchmarks for more).
var AblationBenchmarks = []string{"pr", "soplex", "cc"}

func (o Options) benchList(defaultList []string) []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return defaultList
}

// epochLen cuts a stream of n accesses into Epochs epochs.
func (o Options) epochLen(n int) int {
	e := o.Epochs
	if e < 2 {
		e = 2
	}
	l := n / e
	if l < 64 {
		l = 64
	}
	return l
}

// voyagerConfig builds the experiment-scale Voyager configuration for a
// stream of the given length.
func (o Options) voyagerConfig(streamLen int) voyager.Config {
	c := voyager.ScaledConfig()
	c.Seed = o.Seed
	c.EpochAccesses = o.epochLen(streamLen)
	if o.Hidden > 0 {
		c.Hidden = o.Hidden
	}
	if o.Passes > 0 {
		c.PassesPerEpoch = o.Passes
	}
	c.Workers = o.Workers
	c.Metrics = o.Metrics
	c.Trace = o.Trace
	c.DropoutKeep = 1 // scaled models are too small to need regularization
	return c
}

func (o Options) deltaLSTMConfig(streamLen int) deltalstm.Config {
	c := deltalstm.ScaledConfig()
	c.Seed = o.Seed
	c.EpochAccesses = o.epochLen(streamLen)
	if o.Hidden > 0 {
		c.Hidden = o.Hidden
	}
	if o.Passes > 0 {
		c.PassesPerEpoch = o.Passes
	}
	c.LearningRate = 0.01
	return c
}

func (o Options) workloadConfig() workloads.Config {
	return workloads.Config{Seed: o.Seed, Scale: 1, MaxAccesses: o.Accesses}
}

// traceFor generates (and memoizes) a benchmark trace.
func (o Options) traceFor(c *cache, name string) *trace.Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tr, ok := c.traces[name]; ok {
		return tr
	}
	tr, err := workloads.Generate(name, o.workloadConfig())
	if err != nil {
		panic(err)
	}
	c.traces[name] = tr
	return tr
}

// stream is the access stream a predictor observes: for simulatable
// benchmarks the LLC-filtered sub-trace (the paper's prefetcher input), for
// the Google traces the raw stream. OrigIdx maps stream positions back to
// raw-trace indices (nil for unfiltered streams).
type stream struct {
	Trace   *trace.Trace
	OrigIdx []int
}

// mapToOriginal spreads per-stream predictions onto raw-trace indices so
// the simulator (which triggers the prefetcher on LLC accesses by raw
// index) can replay them.
func (s *stream) mapToOriginal(rawLen int, preds [][]uint64) [][]uint64 {
	if s.OrigIdx == nil {
		return preds
	}
	out := make([][]uint64, rawLen)
	for j, p := range preds {
		out[s.OrigIdx[j]] = p
	}
	return out
}

// cache memoizes traces, filtered streams and trained models across figures
// within one run.
type cache struct {
	mu      sync.Mutex
	traces  map[string]*trace.Trace
	streams map[string]*stream
	voyager map[string]*voyager.Predictor // degree-8 predictions, truncate per use
	dlstm   map[string]*deltalstm.Model
	// distilled holds the tabularized fast-path replay (degree-8
	// predictions per stream access), compiled from the cached teacher.
	distilled map[string][][]uint64
}

func newCache() *cache {
	return &cache{
		traces:    make(map[string]*trace.Trace),
		streams:   make(map[string]*stream),
		voyager:   make(map[string]*voyager.Predictor),
		dlstm:     make(map[string]*deltalstm.Model),
		distilled: make(map[string][][]uint64),
	}
}

// Run bundles the harness state so figures can share trained models.
type Run struct {
	Opts  Options
	cache *cache
	main  *MainResult
}

// NewRun creates an experiment run.
func NewRun(opts Options) *Run { return &Run{Opts: opts, cache: newCache()} }

// streamFor returns the benchmark's predictor-input stream: the
// LLC-filtered sub-trace for simulatable benchmarks, the raw trace for the
// Google workloads (which the paper also evaluates unfiltered).
func (r *Run) streamFor(name string) *stream {
	r.cache.mu.Lock()
	if st, ok := r.cache.streams[name]; ok {
		r.cache.mu.Unlock()
		return st
	}
	r.cache.mu.Unlock()

	tr := r.Opts.traceFor(r.cache, name)
	st := &stream{Trace: tr}
	if spec, err := workloads.ByName(name); err == nil && spec.Simulatable {
		filtered, idx := sim.FilterLLC(tr, sim.ScaledConfig())
		st = &stream{Trace: filtered, OrigIdx: idx}
	}
	r.cache.mu.Lock()
	r.cache.streams[name] = st
	r.cache.mu.Unlock()
	return st
}

// voyagerFor trains (once) the main Voyager model for a benchmark's stream
// with degree-8 predictions; figures truncate to the degree they need.
func (r *Run) voyagerFor(name string) *voyager.Predictor {
	r.cache.mu.Lock()
	if p, ok := r.cache.voyager[name]; ok {
		r.cache.mu.Unlock()
		return p
	}
	r.cache.mu.Unlock()

	st := r.streamFor(name)
	cfg := r.Opts.voyagerConfig(st.Trace.Len())
	cfg.Degree = 8
	cfg.Provenance = r.Opts.Provenance.NewLog(name + "/voyager")
	r.Opts.logf("  training voyager on %s (%d stream accesses)...", name, st.Trace.Len())
	p, err := voyager.Train(st.Trace, cfg)
	if err != nil {
		panic(err)
	}
	// Eval-score the decisions in the stream domain, then move them to
	// raw-trace indices so the Main() simulator sweep (which triggers by raw
	// index) can attach outcomes. Order matters: Reindex last.
	eval.MarkProvenance(st.Trace, r.Opts.Window, cfg.EpochAccesses, cfg.Provenance)
	if st.OrigIdx != nil {
		cfg.Provenance.Reindex(st.OrigIdx)
	}
	r.cache.mu.Lock()
	r.cache.voyager[name] = p
	r.cache.mu.Unlock()
	return p
}

// dlstmFor trains (once) the Delta-LSTM baseline for a benchmark's stream.
func (r *Run) dlstmFor(name string) *deltalstm.Model {
	r.cache.mu.Lock()
	if m, ok := r.cache.dlstm[name]; ok {
		r.cache.mu.Unlock()
		return m
	}
	r.cache.mu.Unlock()

	st := r.streamFor(name)
	cfg := r.Opts.deltaLSTMConfig(st.Trace.Len())
	cfg.Degree = 8
	r.Opts.logf("  training delta-lstm on %s...", name)
	m, err := deltalstm.Train(st.Trace, cfg)
	if err != nil {
		panic(err)
	}
	r.cache.mu.Lock()
	r.cache.dlstm[name] = m
	r.cache.mu.Unlock()
	return m
}

// truncate caps every prediction list at degree k.
func truncate(preds [][]uint64, k int) [][]uint64 {
	out := make([][]uint64, len(preds))
	for i, p := range preds {
		if len(p) > k {
			p = p[:k]
		}
		out[i] = p
	}
	return out
}

// tablePrefetchers builds fresh instances of the table baselines at the
// given degree, in the paper's comparison order.
func tablePrefetchers(degree int) []prefetch.Prefetcher {
	return []prefetch.Prefetcher{
		stms.New(degree),
		domino.New(degree),
		isb.NewIdeal(degree),
		bo.New(degree),
	}
}

// BaselineNames lists the comparison order used in the figures. The
// distilled entry is Voyager's tabularized fast path — same teacher, O(1)
// lookup — so the figures show what the distillation trades away.
var BaselineNames = []string{"stms", "domino", "isb", "bo", "delta-lstm", "voyager", "distilled"}

package workloads

import (
	"voyager/internal/memsim"
	"voyager/internal/trace"
)

// The Google search and ads traces in the paper come from production
// servers: they have an order of magnitude more PCs than SPEC/GAP (Table 2:
// 6.7k and 21k), huge footprints, and so little per-PC regularity that
// idealized ISB reaches only 13.8% / 26.2% unified accuracy/coverage.
//
// Our stand-ins reproduce those characteristics with two OLTP-style
// serving loops:
//
//   - search: an inverted-index query server. Each query hashes its terms,
//     walks postings lists (sequential within a list), and scores documents
//     (irregular doc-metadata loads). Query handling is spread across many
//     "handler clones" — distinct PC blocks that model the heavily inlined
//     production binary — so per-PC streams are sparse and noisy.
//   - ads: a feature-store scoring server. Each request chases a user
//     profile hash chain, gathers features from many tables, walks a
//     candidate-ad list, and loads per-ad model weights. More handler
//     clones and more tables than search give it the larger PC count.
//
// Both keep Zipfian popularity (hot terms/users repeat — learnable) and a
// steadily growing cold region (fresh docs/users — compulsory misses).

// Search generates the search-like OLTP trace.
func Search(cfg Config) *trace.Trace {
	rng := cfg.rng()
	s := cfg.scale()
	nTerms := 5_000 * s
	nDocs := 20_000 * s
	postingsPerTerm := 24
	handlers := 96

	rec := memsim.NewRecorder("search")
	hp := memsim.NewHeap(0x200_0000)
	hashTbl := hp.NewArray(1<<15*s, 16)
	postings := hp.NewArray(nTerms*postingsPerTerm, 8)
	docMeta := hp.NewArray(nDocs, 64)
	scoreBuf := hp.NewArray(4_096, 8)

	// Handler clones: each clone has its own PC block(s), modeling the
	// large inlined code footprint of the production server.
	pcs := memsim.NewPCs(0x600000)
	type handlerPCs struct {
		hash, post, doc, score uint64
	}
	hpcs := make([]handlerPCs, handlers)
	for i := range hpcs {
		b := pcs.Block()
		hpcs[i] = handlerPCs{hash: b.Site(), post: b.Site(), doc: b.Site(), score: b.Site()}
	}

	termPop := zipf(rng, 1.2, nTerms)
	docOf := make([]int32, nTerms*postingsPerTerm)
	for i := range docOf {
		docOf[i] = int32(rng.Intn(nDocs))
	}

	coldDoc := nDocs // fresh docs appear over time → compulsory misses
	queries := 0
	for {
		h := hpcs[rng.Intn(handlers)]
		nQueryTerms := 2 + rng.Intn(3)
		rec.Work(20)
		for t := 0; t < nQueryTerms; t++ {
			term := int(termPop.Uint64())
			// Hash probe: 1-2 chained bucket loads.
			bucket := (term * 2654435761) & (hashTbl.Len - 1)
			rec.Load(h.hash, hashTbl.Addr(bucket))
			if rng.Float64() < 0.3 {
				rec.Load(h.hash, hashTbl.Addr((bucket+1)&(hashTbl.Len-1)))
			}
			// Postings walk: sequential within the term's list.
			base := term * postingsPerTerm
			n := 6 + rng.Intn(postingsPerTerm-6)
			for k := 0; k < n; k++ {
				rec.Load(h.post, postings.Addr(base+k))
				doc := int(docOf[base+k])
				rec.Load(h.doc, docMeta.Addr(doc))
				rec.Work(2)
			}
			rec.Load(h.score, scoreBuf.Addr(term&(scoreBuf.Len-1)))
		}
		// Index growth: occasionally touch brand-new doc metadata.
		if rng.Float64() < 0.15 {
			fresh := hp.NewArray(16, 64)
			for i := 0; i < fresh.Len; i++ {
				rec.Load(h.doc, fresh.Addr(i))
			}
			coldDoc += 16
		}
		queries++
		if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
			break
		}
		if queries > 10_000_000 {
			break
		}
	}
	return cfg.finish(rec.Trace)
}

// Ads generates the ads-like OLTP trace.
func Ads(cfg Config) *trace.Trace {
	rng := cfg.rng()
	s := cfg.scale()
	nUsers := 30_000 * s
	nAds := 12_000 * s
	nTables := 32
	tableSize := 4_096 * s
	handlers := 192

	rec := memsim.NewRecorder("ads")
	hp := memsim.NewHeap(0x400_0000)
	users := hp.NewArray(nUsers, 128)
	adList := hp.NewArray(nAds, 16)
	adWeights := hp.NewArray(nAds, 64)
	tables := make([]memsim.Array, nTables)
	for i := range tables {
		tables[i] = hp.NewArray(tableSize, 32)
	}

	pcs := memsim.NewPCs(0x800000)
	type handlerPCs struct {
		user, feat, cand, weight, aux uint64
	}
	hpcs := make([]handlerPCs, handlers)
	for i := range hpcs {
		b := pcs.Block()
		hpcs[i] = handlerPCs{user: b.Site(), feat: b.Site(), cand: b.Site(), weight: b.Site(), aux: b.Site()}
	}

	userPop := zipf(rng, 1.1, nUsers)
	requests := 0
	for {
		h := hpcs[rng.Intn(handlers)]
		user := int(userPop.Uint64())
		rec.Work(24)
		// Profile hash chain: 1-3 loads.
		rec.Load(h.user, users.Addr(user))
		for c := 0; c < rng.Intn(3); c++ {
			rec.Load(h.user, users.Addr((user+c*7)%nUsers))
		}
		// Feature gathering: a per-user fixed subset of tables, so popular
		// users produce repeating (learnable) feature sequences.
		nFeats := 12 + rng.Intn(8)
		for f := 0; f < nFeats; f++ {
			tbl := (user*31 + f*17) % nTables
			slot := (user*131071 + f*8191) % tableSize
			rec.Load(h.feat, tables[tbl].Addr(slot))
			rec.Work(2)
		}
		// Candidate walk + model-weight loads.
		start := (user * 2654435761) % nAds
		nCand := 8 + rng.Intn(8)
		for k := 0; k < nCand; k++ {
			ad := (start + k*3) % nAds
			rec.Load(h.cand, adList.Addr(ad))
			rec.Load(h.weight, adWeights.Addr(ad))
			rec.Work(3)
		}
		// New users/ads trickle in (compulsory misses).
		if rng.Float64() < 0.12 {
			fresh := hp.NewArray(8, 128)
			for i := 0; i < fresh.Len; i++ {
				rec.Load(h.aux, fresh.Addr(i))
			}
		}
		requests++
		if cfg.MaxAccesses > 0 && rec.Trace.Len() >= cfg.MaxAccesses {
			break
		}
		if requests > 10_000_000 {
			break
		}
	}
	return cfg.finish(rec.Trace)
}

package memsim

import (
	"testing"
	"testing/quick"

	"voyager/internal/trace"
)

func TestHeapAlloc(t *testing.T) {
	h := NewHeap(0x1000)
	a := h.Alloc(10, 64)
	if a != 0x1000 {
		t.Fatalf("first alloc at %#x", a)
	}
	b := h.Alloc(10, 64)
	if b != 0x1040 {
		t.Fatalf("second alloc at %#x, want line-aligned after first", b)
	}
	if b%64 != 0 {
		t.Fatalf("alloc not aligned")
	}
}

func TestHeapAllocBadAlignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewHeap(0).Alloc(8, 3)
}

func TestArrayAddr(t *testing.T) {
	h := NewHeap(0x2000)
	arr := h.NewArray(10, 8)
	if arr.Addr(0) != arr.Base {
		t.Fatalf("Addr(0) != Base")
	}
	if arr.Addr(3) != arr.Base+24 {
		t.Fatalf("Addr(3) = %#x", arr.Addr(3))
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected out-of-range panic")
		}
	}()
	arr.Addr(10)
}

// Property: arrays allocated consecutively never overlap.
func TestArraysDisjointProperty(t *testing.T) {
	f := func(n1, n2 uint8, sz1, sz2 uint8) bool {
		h := NewHeap(0x1000)
		a := h.NewArray(int(n1)+1, uint64(sz1)+1)
		b := h.NewArray(int(n2)+1, uint64(sz2)+1)
		aEnd := a.Base + uint64(a.Len)*a.ElemSize
		return b.Base >= aEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder("x")
	r.Work(5)
	r.Load(0x400000, 0x1000)
	r.Load(0x400004, 0x1040)
	if r.Instructions() != 7 {
		t.Fatalf("instructions = %d", r.Instructions())
	}
	if r.Trace.Len() != 2 {
		t.Fatalf("accesses = %d", r.Trace.Len())
	}
	if r.Trace.Accesses[0].Inst != 6 {
		t.Fatalf("first inst = %d", r.Trace.Accesses[0].Inst)
	}
	if r.Trace.Instructions != 7 {
		t.Fatalf("trace instructions = %d", r.Trace.Instructions)
	}
	if r.Trace.Name != "x" {
		t.Fatalf("name = %q", r.Trace.Name)
	}
}

func TestPCBlocks(t *testing.T) {
	p := NewPCs(0x400000)
	b1 := p.Block()
	s1 := b1.Site()
	s2 := b1.Site()
	b2 := p.Block()
	s3 := b2.Site()
	if BlockOf(s1) != BlockOf(s2) {
		t.Fatalf("sites in one block differ: %#x vs %#x", s1, s2)
	}
	if BlockOf(s1) == BlockOf(s3) {
		t.Fatalf("sites in different blocks collide")
	}
	if s1 == s2 {
		t.Fatalf("duplicate site PCs")
	}
	// Sites are line-address distinct in trace terms.
	if trace.Line(s1) != trace.Line(s2) && BlockOf(s1) == BlockOf(s2) {
		// fine: block grouping is coarser than lines
		_ = s1
	}
}

func TestPCBlockOverflowPanics(t *testing.T) {
	b := NewPCs(0).Block()
	for i := 0; i < 16; i++ {
		b.Site()
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on 17th site")
		}
	}()
	b.Site()
}

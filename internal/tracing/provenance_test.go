package tracing

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDecisionLogBasics(t *testing.T) {
	l := NewDecisionLog("bench/pf")
	if l.Name() != "bench/pf" {
		t.Fatalf("Name = %q", l.Name())
	}
	id0 := l.Add(Decision{Index: 10, Line: 0xabc, Rank: 0, Schemes: 1})
	if dup := l.Add(Decision{Index: 10, Line: 0xabc, Rank: 3}); dup != id0 {
		t.Fatalf("duplicate (index, line) got id %d, want %d", dup, id0)
	}
	if l.Decisions()[id0].Rank != 0 {
		t.Fatalf("duplicate Add overwrote the higher-confidence decision")
	}
	if id, ok := l.Lookup(10, 0xabc); !ok || id != id0 {
		t.Fatalf("Lookup = %d, %v", id, ok)
	}
	if _, ok := l.Lookup(11, 0xabc); ok {
		t.Fatalf("Lookup found a decision that was never added")
	}
	if got := l.Ensure(10, 0xabc); got != id0 {
		t.Fatalf("Ensure on existing key = %d, want %d", got, id0)
	}
	bare := l.Ensure(20, 0xdef)
	if bare == id0 || l.Decisions()[bare].Schemes != 0 {
		t.Fatalf("Ensure did not create a bare decision")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}

	l.SetOutcome(id0, OutcomeLate, 42)
	if l.Outcome(id0) != OutcomeLate {
		t.Fatalf("Outcome = %v", l.Outcome(id0))
	}
	l.SetOutcome(99, OutcomeUseful, 0) // out of range: no-op
	if l.Outcome(99) != OutcomeNone {
		t.Fatalf("out-of-range SetOutcome stored something")
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeNone: "unsimulated", OutcomeDropped: "dropped",
		OutcomeUseful: "useful", OutcomeLate: "late",
		OutcomeEvicted: "evicted", OutcomeResident: "resident",
		Outcome(99): "?",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
}

func TestBuildTableAttribution(t *testing.T) {
	schemes := []string{"global", "pc", "spatial"}
	l := NewDecisionLog("run")
	// Multi-scheme decision: attributed to the lowest set bit ("global").
	a := l.Add(Decision{Index: 1, Line: 1, Schemes: 0b101})
	b := l.Add(Decision{Index: 2, Line: 2, Schemes: 0b010}) // "pc"
	c := l.Add(Decision{Index: 3, Line: 3, Schemes: 0})     // unmatched
	d := l.Add(Decision{Index: 4, Line: 4, Schemes: 0b010}) // "pc"
	l.SetOutcome(a, OutcomeUseful, 0)
	l.SetOutcome(b, OutcomeLate, 100)
	l.SetOutcome(c, OutcomeDropped, 0)
	l.SetOutcome(d, OutcomeEvicted, 0)
	l.SetEvalHit(a)

	tab := l.BuildTable(schemes)
	rows := map[string]Row{}
	for _, r := range tab.Rows {
		rows[r.Scheme] = r
	}
	if _, ok := rows["spatial"]; ok {
		t.Fatalf("empty scheme row was not omitted")
	}
	g := rows["global"]
	if g.Decisions != 1 || g.Useful != 1 || g.Issued != 1 || g.EvalHits != 1 {
		t.Fatalf("global row %+v", g)
	}
	if g.Accuracy != 1 || g.UsefulShare != 0.5 {
		t.Fatalf("global accuracy %v share %v, want 1, 0.5", g.Accuracy, g.UsefulShare)
	}
	pc := rows["pc"]
	if pc.Decisions != 2 || pc.Late != 1 || pc.Evicted != 1 || pc.Issued != 2 {
		t.Fatalf("pc row %+v", pc)
	}
	if pc.Accuracy != 0.5 || pc.MeanLateCycles != 100 {
		t.Fatalf("pc accuracy %v meanLate %v", pc.Accuracy, pc.MeanLateCycles)
	}
	um := rows[UnmatchedScheme]
	if um.Decisions != 1 || um.Dropped != 1 || um.Issued != 0 {
		t.Fatalf("unmatched row %+v", um)
	}
	if tab.Total.Decisions != 4 || tab.Total.Issued != 3 || !tab.HasEval {
		t.Fatalf("total %+v hasEval %v", tab.Total, tab.HasEval)
	}
	// Rows partition the decisions.
	sum := 0
	for _, r := range tab.Rows {
		sum += r.Decisions
	}
	if sum != tab.Total.Decisions {
		t.Fatalf("rows sum to %d decisions, total says %d", sum, tab.Total.Decisions)
	}
	if s := tab.String(); !strings.Contains(s, "global") || !strings.Contains(s, "eval=1") {
		t.Fatalf("table render missing content:\n%s", s)
	}
}

func TestReindex(t *testing.T) {
	l := NewDecisionLog("run")
	l.Add(Decision{Index: 0, Line: 7})
	l.Add(Decision{Index: 2, Line: 9})
	l.Reindex([]int{100, 101, 102})
	if l.Decisions()[0].Index != 100 || l.Decisions()[1].Index != 102 {
		t.Fatalf("indices after Reindex: %+v", l.Decisions())
	}
	if id, ok := l.Lookup(102, 9); !ok || id != 1 {
		t.Fatalf("Lookup in the new domain: %d, %v", id, ok)
	}
	if _, ok := l.Lookup(2, 9); ok {
		t.Fatalf("old-domain key survived Reindex")
	}
}

func TestProvenanceSetReportRoundTrip(t *testing.T) {
	var nilSet *ProvenanceSet
	if log := nilSet.NewLog("x"); log != nil {
		t.Fatalf("nil set returned a live log")
	}
	if err := nilSet.WriteFile(filepath.Join(t.TempDir(), "no.json"), nil); err != nil {
		t.Fatalf("nil set WriteFile: %v", err)
	}

	set := NewProvenanceSet()
	a := set.NewLog("pr/voyager")
	b := set.NewLog("cc/voyager")
	a.Add(Decision{Index: 1, Line: 1, Schemes: 1})
	b.Add(Decision{Index: 2, Line: 2})
	if len(set.Logs()) != 2 {
		t.Fatalf("Logs: %d", len(set.Logs()))
	}
	path := filepath.Join(t.TempDir(), "prov.json")
	if err := set.WriteFile(path, []string{"global"}); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Tables) != 2 || rep.Tables[0].Name != "pr/voyager" || rep.Tables[1].Name != "cc/voyager" {
		t.Fatalf("round-tripped report: %+v", rep)
	}
	if s := set.Report([]string{"global"}).String(); !strings.Contains(s, "pr/voyager") || !strings.Contains(s, "cc/voyager") {
		t.Fatalf("report render:\n%s", s)
	}
}

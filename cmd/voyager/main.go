// Command voyager trains the Voyager model on a benchmark (or trace file)
// with the paper's online protocol and reports unified accuracy/coverage,
// per-epoch losses, and the model's size.
//
// Usage:
//
//	go run ./cmd/voyager -bench soplex
//	go run ./cmd/voyager -bench pr -hidden 64 -passes 4 -degree 4
//	go run ./cmd/voyager -trace pr.vygr -schemes pc -no-deltas
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"voyager/internal/eval"
	"voyager/internal/label"
	"voyager/internal/metrics"
	"voyager/internal/trace"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

func parseSchemes(s string) ([]label.Scheme, error) {
	if s == "" || s == "all" {
		return label.AllSchemes(), nil
	}
	var out []label.Scheme
	for _, name := range strings.Split(s, ",") {
		found := false
		for _, sc := range label.AllSchemes() {
			if sc.String() == name {
				out = append(out, sc)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown labeling scheme %q", name)
		}
	}
	return out, nil
}

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark name (generates a trace)")
		traceFile = flag.String("trace", "", "binary trace file")
		n         = flag.Int("n", 24_000, "max accesses when generating")
		seed      = flag.Int64("seed", 42, "randomness seed")
		hidden    = flag.Int("hidden", 64, "LSTM units")
		passes    = flag.Int("passes", 4, "training passes per epoch")
		epoch     = flag.Int("epoch", 6_000, "epoch length in accesses")
		degree    = flag.Int("degree", 1, "prefetch degree")
		schemes   = flag.String("schemes", "all", "labeling schemes (comma list: global,pc,basic-block,spatial,co-occurrence)")
		noDeltas  = flag.Bool("no-deltas", false, "disable the delta vocabulary (Voyager w/o delta)")
		noPC      = flag.Bool("no-pc", false, "drop the PC-history feature")
		window    = flag.Int("window", eval.DefaultWindow, "unified-metric window")
		saveFile  = flag.String("save", "", "write trained weights to this file")

		metricsOut  = flag.String("metrics", "", "stream NDJSON metric snapshots to this file")
		metricsHTTP = flag.String("metrics-http", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
		manifest    = flag.String("manifest", "", "write a run-manifest JSON (config, seed, git ref, final metrics) to this file")
	)
	flag.Parse()

	var tr *trace.Trace
	var err error
	switch {
	case *traceFile != "":
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "voyager:", ferr)
			os.Exit(1)
		}
		tr, err = trace.Read(f)
		f.Close()
	case *bench != "":
		tr, err = workloads.Generate(*bench, workloads.Config{Seed: *seed, Scale: 1, MaxAccesses: *n})
	default:
		err = fmt.Errorf("one of -bench or -trace is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager:", err)
		os.Exit(2)
	}

	cfg := voyager.ScaledConfig()
	cfg.Seed = *seed
	cfg.Hidden = *hidden
	cfg.PassesPerEpoch = *passes
	cfg.EpochAccesses = *epoch
	cfg.Degree = *degree
	cfg.UseDeltas = !*noDeltas
	cfg.DropoutKeep = 1
	if *noPC {
		cfg.PCUse = voyager.PCNone
	}
	cfg.Schemes, err = parseSchemes(*schemes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager:", err)
		os.Exit(2)
	}

	sink, err := metrics.Start(metrics.SinkOptions{
		Tool:         "voyager",
		Config:       cfg,
		Seed:         *seed,
		StreamPath:   *metricsOut,
		HTTPAddr:     *metricsHTTP,
		ManifestPath: *manifest,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager: metrics:", err)
		os.Exit(1)
	}
	cfg.Metrics = sink.Registry()
	if addr := sink.HTTPAddr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics (pprof at /debug/pprof/)\n", addr)
	}

	fmt.Println(trace.ComputeStats(tr))
	start := time.Now()
	p, err := voyager.Train(tr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	u := eval.Unified(tr, p.Predictions(), *window, cfg.EpochAccesses)
	eval.RecordUnified(sink.Registry(), tr.Name, "voyager", u)
	fmt.Printf("trained %d samples in %v (%d params, %d bytes fp32)\n",
		p.TrainedSamples(), elapsed.Round(time.Millisecond),
		p.Model.Params().Count(), p.Model.Params().Bytes(32))
	fmt.Printf("epoch losses: ")
	for _, l := range p.EpochLosses() {
		fmt.Printf("%.4f ", l)
	}
	fmt.Println()
	fmt.Printf("unified accuracy/coverage (window %d): %.3f\n", *window, u)
	fmt.Printf("vocabulary: %s\n", p.Model.Vocab())

	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		if err := p.SaveWeights(f); err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		fmt.Printf("weights saved to %s\n", *saveFile)
	}

	if err := sink.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "voyager: metrics:", err)
		os.Exit(1)
	}
}

package arenaescape_test

import (
	"testing"

	"voyager/internal/analysis/analysistest"
	"voyager/internal/analysis/arenaescape"
)

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, arenaescape.New(), "testdata/src/arenapkg")
}

func TestArenaEscapeSkipsArenaImplementation(t *testing.T) {
	dir := "testdata/src/arenapkg"
	a := arenaescape.New(analysistest.PkgPath(dir))
	if got := analysistest.Findings(t, a, dir); len(got) != 0 {
		t.Fatalf("expected no findings in skipped package, got %v", got)
	}
}

// Command simrun drives the cache simulator over a benchmark (or a trace
// file) with a chosen prefetcher and reports IPC, accuracy and coverage.
//
// Usage:
//
//	go run ./cmd/simrun -bench pr -prefetcher isb -degree 2
//	go run ./cmd/simrun -trace pr.vygr -prefetcher none
//	go run ./cmd/simrun -bench mcf -prefetcher all
//	go run ./cmd/simrun -bench cc -prefetcher distilled -distill cc.vydt
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"voyager/internal/distill"
	"voyager/internal/label"
	"voyager/internal/metrics"
	"voyager/internal/prefetch"
	"voyager/internal/prefetch/bo"
	"voyager/internal/prefetch/distilled"
	"voyager/internal/prefetch/domino"
	"voyager/internal/prefetch/hybrid"
	"voyager/internal/prefetch/isb"
	"voyager/internal/prefetch/markov"
	"voyager/internal/prefetch/oracle"
	"voyager/internal/prefetch/sms"
	"voyager/internal/prefetch/stms"
	"voyager/internal/prefetch/stride"
	"voyager/internal/prefetch/vldp"
	"voyager/internal/sim"
	"voyager/internal/trace"
	"voyager/internal/tracing"
	"voyager/internal/vocab"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

func buildPrefetcher(name string, degree int, tr *trace.Trace, distillPath string) (prefetch.Prefetcher, error) {
	switch name {
	case "none":
		return prefetch.Nil{}, nil
	case "stms":
		return stms.New(degree), nil
	case "isb":
		return isb.NewIdeal(degree), nil
	case "isb-structural":
		return isb.NewStructural(degree), nil
	case "domino":
		return domino.New(degree), nil
	case "bo":
		return bo.New(degree), nil
	case "isb+bo":
		return hybrid.New(degree), nil
	case "next-line":
		return stride.NewNextLine(degree), nil
	case "ip-stride":
		return stride.NewIP(degree), nil
	case "markov":
		return markov.New(degree), nil
	case "vldp":
		return vldp.New(degree), nil
	case "sms":
		return sms.New(degree), nil
	case "oracle":
		return oracle.New(tr, degree, 4), nil
	case "distilled":
		// The table carries the training vocabulary's fingerprint; the
		// vocabulary rebuilt here from the same trace and default training
		// options must match, so stale tables fail loudly instead of
		// decoding garbage tokens.
		if distillPath == "" {
			return nil, fmt.Errorf("prefetcher %q needs -distill <table> (write one with cmd/voyager -distill)", name)
		}
		tab, err := distill.LoadFile(distillPath)
		if err != nil {
			return nil, err
		}
		voc := vocab.Build(tr, voyager.ScaledConfig().VocabOptions())
		return distilled.New(tab, voc, degree)
	}
	return nil, fmt.Errorf("unknown prefetcher %q", name)
}

var allPrefetchers = []string{"none", "next-line", "ip-stride", "markov", "vldp", "sms", "stms", "domino", "isb", "isb-structural", "bo", "isb+bo", "oracle"}

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark name (generates a trace)")
		traceFile = flag.String("trace", "", "binary trace file (alternative to -bench)")
		pfName    = flag.String("prefetcher", "none", "prefetcher name or 'all'")
		degree    = flag.Int("degree", 1, "prefetch degree")
		n         = flag.Int("n", 50_000, "max accesses when generating")
		seed      = flag.Int64("seed", 42, "randomness seed")
		paper     = flag.Bool("paper-caches", false, "use the full Table 3 hierarchy instead of the scaled one")
		distPath  = flag.String("distill", "", "distilled lookup table (.vydt from cmd/voyager -distill) for -prefetcher distilled")

		metricsOut  = flag.String("metrics", "", "stream NDJSON metric snapshots to this file")
		metricsHTTP = flag.String("metrics-http", "", "serve /metrics, /trace and /debug/pprof on this address (e.g. localhost:6060)")
		manifest    = flag.String("manifest", "", "write a run-manifest JSON (config, seed, git ref, final metrics) to this file")

		// -trace is the *input* memory-access trace (internal/trace);
		// -trace-out is the *output* execution-span timeline (internal/tracing).
		traceOut   = flag.String("trace-out", "", "write Chrome trace-event JSON (execution spans; open in Perfetto) to this file")
		traceClock = flag.String("trace-clock", "wall", "span timestamps: wall | logical (logical exports are byte-identical across same-seed runs)")
		provOut    = flag.String("provenance", "", "write per-prefetcher provenance tables (JSON) to this file")
	)
	flag.Parse()
	if *traceClock != "wall" && *traceClock != "logical" {
		fmt.Fprintf(os.Stderr, "simrun: -trace-clock must be wall or logical, got %q\n", *traceClock)
		os.Exit(2)
	}

	var tr *trace.Trace
	var err error
	switch {
	case *traceFile != "":
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "simrun:", ferr)
			os.Exit(1)
		}
		tr, err = trace.Read(f)
		_ = f.Close() // read-side close: the trace is already in memory
	case *bench != "":
		tr, err = workloads.Generate(*bench, workloads.Config{Seed: *seed, Scale: 1, MaxAccesses: *n})
	default:
		err = fmt.Errorf("one of -bench or -trace is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(2)
	}

	names := []string{*pfName}
	if *pfName == "all" {
		names = allPrefetchers
		// The distilled fast path joins the comparison whenever a table was
		// supplied (it cannot run without one).
		if *distPath != "" {
			names = append(append([]string{}, names...), "distilled")
		}
	}
	cfg := sim.ScaledConfig()
	if *paper {
		cfg = sim.DefaultConfig()
	}
	var tracer *tracing.Tracer
	if *traceOut != "" {
		tracer = tracing.New(tracing.Options{
			Path:       *traceOut,
			Logical:    *traceClock == "logical",
			FlushEvery: 2 * time.Second,
		})
	}
	var provSet *tracing.ProvenanceSet
	if *provOut != "" {
		provSet = tracing.NewProvenanceSet()
	}

	sink, err := metrics.Start(metrics.SinkOptions{
		Tool:         "simrun",
		Config:       cfg,
		Seed:         *seed,
		StreamPath:   *metricsOut,
		HTTPAddr:     *metricsHTTP,
		ManifestPath: *manifest,
		Handlers:     map[string]http.Handler{"/trace": tracer.Handler()},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simrun: metrics:", err)
		os.Exit(1)
	}
	if addr := sink.HTTPAddr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics (trace at /trace, pprof at /debug/pprof/)\n", addr)
	}
	var baseIPC float64
	for _, name := range names {
		pf, err := buildPrefetcher(name, *degree, tr, *distPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
			os.Exit(2)
		}
		machine := sim.NewMachine(cfg)
		machine.Instrument(sink.Registry())
		machine.Trace(tracer, "sim/"+name)
		machine.Provenance(provSet.NewLog(tr.Name + "/" + name))
		res := machine.Run(tr, pf)
		if name == "none" {
			baseIPC = res.IPC
		}
		speedup := ""
		if baseIPC > 0 && name != "none" {
			speedup = fmt.Sprintf(" speedup=%.3f", res.IPC/baseIPC)
		}
		fmt.Printf("%-16s ipc=%.3f acc=%.3f cov=%.3f issued=%d useful=%d misses=%d dram=%d%s\n",
			name, res.IPC, res.Accuracy(), res.Coverage(),
			res.PrefetchesIssued, res.PrefetchesUseful, res.LLCDemandMisses, res.DRAMRequests, speedup)
	}
	if provSet != nil {
		fmt.Println(provSet.Report(label.SchemeNames()))
		if err := provSet.WriteFile(*provOut, label.SchemeNames()); err != nil {
			fmt.Fprintln(os.Stderr, "simrun: provenance:", err)
			os.Exit(1)
		}
		fmt.Printf("provenance written to %s\n", *provOut)
	}
	if err := tracer.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "simrun: tracing:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		fmt.Printf("trace written to %s (open in https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "simrun: metrics:", err)
		os.Exit(1)
	}
}

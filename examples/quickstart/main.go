// Quickstart: train Voyager on a small PageRank trace and inspect its
// predictions — the minimal end-to-end use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"voyager/internal/eval"
	"voyager/internal/trace"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

func main() {
	// 1. Generate a memory-access trace: the GAP PageRank kernel running
	//    over a Kronecker graph, recorded load by load.
	tr, err := workloads.Generate("pr", workloads.Config{
		Seed:        1,
		Scale:       1,
		MaxAccesses: 12_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trace:", trace.ComputeStats(tr))

	// 2. Train Voyager with the paper's online protocol: the model trains
	//    on each epoch and predicts the next one.
	cfg := voyager.ScaledConfig()
	cfg.EpochAccesses = 3_000
	cfg.DropoutKeep = 1
	p, err := voyager.Train(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d parameters (%d KB fp32), vocabulary %v\n",
		p.Model.Params().Count(), p.Model.Params().Bytes(32)/1024, p.Model.Vocab())
	fmt.Printf("per-epoch training loss: %.4f\n", p.EpochLosses())

	// 3. Evaluate with the paper's unified accuracy/coverage metric.
	u := eval.Unified(tr, p.Predictions(), eval.DefaultWindow, cfg.EpochAccesses)
	fmt.Printf("unified accuracy/coverage: %.1f%%\n", 100*u)

	// 4. Peek at a few predictions.
	fmt.Println("\nsample predictions (trigger -> predicted next line):")
	shown := 0
	for i := cfg.EpochAccesses; i < tr.Len() && shown < 5; i++ {
		preds := p.Predictions()[i]
		if len(preds) == 0 {
			continue
		}
		fmt.Printf("  access %5d: line %#x -> prefetch line %#x\n",
			i, trace.Line(tr.Accesses[i].Addr), trace.Line(preds[0]))
		shown++
	}
}

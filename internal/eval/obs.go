package eval

import (
	"strings"

	"voyager/internal/metrics"
	"voyager/internal/trace"
	"voyager/internal/tracing"
)

// RecordUnified exports one unified accuracy/coverage measurement as a
// gauge named eval_unified.<benchmark>.<prefetcher> (empty parts are
// dropped). No-op with a nil registry.
func RecordUnified(reg *metrics.Registry, benchmark, prefetcher string, v float64) {
	reg.Gauge(metricKey("eval_unified", benchmark, prefetcher)).Set(v)
}

// Record exports the breakdown as gauges: eval_coverage.<bench>.<pf> plus
// one eval_frac.<bench>.<pf>.<kind> gauge per pattern category. No-op with
// a nil registry.
func (b BreakdownResult) Record(reg *metrics.Registry) {
	reg.Gauge(metricKey("eval_coverage", b.Benchmark, b.Prefetcher)).Set(b.Coverage())
	for k := PatternKind(0); k < NumPatternKinds; k++ {
		reg.Gauge(metricKey("eval_frac", b.Benchmark, b.Prefetcher, k.String())).Set(b.Frac[k])
	}
}

// MarkProvenance scores every decision in the log against the unified
// metric's matching rule (Unified, same window and skip): a decision is an
// eval hit when its predicted line is demanded within the next `window`
// accesses of its trigger. Decision indices must be positions in tr's
// access stream — call this before any Reindex to the raw-trace domain.
// Unlike Unified, which scores only each access's top prediction, every
// ranked decision is marked, so per-scheme eval hit counts cover the full
// degree. No-op on a nil log.
func MarkProvenance(tr *trace.Trace, window, skip int, log *tracing.DecisionLog) {
	if log == nil {
		return
	}
	n := tr.Len()
	for id, d := range log.Decisions() {
		i := d.Index
		if i < skip || i >= n {
			continue
		}
		hi := i + 1 + window
		if hi > n {
			hi = n
		}
		for j := i + 1; j < hi; j++ {
			if trace.Line(tr.Accesses[j].Addr) == d.Line {
				log.SetEvalHit(id)
				break
			}
		}
	}
}

// metricKey joins non-empty name parts with dots.
func metricKey(parts ...string) string {
	kept := parts[:0:0]
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, ".")
}

package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseFunc returns the *ast.FuncDecl named name from src.
func parseFunc(t *testing.T, src, name string) *ast.FuncDecl {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

// callsVisible runs a may-analysis collecting the set of function names
// called on some path, and returns the set reaching the exit block.
func callsVisible(g *Graph) []string {
	type fact = map[string]bool
	fw := Forward[fact]{
		Init: fact{},
		Join: func(a, b fact) fact {
			m := make(fact, len(a)+len(b))
			for k := range a {
				m[k] = true
			}
			for k := range b {
				m[k] = true
			}
			return m
		},
		Transfer: func(b *Block, in fact) fact {
			m := make(fact, len(in))
			for k := range in {
				m[k] = true
			}
			for _, n := range b.Nodes {
				Inspect(n, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok {
							m[id.Name] = true
						}
					}
					return true
				})
			}
			return m
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
	in, _ := fw.Run(g)
	var names []string
	for k := range in[g.Exit()] {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func TestPanicBranchDoesNotReachExit(t *testing.T) {
	fn := parseFunc(t, `
func f(c bool) {
	a()
	if c {
		b()
	} else {
		e()
		panic("boom")
	}
	d()
}`, "f")
	g := Build(fn)
	got := strings.Join(callsVisible(g), ",")
	// e() runs only on the panic path, which never reaches the exit.
	if got != "a,b,d" {
		t.Fatalf("calls reaching exit = %q, want a,b,d", got)
	}
	// The panic block itself must be reachable but not exit-reaching.
	foundCold := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "e" {
						foundCold = true
						if g.ReachesExit(blk) {
							t.Errorf("block with e() should not reach exit")
						}
						if !g.Reachable(blk) {
							t.Errorf("block with e() should be reachable")
						}
					}
				}
				return true
			})
		}
	}
	if !foundCold {
		t.Fatal("did not find the e() block")
	}
}

func TestLoopConverges(t *testing.T) {
	fn := parseFunc(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 5 {
			break
		}
		body()
	}
	after()
}`, "f")
	got := strings.Join(callsVisible(Build(fn)), ",")
	if got != "after,body" {
		t.Fatalf("calls reaching exit = %q, want after,body", got)
	}
}

func TestRangeAndSwitch(t *testing.T) {
	fn := parseFunc(t, `
func f(xs []int, k int) {
	for _, x := range xs {
		use(x)
	}
	switch k {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
	done()
}`, "f")
	got := strings.Join(callsVisible(Build(fn)), ",")
	if got != "done,one,other,two,use" {
		t.Fatalf("calls reaching exit = %q", got)
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	fn := parseFunc(t, `
func f() {
	setup()
	for {
		spin()
	}
}`, "f")
	g := Build(fn)
	if g.Reachable(g.Exit()) {
		t.Fatal("exit of `for {}` should be unreachable")
	}
	// No facts at exit, and the setup block must not reach exit.
	if got := callsVisible(g); got != nil {
		t.Fatalf("facts leaked to unreachable exit: %v", got)
	}
}

func TestGotoAndLabeledBreak(t *testing.T) {
	fn := parseFunc(t, `
func f(c bool) {
	if c {
		goto done
	}
	work()
outer:
	for {
		for {
			inner()
			break outer
		}
	}
done:
	cleanup()
}`, "f")
	got := strings.Join(callsVisible(Build(fn)), ",")
	if got != "cleanup,inner,work" {
		t.Fatalf("calls reaching exit = %q, want cleanup,inner,work", got)
	}
}

func TestDefersCollectedAndSelect(t *testing.T) {
	fn := parseFunc(t, `
func f(ch chan int) {
	defer closeIt()
	defer flush()
	select {
	case v := <-ch:
		use(v)
	case ch <- 1:
		sent()
	}
}`, "f")
	g := Build(fn)
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	got := strings.Join(callsVisible(g), ",")
	// Deferred calls sit in their blocks too (position/order for
	// analyzers), so closeIt/flush appear alongside both select arms.
	if got != "closeIt,flush,sent,use" {
		t.Fatalf("calls reaching exit = %q", got)
	}
}

func TestFuncLitNotInlined(t *testing.T) {
	fn := parseFunc(t, `
func f() {
	g := func() { hidden() }
	g()
	visible()
}`, "f")
	got := strings.Join(callsVisible(Build(fn)), ",")
	// hidden() belongs to the literal's own CFG, not to f's blocks.
	if got != "g,visible" {
		t.Fatalf("calls reaching exit = %q, want g,visible", got)
	}
}

func TestOsExitTerminates(t *testing.T) {
	fn := parseFunc(t, `
func f(err error) {
	if err != nil {
		report()
		os.Exit(1)
	}
	ok()
}`, "f")
	got := strings.Join(callsVisible(Build(fn)), ",")
	if got != "ok" {
		t.Fatalf("calls reaching exit = %q, want ok", got)
	}
}

package markov

import (
	"testing"

	"voyager/internal/trace"
)

func acc(line uint64) trace.Access {
	return trace.Access{PC: 1, Addr: line << trace.LineBits}
}

func TestLearnsFrequencyRankedSuccessors(t *testing.T) {
	p := New(2)
	// 10 is followed by 20 three times and by 30 once.
	seq := []uint64{10, 20, 10, 20, 10, 30, 10, 20}
	for i, l := range seq {
		p.Access(i, acc(l))
	}
	out := p.Access(100, acc(10))
	if len(out) != 2 {
		t.Fatalf("want 2 candidates, got %v", out)
	}
	if trace.Line(out[0]) != 20 {
		t.Fatalf("most frequent successor should rank first: %v", out)
	}
	if trace.Line(out[1]) != 30 {
		t.Fatalf("second successor: %v", out)
	}
}

func TestLFUReplacement(t *testing.T) {
	p := New(4)
	// Successors 1..4 once each, then 5 displaces the weakest.
	seq := []uint64{10, 1, 10, 2, 10, 3, 10, 4, 10, 5}
	for i, l := range seq {
		p.Access(i, acc(l))
	}
	out := p.Access(99, acc(10))
	if len(out) != 4 {
		t.Fatalf("list size %d", len(out))
	}
	found5 := false
	for _, a := range out {
		if trace.Line(a) == 5 {
			found5 = true
		}
	}
	if !found5 {
		t.Fatalf("new successor not inserted: %v", out)
	}
	if p.Entries() == 0 {
		t.Fatalf("no entries")
	}
}

func TestDegreeCapsOutput(t *testing.T) {
	p := New(1)
	seq := []uint64{10, 20, 10, 30, 10}
	var out []uint64
	for i, l := range seq {
		out = p.Access(i, acc(l))
	}
	if len(out) != 1 {
		t.Fatalf("degree-1 emitted %d", len(out))
	}
	if p.Name() != "markov" {
		t.Fatalf("name")
	}
}

func TestColdStart(t *testing.T) {
	p := New(1)
	if out := p.Access(0, acc(1)); out != nil {
		t.Fatalf("cold prediction %v", out)
	}
}

// Command prefetchd is the long-running prefetch-as-a-service daemon: it
// loads (or trains) a Voyager model — and optionally a distilled .vydt
// table as the low-latency fast tier — then serves predictions to many
// concurrent trace streams over the length-prefixed TCP protocol in
// internal/serve, with batched model inference, idle-session eviction,
// /metrics SLO histograms, and graceful drain on SIGINT/SIGTERM.
//
// The same binary is the load generator: -replay connects N concurrent
// client streams to a running daemon and reports client-side round-trip
// latency percentiles.
//
// Usage:
//
//	go run ./cmd/voyager  -bench cc -n 24000 -save cc.w -distill cc.vydt
//	go run ./cmd/prefetchd -bench cc -n 24000 -weights cc.w -table cc.vydt -listen :7011
//	go run ./cmd/prefetchd -replay localhost:7011 -bench cc -n 24000 -streams 8 -fast
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"voyager/internal/distill"
	"voyager/internal/metrics"
	"voyager/internal/serve"
	"voyager/internal/serve/quality"
	"voyager/internal/trace"
	"voyager/internal/tracing"
	"voyager/internal/vocab"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark name (generates the trace the vocabulary/model are built from)")
		traceFile = flag.String("trace", "", "binary trace file instead of -bench")
		n         = flag.Int("n", 24_000, "max accesses when generating")
		seed      = flag.Int64("seed", 42, "randomness seed (must match the training run when loading weights)")
		hidden    = flag.Int("hidden", 64, "LSTM units (must match when loading weights)")
		degree    = flag.Int("degree", 1, "prefetch degree")
		noDeltas  = flag.Bool("no-deltas", false, "disable the delta vocabulary (must match when loading weights)")
		passes    = flag.Int("passes", 4, "training passes per epoch (in-process training only)")
		epoch     = flag.Int("epoch", 6_000, "epoch length in accesses (in-process training only)")
		weights   = flag.String("weights", "", "load trained weights (from voyager -save) instead of training in-process")
		tableFile = flag.String("table", "", "distilled .vydt table for the fast tier (from voyager -distill)")

		listen    = flag.String("listen", "localhost:7011", "TCP listen address")
		maxBatch  = flag.Int("max-batch", 32, "max rows coalesced into one PredictBatch call")
		maxWaitUS = flag.Int("max-wait-us", 200, "max microseconds the batcher waits to fill a batch (0 = greedy)")
		replicas  = flag.Int("replicas", 1, "data-parallel inference replicas (-1 = all CPUs)")
		idleEvict = flag.Duration("idle-evict", 2*time.Minute, "evict sessions idle this long (0 = never)")

		metricsHTTP = flag.String("metrics-http", "", "serve /metrics and /debug/pprof on this address")
		metricsOut  = flag.String("metrics", "", "stream NDJSON metric snapshots to this file")
		traceOut    = flag.String("trace-out", "", "write Chrome trace-event JSON of the request lifecycle to this file on shutdown (replay mode: client-side spans, linkable to the server trace via tracecheck -merge)")

		qualityOn   = flag.Bool("quality", false, "online quality telemetry: score every prediction against the next demand accesses (server: /quality endpoint; replay: scoreboard on exit)")
		shadowEvery = flag.Int("shadow-every", 0, "re-run 1-in-N fast-tier requests through the model off the latency path and track agreement (0 = off; needs -quality)")
		windowEvery = flag.Int("quality-window", 0, "rotate the rolling quality windows every N settled outcomes (0 = default)")

		replay  = flag.String("replay", "", "client mode: replay the trace against a daemon at this address")
		streams = flag.Int("streams", 4, "concurrent client streams (replay mode)")
		fast    = flag.Bool("fast", false, "request the distilled fast tier (replay mode)")
		perStr  = flag.Int("per-stream", 0, "accesses each stream replays (0 = whole trace)")
	)
	flag.Parse()

	tr, err := loadTrace(*traceFile, *bench, *seed, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prefetchd:", err)
		os.Exit(2)
	}

	if *replay != "" {
		err := runReplay(replayOptions{
			addr: *replay, streams: *streams, perStream: *perStr, fast: *fast,
			quality: *qualityOn, windowEvery: *windowEvery, traceOut: *traceOut,
		}, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prefetchd:", err)
			os.Exit(1)
		}
		return
	}

	cfg := voyager.ScaledConfig()
	cfg.Seed = *seed
	cfg.Hidden = *hidden
	cfg.Degree = *degree
	cfg.UseDeltas = !*noDeltas
	cfg.DropoutKeep = 1
	cfg.PassesPerEpoch = *passes
	cfg.EpochAccesses = *epoch
	cfg.Workers = *replicas

	var tracer *tracing.Tracer
	if *traceOut != "" {
		tracer = tracing.New(tracing.Options{Path: *traceOut})
	}

	// The quality tracker registers its rolling instruments in the sink
	// registry (so /metrics carries the raw counters) while /quality serves
	// the assembled scoreboard. The registry only exists after metrics.Start,
	// so /quality reads the tracker through an atomic pointer; until it is
	// stored — or always, when -quality is off — the nil tracker's Handler
	// answers 404 with a hint.
	var trackerPtr atomic.Pointer[quality.Tracker]

	sink, err := metrics.Start(metrics.SinkOptions{
		Tool:       "prefetchd",
		Config:     cfg,
		Seed:       *seed,
		StreamPath: *metricsOut,
		HTTPAddr:   *metricsHTTP,
		Handlers: map[string]http.Handler{
			"/trace": tracer.Handler(),
			"/quality": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				trackerPtr.Load().Handler().ServeHTTP(w, r)
			}),
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "prefetchd: metrics:", err)
		os.Exit(1)
	}
	cfg.Metrics = sink.Registry()
	var tracker *quality.Tracker
	if *qualityOn {
		qreg := sink.Registry()
		if qreg == nil {
			// No sink configured: the tracker still needs live instruments
			// for the drain scoreboard, just nobody else reads them.
			qreg = metrics.NewRegistry()
		}
		tracker = quality.New(quality.Config{
			ShadowEvery: *shadowEvery,
			WindowEvery: *windowEvery,
			Metrics:     qreg,
		})
		trackerPtr.Store(tracker)
	} else if *shadowEvery > 0 {
		fmt.Fprintln(os.Stderr, "prefetchd: -shadow-every needs -quality")
		os.Exit(2)
	}
	if addr := sink.HTTPAddr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics (trace at /trace, quality at /quality, pprof at /debug/pprof/)\n", addr)
	}

	model, err := buildModel(tr, cfg, *weights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prefetchd:", err)
		os.Exit(1)
	}

	var tab *distill.Table
	if *tableFile != "" {
		tab, err = distill.LoadFile(*tableFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prefetchd:", err)
			os.Exit(1)
		}
		fmt.Printf("fast tier: %s\n", tab)
	}

	srv, err := serve.New(serve.Config{
		Model:       model,
		Table:       tab,
		Degree:      *degree,
		MaxBatch:    *maxBatch,
		MaxWait:     time.Duration(*maxWaitUS) * time.Microsecond,
		IdleTimeout: *idleEvict,
		Metrics:     sink.Registry(),
		Tracer:      tracer,
		Quality:     tracker,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "prefetchd:", err)
		os.Exit(1)
	}
	if err := srv.Start(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "prefetchd:", err)
		os.Exit(1)
	}
	fmt.Printf("prefetchd: serving on %s (max-batch %d, max-wait %dµs, degree %d)\n",
		srv.Addr(), *maxBatch, *maxWaitUS, *degree)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigs
	fmt.Printf("prefetchd: %v — draining\n", sig)
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "prefetchd: close:", err)
	}
	if tracker != nil {
		fmt.Println(tracker.Report())
	}
	if err := tracer.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "prefetchd: tracing:", err)
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "prefetchd: metrics:", err)
	}
}

// loadTrace reads or generates the access trace both modes replay.
func loadTrace(traceFile, bench string, seed int64, n int) (*trace.Trace, error) {
	switch {
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		tr, err := trace.Read(f)
		_ = f.Close() // read-side close: the trace is already in memory
		return tr, err
	case bench != "":
		return workloads.Generate(bench, workloads.Config{Seed: seed, Scale: 1, MaxAccesses: n})
	default:
		return nil, fmt.Errorf("one of -bench or -trace is required")
	}
}

// buildModel loads saved weights into a fresh model (vocabulary rebuilt
// deterministically from the trace) or trains in-process when no weights
// file was given.
func buildModel(tr *trace.Trace, cfg voyager.Config, weights string) (*voyager.Model, error) {
	if weights == "" {
		fmt.Println("prefetchd: no -weights given; training in-process")
		start := time.Now()
		p, err := voyager.Train(tr, cfg)
		if err != nil {
			return nil, err
		}
		fmt.Printf("prefetchd: trained %d samples in %v\n",
			p.TrainedSamples(), time.Since(start).Round(time.Millisecond))
		return p.Model, nil
	}
	voc := vocab.Build(tr, cfg.VocabOptions())
	m := voyager.NewModel(cfg, voc)
	f, err := os.Open(weights)
	if err != nil {
		return nil, err
	}
	loadErr := m.LoadWeights(f)
	_ = f.Close() // read-side close: weights already deserialized
	if loadErr != nil {
		return nil, fmt.Errorf("load %s: %w (config/trace must match the training run)", weights, loadErr)
	}
	fmt.Printf("prefetchd: loaded weights from %s (%s)\n", weights, voc)
	return m, nil
}

// replayOptions collects the client-mode knobs.
type replayOptions struct {
	addr        string
	streams     int
	perStream   int
	fast        bool
	quality     bool   // score responses client-side, print the scoreboard
	windowEvery int    // quality window rotation period (0 = default)
	traceOut    string // write client-side rpc spans here (trace context on the wire)
}

// runReplay drives a running daemon with concurrent client streams and
// reports client-side round-trip latency. With -quality it scores every
// response against the stream's own upcoming accesses — the client knows
// its future, so this is the ground-truth scoreboard for the replayed
// trace. With -trace-out each request carries a trace context and is
// wrapped in a client-side async span; tracecheck -merge folds the export
// and the server's -trace-out into one cross-process timeline.
func runReplay(o replayOptions, tr *trace.Trace) error {
	if o.streams < 1 {
		o.streams = 1
	}
	nAcc := len(tr.Accesses)
	if o.perStream <= 0 || o.perStream > nAcc {
		o.perStream = nAcc
	}
	tier := "model"
	if o.fast {
		tier = "fast"
	}
	fmt.Printf("replaying %d accesses x %d streams against %s (%s tier)\n", o.perStream, o.streams, o.addr, tier)

	var tracker *quality.Tracker
	if o.quality {
		tracker = quality.New(quality.Config{
			WindowEvery: o.windowEvery,
			Metrics:     metrics.NewRegistry(),
		})
	}
	var tracer *tracing.Tracer
	if o.traceOut != "" {
		tracer = tracing.New(tracing.Options{Path: o.traceOut})
	}

	lats := make([][]int64, o.streams)
	errs := make([]error, o.streams)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < o.streams; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := serve.Dial(o.addr)
			if err != nil {
				errs[id] = err
				return
			}
			defer func() { _ = cl.Close() }()
			qs := tracker.NewSession()
			var rpcTk *tracing.Track
			if tracer != nil {
				rpcTk = tracer.Track("rpc", fmt.Sprintf("stream-%d", id))
			}
			lat := make([]int64, 0, o.perStream)
			for j := 0; j < o.perStream; j++ {
				a := tr.Accesses[j]
				var r *serve.Response
				var err error
				t0 := time.Now()
				if rpcTk != nil {
					// Span ids are unique per request across the whole
					// replay; the server stamps its marks with the same id.
					spanID := uint64(id)<<32 | uint64(j+1)
					rpcTk.AsyncBegin("predict", spanID)
					r, err = cl.PredictTraced(uint64(id), a.PC, a.Addr, o.fast, uint64(id)+1, spanID)
					rpcTk.AsyncEnd("predict", spanID)
				} else {
					r, err = cl.Predict(uint64(id), a.PC, a.Addr, o.fast)
				}
				if err != nil {
					errs[id] = err
					return
				}
				lat = append(lat, time.Since(t0).Nanoseconds())
				scoreReply(qs, a.Addr, r)
			}
			lats[id] = lat
			qs.Close()
			errs[id] = cl.CloseStream(uint64(id))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []int64
	for i, l := range lats {
		if errs[i] != nil {
			return fmt.Errorf("stream %d: %w", i, errs[i])
		}
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p*float64(len(all))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(all) {
			i = len(all) - 1
		}
		return time.Duration(all[i])
	}
	fmt.Printf("%d requests in %v (%.0f req/s)\n",
		len(all), elapsed.Round(time.Millisecond), float64(len(all))/elapsed.Seconds())
	fmt.Printf("round-trip latency: p50 %v  p90 %v  p99 %v  max %v\n",
		q(0.50), q(0.90), q(0.99), q(1.0))
	if tracker != nil {
		fmt.Println(tracker.Report())
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("tracing: %w", err)
		}
		fmt.Printf("client trace: %s (merge with the server's via tracecheck -merge)\n", o.traceOut)
	}
	return nil
}

// scoreReply feeds one response into the client-side quality session: the
// accessed cache line plus the candidate lines the server predicted.
// No-op when scoring is off (nil session).
func scoreReply(qs *quality.Session, addr uint64, r *serve.Response) {
	if qs == nil {
		return
	}
	lines := make([]uint64, 0, len(r.Cands))
	for _, c := range r.Cands {
		if c.Addr != 0 {
			lines = append(lines, c.Addr>>trace.LineBits)
		}
	}
	tier := quality.TierModel
	if r.Tier == serve.TierFast {
		tier = quality.TierFast
	}
	qs.Score(addr>>trace.LineBits, lines, tier)
}

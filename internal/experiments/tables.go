package experiments

import (
	"fmt"
	"strings"

	"voyager/internal/sim"
	"voyager/internal/trace"
	"voyager/internal/voyager"
)

// Table1 renders the paper's Table 1 (Voyager hyperparameters) for both the
// paper configuration and the scaled configuration this harness trains.
func Table1() string {
	p := voyager.PaperConfig()
	s := voyager.ScaledConfig()
	var b strings.Builder
	b.WriteString("Table 1: Hyperparameters for training Voyager\n")
	row := func(name string, pv, sv interface{}) {
		fmt.Fprintf(&b, "  %-38s %-12v %v\n", name, pv, sv)
	}
	fmt.Fprintf(&b, "  %-38s %-12s %s\n", "", "paper", "scaled")
	row("Sequence length (history length)", p.SeqLen, s.SeqLen)
	row("Learning rate", p.LearningRate, s.LearningRate)
	row("Learning rate decay ratio", p.DecayRatio, s.DecayRatio)
	row("Embedding size for PC", p.PCEmbed, s.PCEmbed)
	row("Embedding size of page", p.PageEmbed, s.PageEmbed)
	row("Embedding size of offset", p.OffsetEmbed(), s.OffsetEmbed())
	row("# Experts", p.Experts, s.Experts)
	row("Page and offset LSTM # layers", 1, 1)
	row("Page and offset LSTM # units", p.Hidden, s.Hidden)
	row("Dropout keep ratio", p.DropoutKeep, s.DropoutKeep)
	row("Batch size", p.BatchSize, s.BatchSize)
	row("Optimizer", "Adam", "Adam")
	return b.String()
}

// Table2Row is one benchmark-statistics row.
type Table2Row struct {
	Stats trace.Stats
}

// Table2Result holds the benchmark statistics (paper Table 2).
type Table2Result struct {
	Rows []Table2Row
}

// Table2 computes the benchmark statistics over every benchmark's trace.
func (r *Run) Table2() *Table2Result {
	res := &Table2Result{}
	for _, name := range r.Opts.benchList(benchNamesAll()) {
		tr := r.Opts.traceFor(r.cache, name)
		res.Rows = append(res.Rows, Table2Row{Stats: trace.ComputeStats(tr)})
	}
	return res
}

// String renders Table 2.
func (t *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: Benchmark statistics\n")
	fmt.Fprintf(&b, "  %-10s %8s %12s %8s %10s\n", "Benchmark", "# PCs", "# Addresses", "# Pages", "Accesses")
	for _, row := range t.Rows {
		s := row.Stats
		fmt.Fprintf(&b, "  %-10s %8d %12d %8d %10d\n", s.Name, s.PCs, s.Addresses, s.Pages, s.Accesses)
	}
	return b.String()
}

// Table3 renders the simulation configuration (paper Table 3).
func Table3() string {
	return "Table 3: Simulation configuration\n" + sim.DefaultConfig().String() + "\n" +
		"DRAM         tRP=tRCD=tCAS=20, 2 channels, 8 ranks x 8 banks,\n" +
		"             32K rows, 8 GB/s per core\n"
}

func benchNamesAll() []string {
	return allNames
}

package experiments

import (
	"fmt"
	"strings"

	"voyager/internal/eval"
	"voyager/internal/label"
	"voyager/internal/prefetch"
	"voyager/internal/prefetch/hybrid"
	"voyager/internal/prefetch/isb"
	"voyager/internal/prefetch/stms"
	"voyager/internal/sim"
	"voyager/internal/voyager"
)

// Figure9Result is the degree-sensitivity study (paper Figure 9): average
// coverage at degrees 1-8 for Voyager, ISB, and the ISB+BO hybrid.
type Figure9Result struct {
	Degrees  []int
	Coverage map[string][]float64 // prefetcher → coverage per degree
}

// Figure9 sweeps prefetch degree over the simulatable benchmarks. Voyager
// is trained once per benchmark with degree-8 predictions and truncated.
func (r *Run) Figure9() *Figure9Result {
	degrees := []int{1, 2, 4, 8}
	res := &Figure9Result{
		Degrees:  degrees,
		Coverage: map[string][]float64{"voyager": {}, "isb": {}, "isb+bo": {}},
	}
	cfg := sim.ScaledConfig()
	benches := r.Opts.benchList(simNames)
	for _, d := range degrees {
		var voySum, isbSum, hybSum float64
		for _, name := range benches {
			tr := r.Opts.traceFor(r.cache, name)
			st := r.streamFor(name)
			vp := r.voyagerFor(name)
			voy := sim.Simulate(tr, &prefetch.Precomputed{
				Label: "voyager", Predictions: st.mapToOriginal(tr.Len(), truncate(vp.Predictions(), d))}, cfg)
			isbRes := sim.Simulate(tr, isb.NewIdeal(d), cfg)
			hybRes := sim.Simulate(tr, hybrid.New(d), cfg)
			voySum += voy.Coverage()
			isbSum += isbRes.Coverage()
			hybSum += hybRes.Coverage()
		}
		n := float64(len(benches))
		res.Coverage["voyager"] = append(res.Coverage["voyager"], voySum/n)
		res.Coverage["isb"] = append(res.Coverage["isb"], isbSum/n)
		res.Coverage["isb+bo"] = append(res.Coverage["isb+bo"], hybSum/n)
		r.Opts.logf("figure 9: degree %d done", d)
	}
	return res
}

// String renders Figure 9 as coverage series.
func (f *Figure9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: Sensitivity to prefetch degree (mean coverage)\n")
	fmt.Fprintf(&b, "  %-8s", "degree")
	for _, d := range f.Degrees {
		fmt.Fprintf(&b, " %8d", d)
	}
	b.WriteString("\n")
	for _, p := range []string{"voyager", "isb", "isb+bo"} {
		fmt.Fprintf(&b, "  %-8s", p)
		for _, v := range f.Coverage[p] {
			fmt.Fprintf(&b, " %8.3f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BreakdownBenchmarks is the default subset for Figures 10/11 (each extra
// benchmark costs one additional Voyager-without-delta training).
var BreakdownBenchmarks = []string{"bfs", "cc", "mcf", "pr", "soplex"}

// Figure1011Result is the access-pattern breakdown of ISB (Figure 10) and
// Voyager w/o delta (Figure 11).
type Figure1011Result struct {
	ISB     []eval.BreakdownResult
	Voyager []eval.BreakdownResult
}

// Figure1011 classifies covered/uncovered patterns for idealized ISB and
// the delta-free Voyager ablation.
func (r *Run) Figure1011() *Figure1011Result {
	res := &Figure1011Result{}
	for _, name := range r.Opts.benchList(BreakdownBenchmarks) {
		tr := r.streamFor(name).Trace
		skip := r.Opts.epochLen(tr.Len())
		r.Opts.logf("figure 10/11: %s", name)
		isbPreds := eval.CollectPredictions(tr, isb.NewIdeal(1))
		bi := eval.Breakdown(tr, isbPreds, r.Opts.Window, skip)
		bi.Prefetcher = "isb"
		res.ISB = append(res.ISB, bi)

		cfg := r.Opts.voyagerConfig(tr.Len())
		cfg.UseDeltas = false
		p, err := voyager.Train(tr, cfg)
		if err != nil {
			panic(err)
		}
		bv := eval.Breakdown(tr, p.Predictions(), r.Opts.Window, skip)
		bv.Prefetcher = "voyager-w/o-delta"
		res.Voyager = append(res.Voyager, bv)
	}
	return res
}

// String renders Figures 10 and 11.
func (f *Figure1011Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: Breakdown of the patterns of ISB\n")
	for _, row := range f.ISB {
		fmt.Fprintf(&b, "  %s\n", row)
	}
	b.WriteString("Figure 11: Breakdown of the patterns of Voyager w/o delta\n")
	for _, row := range f.Voyager {
		fmt.Fprintf(&b, "  %s\n", row)
	}
	return b.String()
}

// Figure12Result is the feature study (paper Figure 12): single-label
// Voyager variants against the table prefetcher with the same label.
type Figure12Result struct {
	Rows []Figure12Row
}

// Figure12Row holds one benchmark's feature-study values.
type Figure12Row struct {
	Benchmark           string
	STMS, VoyagerGlobal float64
	ISB, VoyagerPC      float64
	VoyagerPCNoPCHist   float64
}

// Figure12 compares features: STMS vs Voyager-global (same label, richer
// features), ISB vs Voyager-PC, and Voyager-PC with/without the PC-history
// feature.
func (r *Run) Figure12() *Figure12Result {
	res := &Figure12Result{}
	for _, name := range r.Opts.benchList(AblationBenchmarks) {
		tr := r.streamFor(name).Trace
		skip := r.Opts.epochLen(tr.Len())
		r.Opts.logf("figure 12: %s", name)
		row := Figure12Row{Benchmark: name}
		row.STMS = eval.Unified(tr, eval.CollectPredictions(tr, stms.New(1)), r.Opts.Window, skip)
		row.ISB = eval.Unified(tr, eval.CollectPredictions(tr, isb.NewIdeal(1)), r.Opts.Window, skip)

		variants := []struct {
			out     *float64
			schemes []label.Scheme
			pc      voyager.PCFeature
		}{
			{&row.VoyagerGlobal, []label.Scheme{label.Global}, voyager.PCHistory},
			{&row.VoyagerPC, []label.Scheme{label.PC}, voyager.PCHistory},
			{&row.VoyagerPCNoPCHist, []label.Scheme{label.PC}, voyager.PCNone},
		}
		for _, v := range variants {
			cfg := r.Opts.voyagerConfig(tr.Len())
			cfg.Schemes = v.schemes
			cfg.PCUse = v.pc
			p, err := voyager.Train(tr, cfg)
			if err != nil {
				panic(err)
			}
			*v.out = eval.Unified(tr, p.Predictions(), r.Opts.Window, skip)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders Figure 12.
func (f *Figure12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12: Comparison of different features (unified acc/cov)\n")
	fmt.Fprintf(&b, "  %-10s %8s %12s %8s %12s %14s\n",
		"benchmark", "stms", "voy-global", "isb", "voy-pc", "voy-pc-noPChist")
	var s [5]float64
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "  %-10s %8.3f %12.3f %8.3f %12.3f %14.3f\n",
			row.Benchmark, row.STMS, row.VoyagerGlobal, row.ISB, row.VoyagerPC, row.VoyagerPCNoPCHist)
		s[0] += row.STMS
		s[1] += row.VoyagerGlobal
		s[2] += row.ISB
		s[3] += row.VoyagerPC
		s[4] += row.VoyagerPCNoPCHist
	}
	n := float64(len(f.Rows))
	fmt.Fprintf(&b, "  %-10s %8.3f %12.3f %8.3f %12.3f %14.3f\n",
		"mean", s[0]/n, s[1]/n, s[2]/n, s[3]/n, s[4]/n)
	return b.String()
}

// Figure15Result is the labeling-scheme study (paper Figure 15).
type Figure15Result struct {
	Schemes []string
	Rows    []Figure15Row
}

// Figure15Row holds per-benchmark unified acc/cov per labeling scheme.
type Figure15Row struct {
	Benchmark string
	Values    []float64 // one per scheme + final multi-label
}

// Figure15 trains one single-scheme Voyager per labeling scheme plus the
// multi-label model and compares unified accuracy/coverage.
func (r *Run) Figure15() *Figure15Result {
	schemes := label.AllSchemes()
	res := &Figure15Result{}
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.String())
	}
	res.Schemes = append(res.Schemes, "multi-label")
	for _, name := range r.Opts.benchList(AblationBenchmarks) {
		tr := r.streamFor(name).Trace
		skip := r.Opts.epochLen(tr.Len())
		r.Opts.logf("figure 15: %s", name)
		row := Figure15Row{Benchmark: name}
		for _, s := range schemes {
			cfg := r.Opts.voyagerConfig(tr.Len())
			cfg.Schemes = []label.Scheme{s}
			p, err := voyager.Train(tr, cfg)
			if err != nil {
				panic(err)
			}
			row.Values = append(row.Values, eval.Unified(tr, p.Predictions(), r.Opts.Window, skip))
		}
		vp := r.voyagerFor(name) // multi-label main model
		row.Values = append(row.Values, eval.Unified(tr, truncate(vp.Predictions(), 1), r.Opts.Window, skip))
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders Figure 15.
func (f *Figure15Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 15: Comparison of different labeling schemes (unified acc/cov)\n")
	fmt.Fprintf(&b, "  %-10s", "benchmark")
	for _, s := range f.Schemes {
		fmt.Fprintf(&b, " %13s", s)
	}
	b.WriteString("\n")
	sums := make([]float64, len(f.Schemes))
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "  %-10s", row.Benchmark)
		for i, v := range row.Values {
			sums[i] += v
			fmt.Fprintf(&b, " %13.3f", v)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-10s", "mean")
	for _, s := range sums {
		fmt.Fprintf(&b, " %13.3f", s/float64(len(f.Rows)))
	}
	b.WriteString("\n")
	return b.String()
}

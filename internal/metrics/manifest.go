package metrics

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// Manifest is the machine-readable record of one run, written as a single
// JSON file so experiments can be compared and reproduced: the tool and its
// configuration, the seed, the source revision, the execution environment,
// and the final metric snapshot.
type Manifest struct {
	Tool       string    `json:"tool"`
	Args       []string  `json:"args,omitempty"`
	Config     any       `json:"config,omitempty"`
	Seed       int64     `json:"seed"`
	GitRef     string    `json:"git_ref"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	StartTime  string    `json:"start_time"`
	EndTime    string    `json:"end_time,omitempty"`
	WallSec    JSONFloat `json:"wall_seconds,omitempty"`
	Final      *Snapshot `json:"final,omitempty"`

	started time.Time
}

// NewManifest stamps a manifest with the run's identity and environment.
// config may be any JSON-marshalable value (typically the tool's resolved
// configuration struct).
func NewManifest(tool string, config any, seed int64) *Manifest {
	now := time.Now()
	return &Manifest{
		Tool:       tool,
		Args:       os.Args[1:],
		Config:     config,
		Seed:       seed,
		GitRef:     GitRef("."),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		StartTime:  now.UTC().Format(time.RFC3339Nano),
		started:    now,
	}
}

// Finalize records the end time, wall duration and the registry's final
// snapshot (reg may be nil).
func (m *Manifest) Finalize(reg *Registry) {
	now := time.Now()
	m.EndTime = now.UTC().Format(time.RFC3339Nano)
	m.WallSec = JSONFloat(now.Sub(m.started).Seconds())
	if reg != nil {
		snap := reg.Snapshot()
		m.Final = &snap
	}
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// GitRef resolves the repository revision for the working tree containing
// dir, without shelling out: it walks up to the nearest .git, reads HEAD,
// and follows one level of symbolic ref through the loose ref file or
// packed-refs. Best effort — returns "unknown" when no repository or an
// unreadable one is found (e.g. a deployed binary far from its checkout).
func GitRef(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "unknown"
	}
	for {
		gitDir := filepath.Join(abs, ".git")
		if fi, err := os.Stat(gitDir); err == nil && fi.IsDir() {
			return headRef(gitDir)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "unknown"
		}
		abs = parent
	}
}

// headRef reads .git/HEAD and resolves a "ref: refs/heads/x" indirection.
func headRef(gitDir string) string {
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return "unknown"
	}
	line := strings.TrimSpace(string(head))
	if !strings.HasPrefix(line, "ref: ") {
		return line // detached HEAD: the hash itself
	}
	ref := strings.TrimSpace(strings.TrimPrefix(line, "ref: "))
	if data, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return strings.TrimSpace(string(data))
	}
	// Loose ref absent: the ref may only exist packed.
	if packed, err := os.ReadFile(filepath.Join(gitDir, "packed-refs")); err == nil {
		for _, l := range strings.Split(string(packed), "\n") {
			if strings.HasSuffix(l, " "+ref) {
				if f := strings.Fields(l); len(f) == 2 {
					return f[0]
				}
			}
		}
	}
	return ref // at least name the branch
}

// ReadManifest parses a manifest file (the comparison tool's loader).
func ReadManifest(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"voyager/internal/distill"
	"voyager/internal/metrics"
	"voyager/internal/nn"
	"voyager/internal/prefetch/distilled"
	"voyager/internal/tensor"
	"voyager/internal/tensor/quant"
	"voyager/internal/tracing"
	"voyager/internal/voyager"
	"voyager/internal/workloads"

	"math/rand"
)

// BenchEntry is one timed kernel or pipeline stage. Besides wall time it
// records the allocator profile (bytes and allocations per op, plus the
// number of GC cycles the whole timed run triggered) so allocation
// regressions on the hot path are visible in the report, and — when a
// baseline report is supplied — the wall-time ratio against that baseline.
type BenchEntry struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	Iterations  int    `json:"iterations"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	GCCycles    uint32 `json:"gc_cycles"`

	// BaselineNsPerOp/SpeedupVsBaseline are filled by Compare when the same
	// entry exists in the baseline report (0 otherwise).
	BaselineNsPerOp   int64   `json:"baseline_ns_per_op,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// BenchReport is the machine-readable output of the -bench harness
// (BENCH_pr1.json). Serial entries run with Workers=1 (bit-identical to the
// pre-parallel implementation); parallel entries run at Workers, so the
// speedup fields measure the data-parallel engine on this machine.
type BenchReport struct {
	GOMAXPROCS     int          `json:"gomaxprocs"`
	PoolWorkers    int          `json:"pool_workers"`
	Workers        int          `json:"workers"`
	Entries        []BenchEntry `json:"entries"`
	TrainSpeedup   float64      `json:"train_batch_speedup"`
	Figure5Speedup float64      `json:"figure5_speedup"`
	// MetricsOverhead is train_batch_serial_metrics over train_batch_serial
	// ns/op: the cost of running a full optimizer step with the
	// observability registry attached (acceptance bound: < 1.03).
	MetricsOverhead float64 `json:"train_metrics_overhead,omitempty"`
	// TraceOverhead is train_batch_serial_trace over train_batch_serial
	// ns/op: the cost of the same step with the execution-span tracer
	// recording (acceptance bound: < 1.05).
	TraceOverhead float64 `json:"train_trace_overhead,omitempty"`
	// FastMathMatMulMaxDelta is the largest element-wise |fast - exact|
	// over the matmul_256 operands: the measured accuracy cost of the
	// reassociated fast-math kernels (pure float32 rounding noise).
	FastMathMatMulMaxDelta float64 `json:"fastmath_matmul_max_abs_delta,omitempty"`
	// QuantMatMulMaxDelta is the largest element-wise |int8 - fp32| over the
	// same operands: the end-to-end error of the weight-quantized kernel
	// against unquantized float32.
	QuantMatMulMaxDelta float64 `json:"quant_matmul_max_abs_delta,omitempty"`
	// QuantTop1Agreement is the fraction of minibatch rows whose top-1
	// (page, offset) prediction is identical between the fp32 and the
	// int8 quantized predict path, after identical training steps.
	QuantTop1Agreement float64 `json:"quant_top1_agreement,omitempty"`
	// DistilledTop1Agreement is the default distilled table's top-1
	// agreement with the fp32 teacher on the calibration-held-out half of
	// the bench trace (acceptance bound: ≥ 0.90).
	DistilledTop1Agreement float64 `json:"distilled_top1_agreement,omitempty"`
	// DistilledTableBytes is that table's in-memory (and on-disk payload)
	// footprint.
	DistilledTableBytes int `json:"distilled_table_bytes,omitempty"`
	// DistilledSpeedupPerPred is predict_batch_serial amortized per batch
	// row over predict_distilled ns/op: how much faster one tabularized
	// prediction is than one serial fp32 model prediction (acceptance
	// bound: ≥ 20).
	DistilledSpeedupPerPred float64 `json:"distilled_speedup_per_prediction,omitempty"`
	// DistilledFP32NsPerPred / DistilledQuantNsPerPred are the teacher's
	// amortized per-row inference cost at full batch width, for context.
	DistilledFP32NsPerPred  int64 `json:"distilled_teacher_fp32_ns_per_prediction,omitempty"`
	DistilledQuantNsPerPred int64 `json:"distilled_teacher_quant_ns_per_prediction,omitempty"`
	// DistillSweep is the differential harness: table size vs held-out
	// top-1 agreement (against both teacher precisions) vs ns/prediction.
	DistillSweep []DistillPoint `json:"distill_sweep,omitempty"`
	// Serving-path numbers from an in-process prefetchd under
	// ServeStreams concurrent client streams (see serve.go). ServeFastP99Ns
	// is the exact nearest-rank p99 of the fast tier's prediction-path
	// latency (acceptance bound: < 10x predict_distilled ns/op, recorded
	// here as ServeFastVsDistilled); ServeBatchFill is the exact mean
	// PredictBatch occupancy (rows/batches) in the model phase.
	ServeStreams         int     `json:"serve_streams,omitempty"`
	ServeFastP50Ns       int64   `json:"serve_p50_ns,omitempty"`
	ServeFastP99Ns       int64   `json:"serve_p99_ns,omitempty"`
	ServeModelP99Ns      int64   `json:"serve_model_p99_ns,omitempty"`
	ServeBatchFill       float64 `json:"serve_batch_fill,omitempty"`
	ServeFastVsDistilled float64 `json:"serve_p99_vs_distilled,omitempty"`
	// ServeQualityP99Ns is the fast tier's prediction-path p99 with online
	// quality self-scoring live; ServeQualityOverhead is its ratio over the
	// telemetry-off ServeFastP99Ns. Scoring runs strictly after the latency
	// record, so this gates the indirect cost of quality telemetry
	// (acceptance bound: < 1.05). Shadow sampling is off in this phase —
	// its model-inference CPU cost tracks the 1-in-N knob by design (see
	// serve.go) and is covered by the serve e2e suite, not this gate.
	ServeQualityP99Ns    int64   `json:"serve_quality_p99_ns,omitempty"`
	ServeQualityOverhead float64 `json:"serve_quality_overhead,omitempty"`
	Baseline     string         `json:"baseline,omitempty"` // path of the compared report
	Notes        string         `json:"notes,omitempty"`
}

func (r *BenchReport) entry(name string) *BenchEntry {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			return &r.Entries[i]
		}
	}
	return nil
}

// String renders the report as an aligned table.
func (r *BenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bench (GOMAXPROCS=%d, pool=%d, workers=%d)\n",
		r.GOMAXPROCS, r.PoolWorkers, r.Workers)
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-28s %14d ns/op %10d B/op %8d allocs/op %4d GCs  (%d iters)",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.GCCycles, e.Iterations)
		if e.SpeedupVsBaseline > 0 {
			fmt.Fprintf(&b, "  %.2fx vs baseline", e.SpeedupVsBaseline)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  TrainBatch speedup  %.2fx\n", r.TrainSpeedup)
	fmt.Fprintf(&b, "  Figure-5  speedup   %.2fx", r.Figure5Speedup)
	if r.MetricsOverhead > 0 {
		fmt.Fprintf(&b, "\n  Metrics overhead    %.3fx (train_batch_serial)", r.MetricsOverhead)
	}
	if r.TraceOverhead > 0 {
		fmt.Fprintf(&b, "\n  Trace overhead      %.3fx (train_batch_serial)", r.TraceOverhead)
	}
	if r.FastMathMatMulMaxDelta > 0 {
		fmt.Fprintf(&b, "\n  Fast-math max |Δ|   %.3g (matmul_256)", r.FastMathMatMulMaxDelta)
	}
	if r.QuantMatMulMaxDelta > 0 {
		fmt.Fprintf(&b, "\n  Quant max |Δ|       %.3g (matmul_256_q8 vs fp32)", r.QuantMatMulMaxDelta)
	}
	if r.QuantTop1Agreement > 0 {
		fmt.Fprintf(&b, "\n  Quant top-1 agree   %.3f (predict_batch_quant vs fp32)", r.QuantTop1Agreement)
	}
	if r.DistilledTop1Agreement > 0 {
		fmt.Fprintf(&b, "\n  Distilled top-1     %.3f vs fp32 teacher (held-out)", r.DistilledTop1Agreement)
	}
	if r.DistilledSpeedupPerPred > 0 {
		fmt.Fprintf(&b, "\n  Distilled speedup   %.0fx per prediction vs serial fp32 (%d B table)",
			r.DistilledSpeedupPerPred, r.DistilledTableBytes)
	}
	for _, p := range r.DistillSweep {
		fmt.Fprintf(&b, "\n    distill log2=%2d %9d B %6d keys  fp32 %.3f  int8 %.3f  %8d ns/pred",
			p.Log2Buckets, p.TableBytes, p.Keys, p.Top1VsFP32, p.Top1VsQuant, p.NsPerPred)
	}
	if r.ServeStreams > 0 {
		fmt.Fprintf(&b, "\n  Serve (%d streams)   fast p50 %d ns  p99 %d ns (%.1fx predict_distilled)  model p99 %.2f ms  batch fill %.1f/%d",
			r.ServeStreams, r.ServeFastP50Ns, r.ServeFastP99Ns, r.ServeFastVsDistilled,
			float64(r.ServeModelP99Ns)/1e6, r.ServeBatchFill, serveBenchMaxBatch)
	}
	if r.ServeQualityOverhead > 0 {
		fmt.Fprintf(&b, "\n  Quality overhead    %.3fx (fast p99 %d ns with online self-scoring)",
			r.ServeQualityOverhead, r.ServeQualityP99Ns)
	}
	return b.String()
}

// JSON marshals the report with indentation.
func (r *BenchReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Compare fills each entry's baseline wall time and speedup ratio from a
// previous report (entries are matched by name; missing ones are skipped).
func (r *BenchReport) Compare(baseline *BenchReport, path string) {
	if baseline == nil {
		return
	}
	r.Baseline = path
	for i := range r.Entries {
		e := &r.Entries[i]
		if be := baseline.entry(e.Name); be != nil && e.NsPerOp > 0 {
			e.BaselineNsPerOp = be.NsPerOp
			e.SpeedupVsBaseline = float64(be.NsPerOp) / float64(e.NsPerOp)
		}
	}
}

// LoadBenchReport parses a previously written bench JSON report.
func LoadBenchReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

func timeIt(name string, fn func(b *testing.B)) BenchEntry {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	runtime.ReadMemStats(&after)
	return BenchEntry{
		Name:        name,
		NsPerOp:     res.NsPerOp(),
		Iterations:  res.N,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		GCCycles:    after.NumGC - before.NumGC,
	}
}

// timeBest times fn n times and keeps the fastest run. The gated entries
// use it: a wall-clock ratio gate on a shared container needs min-of-N to
// tell scheduler noise (a few percent, uncorrelated across runs) from a
// real kernel regression (systematic, survives the min).
func timeBest(name string, n int, fn func(b *testing.B)) BenchEntry {
	best := timeIt(name, fn)
	for i := 1; i < n; i++ {
		if e := timeIt(name, fn); e.NsPerOp < best.NsPerOp {
			best = e
		}
	}
	return best
}

// benchHarness builds a voyager.BenchHarness over the cc benchmark's raw
// trace at the harness scale, with the given data-parallel width and
// predict-path precision.
func (o Options) benchHarness(workers int, quantPredict bool) (*voyager.BenchHarness, error) {
	tr, err := workloads.Generate("cc", o.workloadConfig())
	if err != nil {
		return nil, err
	}
	cfg := o.voyagerConfig(tr.Len())
	cfg.Workers = workers
	cfg.QuantizedPredict = quantPredict
	return voyager.NewBenchHarness(tr, cfg)
}

// maxAbsDelta returns the largest element-wise |got - want|.
func maxAbsDelta(got, want *tensor.Mat) float64 {
	var m float64
	for i := range got.Data {
		d := float64(got.Data[i] - want.Data[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// Bench times the performance-critical stages of the training engine:
// the three matmul kernels, one LSTM step, a full TrainBatch optimizer step
// at Workers=1 versus Workers=workers, and the Figure-5 pipeline end to end
// at both widths. workers ≤ 0 means voyager.WorkersAuto.
func (o Options) Bench(workers int) (*BenchReport, error) {
	if workers <= 0 {
		workers = tensor.PoolWorkers()
	}
	r := &BenchReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		PoolWorkers: tensor.PoolWorkers(),
		Workers:     workers,
		Notes: fmt.Sprintf("serial entries (Workers=1) are bit-identical to the "+
			"pre-parallel implementation; speedup fields compare Workers=1 vs "+
			"Workers=%d on this machine (GOMAXPROCS=%d) and only show parallel "+
			"gains when GOMAXPROCS>=2. Pre-arena (PR 1) allocator profile for "+
			"reference, measured on this harness before the tape arena landed: "+
			"train_batch_serial 3616 allocs/op, 14833976 B/op; the arena's "+
			"allocs_per_op below should be >=10x lower", workers, runtime.GOMAXPROCS(0)),
	}

	// Matmul kernels at a Table-1-like shape (256×256).
	const mdim = 256
	rng := rand.New(rand.NewSource(o.Seed))
	a, bm := tensor.NewMat(mdim, mdim), tensor.NewMat(mdim, mdim)
	a.Uniform(rng, 1)
	bm.Uniform(rng, 1)
	dst := tensor.NewMat(mdim, mdim)
	o.logf("  bench: matmul kernels (%dx%d)...", mdim, mdim)
	r.Entries = append(r.Entries,
		timeBest("matmul_256", 3, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMul(dst, a, bm)
			}
		}),
		timeIt("matmul_atrans_b_256", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulATransB(dst, a, bm)
			}
		}),
		timeIt("matmul_abtrans_256", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulABTrans(dst, a, bm)
			}
		}))

	// The opt-in fast-math kernels on the same operands, plus their measured
	// divergence from the exact result (pure reassociation rounding noise).
	exact := tensor.MatMul(nil, a, bm)
	tensor.SetFastMath(true)
	r.Entries = append(r.Entries, timeIt("matmul_256_fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMul(dst, a, bm)
		}
	}))
	fast := tensor.MatMul(nil, a, bm)
	tensor.SetFastMath(false)
	r.FastMathMatMulMaxDelta = maxAbsDelta(fast, exact)

	// The inference-only quantized kernels: int8 with per-column scales and
	// binary16, with the int8 end-to-end error against unquantized fp32.
	q8 := quant.QuantizeQ8(bm)
	f16 := quant.QuantizeF16(bm)
	r.Entries = append(r.Entries,
		timeIt("matmul_256_q8", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				quant.MatMulQ8(dst, a, q8, nil)
			}
		}),
		timeIt("matmul_256_f16", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				quant.MatMulF16(dst, a, f16, nil)
			}
		}))
	qDst := tensor.NewMat(mdim, mdim)
	quant.MatMulQ8(qDst, a, q8, nil)
	r.QuantMatMulMaxDelta = maxAbsDelta(qDst, exact)

	// One LSTM step at the paper's hidden size, batch 64.
	o.logf("  bench: lstm step...")
	lstm := nn.NewLSTM("bench", 256, 256, rng)
	x := tensor.NewMat(64, 256)
	x.Uniform(rng, 1)
	ltp := tensor.NewTape() // long-lived tape + Reset: the production pattern
	r.Entries = append(r.Entries, timeIt("lstm_step_b64_h256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ltp.Reset()
			lstm.Step(ltp, ltp.Const(x), lstm.ZeroState(ltp, 64))
		}
	}))

	// Full optimizer step on a real minibatch, serial vs parallel.
	serialPredictRows := 0
	for _, v := range []struct {
		name    string
		workers int
	}{{"train_batch_serial", 1}, {"train_batch_parallel", workers}} {
		o.logf("  bench: %s...", v.name)
		h, err := o.benchHarness(v.workers, false)
		if err != nil {
			return nil, err
		}
		if v.workers == 1 {
			serialPredictRows = h.BatchRows()
		}
		r.Entries = append(r.Entries, timeIt(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h.TrainStep()
			}
		}))
		// The serial predict entry is gated in verify.sh, so de-noise it.
		reps := 1
		if v.workers == 1 {
			reps = 3
		}
		r.Entries = append(r.Entries, timeBest(
			strings.Replace(v.name, "train", "predict", 1), reps, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					h.PredictStep()
				}
			}))
	}

	// The quantized predict path against the fp32 one: both harnesses share
	// the same trace and seed and advance through the same deterministic
	// serial optimizer steps, so their fp32 weights stay bit-identical and
	// any top-1 disagreement is int8 quantization noise alone.
	{
		o.logf("  bench: predict_batch_quant...")
		fh, err := o.benchHarness(1, false)
		if err != nil {
			return nil, err
		}
		qh, err := o.benchHarness(1, true)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 5; i++ {
			fh.TrainStep()
			qh.TrainStep()
		}
		r.Entries = append(r.Entries, timeBest("predict_batch_quant", 3, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qh.PredictStep()
			}
		}))
		fOut, qOut := fh.PredictCandidates(), qh.PredictCandidates()
		agree := 0
		for row := range fOut {
			if len(fOut[row]) > 0 && len(qOut[row]) > 0 &&
				fOut[row][0].PageTok == qOut[row][0].PageTok &&
				fOut[row][0].OffTok == qOut[row][0].OffTok {
				agree++
			}
		}
		if len(fOut) > 0 {
			r.QuantTop1Agreement = float64(agree) / float64(len(fOut))
		}
	}

	// The distilled fast path: train a serial teacher on the harness trace,
	// run the table-size differential sweep against both teacher precisions,
	// then time the headline online replay of the default-parameter table
	// (compiled on the calibration half, scored on the held-out half).
	{
		o.logf("  bench: distill sweep + predict_distilled...")
		tr, err := workloads.Generate("cc", o.workloadConfig())
		if err != nil {
			return nil, err
		}
		cfg := o.voyagerConfig(tr.Len())
		cfg.Workers = 1
		p, err := voyager.Train(tr, cfg)
		if err != nil {
			return nil, err
		}
		cells, fp32Ns, quantNs := sweepDistill(p, tr, distillSweepLog2s)
		r.DistilledFP32NsPerPred = fp32Ns
		r.DistilledQuantNsPerPred = quantNs
		for _, c := range cells {
			pt := c.point
			pt.Benchmark = "cc"
			r.DistillSweep = append(r.DistillSweep, pt)
		}
		half := p.NumAccesses() / 2
		tab := distill.Compile(p, 0, half, distill.DefaultParams())
		pf, err := distilled.New(tab, p.Model.Vocab(), 1)
		if err != nil {
			return nil, err
		}
		accs := tr.Accesses
		idx := 0
		r.Entries = append(r.Entries, timeIt("predict_distilled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pf.Access(idx, accs[idx])
				idx++
				if idx == len(accs) {
					idx = 0
					pf.Reset()
				}
			}
		}))
		r.DistilledTop1Agreement = distill.Agreement(p, tab, heldOutPositions(p.NumAccesses()))
		r.DistilledTableBytes = tab.Bytes()

		// The serving path on the same teacher and table: an in-process
		// prefetchd on loopback under 64 concurrent client streams.
		o.logf("  bench: serve (64 streams, fast + model tiers)...")
		sres, err := serveBench(p.Model, tab, tr)
		if err != nil {
			return nil, err
		}
		r.ServeStreams = serveBenchStreams
		r.ServeFastP50Ns = sres.fastP50Ns
		r.ServeFastP99Ns = sres.fastP99Ns
		r.ServeModelP99Ns = sres.modelP99Ns
		r.ServeBatchFill = sres.batchFill
		r.ServeQualityP99Ns = sres.qualityP99Ns
		if sres.fastP99Ns > 0 && sres.qualityP99Ns > 0 {
			r.ServeQualityOverhead = float64(sres.qualityP99Ns) / float64(sres.fastP99Ns)
		}
	}

	// The same serial optimizer step with metrics enabled: the difference
	// against train_batch_serial is the full observability overhead (timers,
	// counters and the per-step grad-norm scan).
	{
		o.logf("  bench: train_batch_serial_metrics...")
		opts := o
		opts.Metrics = metrics.NewRegistry()
		h, err := opts.benchHarness(1, false)
		if err != nil {
			return nil, err
		}
		r.Entries = append(r.Entries, timeIt("train_batch_serial_metrics", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h.TrainStep()
			}
		}))
	}

	// The same serial optimizer step with the execution-span tracer
	// recording to an in-memory arena: the difference against
	// train_batch_serial is the tracing hot-path cost.
	{
		o.logf("  bench: train_batch_serial_trace...")
		opts := o
		opts.Trace = tracing.New(tracing.Options{})
		h, err := opts.benchHarness(1, false)
		if err != nil {
			return nil, err
		}
		r.Entries = append(r.Entries, timeIt("train_batch_serial_trace", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h.TrainStep()
			}
		}))
	}

	// Figure 5 end to end: trace generation, LLC filter, online-protocol
	// training and accuracy scoring, serial vs parallel.
	for _, v := range []struct {
		name    string
		workers int
	}{{"figure5_serial", 1}, {"figure5_parallel", workers}} {
		o.logf("  bench: %s...", v.name)
		opts := o
		opts.Workers = v.workers
		opts.Benchmarks = []string{"cc"}
		r.Entries = append(r.Entries, timeIt(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := NewRun(opts)
				if s := run.Main().Figure5(); s == "" {
					b.Fatal("empty figure 5")
				}
			}
		}))
	}

	if s, p := r.entry("train_batch_serial"), r.entry("train_batch_parallel"); s != nil && p != nil && p.NsPerOp > 0 {
		r.TrainSpeedup = float64(s.NsPerOp) / float64(p.NsPerOp)
	}
	if s, p := r.entry("figure5_serial"), r.entry("figure5_parallel"); s != nil && p != nil && p.NsPerOp > 0 {
		r.Figure5Speedup = float64(s.NsPerOp) / float64(p.NsPerOp)
	}
	if s, m := r.entry("train_batch_serial"), r.entry("train_batch_serial_metrics"); s != nil && m != nil && s.NsPerOp > 0 {
		r.MetricsOverhead = float64(m.NsPerOp) / float64(s.NsPerOp)
	}
	if s, t := r.entry("train_batch_serial"), r.entry("train_batch_serial_trace"); s != nil && t != nil && s.NsPerOp > 0 {
		r.TraceOverhead = float64(t.NsPerOp) / float64(s.NsPerOp)
	}
	if s, d := r.entry("predict_batch_serial"), r.entry("predict_distilled"); s != nil && d != nil &&
		d.NsPerOp > 0 && serialPredictRows > 0 {
		r.DistilledSpeedupPerPred = float64(s.NsPerOp) / float64(serialPredictRows) / float64(d.NsPerOp)
	}
	if d := r.entry("predict_distilled"); d != nil && d.NsPerOp > 0 && r.ServeFastP99Ns > 0 {
		r.ServeFastVsDistilled = float64(r.ServeFastP99Ns) / float64(d.NsPerOp)
	}
	return r, nil
}

// benchGates are the entries the bench-smoke gate guards and the minimum
// acceptable speedup-vs-baseline for each. All three are measured
// min-of-3 (timeBest), which removes uncorrelated scheduler noise. The
// floors differ because the residual drift differs: the long model-bound
// predict batches land anywhere in 0.6-1.1x of a prior run with no code
// change at all (sustained-load throttling), so their floor only catches
// step-change regressions — an accidental O(n) in the batch path, a
// dropped kernel — not drift. The matmul floor was originally 0.95 on
// the belief the short kernel repeats within ±5%; re-measuring at PR 9
// (three clean full-suite runs, zero kernel changes since the baseline)
// put identical code at 0.69-0.88x of the recorded baseline — the
// shared container's host-level drift hits short kernels too. 0.80
// tolerates that drift while still failing the regression class the
// gate exists for: PR-5 was a 0.72x step change from a favorable-window
// baseline, i.e. well under 0.80 whenever the host is healthy. If this
// gate trips, rerun the suite on an idle machine before believing it.
var benchGates = []struct {
	name string
	min  float64
}{
	{"matmul_256", 0.80},
	{"predict_batch_serial", 0.75},
	{"predict_batch_quant", 0.75},
}

// serveQualityOverheadMax gates serve_quality_overhead: the fast tier's p99
// with quality telemetry live may cost at most 5% over the telemetry-off
// run recorded in the same report. Unlike the speedup gates this compares
// two phases of one suite run minutes apart in one process, so host-level
// drift largely cancels; a trip means scoring or shadow sampling leaked
// onto the latency path. Reports from before the quality phase existed
// have no field and pass vacuously.
const serveQualityOverheadMax = 1.05

// CheckBenchReport is the bench-smoke gate run by scripts/verify.sh: it
// loads the newest BENCH_pr<N>.json in dir and fails if any guarded entry
// regressed past its gate against the report's recorded baseline. A missing
// report passes vacuously, as does an entry with no baseline chain (the
// first run that records it); a recorded slowdown does not. matmul_256 is
// required to exist — every report since PR 1 has it.
func CheckBenchReport(dir string) (string, error) {
	path, _ := LatestBenchReportPath(dir)
	if path == "" {
		return "bench-check: no BENCH_pr<N>.json found (nothing to gate)", nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("bench-check: %v", err)
	}
	r, err := LoadBenchReport(data)
	if err != nil {
		return "", fmt.Errorf("bench-check: %s: %v", path, err)
	}
	var msgs []string
	for _, g := range benchGates {
		e := r.entry(g.name)
		if e == nil {
			if g.name == "matmul_256" {
				return "", fmt.Errorf("bench-check: %s has no matmul_256 entry", path)
			}
			msgs = append(msgs, g.name+" absent (pre-gate report)")
			continue
		}
		if e.SpeedupVsBaseline == 0 {
			msgs = append(msgs, fmt.Sprintf("%s %d ns/op (no baseline chain)", g.name, e.NsPerOp))
			continue
		}
		if e.SpeedupVsBaseline < g.min {
			return "", fmt.Errorf("bench-check: %s: %s %.2fx vs baseline %s — regressed past the %.2fx gate",
				path, g.name, e.SpeedupVsBaseline, r.Baseline, g.min)
		}
		msgs = append(msgs, fmt.Sprintf("%s %.2fx (%d -> %d ns/op)",
			g.name, e.SpeedupVsBaseline, e.BaselineNsPerOp, e.NsPerOp))
	}
	switch {
	case r.ServeQualityOverhead == 0:
		msgs = append(msgs, "serve_quality_overhead absent (pre-quality report)")
	case r.ServeQualityOverhead >= serveQualityOverheadMax:
		return "", fmt.Errorf("bench-check: %s: serve_quality_overhead %.3fx — quality telemetry leaked onto the fast path (gate %.2fx)",
			path, r.ServeQualityOverhead, serveQualityOverheadMax)
	default:
		msgs = append(msgs, fmt.Sprintf("serve_quality_overhead %.3fx", r.ServeQualityOverhead))
	}
	return fmt.Sprintf("bench-check: %s: %s", path, strings.Join(msgs, ", ")), nil
}

// LatestBenchReportPath returns the highest-numbered BENCH_pr<N>.json in dir
// and its N ("", 0 when none exist). The bench delta chain compares each new
// report against the latest existing one, so gaps in the numbering (a PR
// that didn't re-bench) don't break the chain.
func LatestBenchReportPath(dir string) (string, int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0
	}
	best := 0
	for _, e := range entries {
		var n int
		// Sscanf tolerates trailing input, so require the exact round-trip.
		if _, err := fmt.Sscanf(e.Name(), "BENCH_pr%d.json", &n); err == nil &&
			e.Name() == fmt.Sprintf("BENCH_pr%d.json", n) && n > best {
			best = n
		}
	}
	if best == 0 {
		return "", 0
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_pr%d.json", best)), best
}

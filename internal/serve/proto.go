// Wire protocol: length-prefixed binary frames over a byte stream.
//
// Every frame is a 4-byte big-endian payload length followed by the payload.
// Request payloads are fixed-size (28 bytes); response payloads are a 4-byte
// header followed by either fixed-size candidate records (status OK) or a
// UTF-8 error message (status error). Lengths are bounded by MaxFrame, so a
// corrupt or hostile length prefix cannot make the daemon allocate
// unboundedly. Malformed frames are a per-connection error: the handler
// replies with a status-error frame where possible and closes that
// connection; the daemon and every other stream keep serving (the fuzz
// harness and the malformed-frame test pin the never-panic property).
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Version is the base wire protocol version. Requests carrying any
	// version other than Version or VersionTraced are rejected.
	Version = 1

	// VersionTraced is the version byte of a trace-context request frame:
	// the base request plus a 16-byte trace context (TraceID, SpanID) so
	// client replay spans and server spans link into one merged timeline.
	// The extension is version-gated, not flag-gated, so a v1 decoder
	// rejects it cleanly by version instead of misreading the length, and
	// old clients that never send it are untouched.
	VersionTraced = 2

	// MaxFrame bounds the payload length of any frame in either direction.
	MaxFrame = 1 << 16

	// RequestLen is the exact payload length of a base (v1) request frame.
	RequestLen = 28

	// RequestLenTraced is the exact payload length of a trace-context (v2)
	// request frame: RequestLen plus TraceID and SpanID.
	RequestLenTraced = RequestLen + 16

	// candLen is the encoded size of one response candidate.
	candLen = 24

	// respHeaderLen is the fixed response header (version, status, tier,
	// count).
	respHeaderLen = 4
)

// Request opcodes.
const (
	// OpPredict advances the stream's session with (PC, Addr) and returns
	// prefetch candidates.
	OpPredict = 1
	// OpClose discards the stream's session state.
	OpClose = 2
	// OpPing is a liveness no-op.
	OpPing = 3
)

// Request flag bits.
const (
	// FlagFast asks for the distilled fast tier; the server falls back to
	// the model tier when it has no table loaded.
	FlagFast = 1
)

// Response status codes.
const (
	StatusOK    = 0
	StatusError = 1
)

// Response tier codes.
const (
	TierModel = 0
	TierFast  = 1
)

// Request is one decoded request frame. Stream identifies the session; PC
// and Addr are the access being appended to it. HasCtx marks a v2 frame
// carrying a trace context: TraceID identifies the client's trace, SpanID
// the client-side span for this request — the server stamps its async
// lifecycle marks with SpanID so tracing.Merge pairs them into the
// client's span. HasCtx is part of the frame's identity (it selects the
// version byte), which keeps decode∘encode canonical even when both ids
// are zero.
type Request struct {
	Op     byte
	Flags  byte
	Stream uint64
	PC     uint64
	Addr   uint64

	HasCtx  bool
	TraceID uint64
	SpanID  uint64
}

// Candidate is one prefetch candidate on the wire. PageTok/OffTok are the
// model's vocabulary token ids (-1 for the next-line fallback, which has no
// tokens); ScoreBits is math.Float64bits of the model score (0 on the fast
// tier, which stores f16 probabilities — the differential tests compare
// these bits exactly); Addr is the decoded prefetch byte address, 0 when the
// tokens did not decode against the trigger.
type Candidate struct {
	PageTok   int32
	OffTok    int32
	ScoreBits uint64
	Addr      uint64
}

// Response is one decoded response frame. Err is set iff Status ==
// StatusError.
type Response struct {
	Status byte
	Tier   byte
	Cands  []Candidate
	Err    string
}

// Decode errors. ErrFrameTooLarge is returned by ReadFrame for oversized
// length prefixes; the rest come from DecodeRequest/DecodeResponse.
var (
	ErrFrameTooLarge = errors.New("serve: frame exceeds MaxFrame")
	errBadLength     = errors.New("serve: bad request length")
	errBadVersion    = errors.New("serve: unsupported protocol version")
	errBadOp         = errors.New("serve: unknown opcode")
	errBadReserved   = errors.New("serve: nonzero reserved byte")
)

// EncodeRequest appends the frame (length prefix included) for r to dst and
// returns the extended slice. A request with HasCtx set encodes as a v2
// trace-context frame; otherwise the v1 layout is byte-identical to every
// previous release.
func EncodeRequest(dst []byte, r Request) []byte {
	if r.HasCtx {
		dst = binary.BigEndian.AppendUint32(dst, RequestLenTraced)
		dst = append(dst, VersionTraced, r.Op, r.Flags, 0)
	} else {
		dst = binary.BigEndian.AppendUint32(dst, RequestLen)
		dst = append(dst, Version, r.Op, r.Flags, 0)
	}
	dst = binary.BigEndian.AppendUint64(dst, r.Stream)
	dst = binary.BigEndian.AppendUint64(dst, r.PC)
	dst = binary.BigEndian.AppendUint64(dst, r.Addr)
	if r.HasCtx {
		dst = binary.BigEndian.AppendUint64(dst, r.TraceID)
		dst = binary.BigEndian.AppendUint64(dst, r.SpanID)
	}
	return dst
}

// DecodeRequest parses a request payload (the frame body, after the length
// prefix). The version byte selects the layout: v1 is the 28-byte base
// request, v2 appends the 16-byte trace context; a version/length mismatch
// (truncated context, padded base frame) is rejected. It never panics on
// arbitrary input — the fuzz target pins that.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) != RequestLen && len(p) != RequestLenTraced {
		return Request{}, fmt.Errorf("%w: %d bytes, want %d or %d",
			errBadLength, len(p), RequestLen, RequestLenTraced)
	}
	switch p[0] {
	case Version:
		if len(p) != RequestLen {
			return Request{}, fmt.Errorf("%w: version %d frame is %d bytes, want %d",
				errBadLength, Version, len(p), RequestLen)
		}
	case VersionTraced:
		if len(p) != RequestLenTraced {
			return Request{}, fmt.Errorf("%w: version %d frame is %d bytes, want %d",
				errBadLength, VersionTraced, len(p), RequestLenTraced)
		}
	default:
		return Request{}, fmt.Errorf("%w: %d", errBadVersion, p[0])
	}
	op := p[1]
	if op != OpPredict && op != OpClose && op != OpPing {
		return Request{}, fmt.Errorf("%w: %d", errBadOp, op)
	}
	if p[3] != 0 {
		return Request{}, errBadReserved
	}
	r := Request{
		Op:     op,
		Flags:  p[2],
		Stream: binary.BigEndian.Uint64(p[4:12]),
		PC:     binary.BigEndian.Uint64(p[12:20]),
		Addr:   binary.BigEndian.Uint64(p[20:28]),
	}
	if p[0] == VersionTraced {
		r.HasCtx = true
		r.TraceID = binary.BigEndian.Uint64(p[28:36])
		r.SpanID = binary.BigEndian.Uint64(p[36:44])
	}
	return r, nil
}

// EncodeResponse appends the frame (length prefix included) for r to dst and
// returns the extended slice. Error messages are truncated to fit MaxFrame.
func EncodeResponse(dst []byte, r *Response) []byte {
	if r.Status != StatusOK {
		msg := r.Err
		if len(msg) > MaxFrame-respHeaderLen {
			msg = msg[:MaxFrame-respHeaderLen]
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(respHeaderLen+len(msg)))
		dst = append(dst, Version, r.Status, r.Tier, 0)
		return append(dst, msg...)
	}
	n := len(r.Cands)
	if n > 255 {
		n = 255 // count is one byte; serving degrees are single digits
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(respHeaderLen+n*candLen))
	dst = append(dst, Version, r.Status, r.Tier, byte(n))
	for _, c := range r.Cands[:n] {
		dst = binary.BigEndian.AppendUint32(dst, uint32(c.PageTok))
		dst = binary.BigEndian.AppendUint32(dst, uint32(c.OffTok))
		dst = binary.BigEndian.AppendUint64(dst, c.ScoreBits)
		dst = binary.BigEndian.AppendUint64(dst, c.Addr)
	}
	return dst
}

// DecodeResponse parses a response payload into r, reusing r.Cands storage.
// Like DecodeRequest it never panics on arbitrary input.
func DecodeResponse(p []byte, r *Response) error {
	if len(p) < respHeaderLen {
		return fmt.Errorf("serve: short response payload (%d bytes)", len(p))
	}
	if p[0] != Version {
		return fmt.Errorf("%w: %d", errBadVersion, p[0])
	}
	r.Status = p[1]
	r.Tier = p[2]
	r.Cands = r.Cands[:0]
	r.Err = ""
	body := p[respHeaderLen:]
	if r.Status != StatusOK {
		r.Err = string(body)
		return nil
	}
	n := int(p[3])
	if len(body) != n*candLen {
		return fmt.Errorf("serve: response body %d bytes, want %d candidates x %d", len(body), n, candLen)
	}
	for i := 0; i < n; i++ {
		b := body[i*candLen:]
		r.Cands = append(r.Cands, Candidate{
			PageTok:   int32(binary.BigEndian.Uint32(b[0:4])),
			OffTok:    int32(binary.BigEndian.Uint32(b[4:8])),
			ScoreBits: binary.BigEndian.Uint64(b[8:16]),
			Addr:      binary.BigEndian.Uint64(b[16:24]),
		})
	}
	return nil
}

// ReadFrame reads one length-prefixed frame payload into buf (grown as
// needed) and returns the payload slice. A length prefix above MaxFrame is a
// protocol error (ErrFrameTooLarge), not an allocation.
func ReadFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteFrame writes an already-encoded frame (length prefix included) and
// flushes it.
func WriteFrame(bw *bufio.Writer, frame []byte) error {
	if _, err := bw.Write(frame); err != nil {
		return err
	}
	return bw.Flush()
}

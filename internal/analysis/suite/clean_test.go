package suite_test

import (
	"strings"
	"testing"

	"voyager/internal/analysis"
	"voyager/internal/analysis/suite"
)

// TestAnalyzersCleanOnRepo runs the full production suite over the real
// module and asserts zero unsuppressed diagnostics — the same gate
// cmd/vetvoyager enforces in scripts/verify.sh, so a finding introduced
// anywhere in the tree fails `go test ./...` too.
func TestAnalyzersCleanOnRepo(t *testing.T) {
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	res := analysis.Run(pkgs, suite.Analyzers())
	if len(res.Findings) > 0 {
		var b strings.Builder
		for _, d := range res.Findings {
			b.WriteString("\n  ")
			b.WriteString(d.String())
		}
		t.Errorf("suite reported %d unsuppressed finding(s) on the repo:%s\n\nfix the code or add a //lint:ignore <check> <reason> directive", len(res.Findings), b.String())
	}
}

package serve

import (
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStartStopNoGoroutineLeak starts and fully shuts down the daemon 100
// times — each cycle serving real requests over loopback with the eviction
// janitor running — and requires the goroutine count to return to baseline.
// This is the teeth behind the shutdown protocol: Close must join the accept
// loop, every connection handler, the batcher, and the janitor, every time.
func TestStartStopNoGoroutineLeak(t *testing.T) {
	fixture(t)
	runtime.GC()
	baseline := runtime.NumGoroutine()

	for cycle := 0; cycle < 100; cycle++ {
		s, err := New(Config{
			Model:       fx.p.Model,
			Table:       fx.tab,
			MaxBatch:    8,
			MaxWait:     50 * time.Microsecond,
			IdleTimeout: 10 * time.Millisecond, // janitor ticks during the cycle
		})
		if err != nil {
			t.Fatalf("cycle %d: New: %v", cycle, err)
		}
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatalf("cycle %d: Start: %v", cycle, err)
		}
		cl, err := Dial(s.Addr().String())
		if err != nil {
			t.Fatalf("cycle %d: Dial: %v", cycle, err)
		}
		if err := cl.Ping(); err != nil {
			t.Fatalf("cycle %d: Ping: %v", cycle, err)
		}
		a := fx.tr.Accesses[cycle%len(fx.tr.Accesses)]
		if _, err := cl.Predict(uint64(cycle), a.PC, a.Addr, true); err != nil {
			t.Fatalf("cycle %d: fast Predict: %v", cycle, err)
		}
		// Every 10th cycle also exercise the batcher (model inference is the
		// slow path; 10 full batches keep the test under a second).
		if cycle%10 == 0 {
			if _, err := cl.Predict(uint64(cycle), a.PC, a.Addr, false); err != nil {
				t.Fatalf("cycle %d: model Predict: %v", cycle, err)
			}
		}
		_ = cl.Close()
		if err := s.Close(); err != nil {
			t.Fatalf("cycle %d: Close: %v", cycle, err)
		}
	}

	// The runtime parks finished goroutines asynchronously; give it a
	// bounded settle window before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	n := runtime.NumGoroutine()
	var sb strings.Builder
	_ = pprof.Lookup("goroutine").WriteTo(&sb, 1)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, n, sb.String())
}

// TestConcurrentStreamsUnderContention is the -race workhorse: many client
// goroutines hammer one server across both tiers while sessions are being
// closed and evicted underneath them. Responses are not compared here (the
// differential tests own correctness); this test exists so the race
// detector sees every cross-goroutine edge — session table, ring snapshots,
// admission queue, latency recorders, conn tracking — under real traffic.
func TestConcurrentStreamsUnderContention(t *testing.T) {
	fixture(t)
	rec := NewLatencyRecorder(1 << 12)
	s := startServer(t, Config{
		Model:       fx.p.Model,
		Table:       fx.tab,
		MaxBatch:    8,
		MaxWait:     100 * time.Microsecond,
		IdleTimeout: 5 * time.Millisecond, // evict aggressively mid-traffic
		FastLatency:  rec,
		ModelLatency: NewLatencyRecorder(1 << 12),
	})
	const (
		workers = 8
		reqs    = 150
	)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(s.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = cl.Close() }()
			for j := 0; j < reqs; j++ {
				a := fx.tr.Accesses[(w*31+j)%len(fx.tr.Accesses)]
				fast := (w+j)%3 != 0 // mix tiers ~2:1 fast:model
				if _, err := cl.Predict(uint64(w%5), a.PC, a.Addr, fast); err != nil {
					errCh <- err
					return
				}
				if j%50 == 49 {
					if err := cl.CloseStream(uint64(w % 5)); err != nil {
						errCh <- err
						return
					}
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if rec.Count() == 0 {
		t.Fatal("fast-tier latency recorder saw no samples")
	}
}

// TestCloseIsIdempotentAndUnblocksIdleConns: a connection parked in a read
// must not stall Close, and double Close is a no-op.
func TestCloseIsIdempotentAndUnblocksIdleConns(t *testing.T) {
	fixture(t)
	s, err := New(Config{Model: fx.p.Model})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	// cl now idles with its handler parked in ReadFrame.
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close stalled on an idle connection")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	_ = cl.Close()
}

package tensor

import (
	"fmt"
	"math"
)

func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

func tanh32(x float32) float32 {
	return float32(math.Tanh(float64(x)))
}

// SoftmaxRows computes a row-wise softmax of m into a new matrix, with the
// usual max-subtraction for numerical stability.
func SoftmaxRows(m *Mat) *Mat {
	out := NewMat(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		softmaxRow(out.Row(r), m.Row(r))
	}
	return out
}

func softmaxRow(dst, src []float32) {
	mx := src[0]
	for _, v := range src[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - mx))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// SoftmaxCrossEntropy is a fused softmax + cross-entropy loss over rows of
// logits. targets[r] is the class index for row r. It returns the mean loss
// (1×1 node) and, for inspection, the softmax probabilities.
func (t *Tape) SoftmaxCrossEntropy(logits *Node, targets []int) (*Node, *Mat) {
	if len(targets) != logits.Val.Rows {
		panic(fmt.Sprintf("tensor: SoftmaxCrossEntropy %d targets for %d rows", len(targets), logits.Val.Rows))
	}
	probs := t.getMat(logits.Val.Rows, logits.Val.Cols, false)
	for r := 0; r < logits.Val.Rows; r++ {
		softmaxRow(probs.Row(r), logits.Val.Row(r))
	}
	loss := t.getMat(1, 1, false)
	var total float64
	for r, cls := range targets {
		if cls < 0 || cls >= logits.Val.Cols {
			panic(fmt.Sprintf("tensor: SoftmaxCrossEntropy target %d out of range [0,%d)", cls, logits.Val.Cols))
		}
		p := float64(probs.At(r, cls))
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
	}
	n := float32(len(targets))
	loss.Data[0] = float32(total) / n
	out := t.newNode(loss, func(nd *Node) {
		if !logits.requiresGrad {
			return
		}
		g := logits.ensureGrad()
		scale := nd.Grad.Data[0] / n
		for r := 0; r < probs.Rows; r++ {
			grow := g.Row(r)
			prow := probs.Row(r)
			cls := targets[r]
			for c, p := range prow {
				d := p
				if c == cls {
					d -= 1
				}
				grow[c] += scale * d
			}
		}
	}, logits)
	return out, probs
}

// SigmoidBCEMulti is a fused sigmoid + binary-cross-entropy loss for
// multi-label classification (paper §4.4). positives[r] lists the classes
// labeled 1 for row r (possibly empty); every other class is labeled 0.
// It returns the mean loss over all (row, class) cells and the sigmoid
// probabilities.
func (t *Tape) SigmoidBCEMulti(logits *Node, positives [][]int) (*Node, *Mat) {
	return t.SigmoidBCEWeighted(logits, positives, nil)
}

// SigmoidBCEWeighted is SigmoidBCEMulti with per-label soft targets:
// weights[r][k] ∈ (0, 1] is the target value for class positives[r][k]
// (nil weights mean 1 everywhere). Soft targets let a multi-label trainer
// rank a primary label above secondary ones, which keeps independently
// predicted heads (pages and offsets) pair-consistent.
func (t *Tape) SigmoidBCEWeighted(logits *Node, positives [][]int, weights [][]float32) (*Node, *Mat) {
	if len(positives) != logits.Val.Rows {
		panic(fmt.Sprintf("tensor: SigmoidBCEWeighted %d label sets for %d rows", len(positives), logits.Val.Rows))
	}
	if weights != nil && len(weights) != len(positives) {
		panic("tensor: SigmoidBCEWeighted weights/positives length mismatch")
	}
	rows, cols := logits.Val.Rows, logits.Val.Cols
	probs := t.getMat(rows, cols, false)
	target := t.NewMat(1, cols).Data
	setTargets := func(r int) {
		for k, c := range positives[r] {
			if c < 0 || c >= cols {
				panic(fmt.Sprintf("tensor: SigmoidBCEWeighted label %d out of range [0,%d)", c, cols))
			}
			w := float32(1)
			if weights != nil && weights[r] != nil {
				w = weights[r][k]
			}
			if w > target[c] {
				target[c] = w
			}
		}
	}
	clearTargets := func(r int) {
		for _, c := range positives[r] {
			target[c] = 0
		}
	}
	// Positive cells are boosted so each row's positive gradient mass
	// roughly balances its negative mass. With one positive among
	// thousands of classes, unbalanced BCE drives the network toward the
	// label marginal long before any input conditioning emerges.
	posBoost := func(npos int) float32 {
		if npos == 0 {
			return 1
		}
		b := float32(cols-npos) / float32(npos)
		if b < 1 {
			return 1
		}
		if b > 64 {
			return 64
		}
		return b
	}
	var total float64
	for r := 0; r < rows; r++ {
		prow := probs.Row(r)
		lrow := logits.Val.Row(r)
		setTargets(r)
		boost := posBoost(len(positives[r]))
		for c, x := range lrow {
			p := sigmoid32(x)
			prow[c] = p
			// Numerically stable BCE with soft target y:
			// loss = log(1+e^-|x|) + max(x,0) - x*y.
			ax := float64(x)
			if ax < 0 {
				ax = -ax
			}
			l := math.Log1p(math.Exp(-ax))
			if x > 0 {
				l += float64(x)
			}
			l -= float64(x) * float64(target[c])
			if target[c] > 0 {
				l *= float64(boost)
			}
			total += l
		}
		clearTargets(r)
	}
	n := float32(rows * cols)
	loss := t.getMat(1, 1, false)
	loss.Data[0] = float32(total) / n
	out := t.newNode(loss, func(nd *Node) {
		if !logits.requiresGrad {
			return
		}
		g := logits.ensureGrad()
		scale := nd.Grad.Data[0] / n
		for r := 0; r < rows; r++ {
			grow := g.Row(r)
			prow := probs.Row(r)
			setTargets(r)
			boost := posBoost(len(positives[r]))
			for c, p := range prow {
				d := scale * (p - target[c])
				if target[c] > 0 {
					d *= boost
				}
				grow[c] += d
			}
			clearTargets(r)
		}
	}, logits)
	return out, probs
}

// MoEAttention implements the paper's page-aware offset embedding
// (Equations 9–10): the query (page embedding, B×D) attends over n expert
// chunks of the offset embedding (B×(n·D)); the output is the
// attention-weighted sum of the chunks (B×D). scale is the paper's scaling
// factor f ∈ (0, 1].
//
// The returned weights matrix (B×n) holds the softmax attention
// probabilities for inspection and testing.
func (t *Tape) MoEAttention(query, experts *Node, scale float32) (*Node, *Mat) {
	b := query.Val.Rows
	d := query.Val.Cols
	if experts.Val.Rows != b {
		panic("tensor: MoEAttention batch mismatch")
	}
	if experts.Val.Cols%d != 0 {
		panic(fmt.Sprintf("tensor: MoEAttention expert width %d not a multiple of query width %d", experts.Val.Cols, d))
	}
	n := experts.Val.Cols / d
	weights := t.getMat(b, n, false)
	scores := t.getMat(b, n, false)
	out := t.NewMat(b, d)
	for r := 0; r < b; r++ {
		q := query.Val.Row(r)
		e := experts.Val.Row(r)
		srow := scores.Row(r)
		for s := 0; s < n; s++ {
			chunk := e[s*d : (s+1)*d]
			var dot float32
			for i, qv := range q {
				dot += qv * chunk[i]
			}
			srow[s] = scale * dot
		}
		wrow := weights.Row(r)
		softmaxRow(wrow, srow)
		orow := out.Row(r)
		for s := 0; s < n; s++ {
			w := wrow[s]
			chunk := e[s*d : (s+1)*d]
			for i, cv := range chunk {
				orow[i] += w * cv
			}
		}
	}
	node := t.newNode(out, func(nd *Node) {
		// Let a = softmax(f·q·kᵀ), out = Σ_s a_s k_s.
		// dL/dk_s = a_s·dout + (dL/da_s)·(softmax jac)·f·q
		// dL/dq   = Σ_s (dL/dscore_s)·f·k_s
		qGrad := query.requiresGrad
		eGrad := experts.requiresGrad
		dA := t.getMat(1, n, false).Data
		dScore := t.getMat(1, n, false).Data
		for r := 0; r < b; r++ {
			gout := nd.Grad.Row(r)
			wrow := weights.Row(r)
			e := experts.Val.Row(r)
			q := query.Val.Row(r)

			// dL/da_s = dot(gout, k_s)
			for s := 0; s < n; s++ {
				chunk := e[s*d : (s+1)*d]
				var dot float32
				for i, gv := range gout {
					dot += gv * chunk[i]
				}
				dA[s] = dot
			}
			// Softmax backward: dScore_s = a_s (dA_s - Σ_j a_j dA_j).
			var inner float32
			for s := 0; s < n; s++ {
				inner += wrow[s] * dA[s]
			}
			for s := 0; s < n; s++ {
				dScore[s] = wrow[s] * (dA[s] - inner) * scale
			}
			if qGrad {
				gq := query.ensureGrad().Row(r)
				for s := 0; s < n; s++ {
					ds := dScore[s]
					if ds == 0 {
						continue
					}
					chunk := e[s*d : (s+1)*d]
					for i, cv := range chunk {
						gq[i] += ds * cv
					}
				}
			}
			if eGrad {
				ge := experts.ensureGrad().Row(r)
				for s := 0; s < n; s++ {
					gchunk := ge[s*d : (s+1)*d]
					w := wrow[s]
					ds := dScore[s]
					for i := range gchunk {
						gchunk[i] += w*gout[i] + ds*q[i]
					}
				}
			}
		}
	}, query, experts)
	return node, weights
}

package vocab

import (
	"math/rand"
	"testing"

	"voyager/internal/trace"
)

// TestBuildIsDeterministic regression-tests the maporder fixes: vocabulary
// construction ranges over frequency maps, and before the sorted-key fix
// two Builds over the same trace could assign different token ids. Every
// access must encode identically across independent Builds.
func TestBuildIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := &trace.Trace{Name: "det"}
	// A mix of hot lines (absolute tokens), cold lines (delta tokens), and
	// many distinct PCs so every frequency map has plenty of keys.
	hot := make([]uint64, 40)
	for i := range hot {
		hot[i] = uint64(rng.Intn(1 << 16))
	}
	for i := 0; i < 4000; i++ {
		var line uint64
		if rng.Intn(4) > 0 {
			line = hot[rng.Intn(len(hot))]
		} else {
			line = uint64(rng.Intn(1 << 20))
		}
		tr.Append(uint64(rng.Intn(200)), line<<trace.LineBits, uint64(i+1))
	}

	opts := Options{MinAddrFreq: 2, MaxDeltas: 32, MaxPCs: 100}
	a := Build(tr, opts)
	b := Build(tr, opts)

	if a.PageTokens() != b.PageTokens() || a.PCTokens() != b.PCTokens() {
		t.Fatalf("vocab sizes differ: pages %d vs %d, pcs %d vs %d",
			a.PageTokens(), b.PageTokens(), a.PCTokens(), b.PCTokens())
	}
	var prevLine uint64
	for i, acc := range tr.Accesses {
		line := trace.Line(acc.Addr)
		ap, ao := a.EncodeAccess(prevLine, line)
		bp, bo := b.EncodeAccess(prevLine, line)
		if ap != bp || ao != bo {
			t.Fatalf("access %d encodes differently: (%d,%d) vs (%d,%d)", i, ap, ao, bp, bo)
		}
		if a.PCToken(acc.PC) != b.PCToken(acc.PC) {
			t.Fatalf("access %d: pc token %d vs %d", i, a.PCToken(acc.PC), b.PCToken(acc.PC))
		}
		prevLine = line
	}
}

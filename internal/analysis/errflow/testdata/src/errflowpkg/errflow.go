// Package errflowpkg exercises the errflow analyzer: discarded and
// assigned-then-dead errors from serialization/IO calls.
package errflowpkg

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

type table struct{}

func (t *table) Save(path string) error { return nil }

// --- discards ---

func bareDiscard(f *os.File) {
	f.Close() // want "error from f.Close discarded"
}

func deferredDiscard(f *os.File, w io.Writer) {
	defer f.Close() // want "error from f.Close deferred with its error discarded"
	fmt.Fprintf(w, "header\n") // want "error from fmt.Fprintf discarded"
}

func explicitDiscardOK(f *os.File) {
	_ = f.Close() // visible, audited drop: not flagged
	defer func() { _ = f.Close() }()
}

// --- assigned then dead ---

func deadAtExit(t *table, path string) {
	err := t.Save(path)
	if err != nil {
		return
	}
	// The compiler is satisfied (err was read above), but this second
	// result is dead: nothing reads it before the function returns.
	err = t.Save(path) // want "error from t.Save assigned here is never read"
	fmt.Println("saved") // Println is not watched
}

func deadOnOnePath(t *table, path string, verbose bool) error {
	err := t.Save(path) // want "error from t.Save assigned here is never read"
	if verbose {
		return nil // err dies on this path
	}
	return err
}

func overwrittenUnchecked(w io.Writer) error {
	_, err := w.Write([]byte("a")) // want "error from w.Write assigned here is overwritten"
	_, err = w.Write([]byte("b"))
	return err
}

func loopOverwrite(w io.Writer, lines []string) {
	var err error
	for _, l := range lines {
		_, err = fmt.Fprintf(w, "%s\n", l) // want "error from fmt.Fprintf assigned here is overwritten"
	}
	_ = err == nil
}

// --- checked: not flagged ---

func checkedEverywhere(t *table, path string) error {
	if err := t.Save(path); err != nil {
		return err
	}
	return nil
}

func checkedAfterBranches(w io.Writer, verbose bool) error {
	_, err := w.Write([]byte("x"))
	if verbose {
		fmt.Println("wrote")
	}
	return err
}

func propagatedDirectly(f *os.File) error {
	return f.Close()
}

func namedResultBareReturn(t *table, path string) (err error) {
	err = t.Save(path)
	return // bare return reads the named result
}

func checkedInLoop(w io.Writer, lines []string) error {
	for _, l := range lines {
		if _, err := w.Write([]byte(l)); err != nil {
			return err
		}
	}
	return nil
}

func capturedByClosure(t *table, path string) func() {
	var err error
	err = t.Save(path) // err escapes into the closure; not tracked
	return func() {
		if err != nil {
			panic(err)
		}
	}
}

func suppressedDiscard(f *os.File) {
	//lint:ignore errflow read-only file, close error carries no data loss
	f.Close()
}

// unwatchedCallsIgnored: errors from calls outside the watch list are the
// caller's business (govet/staticcheck territory), not errflow's.
func unwatchedCallsIgnored(path string) {
	os.Remove(path)
}

// stderrDiagnosticsExempt: a failed write to stderr has nowhere left to
// report itself, so diagnostic prints are not findings.
func stderrDiagnosticsExempt(msg string) {
	fmt.Fprintln(os.Stderr, "warning:", msg)
	fmt.Fprintf(os.Stderr, "detail: %s\n", msg)
}

// bufferWritesExempt: bytes.Buffer and strings.Builder cannot fail; their
// error results exist only to satisfy io interfaces.
func bufferWritesExempt(s string) string {
	var b strings.Builder
	b.WriteString(s)
	fmt.Fprintf(&b, "%s\n", s)
	var buf bytes.Buffer
	buf.WriteString(s)
	fmt.Fprintln(&buf, s)
	return b.String() + buf.String()
}

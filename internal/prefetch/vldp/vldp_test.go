package vldp

import (
	"testing"

	"voyager/internal/trace"
)

func acc(line uint64) trace.Access {
	return trace.Access{PC: 1, Addr: line << trace.LineBits}
}

func TestLearnsRepeatingDeltaPattern(t *testing.T) {
	p := New(1)
	// Delta pattern +1 +1 +3 within one page region, repeated.
	line := uint64(1 << 14) // offsets cycle within pages
	deltas := []int64{1, 1, 3}
	var out []uint64
	var last uint64
	correct, total := 0, 0
	for i := 0; i < 400; i++ {
		if i > 200 && len(out) == 1 {
			total++
			if trace.Line(out[0]) == line {
				correct++
			}
		}
		out = p.Access(i, acc(line))
		last = line
		line = uint64(int64(line) + deltas[i%3])
	}
	_ = last
	if total == 0 {
		t.Fatalf("no predictions")
	}
	if rate := float64(correct) / float64(total); rate < 0.9 {
		t.Fatalf("delta-pattern accuracy %.2f", rate)
	}
}

// The history disambiguates: after (+1,+1) the next delta is +3, but after
// (+3,+1) it is +1. A single-delta predictor cannot separate these.
func TestHistoryDisambiguates(t *testing.T) {
	p := New(1)
	line := uint64(1 << 14)
	deltas := []int64{1, 1, 3}
	for i := 0; i < 300; i++ {
		p.Access(i, acc(line))
		line = uint64(int64(line) + deltas[i%3])
	}
	// Verify at a known phase: the prediction after observing ...,+3,+1,+1
	// must be +3.
	// (Covered statistically by the first test; here just check table state.)
	if p.Entries() == 0 {
		t.Fatalf("no table entries")
	}
}

func TestDegreeChains(t *testing.T) {
	p := New(3)
	line := uint64(1 << 14)
	var out []uint64
	for i := 0; i < 100; i++ {
		out = p.Access(i, acc(line))
		line += 2
	}
	if len(out) != 3 {
		t.Fatalf("degree-3 chain: %v", out)
	}
	base := line - 2
	for k, a := range out {
		if trace.Line(a) != base+uint64(2*(k+1)) {
			t.Fatalf("chain[%d]=%d", k, trace.Line(a))
		}
	}
	if p.Name() != "vldp" {
		t.Fatalf("name")
	}
}

func TestColdPage(t *testing.T) {
	p := New(1)
	if out := p.Access(0, acc(5)); out != nil {
		t.Fatalf("cold page predicted %v", out)
	}
}

package nn

import (
	"voyager/internal/tensor"
	"voyager/internal/tensor/quant"
)

// QuantizedLinear is the inference-only int8 shadow of a Linear layer:
// weights quantized with per-column symmetric scales (quant.Q8Mat), bias
// kept float32. It shares nothing with the source layer after (re)quantize,
// so many predict workers can read it concurrently while the fp32 layer
// keeps training — refresh with Requantize when the weights have moved.
type QuantizedLinear struct {
	W *quant.Q8Mat
	B []float32
}

// QuantizeLinear builds the quantized shadow of l.
func QuantizeLinear(l *Linear) *QuantizedLinear {
	return &QuantizedLinear{
		W: quant.QuantizeQ8(l.W.W),
		B: append([]float32(nil), l.B.W.Row(0)...),
	}
}

// Requantize refreshes the shadow from l's current weights, allocating
// nothing. Must not run concurrently with Forward.
func (q *QuantizedLinear) Requantize(l *Linear) {
	q.W.RequantizeFrom(l.W.W)
	copy(q.B, l.B.W.Row(0))
}

// Forward computes y = x·ŵ + b as a constant node on the tape arena. The
// node has no backward hook — this path is inference-only; training keeps
// the fp32 Linear.
func (q *QuantizedLinear) Forward(tp *tensor.Tape, x *tensor.Node) *tensor.Node {
	out := tp.NewMat(x.Val.Rows, q.W.Cols)
	quant.MatMulQ8(out, x.Val, q.W, q.B)
	return tp.Const(out)
}

// Bytes returns the quantized layer's storage footprint (weights + scales +
// fp32 bias).
func (q *QuantizedLinear) Bytes() int { return q.W.Bytes() + 4*len(q.B) }

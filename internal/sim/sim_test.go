package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"voyager/internal/prefetch"
	"voyager/internal/trace"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("t", 64*64, 4, 1) // 64 lines, 16 sets × 4 ways
	if hit, _ := c.Lookup(5, 1); hit {
		t.Fatalf("cold lookup hit")
	}
	c.Fill(5, 2, false)
	if hit, _ := c.Lookup(5, 3); !hit {
		t.Fatalf("filled line missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set × 2 ways: lines mapping to set 0 in a 2-line direct structure.
	c := NewCache("t", 2*64, 2, 1)
	c.Fill(0, 1, false)
	c.Fill(10, 2, false) // same set (only one set)
	c.Lookup(0, 3)       // touch 0 → 10 is now LRU
	ev, _, had := c.Fill(20, 4, false)
	if !had || ev != 10 {
		t.Fatalf("evicted %d (had=%v), want 10", ev, had)
	}
	if !c.Contains(0) || !c.Contains(20) || c.Contains(10) {
		t.Fatalf("wrong residents after eviction")
	}
}

func TestCachePrefetchBit(t *testing.T) {
	c := NewCache("t", 4*64, 4, 1)
	c.Fill(7, 1, true)
	hit, wasPf := c.Lookup(7, 2)
	if !hit || !wasPf {
		t.Fatalf("first demand hit should report prefetch bit")
	}
	hit, wasPf = c.Lookup(7, 3)
	if !hit || wasPf {
		t.Fatalf("prefetch bit must clear after first demand hit")
	}
	// Demand re-fill of a prefetched line clears the bit.
	c.Fill(8, 4, true)
	c.Fill(8, 5, false)
	_, wasPf = c.Lookup(8, 6)
	if wasPf {
		t.Fatalf("demand fill should clear prefetch bit")
	}
}

// Property: occupancy never exceeds capacity, and a just-filled line is
// always resident.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache("t", 32*64, 4, 1) // 32 lines
		for i := 0; i < 500; i++ {
			line := rng.Uint64() % 256
			if rng.Float64() < 0.5 {
				c.Lookup(line, uint64(i))
			} else {
				c.Fill(line, uint64(i), rng.Float64() < 0.3)
				if !c.Contains(line) {
					return false
				}
			}
			if c.Occupancy() > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewCache("t", 3*64, 2, 1) // 1.5 sets
}

func TestDRAMRowBuffer(t *testing.T) {
	d := NewDRAM()
	// Same line twice: first opens the row (miss), second hits.
	first := d.Access(0, 0)
	second := d.Access(0, first)
	if d.RowMisses != 1 || d.RowHits != 1 {
		t.Fatalf("rowMisses=%d rowHits=%d", d.RowMisses, d.RowHits)
	}
	if first-0 != uint64(d.TRP+d.TRCD+d.TCAS) {
		t.Fatalf("row-miss latency %d", first)
	}
	if second-first != uint64(d.TCAS) {
		t.Fatalf("row-hit latency %d", second-first)
	}
}

func TestDRAMBandwidthCap(t *testing.T) {
	d := NewDRAM()
	// Saturate one channel: issue many requests to channel 0 at cycle 0.
	var last uint64
	for i := 0; i < 10; i++ {
		last = d.Access(uint64(i*2), 0) // even lines → channel 0
	}
	// The 10th request cannot complete before 9 bus slots have elapsed.
	if last < uint64(9*d.BusCycles) {
		t.Fatalf("bandwidth cap not enforced: last=%d", last)
	}
}

func seqTrace(n int, stride uint64) *trace.Trace {
	tr := &trace.Trace{Name: "seq"}
	for i := 0; i < n; i++ {
		tr.Append(0x400000, uint64(i)*stride, uint64(i*5)+1)
	}
	tr.Instructions = uint64(n * 5)
	return tr
}

func pointerChaseTrace(n, footprint int, rng *rand.Rand) *trace.Trace {
	// A random cycle over `footprint` lines (larger than the LLC), walked
	// repeatedly with 12 non-memory instructions per load: every access is
	// a capacity miss without prefetching, latency-bound rather than
	// bandwidth-bound, and perfectly predictable for a last-successor
	// table — the cleanest possible prefetching testbed.
	perm := rng.Perm(footprint)
	tr := &trace.Trace{Name: "chase"}
	pos := 0
	for i := 0; i < n; i++ {
		tr.Append(0x400100, uint64(perm[pos])*64, uint64(i*12)+1)
		pos = (pos + 1) % footprint
	}
	tr.Instructions = uint64(n * 12)
	return tr
}

func TestMachineIPCBounds(t *testing.T) {
	cfg := DefaultConfig()
	tr := seqTrace(5000, 8) // dense in-line accesses: mostly L1 hits
	res := Simulate(tr, prefetch.Nil{}, cfg)
	if res.IPC <= 0 || res.IPC > float64(cfg.Width) {
		t.Fatalf("IPC %v out of (0, %d]", res.IPC, cfg.Width)
	}
	if res.Instructions != tr.Instructions {
		t.Fatalf("instructions %d != %d", res.Instructions, tr.Instructions)
	}
}

func TestPerfectPrefetcherImprovesIPC(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := pointerChaseTrace(120000, 60000, rng)
	cfg := DefaultConfig()

	base := Simulate(tr, prefetch.Nil{}, cfg)
	// Oracle: prefetch the next access's line, 16 accesses ahead so the
	// fill has time to land.
	oracle := prefetch.Func{Label: "oracle", Fn: func(i int, a trace.Access) []uint64 {
		j := i + 16
		if j >= tr.Len() {
			return nil
		}
		return []uint64{trace.LineAddr(tr.Accesses[j].Addr)}
	}}
	pf := Simulate(tr, oracle, cfg)

	if pf.IPC <= base.IPC*1.10 {
		t.Fatalf("oracle prefetcher should improve IPC ≥10%%: base %.3f pf %.3f", base.IPC, pf.IPC)
	}
	if pf.Coverage() < 0.8 {
		t.Fatalf("oracle coverage %.2f, want ≥0.8", pf.Coverage())
	}
	if pf.Accuracy() < 0.8 {
		t.Fatalf("oracle accuracy %.2f, want ≥0.8", pf.Accuracy())
	}
}

func TestUselessPrefetcherDoesNotHelp(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := pointerChaseTrace(80000, 60000, rng)
	cfg := DefaultConfig()
	base := Simulate(tr, prefetch.Nil{}, cfg)
	junk := prefetch.Func{Label: "junk", Fn: func(i int, a trace.Access) []uint64 {
		return []uint64{uint64(0x7000_0000) + uint64(i%512)*64}
	}}
	res := Simulate(tr, junk, cfg)
	if res.IPC > base.IPC*1.02 {
		t.Fatalf("junk prefetcher should not help: base %.3f junk %.3f", base.IPC, res.IPC)
	}
	if res.Accuracy() > 0.05 {
		t.Fatalf("junk accuracy %.2f should be ~0", res.Accuracy())
	}
	if res.DRAMRequests <= base.DRAMRequests {
		t.Fatalf("junk prefetches should add DRAM traffic")
	}
}

func TestLatePrefetchPartialBenefit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := pointerChaseTrace(80000, 60000, rng)
	cfg := DefaultConfig()
	base := Simulate(tr, prefetch.Nil{}, cfg)
	// Prefetch only 1 access ahead: fills arrive late but still overlap.
	late := prefetch.Func{Label: "late", Fn: func(i int, a trace.Access) []uint64 {
		if i+1 >= tr.Len() {
			return nil
		}
		return []uint64{trace.LineAddr(tr.Accesses[i+1].Addr)}
	}}
	early := prefetch.Func{Label: "early", Fn: func(i int, a trace.Access) []uint64 {
		if i+16 >= tr.Len() {
			return nil
		}
		return []uint64{trace.LineAddr(tr.Accesses[i+16].Addr)}
	}}
	lateRes := Simulate(tr, late, cfg)
	earlyRes := Simulate(tr, early, cfg)
	if lateRes.IPC <= base.IPC {
		t.Fatalf("late prefetch should still help a bit: base %.3f late %.3f", base.IPC, lateRes.IPC)
	}
	if earlyRes.IPC <= lateRes.IPC {
		t.Fatalf("timely prefetch should beat late: late %.3f early %.3f", lateRes.IPC, earlyRes.IPC)
	}
	if lateRes.LLCLateCovered == 0 {
		t.Fatalf("expected late-covered merges")
	}
}

func TestResultMetrics(t *testing.T) {
	r := Result{PrefetchesIssued: 10, PrefetchesUseful: 8, LLCDemandMisses: 2}
	if r.Accuracy() != 0.8 {
		t.Fatalf("accuracy %v", r.Accuracy())
	}
	if r.Coverage() != 0.8 {
		t.Fatalf("coverage %v", r.Coverage())
	}
	var zero Result
	if zero.Accuracy() != 0 || zero.Coverage() != 0 {
		t.Fatalf("zero-result metrics should be 0")
	}
}

func TestConfigString(t *testing.T) {
	s := DefaultConfig().String()
	if s == "" {
		t.Fatalf("empty config string")
	}
}

func BenchmarkSimulateNoPrefetch(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tr := pointerChaseTrace(50000, 60000, rng)
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(tr, prefetch.Nil{}, cfg)
	}
}

func TestFilterLLC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := pointerChaseTrace(30000, 60000, rng)
	cfg := ScaledConfig()
	filtered, idx := FilterLLC(tr, cfg)
	if filtered.Len() == 0 || filtered.Len() > tr.Len() {
		t.Fatalf("filtered length %d of %d", filtered.Len(), tr.Len())
	}
	if len(idx) != filtered.Len() {
		t.Fatalf("index length mismatch")
	}
	for j := 1; j < len(idx); j++ {
		if idx[j] <= idx[j-1] {
			t.Fatalf("indices not increasing at %d", j)
		}
	}
	for j, i := range idx {
		if filtered.Accesses[j] != tr.Accesses[i] {
			t.Fatalf("filtered access %d does not match original %d", j, i)
		}
	}
	// A dense sequential trace is mostly absorbed by L1/L2.
	seq := seqTrace(20000, 8)
	fseq, _ := FilterLLC(seq, cfg)
	if fseq.Len() >= seq.Len()/4 {
		t.Fatalf("sequential trace barely filtered: %d of %d", fseq.Len(), seq.Len())
	}
	// Determinism.
	again, _ := FilterLLC(tr, cfg)
	if again.Len() != filtered.Len() {
		t.Fatalf("FilterLLC not deterministic")
	}
}

func TestMLPCapSlowsIndependentMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := pointerChaseTrace(30000, 60000, rng)
	low := DefaultConfig()
	low.MLP = 1
	high := DefaultConfig()
	high.MLP = 64
	ipcLow := Simulate(tr, prefetch.Nil{}, low).IPC
	ipcHigh := Simulate(tr, prefetch.Nil{}, high).IPC
	if ipcLow >= ipcHigh {
		t.Fatalf("MLP=1 (%.3f) should be slower than MLP=64 (%.3f)", ipcLow, ipcHigh)
	}
}

// Package hybrid composes ISB and BO the way the paper's Figure 9
// experiment does: "ISB and BO equally share the available degree, and with
// a degree of 1, the hybrid falls back to ISB." The hybrid covers both
// address correlations (ISB) and compulsory/spatial misses (BO).
package hybrid

import (
	"voyager/internal/prefetch"
	"voyager/internal/prefetch/bo"
	"voyager/internal/prefetch/isb"
	"voyager/internal/trace"
)

// Prefetcher is the ISB+BO hybrid.
type Prefetcher struct {
	Degree int
	isb    *isb.Ideal
	bo     *bo.Prefetcher
}

// New returns an ISB+BO hybrid with the given total degree.
func New(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	isbDeg := degree
	boDeg := 0
	if degree > 1 {
		isbDeg = (degree + 1) / 2
		boDeg = degree / 2
	}
	p := &Prefetcher{Degree: degree, isb: isb.NewIdeal(isbDeg)}
	if boDeg > 0 {
		p.bo = bo.New(boDeg)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "isb+bo" }

// Access trains both components and merges their predictions, deduplicated,
// capped at Degree.
func (p *Prefetcher) Access(i int, a trace.Access) []uint64 {
	out := p.isb.Access(i, a)
	if p.bo != nil {
		out = append(out, p.bo.Access(i, a)...)
	}
	return Dedup(out, p.Degree)
}

// Dedup removes duplicate line addresses preserving order and caps the
// result at max entries.
func Dedup(addrs []uint64, max int) []uint64 {
	if len(addrs) <= 1 {
		return addrs
	}
	seen := make(map[uint64]struct{}, len(addrs))
	out := addrs[:0]
	for _, a := range addrs {
		l := trace.Line(a)
		if _, ok := seen[l]; ok {
			continue
		}
		seen[l] = struct{}{}
		out = append(out, a)
		if len(out) == max {
			break
		}
	}
	return out
}

var _ prefetch.Prefetcher = (*Prefetcher)(nil)

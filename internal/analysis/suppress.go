package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// directive is one parsed //lint:ignore comment.
type directive struct {
	file   string
	line   int    // line the comment sits on
	checks string // comma-separated check names
	used   bool   // suppressed at least one finding this run
}

// directives indexes a package's //lint:ignore comments.
type directives struct {
	entries   []directive
	malformed []Diagnostic
}

// ignoreDirectives scans every file's comments for
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// A directive suppresses matching findings on its own line (trailing
// comment) and on the line immediately below it (comment-above style).
// A directive without a reason is itself reported as a finding.
func (p *Package) ignoreDirectives() *directives {
	d := &directives{}
	for _, f := range p.AllSyntax() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					d.malformed = append(d.malformed, Diagnostic{
						Pos:     pos,
						Check:   "lintdirective",
						Message: "malformed //lint:ignore: want \"//lint:ignore <check> <reason>\"",
					})
					continue
				}
				d.entries = append(d.entries, directive{
					file:   pos.Filename,
					line:   pos.Line,
					checks: fields[0],
				})
			}
		}
	}
	return d
}

// suppresses reports whether a directive covers the diagnostic, marking
// the matching directive as used (see stale).
func (d *directives) suppresses(diag Diagnostic) bool {
	for i := range d.entries {
		e := &d.entries[i]
		if e.file != diag.Pos.Filename {
			continue
		}
		if diag.Pos.Line != e.line && diag.Pos.Line != e.line+1 {
			continue
		}
		for _, c := range strings.Split(e.checks, ",") {
			if c == diag.Check || c == "all" {
				e.used = true
				return true
			}
		}
	}
	return false
}

// stale returns a "staleignore" finding for every directive that
// suppressed nothing this run. A suppression outliving its finding is a
// trap: it reads as "there is a known, audited violation here" when there
// is none, and it will silently swallow the *next* finding on that line —
// which may be a different bug than the one the reason describes.
//
// Only directives whose every named check was part of this run's analyzer
// set are judged (a partial run proves nothing), and "all" directives are
// exempt (they cannot be attributed to a single check going quiet).
func (d *directives) stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for i := range d.entries {
		e := &d.entries[i]
		if e.used {
			continue
		}
		judgeable := true
		for _, c := range strings.Split(e.checks, ",") {
			if c == "all" || !ran[c] {
				judgeable = false
				break
			}
		}
		if !judgeable {
			continue
		}
		out = append(out, Diagnostic{
			Pos:   token.Position{Filename: e.file, Line: e.line, Column: 1},
			Check: "staleignore",
			Message: fmt.Sprintf("stale //lint:ignore %s: the check no longer fires on this line; delete the directive (or restore whatever it was auditing)",
				e.checks),
		})
	}
	return out
}

package hotalloc_test

import (
	"testing"

	"voyager/internal/analysis/analysistest"
	"voyager/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, hotalloc.New(), "testdata/src/hotallocpkg")
}

// Package tensor provides dense float32 matrices and a reverse-mode
// automatic-differentiation tape. It is the numerical substrate for the
// neural layers in package nn and, transitively, for the Voyager prefetcher.
//
// The package is deliberately small: 2-D row-major matrices, a handful of
// blocked BLAS-like kernels dispatched onto a persistent shared worker pool
// (see pool.go), and a Tape that records differentiable operations so
// gradients can be computed with Backward.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Mat is a dense, row-major float32 matrix.
//
// The zero value is an empty matrix. Use NewMat (zeroed) or one of the
// initializer helpers to create usable matrices.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// NewMat returns a zeroed rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float32) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice len %d != %d*%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row r, column c.
func (m *Mat) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set stores v at row r, column c.
func (m *Mat) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice sharing the matrix's backing array.
func (m *Mat) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Mat) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Mat) SameShape(o *Mat) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Mat) shape() string { return fmt.Sprintf("%dx%d", m.Rows, m.Cols) }

// String renders small matrices fully and large ones as a shape summary.
func (m *Mat) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Mat(%s)", m.shape())
	}
	s := "["
	for r := 0; r < m.Rows; r++ {
		if r > 0 {
			s += "; "
		}
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(r, c))
		}
	}
	return s + "]"
}

// AddInPlace computes m += o element-wise.
func (m *Mat) AddInPlace(o *Mat) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %s vs %s", m.shape(), o.shape()))
	}
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// ScaleInPlace computes m *= s element-wise.
func (m *Mat) ScaleInPlace(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AxpyInPlace computes m += a*o element-wise.
func (m *Mat) AxpyInPlace(a float32, o *Mat) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: AxpyInPlace shape mismatch %s vs %s", m.shape(), o.shape()))
	}
	for i, v := range o.Data {
		m.Data[i] += a * v
	}
}

// MaxAbs returns the largest absolute value in m (0 for an empty matrix).
func (m *Mat) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// L2Norm returns the Euclidean norm of all elements.
func (m *Mat) L2Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Glorot fills m with Xavier/Glorot-uniform values: U(-l, l) with
// l = sqrt(6/(rows+cols)). This is the initialization used for all weight
// matrices in the model.
func (m *Mat) Glorot(rng *rand.Rand) {
	//lint:ignore f64promote one-time init bound, not a hot kernel; rounding here is harmless
	l := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * l
	}
}

// Uniform fills m with U(-l, l) values.
func (m *Mat) Uniform(rng *rand.Rand, l float32) {
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * l
	}
}

// parallelThreshold is the amount of multiply-accumulate work below which
// MatMul runs single-threaded; tuned so tiny test matrices avoid pool
// dispatch overhead.
const parallelThreshold = 1 << 16

// kernelKTile is the dst-row tile for the transposed-A kernels: a tile of
// dst rows stays cache-resident while the input rows stream past it. All
// tilings preserve the serial kernels' per-element summation order
// (ascending k / ascending i), so blocked results are bit-identical to
// unblocked ones — a requirement for reproducible training.
const kernelKTile = 64

// Kernel numerics contract: the exact kernels below accumulate every output
// element in strictly ascending inner-index order (ascending k for a·b and
// a·bᵀ, ascending i for aᵀ·b), one float32 rounding per add, with no
// value-dependent branches. Zero inputs are NOT skipped, so IEEE semantics
// hold for non-finite and signed-zero inputs too: 0·Inf contributes NaN and
// -0 terms keep their sign, exactly like a naive triple loop (the former
// av == 0 skip branches diverged on such inputs; see TestMatMulNonFinite).
// The opt-in fast-math kernels (fastmath.go) relax only the association
// order, never the term set.

// MatMul computes dst = a·b, allocating dst when nil. a is r×k, b is k×c.
//
//hot:path
func MatMul(dst, a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %s · %s", a.shape(), b.shape()))
	}
	if dst == nil {
		//lint:ignore hotalloc nil dst opts into allocation; steady-state callers pass a reused dst
		dst = NewMat(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic("tensor: MatMul dst shape mismatch")
		}
		dst.Zero()
	}
	matMulAcc(dst, a, b)
	return dst
}

// matMulAcc computes dst += a·b using an ikj loop order (streaming through
// rows of b), parallelized across rows of a when the work is large enough.
func matMulAcc(dst, a, b *Mat) {
	kern := matMulAccRange
	if FastMathEnabled() {
		kern = matMulAccFastRange
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		kern(dst, a, b, 0, a.Rows)
		return
	}
	parallelKernel(a.Rows, kern, dst, a, b)
}

// matMulAccRange is the exact a·b kernel: per dst row, four b rows are fused
// into one branch-free pass so dst is loaded and stored once per four k
// terms instead of once per term. The adds per element stay sequential in
// ascending k (s += av0·b0[j]; s += av1·b1[j]; …), so results are
// bit-identical to the scalar ikj loop; the two-step reslices pin every
// row's length to n so the compiler drops the per-element bounds checks.
func matMulAccRange(dst, a, b *Mat, lo, hi int) {
	n := b.Cols
	kc := a.Cols
	if n == 0 {
		return
	}
	bd := b.Data
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)[:n]
		k := 0
		for ; k+4 <= kc; k += 4 {
			av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			b0 := bd[k*n:]
			b0 = b0[:n]
			b1 := bd[(k+1)*n:]
			b1 = b1[:n]
			b2 := bd[(k+2)*n:]
			b2 = b2[:n]
			b3 := bd[(k+3)*n:]
			b3 = b3[:n]
			for j := range drow {
				s := drow[j]
				s += av0 * b0[j]
				s += av1 * b1[j]
				s += av2 * b2[j]
				s += av3 * b3[j]
				drow[j] = s
			}
		}
		for ; k < kc; k++ {
			av := arow[k]
			brow := bd[k*n:]
			brow = brow[:n]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMulATransB computes dst = aᵀ·b where a is r×m and b is r×n, so dst is
// m×n. Used for weight gradients (xᵀ·dy). Allocates dst when nil.
//
//hot:path
func MatMulATransB(dst, a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATransB row mismatch %s vs %s", a.shape(), b.shape()))
	}
	if dst == nil {
		//lint:ignore hotalloc nil dst opts into allocation; steady-state callers pass a reused dst
		dst = NewMat(a.Cols, b.Cols)
	} else {
		if dst.Rows != a.Cols || dst.Cols != b.Cols {
			panic("tensor: MatMulATransB dst shape mismatch")
		}
		dst.Zero()
	}
	// dst[k][j] += a[i][k] * b[i][j]; parallelize over columns of a (rows of
	// dst) so goroutines never write the same dst row.
	kern := matMulATransBRange
	if FastMathEnabled() {
		kern = matMulATransBFastRange
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		kern(dst, a, b, 0, a.Cols)
		return dst
	}
	parallelKernel(a.Cols, kern, dst, a, b)
	return dst
}

// matMulATransBRange is blocked over dst rows: a kernelKTile-row tile of dst
// stays cache-resident while the rows of a/b stream past it, four at a time
// fused into one branch-free pass (dst loaded/stored once per four input
// rows). Per dst element the adds stay sequential in ascending i, so
// results are bit-identical to the scalar kernel.
func matMulATransBRange(dst, a, b *Mat, lo, hi int) {
	n := b.Cols
	if n == 0 {
		return
	}
	rows := a.Rows
	dd := dst.Data
	for t0 := lo; t0 < hi; t0 += kernelKTile {
		t1 := t0 + kernelKTile
		if t1 > hi {
			t1 = hi
		}
		i := 0
		for ; i+4 <= rows; i += 4 {
			a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
			b0 := b.Row(i)[:n]
			b1 := b.Row(i + 1)[:n]
			b2 := b.Row(i + 2)[:n]
			b3 := b.Row(i + 3)[:n]
			for k := t0; k < t1; k++ {
				av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
				drow := dd[k*n:]
				drow = drow[:n]
				for j := range drow {
					s := drow[j]
					s += av0 * b0[j]
					s += av1 * b1[j]
					s += av2 * b2[j]
					s += av3 * b3[j]
					drow[j] = s
				}
			}
		}
		for ; i < rows; i++ {
			arow := a.Row(i)
			brow := b.Row(i)[:n]
			for k := t0; k < t1; k++ {
				av := arow[k]
				drow := dd[k*n:]
				drow = drow[:n]
				for j := range drow {
					drow[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulABTrans computes dst = a·bᵀ where a is r×k and b is n×k, so dst is
// r×n. Used for input gradients (dy·Wᵀ). Allocates dst when nil.
//
//hot:path
func MatMulABTrans(dst, a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABTrans col mismatch %s vs %s", a.shape(), b.shape()))
	}
	if dst == nil {
		//lint:ignore hotalloc nil dst opts into allocation; steady-state callers pass a reused dst
		dst = NewMat(a.Rows, b.Rows)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Rows {
			panic("tensor: MatMulABTrans dst shape mismatch")
		}
		dst.Zero()
	}
	kern := matMulABTransRange
	if FastMathEnabled() {
		kern = matMulABTransFastRange
	}
	work := a.Rows * a.Cols * b.Rows
	if work < parallelThreshold {
		kern(dst, a, b, 0, a.Rows)
		return dst
	}
	parallelKernel(a.Rows, kern, dst, a, b)
	return dst
}

// MatMulABTransAcc computes dst += a·bᵀ in place — the input-gradient update
// dx += dy·Wᵀ. The kernel accumulates each dot product in registers and adds
// it to dst once, so the result is bit-identical to the former
// tmp = a·bᵀ; dst += tmp formulation while allocating nothing.
//
//hot:path
func MatMulABTransAcc(dst, a, b *Mat) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABTransAcc col mismatch %s vs %s", a.shape(), b.shape()))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulABTransAcc dst shape mismatch")
	}
	kern := matMulABTransRange
	if FastMathEnabled() {
		kern = matMulABTransFastRange
	}
	work := a.Rows * a.Cols * b.Rows
	if work < parallelThreshold {
		kern(dst, a, b, 0, a.Rows)
		return
	}
	parallelKernel(a.Rows, kern, dst, a, b)
}

// tileScratch recycles the per-goroutine accumulation tiles used by
// MatMulATransBAcc. The pool holds *[]float32 containers (not bare slices)
// so Get/Put stay allocation-free in steady state.
var tileScratch = sync.Pool{New: func() any { s := []float32(nil); return &s }}

// MatMulATransBAcc computes dst += aᵀ·b in place — the weight-gradient
// update dW += xᵀ·dy. The ATransB kernel accumulates into memory across input
// rows, so adding straight into a non-zero dst would fold dst's prior value
// into the partial sums and change the float32 result; instead each
// kernelKTile-row tile accumulates in a pooled scratch buffer (same
// per-element order as a zeroed tmp) and is added to dst once, keeping the
// result bit-identical to tmp = aᵀ·b; dst += tmp with zero allocations.
//
//hot:path
func MatMulATransBAcc(dst, a, b *Mat) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATransBAcc row mismatch %s vs %s", a.shape(), b.shape()))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulATransBAcc dst shape mismatch")
	}
	kern := matMulATransBAccRange
	if FastMathEnabled() {
		kern = matMulATransBAccFastRange
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		kern(dst, a, b, 0, a.Cols)
		return
	}
	parallelKernel(a.Cols, kern, dst, a, b)
}

func matMulATransBAccRange(dst, a, b *Mat, lo, hi int) {
	n := b.Cols
	if n == 0 {
		return
	}
	sp, scratch := tileScratchFor(hi-lo, n)
	rows := a.Rows
	for t0 := lo; t0 < hi; t0 += kernelKTile {
		t1 := t0 + kernelKTile
		if t1 > hi {
			t1 = hi
		}
		tile := scratch[:(t1-t0)*n]
		for i := range tile {
			tile[i] = 0
		}
		i := 0
		for ; i+4 <= rows; i += 4 {
			a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
			b0 := b.Row(i)[:n]
			b1 := b.Row(i + 1)[:n]
			b2 := b.Row(i + 2)[:n]
			b3 := b.Row(i + 3)[:n]
			for k := t0; k < t1; k++ {
				av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
				srow := tile[(k-t0)*n:]
				srow = srow[:n]
				for j := range srow {
					s := srow[j]
					s += av0 * b0[j]
					s += av1 * b1[j]
					s += av2 * b2[j]
					s += av3 * b3[j]
					srow[j] = s
				}
			}
		}
		for ; i < rows; i++ {
			arow := a.Row(i)
			brow := b.Row(i)[:n]
			for k := t0; k < t1; k++ {
				av := arow[k]
				srow := tile[(k-t0)*n:]
				srow = srow[:n]
				for j := range srow {
					srow[j] += av * brow[j]
				}
			}
		}
		for k := t0; k < t1; k++ {
			drow := dst.Data[k*n:]
			drow = drow[:n]
			srow := tile[(k-t0)*n:]
			srow = srow[:n]
			for j := range drow {
				drow[j] += srow[j]
			}
		}
	}
	tileScratchDone(sp, scratch)
}

// tileScratchFor checks out a zero-allocation scratch buffer big enough for
// a kernelKTile×n accumulation tile over a [lo, hi) stripe of tileRows rows.
func tileScratchFor(stripe, n int) (*[]float32, []float32) {
	tileRows := kernelKTile
	if stripe < tileRows {
		tileRows = stripe
	}
	sp := tileScratch.Get().(*[]float32)
	scratch := *sp
	if cap(scratch) < tileRows*n {
		scratch = make([]float32, tileRows*n)
	}
	return sp, scratch
}

// tileScratchDone returns a buffer checked out by tileScratchFor.
func tileScratchDone(sp *[]float32, scratch []float32) {
	*sp = scratch
	tileScratch.Put(sp)
}

// matMulABTransRange computes four dot products per pass of arow (a 1×4
// micro-kernel): four independent accumulators give the compiler ILP and cut
// loop overhead 4×. Each dot still sums over ascending k one rounding at a
// time, so results are bit-identical to the scalar kernel; the b rows are
// resliced to len(arow) so the inner loop runs without bounds checks.
func matMulABTransRange(dst, a, b *Mat, lo, hi int) {
	kc := a.Cols
	brows := b.Rows
	for i := lo; i < hi; i++ {
		arow := a.Row(i)[:kc]
		drow := dst.Row(i)
		j := 0
		for ; j+4 <= brows; j += 4 {
			b0 := b.Row(j)[:kc]
			b1 := b.Row(j + 1)[:kc]
			b2 := b.Row(j + 2)[:kc]
			b3 := b.Row(j + 3)[:kc]
			var s0, s1, s2, s3 float32
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			drow[j] += s0
			drow[j+1] += s1
			drow[j+2] += s2
			drow[j+3] += s3
		}
		for ; j < brows; j++ {
			brow := b.Row(j)[:kc]
			var s float32
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] += s
		}
	}
}

package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"voyager/internal/prefetch/distilled"
)

// startServer spins up a server on loopback and returns it with a cleanup.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// replayStream replays the fixture trace as one client stream and checks
// every response bit-for-bit against the offline PredictAt oracle.
func replayStream(s *Server, streamID uint64, fast bool) error {
	cl, err := Dial(s.Addr().String())
	if err != nil {
		return err
	}
	defer func() { _ = cl.Close() }()
	for pos, a := range fx.tr.Accesses {
		r, err := cl.Predict(streamID, a.PC, a.Addr, fast)
		if err != nil {
			return fmt.Errorf("pos %d: %v", pos, err)
		}
		want := wantResponse(pos)
		if err := compareCands(r.Cands, want); err != nil {
			return fmt.Errorf("stream %d pos %d: %v", streamID, pos, err)
		}
	}
	return cl.CloseStream(streamID)
}

func compareCands(got, want []Candidate) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d candidates, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("candidate %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// TestServingGoldenDifferential is the serving-path golden differential:
// N concurrent client streams replay the trace through a live daemon and
// every response must be bit-identical (token ids, float64 score bits,
// decoded addresses) to offline PredictAt on the same model — at 1 and 4
// inference replicas. This is the end-to-end proof that session encoding,
// window snapshots, admission batching, and sharded inference perturb
// nothing.
func TestServingGoldenDifferential(t *testing.T) {
	fixture(t)
	for _, replicas := range []int{1, 4} {
		t.Run(fmt.Sprintf("replicas=%d", replicas), func(t *testing.T) {
			model := fx.p.Model
			if replicas == 4 {
				model = fx.m4
			}
			s := startServer(t, Config{
				Model:    model,
				MaxBatch: 16,
				MaxWait:  200 * time.Microsecond,
			})
			const streams = 4
			errs := make([]error, streams)
			var wg sync.WaitGroup
			for i := 0; i < streams; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					errs[id] = replayStream(s, uint64(id), false)
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("stream %d: %v", i, err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestServingFastTierDifferential proves the inline fast tier returns
// exactly what the offline distilled replayer returns for the same stream:
// same addresses in the same order, including the next-line degradation on
// full table misses.
func TestServingFastTierDifferential(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{Model: fx.p.Model, Table: fx.tab})

	off, err := distilled.New(fx.tab, fx.p.Model.Vocab(), fx.degree)
	if err != nil {
		t.Fatalf("distilled.New: %v", err)
	}
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()
	for pos, a := range fx.tr.Accesses {
		r, err := cl.Predict(99, a.PC, a.Addr, true)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if r.Tier != TierFast {
			t.Fatalf("pos %d: tier %d, want fast", pos, r.Tier)
		}
		want := off.Access(pos, a)
		if len(r.Cands) != len(want) {
			t.Fatalf("pos %d: %d candidates, want %d", pos, len(r.Cands), len(want))
		}
		for i, addr := range want {
			if r.Cands[i].Addr != addr {
				t.Fatalf("pos %d cand %d: addr %#x, want %#x", pos, i, r.Cands[i].Addr, addr)
			}
		}
	}
}

// TestFastFlagFallsBackWithoutTable: FlagFast on a server with no table is
// answered by the model tier (and still matches the oracle).
func TestFastFlagFallsBackWithoutTable(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{Model: fx.p.Model})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()
	for pos := 0; pos < 16; pos++ {
		a := fx.tr.Accesses[pos]
		r, err := cl.Predict(1, a.PC, a.Addr, true)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if r.Tier != TierModel {
			t.Fatalf("pos %d: tier %d, want model fallback", pos, r.Tier)
		}
		if err := compareCands(r.Cands, wantResponse(pos)); err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
	}
}

package tracing

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
)

// Merge combines several exported Chrome trace files into one
// Perfetto-loadable timeline. Processes are unified BY NAME across inputs:
// the replay client and the serving daemon both record their RPC tracks
// under a process named the same way, so after merging, the client's async
// begin/end events and the server's async instants share a pid and pair
// under one (pid, cat, id) key — that is the whole point of cross-process
// trace propagation. Threads are never unified: every input track gets a
// fresh tid in the merged file (duration-span nesting is per-thread, and
// two files' "main" threads are distinct timelines that happen to share a
// label).
//
// Inputs are validated individually first (each side's export must stand
// alone), events keep their per-file order with files concatenated in
// argument order, dropped-event counts accumulate, and the merged output is
// re-validated before it is returned. Timestamps pass through verbatim —
// callers who want cross-file alignment use wall-clock exports; logical
// exports merge structurally but interleave by sequence number only.
func Merge(files ...[]byte) ([]byte, error) {
	parsed := make([]*TraceFile, len(files))
	for i, data := range files {
		tf, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("tracing: merge input %d: %w", i, err)
		}
		if _, err := Validate(tf); err != nil {
			return nil, fmt.Errorf("tracing: merge input %d invalid: %w", i, err)
		}
		parsed[i] = tf
	}

	// Pass 1: unify processes by name (first-seen order fixes merged pids)
	// and hand every input track a fresh merged tid.
	type trackKey struct{ file, pid, tid int }
	var procNames []string
	procIdx := map[string]int{} // name -> merged pid
	type mergedTrack struct {
		pid, tid int
		thread   string
	}
	var tracks []mergedTrack
	newTID := map[trackKey]int{}
	filePID := make([]map[int]int, len(parsed)) // per file: old pid -> merged pid
	for i, tf := range parsed {
		filePID[i] = map[int]int{}
		for _, ev := range tf.Events {
			if ev.Ph != "M" {
				continue
			}
			switch ev.Name {
			case "process_name":
				name := metaName(ev)
				pid, ok := procIdx[name]
				if !ok {
					procNames = append(procNames, name)
					pid = len(procNames)
					procIdx[name] = pid
				}
				filePID[i][ev.PID] = pid
			case "thread_name":
				k := trackKey{i, ev.PID, ev.TID}
				if _, ok := newTID[k]; !ok {
					tid := len(tracks) + 1
					newTID[k] = tid
					tracks = append(tracks, mergedTrack{pid: filePID[i][ev.PID], tid: tid, thread: metaName(ev)})
				}
			}
		}
	}

	var dropped uint64
	for i, tf := range parsed {
		if s, ok := tf.OtherData["droppedEvents"]; ok {
			n, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tracing: merge input %d: bad droppedEvents %q", i, s)
			}
			dropped += n
		}
	}

	// Pass 2: emit in the exporter's layout — metadata first, then events
	// with remapped (pid, tid).
	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for i, p := range procNames {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			i+1, quote(p)))
	}
	for _, tk := range tracks {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			tk.pid, tk.tid, quote(tk.thread)))
	}
	for i, tf := range parsed {
		for _, ev := range tf.Events {
			if ev.Ph == "M" {
				continue
			}
			pid := filePID[i][ev.PID]
			tid := newTID[trackKey{i, ev.PID, ev.TID}]
			ts := ev.TS.String()
			if ts == "" {
				ts = "0"
			}
			switch ev.Ph {
			case "B", "E", "i":
				emit(fmt.Sprintf(`{"name":%s,"ph":%s,"pid":%d,"tid":%d,"ts":%s}`,
					quote(ev.Name), quote(ev.Ph), pid, tid, ts))
			case "b", "n", "e":
				emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":%s,"pid":%d,"tid":%d,"ts":%s,"id":%s}`,
					quote(ev.Name), quote(ev.Cat), quote(ev.Ph), pid, tid, ts, quote(ev.ID)))
			}
		}
	}
	b.WriteString("\n]")
	if dropped > 0 {
		fmt.Fprintf(&b, ",\"otherData\":{\"droppedEvents\":\"%d\"}", dropped)
	}
	b.WriteString("}\n")

	out := b.Bytes()
	if _, err := ValidateBytes(out); err != nil {
		return nil, fmt.Errorf("tracing: merged trace fails validation: %w", err)
	}
	return out, nil
}

// metaName extracts args.name from a metadata row ("" when absent).
func metaName(ev ParsedEvent) string {
	var a struct {
		Name string `json:"name"`
	}
	if len(ev.Args) > 0 {
		if err := json.Unmarshal(ev.Args, &a); err != nil {
			return ""
		}
	}
	return a.Name
}

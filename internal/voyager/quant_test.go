package voyager

import (
	"testing"

	"voyager/internal/nn"
)

// quantHarness builds two bench harnesses over the same trace and seed —
// one fp32-predict, one quantized-predict — and advances both through the
// same (deterministic, serial) optimizer steps so their fp32 weights stay
// bit-identical. Any prediction difference is then quantization noise alone.
func quantHarness(t *testing.T, steps int) (fp32, quant *BenchHarness) {
	t.Helper()
	cycle := []uint64{0x10<<6 | 5, 0x22<<6 | 61, 0x15<<6 | 0, 0x9<<6 | 33, 0x30<<6 | 12}
	tr := cyclicTrace(cycle, 150)
	base := FastConfig()
	base.EpochAccesses = 400
	base.Degree = 2
	build := func(q bool) *BenchHarness {
		cfg := base
		cfg.QuantizedPredict = q
		h, err := NewBenchHarness(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	fp32, quant = build(false), build(true)
	for i := 0; i < steps; i++ {
		fp32.TrainStep()
		quant.TrainStep()
	}
	return fp32, quant
}

// TestQuantizedPredictAgreement is the accuracy-vs-speed differential for
// the int8 predict path: after real training steps, the quantized heads
// must rank the same top-1 (page, offset) pair as the fp32 heads on nearly
// every row. Per-column symmetric int8 keeps head logits within
// (scale/2)·Σ|h| of fp32 (see quant.TestMatMulQ8ErrorBound), which only
// flips a rank when two candidates are closer than that — rare once
// training separates the logits.
func TestQuantizedPredictAgreement(t *testing.T) {
	fh, qh := quantHarness(t, 12)
	fOut := fh.p.Model.PredictBatch(fh.seqs, fh.p.Cfg.Degree)
	qOut := qh.p.Model.PredictBatch(qh.seqs, qh.p.Cfg.Degree)
	if len(fOut) != len(qOut) || len(fOut) == 0 {
		t.Fatalf("row count %d vs %d", len(fOut), len(qOut))
	}
	agree := 0
	for r := range fOut {
		if len(fOut[r]) == 0 || len(qOut[r]) == 0 {
			t.Fatalf("row %d: empty candidates (%d vs %d)", r, len(fOut[r]), len(qOut[r]))
		}
		if fOut[r][0].PageTok == qOut[r][0].PageTok && fOut[r][0].OffTok == qOut[r][0].OffTok {
			agree++
		}
	}
	frac := float64(agree) / float64(len(fOut))
	t.Logf("top-1 agreement: %d/%d (%.3f)", agree, len(fOut), frac)
	if frac < 0.9 {
		t.Fatalf("top-1 agreement %.3f < 0.9 — int8 noise is flipping ranks", frac)
	}
}

// TestQuantizedPredictParallelMatchesSerial: the sharded quantized predict
// path reads one shared set of int8 shadows, and every op is row-local, so
// parallel results must be bit-identical to serial — same contract as the
// fp32 path.
func TestQuantizedPredictParallelMatchesSerial(t *testing.T) {
	cycle := []uint64{10, 20, 30, 40, 50, 60}
	tr := cyclicTrace(cycle, 150)
	base := FastConfig()
	base.EpochAccesses = 400
	base.Degree = 4
	base.QuantizedPredict = true
	run := func(workers int) [][]Candidate {
		cfg := base
		cfg.Workers = workers
		h, err := NewBenchHarness(tr, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return h.p.Model.PredictBatch(h.seqs, cfg.Degree)
	}
	serial, parallel := run(1), run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("row count %d vs %d", len(serial), len(parallel))
	}
	for r := range serial {
		if len(serial[r]) != len(parallel[r]) {
			t.Fatalf("row %d: %d vs %d candidates", r, len(serial[r]), len(parallel[r]))
		}
		for k := range serial[r] {
			if serial[r][k] != parallel[r][k] {
				t.Fatalf("row %d cand %d: %+v vs %+v", r, k, serial[r][k], parallel[r][k])
			}
		}
	}
}

// TestQuantizedPredictLazyRequant pins the staleness protocol: the shadows
// are rebuilt only after TrainBatch marks them dirty, not on every predict
// (the steady-state predict path must not pay requantization), and after a
// train + predict cycle they exactly match quantizing the current weights.
func TestQuantizedPredictLazyRequant(t *testing.T) {
	_, qh := quantHarness(t, 2)
	m := qh.p.Model
	out1 := m.PredictBatch(qh.seqs, qh.p.Cfg.Degree)
	if m.qDirty {
		t.Fatal("shadows still dirty after predict")
	}

	// Scribbling on the fp32 weights WITHOUT a TrainBatch must not change
	// quantized predictions: the shadow is intentionally stale.
	for i := range m.pageHead.W.W.Data {
		m.pageHead.W.W.Data[i] += 0.25
	}
	out2 := m.PredictBatch(qh.seqs, qh.p.Cfg.Degree)
	for r := range out1 {
		for k := range out1[r] {
			if out1[r][k] != out2[r][k] {
				t.Fatalf("row %d cand %d changed without requantization: %+v vs %+v",
					r, k, out1[r][k], out2[r][k])
			}
		}
	}

	// A TrainBatch marks the shadows dirty; the next predict refreshes them
	// to match the then-current weights exactly.
	qh.TrainStep()
	if !m.qDirty {
		t.Fatal("TrainBatch did not mark shadows dirty")
	}
	m.PredictBatch(qh.seqs, qh.p.Cfg.Degree)
	if m.qDirty {
		t.Fatal("predict did not clear the dirty flag")
	}
	fresh := nn.QuantizeLinear(m.pageHead)
	for i := range fresh.W.Data {
		if m.qPageHead.W.Data[i] != fresh.W.Data[i] {
			t.Fatalf("shadow elem %d = %d, fresh quantization = %d",
				i, m.qPageHead.W.Data[i], fresh.W.Data[i])
		}
	}
}

// Package markov implements the classic Markov prefetcher (Joseph &
// Grunwald, ISCA 1997) from the paper's related work: each line keeps the
// K most recent distinct successors observed in the global stream, ranked
// by frequency, and all of them are prefetch candidates. It generalizes
// STMS's single-successor table and illustrates why pure global-stream
// correlation saturates (§2.1: "poor coverage and accuracy due to the poor
// predictability of the global access stream").
package markov

import "voyager/internal/trace"

// WaysPerEntry is the number of successors remembered per line (the
// original design uses 4).
const WaysPerEntry = 4

type succ struct {
	line  uint64
	count uint32
}

// Prefetcher is a Markov prefetcher with frequency-ranked successor lists.
type Prefetcher struct {
	Degree int

	table    map[uint64][]succ
	prevLine uint64
	primed   bool
}

// New returns a Markov prefetcher with the given degree.
func New(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &Prefetcher{Degree: degree, table: make(map[uint64][]succ)}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "markov" }

// Access trains the successor list of the previous line and prefetches the
// current line's top successors.
func (p *Prefetcher) Access(_ int, a trace.Access) []uint64 {
	line := trace.Line(a.Addr)
	if p.primed {
		p.train(p.prevLine, line)
	}
	p.prevLine = line
	p.primed = true

	succs := p.table[line]
	if len(succs) == 0 {
		return nil
	}
	degree := p.Degree
	if degree > len(succs) {
		degree = len(succs)
	}
	out := make([]uint64, 0, degree)
	for k := 0; k < degree; k++ {
		out = append(out, succs[k].line<<trace.LineBits)
	}
	return out
}

// train records next as a successor of prev, keeping the list sorted by
// descending count and capped at WaysPerEntry (LFU replacement).
func (p *Prefetcher) train(prev, next uint64) {
	succs := p.table[prev]
	for i := range succs {
		if succs[i].line == next {
			succs[i].count++
			// Bubble toward the front to keep descending order.
			for i > 0 && succs[i].count > succs[i-1].count {
				succs[i], succs[i-1] = succs[i-1], succs[i]
				i--
			}
			return
		}
	}
	if len(succs) < WaysPerEntry {
		p.table[prev] = append(succs, succ{line: next, count: 1})
		return
	}
	// Replace the lowest-count way (the last one, by the sort invariant).
	succs[len(succs)-1] = succ{line: next, count: 1}
}

// Entries returns the number of lines with successor lists.
func (p *Prefetcher) Entries() int { return len(p.table) }

package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary byte streams through the same framing +
// decode pipeline a connection handler runs: read a length-prefixed frame
// (bounded by MaxFrame), decode the payload, repeat. The invariants:
// never panic, never allocate from a hostile length prefix, and any payload
// that decodes cleanly must re-encode to exactly the bytes that were read
// (the fixed-size request encoding is canonical).
func FuzzDecodeRequest(f *testing.F) {
	// A valid frame, plus the malformed shapes the protocol must survive:
	// truncated payloads, oversized/hostile length prefixes, garbage bytes.
	valid := EncodeRequest(nil, Request{Op: OpPredict, Flags: FlagFast, Stream: 3, PC: 0x400123, Addr: 0x7fff0040})
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), valid...)) // two frames back to back
	f.Add(valid[:7])                                    // truncated mid-payload
	f.Add(valid[:3])                                    // truncated mid-header
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, 1<<31)
	f.Add(huge) // hostile length prefix
	zero := make([]byte, 4+RequestLen)
	f.Add(zero) // all-zero frame: bad version
	f.Add([]byte("garbage that is not a frame at all.."))

	// Trace-context (v2) shapes: a valid traced frame, a zero-id traced
	// frame (must still re-encode as v2 — HasCtx is frame identity), a
	// truncated context, a version/length mismatch each way, and a traced
	// frame at the request-size ceiling with saturated ids.
	traced := EncodeRequest(nil, Request{Op: OpPredict, Flags: FlagFast, Stream: 3,
		PC: 0x400123, Addr: 0x7fff0040, HasCtx: true, TraceID: 0xdead, SpanID: 0xbeef})
	f.Add(traced)
	f.Add(EncodeRequest(nil, Request{Op: OpPing, HasCtx: true})) // zero ids, still v2
	trunc := append([]byte{}, traced[:4+RequestLen]...) // v2 header, context cut off
	binary.BigEndian.PutUint32(trunc, RequestLen)
	f.Add(trunc)
	mismatch := append([]byte{}, traced...) // 44-byte frame claiming v1
	mismatch[4] = Version
	f.Add(mismatch)
	short := append([]byte{}, valid...) // 28-byte frame claiming v2
	short[4] = VersionTraced
	f.Add(short)
	f.Add(EncodeRequest(nil, Request{Op: OpClose, Flags: 0xff, Stream: ^uint64(0),
		PC: ^uint64(0), Addr: ^uint64(0), HasCtx: true, TraceID: ^uint64(0), SpanID: ^uint64(0)}))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for i := 0; i < 64; i++ { // bounded: each iteration consumes ≥4 bytes or stops
			payload, err := ReadFrame(br, buf)
			if err != nil {
				return
			}
			buf = payload
			req, err := DecodeRequest(payload)
			if err != nil {
				continue
			}
			re := EncodeRequest(nil, req)
			if !bytes.Equal(re[4:], payload) {
				t.Fatalf("decode/encode not canonical: payload %x re-encoded %x", payload, re[4:])
			}
		}
	})
}

// FuzzDecodeResponse pins the client-side decoder to the same never-panic
// contract (a hostile server must not crash the replay tool).
func FuzzDecodeResponse(f *testing.F) {
	ok := EncodeResponse(nil, &Response{Status: StatusOK, Tier: TierFast,
		Cands: []Candidate{{PageTok: 1, OffTok: 2, ScoreBits: 3, Addr: 4}}})
	f.Add(ok[4:])
	errFrame := EncodeResponse(nil, &Response{Status: StatusError, Err: "x"})
	f.Add(errFrame[4:])
	f.Add([]byte{})
	f.Add([]byte{Version, StatusOK, 0, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		var r Response
		_ = DecodeResponse(data, &r)
	})
}

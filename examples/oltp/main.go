// OLTP study: the paper's headline claim for Google's search and ads is
// that existing prefetchers barely help these many-PC, huge-footprint
// workloads while Voyager does. This example reproduces that comparison
// with the unified accuracy/coverage metric on the search- and ads-style
// generators (no IPC: like the paper's traces, these are memory-only
// streams).
//
//	go run ./examples/oltp
package main

import (
	"fmt"
	"log"

	"voyager/internal/eval"
	"voyager/internal/prefetch/bo"
	"voyager/internal/prefetch/isb"
	"voyager/internal/prefetch/stms"
	"voyager/internal/trace"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

func main() {
	for _, name := range []string{"search", "ads"} {
		tr, err := workloads.Generate(name, workloads.Config{
			Seed:        42,
			Scale:       1,
			MaxAccesses: 24_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(trace.ComputeStats(tr))

		epoch := tr.Len() / 4
		vcfg := voyager.ScaledConfig()
		vcfg.EpochAccesses = epoch
		vcfg.DropoutKeep = 1
		vcfg.Hidden = 64
		vcfg.PassesPerEpoch = 4
		fmt.Printf("training voyager on %s...\n", name)
		p, err := voyager.Train(tr, vcfg)
		if err != nil {
			log.Fatal(err)
		}

		rows := []struct {
			name  string
			preds [][]uint64
		}{
			{"stms", eval.CollectPredictions(tr, stms.New(1))},
			{"isb", eval.CollectPredictions(tr, isb.NewIdeal(1))},
			{"bo", eval.CollectPredictions(tr, bo.New(1))},
			{"voyager", p.Predictions()},
		}
		for _, r := range rows {
			u := eval.Unified(tr, r.preds, eval.DefaultWindow, epoch)
			fmt.Printf("  %-8s unified acc/cov = %5.1f%%\n", r.name, 100*u)
		}
		fmt.Println()
	}
}

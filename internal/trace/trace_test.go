package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddressGeometry(t *testing.T) {
	addr := uint64(0x12345_6C0) // arbitrary
	if Line(addr) != addr>>6 {
		t.Fatalf("Line")
	}
	if LineAddr(addr)&0x3F != 0 {
		t.Fatalf("LineAddr not aligned")
	}
	if got := Offset(0x1000); got != 0 {
		t.Fatalf("Offset(page start) = %d", got)
	}
	if got := Offset(0x1FC0); got != 63 {
		t.Fatalf("Offset(last line) = %d", got)
	}
	if NumOffsets != 64 {
		t.Fatalf("NumOffsets = %d", NumOffsets)
	}
}

// Property: Join(Page(a), Offset(a)) reproduces the line address of a.
func TestSplitJoinRoundtripProperty(t *testing.T) {
	f := func(addr uint64) bool {
		return Join(Page(addr), Offset(addr)) == LineAddr(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	tr := &Trace{Name: "toy"}
	tr.Append(1, 0x1000, 0)  // page 1, line A
	tr.Append(1, 0x1040, 5)  // page 1, line B
	tr.Append(2, 0x2000, 9)  // page 2, line C
	tr.Append(2, 0x1000, 12) // repeat line A
	s := ComputeStats(tr)
	if s.PCs != 2 || s.Addresses != 3 || s.Pages != 2 || s.Accesses != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatalf("empty String")
	}
}

func TestTopPCs(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 5; i++ {
		tr.Append(100, uint64(i)*64, uint64(i))
	}
	for i := 0; i < 3; i++ {
		tr.Append(200, uint64(i)*64, uint64(i))
	}
	tr.Append(300, 0, 0)
	top := TopPCs(tr, 2)
	if len(top) != 2 || top[0] != 100 || top[1] != 200 {
		t.Fatalf("TopPCs = %v", top)
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Name: "x", Instructions: 100}
	for i := 0; i < 10; i++ {
		tr.Append(uint64(i), uint64(i)*64, uint64(i))
	}
	sub := tr.Slice(2, 5)
	if sub.Len() != 3 || sub.Accesses[0].PC != 2 || sub.Name != "x" {
		t.Fatalf("Slice = %+v", sub)
	}
}

func randomTrace(rng *rand.Rand, n int) *Trace {
	tr := &Trace{Name: "rand", Instructions: uint64(n) * 10}
	inst := uint64(0)
	for i := 0; i < n; i++ {
		inst += uint64(rng.Intn(20))
		tr.Append(rng.Uint64()%1e6, rng.Uint64()%(1<<40), inst)
	}
	return tr
}

func TestBinaryIORoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, 5000} {
		tr := randomTrace(rng, n)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if got.Name != tr.Name || got.Instructions != tr.Instructions {
			t.Fatalf("header mismatch: %q/%d", got.Name, got.Instructions)
		}
		if n == 0 {
			if got.Len() != 0 {
				t.Fatalf("expected empty")
			}
			continue
		}
		if !reflect.DeepEqual(got.Accesses, tr.Accesses) {
			t.Fatalf("accesses mismatch for n=%d", n)
		}
	}
}

// Property: binary IO round-trips arbitrary access patterns.
func TestBinaryIORoundtripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, int(n))
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Accesses) != len(tr.Accesses) {
			return false
		}
		for i := range got.Accesses {
			if got.Accesses[i] != tr.Accesses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTextIORoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := randomTrace(rng, 200)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if got.Name != tr.Name || got.Instructions != tr.Instructions {
		t.Fatalf("header mismatch")
	}
	if !reflect.DeepEqual(got.Accesses, tr.Accesses) {
		t.Fatalf("accesses mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatalf("expected error for bad magic")
	}
	if _, err := Read(bytes.NewReader([]byte("VYGR\x09"))); err == nil {
		t.Fatalf("expected error for bad version")
	}
	if _, err := ReadText(bytes.NewReader([]byte("zz not-a-line"))); err == nil {
		t.Fatalf("expected parse error")
	}
}

func TestBinaryCompression(t *testing.T) {
	// Sequential traces should compress far below 24 bytes/record.
	tr := &Trace{Name: "seq"}
	for i := 0; i < 10000; i++ {
		tr.Append(0x400000, uint64(i)*64, uint64(i)*4)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / 10000
	if perRecord > 8 {
		t.Fatalf("sequential trace encodes at %.1f bytes/record, want < 8", perRecord)
	}
}

func BenchmarkTraceWrite(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTrace(rng, 10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		Write(&buf, tr)
	}
}

// Package bench provides one testing.B benchmark per paper artifact
// (DESIGN.md §3): each benchmark regenerates its table/figure at a reduced
// scale and reports wall time, so `go test -bench=. -benchmem` exercises
// the entire reproduction pipeline. Full-scale artifacts come from
// `go run ./cmd/experiments -run all`.
package bench

import (
	"math/rand"
	"testing"

	"voyager/internal/experiments"
	"voyager/internal/nn"
	"voyager/internal/prefetch/isb"
	"voyager/internal/prefetch/stms"
	"voyager/internal/sim"
	"voyager/internal/tensor"
	"voyager/internal/trace"
	"voyager/internal/voyager"
	"voyager/internal/workloads"
)

// benchOpts returns a small but non-trivial harness scale: big enough that
// the shapes (who wins) are visible, small enough to run in seconds.
func benchOpts(benches ...string) experiments.Options {
	o := experiments.TestOptions()
	o.Accesses = 12_000
	o.Benchmarks = benches
	return o
}

func BenchmarkTable2Stats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("astar", "bfs", "cc", "pr"))
		if got := r.Table2(); len(got.Rows) != 4 {
			b.Fatalf("rows = %d", len(got.Rows))
		}
	}
}

func BenchmarkFigure5Accuracy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("cc"))
		if s := r.Main().Figure5(); s == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure6Coverage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("soplex"))
		if s := r.Main().Figure6(); s == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure7Unified(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("search"))
		if f := r.Figure7(); len(f.Rows) != 1 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkFigure8IPC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("mcf"))
		if s := r.Main().Figure8(); s == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure9Degree(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("cc"))
		if f := r.Figure9(); len(f.Degrees) != 4 {
			b.Fatal("degrees")
		}
	}
}

func BenchmarkFigure1011Breakdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("mcf"))
		if f := r.Figure1011(); len(f.ISB) != 1 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkFigure12Features(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("cc"))
		if f := r.Figure12(); len(f.Rows) != 1 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkFigure15Labels(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts("cc"))
		if f := r.Figure15(); len(f.Rows) != 1 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkFigure17Overhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts())
		if f := r.Figure17(); f.VoyagerFP32 == 0 {
			b.Fatal("sizes")
		}
	}
}

func BenchmarkDeltaStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRun(benchOpts())
		if d := r.DeltaStudy(); d.With.Benchmark == "" {
			b.Fatal("empty")
		}
	}
}

// --- Component micro-benchmarks -------------------------------------------

func ccTrace(b *testing.B, n int) *trace.Trace {
	b.Helper()
	tr, err := workloads.Generate("cc", workloads.Config{Seed: 1, Scale: 1, MaxAccesses: n})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ccTrace(b, 20_000)
	}
}

func BenchmarkSimulatorNoPrefetch(b *testing.B) {
	b.ReportAllocs()
	tr := ccTrace(b, 20_000)
	cfg := sim.ScaledConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Simulate(tr, isb.NewIdeal(1), cfg)
	}
}

func BenchmarkTablePrefetcherAccess(b *testing.B) {
	b.ReportAllocs()
	tr := ccTrace(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := stms.New(1)
		for j, a := range tr.Accesses {
			p.Access(j, a)
		}
	}
}

func BenchmarkVoyagerTrainSmall(b *testing.B) {
	b.ReportAllocs()
	tr := ccTrace(b, 6_000)
	cfg := voyager.FastConfig()
	cfg.EpochAccesses = 1_500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := voyager.Train(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Data-parallel engine benchmarks --------------------------------------
//
// The -bench mode of cmd/experiments times the same stages and records them
// to BENCH_pr1.json; these testing.B twins make them available to
// `go test -bench` sweeps alongside the artifact benchmarks.

func benchMatPair(dim int) (*tensor.Mat, *tensor.Mat) {
	rng := rand.New(rand.NewSource(3))
	a, bm := tensor.NewMat(dim, dim), tensor.NewMat(dim, dim)
	a.Uniform(rng, 1)
	bm.Uniform(rng, 1)
	return a, bm
}

func BenchmarkMatMul256(b *testing.B) {
	b.ReportAllocs()
	a, bm := benchMatPair(256)
	dst := tensor.NewMat(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, a, bm)
	}
}

func BenchmarkMatMulATransB256(b *testing.B) {
	b.ReportAllocs()
	a, bm := benchMatPair(256)
	dst := tensor.NewMat(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulATransB(dst, a, bm)
	}
}

func BenchmarkMatMulABTrans256(b *testing.B) {
	b.ReportAllocs()
	a, bm := benchMatPair(256)
	dst := tensor.NewMat(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulABTrans(dst, a, bm)
	}
}

func BenchmarkLSTMStep(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(3))
	lstm := nn.NewLSTM("bench", 256, 256, rng)
	x := tensor.NewMat(64, 256)
	x.Uniform(rng, 1)
	// Long-lived tape + Reset is the production pattern: after the first
	// iteration warms the arena, steady-state steps are allocation-free.
	tp := tensor.NewTape()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Reset()
		lstm.Step(tp, tp.Const(x), lstm.ZeroState(tp, 64))
	}
}

func trainHarness(b *testing.B, workers int) *voyager.BenchHarness {
	b.Helper()
	tr := ccTrace(b, 12_000)
	cfg := voyager.ScaledConfig()
	cfg.Workers = workers
	h, err := voyager.NewBenchHarness(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkTrainBatchSerial(b *testing.B) {
	b.ReportAllocs()
	h := trainHarness(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.TrainStep()
	}
}

func BenchmarkTrainBatchParallel(b *testing.B) {
	b.ReportAllocs()
	h := trainHarness(b, voyager.WorkersAuto)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.TrainStep()
	}
}

func BenchmarkPredictBatchParallel(b *testing.B) {
	b.ReportAllocs()
	h := trainHarness(b, voyager.WorkersAuto)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PredictStep()
	}
}

func BenchmarkFigure5Parallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := benchOpts("cc")
		o.Workers = voyager.WorkersAuto
		r := experiments.NewRun(o)
		if s := r.Main().Figure5(); s == "" {
			b.Fatal("empty")
		}
	}
}

package waitleak_test

import (
	"testing"

	"voyager/internal/analysis/analysistest"
	"voyager/internal/analysis/waitleak"
)

func TestWaitLeak(t *testing.T) {
	analysistest.Run(t, waitleak.New(), "testdata/src/waitleakpkg")
}

package tensor

import "sync/atomic"

// Fast-math mode trades the exact kernels' bit-reproducible summation order
// for speed: dot products are split across independent partial accumulators
// and the fused k-passes combine their four products in a balanced tree
// before touching dst, so the compiler and the CPU can overlap the
// multiply-add chains instead of serializing one rounding per term.
//
// The term SET is identical to the exact kernels — only the association
// order changes — so results differ from exact mode by ordinary float32
// rounding noise (bounded by the differential tests in fastmath_test.go),
// never by dropped or duplicated terms. Because reassociation changes
// rounding, fast-math results are NOT bit-identical across kernel shapes or
// refactors, and the mode must stay off (the default) anywhere the
// determinism suite pins golden outputs: training that wants reproducible
// losses, the logical-clock trace exports, and every golden test. It is an
// explicit opt-in for inference-heavy or throughput-bound runs via
// SetFastMath (the -fastmath flag on the cmd binaries).
var fastMathOn atomic.Bool

// SetFastMath switches every matmul kernel between the exact
// (bit-reproducible, default) and the reassociated fast path. It is safe to
// call concurrently with running kernels; in-flight kernels finish on the
// path they started on.
func SetFastMath(on bool) { fastMathOn.Store(on) }

// FastMathEnabled reports whether the fast-math kernels are active.
func FastMathEnabled() bool { return fastMathOn.Load() }

// matMulAccFastRange is the fast a·b kernel: four b rows per pass like the
// exact kernel, but the four products combine in a balanced tree before the
// single add into dst (3 roundings per 4 terms instead of 4, and a shorter
// dependency chain per element).
func matMulAccFastRange(dst, a, b *Mat, lo, hi int) {
	n := b.Cols
	kc := a.Cols
	if n == 0 {
		return
	}
	bd := b.Data
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)[:n]
		k := 0
		for ; k+4 <= kc; k += 4 {
			av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			b0 := bd[k*n:]
			b0 = b0[:n]
			b1 := bd[(k+1)*n:]
			b1 = b1[:n]
			b2 := bd[(k+2)*n:]
			b2 = b2[:n]
			b3 := bd[(k+3)*n:]
			b3 = b3[:n]
			for j := range drow {
				drow[j] += (av0*b0[j] + av1*b1[j]) + (av2*b2[j] + av3*b3[j])
			}
		}
		for ; k < kc; k++ {
			av := arow[k]
			brow := bd[k*n:]
			brow = brow[:n]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// matMulABTransFastRange is the exact a·bᵀ kernel: its 1×4 dot micro-kernel
// already carries four independent ascending-k accumulator chains, and wider
// variants (eight dots per pass, or even/odd-k split accumulators) both
// measured SLOWER on the gc compiler — past four live float32 accumulators
// plus their row base pointers the register allocator starts spilling inside
// the inner loop. Since reassociation buys nothing here, fast mode keeps the
// exact summation order for this shape.
func matMulABTransFastRange(dst, a, b *Mat, lo, hi int) {
	matMulABTransRange(dst, a, b, lo, hi)
}

// matMulATransBFastRange is the fast aᵀ·b kernel: same dst-row tiling and
// four-input-row fusion as the exact kernel, with the four products combined
// in a balanced tree per element.
func matMulATransBFastRange(dst, a, b *Mat, lo, hi int) {
	n := b.Cols
	if n == 0 {
		return
	}
	rows := a.Rows
	dd := dst.Data
	for t0 := lo; t0 < hi; t0 += kernelKTile {
		t1 := t0 + kernelKTile
		if t1 > hi {
			t1 = hi
		}
		i := 0
		for ; i+4 <= rows; i += 4 {
			a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
			b0 := b.Row(i)[:n]
			b1 := b.Row(i + 1)[:n]
			b2 := b.Row(i + 2)[:n]
			b3 := b.Row(i + 3)[:n]
			for k := t0; k < t1; k++ {
				av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
				drow := dd[k*n:]
				drow = drow[:n]
				for j := range drow {
					drow[j] += (av0*b0[j] + av1*b1[j]) + (av2*b2[j] + av3*b3[j])
				}
			}
		}
		for ; i < rows; i++ {
			arow := a.Row(i)
			brow := b.Row(i)[:n]
			for k := t0; k < t1; k++ {
				av := arow[k]
				drow := dd[k*n:]
				drow = drow[:n]
				for j := range drow {
					drow[j] += av * brow[j]
				}
			}
		}
	}
}

// matMulATransBAccFastRange accumulates aᵀ·b straight into a non-zero dst.
// The exact kernel routes through a scratch tile to keep dst += aᵀ·b
// bit-identical to tmp = aᵀ·b; dst += tmp; fast mode folds dst's prior value
// into the running sums directly, which is one fewer pass over the tile.
func matMulATransBAccFastRange(dst, a, b *Mat, lo, hi int) {
	matMulATransBFastRange(dst, a, b, lo, hi)
}

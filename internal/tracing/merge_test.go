package tracing

import (
	"bytes"
	"strings"
	"testing"
)

// TestMergePairsAcrossProcessesByName: the cross-process RPC scenario. The
// client export holds async b/e spans under a process named "rpc"; the
// server export holds async "n" instants under its own "rpc" process. Each
// file validates alone (unpaired "n" is legal), and after Merge both land
// under one unified pid so the instants sit inside the client's span.
func TestMergePairsAcrossProcessesByName(t *testing.T) {
	client := New(Options{})
	ct := client.Track("rpc", "stream-1")
	ct.AsyncBegin("predict", 7)
	ct.AsyncEnd("predict", 7)
	client.Track("replay", "main").Instant("done")

	server := New(Options{})
	st := server.Track("rpc", "conn-3")
	st.AsyncInstant("srv_recv", 7)
	st.AsyncInstant("srv_reply", 7)

	a, b := client.Export(), server.Export()
	for i, data := range [][]byte{a, b} {
		if _, err := ValidateBytes(data); err != nil {
			t.Fatalf("input %d not valid standalone: %v", i, err)
		}
	}

	merged, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	st2, err := ValidateBytes(merged)
	if err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	// Processes unified by name: rpc + replay = 2, not 3.
	if st2.Processes != 2 {
		t.Fatalf("merged processes = %d, want 2 (rpc unified)", st2.Processes)
	}
	if st2.Threads != 3 {
		t.Fatalf("merged threads = %d, want 3 (tracks never unified)", st2.Threads)
	}
	if st2.AsyncSpans != 1 {
		t.Fatalf("merged async spans = %d, want 1", st2.AsyncSpans)
	}
	if st2.Instants != 3 { // "done" + two server marks
		t.Fatalf("merged instants = %d, want 3", st2.Instants)
	}
	// The pairing is literal: client span events and server marks must carry
	// the same pid and id in the merged file.
	tf, err := Parse(merged)
	if err != nil {
		t.Fatal(err)
	}
	pidOf := map[string]int{}
	for _, ev := range tf.Events {
		if ev.Ph == "b" || ev.Ph == "n" {
			if ev.ID != "0x7" {
				t.Fatalf("event %q id = %s, want 0x7", ev.Name, ev.ID)
			}
			pidOf[ev.Name] = ev.PID
		}
	}
	if pidOf["predict"] != pidOf["srv_recv"] {
		t.Fatalf("client span pid %d != server mark pid %d after merge",
			pidOf["predict"], pidOf["srv_recv"])
	}
}

// TestMergeKeepsThreadsDistinct: two files with identically named
// process/thread pairs carrying their own duration spans must not be
// flattened onto one thread — nesting would break. Merge gives each input
// track a fresh tid.
func TestMergeKeepsThreadsDistinct(t *testing.T) {
	mk := func() []byte {
		tr := New(Options{})
		sp := tr.Track("train", "main").Begin("epoch")
		sp.End()
		return tr.Export()
	}
	merged, err := Merge(mk(), mk())
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	st, err := ValidateBytes(merged)
	if err != nil {
		t.Fatalf("merged invalid: %v", err)
	}
	if st.Processes != 1 || st.Threads != 2 || st.Spans != 2 {
		t.Fatalf("procs=%d threads=%d spans=%d, want 1/2/2",
			st.Processes, st.Threads, st.Spans)
	}
}

// TestMergeAccumulatesDropped: otherData dropped counts sum across inputs.
func TestMergeAccumulatesDropped(t *testing.T) {
	withDrops := func(n string) []byte {
		tr := New(Options{})
		tr.Track("p", "t").Instant("x")
		data := tr.Export()
		return bytes.Replace(data, []byte("}\n]"),
			[]byte("}\n],\"otherData\":{\"droppedEvents\":\""+n+"\"}"), 1)
	}
	// otherData is spliced into otherwise-clean exports — the arena cap is
	// too large to hit honestly in a unit test.
	merged, err := Merge(withDrops("3"), withDrops("4"))
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if !strings.Contains(string(merged), `"droppedEvents":"7"`) {
		t.Fatalf("merged otherData missing summed drops:\n%s", merged)
	}
}

// TestMergeRejectsInvalidInput: a structurally broken input fails the merge
// with an error naming the input, instead of contaminating the output.
func TestMergeRejectsInvalidInput(t *testing.T) {
	good := New(Options{})
	good.Track("p", "t").Instant("x")
	bad := []byte(`{"traceEvents":[{"name":"e","ph":"E","pid":1,"tid":1,"ts":0}]}`)
	if _, err := Merge(good.Export(), bad); err == nil {
		t.Fatal("Merge accepted an invalid input")
	}
	if _, err := Merge([]byte("{")); err == nil {
		t.Fatal("Merge accepted unparseable input")
	}
}

// TestTracerDroppedEvents: the counter is 0 on a quiet tracer and on nil,
// and reflects per-track drops once an arena caps out (exercised on the
// accounting path via the snapshot counter, not by recording 4M events).
func TestTracerDroppedEvents(t *testing.T) {
	var nilTracer *Tracer
	if nilTracer.DroppedEvents() != 0 {
		t.Fatal("nil tracer reported drops")
	}
	tr := New(Options{})
	tk := tr.Track("p", "t")
	tk.Instant("x")
	if tr.DroppedEvents() != 0 {
		t.Fatal("clean tracer reported drops")
	}
	tk.dropped.Add(5)
	if got := tr.DroppedEvents(); got != 5 {
		t.Fatalf("DroppedEvents = %d, want 5", got)
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader resolves two worlds of imports without any build tooling:
// module-local paths ("voyager/...") map to directories under the module
// root and are parsed and type-checked by the loader itself; everything
// else (the standard library) is handed to go/importer's source importer,
// which type-checks straight from GOROOT source. Both share one FileSet so
// positions stay coherent, and both are cached process-wide: the stdlib
// closure (testing, fmt, math, …) is expensive to check and identical for
// every Loader in a test binary.
var (
	sharedFset *token.FileSet
	stdImp     types.ImporterFrom
	sharedMu   sync.Mutex
	pkgCache   = map[string]*Package{} // keyed by moduleRoot + "\x00" + importPath
)

func sharedImporter() (*token.FileSet, types.ImporterFrom) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedFset == nil {
		sharedFset = token.NewFileSet()
		stdImp = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	}
	return sharedFset, stdImp
}

// Package is one loaded, type-checked package.
type Package struct {
	Path string // import path (synthetic for testdata packages)
	Dir  string
	Name string

	Fset *token.FileSet
	// Files holds the non-test source files; TestFiles the in-package
	// _test.go files. Both are type-checked together (the augmented
	// package, as `go test` compiles it), so Info covers both.
	Files     []*ast.File
	TestFiles []*ast.File
	// IsTest marks an external foo_test package.
	IsTest bool

	Types *types.Package
	Info  *types.Info

	// XTest is the external _test package compiled against this one, if
	// the directory has any.
	XTest *Package
}

// AllSyntax returns every parsed file of the package.
func (p *Package) AllSyntax() []*ast.File {
	if len(p.TestFiles) == 0 {
		return p.Files
	}
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return out
}

// Loader loads packages of one module.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset    *token.FileSet
	std     types.ImporterFrom
	loading map[string]bool
}

// NewLoader locates the enclosing module starting from dir ("" means the
// working directory).
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset, std := sharedImporter()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the first go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer so the loader can be plugged into
// types.Config directly.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom resolves module-local paths itself and defers everything else
// to the stdlib source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.load(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

// Load type-checks the package in dir under the given import path,
// including its test files and (separately) its external test package.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	return l.load(dir, importPath)
}

// LoadPatterns expands "./..." (every package directory under the module
// root), "dir/..." (every package directory under dir — used by
// vetvoyager's self-check over internal/analysis/...), or loads explicit
// directory arguments, returning packages sorted by import path. Walks
// skip testdata, hidden and underscore directories.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	walkTree := func(root string) (int, error) {
		found := 0
		err := filepath.WalkDir(root, func(path string, de os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !de.IsDir() {
				return nil
			}
			name := de.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				found++
				addDir(path)
			}
			return nil
		})
		return found, err
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if _, err := walkTree(l.ModuleRoot); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			d := base
			if !filepath.IsAbs(d) {
				d = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(base, "./")))
			}
			if _, err := os.Stat(d); err != nil {
				return nil, fmt.Errorf("analysis: pattern %s: %w", pat, err)
			}
			found, err := walkTree(d)
			if err != nil {
				return nil, err
			}
			if found == 0 {
				return nil, fmt.Errorf("analysis: no packages under %s", pat)
			}
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			}
			if !hasGoFiles(d) {
				return nil, fmt.Errorf("analysis: no Go files in %s", d)
			}
			addDir(d)
		}
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, d := range dirs {
		pkg, err := l.load(d, l.importPathFor(d))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), "_") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

func (l *Loader) load(dir, importPath string) (*Package, error) {
	key := l.ModuleRoot + "\x00" + importPath
	sharedMu.Lock()
	if pkg, ok := pkgCache[key]; ok {
		sharedMu.Unlock()
		return pkg, nil
	}
	sharedMu.Unlock()
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var files, testFiles, xtestFiles []*ast.File
	var pkgName, xtestName string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			pkgName = f.Name.Name
			files = append(files, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			xtestName = f.Name.Name
			xtestFiles = append(xtestFiles, f)
		default:
			pkgName = f.Name.Name
			testFiles = append(testFiles, f)
		}
	}
	if len(files) == 0 && len(testFiles) == 0 && len(xtestFiles) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	pkg := &Package{Path: importPath, Dir: dir, Name: pkgName, Fset: l.fset}
	if len(files) > 0 || len(testFiles) > 0 {
		pkg.Files = files
		pkg.TestFiles = testFiles
		tp, info, err := l.check(importPath, pkg.AllSyntax())
		if err != nil {
			return nil, err
		}
		pkg.Types, pkg.Info = tp, info
		sharedMu.Lock()
		pkgCache[key] = pkg
		sharedMu.Unlock()
	}
	if len(xtestFiles) > 0 {
		xp := &Package{
			Path:   importPath + "_test",
			Dir:    dir,
			Name:   xtestName,
			Fset:   l.fset,
			Files:  xtestFiles,
			IsTest: true,
		}
		tp, info, err := l.check(xp.Path, xtestFiles)
		if err != nil {
			return nil, err
		}
		xp.Types, xp.Info = tp, info
		if pkg.Types != nil {
			pkg.XTest = xp
		} else {
			// Directory with only external test files; treat the xtest
			// package as the package itself.
			pkg = xp
			sharedMu.Lock()
			pkgCache[key] = pkg
			sharedMu.Unlock()
		}
	}
	return pkg, nil
}

func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tp, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return tp, info, nil
}

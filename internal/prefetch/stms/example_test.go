package stms_test

import (
	"fmt"

	"voyager/internal/prefetch/stms"
	"voyager/internal/trace"
)

// STMS memorizes consecutive-line pairs in the global stream: after seeing
// A→B once, the next access to A prefetches B.
func Example() {
	p := stms.New(1)
	stream := []uint64{0x1000, 0x2000, 0x3000, 0x1000}
	for i, addr := range stream {
		preds := p.Access(i, trace.Access{PC: 0x400000, Addr: addr, Inst: uint64(i + 1)})
		for _, target := range preds {
			fmt.Printf("access %#x -> prefetch %#x\n", addr, target)
		}
	}
	// Output:
	// access 0x1000 -> prefetch 0x2000
}

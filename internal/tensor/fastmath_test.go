package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMatMulATransB / naiveMatMulABTrans are scalar references whose
// per-element summation order (ascending i / ascending k, one float32
// rounding per add) matches the contract the exact kernels document — so
// the exact kernels must match them BITWISE, not just within tolerance.
func naiveMatMulATransB(a, b *Mat) *Mat {
	out := NewMat(a.Cols, b.Cols)
	for k := 0; k < a.Cols; k++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for i := 0; i < a.Rows; i++ {
				s += a.At(i, k) * b.At(i, j)
			}
			out.Set(k, j, s)
		}
	}
	return out
}

func naiveMatMulABTrans(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// matsBitIdentical compares by bit pattern, so NaNs compare equal to
// themselves and +0 differs from -0 — exactly the cases a tolerance
// comparison would paper over.
func matsBitIdentical(t *testing.T, name string, got, want *Mat) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d: got %v (%#08x) want %v (%#08x)",
				name, i, got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// bitIdentityShapes crosses parallelThreshold in both directions: 20·15·11
// stays serial, 130·70·90 dispatches to the worker pool — the blocked,
// unrolled, parallel kernels must stay bit-identical to the scalar loops
// either way.
var bitIdentityShapes = [][3]int{{1, 1, 1}, {3, 5, 2}, {20, 15, 11}, {64, 48, 80}, {130, 70, 90}}

// TestMatMulExactBitIdentity pins the kernel numerics contract (mat.go): in
// exact mode every kernel reproduces the scalar ascending-order reference
// bit for bit, at serial and parallel sizes, including the Acc variants'
// tmp-then-add equivalence.
func TestMatMulExactBitIdentity(t *testing.T) {
	if FastMathEnabled() {
		t.Fatal("fast-math unexpectedly enabled at test entry")
	}
	rng := rand.New(rand.NewSource(11))
	for _, s := range bitIdentityShapes {
		r, k, c := s[0], s[1], s[2]
		a := randMat(rng, r, k)
		b := randMat(rng, k, c)
		matsBitIdentical(t, "MatMul", MatMul(nil, a, b), naiveMatMul(a, b))

		at := randMat(rng, r, k) // aᵀ·b: both r rows
		bt := randMat(rng, r, c)
		matsBitIdentical(t, "MatMulATransB", MatMulATransB(nil, at, bt), naiveMatMulATransB(at, bt))

		ab := randMat(rng, r, k) // a·bᵀ: shared k cols
		bb := randMat(rng, c, k)
		matsBitIdentical(t, "MatMulABTrans", MatMulABTrans(nil, ab, bb), naiveMatMulABTrans(ab, bb))

		// Acc variants: dst += product must equal tmp = product; dst += tmp.
		base := randMat(rng, r, c)
		accWant := base.Clone()
		accWant.AddInPlace(naiveMatMulABTrans(ab, bb))
		accGot := base.Clone()
		MatMulABTransAcc(accGot, ab, bb)
		matsBitIdentical(t, "MatMulABTransAcc", accGot, accWant)

		base2 := randMat(rng, k, c)
		accWant2 := base2.Clone()
		accWant2.AddInPlace(naiveMatMulATransB(at, bt))
		accGot2 := base2.Clone()
		MatMulATransBAcc(accGot2, at, bt)
		matsBitIdentical(t, "MatMulATransBAcc", accGot2, accWant2)
	}
}

// TestMatMulNonFinite is the regression test for the former av == 0 skip
// branches: skipping a zero a-element suppressed the NaN from 0·Inf and the
// sign flip from accumulating -0, silently diverging from IEEE semantics.
// The branch-free kernels must match the naive loops bitwise even when the
// inputs carry Inf, NaN, and signed zeros.
func TestMatMulNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	negZero := float32(math.Copysign(0, -1))
	for _, s := range [][3]int{{6, 9, 5}, {130, 70, 90}} {
		r, k, c := s[0], s[1], s[2]
		a := randMat(rng, r, k)
		b := randMat(rng, k, c)
		// Zero a-elements paired with non-finite b-elements: a zero-skip
		// kernel would drop the 0·Inf = NaN term entirely.
		a.Set(0, 0, 0)
		b.Set(0, 0, inf)
		a.Set(1, 2, 0)
		b.Set(2, 1, nan)
		// An all-zero row with mixed zero signs: -0 + +0 = +0 but
		// -0 + -0 = -0, so skipping "zero work" changes the result's sign.
		for j := 0; j < k; j++ {
			a.Set(2, j, negZero)
		}
		b.Set(3, 2, negZero)
		matsBitIdentical(t, "MatMul", MatMul(nil, a, b), naiveMatMul(a, b))

		bt := randMat(rng, r, c)
		bt.Set(0, 0, inf)
		matsBitIdentical(t, "MatMulATransB", MatMulATransB(nil, a, bt), naiveMatMulATransB(a, bt))

		bb := randMat(rng, c, k)
		bb.Set(0, 0, inf)
		bb.Set(1, 2, nan)
		matsBitIdentical(t, "MatMulABTrans", MatMulABTrans(nil, a, bb), naiveMatMulABTrans(a, bb))
	}
}

// withFastMath runs f with fast-math enabled, restoring the exact-mode
// default even on panic so no other test inherits the mode.
func withFastMath(f func()) {
	SetFastMath(true)
	defer SetFastMath(false)
	f()
}

// maxAbsDiff returns the largest element-wise |got - want|.
func maxAbsDiff(got, want *Mat) float64 {
	var m float64
	for i := range got.Data {
		d := math.Abs(float64(got.Data[i]) - float64(want.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// TestFastMathDifferential bounds the rounding divergence between the
// reassociated fast kernels and the exact kernels. Inputs are in [-1, 1],
// so with k ≤ 256 inner terms a reassociated float32 sum differs from the
// sequential one by at most ~k·eps·Σ|terms| ≈ 1e-5; the 1e-4 tolerance
// leaves an order of magnitude of slack while still catching any dropped
// or duplicated term (which would show up at ~1e-1).
func TestFastMathDifferential(t *testing.T) {
	const tol = 1e-4
	rng := rand.New(rand.NewSource(13))
	for _, s := range [][3]int{{5, 7, 3}, {33, 64, 17}, {128, 256, 96}, {130, 70, 90}} {
		r, k, c := s[0], s[1], s[2]
		a := randMat(rng, r, k)
		b := randMat(rng, k, c)
		exact := MatMul(nil, a, b)
		var fast *Mat
		withFastMath(func() { fast = MatMul(nil, a, b) })
		if d := maxAbsDiff(fast, exact); d > tol {
			t.Fatalf("MatMul %v: fast vs exact max |Δ| = %g > %g", s, d, tol)
		}

		at := randMat(rng, r, k)
		bt := randMat(rng, r, c)
		exactT := MatMulATransB(nil, at, bt)
		var fastT *Mat
		withFastMath(func() { fastT = MatMulATransB(nil, at, bt) })
		if d := maxAbsDiff(fastT, exactT); d > tol {
			t.Fatalf("MatMulATransB %v: fast vs exact max |Δ| = %g > %g", s, d, tol)
		}

		ab := randMat(rng, r, k)
		bb := randMat(rng, c, k)
		exactB := MatMulABTrans(nil, ab, bb)
		var fastB *Mat
		withFastMath(func() { fastB = MatMulABTrans(nil, ab, bb) })
		if d := maxAbsDiff(fastB, exactB); d > tol {
			t.Fatalf("MatMulABTrans %v: fast vs exact max |Δ| = %g > %g", s, d, tol)
		}

		// Acc variants under fast-math: same tolerance against the exact
		// tmp-then-add result.
		base := randMat(rng, k, c)
		exactAcc := base.Clone()
		MatMulATransBAcc(exactAcc, at, bt)
		fastAcc := base.Clone()
		withFastMath(func() { MatMulATransBAcc(fastAcc, at, bt) })
		if d := maxAbsDiff(fastAcc, exactAcc); d > tol {
			t.Fatalf("MatMulATransBAcc %v: fast vs exact max |Δ| = %g > %g", s, d, tol)
		}

		base2 := randMat(rng, r, c)
		exactAcc2 := base2.Clone()
		MatMulABTransAcc(exactAcc2, ab, bb)
		fastAcc2 := base2.Clone()
		withFastMath(func() { MatMulABTransAcc(fastAcc2, ab, bb) })
		if d := maxAbsDiff(fastAcc2, exactAcc2); d > tol {
			t.Fatalf("MatMulABTransAcc %v: fast vs exact max |Δ| = %g > %g", s, d, tol)
		}
	}
}

// TestMatMulKernelsAllocFree pins the steady-state allocation budget of
// every matmul entry point at zero, in both the serial (below
// parallelThreshold) and pool-dispatched (above it) regimes. The former
// parallelRows closure cost 1 alloc / 32 B on every call — this is the
// regression test for that fix (see chunkTask in pool.go).
func TestMatMulKernelsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, mode := range []struct {
		name string
		fast bool
	}{{"exact", false}, {"fastmath", true}} {
		for _, size := range []struct {
			name    string
			r, k, c int
		}{{"serial_24", 24, 24, 24}, {"parallel_128", 128, 128, 128}} {
			a := randMat(rng, size.r, size.k)
			b := randMat(rng, size.k, size.c)
			dst := NewMat(size.r, size.c)
			at := randMat(rng, size.r, size.k)
			bt := randMat(rng, size.r, size.c)
			dstT := NewMat(size.k, size.c)
			bb := randMat(rng, size.c, size.k)
			dstB := NewMat(size.r, size.c)
			run := func(name string, f func()) {
				t.Helper()
				if n := testing.AllocsPerRun(10, f); n != 0 {
					t.Errorf("%s/%s/%s: %v allocs/op, want 0", mode.name, size.name, name, n)
				}
			}
			SetFastMath(mode.fast)
			run("MatMul", func() { MatMul(dst, a, b) })
			run("MatMulATransB", func() { MatMulATransB(dstT, at, bt) })
			run("MatMulABTrans", func() { MatMulABTrans(dstB, a, bb) })
			run("MatMulATransBAcc", func() { MatMulATransBAcc(dstT, at, bt) })
			run("MatMulABTransAcc", func() { MatMulABTransAcc(dstB, a, bb) })
			SetFastMath(false)
		}
	}
}

func benchMatMul256(b *testing.B, fast bool, f func(dst, x, y *Mat)) {
	rng := rand.New(rand.NewSource(9))
	x := randMat(rng, 256, 256)
	y := randMat(rng, 256, 256)
	dst := NewMat(256, 256)
	SetFastMath(fast)
	defer SetFastMath(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	b.ReportAllocs()
	benchMatMul256(b, false, func(dst, x, y *Mat) { MatMul(dst, x, y) })
}

func BenchmarkMatMul256Fast(b *testing.B) {
	b.ReportAllocs()
	benchMatMul256(b, true, func(dst, x, y *Mat) { MatMul(dst, x, y) })
}

func BenchmarkMatMulATransB256(b *testing.B) {
	b.ReportAllocs()
	benchMatMul256(b, false, func(dst, x, y *Mat) { MatMulATransB(dst, x, y) })
}

func BenchmarkMatMulATransB256Fast(b *testing.B) {
	b.ReportAllocs()
	benchMatMul256(b, true, func(dst, x, y *Mat) { MatMulATransB(dst, x, y) })
}

func BenchmarkMatMulABTrans256(b *testing.B) {
	b.ReportAllocs()
	benchMatMul256(b, false, func(dst, x, y *Mat) { MatMulABTrans(dst, x, y) })
}

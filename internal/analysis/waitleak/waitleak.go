// Package waitleak flags lifecycle bugs in the concurrency plumbing: a
// sync.WaitGroup whose Add/Done balance differs across CFG paths reaching
// a Wait, a goroutine launched in a constructor with no way to shut it
// down, and a time.Ticker that is never stopped on some path.
//
// These are the bugs the race detector cannot see — nothing races, the
// program just deadlocks at Wait, or leaks one goroutine (plus a ticker's
// timer) per constructed object until the process dies. The repo's own
// lifecycle protocol (metrics.Streamer, tracing.Tracer) is the model:
// every background goroutine selects on a done channel that Close closes,
// and every ticker is stopped with a defer right after NewTicker.
//
// Checks:
//
//   - waitgroup balance: for each *local* WaitGroup (fields are
//     interprocedural and out of scope), a forward dataflow pass tracks
//     the Add/Done delta per path. Done calls inside a `go`/`defer`
//     closure count at the launch statement (the classic
//     Add(1)/go-Done pairing). Reaching Wait with a nonzero known delta,
//     or with different deltas on different paths, is reported. A
//     WaitGroup that escapes — &wg passed to a call, stored in a struct,
//     captured by a non-go closure — is untracked: other code may
//     balance it.
//   - constructor goroutine: a New* function that launches a goroutine
//     whose body loops forever without ever receiving from a channel has
//     no shutdown signal; the object can never be torn down cleanly.
//   - ticker leak: a local time.NewTicker result that reaches the
//     function exit without t.Stop() on some path leaks the ticker's
//     goroutine. Stop via defer counts; a ticker that escapes (returned,
//     stored, passed on) is the callee's responsibility and is skipped.
package waitleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"voyager/internal/analysis"
	"voyager/internal/analysis/cfg"
)

// New returns the waitleak analyzer. It runs on every non-test package.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "waitleak",
		Doc:  "flags WaitGroup path imbalance, unstoppable constructor goroutines, and unstopped tickers",
		Run:  run,
	}
}

func run(pass *analysis.Pass) {
	if pass.Pkg.IsTest {
		pass.SkipPackage()
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				checkWaitGroups(pass, fn, fn.Body)
				checkTickers(pass, fn, fn.Body)
				if strings.HasPrefix(fn.Name.Name, "New") {
					checkConstructor(pass, fn)
				}
			case *ast.FuncLit:
				checkWaitGroups(pass, fn, fn.Body)
				checkTickers(pass, fn, fn.Body)
			}
			return true
		})
	}
}

// ---------------------------------------------------------------- helpers

func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t.String() == "sync.WaitGroup"
}

func isTickerType(t types.Type) bool {
	return t != nil && t.String() == "*time.Ticker"
}

// localsOf collects vars declared inside [lo, hi] whose type satisfies
// want.
func localsOf(pass *analysis.Pass, body *ast.BlockStmt, lo, hi token.Pos, want func(types.Type) bool) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, _ := pass.Pkg.Info.Defs[id].(*types.Var); v != nil &&
			v.Pos() >= lo && v.Pos() <= hi && want(v.Type()) {
			out[v] = true
		}
		return true
	})
	return out
}

// recvCall matches a method call on a candidate ident receiver:
// wg.Add(1), t.Stop(). Returns the var and the method name.
func recvCall(pass *analysis.Pass, call *ast.CallExpr, cands map[*types.Var]bool) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	if v, _ := pass.ObjectOf(id).(*types.Var); v != nil && cands[v] {
		return v, sel.Sel.Name
	}
	return nil, ""
}

// escapes computes, flow-insensitively, which candidate vars leave the
// function's control: address taken outside a method call, passed as an
// argument, stored, returned, or captured by a closure that is not the
// immediate function of a go/defer statement. allowAsync lists the method
// names that are legitimate inside go/defer closures (counted at the
// launch site by the caller).
func escapes(pass *analysis.Pass, body *ast.BlockStmt, cands map[*types.Var]bool, allowAsync map[string]bool) map[*types.Var]bool {
	esc := map[*types.Var]bool{}
	candIdent := func(e ast.Expr) *types.Var {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if v, _ := pass.ObjectOf(id).(*types.Var); v != nil && cands[v] {
			return v
		}
		return nil
	}
	var scan func(n ast.Node, async bool)
	scanCall := func(call *ast.CallExpr, async bool) {
		if v, method := recvCall(pass, call, cands); v != nil {
			if async && !allowAsync[method] {
				esc[v] = true
			}
			for _, a := range call.Args {
				scan(a, async)
			}
			return
		}
		scan(call.Fun, async)
		for _, a := range call.Args {
			scan(a, async)
		}
	}
	scan = func(n ast.Node, async bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				scan(lit.Body, true)
			} else {
				scanCall(n.Call, async)
			}
			for _, a := range n.Call.Args {
				scan(a, async)
			}
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				scan(lit.Body, true)
			} else {
				scanCall(n.Call, async)
			}
			for _, a := range n.Call.Args {
				scan(a, async)
			}
		case *ast.FuncLit:
			// Captured by an ordinary closure: its schedule is unknown.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, _ := pass.ObjectOf(id).(*types.Var); v != nil && cands[v] {
						esc[v] = true
					}
				}
				return true
			})
		case *ast.CallExpr:
			scanCall(n, async)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := candIdent(n.X); v != nil {
					esc[v] = true
					return
				}
			}
			scan(n.X, async)
		case *ast.SelectorExpr:
			// Field read through the candidate (tick.C): not an escape.
			if candIdent(n.X) != nil {
				return
			}
			scan(n.X, async)
		case *ast.AssignStmt:
			// LHS occurrences are (re)definitions, not escapes; the RHS
			// may leak a candidate.
			for _, r := range n.Rhs {
				scan(r, async)
			}
		case *ast.Ident:
			if pass.Pkg.Info.Defs[n] != nil {
				return
			}
			if v := candIdent(n); v != nil {
				esc[v] = true
			}
		default:
			walkChildren(n, func(c ast.Node) { scan(c, async) })
		}
	}
	scan(body, false)
	return esc
}

// walkChildren visits n's immediate children once each.
func walkChildren(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			f(m)
		}
		return false
	})
}

// ------------------------------------------------------ waitgroup balance

// wgBal is the per-variable fact: the Add/Done delta along this path, or
// the record that two joined paths disagreed.
type wgBal struct {
	delta    int
	diverged bool
}
type wgFact map[*types.Var]wgBal

func cloneWG(f wgFact) wgFact {
	m := make(wgFact, len(f))
	for k, v := range f {
		m[k] = v
	}
	return m
}

func checkWaitGroups(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	cands := localsOf(pass, body, fn.Pos(), fn.End(), isWaitGroupType)
	if len(cands) == 0 {
		return
	}
	esc := escapes(pass, body, cands, map[string]bool{"Done": true})
	init := wgFact{}
	for v := range cands {
		if !esc[v] {
			init[v] = wgBal{}
		}
	}
	if len(init) == 0 {
		return
	}

	// Done calls inside go/defer closures count at the launch statement.
	asyncDones := func(n ast.Node) map[*types.Var]int {
		counts := map[*types.Var]int{}
		var lit *ast.FuncLit
		switch s := n.(type) {
		case *ast.GoStmt:
			lit, _ = s.Call.Fun.(*ast.FuncLit)
		case *ast.DeferStmt:
			lit, _ = s.Call.Fun.(*ast.FuncLit)
		}
		if lit == nil {
			return counts
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if v, method := recvCall(pass, call, cands); v != nil && method == "Done" {
					counts[v]++
				}
			}
			return true
		})
		return counts
	}

	// Reporting is deferred to a replay over the *converged* in-facts:
	// mid-fixpoint a block may have seen only one predecessor, and a
	// premature "unmatched Add" there would mask the real diverged-join
	// diagnosis.
	report := func(pos token.Pos, format string, args ...any) {}

	transfer := func(blk *cfg.Block, in wgFact) wgFact {
		out := cloneWG(in)
		for _, n := range blk.Nodes {
			for v, c := range asyncDones(n) {
				if b, ok := out[v]; ok {
					b.delta -= c
					out[v] = b
				}
			}
			cfg.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				v, method := recvCall(pass, call, cands)
				if v == nil {
					return true
				}
				b, tracked := out[v]
				if !tracked {
					return true
				}
				switch method {
				case "Add":
					if len(call.Args) == 1 {
						if k, ok := intLit(call.Args[0]); ok {
							b.delta += k
							out[v] = b
							return true
						}
					}
					delete(out, v) // data-dependent count: untrack
				case "Done":
					b.delta--
					out[v] = b
				case "Wait":
					switch {
					case b.diverged:
						report(call.Pos(), "%s.Wait() is reachable with different Add/Done balances depending on path: a Done is missing (Wait blocks forever) or doubled (negative-counter panic) on at least one path", v.Name())
					case b.delta > 0:
						report(call.Pos(), "%s.Wait() is reached with %d Add(s) unmatched by Done on this path: Wait blocks forever", v.Name(), b.delta)
					case b.delta < 0:
						report(call.Pos(), "%s has more Done than Add before this Wait: the counter goes negative and panics", v.Name())
					}
					out[v] = wgBal{} // Wait re-baselines the counter
				}
				return true
			})
		}
		return out
	}

	fw := cfg.Forward[wgFact]{
		Init: init,
		Join: func(a, b wgFact) wgFact {
			m := wgFact{}
			for v, ab := range a {
				bb, ok := b[v]
				if !ok {
					continue // untracked on one path wins
				}
				if ab.diverged || bb.diverged || ab.delta != bb.delta {
					m[v] = wgBal{diverged: true}
				} else {
					m[v] = ab
				}
			}
			return m
		},
		Transfer: transfer,
		Equal: func(a, b wgFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
	}
	g := cfg.Build(fn)
	in, _ := fw.Run(g)

	// Replay each block on its converged in-fact with reporting live.
	reported := map[token.Pos]bool{}
	report = func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, blk := range g.Blocks {
		if f, ok := in[blk]; ok && g.Reachable(blk) {
			transfer(blk, f)
		}
	}
}

func intLit(e ast.Expr) (int, bool) {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.SUB {
		if k, ok := intLit(u.X); ok {
			return -k, true
		}
		return 0, false
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	k, err := strconv.Atoi(lit.Value)
	return k, err == nil
}

// --------------------------------------------------------- ticker leaks

func checkTickers(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	cands := localsOf(pass, body, fn.Pos(), fn.End(), isTickerType)
	if len(cands) == 0 {
		return
	}
	esc := escapes(pass, body, cands, map[string]bool{"Stop": true, "Reset": true})

	type tick struct{ pos token.Pos }
	type tFact map[*types.Var]tick
	clone := func(f tFact) tFact {
		m := make(tFact, len(f))
		for k, v := range f {
			m[k] = v
		}
		return m
	}

	transfer := func(blk *cfg.Block, in tFact) tFact {
		out := clone(in)
		for _, n := range blk.Nodes {
			cfg.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if v, method := recvCall(pass, call, cands); v != nil && method == "Stop" {
					delete(out, v)
				}
				return true
			})
			// Deferred Stop inside a go/defer closure kills too: the
			// escape pass already rejected closures doing anything else.
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if isNewTickerCall(pass, as.Rhs[0]) {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if v, _ := pass.ObjectOf(id).(*types.Var); v != nil && cands[v] && !esc[v] {
								out[v] = tick{pos: as.Rhs[0].Pos()}
							}
						}
					}
				}
			}
		}
		return out
	}
	fw := cfg.Forward[tFact]{
		Init: tFact{},
		Join: func(a, b tFact) tFact {
			m := clone(a)
			for k, v := range b {
				if _, ok := m[k]; !ok {
					m[k] = v
				}
			}
			return m
		},
		Transfer: transfer,
		Equal: func(a, b tFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
	}
	g := cfg.Build(fn)
	in, _ := fw.Run(g)
	if exitFact, ok := in[g.Exit()]; ok {
		for _, t := range exitFact {
			pass.Reportf(t.pos, "time.Ticker created here is never stopped on at least one path: the ticker's goroutine (and its timer) leak until Stop; add `defer t.Stop()`")
		}
	}
}

func isNewTickerCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewTicker" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pkg.Imported().Path() == "time"
}

// -------------------------------------------- constructor shutdown check

// checkConstructor reports goroutines launched from New* functions whose
// bodies loop forever without receiving from any channel: nothing can
// ever tell them to stop.
func checkConstructor(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var body *ast.BlockStmt
		switch fun := g.Call.Fun.(type) {
		case *ast.FuncLit:
			body = fun.Body
		default:
			// go t.loop(done): a channel-typed argument is the shutdown
			// signal; without one we cannot see the callee, so stay
			// quiet rather than guess.
			return true
		}
		if chanArgPassed(pass, g.Call) {
			return true
		}
		if loopsForeverWithoutReceive(pass, body) {
			pass.Reportf(g.Pos(), "goroutine launched in constructor %s loops forever without receiving from any channel: there is no way to shut it down; select on a done channel closed by Close/Stop", fd.Name.Name)
		}
		return true
	})
}

// chanArgPassed reports whether any argument of call is channel-typed.
func chanArgPassed(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if t := pass.TypeOf(a); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return true
			}
		}
	}
	return false
}

// loopsForeverWithoutReceive reports whether body contains an unconditional
// for-loop and no channel receive (<-ch, range over a channel, or a select
// receive case) anywhere.
func loopsForeverWithoutReceive(pass *analysis.Pass, body *ast.BlockStmt) bool {
	var hasForever, hasReceive bool
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond == nil {
				hasForever = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				hasReceive = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					hasReceive = true
				}
			}
		}
		return true
	})
	return hasForever && !hasReceive
}

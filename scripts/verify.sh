#!/usr/bin/env bash
# Tier-1 verification plus the concurrency checks for the data-parallel
# training engine and the serving daemon: vet, the full test suite (with
# coverage gates), the race detector over the packages that share state
# across goroutines (including prefetchd's session/batcher machinery), and
# bounded fuzz runs of the binary trace decoder, the metrics snapshot
# parser, the int8/f16 quantizers the distilled tables are packed with,
# and the daemon's wire-protocol request decoder.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

# vetvoyager enforces the invariants go vet cannot see: deterministic map
# iteration in determinism-critical packages, tape-arena *Mat lifetimes,
# float32-only hot kernels, per-worker rand streams, ReportAllocs on every
# benchmark, mixed atomic/plain access, dropped serialization errors,
# hot-path allocations, and WaitGroup/ticker leaks. It prints per-analyzer
# finding counts and exits non-zero on any unsuppressed finding.
echo "== vetvoyager"
go run ./cmd/vetvoyager ./...

# Self-check: the analyzers, CFG builder, and fixpoint engine must them-
# selves be clean under the full suite (the loader's dir/... patterns get
# exercised here too). A separate invocation so a finding inside the
# framework is attributed to it rather than lost in the module-wide sweep.
echo "== vetvoyager self-check (internal/analysis/...)"
go run ./cmd/vetvoyager internal/analysis/...

echo "== go test (with coverage profile)"
cover_out="$(mktemp)"
trap 'rm -f "$cover_out"' EXIT
go test -coverprofile="$cover_out" ./...

# Coverage gates. The metrics package backs the differential guarantees
# (metrics-on == metrics-off bit-identical), so it carries a hard floor;
# the repo-wide total must not regress below the recorded baseline
# (scripts/coverage_baseline.txt — raise it when coverage improves).
echo "== coverage gates"
total=$(go tool cover -func="$cover_out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
baseline=$(cat scripts/coverage_baseline.txt)
awk -v t="$total" -v b="$baseline" 'BEGIN {
  if (t + 0 < b + 0) { printf "coverage: repo-wide %.1f%% < baseline %.1f%%\n", t, b; exit 1 }
  printf "coverage: repo-wide %.1f%% (baseline %.1f%%)\n", t, b }'
for gate in internal/metrics:90 internal/tracing:90 internal/serve:85 internal/serve/quality:90; do
  pkg="${gate%:*}"; floor="${gate#*:}"
  pcov=$(go test -cover "./$pkg/" | awk 'match($0, /coverage: [0-9.]+%/) {
    s = substr($0, RSTART + 10, RLENGTH - 11); print s }')
  awk -v m="$pcov" -v p="$pkg" -v f="$floor" 'BEGIN {
    if (m + 0 < f + 0) { printf "coverage: %s %.1f%% < %d%% floor\n", p, m, f; exit 1 }
    printf "coverage: %s %.1f%% (floor %d%%)\n", p, m, f }'
done

# Bench smoke: the newest BENCH_pr<N>.json must not record a serial matmul
# slowdown (the PR-5 regression class) or a >10% predict-path slowdown
# (serial fp32 or int8-quantized inference) against its baseline chain. This
# parses the committed report (fast) rather than re-benching; regenerate
# with `go run ./cmd/experiments -bench -workers -1` after kernel changes.
echo "== bench smoke (matmul_256 + predict paths vs baseline chain)"
go run ./cmd/experiments -bench-check

echo "== allocation regression (tape arena steady state, metrics + tracing hot paths)"
go test -run 'TestSteadyStateAllocBudget' ./internal/voyager/
go test -run 'TestArenaSteadyStateAllocationFree' ./internal/tensor/
go test -run 'TestHotPathAllocFree' ./internal/metrics/
go test -run 'TestNilTracerAllocFree' ./internal/tracing/

echo "== go test -race (tensor, nn, metrics, tracing, voyager, trace, quality)"
go test -race ./internal/tensor/ ./internal/nn/ ./internal/trace/ ./internal/metrics/ ./internal/tracing/ ./internal/serve/quality/
# The full voyager suite under -race takes ~10 min of end-to-end training;
# the concurrency surface is the parallel engine, so race-check the tests
# that exercise sharded TrainBatch/PredictBatch plus one e2e training run.
go test -race -run 'Parallel|Deterministic|Workers|LearnsCycleWith' ./internal/voyager/
# prefetchd's concurrency surface: many connection handlers against one
# batcher, the session table under contention with the eviction janitor,
# and the 100x start/stop goroutine-leak cycle. The golden differentials
# re-train the fixture under -race (slow), so race-check the contention,
# leak, and batching-invariance tests specifically.
echo "== go test -race (serve: contention, leaks, batching invariance)"
go test -race -run 'Concurrent|StartStop|Invariance|CloseIsIdempotent' ./internal/serve/

echo "== fuzz trace.Read + metrics.ParseSnapshot + quant converters + serve decoder (bounded)"
go test -run=NONE -fuzz=FuzzRead -fuzztime=10s ./internal/trace/
go test -run=NONE -fuzz=FuzzParseSnapshot -fuzztime=10s ./internal/metrics/
go test -run=NONE -fuzz='^FuzzQ8Quantize$' -fuzztime=10s ./internal/tensor/quant/
go test -run=NONE -fuzz='^FuzzF16RoundTrip$' -fuzztime=10s ./internal/tensor/quant/
go test -run=NONE -fuzz='^FuzzDecodeRequest$' -fuzztime=10s ./internal/serve/

# A traced end-to-end run: the exported timeline must round-trip through the
# validator (cmd/tracecheck), and two same-seed logical-clock runs must
# produce byte-identical files — the span tracer's reproducibility claim,
# checked on a real binary rather than a unit test.
echo "== traced run: validate + byte-compare two same-seed logical exports"
trace_dir="$(mktemp -d)"
trap 'rm -f "$cover_out"; rm -rf "$trace_dir"' EXIT
for i in 1 2; do
  go run ./cmd/voyager -bench pr -n 3000 -epoch 1000 -passes 1 -hidden 16 \
    -trace-out "$trace_dir/t$i.json" -trace-clock logical \
    -provenance "$trace_dir/p$i.json" > /dev/null
done
go run ./cmd/tracecheck "$trace_dir/t1.json"
cmp "$trace_dir/t1.json" "$trace_dir/t2.json"
cmp "$trace_dir/p1.json" "$trace_dir/p2.json"
echo "trace: validated, byte-identical across runs"

echo "verify: OK"

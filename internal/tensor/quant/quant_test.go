package quant

import (
	"math"
	"math/rand"
	"testing"

	"voyager/internal/tensor"
)

func randMat(rng *rand.Rand, r, c int) *tensor.Mat {
	m := tensor.NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

// TestF16ExactRoundTrip: every finite binary16 bit pattern must survive
// f16 → f32 → f16 unchanged (the f32 value is exact, so re-rounding is the
// identity).
func TestF16ExactRoundTrip(t *testing.T) {
	for u := 0; u < 1<<16; u++ {
		bits := uint16(u)
		if bits&0x7c00 == 0x7c00 && bits&0x3ff != 0 {
			continue // NaN payloads are canonicalized, not preserved
		}
		f := F16ToF32(bits)
		if got := F32ToF16(f); got != bits {
			t.Fatalf("pattern %#04x → %v → %#04x", bits, f, got)
		}
	}
}

// TestF16RoundingError bounds the f32 → f16 rounding error at half a ULP
// for values in the normal range (relative error ≤ 2^-11).
func TestF16RoundingError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		f := (rng.Float32()*2 - 1) * 1000
		g := F16ToF32(F32ToF16(f))
		relErr := math.Abs(float64(g-f)) / math.Max(math.Abs(float64(f)), 6.1e-5)
		if relErr > 1.0/(1<<11) {
			t.Fatalf("%v → %v: relative error %g", f, g, relErr)
		}
	}
}

func TestF16SpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	cases := []struct{ in, want float32 }{
		{0, 0}, {inf, inf}, {-inf, float32(math.Inf(-1))},
		{65504, 65504},                 // largest binary16 normal
		{100_000, inf},                 // overflow saturates to Inf
		{1e-9, 0},                      // underflow flushes to zero through rounding
		{6.1035156e-05, 6.1035156e-05}, // smallest binary16 normal
	}
	for _, c := range cases {
		if got := F16ToF32(F32ToF16(c.in)); got != c.want {
			t.Errorf("%v: got %v want %v", c.in, got, c.want)
		}
	}
	if g := F16ToF32(F32ToF16(float32(math.NaN()))); !math.IsNaN(float64(g)) {
		t.Errorf("NaN not preserved: %v", g)
	}
	negZero := float32(math.Copysign(0, -1))
	if bits := math.Float32bits(F16ToF32(F32ToF16(negZero))); bits != 0x80000000 {
		t.Errorf("-0 not preserved: %#08x", bits)
	}
}

// TestQ8QuantizationError: per-column symmetric int8 rounds each weight to
// within half a step (scale/2) of its fp32 value, and all-zero columns stay
// exactly zero.
func TestQ8QuantizationError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := randMat(rng, 37, 19)
	for i := 0; i < w.Rows; i++ {
		w.Set(i, 7, 0) // an all-zero column
	}
	q := QuantizeQ8(w)
	deq := q.Dequantize(nil)
	for i := 0; i < w.Rows; i++ {
		for j := 0; j < w.Cols; j++ {
			d := math.Abs(float64(deq.At(i, j) - w.At(i, j)))
			if d > float64(q.Scale[j])/2+1e-9 {
				t.Fatalf("(%d,%d): |Δ|=%g > scale/2=%g", i, j, d, q.Scale[j]/2)
			}
		}
	}
	for i := 0; i < w.Rows; i++ {
		if deq.At(i, 7) != 0 {
			t.Fatalf("zero column survived as %v", deq.At(i, 7))
		}
	}
	if q.Bytes() >= 4*len(w.Data) {
		t.Fatalf("Q8 footprint %d not smaller than fp32 %d", q.Bytes(), 4*len(w.Data))
	}
}

// TestMatMulQ8MatchesDequantized: the fused kernel must agree with the fp32
// matmul against the explicitly dequantized weights — same term set, only
// association differs.
func TestMatMulQ8MatchesDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range [][3]int{{1, 1, 1}, {5, 7, 3}, {33, 64, 17}, {64, 130, 50}} {
		x := randMat(rng, s[0], s[1])
		w := randMat(rng, s[1], s[2])
		bias := make([]float32, s[2])
		for j := range bias {
			bias[j] = rng.Float32()
		}
		q := QuantizeQ8(w)
		want := tensor.MatMul(nil, x, q.Dequantize(nil))
		for i := 0; i < want.Rows; i++ {
			row := want.Row(i)
			for j := range row {
				row[j] += bias[j]
			}
		}
		got := tensor.NewMat(s[0], s[2])
		MatMulQ8(got, x, q, bias)
		for i := range got.Data {
			if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > 1e-4 {
				t.Fatalf("%v elem %d: got %v want %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulF16MatchesDequantized: same as above for the binary16 kernel.
func TestMatMulF16MatchesDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, s := range [][3]int{{5, 7, 3}, {33, 64, 17}, {64, 130, 50}} {
		x := randMat(rng, s[0], s[1])
		w := randMat(rng, s[1], s[2])
		q := QuantizeF16(w)
		want := tensor.MatMul(nil, x, q.Dequantize(nil))
		got := tensor.NewMat(s[0], s[2])
		MatMulF16(got, x, q, nil)
		for i := range got.Data {
			if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > 1e-4 {
				t.Fatalf("%v elem %d: got %v want %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulQ8ErrorBound bounds the end-to-end error against the ORIGINAL
// fp32 weights: |Σ_k x_k·(ŵ-w)_kj| ≤ (scale_j/2)·Σ_k|x_k| — the analytic
// guarantee the voyager quantized-predict mode leans on.
func TestMatMulQ8ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randMat(rng, 16, 96)
	w := randMat(rng, 96, 24)
	q := QuantizeQ8(w)
	exact := tensor.MatMul(nil, x, w)
	got := tensor.NewMat(16, 24)
	MatMulQ8(got, x, q, nil)
	for i := 0; i < 16; i++ {
		var sumAbs float64
		for _, v := range x.Row(i) {
			sumAbs += math.Abs(float64(v))
		}
		for j := 0; j < 24; j++ {
			bound := float64(q.Scale[j])/2*sumAbs + 1e-4
			if d := math.Abs(float64(got.At(i, j) - exact.At(i, j))); d > bound {
				t.Fatalf("(%d,%d): |Δ|=%g > bound %g", i, j, d, bound)
			}
		}
	}
}

// TestRequantizeTracksWeights: after the source weights move, RequantizeFrom
// must produce the same result as quantizing from scratch, with no new
// allocations.
func TestRequantizeTracksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := randMat(rng, 48, 32)
	q := QuantizeQ8(w)
	f := QuantizeF16(w)
	for i := range w.Data {
		w.Data[i] *= 1.5
		w.Data[i] += 0.1
	}
	q.RequantizeFrom(w)
	f.RequantizeFrom(w)
	fresh := QuantizeQ8(w)
	for i := range q.Data {
		if q.Data[i] != fresh.Data[i] {
			t.Fatalf("Q8 elem %d: requantized %d != fresh %d", i, q.Data[i], fresh.Data[i])
		}
	}
	freshF := QuantizeF16(w)
	for i := range f.Data {
		if f.Data[i] != freshF.Data[i] {
			t.Fatalf("F16 elem %d: requantized %#04x != fresh %#04x", i, f.Data[i], freshF.Data[i])
		}
	}
	if n := testing.AllocsPerRun(10, func() { q.RequantizeFrom(w) }); n != 0 {
		t.Errorf("Q8 RequantizeFrom: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { f.RequantizeFrom(w) }); n != 0 {
		t.Errorf("F16 RequantizeFrom: %v allocs/op, want 0", n)
	}
}

// TestMatMulQuantAllocFree pins the kernels at zero steady-state allocations.
func TestMatMulQuantAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randMat(rng, 32, 64)
	w := randMat(rng, 64, 48)
	bias := make([]float32, 48)
	q := QuantizeQ8(w)
	f := QuantizeF16(w)
	dst := tensor.NewMat(32, 48)
	if n := testing.AllocsPerRun(10, func() { MatMulQ8(dst, x, q, bias) }); n != 0 {
		t.Errorf("MatMulQ8: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { MatMulF16(dst, x, f, bias) }); n != 0 {
		t.Errorf("MatMulF16: %v allocs/op, want 0", n)
	}
}

// TestAffineQuantize pins the per-tensor affine helper shared with
// nn.ParamSet.Quantize: values land on grid points, zeros stay zero, and
// degenerate inputs are no-ops.
func TestAffineQuantize(t *testing.T) {
	data := []float32{-1, -0.4, 0, 0.3, 1}
	AffineQuantize(data, 2) // 4 levels over [-1, 1]: step 2/3
	if data[2] != 0 {
		t.Fatalf("zero moved to %v", data[2])
	}
	step := float32(2.0 / 3.0)
	for i, v := range data {
		if v == 0 {
			continue
		}
		k := (v + 1) / step
		if d := math.Abs(float64(k - float32(int32(k+0.5)))); d > 1e-5 {
			t.Fatalf("elem %d = %v not on the 4-level grid", i, v)
		}
	}
	same := []float32{0.5, 0.5}
	AffineQuantize(same, 8)
	if same[0] != 0.5 || same[1] != 0.5 {
		t.Fatalf("constant tensor changed: %v", same)
	}
	empty := []float32{}
	AffineQuantize(empty, 8) // must not panic
}

func benchQuantMatMul(b *testing.B, run func(dst, x *tensor.Mat)) {
	rng := rand.New(rand.NewSource(8))
	x := randMat(rng, 256, 256)
	dst := tensor.NewMat(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(dst, x)
	}
}

func BenchmarkMatMulQ8_256(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(8))
	w := randMat(rng, 256, 256)
	q := QuantizeQ8(w)
	benchQuantMatMul(b, func(dst, x *tensor.Mat) { MatMulQ8(dst, x, q, nil) })
}

func BenchmarkMatMulF16_256(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(8))
	w := randMat(rng, 256, 256)
	q := QuantizeF16(w)
	benchQuantMatMul(b, func(dst, x *tensor.Mat) { MatMulF16(dst, x, q, nil) })
}

package tensor

import (
	"runtime"
	"sync"
)

// The package keeps one persistent worker pool shared by every kernel (and,
// through RunTasks, by higher-level shard orchestration). Spawning a fresh
// goroutine per matmul call — the seed implementation's strategy — costs a
// scheduler round-trip on every hot-path kernel; the pool pays that cost
// once at startup and then dispatches chunks over a channel.
//
// Pool tasks must be leaves: a task may not block on other pool tasks.
// Kernels satisfy this by construction (a chunk is pure computation), which
// is what makes the shared pool deadlock-free even when many goroutines
// submit concurrently.

// chunkTask is one contiguous [lo, hi) slice of a parallel loop. Matmul
// kernels ship as a top-level kernel function plus its three matrix operands
// (kern/dst/a/b) instead of a capturing closure: a closure would be a fresh
// heap allocation on every kernel dispatch, and the steady-state matmul
// budget is zero allocations (see TestMatMulKernelsAllocFree).
type chunkTask struct {
	fn     func(lo, hi int)
	kern   matKernel
	dst    *Mat
	a, b   *Mat
	lo, hi int
	wg     *sync.WaitGroup
}

// matKernel is a row-range matmul kernel over fixed operands.
type matKernel = func(dst, a, b *Mat, lo, hi int)

var (
	poolOnce  sync.Once
	poolTasks chan chunkTask
	poolSize  int
)

func startPool() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	poolSize = n
	poolTasks = make(chan chunkTask, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range poolTasks {
				if t.kern != nil {
					t.kern(t.dst, t.a, t.b, t.lo, t.hi)
				} else {
					t.fn(t.lo, t.hi)
				}
				t.wg.Done()
			}
		}()
	}
}

// PoolWorkers returns the size of the shared worker pool (GOMAXPROCS at
// first use). Callers sizing their own data-parallel shards should match it.
func PoolWorkers() int {
	poolOnce.Do(startPool)
	return poolSize
}

// Parallel splits [0, n) into contiguous chunks and runs fn on each using
// the shared worker pool, blocking until all chunks complete. The calling
// goroutine executes the first chunk itself, so a single-chunk split never
// touches the pool. fn must not submit further pool work.
func Parallel(n int, fn func(lo, hi int)) {
	poolOnce.Do(startPool)
	chunks := poolSize
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		poolTasks <- chunkTask{fn: fn, lo: lo, hi: hi, wg: &wg}
	}
	fn(0, chunk)
	wg.Wait()
}

// RunTasks runs k independent tasks on the shared pool, blocking until all
// complete; task i receives its index. Unlike Parallel's chunk tasks, these
// tasks MAY themselves call Parallel: RunTasks executes them on fresh
// goroutines rather than pool workers, so pool workers never block waiting
// for other pool work. Used for coarse-grained shard fan-out (one task per
// minibatch shard).
func RunTasks(k int, task func(i int)) {
	if k <= 1 {
		if k == 1 {
			task(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(k - 1)
	for i := 1; i < k; i++ {
		go func(i int) {
			defer wg.Done()
			task(i)
		}(i)
	}
	task(0)
	wg.Wait()
}

// wgScratch recycles the WaitGroups parallelKernel blocks on; a stack
// WaitGroup would escape through the task channel and cost an allocation
// per dispatch.
var wgScratch = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// parallelKernel splits [0, n) across the shared pool and runs the kernel on
// each chunk with the given operands, blocking until all chunks complete.
// Unlike Parallel it takes the kernel as a top-level function plus operands,
// so dispatch allocates nothing (no capturing closure); the calling
// goroutine runs the first chunk itself, and a single-chunk split never
// touches the pool.
//
//hot:path
func parallelKernel(n int, kern matKernel, dst, a, b *Mat) {
	poolOnce.Do(startPool)
	chunks := poolSize
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		kern(dst, a, b, 0, n)
		return
	}
	chunk := (n + chunks - 1) / chunks
	wg := wgScratch.Get().(*sync.WaitGroup)
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		poolTasks <- chunkTask{kern: kern, dst: dst, a: a, b: b, lo: lo, hi: hi, wg: wg}
	}
	kern(dst, a, b, 0, chunk)
	wg.Wait()
	wgScratch.Put(wg)
}

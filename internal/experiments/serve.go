package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"voyager/internal/distill"
	"voyager/internal/metrics"
	"voyager/internal/serve"
	"voyager/internal/serve/quality"
	"voyager/internal/trace"
	"voyager/internal/voyager"
)

// Serving-path benchmark: an in-process prefetchd on a loopback listener
// under the acceptance load shape — 64 concurrent client streams replaying
// the bench trace.
//
// Two phases. The fast phase drives every stream through the distilled
// tier and reads the exact per-request prediction-path latency samples
// (session advance through candidates ready — the serving analogue of
// predict_distilled, which likewise excludes any wire handling) from the
// server's LatencyRecorder; serve_p99_ns is their nearest-rank p99. The
// model phase drives the batched LSTM tier and reports the exact mean
// PredictBatch occupancy (rows/batches from integer counters) as
// serve_batch_fill — under 64 synchronous streams the queue refills while
// inference runs, so healthy batching keeps this near MaxBatch.
// A third phase re-runs the fast load on a second server with online
// quality self-scoring enabled and records the same prediction-path p99.
// Scoring runs strictly after the latency record, so the ratio of the two
// p99s — serve_quality_overhead — measures only the indirect cost
// telemetry is allowed to have (scorer lock traffic, window-instrument
// atomics, cache pressure) and gates the off-the-latency-path design
// claim at < 1.05x in verify.sh. Shadow sampling is deliberately off in
// the gated phase: shadow re-inference is real extra model work whose CPU
// cost is proportional to the operator's 1-in-N knob by design (measured
// at 1.35x fast p99 for 1-in-8 on this container's 2 cores), so folding
// it into the gate would measure the knob, not a leak. Shadow
// correctness and its never-blocks-a-handler property are pinned by the
// serve e2e suite instead.
const (
	serveBenchStreams    = 64
	serveBenchFastReqs   = 1200 // fast-tier requests per stream
	serveBenchModelReqs  = 30   // model-tier requests per stream
	serveBenchMaxBatch   = 64
	serveBenchMaxWaitMus = 200
)

type serveBenchResult struct {
	fastP50Ns    int64
	fastP99Ns    int64
	modelP99Ns   int64
	batchFill    float64
	fastReqs     int64
	qualityP99Ns int64 // fast-tier p99 with the quality tracker live
}

// serveBench runs both phases against the given trained model and table
// (the distill block's teacher, reused so serving latency is measured on
// the same weights the distilled numbers come from).
func serveBench(m *voyager.Model, tab *distill.Table, tr *trace.Trace) (serveBenchResult, error) {
	var res serveBenchResult
	fastRec := serve.NewLatencyRecorder(serveBenchStreams * serveBenchFastReqs)
	modelRec := serve.NewLatencyRecorder(serveBenchStreams * serveBenchModelReqs)
	reg := metrics.NewRegistry()
	srv, err := serve.New(serve.Config{
		Model:        m,
		Table:        tab,
		Degree:       1,
		MaxBatch:     serveBenchMaxBatch,
		MaxWait:      serveBenchMaxWaitMus * time.Microsecond,
		Metrics:      reg,
		FastLatency:  fastRec,
		ModelLatency: modelRec,
	})
	if err != nil {
		return res, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return res, err
	}
	defer func() { _ = srv.Close() }()
	addr := srv.Addr().String()

	// Settle the heap before the latency-sensitive phase: the fast path
	// itself is allocation-free, so a pre-phase collection keeps background
	// GC assists out of the sampled window.
	runtime.GC()
	if err := replayPhase(addr, tr, serveBenchFastReqs, true); err != nil {
		return res, fmt.Errorf("serve bench fast phase: %w", err)
	}
	if err := replayPhase(addr, tr, serveBenchModelReqs, false); err != nil {
		return res, fmt.Errorf("serve bench model phase: %w", err)
	}
	if err := srv.Close(); err != nil {
		return res, err
	}

	res.fastP50Ns = fastRec.Quantile(0.50)
	res.fastP99Ns = fastRec.Quantile(0.99)
	res.modelP99Ns = modelRec.Quantile(0.99)
	res.fastReqs = fastRec.Count()
	batches := reg.Counter("serve_batches_total").Value()
	rows := reg.Counter("serve_batch_rows_total").Value()
	if batches > 0 {
		res.batchFill = float64(rows) / float64(batches)
	}

	// Quality phase: the same fast-tier load against a fresh server (same
	// weights and table — the first one is fully closed, so the model has a
	// single batcher at all times) with online self-scoring enabled.
	qualRec := serve.NewLatencyRecorder(serveBenchStreams * serveBenchFastReqs)
	qreg := metrics.NewRegistry()
	qsrv, err := serve.New(serve.Config{
		Model:       m,
		Table:       tab,
		Degree:      1,
		MaxBatch:    serveBenchMaxBatch,
		MaxWait:     serveBenchMaxWaitMus * time.Microsecond,
		Metrics:     qreg,
		FastLatency: qualRec,
		Quality:     quality.New(quality.Config{Metrics: qreg}),
	})
	if err != nil {
		return res, err
	}
	if err := qsrv.Start("127.0.0.1:0"); err != nil {
		return res, err
	}
	defer func() { _ = qsrv.Close() }()
	runtime.GC()
	if err := replayPhase(qsrv.Addr().String(), tr, serveBenchFastReqs, true); err != nil {
		return res, fmt.Errorf("serve bench quality phase: %w", err)
	}
	if err := qsrv.Close(); err != nil {
		return res, err
	}
	res.qualityP99Ns = qualRec.Quantile(0.99)
	return res, nil
}

// replayPhase drives serveBenchStreams concurrent client streams, each
// replaying perStream accesses of tr on one tier.
func replayPhase(addr string, tr *trace.Trace, perStream int, fast bool) error {
	if perStream > len(tr.Accesses) {
		perStream = len(tr.Accesses)
	}
	errs := make([]error, serveBenchStreams)
	var wg sync.WaitGroup
	for i := 0; i < serveBenchStreams; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := serve.Dial(addr)
			if err != nil {
				errs[id] = err
				return
			}
			defer func() { _ = cl.Close() }()
			// Phases share stream ids on purpose: the model phase continues
			// warm sessions, like a tier switch in production.
			for j := 0; j < perStream; j++ {
				a := tr.Accesses[j]
				if _, err := cl.Predict(uint64(id), a.PC, a.Addr, fast); err != nil {
					errs[id] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Package label implements the paper's localization/labeling schemes
// (§4.4): for every trace position it derives the candidate "next address"
// under each scheme, so Voyager's multi-label trainer can learn whichever
// label is most predictable.
package label

import (
	"voyager/internal/memsim"
	"voyager/internal/sortkeys"
	"voyager/internal/trace"
)

// Scheme identifies one labeling/localization scheme.
type Scheme int

// The five schemes of §4.4.
const (
	// Global: the next address in the global stream.
	Global Scheme = iota
	// PC: the next address accessed by the same PC.
	PC
	// BasicBlock: the next address accessed by any PC in the trigger's
	// basic block.
	BasicBlock
	// Spatial: the next address within ±SpatialRange lines of the trigger.
	Spatial
	// CoOccurrence: the most frequent address in the next CoWindow
	// accesses.
	CoOccurrence
	// NumSchemes is the number of schemes.
	NumSchemes
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Global:
		return "global"
	case PC:
		return "pc"
	case BasicBlock:
		return "basic-block"
	case Spatial:
		return "spatial"
	case CoOccurrence:
		return "co-occurrence"
	}
	return "unknown"
}

// AllSchemes lists every scheme in order.
func AllSchemes() []Scheme {
	return []Scheme{Global, PC, BasicBlock, Spatial, CoOccurrence}
}

// SchemeNames returns every scheme's display name indexed by scheme value —
// the bit-position → name mapping consumers of tracing.Decision.Schemes
// need (tracing stays dependency-free, so the names are injected).
func SchemeNames() []string {
	names := make([]string, NumSchemes)
	for _, s := range AllSchemes() {
		names[s] = s.String()
	}
	return names
}

const (
	// SpatialRange is the paper's spatial-label threshold: 256 cache lines
	// (it cites the BO region size [32]).
	SpatialRange = 256
	// SpatialHorizon bounds the forward scan for a spatial neighbor.
	SpatialHorizon = 64
	// CoWindow is the co-occurrence window: "the address that occurs most
	// often in the future window of 10 memory accesses".
	CoWindow = 10
)

// Labels holds the candidate future lines for one trace position. Lines
// are cache-line numbers; Has[s] reports whether scheme s produced a label.
type Labels struct {
	Line [NumSchemes]uint64
	Has  [NumSchemes]bool
}

// Get returns the label line for a scheme.
func (l *Labels) Get(s Scheme) (uint64, bool) { return l.Line[s], l.Has[s] }

// Set records a label.
func (l *Labels) Set(s Scheme, line uint64) {
	l.Line[s] = line
	l.Has[s] = true
}

// Distinct returns the deduplicated label lines restricted to the given
// schemes (order preserved: first scheme that produced each line wins).
func (l *Labels) Distinct(schemes []Scheme) []uint64 {
	var out []uint64
	for _, s := range schemes {
		if !l.Has[s] {
			continue
		}
		dup := false
		for _, o := range out {
			if o == l.Line[s] {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l.Line[s])
		}
	}
	return out
}

// Compute derives all five schemes' labels for every position of the trace
// in O(n · window) time.
func Compute(tr *trace.Trace) []Labels {
	n := tr.Len()
	labels := make([]Labels, n)
	lines := make([]uint64, n)
	for i, a := range tr.Accesses {
		lines[i] = trace.Line(a.Addr)
	}

	// Global: next access.
	for i := 0; i+1 < n; i++ {
		labels[i].Set(Global, lines[i+1])
	}

	// PC and BasicBlock: scan backwards keeping "next line by key".
	nextByPC := make(map[uint64]uint64)
	nextByBlock := make(map[uint64]uint64)
	hasPC := make(map[uint64]bool)
	hasBlock := make(map[uint64]bool)
	for i := n - 1; i >= 0; i-- {
		pc := tr.Accesses[i].PC
		block := memsim.BlockOf(pc)
		if hasPC[pc] {
			labels[i].Set(PC, nextByPC[pc])
		}
		if hasBlock[block] {
			labels[i].Set(BasicBlock, nextByBlock[block])
		}
		nextByPC[pc] = lines[i]
		hasPC[pc] = true
		nextByBlock[block] = lines[i]
		hasBlock[block] = true
	}

	// Spatial: first future access within ±SpatialRange lines.
	for i := 0; i < n; i++ {
		hi := i + 1 + SpatialHorizon
		if hi > n {
			hi = n
		}
		for j := i + 1; j < hi; j++ {
			d := int64(lines[j]) - int64(lines[i])
			if d >= -SpatialRange && d <= SpatialRange {
				labels[i].Set(Spatial, lines[j])
				break
			}
		}
	}

	// Co-occurrence: mode of the next CoWindow lines (earliest wins ties).
	for i := 0; i < n; i++ {
		hi := i + 1 + CoWindow
		if hi > n {
			hi = n
		}
		if i+1 >= hi {
			continue
		}
		counts := make(map[uint64]int, CoWindow)
		first := make(map[uint64]int, CoWindow)
		for j := i + 1; j < hi; j++ {
			counts[lines[j]]++
			if _, ok := first[lines[j]]; !ok {
				first[lines[j]] = j
			}
		}
		best := lines[i+1]
		bestCount := counts[best]
		for _, l := range sortkeys.Sorted(counts) {
			if c := counts[l]; c > bestCount || (c == bestCount && first[l] < first[best]) {
				best, bestCount = l, c
			}
		}
		labels[i].Set(CoOccurrence, best)
	}

	return labels
}

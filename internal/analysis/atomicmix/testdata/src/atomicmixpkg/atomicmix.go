// Package atomicmixpkg exercises the atomicmix analyzer.
//
// trackMutant below is a seeded mutation of internal/tracing's Track: the
// real type stores the published event count in an atomic.Uint64, whose
// type system makes plain loads impossible. The mutant regresses it to a
// plain uint64 published with atomic.StoreUint64 — and then reads it
// non-atomically in snapshot, exactly the single-writer-plus-atomic-publish
// rot the analyzer exists to catch.
package atomicmixpkg

import "sync/atomic"

const chunkEvents = 8

// trackMutant is the seeded internal/tracing mutation (see package doc).
type trackMutant struct {
	count   uint64
	dropped uint64
	events  [chunkEvents]int
}

// record is the single writer: store the event, then publish the count.
func (tk *trackMutant) record(v int) {
	n := atomic.LoadUint64(&tk.count)
	if n >= chunkEvents {
		tk.dropped++ // want "dropped is accessed via sync/atomic"
		return
	}
	tk.events[n] = v
	atomic.StoreUint64(&tk.count, n+1)
}

// snapshot runs concurrently with record — the plain read tears.
func (tk *trackMutant) snapshot() []int {
	n := tk.count // want "count is accessed via sync/atomic"
	return tk.events[:n]
}

// droppedCount mixes in the other direction: plain write in record above,
// atomic read here.
func (tk *trackMutant) droppedCount() uint64 {
	return atomic.LoadUint64(&tk.dropped)
}

// pkgHits is a package-level shared counter.
var pkgHits uint64

func bumpHits() {
	atomic.AddUint64(&pkgHits, 1)
}

func readHitsRacy() uint64 {
	return pkgHits // want "pkgHits is accessed via sync/atomic"
}

// --- non-firing cases ---

// allAtomic never mixes: every access of its field goes through the
// package's functions.
type allAtomic struct {
	n uint64
}

func (a *allAtomic) inc() { atomic.AddUint64(&a.n, 1) }

func (a *allAtomic) get() uint64 { return atomic.LoadUint64(&a.n) }

// plainOnly is never touched atomically, so plain access is fine.
type plainOnly struct {
	n uint64
}

func (p *plainOnly) bump() { p.n++ }

// Construction is exempt: the literal write happens-before any sharing.
func newAllAtomic(seed uint64) *allAtomic {
	return &allAtomic{n: seed}
}

// A suppressed single-threaded access keeps the directive honest.
func (a *allAtomic) resetSingleThreaded() {
	//lint:ignore atomicmix caller holds the only reference during reset
	a.n = 0
}
